// Command rainbow-home runs the Rainbow home host: the HTTP server exposing
// the servlet middle tier (paper §2: the user reaches Rainbow through
// "http://RainbowHomeHost:8080/..."). Clients configure an instance via
// POST /NSRunnerlet and drive it through the other servlet endpoints; see
// internal/httpapi for the full route list.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (the paper's port 8080)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof and expvar under /debug (off by default: exposes heap contents)")
	flag.Parse()

	srv := httpapi.NewServer()
	defer srv.Close()
	if *pprofOn {
		srv.EnableProfiling()
	}

	fmt.Printf("Rainbow home host listening on %s\n", *addr)
	fmt.Println("servlets: /NSRunnerlet /NSlet /SiteRunnerlet /Sitelet /WLGlet/run /WLGlet/manual /PMlet /PMlet/render /Faultlet /Resetlet")
	fmt.Println("observability: /metrics (Prometheus text) /site/{id}/traces (trace export)")
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "rainbow-home:", err)
		os.Exit(1)
	}
}
