// Command rainbow is the command-line face of Rainbow — the replacement for
// the original applet GUI. It drives an in-process Rainbow instance:
//
//	rainbow demo                      # default session: configure, run, report
//	rainbow run -config exp.json     # run a saved experiment configuration
//	rainbow init -config exp.json    # write the default configuration file
//	rainbow matrix                    # run the full protocol matrix (Fig. 4)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/schema"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = runDemo()
	case "run":
		err = runConfig(os.Args[2:])
	case "init":
		err = runInit(os.Args[2:])
	case "matrix":
		err = runMatrix()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbow:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rainbow <demo|run|init|matrix> [flags]
  demo                 run the default Rainbow session and print the output panel
  run  -config FILE    run a saved experiment configuration
  init -config FILE    write the default configuration to FILE
  matrix               run the same workload under every protocol combination`)
}

func runDemo() error {
	exp := config.Default()
	return execute(exp)
}

func runConfig(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	path := fs.String("config", "", "experiment configuration file (JSON)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("run: -config is required")
	}
	exp, err := config.Load(*path)
	if err != nil {
		return err
	}
	return execute(exp)
}

func runInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	path := fs.String("config", "rainbow.json", "output path")
	fs.Parse(args)
	exp := config.Default()
	if err := exp.Save(*path); err != nil {
		return err
	}
	fmt.Printf("wrote default configuration to %s\n", *path)
	return nil
}

func execute(exp config.Experiment) error {
	opts, err := exp.Options()
	if err != nil {
		return err
	}
	inst, err := core.New(opts)
	if err != nil {
		return err
	}
	defer inst.Close()

	fmt.Printf("Rainbow instance %q: sites=%v protocols=%+v\n",
		exp.Name, inst.SiteIDs(), inst.Catalog().Protocols)

	stop := make(chan struct{})
	var waitFaults func()
	if len(exp.Faults) > 0 {
		waitFaults = inst.Injector.Schedule(exp.Steps(), stop)
		fmt.Printf("scheduled %d fault injections\n", len(exp.Faults))
	}

	// Sample commit progress during the run for the Display-menu chart.
	sampler := monitor.NewSampler()
	sampler.Probe("committed transactions", func() float64 {
		return float64(inst.Report().Totals().Committed)
	})
	sampler.Probe("orphan transactions", func() float64 {
		return float64(inst.Orphans())
	})
	sampler.Start(50 * time.Millisecond)

	res := inst.RunWorkload(context.Background(), exp.Profile())
	sampler.Stop()
	close(stop)
	if waitFaults != nil {
		waitFaults()
	}

	fmt.Printf("\nworkload: %d submitted, %d committed, %d aborted (%d restarts) in %v\n",
		res.Submitted, res.Committed, res.Aborted, res.Restarts, res.Elapsed.Round(time.Millisecond))
	fmt.Println()
	fmt.Print(inst.Report().Render())
	fmt.Println()
	fmt.Print(monitor.Chart(sampler.Get("committed transactions"), 60, 10))

	if err := inst.CheckSerializable(core.CommittedSet(res.Outcomes)); err != nil {
		return fmt.Errorf("serializability check FAILED: %w", err)
	}
	fmt.Println("serializability check: OK")
	return nil
}

func runMatrix() error {
	fmt.Println("protocol matrix: {rowa,qc} x {2pl,tso,mvtso} x {2pc,3pc}")
	fmt.Printf("%-22s %10s %10s %12s %10s\n", "protocols", "commit%", "tx/s", "msg/commit", "mean")
	for _, rcpName := range []string{"rowa", "qc"} {
		for _, ccpName := range []string{"2pl", "tso", "mvtso"} {
			for _, acpName := range []string{"2pc", "3pc"} {
				exp := config.Default()
				exp.Protocols = schema.Protocols{RCP: rcpName, CCP: ccpName, ACP: acpName}
				exp.Workload = config.Workload{
					Transactions: 150, MPL: 4, OpsPerTx: 4, ReadFraction: 0.75, Retries: 3,
				}
				opts, err := exp.Options()
				if err != nil {
					return err
				}
				inst, err := core.New(opts)
				if err != nil {
					return err
				}
				res := inst.RunWorkload(context.Background(), exp.Profile())
				rep := inst.Report()
				fmt.Printf("%-22s %9.1f%% %10.1f %12.1f %10v\n",
					rcpName+"/"+ccpName+"/"+acpName,
					100*res.CommitRate(), res.Throughput(), rep.MessagesPerCommit(),
					res.MeanLatency().Round(time.Microsecond))
				inst.Close()
			}
		}
	}
	return nil
}
