// Command rainbow-bench is a closed-loop load generator for measuring the
// per-shard command pipelines and the coalescing TCP transport end to end.
// It assembles a full multi-site Rainbow cluster in one process — name
// server and sites wired over real loopback TCP sockets, so every remote
// copy operation pays genuine framing and syscall costs — then drives it
// with N closed-loop clients issuing Zipfian-skewed transactions for a
// fixed duration, and reports committed throughput with p50/p99 latency.
//
// Results are appended to a JSON file in the same format tools/benchjson
// emits (BENCH_load.json by default), so before/after comparisons of the
// pipeline and transport knobs stay machine-readable:
//
//	rainbow-bench -pipeline=false -out BENCH_load_before.json
//	rainbow-bench -pipeline=true  -out BENCH_load_after.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/site"
	"repro/internal/tcpnet"
	"repro/internal/trace"
	"repro/internal/wlg"
)

// result mirrors tools/benchjson's Result so the load file concatenates
// with the benchmark archives.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`

	// traceReport is the -trace output (unexported: not serialized).
	traceReport string
}

func main() {
	nSites := flag.Int("sites", 3, "number of sites in the cluster")
	clients := flag.Int("clients", 16, "closed-loop client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "measured load duration")
	zipf := flag.Float64("zipf", 1.2, "Zipf s parameter for item skew (<= 1 selects uniform access)")
	readRate := flag.Float64("read-rate", 0.75, "probability an operation is a read")
	addRate := flag.Float64("add-rate", 0, "probability a non-read operation is a blind commutative add")
	hotSplit := flag.Bool("hot-split", true, "2PL split execution of hot-item adds (false = cc_no_split ablation)")
	opsPerTx := flag.Int("ops", 4, "operations per transaction")
	items := flag.Int("items", 256, "database size (items, replicated everywhere)")
	hot := flag.Int("hot", 0, "restrict access to the first N items (0 = all)")
	shards := flag.Int("shards", 0, "per-site data-plane shard count (0 = GOMAXPROCS-derived)")
	rcp := flag.String("rcp", "qc", "replica control protocol (roap/qc)")
	ccp := flag.String("ccp", "2pl", "concurrency control protocol (2pl/tso/mvtso)")
	acp := flag.String("acp", "2pc", "atomic commitment protocol (2pc/3pc)")
	pipeOn := flag.Bool("pipeline", true, "per-shard command pipelines (false = synchronous ablation)")
	pipeDepth := flag.Int("pipeline-depth", 0, "per-shard pipeline queue bound (0 = default)")
	pipeBatch := flag.Int("pipeline-max-batch", 0, "pipeline sequencer batch cap (0 = default)")
	netLegacy := flag.Bool("net-legacy", false, "legacy single-envelope framing (false = coalesced frames)")
	netMaxBatch := flag.Int("net-max-batch", 0, "envelopes per transport flush (1 = pre-coalescing one write per envelope, 0 = default)")
	netFlushDelay := flag.Duration("net-flush-delay", 0, "transport writer linger before flushing a non-full batch")
	netCodec := flag.String("net-codec", "", "wire body codec: binary (default: negotiated, gob fallback) or gob (pin to gob; the codec-ablation knob)")
	seed := flag.Int64("seed", 619, "workload seed")
	name := flag.String("name", "LoadZipfClosed", "benchmark name recorded in the output")
	out := flag.String("out", "BENCH_load.json", "output JSON file (benchjson format); empty disables")
	traceN := flag.Int("trace", 0, "print the N slowest sampled traces' collated stage breakdown after the run (0 disables tracing)")
	traceRate := flag.Float64("trace-sample", 0.05, "fraction of transactions traced when -trace is set")
	flag.Parse()

	switch *netCodec {
	case "", "binary", "gob":
	default:
		fmt.Fprintf(os.Stderr, "rainbow-bench: unknown -net-codec %q (want binary or gob)\n", *netCodec)
		os.Exit(2)
	}

	res, err := run(benchConfig{
		sites: *nSites, clients: *clients, duration: *duration,
		zipf: *zipf, readRate: *readRate, addRate: *addRate, opsPerTx: *opsPerTx,
		items: *items, hot: *hot, shards: *shards,
		protocols: schema.Protocols{RCP: *rcp, CCP: *ccp, ACP: *acp, NoHotSplit: !*hotSplit},
		pipeline:  schema.PipelinePolicy{Disable: !*pipeOn, Depth: *pipeDepth, MaxBatch: *pipeBatch},
		netOpts:   tcpnet.Options{LegacyFraming: *netLegacy, MaxBatch: *netMaxBatch, FlushDelay: *netFlushDelay, Codec: *netCodec},
		seed:      *seed, name: *name,
		traceN: *traceN, traceRate: *traceRate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbow-bench:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d clients, %d sites, zipf %.2f, %s\n", *name, *clients, *nSites, *zipf, *duration)
	fmt.Printf("  committed %d aborted %d  throughput %.1f tx/s\n",
		int64(res.Metrics["committed"]), int64(res.Metrics["aborted"]), res.Metrics["tx/s"])
	fmt.Printf("  latency p50 %.2fms p90 %.2fms p99 %.2fms p99.9 %.2fms\n",
		res.Metrics["p50-ms"], res.Metrics["p90-ms"], res.Metrics["p99-ms"], res.Metrics["p999-ms"])
	fmt.Printf("  read-only tx p50 %.2fms p99 %.2fms  write tx p50 %.2fms p99 %.2fms\n",
		res.Metrics["read-p50-ms"], res.Metrics["read-p99-ms"],
		res.Metrics["write-p50-ms"], res.Metrics["write-p99-ms"])
	fmt.Printf("  pipeline mean batch %.2f  net envelopes/flush %.2f (%.0f B/flush)\n",
		res.Metrics["pipe-batch"], res.Metrics["net-coalesce"], res.Metrics["net-bytes-per-flush"])
	fmt.Printf("  net codec: %d binary / %d gob bodies sent\n",
		int64(res.Metrics["net-binary-bodies"]), int64(res.Metrics["net-gob-bodies"]))
	if res.Metrics["cc-adds"] > 0 {
		fmt.Printf("  hot-key split: %d adds (%d lock-free), %d splits / %d drains\n",
			int64(res.Metrics["cc-adds"]), int64(res.Metrics["cc-split-adds"]),
			int64(res.Metrics["cc-splits"]), int64(res.Metrics["cc-drains"]))
	}
	fmt.Print(res.traceReport)

	if *out != "" {
		if err := appendResult(*out, res); err != nil {
			fmt.Fprintln(os.Stderr, "rainbow-bench:", err)
			os.Exit(1)
		}
	}
}

type benchConfig struct {
	sites, clients          int
	duration                time.Duration
	zipf, readRate, addRate float64
	opsPerTx, items, hot    int
	shards                  int
	protocols               schema.Protocols
	pipeline                schema.PipelinePolicy
	netOpts                 tcpnet.Options
	seed                    int64
	name                    string
	traceN                  int
	traceRate               float64
}

func run(bc benchConfig) (result, error) {
	exp := config.Default()
	exp.Name = bc.name
	exp.Sites = exp.Sites[:0]
	for i := 0; i < bc.sites; i++ {
		exp.Sites = append(exp.Sites, model.SiteID(fmt.Sprintf("S%d", i+1)))
	}
	exp.Items = make(map[model.ItemID]int64, bc.items)
	itemIDs := make([]model.ItemID, 0, bc.items)
	for i := 0; i < bc.items; i++ {
		id := model.ItemID(fmt.Sprintf("i%04d", i))
		exp.Items[id] = 100
		itemIDs = append(itemIDs, id)
	}
	exp.Protocols = bc.protocols
	exp.Shards = bc.shards
	exp.PipelineDisable = bc.pipeline.Disable
	exp.PipelineDepth = bc.pipeline.Depth
	exp.PipelineMaxBatch = bc.pipeline.MaxBatch
	if bc.traceN > 0 {
		exp.TraceSampleRate = bc.traceRate
		// Retain enough fragments that the slowest transactions of a multi-
		// second run are still in the ring at report time.
		exp.TraceRing = 4096
	}
	cat, err := exp.BuildCatalog()
	if err != nil {
		return result{}, err
	}

	// One tcpnet.Net hosts every node in-process; each attach gets its own
	// loopback listener, so inter-site traffic crosses real sockets.
	net := tcpnet.NewWithOptions(map[model.SiteID]string{}, bc.netOpts)
	ns, err := nameserver.New(net, cat)
	if err != nil {
		return result{}, err
	}
	defer ns.Close()

	sites := make(map[model.SiteID]*site.Site, bc.sites)
	var siteList []*site.Site
	for _, id := range exp.Sites {
		st, err := site.New(site.Config{
			ID: id, Net: net, Catalog: cat.Clone(), Shards: bc.shards,
			Pipeline: bc.pipeline,
		})
		if err != nil {
			for _, s := range siteList {
				s.Close()
			}
			return result{}, err
		}
		sites[id] = st
		siteList = append(siteList, st)
	}
	defer func() {
		for _, s := range siteList {
			s.Close()
		}
	}()

	// Profile.withDefaults treats ReadFraction 0 as unset; an explicit
	// -read-rate 0 (pure-write/add workload) must stay zero.
	readFraction := bc.readRate
	if readFraction == 0 {
		readFraction = -1
	}
	gen := wlg.New(wlg.Profile{
		Sites: exp.Sites, Items: itemIDs,
		OpsPerTx: bc.opsPerTx, ReadFraction: readFraction, AddFraction: bc.addRate,
		Zipf: bc.zipf, HotItems: bc.hot, Seed: bc.seed,
		Transactions: 1, // unused: the closed loop below is duration-bound
	})

	type clientStats struct {
		committed, aborted int64
		// lats is split by transaction shape: read-only transactions skip
		// pre-writes, prepare forces and the write quorum, so their latency
		// distribution is reported separately from write transactions'.
		readLats, writeLats []time.Duration
	}
	stats := make([]clientStats, bc.clients)
	deadline := time.Now().Add(bc.duration)
	var wg sync.WaitGroup
	for c := 0; c < bc.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cs := &stats[c]
			for n := c; time.Now().Before(deadline); n += bc.clients {
				ops := gen.NextTx()
				readOnly := true
				for _, op := range ops {
					if op.Kind != model.OpRead {
						readOnly = false
						break
					}
				}
				home := sites[exp.Sites[n%len(exp.Sites)]]
				start := time.Now()
				outcome := home.Execute(context.Background(), ops)
				if readOnly {
					cs.readLats = append(cs.readLats, time.Since(start))
				} else {
					cs.writeLats = append(cs.writeLats, time.Since(start))
				}
				if outcome.Committed {
					cs.committed++
				} else {
					cs.aborted++
				}
			}
		}(c)
	}
	wg.Wait()

	var committed, aborted int64
	var lats, readLats, writeLats []time.Duration
	for i := range stats {
		committed += stats[i].committed
		aborted += stats[i].aborted
		readLats = append(readLats, stats[i].readLats...)
		writeLats = append(writeLats, stats[i].writeLats...)
	}
	lats = append(append(lats, readLats...), writeLats...)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(readLats, func(i, j int) bool { return readLats[i] < readLats[j] })
	sort.Slice(writeLats, func(i, j int) bool { return writeLats[i] < writeLats[j] })

	var totals monitor.SiteStats
	for _, st := range siteList {
		s := st.Stats()
		totals.PipeSubmitted += s.PipeSubmitted
		totals.PipeBatches += s.PipeBatches
		totals.NetSentEnvelopes += s.NetSentEnvelopes
		totals.NetSendFlushes += s.NetSendFlushes
		totals.NetSentBytes += s.NetSentBytes
		totals.NetBinaryBodies += s.NetBinaryBodies
		totals.NetGobBodies += s.NetGobBodies
		totals.CCAdds += s.CCAdds
		totals.CCSplitAdds += s.CCSplitAdds
		totals.CCSplits += s.CCSplits
		totals.CCDrains += s.CCDrains
	}

	metrics := map[string]float64{
		"committed":           float64(committed),
		"aborted":             float64(aborted),
		"tx/s":                float64(committed) / bc.duration.Seconds(),
		"p50-ms":              pctlMS(lats, 0.50),
		"p90-ms":              pctlMS(lats, 0.90),
		"p99-ms":              pctlMS(lats, 0.99),
		"p999-ms":             pctlMS(lats, 0.999),
		"read-p50-ms":         pctlMS(readLats, 0.50),
		"read-p99-ms":         pctlMS(readLats, 0.99),
		"write-p50-ms":        pctlMS(writeLats, 0.50),
		"write-p99-ms":        pctlMS(writeLats, 0.99),
		"pipe-batch":          totals.PipeBatchSize(),
		"net-coalesce":        totals.NetCoalescing(),
		"net-bytes-per-flush": totals.NetBytesPerFlush(),
		"net-binary-bodies":   float64(totals.NetBinaryBodies),
		"net-gob-bodies":      float64(totals.NetGobBodies),
		"cc-adds":             float64(totals.CCAdds),
		"cc-split-adds":       float64(totals.CCSplitAdds),
		"cc-splits":           float64(totals.CCSplits),
		"cc-drains":           float64(totals.CCDrains),
	}
	res := result{Name: bc.name, Iterations: committed + aborted, Metrics: metrics}
	if bc.traceN > 0 {
		res.traceReport = slowTraceReport(siteList, bc.traceN)
	}
	return res, nil
}

// slowTraceReport collates every site's retained trace fragments by ID and
// renders the stage breakdowns of the n slowest root traces.
func slowTraceReport(siteList []*site.Site, n int) string {
	fragments := make([][]trace.Trace, 0, len(siteList))
	for _, st := range siteList {
		fragments = append(fragments, st.Traces())
	}
	groups := trace.Collate(fragments...)
	// Rank by the root fragment's end-to-end duration; fragment groups whose
	// root was evicted from its home ring are skipped.
	var rooted [][]trace.Trace
	for _, g := range groups {
		if g[0].Root {
			rooted = append(rooted, g)
		}
	}
	sort.Slice(rooted, func(i, j int) bool {
		return rooted[i][0].Duration() > rooted[j][0].Duration()
	})
	if len(rooted) > n {
		rooted = rooted[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  slowest %d of %d collated traces:\n", len(rooted), len(groups))
	for _, g := range rooted {
		b.WriteString(trace.Format(g))
	}
	return b.String()
}

// pctlMS returns the q-th percentile of sorted latencies in milliseconds.
func pctlMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// appendResult merges res into the (possibly existing) benchjson-format
// array at path.
func appendResult(path string, res result) error {
	var results []result
	if b, err := os.ReadFile(path); err == nil {
		json.Unmarshal(b, &results) //nolint:errcheck // unreadable file: start fresh
	}
	results = append(results, res)
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
