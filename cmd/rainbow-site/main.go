// Command rainbow-site runs one Rainbow site as its own process over TCP.
// The site fetches its configuration from the name server (cmd/rainbow-ns),
// registers its endpoint, and serves transaction processing traffic. The
// catalog must include address entries for peer sites (the name server's
// "id and end point specifications"); this binary derives the address book
// from the same configuration file.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/site"
	"repro/internal/tcpnet"
	"repro/internal/wal"
)

func main() {
	id := flag.String("id", "", "site id (must appear in the configuration)")
	addr := flag.String("addr", "127.0.0.1:0", "this site's listen address")
	nsAddr := flag.String("ns", "127.0.0.1:7000", "name server address")
	book := flag.String("peers", "", "comma-separated peer address book: S1=host:port,S2=host:port")
	walPath := flag.String("wal", "", "WAL file path; empty = in-memory log")
	cfgPath := flag.String("config", "", "experiment configuration (JSON); empty = fetch from name server")
	shards := flag.Int("shards", 0, "data-plane shard count (0 = GOMAXPROCS-derived)")
	flag.Parse()

	if *id == "" {
		fmt.Fprintln(os.Stderr, "rainbow-site: -id is required")
		os.Exit(2)
	}

	addrs := map[model.SiteID]string{
		model.NameServerID: *nsAddr,
		model.SiteID(*id):  *addr,
	}
	if *book != "" {
		for _, pair := range strings.Split(*book, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "rainbow-site: malformed -peers entry %q\n", pair)
				os.Exit(2)
			}
			addrs[model.SiteID(k)] = v
		}
	}
	net := tcpnet.New(addrs)

	var log wal.Log
	if *walPath != "" {
		fl, err := wal.OpenFile(*walPath, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainbow-site:", err)
			os.Exit(1)
		}
		log = fl
	}

	cfg := site.Config{ID: model.SiteID(*id), Net: net, Log: log, Register: true, Addr: *addr, Shards: *shards}
	if *cfgPath != "" {
		exp, err := config.Load(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainbow-site:", err)
			os.Exit(1)
		}
		cat, err := exp.BuildCatalog()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainbow-site:", err)
			os.Exit(1)
		}
		cfg.Catalog = cat
	}

	st, err := site.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbow-site:", err)
		os.Exit(1)
	}
	defer st.Close()

	resolved, _ := net.Addr(model.SiteID(*id))
	fmt.Printf("Rainbow site %s serving on %s (ns at %s)\n", *id, resolved, *nsAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
