// Command rainbow-site runs one Rainbow site as its own process over TCP.
// The site fetches its configuration from the name server (cmd/rainbow-ns),
// registers its endpoint, and serves transaction processing traffic. The
// catalog must include address entries for peer sites (the name server's
// "id and end point specifications"); this binary derives the address book
// from the same configuration file.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/site"
	"repro/internal/tcpnet"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	id := flag.String("id", "", "site id (must appear in the configuration)")
	addr := flag.String("addr", "127.0.0.1:0", "this site's listen address")
	nsAddr := flag.String("ns", "127.0.0.1:7000", "name server address")
	book := flag.String("peers", "", "comma-separated peer address book: S1=host:port,S2=host:port")
	walPath := flag.String("wal", "", "WAL directory (segmented binary log); empty = in-memory log. An existing regular file is opened as a legacy JSON-lines log (no checkpointing)")
	walCodec := flag.String("wal-codec", "binary", "segment record codec: binary or json")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "segment rotation threshold; 0 derives one from -checkpoint-bytes (compaction reclaims whole segments, so several must fit per checkpoint)")
	cfgPath := flag.String("config", "", "experiment configuration (JSON); empty = fetch from name server")
	shards := flag.Int("shards", 0, "data-plane shard count (0 = GOMAXPROCS-derived)")
	ckptBytes := flag.Int64("checkpoint-bytes", 4<<20, "checkpoint after this many WAL bytes appended (0 disables the bytes trigger)")
	ckptInterval := flag.Duration("checkpoint-interval", 0, "periodic checkpoint interval (0 disables the timer)")
	ckptDeltaMax := flag.Int("checkpoint-delta-max", 8, "consecutive delta (dirty-shards-only) snapshots before a full snapshot is forced (0 = defer to the config file's value, negative = every snapshot full)")
	ckptCOW := flag.Bool("checkpoint-cow", true, "capture snapshots copy-on-write so the decision pipeline stalls O(shards), not O(data); false copies under the gate (ablation; a config file's checkpoint_no_cow also disables it)")
	ckptDirtyItems := flag.Bool("checkpoint-dirty-items", true, "track dirty items per shard so delta snapshots carry only written items; false captures whole dirty shards (ablation; a config file's checkpoint_no_dirty_items also disables it)")
	catalogPoll := flag.Duration("catalog-poll", 5*time.Second, "interval for probing the name server's catalog epoch; a moved epoch live-reconfigures the site (0 disables polling; pushed updates still apply)")
	pipeOn := flag.Bool("pipeline", true, "run copy operations through per-shard command pipelines with stage batching; false restores the synchronous per-request path (ablation; a config file's pipeline_disable also disables it)")
	pipeDepth := flag.Int("pipeline-depth", 0, "per-shard pipeline queue bound (0 = default or the config file's value)")
	pipeBatch := flag.Int("pipeline-max-batch", 0, "largest batch one pipeline sequencer drains (0 = default or the config file's value)")
	netLegacy := flag.Bool("net-legacy", false, "send the legacy single-envelope gob framing instead of coalesced multi-envelope frames (for pre-framing peers; inbound framing is auto-detected either way)")
	netQueue := flag.Int("net-queue", 0, "per-connection send queue bound (0 = default)")
	netBatch := flag.Int("net-batch", 0, "largest envelope batch one transport flush carries (0 = default)")
	netFlushDelay := flag.Duration("net-flush-delay", 0, "extra time the transport writer waits for more envelopes before flushing a non-full batch (0 = flush as soon as the queue drains)")
	netCodec := flag.String("net-codec", "", "wire body codec: binary (negotiated, with gob fallback for peers that don't negotiate) or gob (pin to gob; ablation). Empty defers to the config file's net_codec, default binary")
	traceRate := flag.Float64("trace-sample", 0, "fraction of home transactions traced end to end (0 = only the config file's trace_sample_rate, if any)")
	traceRing := flag.Int("trace-ring", 0, "completed-trace ring bound (0 = default or the config file's value)")
	traceSlow := flag.Duration("trace-slow", 0, "dump the stage breakdown of root traces slower than this to stderr (0 = only the config file's trace_slow_ms, if any)")
	flag.Parse()

	if *id == "" {
		fmt.Fprintln(os.Stderr, "rainbow-site: -id is required")
		os.Exit(2)
	}

	// Load the configuration (if any) before the transport: the codec
	// selection is applied at transport creation and may come from the file.
	var catalog *schema.Catalog
	if *cfgPath != "" {
		exp, err := config.Load(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainbow-site:", err)
			os.Exit(1)
		}
		catalog, err = exp.BuildCatalog()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainbow-site:", err)
			os.Exit(1)
		}
	}
	codec := *netCodec
	if codec == "" && catalog != nil {
		codec = catalog.Net.Codec
	}
	switch codec {
	case "", "binary", "gob":
	default:
		fmt.Fprintf(os.Stderr, "rainbow-site: unknown -net-codec %q (want binary or gob)\n", codec)
		os.Exit(2)
	}

	addrs := map[model.SiteID]string{
		model.NameServerID: *nsAddr,
		model.SiteID(*id):  *addr,
	}
	if *book != "" {
		for _, pair := range strings.Split(*book, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "rainbow-site: malformed -peers entry %q\n", pair)
				os.Exit(2)
			}
			addrs[model.SiteID(k)] = v
		}
	}
	net := tcpnet.NewWithOptions(addrs, tcpnet.Options{
		LegacyFraming: *netLegacy,
		SendQueue:     *netQueue,
		MaxBatch:      *netBatch,
		FlushDelay:    *netFlushDelay,
		Codec:         codec,
	})

	var log wal.Log
	if *walPath != "" {
		if st, err := os.Stat(*walPath); err == nil && st.Mode().IsRegular() {
			// A pre-segment single-file JSON log: keep serving it as-is. To
			// migrate, move it into a directory as <dir>/00000000000000000000.seg
			// and point -wal at the directory.
			fl, err := wal.OpenFile(*walPath, true)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rainbow-site:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "rainbow-site: %s is a legacy JSON-lines WAL; checkpoint/compaction disabled\n", *walPath)
			log = fl
		} else {
			codec, err := wal.CodecByName(*walCodec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rainbow-site:", err)
				os.Exit(2)
			}
			segBytes := *walSegBytes
			if segBytes <= 0 && *ckptBytes > 0 {
				// Aim for ~4 segments per checkpoint window so compaction
				// (whole segments only) can actually reclaim space.
				segBytes = *ckptBytes / 4
				if segBytes < 16<<10 {
					segBytes = 16 << 10
				}
				if segBytes > wal.DefaultSegmentBytes {
					segBytes = wal.DefaultSegmentBytes
				}
			}
			sl, err := wal.OpenSegmented(*walPath, wal.SegmentOptions{Sync: true, Codec: codec, SegmentBytes: segBytes})
			if err != nil {
				fmt.Fprintln(os.Stderr, "rainbow-site:", err)
				os.Exit(1)
			}
			log = sl
		}
	}

	cfg := site.Config{
		ID: model.SiteID(*id), Net: net, Log: log, Register: true, Addr: *addr, Shards: *shards,
		Checkpoint: schema.CheckpointPolicy{
			Bytes: *ckptBytes, Interval: time.Duration(*ckptInterval),
			DeltaMax: *ckptDeltaMax, NoCOW: !*ckptCOW, NoDirtyItems: !*ckptDirtyItems,
		},
		Pipeline: schema.PipelinePolicy{
			Disable: !*pipeOn, Depth: *pipeDepth, MaxBatch: *pipeBatch,
		},
		Trace: schema.TracePolicy{
			SampleRate: *traceRate, Ring: *traceRing,
			SlowMS: int64(*traceSlow / time.Millisecond),
		},
		CatalogPoll: *catalogPoll,
	}
	cfg.Catalog = catalog

	st, err := site.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbow-site:", err)
		os.Exit(1)
	}
	defer st.Close()

	// Slow-trace dumps print this site's fragment only; collating it with
	// the other sites' /site/{id}/traces exports by ID gives the full
	// distributed picture.
	st.Tracer().OnSlow(func(tr trace.Trace) {
		fmt.Fprintf(os.Stderr, "rainbow-site: slow transaction\n%s", trace.Format([]trace.Trace{tr}))
	})

	resolved, _ := net.Addr(model.SiteID(*id))
	fmt.Printf("Rainbow site %s serving on %s (ns at %s)\n", *id, resolved, *nsAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
