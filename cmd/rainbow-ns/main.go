// Command rainbow-ns runs a standalone Rainbow name server over TCP for
// multi-process deployments: sites started with cmd/rainbow-site register
// here and fetch the catalog. The catalog is loaded from an experiment
// configuration file (the administrator's "Name Server Configuration" menu).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/config"
	"repro/internal/model"
	"repro/internal/nameserver"
	"repro/internal/tcpnet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "name server listen address")
	cfgPath := flag.String("config", "", "experiment configuration (JSON); empty = default demo catalog")
	flag.Parse()

	exp := config.Default()
	if *cfgPath != "" {
		var err error
		exp, err = config.Load(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rainbow-ns:", err)
			os.Exit(1)
		}
	}
	cat, err := exp.BuildCatalog()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbow-ns:", err)
		os.Exit(1)
	}

	net := tcpnet.New(map[model.SiteID]string{model.NameServerID: *addr})
	ns, err := nameserver.New(net, cat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rainbow-ns:", err)
		os.Exit(1)
	}
	defer ns.Close()

	fmt.Printf("Rainbow name server on %s (%d sites, %d items, protocols %+v)\n",
		*addr, len(cat.Sites), len(cat.Items), cat.Protocols)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
