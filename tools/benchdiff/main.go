// Command benchdiff compares two benchjson artifacts (see tools/benchjson)
// and fails when the current run regressed against the committed baseline —
// the CI gate that keeps the recovery/WAL/checkpoint wins won.
//
// Usage:
//
//	go run ./tools/benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json \
//	    [-metric ns/op] [-threshold 0.25] [-match 'Recovery|WAL|Checkpoint'] \
//	    [-ratios 'slowBench:fastBench,...'] [-ratio-threshold 0.4] \
//	    [-min-ratios 'bigBench:smallBench:minRatio,...']
//
// Every baseline benchmark whose name matches -match and carries the gated
// metric must (a) still exist in the current run and (b) not exceed
// baseline*(1+threshold) on that metric. A benchmark that disappears fails
// the gate loudly: renames must refresh the baseline in the same change.
// Current-run benchmarks without a baseline entry are reported as new (not
// failures), so adding a benchmark does not require a two-step dance.
// Improvements beyond the threshold are flagged as refresh candidates.
//
// -ratios adds the machine-invariant half of the gate: each pair names a
// structurally slower benchmark and the optimized variant it is compared
// against (full-vs-delta checkpoint, direct-vs-group WAL commit). The gate
// checks the RATIO metric(slow)/metric(fast) — which cancels out runner
// speed — and fails when the current ratio falls below
// baseline_ratio*(1-ratio-threshold), i.e. when the optimization's relative
// win shrank, even on hardware where absolute ns/op moved wholesale. Pairs
// missing from the baseline are reported as new; pairs missing from the
// current run fail.
//
// -min-ratios is the absolute (baseline-free) variant for acceptance
// criteria of the form "variant A must beat variant B by at least N×": each
// triple names a big benchmark, a small one, and the floor their
// metric(big)/metric(small) ratio from the CURRENT artifact alone must
// clear. Same-run ratios cancel runner speed like -ratios does, but the
// floor is fixed, so the gate holds even before any baseline carries the
// pair. Either side missing from the current run fails.
//
// Exit status: 0 = gate passed, 1 = regression or missing benchmark,
// 2 = usage/IO error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result mirrors tools/benchjson's output schema.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func readResults(path string) (map[string]Result, []string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []Result
	if err := json.Unmarshal(b, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(list))
	var names []string
	for _, r := range list {
		if _, dup := byName[r.Name]; !dup {
			names = append(names, r.Name)
		}
		byName[r.Name] = r // last run of a repeated bench wins, like benchstat's input order
	}
	return byName, names, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
	currentPath := flag.String("current", "", "fresh bench artifact to gate")
	metric := flag.String("metric", "ns/op", "metric to gate on")
	threshold := flag.Float64("threshold", 0.25, "relative regression tolerance (0.25 = +25%)")
	match := flag.String("match", "Recovery|WAL|Checkpoint", "regexp selecting gated benchmark names")
	ratios := flag.String("ratios", "", "comma-separated slow:fast benchmark pairs gated on their metric ratio (machine-invariant)")
	ratioThreshold := flag.Float64("ratio-threshold", 0.4, "tolerated relative shrink of a slow/fast ratio (0.4 = the win may lose 40%)")
	minRatios := flag.String("min-ratios", "", "comma-separated big:small:min triples gated on metric(big)/metric(small) >= min in the current artifact alone")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	base, baseNames, err := readResults(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, curNames, err := readResults(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	failed := false
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "baseline", "current", "delta")
	for _, name := range baseNames {
		if !re.MatchString(name) {
			continue
		}
		b := base[name]
		bv, ok := b.Metrics[*metric]
		if !ok || bv <= 0 {
			continue // baseline carries no gated metric for this bench
		}
		c, ok := cur[name]
		if !ok {
			fmt.Printf("%-60s %14.0f %14s %8s  MISSING (refresh the baseline when renaming)\n", name, bv, "-", "-")
			failed = true
			continue
		}
		cv, ok := c.Metrics[*metric]
		if !ok {
			fmt.Printf("%-60s %14.0f %14s %8s  NO %s IN CURRENT RUN\n", name, bv, "-", "-", *metric)
			failed = true
			continue
		}
		delta := cv/bv - 1
		verdict := "ok"
		switch {
		case delta > *threshold:
			verdict = fmt.Sprintf("REGRESSION (> +%.0f%%)", *threshold*100)
			failed = true
		case delta < -*threshold:
			verdict = "improved — consider refreshing the baseline"
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%  %s\n", name, bv, cv, delta*100, verdict)
	}
	// New benchmarks (matched, in current, absent from baseline) are
	// informational: they enter the gate when the baseline is refreshed.
	var newNames []string
	for _, name := range curNames {
		if re.MatchString(name) {
			if _, ok := base[name]; !ok {
				newNames = append(newNames, name)
			}
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		fmt.Printf("%-60s %14s %14.0f %8s  new (no baseline)\n", name, "-", cur[name].Metrics[*metric], "-")
	}

	if *ratios != "" {
		fmt.Printf("\n%-60s %14s %14s %8s\n", "ratio (slow/fast)", "baseline", "current", "delta")
		for _, pair := range strings.Split(*ratios, ",") {
			slow, fast, ok := strings.Cut(strings.TrimSpace(pair), ":")
			if !ok {
				fmt.Fprintf(os.Stderr, "benchdiff: malformed -ratios pair %q (want slow:fast)\n", pair)
				os.Exit(2)
			}
			label := slow + " / " + fast
			baseRatio, baseOK := ratioOf(base, slow, fast, *metric)
			curRatio, curOK := ratioOf(cur, slow, fast, *metric)
			switch {
			case !baseOK && curOK:
				fmt.Printf("%-60s %14s %14.2f %8s  new (no baseline)\n", label, "-", curRatio, "-")
			case !curOK:
				fmt.Printf("%-60s %14.2f %14s %8s  MISSING IN CURRENT RUN\n", label, baseRatio, "-", "-")
				failed = true
			default:
				delta := curRatio/baseRatio - 1
				verdict := "ok"
				if curRatio < baseRatio*(1-*ratioThreshold) {
					verdict = fmt.Sprintf("RATIO REGRESSION (win shrank > %.0f%%)", *ratioThreshold*100)
					failed = true
				}
				fmt.Printf("%-60s %14.2f %14.2f %+7.1f%%  %s\n", label, baseRatio, curRatio, delta*100, verdict)
			}
		}
	}

	if *minRatios != "" {
		fmt.Printf("\n%-60s %14s %14s\n", "ratio floor (big/small)", "current", "floor")
		for _, triple := range strings.Split(*minRatios, ",") {
			parts := strings.Split(strings.TrimSpace(triple), ":")
			if len(parts) != 3 {
				fmt.Fprintf(os.Stderr, "benchdiff: malformed -min-ratios triple %q (want big:small:min)\n", triple)
				os.Exit(2)
			}
			floor, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || floor <= 0 {
				fmt.Fprintf(os.Stderr, "benchdiff: bad -min-ratios floor %q: %v\n", parts[2], err)
				os.Exit(2)
			}
			label := parts[0] + " / " + parts[1]
			curRatio, ok := ratioOf(cur, parts[0], parts[1], *metric)
			switch {
			case !ok:
				fmt.Printf("%-60s %14s %14.2f  MISSING IN CURRENT RUN\n", label, "-", floor)
				failed = true
			case curRatio < floor:
				fmt.Printf("%-60s %14.2f %14.2f  BELOW FLOOR\n", label, curRatio, floor)
				failed = true
			default:
				fmt.Printf("%-60s %14.2f %14.2f  ok\n", label, curRatio, floor)
			}
		}
	}

	if failed {
		fmt.Printf("\nbenchdiff: FAIL — %s regressions beyond +%.0f%% (or missing benches / shrunk ratios) against %s\n", *metric, *threshold*100, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: PASS — no %s regression beyond +%.0f%% against %s\n", *metric, *threshold*100, *baselinePath)
}

// ratioOf computes metric(slow)/metric(fast) from one artifact; ok is false
// when either side or its metric is absent or non-positive.
func ratioOf(results map[string]Result, slow, fast, metric string) (float64, bool) {
	s, okS := results[slow]
	f, okF := results[fast]
	if !okS || !okF {
		return 0, false
	}
	sv, okS := s.Metrics[metric]
	fv, okF := f.Metrics[metric]
	if !okS || !okF || sv <= 0 || fv <= 0 {
		return 0, false
	}
	return sv / fv, true
}
