// Command rainbowlint is the repo's project-specific static-analysis suite:
// five analyzers that machine-check invariants the compiler cannot see
// (wire-body encode/decode symmetry, errors.Is discipline, trace-span
// pairing, checkpoint-gate and shard-lock ordering, stats wiring). It
// speaks cmd/go's vettool protocol, so the usual way to run it is
//
//	go build -o rainbowlint ./tools/rainbowlint
//	go vet -vettool=$(pwd)/rainbowlint ./...
//
// Invoked with package patterns directly (e.g. `rainbowlint ./...`) it
// re-executes itself through `go vet` for convenience.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"repro/tools/rainbowlint/internal/analysis"
	"repro/tools/rainbowlint/internal/analyzers"
	"repro/tools/rainbowlint/internal/unit"
)

func main() {
	suite := analyzers.Suite()

	fs := flag.NewFlagSet("rainbowlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rainbowlint [packages] | go vet -vettool=rainbowlint [packages]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range suite {
			fmt.Fprintf(os.Stderr, "  -%s\n        %s\n", a.Name, firstLine(a.Doc))
		}
	}
	vFlag := fs.String("V", "", "print version and exit")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (vettool handshake)")
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, false, firstLine(a.Doc))
	}
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	switch {
	case *vFlag != "":
		printVersion(*vFlag)
		return
	case *flagsFlag:
		printFlagDefs(suite)
		return
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// cmd/go unit-checking mode: one package described by a JSON config.
		os.Exit(unit.Run(args[0], selectAnalyzers(suite, fs, enabled)))
	}

	// Standalone mode: delegate to `go vet` so package loading, caching and
	// per-package scheduling stay cmd/go's problem.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rainbowlint: cannot locate own executable: %v\n", err)
		os.Exit(2)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			vetArgs = append(vetArgs, "-"+f.Name+"="+f.Value.String())
		}
	})
	if len(args) == 0 {
		args = []string{"./..."}
	}
	vetArgs = append(vetArgs, args...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout, cmd.Stderr, cmd.Stdin = os.Stdout, os.Stderr, os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "rainbowlint: go vet: %v\n", err)
		os.Exit(2)
	}
}

// selectAnalyzers applies go vet's narrowing convention: with no analyzer
// flags set, everything runs; setting any flag true runs exactly the true
// set; setting only false flags runs everything but those.
func selectAnalyzers(suite []*analysis.Analyzer, fs *flag.FlagSet, enabled map[string]*bool) []*analysis.Analyzer {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			set[f.Name] = true
		}
	})
	if len(set) == 0 {
		return suite
	}
	anyTrue := false
	for name := range set {
		anyTrue = anyTrue || *enabled[name]
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if anyTrue && *enabled[a.Name] || !anyTrue && !set[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// printVersion answers `-V=full`, which cmd/go folds into the vet action's
// cache key. The self-hash makes rebuilding the tool invalidate cached vet
// results, exactly like a released tool's build ID would.
func printVersion(mode string) {
	version := runtime.Version() + "-rainbow"
	if mode != "full" {
		fmt.Printf("rainbowlint version %s\n", version)
		return
	}
	h := sha256.New()
	if self, err := os.Executable(); err == nil {
		if f, err := os.Open(self); err == nil {
			io.Copy(h, f) //nolint:errcheck
			f.Close()
		}
	}
	fmt.Printf("rainbowlint version %s buildID=%x\n", version, h.Sum(nil)[:12])
}

// printFlagDefs answers the `-flags` handshake: cmd/go asks which flags the
// tool understands before deciding what to pass.
func printFlagDefs(suite []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := make([]jsonFlag, 0, len(suite))
	for _, a := range suite {
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Stdout.Write(data) //nolint:errcheck
	fmt.Println()
}

func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		return doc[:i]
	}
	return doc
}
