package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/rainbowlint/internal/analysis"
)

// Bodycheck machine-checks the wire-body conventions the codec layer
// depends on (PR 8's append-only evolution rule, until now enforced only
// by review):
//
//   - every type with AppendTo/DecodeFrom methods (a wire.Body
//     implementation, detected structurally) is registered with
//     RegisterBody in its declaring package, so the typed decoder can
//     construct it;
//   - hand-rolled encoders open with a version byte and their decoders
//     check it (pure AppendGob/DecodeGob bodies are exempt — gob is
//     self-describing);
//   - the AppendTo field sequence and the DecodeFrom field sequence match
//     in order and wire type, including repeated groups (a count followed
//     by a loop) and version-gated trailers, which are compared inline
//     because current encoders always write them.
//
// As a registry-completeness side check, a package that declares a
// kindNames map over its MsgKind constants must name every constant.
//
// Encoders the walker cannot model (unexpected statement forms) are
// skipped silently rather than guessed at; the shapes below cover every
// encoder in the tree.
var Bodycheck = &analysis.Analyzer{
	Name: "bodycheck",
	Doc: "checks wire.Body registration, version bytes, and encode/decode symmetry\n" +
		"AppendTo and DecodeFrom field sequences must match in order and type;\n" +
		"every body needs a RegisterBody entry; hand-rolled bodies need versions.",
	Run: runBodycheck,
}

// encodeHelpers maps append-helper names to wire op kinds.
var encodeHelpers = map[string]string{
	"appendUvarint": "uvarint",
	"appendVarint":  "varint",
	"appendBool":    "bool",
	"appendString":  "string",
	"appendTx":      "tx",
	"appendTS":      "ts",
	"appendBallot":  "ballot",
	"AppendGob":     "gob",
}

// decodeHelpers maps bodyReader method (and DecodeGob) names to op kinds.
var decodeHelpers = map[string]string{
	"version":   "version",
	"byte":      "byte",
	"bool":      "bool",
	"uvarint":   "uvarint",
	"varint":    "varint",
	"str":       "string",
	"count":     "uvarint",
	"tx":        "tx",
	"ts":        "ts",
	"ballot":    "ballot",
	"DecodeGob": "gob",
}

// bodyOp is one encoded/decoded field, or a repeated group.
type bodyOp struct {
	kind string
	pos  token.Pos
	loop []bodyOp
}

func (o bodyOp) String() string {
	if o.kind == "loop" {
		parts := make([]string, len(o.loop))
		for i, in := range o.loop {
			parts[i] = in.String()
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	return o.kind
}

func opsString(ops []bodyOp) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// bodyDecl collects one type's codec methods.
type bodyDecl struct {
	named      *types.Named
	appendTo   *ast.FuncDecl
	decodeFrom *ast.FuncDecl
}

func runBodycheck(pass *analysis.Pass) error {
	bodies := map[*types.Named]*bodyDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig := obj.Type().(*types.Signature)
			named := namedOf(sig.Recv().Type())
			if named == nil {
				continue
			}
			switch {
			case fn.Name.Name == "AppendTo" && isAppendToSig(sig):
				body(bodies, named).appendTo = fn
			case fn.Name.Name == "DecodeFrom" && isDecodeFromSig(sig):
				body(bodies, named).decodeFrom = fn
			}
		}
	}

	registered := registeredBodyTypes(pass)
	for named, b := range bodies {
		if b.appendTo == nil || b.decodeFrom == nil {
			continue // not a Body; one-sided helpers are someone else's type
		}
		if !registered[named] {
			pass.Reportf(b.appendTo.Name.Pos(),
				"wire body %s is not registered with RegisterBody; the typed decoder cannot construct it",
				named.Obj().Name())
		}
		checkBodySymmetry(pass, named.Obj().Name(), b)
	}

	checkKindNames(pass)
	return nil
}

func body(m map[*types.Named]*bodyDecl, n *types.Named) *bodyDecl {
	if m[n] == nil {
		m[n] = &bodyDecl{named: n}
	}
	return m[n]
}

func isAppendToSig(sig *types.Signature) bool {
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		isByteSlice(sig.Params().At(0).Type()) && isByteSlice(sig.Results().At(0).Type())
}

func isDecodeFromSig(sig *types.Signature) bool {
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		isByteSlice(sig.Params().At(0).Type()) &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// registeredBodyTypes collects every named type constructed inside a
// RegisterBody(...) call anywhere in the package.
func registeredBodyTypes(pass *analysis.Pass) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "RegisterBody" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.CompositeLit:
						if named := namedOf(pass.TypesInfo.Types[m].Type); named != nil {
							out[named] = true
						}
					case *ast.CallExpr:
						if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "new" && len(m.Args) == 1 {
							if named := namedOf(pass.TypesInfo.Types[m].Type); named != nil {
								out[named] = true
							}
						}
					}
					return true
				})
			}
			return true
		})
	}
	return out
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkBodySymmetry compares the encode and decode field sequences.
func checkBodySymmetry(pass *analysis.Pass, name string, b *bodyDecl) {
	enc, encOK := encodeOps(pass, b.appendTo)
	dec, decOK := decodeOps(pass, b.decodeFrom)
	if !encOK || !decOK {
		return // unmodelable shape; stay silent rather than guess
	}

	// Pure-gob bodies: gob frames are self-describing, no version byte.
	if len(enc) == 1 && enc[0].kind == "gob" {
		if !(len(dec) == 1 && dec[0].kind == "gob") {
			pass.Reportf(b.decodeFrom.Name.Pos(),
				"%s: AppendTo is pure gob but DecodeFrom reads {%s}", name, opsString(dec))
		}
		return
	}

	if len(enc) == 0 || enc[0].kind != "version" {
		pass.Reportf(b.appendTo.Name.Pos(),
			"%s: AppendTo does not open with a version byte (append a constant first; the decoder's version gate depends on it)", name)
	} else {
		enc = enc[1:]
	}
	if len(dec) == 0 || dec[0].kind != "version" {
		pass.Reportf(b.decodeFrom.Name.Pos(),
			"%s: DecodeFrom does not read the version byte first (call r.version())", name)
	} else {
		dec = dec[1:]
	}
	compareOps(pass, name, b, enc, dec)
}

func compareOps(pass *analysis.Pass, name string, b *bodyDecl, enc, dec []bodyOp) {
	for i := 0; i < len(enc) && i < len(dec); i++ {
		e, d := enc[i], dec[i]
		if e.kind != d.kind {
			pass.Reportf(d.pos,
				"%s: field #%d mismatch: AppendTo writes %s but DecodeFrom reads %s (full sequences: {%s} vs {%s})",
				name, i+1, e.String(), d.String(), opsString(enc), opsString(dec))
			return
		}
		if e.kind == "loop" {
			compareOps(pass, name, b, e.loop, d.loop)
		}
	}
	if len(enc) != len(dec) {
		pass.Reportf(b.decodeFrom.Name.Pos(),
			"%s: AppendTo writes %d fields {%s} but DecodeFrom reads %d {%s}",
			name, len(enc), opsString(enc), len(dec), opsString(dec))
	}
}

// ---- encode-side extraction ----

type encWalker struct {
	pass       *analysis.Pass
	buf        types.Object // the AppendTo buffer parameter
	ok         bool
	sawVersion bool
}

func encodeOps(pass *analysis.Pass, fn *ast.FuncDecl) ([]bodyOp, bool) {
	params := fn.Type.Params.List
	if len(params) != 1 || len(params[0].Names) != 1 {
		return nil, false
	}
	buf := pass.TypesInfo.Defs[params[0].Names[0]]
	if buf == nil {
		return nil, false
	}
	w := &encWalker{pass: pass, buf: buf, ok: true}
	ops := w.stmts(fn.Body.List)
	return ops, w.ok
}

func (w *encWalker) stmts(list []ast.Stmt) []bodyOp {
	var ops []bodyOp
	for _, s := range list {
		if !w.ok {
			return nil
		}
		switch s := s.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				ops = append(ops, w.chain(rhs)...)
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				ops = append(ops, w.chain(res)...)
			}
		case *ast.IfStmt:
			// Encoders only branch on presence (len > 0); the wire
			// sequence is unconditional, so inline both arms.
			if s.Init != nil {
				ops = append(ops, w.stmts([]ast.Stmt{s.Init})...)
			}
			ops = append(ops, w.stmts(s.Body.List)...)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				ops = append(ops, w.stmts(e.List)...)
			case *ast.IfStmt:
				ops = append(ops, w.stmts([]ast.Stmt{e})...)
			}
		case *ast.ForStmt:
			ops = append(ops, w.loop(s.Body, s.Pos())...)
		case *ast.RangeStmt:
			ops = append(ops, w.loop(s.Body, s.Pos())...)
		case *ast.BlockStmt:
			ops = append(ops, w.stmts(s.List)...)
		case *ast.ExprStmt, *ast.DeclStmt:
			// Side work (sort.Strings, temp slices) encodes nothing.
		default:
			w.ok = false
		}
	}
	return ops
}

func (w *encWalker) loop(body *ast.BlockStmt, pos token.Pos) []bodyOp {
	inner := w.stmts(body.List)
	if len(inner) == 0 {
		return nil
	}
	return []bodyOp{{kind: "loop", pos: pos, loop: inner}}
}

// chain extracts the ops of a nested append chain rooted at the buffer
// parameter, e.g. appendBool(appendTx(buf, tx), ok) -> [tx bool].
func (w *encWalker) chain(e ast.Expr) []bodyOp {
	if !w.chainRootsAtBuf(e) {
		return nil
	}
	return w.chainOps(e)
}

func (w *encWalker) chainRootsAtBuf(e ast.Expr) bool {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return w.pass.TypesInfo.Uses[v] == w.buf || w.pass.TypesInfo.Defs[v] == w.buf
		case *ast.CallExpr:
			if !w.isEncodeCall(v) || len(v.Args) == 0 {
				return false
			}
			e = v.Args[0]
		default:
			return false
		}
	}
}

func (w *encWalker) isEncodeCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	if name == "append" {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		return false
	}
	_, ok := encodeHelpers[name]
	return ok
}

func (w *encWalker) chainOps(e ast.Expr) []bodyOp {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil // the bare buf ident at the chain root
	}
	ops := w.chainOps(call.Args[0])
	name := calleeName(call)
	if name == "append" {
		if call.Ellipsis != token.NoPos {
			w.ok = false // raw blob append: not a modeled body shape
			return nil
		}
		for _, arg := range call.Args[1:] {
			kind := "byte"
			if tv := w.pass.TypesInfo.Types[arg]; tv.Value != nil && !w.sawVersion {
				kind = "version"
				w.sawVersion = true
			}
			ops = append(ops, bodyOp{kind: kind, pos: arg.Pos()})
		}
		return ops
	}
	return append(ops, bodyOp{kind: encodeHelpers[name], pos: call.Pos()})
}

// ---- decode-side extraction ----

type decWalker struct {
	pass *analysis.Pass
	ok   bool
}

func decodeOps(pass *analysis.Pass, fn *ast.FuncDecl) ([]bodyOp, bool) {
	w := &decWalker{pass: pass, ok: true}
	ops := w.stmts(fn.Body.List)
	return ops, w.ok
}

func (w *decWalker) stmts(list []ast.Stmt) []bodyOp {
	var ops []bodyOp
	for _, s := range list {
		if !w.ok {
			return nil
		}
		switch s := s.(type) {
		case *ast.IfStmt:
			// Version gates and presence checks: the reads inside happen
			// on the current-version wire, so inline them.
			if s.Init != nil {
				ops = append(ops, w.scan(s.Init)...)
			}
			ops = append(ops, w.scan(s.Cond)...)
			ops = append(ops, w.stmts(s.Body.List)...)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				ops = append(ops, w.stmts(e.List)...)
			case *ast.IfStmt:
				ops = append(ops, w.stmts([]ast.Stmt{e})...)
			}
		case *ast.ForStmt:
			var inner []bodyOp
			if s.Init != nil {
				inner = append(inner, w.scan(s.Init)...)
			}
			inner = append(inner, w.stmts(s.Body.List)...)
			if len(inner) > 0 {
				ops = append(ops, bodyOp{kind: "loop", pos: s.Pos(), loop: inner})
			}
		case *ast.RangeStmt:
			inner := w.stmts(s.Body.List)
			if len(inner) > 0 {
				ops = append(ops, bodyOp{kind: "loop", pos: s.Pos(), loop: inner})
			}
		case *ast.BlockStmt:
			ops = append(ops, w.stmts(s.List)...)
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt:
			ops = append(ops, w.scan(s)...)
		default:
			w.ok = false
		}
	}
	return ops
}

// scan collects reader-method calls from a non-control node in source
// order.
func (w *decWalker) scan(n ast.Node) []bodyOp {
	var ops []bodyOp
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			w.ok = false
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		kind, ok := decodeHelpers[name]
		if !ok {
			return true
		}
		// Reader ops are methods (r.str()) or the DecodeGob helper; plain
		// calls to unrelated same-named functions don't exist in codec
		// code, and fixtures follow the same naming.
		ops = append(ops, bodyOp{kind: kind, pos: call.Pos()})
		return true
	})
	return ops
}

// ---- kindNames completeness ----

// checkKindNames verifies that a package-level kindNames map literal
// covers every constant of the MsgKind type declared in the package.
func checkKindNames(pass *analysis.Pass) {
	kindType, _ := pass.Pkg.Scope().Lookup("MsgKind").(*types.TypeName)
	if kindType == nil {
		return
	}
	var lit *ast.CompositeLit
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name == "kindNames" && i < len(vs.Values) {
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						lit = cl
					}
				}
			}
			return true
		})
	}
	if lit == nil {
		return
	}
	named := map[types.Object]bool{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(kv.Key).(*ast.Ident); ok {
			named[pass.TypesInfo.Uses[id]] = true
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || namedOf(c.Type()) == nil || namedOf(c.Type()).Obj() != kindType {
			continue
		}
		if !named[c] {
			pass.Reportf(c.Pos(), "MsgKind constant %s has no kindNames entry; kindNames must cover every kind", name)
		}
	}
}
