// Golden-file tests: each analyzer runs over a fixture package under
// testdata/src carrying `// want "re"` expectations. A disabled or
// regressed analyzer leaves wants unmatched, which fails the test.
package analyzers_test

import (
	"testing"

	"repro/tools/rainbowlint/internal/analyzers"
	"repro/tools/rainbowlint/internal/anatest"
)

func TestBodycheck(t *testing.T)  { anatest.Run(t, analyzers.Bodycheck, "bodytest") }
func TestErrcompare(t *testing.T) { anatest.Run(t, analyzers.Errcompare, "errcmptest") }
func TestSpanfinish(t *testing.T) { anatest.Run(t, analyzers.Spanfinish, "spantest") }
func TestGateorder(t *testing.T)  { anatest.Run(t, analyzers.Gateorder, "site") }
func TestStatswire(t *testing.T)  { anatest.Run(t, analyzers.Statswire, "monitor") }

// TestSuiteComplete pins the multichecker line-up: dropping an analyzer
// from Suite would silently stop enforcing its invariant in CI.
func TestSuiteComplete(t *testing.T) {
	want := []string{"bodycheck", "errcompare", "spanfinish", "gateorder", "statswire"}
	suite := analyzers.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s has no Run", a.Name)
		}
	}
}
