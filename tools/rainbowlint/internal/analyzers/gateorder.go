package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/rainbowlint/internal/analysis"
)

// Gateorder enforces the two lock-discipline conventions recovery
// correctness rests on:
//
//  1. Checkpoint-gate discipline: in the site layer, the participant
//     handlers that force ACP records (HandlePrepare, HandlePreCommit,
//     HandleTermQuery, HandlePreDecide) must run under the checkpoint
//     gate's read side — the caller takes gate.RLock() so a fuzzy
//     checkpoint cannot capture a store the forced record contradicts.
//     HandleDecision is exempt: decision forcing routes through the
//     coordinator log and the participant takes the gate itself.
//
//  2. Sorted shard-lock order: a loop that locks shard mutexes by
//     positions drawn from an index slice must sort that slice first
//     (ranging over the shard slice itself is inherently ordered).
//     Unordered multi-shard acquisition deadlocks against concurrent
//     multi-shard commits.
//
// Both rules are call-pattern checks over the known entry points, not
// whole-program lock analysis; they catch the regression that matters —
// a new call site skipping the convention.
var Gateorder = &analysis.Analyzer{
	Name: "gateorder",
	Doc: "checks checkpoint-gate discipline and sorted shard-lock order\n" +
		"Record-forcing participant handlers need a prior gate.RLock in the\n" +
		"site layer; index-slice lock loops need a prior sort of the slice.",
	Run: runGateorder,
}

// gatedParticipantMethods are the acp.Participant entry points whose
// record forcing the caller must cover with the checkpoint gate.
var gatedParticipantMethods = map[string]bool{
	"HandlePrepare":   true,
	"HandlePreCommit": true,
	"HandleTermQuery": true,
	"HandlePreDecide": true,
}

func runGateorder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		test := isTestFile(pass, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Rule 1 is a production-call-discipline rule for the site
			// layer; tests drive handlers directly through their own
			// fixtures and are exempt.
			if pass.Pkg.Name() == "site" && !test {
				checkGateDiscipline(pass, fn)
			}
			checkSortedLockLoops(pass, fn)
		}
	}
	return nil
}

func checkGateDiscipline(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !gatedParticipantMethods[sel.Sel.Name] {
			return true
		}
		recv := namedOf(pass.TypesInfo.Types[sel.X].Type)
		if recv == nil || recv.Obj().Name() != "Participant" {
			return true
		}
		if !gateHeldBefore(pass, fn, call.Pos()) {
			pass.Reportf(call.Pos(),
				"%s forces an ACP record and must run under the checkpoint gate; take gate.RLock() first in this function",
				sel.Sel.Name)
		}
		return true
	})
}

// gateHeldBefore reports whether fn acquires a sync.RWMutex (the
// checkpoint gate's type) at a position before pos.
func gateHeldBefore(pass *analysis.Pass, fn *ast.FuncDecl, pos token.Pos) bool {
	held := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "RLock" && sel.Sel.Name != "Lock") {
			return true
		}
		if isRWMutex(pass.TypesInfo.Types[sel.X].Type) {
			held = true
		}
		return true
	})
	return held
}

func isRWMutex(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "RWMutex" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// checkSortedLockLoops flags range loops over an integer index slice whose
// body locks by the ranged element when the slice is not visibly sorted
// earlier in the same function.
func checkSortedLockLoops(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		idxVar := rangeElemVar(pass, rng)
		if idxVar == nil || !isIntSlice(pass.TypesInfo.Types[rng.X].Type) {
			return true
		}
		if !lockIndexedBy(pass, rng.Body, idxVar) {
			return true
		}
		if !sortedBefore(pass, fn, rng.X, rng.Pos()) {
			pass.Reportf(rng.Pos(),
				"shard locks are taken in iteration order of %s, which is not sorted in this function; sort it first (unordered multi-shard locking deadlocks)",
				types.ExprString(rng.X))
		}
		return true
	})
}

// rangeElemVar returns the variable bound to the slice *element* in a
// range statement (the second variable), or nil.
func rangeElemVar(pass *analysis.Pass, rng *ast.RangeStmt) *types.Var {
	id, ok := rng.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

func isIntSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// lockIndexedBy reports whether body contains a Lock/RLock call on an
// expression indexed by v (e.g. s.shards[idx].mu.Lock()).
func lockIndexedBy(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		ast.Inspect(sel.X, func(m ast.Node) bool {
			idx, ok := m.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if usesVarExpr(pass, idx.Index, v) {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

func usesVarExpr(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// sortedBefore reports whether the ranged slice expression is passed to a
// sort.* / slices.Sort* call earlier in the function.
func sortedBefore(pass *analysis.Pass, fn *ast.FuncDecl, ranged ast.Expr, pos token.Pos) bool {
	want := types.ExprString(ranged)
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isPkg := pass.TypesInfo.Uses[pkg].(*types.PkgName); !isPkg {
			return true
		}
		if pkg.Name != "sort" && pkg.Name != "slices" {
			return true
		}
		if types.ExprString(call.Args[0]) == want {
			sorted = true
		}
		return true
	})
	return sorted
}
