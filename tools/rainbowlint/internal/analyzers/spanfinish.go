package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/rainbowlint/internal/analysis"
)

// Spanfinish checks that every trace span or active trace obtained in a
// function is finished on all paths out of it: a Timer from
// Active.StartSpan must reach End(), an *Active from Tracer.Begin/Join
// must reach Finish(). An unfinished span silently drops its stage sample
// and, for actives, leaks the collation slot until eviction — the same
// failure mode context.WithCancel has, hence the lostcancel-style shape.
//
// The check is conservative: a span value that escapes the function
// (passed as an argument, stored, returned, or captured by a closure) is
// assumed finished by its new owner, and control flow the analysis cannot
// model (select, goto, labels) suppresses reporting rather than guessing.
var Spanfinish = &analysis.Analyzer{
	Name: "spanfinish",
	Doc: "checks trace.StartSpan/Begin/Join results are finished on all paths\n" +
		"Timers need End(), actives need Finish(); escaping values are assumed\n" +
		"handed off and nil-guarded branches are understood (the API is nil-safe).",
	Run: runSpanfinish,
}

// spanSource describes one tracked acquisition site.
type spanSource struct {
	v      *types.Var // the local the result was assigned to
	assign *ast.AssignStmt
	finish string // required method: "End" or "Finish"
	what   string // human name for reports
}

func runSpanfinish(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkSpanBody(pass, body)
			return true
		})
	}
	return nil
}

func checkSpanBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var sources []spanSource
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions are checked separately
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		finish, what := spanAcquisition(pass, as.Rhs[0])
		if finish == "" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		sources = append(sources, spanSource{v: v, assign: as, finish: finish, what: what})
		return true
	})

	for _, src := range sources {
		checkSpanSource(pass, body, src)
	}
}

// spanAcquisition classifies rhs as a span-producing call, returning the
// finisher method name ("" if not one).
func spanAcquisition(pass *analysis.Pass, rhs ast.Expr) (finish, what string) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	named := namedOf(pass.TypesInfo.Types[call].Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "trace" {
		return "", ""
	}
	switch {
	case sel.Sel.Name == "StartSpan" && named.Obj().Name() == "Timer":
		return "End", "span"
	case (sel.Sel.Name == "Begin" || sel.Sel.Name == "Join") && named.Obj().Name() == "Active":
		return "Finish", "active trace"
	}
	return "", ""
}

func checkSpanSource(pass *analysis.Pass, body *ast.BlockStmt, src spanSource) {
	// Escape analysis: any use of the variable other than a method call on
	// it (or its re-binding in the tracked assignment) hands it off.
	escaped := false
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == src.v {
			if !isReceiverUse(parents, id) && !isNilCompareUse(pass, parents, id) {
				escaped = true
			}
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure capturing the variable owns its lifetime now.
			if usesVar(pass, n, src.v) {
				escaped = true
			}
			return false
		}
		return true
	})
	if escaped {
		return
	}

	list, idx := enclosingList(body, src.assign)
	if list == nil {
		return
	}
	c := &spanPathCheck{pass: pass, src: src}
	ensured := c.listEnsures(list[idx+1:])
	if c.bail {
		return
	}
	// Leaking returns are real regardless of whether the fall-through path
	// finishes: each one left the function with the span still open.
	if len(c.leaks) > 0 {
		for _, pos := range c.leaks {
			pass.Reportf(pos,
				"this return may be reached without finishing the %s started at line %d; call %s.%s()",
				src.what, pass.Fset.Position(src.assign.Pos()).Line, src.v.Name(), src.finish)
		}
		return
	}
	if !ensured {
		pass.Reportf(src.assign.Pos(),
			"%s is not finished on all paths; call %s.%s() (deferring it is safest)",
			src.what, src.v.Name(), src.finish)
	}
}

// isReceiverUse reports whether id is used only as the receiver of a
// method call (v.M(...)) or as the LHS of its own binding.
func isReceiverUse(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	sel, ok := parents[id].(*ast.SelectorExpr)
	if ok && sel.X == id {
		if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
			return true
		}
		return false
	}
	if as, ok := parents[id].(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if l == id {
				return true
			}
		}
	}
	return false
}

// isNilCompareUse reports whether id is one side of a ==/!= nil check —
// a guard, not a handoff, so it must not count as an escape (it is what
// the nilGuard path-analysis exists to understand).
func isNilCompareUse(pass *analysis.Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	cmp, ok := parents[id].(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return false
	}
	other := cmp.X
	if other == ast.Expr(id) {
		other = cmp.Y
	}
	tv, ok := pass.TypesInfo.Types[other]
	return ok && tv.IsNil()
}

func usesVar(pass *analysis.Pass, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// enclosingList finds the innermost statement list containing target and
// its index there.
func enclosingList(body *ast.BlockStmt, target ast.Stmt) (list []ast.Stmt, idx int) {
	var find func(stmts []ast.Stmt) bool
	find = func(stmts []ast.Stmt) bool {
		for i, s := range stmts {
			if s == target {
				list, idx = stmts, i
				return true
			}
			done := false
			ast.Inspect(s, func(n ast.Node) bool {
				if done {
					return false
				}
				switch n := n.(type) {
				case *ast.BlockStmt:
					done = find(n.List)
					return !done
				case *ast.CaseClause:
					done = find(n.Body)
					return !done
				case *ast.CommClause:
					done = find(n.Body)
					return !done
				case *ast.FuncLit:
					return false
				}
				return !done
			})
			if done {
				return true
			}
		}
		return false
	}
	find(body.List)
	return list, idx
}

// spanPathCheck walks statement lists asking "does every path from here
// finish the span before leaving the function?".
type spanPathCheck struct {
	pass  *analysis.Pass
	src   spanSource
	leaks []token.Pos
	bail  bool // hit control flow we don't model; stay silent
}

func (c *spanPathCheck) listEnsures(list []ast.Stmt) bool {
	for _, s := range list {
		if c.bail {
			return true
		}
		switch s := s.(type) {
		case *ast.ExprStmt:
			if c.isFinishCall(s.X) {
				return true
			}
		case *ast.DeferStmt:
			if c.isFinishCall(s.Call) {
				return true
			}
		case *ast.ReturnStmt:
			c.leaks = append(c.leaks, s.Pos())
			return false
		case *ast.BranchStmt:
			if s.Tok == token.GOTO {
				c.bail = true
			}
			// break/continue leave this list; the surrounding scan covers
			// where they land.
			return false
		case *ast.IfStmt:
			thenGuarded, elseGuarded := c.nilGuard(s.Cond)
			thenE, elseE := thenGuarded, elseGuarded
			if !thenGuarded {
				thenE = c.listEnsures(s.Body.List)
			}
			if !elseGuarded {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseE = c.listEnsures(e.List)
				case *ast.IfStmt:
					elseE = c.listEnsures([]ast.Stmt{e})
				}
			}
			if thenE && elseE {
				return true
			}
		case *ast.BlockStmt:
			if c.listEnsures(s.List) {
				return true
			}
		case *ast.ForStmt:
			c.listEnsures(s.Body.List) // surface leaks at inner returns
		case *ast.RangeStmt:
			c.listEnsures(s.Body.List)
		case *ast.SwitchStmt:
			if c.switchEnsures(s.Body) {
				return true
			}
		case *ast.TypeSwitchStmt:
			if c.switchEnsures(s.Body) {
				return true
			}
		case *ast.SelectStmt, *ast.LabeledStmt:
			c.bail = true
			return true
		}
	}
	return false
}

func (c *spanPathCheck) switchEnsures(body *ast.BlockStmt) bool {
	all, hasDefault := true, false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		if !c.listEnsures(cc.Body) {
			all = false
		}
	}
	return all && hasDefault
}

// nilGuard recognizes `v != nil` / `v == nil` conditions: the branch where
// the span is nil needs no finishing (the trace API is nil-safe).
func (c *spanPathCheck) nilGuard(cond ast.Expr) (thenGuarded, elseGuarded bool) {
	cmp, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return false, false
	}
	isV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && c.pass.TypesInfo.Uses[id] == c.src.v
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := c.pass.TypesInfo.Types[ast.Unparen(e)]
		return ok && tv.IsNil()
	}
	if !(isV(cmp.X) && isNil(cmp.Y) || isNil(cmp.X) && isV(cmp.Y)) {
		return false, false
	}
	if cmp.Op == token.EQL {
		return true, false // then-branch has v == nil
	}
	return false, true // else-branch has v == nil
}

func (c *spanPathCheck) isFinishCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != c.src.finish {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && c.pass.TypesInfo.Uses[id] == c.src.v
}
