// Package analyzers holds rainbowlint's project-specific checks. Each
// analyzer encodes one invariant the repo otherwise maintains by review:
//
//   - bodycheck:  wire.Body encode/decode symmetry, version bytes, registry
//   - errcompare: errors.Is instead of ==/!= against sentinel errors
//   - spanfinish: trace spans/actives finished on every path
//   - gateorder:  checkpoint-gate discipline and sorted shard-lock order
//   - statswire:  stats struct fields wired through render and /metrics
//
// The analyzers are structural: they recognize the *shapes* the codebase
// uses (helper names, receiver types, call patterns), not hard-coded file
// paths, so golden-file fixtures under testdata exercise them without
// importing the real packages.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/rainbowlint/internal/analysis"
)

// Suite returns every analyzer in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Bodycheck,
		Errcompare,
		Spanfinish,
		Gateorder,
		Statswire,
	}
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// buildParents maps every node in f to its syntactic parent, for the
// checks that need to know how an expression is being used.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// methodCallName returns the selector name when e is a method/selector
// call, or "".
func methodCallName(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return sel.Sel.Name
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// allowedByDirective reports whether the line containing pos carries a
// `rainbowlint:allow <name>` comment, the per-site escape hatch for
// deliberate violations (e.g. a test asserting a sentinel is wrapped).
// Every use should say why on the same line.
func allowedByDirective(pass *analysis.Pass, pos token.Pos, name string) bool {
	for _, f := range pass.Files {
		if f.Pos() > pos || pos > f.End() {
			continue
		}
		line := pass.Fset.Position(pos).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if pass.Fset.Position(c.Pos()).Line == line &&
					strings.Contains(c.Text, "rainbowlint:allow "+name) {
					return true
				}
			}
		}
	}
	return false
}
