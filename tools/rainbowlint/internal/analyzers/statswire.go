package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/rainbowlint/internal/analysis"
)

// Statswire checks the cross-file consistency of the stats plumbing: a
// counter that is collected but never surfaced is a silent hole in the
// observability story, and nothing but convention keeps the three layers
// aligned. Concretely:
//
//   - package monitor: every exported field of SiteStats and NetStats must
//     be read somewhere in the package (Totals aggregation / Render);
//   - package httpapi: every exported field of monitor.SiteStats and
//     monitor.NetStats must be read in the package (the /metrics export);
//   - package site: every field of cc.Stats must be read in the package
//     (the addCCStats carry-over; a field missed there is lost on every
//     stack rebuild).
//
// A field can opt out with a `statswire:ignore` comment on its
// declaration line (same-package rules only; cross-package passes cannot
// see the declaring file's comments, so their exemptions — if ever needed
// — belong in this analyzer's table with a reason).
var Statswire = &analysis.Analyzer{
	Name: "statswire",
	Doc: "checks stats struct fields are wired through render and /metrics\n" +
		"SiteStats/NetStats fields must be read by monitor and httpapi; cc.Stats\n" +
		"fields must be carried over by site. Opt-out: statswire:ignore comment.",
	Run: runStatswire,
}

// statswireCrossExempt lists cross-package fields exempted from the rule,
// keyed by "Struct.Field". Keep empty unless a field genuinely must not be
// exported; document the reason here.
var statswireCrossExempt = map[string]string{}

func runStatswire(pass *analysis.Pass) error {
	switch pass.Pkg.Name() {
	case "monitor":
		for _, name := range []string{"SiteStats", "NetStats"} {
			checkFieldsRead(pass, localStruct(pass, name), name, "")
		}
	case "httpapi":
		for _, name := range []string{"SiteStats", "NetStats"} {
			checkFieldsRead(pass, importedStruct(pass, "monitor", name), name, "/metrics export")
		}
	case "site":
		checkFieldsRead(pass, importedStruct(pass, "cc", "Stats"), "cc.Stats", "stats carry-over")
	}
	return nil
}

// localStruct resolves a struct type declared in the package under
// analysis, or nil.
func localStruct(pass *analysis.Pass, name string) *types.Named {
	obj, _ := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
	if obj == nil {
		return nil
	}
	n, _ := obj.Type().(*types.Named)
	return n
}

// importedStruct resolves a struct type from a direct import with the
// given package name, or nil.
func importedStruct(pass *analysis.Pass, pkgName, name string) *types.Named {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() != pkgName {
			continue
		}
		obj, _ := imp.Scope().Lookup(name).(*types.TypeName)
		if obj == nil {
			continue
		}
		n, _ := obj.Type().(*types.Named)
		return n
	}
	return nil
}

// checkFieldsRead reports every exported field of the struct that is
// never read within the package under analysis.
func checkFieldsRead(pass *analysis.Pass, named *types.Named, structName, surface string) {
	if named == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	crossPackage := named.Obj().Pkg() != pass.Pkg

	fields := make(map[*types.Var]bool) // field -> read seen
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() && crossPackage {
			continue
		}
		if statswireCrossExempt[structName+"."+f.Name()] != "" {
			continue
		}
		if !crossPackage && fieldIgnored(pass, f) {
			continue
		}
		fields[f] = false
	}

	for _, file := range pass.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo := pass.TypesInfo.Selections[sel]
			if selInfo == nil || selInfo.Kind() != types.FieldVal {
				return true
			}
			f, ok := selInfo.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, tracked := fields[f]; !tracked {
				return true
			}
			if isPureWrite(parents, sel) {
				return true
			}
			fields[f] = true
			return true
		})
	}

	for f, read := range fields {
		if read {
			continue
		}
		pos := f.Pos()
		what := "read in package " + pass.Pkg.Name()
		if surface != "" {
			what = "wired into the " + surface
		}
		if crossPackage {
			// The field is declared elsewhere; anchor the report in this
			// package so go vet attributes it to the right unit.
			pos = reportAnchor(pass)
		}
		pass.Reportf(pos, "%s.%s is collected but never %s; surface it or add a statswire exemption with a reason",
			structName, f.Name(), what)
	}
}

// isPureWrite reports whether sel is only being assigned (sel = x), which
// does not count as surfacing the field. Compound assignments (+=) read.
func isPureWrite(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	p := parents[sel]
	// Unwrap unary &sel — taking the address is a read-ish handoff.
	as, ok := p.(*ast.AssignStmt)
	if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	for _, l := range as.Lhs {
		if l == ast.Expr(sel) {
			return true
		}
	}
	return false
}

// fieldIgnored reports whether the field's declaration line carries a
// statswire:ignore comment.
func fieldIgnored(pass *analysis.Pass, f *types.Var) bool {
	for _, file := range pass.Files {
		if file.Pos() > f.Pos() || f.Pos() > file.End() {
			continue
		}
		line := pass.Fset.Position(f.Pos()).Line
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if pass.Fset.Position(c.Pos()).Line == line &&
					containsIgnore(c.Text) {
					return true
				}
			}
		}
	}
	return false
}

func containsIgnore(text string) bool {
	return strings.Contains(text, "statswire:ignore")
}

// reportAnchor picks a stable position in the analyzed package for
// diagnostics about fields declared elsewhere: the stats-consuming
// function if present, else the first file's package clause.
func reportAnchor(pass *analysis.Pass) token.Pos {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if fn.Name.Name == "WriteMetrics" || fn.Name.Name == "addCCStats" {
					return fn.Name.Pos()
				}
			}
		}
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Name.Pos()
	}
	return token.NoPos
}
