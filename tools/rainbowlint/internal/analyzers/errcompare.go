package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/rainbowlint/internal/analysis"
)

// Errcompare flags ==/!= comparisons between an error value and a sentinel
// error variable. Sentinels travel wrapped through fmt.Errorf("...: %w")
// and model.AbortError causes, so identity comparison silently stops
// matching the moment any layer adds context; errors.Is is the only form
// that survives wrapping.
//
// Allowlisted: io.EOF and io.ErrUnexpectedEOF (raw reader contracts return
// them unwrapped by definition), net.ErrClosed and http.ErrServerClosed
// (same contract), and any comparison whose other operand is a direct
// `x.Err()` call — context.Context.Err documents returning the sentinel
// itself.
var Errcompare = &analysis.Analyzer{
	Name: "errcompare",
	Doc: "flags ==/!= against sentinel errors where errors.Is is required\n" +
		"Sentinel errors arrive wrapped via %w and AbortError causes; identity\n" +
		"comparison misses them. io.EOF-style raw-reader sentinels are allowlisted.",
	Run: runErrcompare,
}

// errcompareAllowlist names sentinels whose package contracts guarantee
// unwrapped returns on the paths that compare them.
var errcompareAllowlist = map[string]bool{
	"io.EOF":               true,
	"io.ErrUnexpectedEOF":  true,
	"net.ErrClosed":        true,
	"http.ErrServerClosed": true,
}

func runErrcompare(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			xs, xname := sentinelError(pass, cmp.X)
			ys, yname := sentinelError(pass, cmp.Y)
			if xs == nil && ys == nil {
				return true
			}
			// Pick the sentinel side; the other operand must itself be an
			// error (rules out kind == ErrKindConst-style value types).
			sentinel, name, other := xs, xname, cmp.Y
			if sentinel == nil {
				sentinel, name, other = ys, yname, cmp.X
			}
			if errcompareAllowlist[name] {
				return true
			}
			if !implementsError(pass.TypesInfo.Types[other].Type) {
				return true
			}
			if isNilExpr(pass, other) {
				return true
			}
			// ctx.Err()-style accessors document returning the sentinel
			// identity; comparing their result directly is sound.
			if methodCallName(other) == "Err" {
				return true
			}
			if allowedByDirective(pass, cmp.OpPos, "errcompare") {
				return true
			}
			pass.Reportf(cmp.OpPos,
				"comparison with sentinel error %s uses %s; use errors.Is so wrapped errors still match",
				name, cmp.Op)
			return true
		})
	}
	return nil
}

// sentinelError reports whether e refers to a package-level error variable,
// returning the variable and its qualified name.
func sentinelError(pass *analysis.Pass, e ast.Expr) (*types.Var, string) {
	var id *ast.Ident
	qualifier := ""
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		if pkg, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[pkg].(*types.PkgName); isPkg {
				id = e.Sel
				qualifier = pkg.Name + "."
			}
		}
	}
	if id == nil {
		return nil, ""
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil, ""
	}
	if !implementsError(v.Type()) {
		return nil, ""
	}
	return v, qualifier + v.Name()
}

// isNilExpr reports whether e is the untyped nil.
func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
