// Package spantest exercises spanfinish: spans and actives must be
// finished on every path out of the function; escaping values are the
// new owner's problem, and nil guards are understood.
package spantest

import "trace"

// leakEarlyReturn loses the span when cond short-circuits.
func leakEarlyReturn(a *trace.Active, cond bool) int {
	sp := a.StartSpan("work")
	if cond {
		return 1 // want `this return may be reached without finishing the span`
	}
	sp.End()
	return 0
}

// leakNoFinish never finishes the active anywhere.
func leakNoFinish(tr *trace.Tracer) {
	act := tr.Begin("tx") // want `active trace is not finished on all paths`
	sp := act.StartSpan("stage")
	sp.End()
}

// finishedOK covers every path; the deferred Finish is the safest form.
func finishedOK(tr *trace.Tracer, cond bool) {
	act := tr.Begin("tx")
	defer act.Finish()
	sp := act.StartSpan("stage")
	if cond {
		sp.End()
		return
	}
	sp.End()
}

// handsOff passes the span on; the sink owns its lifetime now.
func handsOff(a *trace.Active, sink func(trace.Timer)) {
	sp := a.StartSpan("handoff")
	sink(sp)
}

// nilGuarded returns early only on the nil branch, which the nil-safe
// trace API does not require finishing.
func nilGuarded(tr *trace.Tracer) {
	act := tr.Join("tx")
	if act == nil {
		return
	}
	act.Finish()
}
