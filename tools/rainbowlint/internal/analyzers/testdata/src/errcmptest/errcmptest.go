// Package errcmptest exercises errcompare: identity comparison against
// sentinel errors, the io.EOF-style allowlist, the .Err() accessor
// exemption, and the rainbowlint:allow directive.
package errcmptest

import "io"

type strErr string

func (e strErr) Error() string { return string(e) }

var (
	ErrGone  error = strErr("gone")
	errLocal error = strErr("local")
)

// ErrKindConst is not an error; comparing values of non-error type to it
// must stay silent.
const ErrKindConst = 7

type ctxLike struct{}

func (ctxLike) Err() error { return ErrGone }

func compare(err error, kind int) int {
	if err == ErrGone { // want `comparison with sentinel error ErrGone uses ==; use errors.Is`
		return 1
	}
	if err != errLocal { // want `comparison with sentinel error errLocal uses !=; use errors.Is`
		return 2
	}
	if err == io.EOF { // allowlisted: raw readers return it unwrapped
		return 3
	}
	var c ctxLike
	if c.Err() == ErrGone { // Err() accessors document returning the identity
		return 4
	}
	if err == nil {
		return 5
	}
	if err == ErrGone { // rainbowlint:allow errcompare — deliberate identity assertion
		return 6
	}
	if kind == ErrKindConst {
		return 7
	}
	return 0
}
