// Package bodytest exercises bodycheck: RegisterBody coverage, version
// bytes, encode/decode field-sequence symmetry, and kindNames
// completeness. The scaffolding mirrors internal/wire's shapes (helper
// names, bodyReader methods) without importing it.
package bodytest

type TxID struct {
	Site string
	Seq  uint64
}

type bodyReader struct {
	b   []byte
	err error
}

func (r *bodyReader) version() byte   { return 0 }
func (r *bodyReader) bool() bool      { return false }
func (r *bodyReader) uvarint() uint64 { return 0 }
func (r *bodyReader) str() string     { return "" }
func (r *bodyReader) count() int      { return 0 }
func (r *bodyReader) tx() TxID        { return TxID{} }

func appendUvarint(b []byte, v uint64) []byte { return b }
func appendBool(b []byte, v bool) []byte      { return b }
func appendString(b []byte, s string) []byte  { return b }
func appendTx(b []byte, tx TxID) []byte       { return b }

func AppendGob(b []byte, v any) []byte { return b }
func DecodeGob(p []byte, v any) error  { return nil }

type Body interface {
	AppendTo([]byte) []byte
	DecodeFrom([]byte) error
}

func RegisterBody(kind MsgKind, mk func() Body) {}

func init() {
	RegisterBody(KindGood, func() Body { return new(GoodBody) })
	RegisterBody(KindNoVersion, func() Body { return new(BadNoVersion) })
	RegisterBody(KindReordered, func() Body { return new(BadReordered) })
	RegisterBody(KindShort, func() Body { return new(BadShort) })
	RegisterBody(KindGob, func() Body { return &GobBody{} })
}

// GoodBody follows every convention: registered, versioned, symmetric,
// with a count-prefixed repeated group.
type GoodBody struct {
	Tx    TxID
	Name  string
	Flags uint64
	Keys  []string
}

func (m *GoodBody) AppendTo(buf []byte) []byte {
	buf = append(buf, 1)
	buf = appendString(appendTx(buf, m.Tx), m.Name)
	buf = appendUvarint(buf, m.Flags)
	buf = appendUvarint(buf, uint64(len(m.Keys)))
	for _, k := range m.Keys {
		buf = appendString(buf, k)
	}
	return buf
}

func (m *GoodBody) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	_ = r.version()
	m.Tx = r.tx()
	m.Name = r.str()
	m.Flags = r.uvarint()
	if n := r.count(); n > 0 {
		m.Keys = make([]string, 0, n)
		for i := 0; i < n; i++ {
			m.Keys = append(m.Keys, r.str())
		}
	}
	return r.err
}

// BadNoVersion skips the version byte on both sides.
type BadNoVersion struct{ N uint64 }

func (m *BadNoVersion) AppendTo(buf []byte) []byte { // want `BadNoVersion: AppendTo does not open with a version byte`
	return appendUvarint(buf, m.N)
}

func (m *BadNoVersion) DecodeFrom(p []byte) error { // want `BadNoVersion: DecodeFrom does not read the version byte first`
	r := bodyReader{b: p}
	m.N = r.uvarint()
	return r.err
}

// BadReordered decodes its fields in the opposite order.
type BadReordered struct {
	Name string
	N    uint64
}

func (m *BadReordered) AppendTo(buf []byte) []byte {
	buf = append(buf, 1)
	buf = appendString(buf, m.Name)
	return appendUvarint(buf, m.N)
}

func (m *BadReordered) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	_ = r.version()
	m.N = r.uvarint() // want `BadReordered: field #1 mismatch: AppendTo writes string but DecodeFrom reads uvarint`
	m.Name = r.str()
	return r.err
}

// BadShort decodes fewer fields than the encoder writes.
type BadShort struct{ A, B bool }

func (m *BadShort) AppendTo(buf []byte) []byte {
	buf = append(buf, 1)
	buf = appendBool(buf, m.A)
	return appendBool(buf, m.B)
}

func (m *BadShort) DecodeFrom(p []byte) error { // want `BadShort: AppendTo writes 2 fields`
	r := bodyReader{b: p}
	_ = r.version()
	m.A = r.bool()
	return r.err
}

// GobBody is pure gob: self-describing, so no version byte needed.
type GobBody struct{ M map[string]int }

func (m *GobBody) AppendTo(buf []byte) []byte { return AppendGob(buf, m) }
func (m *GobBody) DecodeFrom(p []byte) error  { return DecodeGob(p, m) }

// Orphan has both codec methods but no RegisterBody entry.
type Orphan struct{ N uint64 }

func (m *Orphan) AppendTo(buf []byte) []byte { // want `wire body Orphan is not registered with RegisterBody`
	buf = append(buf, 1)
	return appendUvarint(buf, m.N)
}

func (m *Orphan) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	_ = r.version()
	m.N = r.uvarint()
	return r.err
}

// MsgKind and kindNames: the names map must cover every constant.
type MsgKind uint16

const (
	KindGood MsgKind = iota
	KindNoVersion
	KindReordered
	KindShort
	KindGob
	KindUnnamed // want `MsgKind constant KindUnnamed has no kindNames entry`
)

var kindNames = map[MsgKind]string{
	KindGood:      "good",
	KindNoVersion: "no-version",
	KindReordered: "reordered",
	KindShort:     "short",
	KindGob:       "gob",
}
