// Package trace mirrors the span surface of the repo's trace package —
// just enough type structure (package name, Timer/Active names, the
// StartSpan/Begin/Join/End/Finish methods) for spanfinish fixtures to
// type-check against.
package trace

type Timer struct{ active *Active }

func (t Timer) End() {}

type Active struct{ name string }

func (a *Active) StartSpan(name string) Timer { return Timer{active: a} }
func (a *Active) Finish()                     {}

type Tracer struct{}

func (tr *Tracer) Begin(name string) *Active { return &Active{name: name} }
func (tr *Tracer) Join(name string) *Active  { return &Active{name: name} }
