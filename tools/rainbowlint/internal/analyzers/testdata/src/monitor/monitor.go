// Package monitor exercises statswire's same-package rule: every field of
// SiteStats and NetStats must be read somewhere in the package, pure
// writes don't count, and statswire:ignore opts a field out.
package monitor

type SiteStats struct {
	Committed uint64
	Aborted   uint64
	Forgotten uint64 // want `SiteStats.Forgotten is collected but never read in package monitor`
	Scratch   uint64 // statswire:ignore — internal accumulator, not a surfaced stat
}

type NetStats struct {
	Sent    uint64
	Dropped uint64 // want `NetStats.Dropped is collected but never read in package monitor`
}

// Render reads the surfaced fields. Forgotten is only ever written (a
// pure write is not a surface), Dropped is never touched, and Scratch
// has opted out.
func Render(s SiteStats, n NetStats) uint64 {
	s.Scratch = 1
	s.Forgotten = 2
	return s.Committed + s.Aborted + n.Sent
}
