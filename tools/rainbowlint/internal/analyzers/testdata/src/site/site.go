// Package site exercises gateorder: record-forcing participant handlers
// need a prior checkpoint-gate RLock in the calling function, and lock
// loops over an index slice need the slice sorted first.
package site

import (
	"sort"
	"sync"
)

type Participant struct{}

func (p *Participant) HandlePrepare(tx int) error   { return nil }
func (p *Participant) HandlePreCommit(tx int) error { return nil }
func (p *Participant) HandleDecision(tx int)        {}

type shard struct {
	mu    sync.Mutex
	items map[string]string
}

type Site struct {
	gate   sync.RWMutex
	part   *Participant
	shards []shard
}

// prepareGated takes the checkpoint gate before forcing the record.
func (s *Site) prepareGated(tx int) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	return s.part.HandlePrepare(tx)
}

// prepareUngated skips the gate: a fuzzy checkpoint could capture a store
// the forced record contradicts.
func (s *Site) prepareUngated(tx int) error {
	return s.part.HandlePrepare(tx) // want `HandlePrepare forces an ACP record and must run under the checkpoint gate`
}

// decide is exempt: decision forcing routes through the coordinator log
// and the participant takes the gate itself.
func (s *Site) decide(tx int) {
	s.part.HandleDecision(tx)
}

// lockSorted sorts the index slice before the acquisition loop.
func (s *Site) lockSorted(order []int) {
	sort.Ints(order)
	for _, i := range order {
		s.shards[i].mu.Lock()
	}
}

// lockUnsorted acquires in caller-supplied order: deadlock bait against a
// concurrent multi-shard commit.
func (s *Site) lockUnsorted(order []int) {
	for _, i := range order { // want `shard locks are taken in iteration order of order, which is not sorted`
		s.shards[i].mu.Lock()
	}
}

// lockAll ranges the shard slice itself, which is inherently ordered.
func (s *Site) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}
