// Package unit implements the `go vet -vettool` unit-checking protocol for
// rainbowlint without depending on golang.org/x/tools: cmd/go hands the tool
// a JSON config file describing one package unit (file set, import map,
// export-data locations), the tool type-checks the unit from those inputs,
// runs its analyzers, prints findings, and writes the (here: empty) facts
// file cmd/go caches. The config schema below mirrors
// x/tools/go/analysis/unitchecker.Config, which is the contract cmd/go
// speaks; fields rainbowlint does not consume are retained so the JSON
// decodes losslessly.
package unit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/tools/rainbowlint/internal/analysis"
)

// Config is one package unit as described by cmd/go's vet.cfg file.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run processes one vet.cfg unit and returns the process exit code:
// 0 clean, 1 diagnostics found, 2 hard failure (unreadable config,
// typecheck error without SucceedOnTypecheckFailure).
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// rainbowlint exports no facts, so a facts-only run has nothing to do
	// beyond producing the (empty) vetx file cmd/go caches for dependents.
	if cfg.VetxOnly {
		if err := writeVetx(cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return 0
	}

	diags, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// Mirror unitchecker: e.g. tests of cmd/... with incomplete
			// export data are vetted best-effort.
			writeVetx(cfg) //nolint:errcheck
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 1
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rainbowlint: reading vet config: %v", err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("rainbowlint: parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}

// writeVetx emits the facts file cmd/go expects at cfg.VetxOutput. The
// suite defines no facts, so the file is empty; it still must exist for the
// vet action's result to be cacheable.
func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		return fmt.Errorf("rainbowlint: writing facts: %v", err)
	}
	return nil
}

// analyze parses and type-checks the unit, then runs every analyzer over
// it, returning rendered diagnostics sorted by position.
func analyze(cfg *Config, analyzers []*analysis.Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Resolve import paths to export data files via the unit's map.
		file, ok := cfg.PackageFile[path]
		if !ok {
			if cfg.Compiler == "gccgo" && cfg.Standard[path] {
				return nil, nil // gccgo stdlib is self-describing
			}
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: goLanguageVersion(cfg.GoVersion),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	for _, a := range analyzers {
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}

	out := make([]string, 0, len(diags))
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
	}
	return out, nil
}

// goLanguageVersion trims a toolchain version like "go1.24.0" to the
// two-part language version go/types accepts.
func goLanguageVersion(v string) string {
	if v == "" {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
