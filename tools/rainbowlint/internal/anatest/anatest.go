// Package anatest is a minimal analysistest: it loads a fixture package
// from testdata/src/<path>, type-checks it (resolving fixture-local
// imports from testdata/src first and the standard library from source),
// runs one analyzer over it, and compares the diagnostics against
// `// want "regexp"` comments in the fixture.
//
// The format is the x/tools one: a comment of the form
//
//	// want "first diagnostic re" "second diagnostic re"
//
// expects exactly those diagnostics (each matching its regexp) on that
// line. Every diagnostic must be matched by a want and every want must be
// matched by a diagnostic, so a fixture with wants fails loudly if its
// analyzer is disabled or regresses.
package anatest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/rainbowlint/internal/analysis"
)

// Run loads testdata/src/<pkgpath> relative to the test's working
// directory, applies a, and reports mismatches via t.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		fset:   fset,
		root:   filepath.Join("testdata", "src"),
		pkgs:   map[string]*fixturePkg{},
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
	fp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Fset:      fset,
		Files:     fp.files,
		Pkg:       fp.pkg,
		TypesInfo: fp.info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkgpath, err)
	}

	wants := collectWants(t, fset, fp.files)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments; it cannot catch a disabled %s", pkgpath, a.Name)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

// want is one expectation parsed from a comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

type wantMap map[string][]*want // "file.go:line" -> expectations

func (m wantMap) match(key, msg string) bool {
	for _, w := range m[key] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE pulls the quoted regexps (double- or back-quoted) out of a want
// comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) wantMap {
	t.Helper()
	out := wantMap{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, "want ") {
					continue
				}
				text := body[len("want "):]
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				for _, q := range wantRE.FindAllString(text, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// fixturePkg is one loaded-and-checked fixture package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves import paths against testdata/src first, then the
// standard library (compiled from source; the test environment has no
// export data for a vettool-free toolchain layout).
type loader struct {
	fset   *token.FileSet
	root   string
	pkgs   map[string]*fixturePkg
	stdlib types.Importer
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.root, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	cfg := &types.Config{Importer: importerFunc(ld.resolve)}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = fp
	return fp, nil
}

func (ld *loader) resolve(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := os.Stat(filepath.Join(ld.root, path)); err == nil {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return ld.stdlib.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
