// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API: just enough structure for rainbowlint's
// project-specific analyzers to be written in the standard shape (an Analyzer
// value with a Run function over a typed Pass) and driven either by the
// unitchecker-compatible `go vet -vettool` protocol (internal/unit) or by the
// golden-file test runner (internal/anatest). The container image pins the
// module graph (no network), so vendoring x/tools is not an option; the
// surface here is deliberately tiny and mirrors the upstream names so the
// analyzers port verbatim if the real dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the flag/reporting name (lower-case, no spaces).
	Name string
	// Doc is the one-paragraph description printed by -flags usage and the
	// README generator.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to an Analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic; the driver decides formatting.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
