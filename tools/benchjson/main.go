// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark line with its iteration count
// and every reported metric — the format CI archives (BENCH_pr2.json etc.)
// so the performance trajectory across PRs stays machine-readable.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x . | go run ./tools/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark... --- FAIL" line
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value / unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
