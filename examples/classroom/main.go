// Classroom demonstrates the paper's two suggested term projects (§5) side
// by side with the stock protocols:
//
//  1. replacing two-phase commit with three-phase commit: crash the
//     coordinator after participants voted and watch 2PC leave blocked
//     "orphan" transactions until the coordinator returns, while 3PC's
//     cooperative termination resolves them without it;
//  2. replacing basic timestamp ordering with multi-version TSO: a
//     late-timestamped read that basic TSO rejects is served from an older
//     version under MVTSO.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/storage"
)

func main() {
	fmt.Println("== Term project 1: 2PC vs 3PC under coordinator failure ==")
	for _, acpName := range []string{"2pc", "3pc"} {
		orphansDuring, drained := commitProtocolDemo(acpName)
		fmt.Printf("%s: orphans while coordinator down = %d; drained without coordinator = %v\n",
			acpName, orphansDuring, drained)
	}
	fmt.Println("expected: 2PC blocks (orphans stay until the coordinator recovers);")
	fmt.Println("3PC terminates cooperatively and drains them with the coordinator still down.")

	fmt.Println("\n== Term project 2: basic TSO vs multi-version TSO ==")
	tsoDemo()
}

// commitProtocolDemo runs transactions while the coordinator site crashes
// mid-commit, then reports how many participants stayed in-doubt and
// whether they resolved while the coordinator was still down.
func commitProtocolDemo(acpName string) (orphans int, drainedWithoutCoordinator bool) {
	inst, err := core.New(core.Options{
		Sites:     []model.SiteID{"S1", "S2", "S3"},
		Items:     map[model.ItemID]int64{"x": 0, "y": 0},
		Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: acpName},
		Timeouts: schema.Timeouts{
			Op: 500 * time.Millisecond, Vote: 500 * time.Millisecond,
			Ack: 300 * time.Millisecond, Lock: 300 * time.Millisecond,
			OrphanResolve: 100 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	ctx := context.Background()

	// Fire a burst of writes homed at S1 and crash S1 while they are in
	// the middle of commitment.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 12; i++ {
			inst.Submit(ctx, "S1", []model.Op{model.Write("x", int64(i)), model.Write("y", int64(i))})
		}
	}()
	time.Sleep(3 * time.Millisecond)
	inst.Injector.Crash("S1")
	<-done

	// Give the orphan resolvers one beat, then measure while S1 is down.
	time.Sleep(250 * time.Millisecond)
	orphans = inst.Orphans()
	drainedWithoutCoordinator = inst.WaitOrphansDrained(2 * time.Second)

	// Recover the coordinator: 2PC's orphans must now drain too.
	if err := inst.Injector.Recover("S1"); err != nil {
		log.Fatal(err)
	}
	if !inst.WaitOrphansDrained(5 * time.Second) {
		log.Fatalf("%s: orphans survived coordinator recovery", acpName)
	}
	return orphans, drainedWithoutCoordinator
}

// tsoDemo shows the observable difference between the two TSO variants
// using the CC managers directly (the classroom exercise works at this
// level before wiring a new protocol into the full stack).
func tsoDemo() {
	mk := func(name string) cc.Manager {
		st := storage.New()
		st.Init(map[model.ItemID]int64{"x": 100})
		m, err := cc.New(name, st, cc.Options{LockTimeout: time.Second})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	ts := func(t uint64) model.Timestamp { return model.Timestamp{Time: t, Site: "S"} }
	tx := func(n uint64) model.TxID { return model.TxID{Site: "S", Seq: n} }
	ctx := context.Background()

	for _, name := range []string{"tso", "mvtso"} {
		m := mk(name)
		// A writer at timestamp 10 commits x=200.
		if _, err := m.PreWrite(ctx, tx(1), ts(10), "x", 200); err != nil {
			log.Fatal(err)
		}
		m.Commit(tx(1), []model.WriteRecord{{Item: "x", Value: 200, Version: 1}})
		// A straggler reader at timestamp 5 arrives late.
		v, _, err := m.Read(ctx, tx(2), ts(5), "x")
		if err != nil {
			fmt.Printf("%-6s late read at ts=5: REJECTED (%v)\n", name, err)
		} else {
			fmt.Printf("%-6s late read at ts=5: served old version x=%d\n", name, v)
		}
		m.Abort(tx(2))
	}
	fmt.Println("expected: tso rejects the late read; mvtso serves x=100 from the version chain.")
}
