// Quickstart: bring up a three-site Rainbow instance, submit a few manual
// transactions (the Figure A-2 panel, programmatically), run a small
// simulated workload, and print the transaction-processing output panel
// (Figure 5).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/wlg"
)

func main() {
	// 1. Configure: three sites, two items replicated everywhere, the
	// paper's default protocols (QC replication, 2PL locking, 2PC commit).
	inst, err := core.New(core.Options{
		Sites: []model.SiteID{"S1", "S2", "S3"},
		Items: map[model.ItemID]int64{
			"x": 100, "y": 200, "a": 0, "b": 0, "c": 0, "d": 0, "e": 0, "f": 0,
		},
		Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"},
		Timeouts:  schema.Timeouts{Lock: 500 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	ctx := context.Background()

	// 2. Manual workload: a read-modify-write transaction homed at S1.
	out, err := inst.SubmitManual(ctx, "S1", []wlg.Manual{
		{Kind: "r", Item: "x"},
		{Kind: "w", Item: "x", Value: 150},
		{Kind: "r", Item: "y"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manual tx %s: committed=%v reads=%v\n", out.Tx, out.Committed, out.Reads)

	// A transaction homed elsewhere observes the committed write (quorum
	// intersection guarantees it).
	out2 := inst.Submit(ctx, "S3", []model.Op{model.Read("x")})
	fmt.Printf("read from S3: x=%d (committed=%v)\n", out2.Reads["x"], out2.Committed)

	// 3. Simulated workload: 200 transactions at MPL 4, 75% reads.
	res := inst.RunWorkload(ctx, wlg.Profile{
		Transactions: 200, MPL: 4, OpsPerTx: 4, ReadFraction: 0.75, Retries: 3,
	})
	fmt.Printf("\nworkload: %d committed / %d submitted (%.1f tx/s)\n\n",
		res.Committed, res.Submitted, res.Throughput())

	// 4. The output statistics panel.
	fmt.Print(inst.Report().Render())

	// 5. Verify the global execution was serializable.
	if err := inst.CheckSerializable(core.CommittedSet(res.Outcomes)); err != nil {
		log.Fatalf("serializability violated: %v", err)
	}
	fmt.Println("serializability check: OK")
}
