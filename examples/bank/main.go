// Bank: the classic distributed-transactions classroom scenario. Ten
// replicated accounts start with 1000 units each; concurrent clients move
// random amounts between random account pairs with read-modify-write
// transactions. Atomicity plus serializability imply an invariant the
// example verifies at the end: the total balance never changes, even with
// a site crashing and recovering mid-run.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/schema"
)

const (
	accounts       = 16
	initialBalance = 1000
	transfers      = 120
	clients        = 4
)

func account(i int) model.ItemID { return model.ItemID(fmt.Sprintf("acct%02d", i)) }

func main() {
	items := make(map[model.ItemID]int64, accounts)
	for i := 0; i < accounts; i++ {
		items[account(i)] = initialBalance
	}
	inst, err := core.New(core.Options{
		Sites:     []model.SiteID{"S1", "S2", "S3"},
		Items:     items,
		Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"},
		// Short lock waits keep the upgrade-conflict retry loop snappy: the
		// read-modify-write pattern deadlocks under 2PL and relies on
		// abort-and-retry rather than long waits.
		Timeouts: schema.Timeouts{
			Op: 500 * time.Millisecond, Vote: 500 * time.Millisecond,
			Ack: 300 * time.Millisecond, Lock: 150 * time.Millisecond,
			OrphanResolve: 100 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	ctx := context.Background()
	sites := inst.SiteIDs()

	// Crash S3 a moment into the run and recover it shortly after — the
	// transfer stream must keep its invariant through the failure.
	go func() {
		time.Sleep(50 * time.Millisecond)
		inst.Injector.Crash("S3")
		fmt.Println("injector: S3 crashed")
		time.Sleep(150 * time.Millisecond)
		if err := inst.Injector.Recover("S3"); err != nil {
			log.Printf("recover failed: %v", err)
			return
		}
		fmt.Println("injector: S3 recovered")
	}()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		committed int
		aborted   int
	)
	work := make(chan int, transfers)
	for i := 0; i < transfers; i++ {
		work <- i
	}
	close(work)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			for range work {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				for to == from {
					to = rng.Intn(accounts)
				}
				amount := int64(1 + rng.Intn(50))
				home := sites[rng.Intn(len(sites))]
				if transfer(ctx, inst, home, account(from), account(to), amount, rng) {
					mu.Lock()
					committed++
					mu.Unlock()
				} else {
					mu.Lock()
					aborted++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	fmt.Printf("\ntransfers: %d committed, %d aborted\n", committed, aborted)

	// Audit: read every account in one transaction and sum.
	ops := make([]model.Op, 0, accounts)
	for i := 0; i < accounts; i++ {
		ops = append(ops, model.Read(account(i)))
	}
	audit := inst.Submit(ctx, "S1", ops)
	if !audit.Committed {
		log.Fatalf("audit transaction aborted: %+v", audit)
	}
	total := int64(0)
	for _, v := range audit.Reads {
		total += v
	}
	want := int64(accounts * initialBalance)
	fmt.Printf("audit: total balance = %d (want %d)\n", total, want)
	if total != want {
		log.Fatal("INVARIANT VIOLATED: money created or destroyed")
	}
	fmt.Println("invariant holds: transfers were atomic and serializable")
	fmt.Println()
	fmt.Print(inst.Report().Render())
}

// transfer moves amount from a to b inside ONE interactive transaction:
// the new balances are computed from values read under the transaction's
// own locks/timestamps, so atomicity and isolation come from the protocol
// stack, not from client-side luck. Upgrade conflicts under 2PL abort; a
// jittered retry is the standard client response.
func transfer(ctx context.Context, inst *core.Instance, home model.SiteID, a, b model.ItemID, amount int64, rng *rand.Rand) bool {
	site, ok := inst.Site(home)
	if !ok {
		return false
	}
	for attempt := 0; attempt < 8; attempt++ {
		txn, err := site.Begin(ctx)
		if err != nil {
			time.Sleep(time.Duration(rng.Intn(20*(attempt+1))) * time.Millisecond)
			continue
		}
		balA, err := txn.Read(a)
		if err != nil {
			txn.Abort()
			time.Sleep(time.Duration(rng.Intn(20*(attempt+1))) * time.Millisecond)
			continue
		}
		if balA < amount {
			txn.Abort() // insufficient funds: give up cleanly
			return true
		}
		balB, err := txn.Read(b)
		if err == nil {
			err = txn.Write(a, balA-amount)
		}
		if err == nil {
			err = txn.Write(b, balB+amount)
		}
		if err != nil {
			txn.Abort()
			time.Sleep(time.Duration(rng.Intn(20*(attempt+1))) * time.Millisecond)
			continue
		}
		if out := txn.Commit(); out.Committed {
			return true
		}
		time.Sleep(time.Duration(rng.Intn(20*(attempt+1))) * time.Millisecond)
	}
	return false
}
