// Partition demonstrates quorum consensus under a network partition — the
// scenario weighted voting was invented for. Five sites split into a
// majority side {S1,S2,S3} and a minority side {S4,S5}:
//
//   - transactions homed on the majority side keep committing (their
//     quorums are intact);
//   - transactions homed on the minority side abort with replication-level
//     causes (no quorum is reachable), so the database cannot diverge;
//   - after healing, the minority reads the majority's writes via version
//     numbers — no explicit reconciliation step is needed.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/schema"
)

func main() {
	sites := []model.SiteID{"S1", "S2", "S3", "S4", "S5"}
	inst, err := core.New(core.Options{
		Sites:     sites,
		Items:     map[model.ItemID]int64{"x": 0},
		Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"},
		Timeouts: schema.Timeouts{
			Op: 300 * time.Millisecond, Vote: 300 * time.Millisecond,
			Ack: 200 * time.Millisecond, Lock: 150 * time.Millisecond,
			OrphanResolve: 100 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	ctx := context.Background()

	fmt.Println("before partition: write x=1 from S1")
	out := inst.Submit(ctx, "S1", []model.Op{model.Write("x", 1)})
	fmt.Printf("  committed=%v\n", out.Committed)

	fmt.Println("\npartition: {S1,S2,S3} | {S4,S5}")
	inst.Injector.Partition(
		[]model.SiteID{"S1", "S2", "S3"},
		[]model.SiteID{"S4", "S5"},
	)

	maj := inst.Submit(ctx, "S1", []model.Op{model.Write("x", 2), model.Read("x")})
	fmt.Printf("  majority-side write: committed=%v reads=%v\n", maj.Committed, maj.Reads)

	minW := inst.Submit(ctx, "S4", []model.Op{model.Write("x", 99)})
	fmt.Printf("  minority-side write: committed=%v cause=%s\n", minW.Committed, minW.Cause)
	minR := inst.Submit(ctx, "S4", []model.Op{model.Read("x")})
	fmt.Printf("  minority-side read:  committed=%v cause=%s\n", minR.Committed, minR.Cause)

	if !maj.Committed || minW.Committed || minR.Committed {
		log.Fatal("unexpected partition behaviour")
	}

	fmt.Println("\nheal partition")
	inst.Injector.Heal()
	healed := inst.Submit(ctx, "S4", []model.Op{model.Read("x")})
	fmt.Printf("  minority-side read after heal: x=%d committed=%v\n", healed.Reads["x"], healed.Committed)
	if !healed.Committed || healed.Reads["x"] != 2 {
		log.Fatal("stale read after heal: quorum intersection must surface x=2")
	}
	fmt.Println("\nthe minority never served stale data, and converged without reconciliation.")
}
