// Quorumstudy reproduces the experiment the paper reports Rainbow being
// used for (§3, ref [3]): quorum-consensus behaviour and message traffic in
// quorum-based systems. It sweeps the replication degree and the read/write
// mix, running the same workload under ROWA and QC, and prints the
// messages-per-committed-transaction series plus the availability contrast
// when a minority of sites fails.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/wlg"
)

func siteIDs(n int) []model.SiteID {
	out := make([]model.SiteID, n)
	for i := range out {
		out[i] = model.SiteID(fmt.Sprintf("S%d", i+1))
	}
	return out
}

func run(n int, rcpName string, readFraction float64) (msgsPerCommit float64, commitRate float64) {
	inst, err := core.New(core.Options{
		Sites:     siteIDs(n),
		Items:     map[model.ItemID]int64{"a": 0, "b": 0, "c": 0, "d": 0, "e": 0, "f": 0, "g": 0, "h": 0},
		Protocols: schema.Protocols{RCP: rcpName, CCP: "2pl", ACP: "2pc"},
		Timeouts: schema.Timeouts{
			Op: 500 * time.Millisecond, Vote: 500 * time.Millisecond,
			Ack: 300 * time.Millisecond, Lock: 150 * time.Millisecond,
			OrphanResolve: 100 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer inst.Close()
	res := inst.RunWorkload(context.Background(), wlg.Profile{
		Transactions: 150, MPL: 2, OpsPerTx: 4, ReadFraction: readFraction, Retries: 3,
	})
	rep := inst.Report()
	return rep.MessagesPerCommit(), res.CommitRate()
}

func main() {
	fmt.Println("== message traffic vs replication degree (75% reads) ==")
	fmt.Printf("%-8s %14s %14s\n", "copies", "rowa msg/tx", "qc msg/tx")
	for _, n := range []int{1, 3, 5, 7} {
		rowa, _ := run(n, "rowa", 0.75)
		qc, _ := run(n, "qc", 0.75)
		fmt.Printf("%-8d %14.1f %14.1f\n", n, rowa, qc)
	}

	fmt.Println("\n== message traffic vs read fraction (5 copies) ==")
	fmt.Printf("%-8s %14s %14s\n", "reads", "rowa msg/tx", "qc msg/tx")
	for _, rf := range []float64{0.1, 0.5, 0.9} {
		rowa, _ := run(5, "rowa", rf)
		qc, _ := run(5, "qc", rf)
		fmt.Printf("%6.0f%% %15.1f %14.1f\n", rf*100, rowa, qc)
	}

	fmt.Println("\n== availability under a minority failure (5 copies, 50% reads) ==")
	for _, rcpName := range []string{"rowa", "qc"} {
		inst, err := core.New(core.Options{
			Sites:     siteIDs(5),
			Items:     map[model.ItemID]int64{"a": 0, "b": 0},
			Protocols: schema.Protocols{RCP: rcpName, CCP: "2pl", ACP: "2pc"},
			Timeouts:  schema.Timeouts{Op: 300 * time.Millisecond, Lock: 300 * time.Millisecond},
		})
		if err != nil {
			log.Fatal(err)
		}
		inst.Injector.Crash("S5") // one of five down
		res := inst.RunWorkload(context.Background(), wlg.Profile{
			Transactions: 60, MPL: 3, OpsPerTx: 2, ReadFraction: 0.5, Retries: 2,
			Sites: siteIDs(4), // live homes only
		})
		fmt.Printf("%-6s commit rate with 1/5 sites down: %.2f (aborts by cause: %v)\n",
			rcpName, res.CommitRate(), res.ByCause)
		inst.Close()
	}
	fmt.Println("\nexpected shape: ROWA cheaper in messages (especially read-heavy),")
	fmt.Println("QC keeps committing writes under minority failure while ROWA writes abort.")
}
