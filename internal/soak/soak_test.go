package soak

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// soakWorkers bounds concurrent soak iterations: runs are sleep-dominated,
// so overlapping them compresses wall time even on a single core.
func soakWorkers() int {
	w := runtime.GOMAXPROCS(0) * 4
	if w > 8 {
		w = 8
	}
	return w
}

// runSeeds drains the seed list through a worker pool and reports every
// failing seed with a replay command that reproduces the SAME profile —
// round count and workload shape feed the seeded plan, so a replay with
// different options would explore a different schedule entirely.
func runSeeds(t *testing.T, seeds []int64, opts Options) {
	t.Helper()
	o := opts.withDefaults()
	replayCmd := fmt.Sprintf(
		"RAINBOW_SOAK_SEED=%%d RAINBOW_SOAK_ROUNDS=%d RAINBOW_SOAK_TX=%d RAINBOW_SOAK_MPL=%d go test ./internal/soak -run TestSoakReplay -v",
		o.Rounds, o.TxPerRound, o.MPL)
	type failure struct {
		seed int64
		err  error
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail []failure
		ok   int
	)
	ch := make(chan int64)
	for w := 0; w < soakWorkers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range ch {
				o := opts
				o.Seed = seed
				rep, err := Run(o)
				mu.Lock()
				if err != nil {
					fail = append(fail, failure{seed, err})
				} else {
					ok++
				}
				mu.Unlock()
				_ = rep
			}
		}()
	}
	for _, s := range seeds {
		ch <- s
	}
	close(ch)
	wg.Wait()
	for _, f := range fail {
		t.Errorf("seed %d: %v\n  replay: "+replayCmd, f.seed, f.err, f.seed)
	}
	t.Logf("soak: %d/%d seeds passed", ok, len(seeds))
}

// TestSoakShortSeeded is the CI profile: 75 fixed seeds (15 under -short),
// each a full load + partitions/crashes/epoch-bumps episode with the
// invariant audit. The count was raised from 50 when crash/partition
// injection was extended into 3PC episodes (quorum termination roughly
// doubled the schedule space the fixed seeds must cover). A failing seed
// prints its replay command.
func TestSoakShortSeeded(t *testing.T) {
	n := 75
	if testing.Short() {
		n = 15
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(1000 + i)
	}
	runSeeds(t, seeds, Options{})
}

// TestSoakLong is the nightly/bench-job profile: random seeds (logged for
// replay), bigger episodes, ~60s budget. Enabled by RAINBOW_SOAK_LONG=1 so
// it never blocks the regular test job.
func TestSoakLong(t *testing.T) {
	if os.Getenv("RAINBOW_SOAK_LONG") == "" {
		t.Skip("set RAINBOW_SOAK_LONG=1 to run the long soak profile")
	}
	base := time.Now().UnixNano()
	t.Logf("long soak base seed: %d", base)
	deadline := time.Now().Add(60 * time.Second)
	batch := 0
	for time.Now().Before(deadline) {
		seeds := make([]int64, soakWorkers())
		for i := range seeds {
			seeds[i] = base + int64(batch*len(seeds)+i)
		}
		runSeeds(t, seeds, Options{Rounds: 4, TxPerRound: 12, MPL: 4})
		if t.Failed() {
			return
		}
		batch++
	}
	t.Logf("long soak: %d batches completed", batch)
}

// TestSoakReplay re-runs one seed verbosely: the debugging entry point the
// short/long profiles print on failure. The profile env vars must match
// the originating run's (the failure message carries them); unset values
// fall back to the short-profile defaults.
//
//	RAINBOW_SOAK_SEED=<seed> [RAINBOW_SOAK_ROUNDS=r RAINBOW_SOAK_TX=n RAINBOW_SOAK_MPL=m] \
//	  go test ./internal/soak -run TestSoakReplay -v
func TestSoakReplay(t *testing.T) {
	env := os.Getenv("RAINBOW_SOAK_SEED")
	if env == "" {
		t.Skip("set RAINBOW_SOAK_SEED=<seed> to replay a failing soak seed")
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("RAINBOW_SOAK_SEED=%q: %v", env, err)
	}
	envInt := func(name string) int {
		v := os.Getenv(name)
		if v == "" {
			return 0 // withDefaults fills it
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("%s=%q: %v", name, v, err)
		}
		return n
	}
	opts := Options{
		Seed:       seed,
		Rounds:     envInt("RAINBOW_SOAK_ROUNDS"),
		TxPerRound: envInt("RAINBOW_SOAK_TX"),
		MPL:        envInt("RAINBOW_SOAK_MPL"),
		Logf:       t.Logf,
	}
	rep, err := Run(opts)
	t.Logf("report: %+v", rep)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}

// TestSoakReportCountsEvents sanity-checks the harness itself: a run must
// actually submit load and plan events, not vacuously pass.
func TestSoakReportCountsEvents(t *testing.T) {
	rep, err := Run(Options{Seed: 42, Logf: t.Logf})
	if err != nil {
		t.Fatalf("seed 42: %v\n  replay: RAINBOW_SOAK_SEED=42 go test ./internal/soak -run TestSoakReplay -v", err)
	}
	if rep.Submitted == 0 || rep.Committed == 0 {
		t.Errorf("vacuous run: %+v", rep)
	}
	if rep.Adds == 0 || rep.AddsCommitted == 0 {
		t.Errorf("counter storm vacuous — the exact-sum audit checked nothing: %+v", rep)
	}
	if rep.EpochBumps+rep.Crashes+rep.Partitions+rep.Checkpoints == 0 {
		t.Errorf("no faults planned: %+v", rep)
	}
	if rep.ACP != "2pc" && rep.ACP != "3pc" {
		t.Errorf("ACP = %q", rep.ACP)
	}
	_ = fmt.Sprintf("%+v", rep)
}
