// Package soak is Rainbow's seeded fault-injection soak harness: it runs a
// cluster under randomized transaction load while injecting partitions,
// crashes-with-recovery, manual checkpoints and mid-flight catalog epoch
// bumps (live re-sharding), then audits cluster-wide invariants:
//
//   - decision agreement — no two sites ever disagree on a transaction's
//     outcome (atomicity across sites);
//   - no committed write lost — every install is version-stamped, so the
//     highest-version write in the merged execution history must still be
//     the quorum-read value of its item after all faults, reconfigurations
//     and recoveries (and per-(item,version) values must agree across all
//     copies — versions are per-item serialization points);
//   - in-doubt transactions terminate — the orphan count drains to zero
//     once all sites are back (2PC decision requests / 3PC cooperative
//     termination);
//   - catalog convergence — every site ends on the name server's epoch;
//   - checkpoint chains stay composable — the final audit repeats after
//     crash-recovering every site, so the last full+delta chain plus the
//     retained WAL must reproduce the same store.
//
// Every random choice — cluster shape, workload, fault schedule, epoch
// bumps — derives from one seed, so a failure replays with the same event
// plan (goroutine interleavings still vary; the plan does not). The test
// wrapper prints failing seeds with a one-line replay command.
package soak

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/wlg"
)

// Options configures one soak run. Zero values select the short-profile
// defaults sized for CI.
type Options struct {
	// Seed drives every random choice of the run.
	Seed int64
	// Sites is the cluster size (default 3).
	Sites int
	// Items is the database size (default 5).
	Items int
	// Rounds is the number of load+fault episodes (default 2).
	Rounds int
	// TxPerRound is the workload length per round (default 8).
	TxPerRound int
	// MPL is the workload's multiprogramming level (default 3).
	MPL int
	// Counters is the number of add-only counter items kept OUTSIDE the
	// random workload's item set (default 2, negative disables). A seeded
	// storm of blind-add transactions targets them concurrently with the
	// fault schedule, and the audit then demands the reconciled value equal
	// the initial value plus the EXACT sum of committed deltas — a slot
	// delta lost or double-applied across a crash, checkpoint or epoch
	// bump shows up as an off-by-delta here.
	Counters int
	// Logf, when set, receives progress lines (the replay test wires it to
	// t.Logf so a failing seed can be studied step by step).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Sites <= 0 {
		o.Sites = 3
	}
	if o.Items <= 0 {
		o.Items = 5
	}
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	if o.TxPerRound <= 0 {
		o.TxPerRound = 8
	}
	if o.MPL <= 0 {
		o.MPL = 3
	}
	if o.Counters == 0 {
		o.Counters = 2
	}
	if o.Counters < 0 {
		o.Counters = 0
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Report summarizes one soak run for the logs.
type Report struct {
	Submitted, Committed            int
	Adds, AddsCommitted             int
	EpochBumps, Crashes, Partitions int
	Checkpoints                     int
	FinalEpoch                      uint64
	ACP                             string
}

// addOp is one planned blind-add transaction of the counter storm.
type addOp struct {
	home  model.SiteID
	item  model.ItemID
	delta int64
}

// step is one planned fault/admin event inside a round.
type step struct {
	after time.Duration
	kind  string // "partition", "heal", "crash", "recover", "bump", "checkpoint"
	site  model.SiteID
	group [][]model.SiteID
}

// Run executes one seeded soak iteration and returns an error describing
// the first violated invariant (nil when all hold).
func Run(o Options) (Report, error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	var rep Report

	sites := make([]model.SiteID, o.Sites)
	for i := range sites {
		sites[i] = model.SiteID(fmt.Sprintf("S%d", i+1))
	}
	items := make(map[model.ItemID]int64, o.Items+o.Counters)
	itemIDs := make([]model.ItemID, o.Items)
	for i := 0; i < o.Items; i++ {
		id := model.ItemID(fmt.Sprintf("i%d", i))
		itemIDs[i] = id
		items[id] = int64(100 + i)
	}
	// Counter items live in the catalog but not in the workload's item set:
	// they must only ever see blind adds, so the exact-sum audit has no
	// absolute writes to reason about.
	counters := make([]model.ItemID, o.Counters)
	counterInit := make(map[model.ItemID]int64, o.Counters)
	for i := 0; i < o.Counters; i++ {
		id := model.ItemID(fmt.Sprintf("c%d", i))
		counters[i] = id
		items[id] = int64(1000 * (i + 1))
		counterInit[id] = items[id]
	}
	// Both protocols soak the full fault matrix. 3PC termination is
	// quorum-based (E3PC): participants log their pre-commit/pre-abort
	// transitions and election promises, termination decides only through
	// majority quorums of the write electorate, and recovered members
	// rejoin with their logged state — so crashes and partitions DURING
	// 3PC episodes (including the crash-everyone recomposition) are fair
	// game, not excluded like under the old cooperative termination.
	acp := "2pc"
	if rng.Intn(2) == 1 {
		acp = "3pc"
	}
	rep.ACP = acp

	in, err := core.New(core.Options{
		Sites: sites, Items: items,
		Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: acp},
		Timeouts: schema.Timeouts{
			Op: 150 * time.Millisecond, Vote: 150 * time.Millisecond,
			Ack: 100 * time.Millisecond, Lock: 100 * time.Millisecond,
			OrphanResolve: 25 * time.Millisecond,
		},
		Net: simnet.Config{
			BaseLatency: 200 * time.Microsecond,
			Jitter:      100 * time.Microsecond,
			Seed:        rng.Int63(),
		},
		Checkpoint: schema.CheckpointPolicy{
			Interval: time.Duration(20+rng.Intn(20)) * time.Millisecond,
			DeltaMax: 1 + rng.Intn(4),
		},
		// Trace every transaction: the workload is tiny, and a violation
		// report can then dump the implicated transactions' full stage-level
		// history (which sites they touched, where they waited, what the ACP
		// did). Site-local policy, so epoch bumps cannot reconfigure it away.
		Trace:       schema.TracePolicy{SampleRate: 1, Ring: 2048},
		CatalogPoll: 30 * time.Millisecond,
	})
	if err != nil {
		return rep, err
	}
	defer in.Close()

	committedAdds := make(map[model.TxID]addOp)
	var addsMu sync.Mutex
	for round := 0; round < o.Rounds; round++ {
		steps := planRound(rng, sites, &rep)
		profile := wlg.Profile{
			Transactions: o.TxPerRound,
			MPL:          o.MPL,
			OpsPerTx:     1 + rng.Intn(3),
			ReadFraction: 0.4,
			Retries:      1,
			RandomHomes:  true,
			Items:        append([]model.ItemID(nil), itemIDs...),
			Seed:         rng.Int63(),
		}
		// The counter storm is planned here, before any concurrency, for the
		// same reason planRound is: all rng consumption stays deterministic.
		storm := make([]addOp, 0, o.TxPerRound)
		if len(counters) > 0 {
			for i := 0; i < o.TxPerRound; i++ {
				storm = append(storm, addOp{
					home:  sites[rng.Intn(len(sites))],
					item:  counters[rng.Intn(len(counters))],
					delta: int64(1 + rng.Intn(9)),
				})
			}
		}
		rep.Adds += len(storm)
		wctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
		done := make(chan wlg.Result, 1)
		go func() { done <- in.RunWorkload(wctx, profile) }()
		stormDone := make(chan int, 1)
		go func() {
			ok := 0
			for _, op := range storm {
				out := in.Submit(wctx, op.home, []model.Op{model.Add(op.item, op.delta)})
				if out.Committed {
					ok++
					addsMu.Lock()
					committedAdds[out.Tx] = op
					addsMu.Unlock()
				}
			}
			stormDone <- ok
		}()
		start := time.Now()
		for _, s := range steps {
			if d := s.after - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			applyStep(in, rng, s, o.Logf)
		}
		res := <-done
		addsOK := <-stormDone
		cancel()
		rep.Submitted += res.Submitted
		rep.Committed += res.Committed
		rep.AddsCommitted += addsOK
		o.Logf("round %d: %d/%d committed, %d/%d adds, causes %v",
			round, res.Committed, res.Submitted, addsOK, len(storm), res.ByCause)
	}

	// Settle: heal, recover everyone, converge on the catalog, drain
	// orphans — only then are the invariants expected to hold.
	in.Injector.Heal()
	for _, id := range sites {
		if in.Injector.Crashed(id) {
			if err := in.Injector.Recover(id); err != nil {
				return rep, fmt.Errorf("settle recover %s: %w", id, err)
			}
		}
	}
	rep.FinalEpoch = in.NS.Epoch()
	if !in.WaitEpoch(rep.FinalEpoch, 5*time.Second) {
		return rep, fmt.Errorf("catalog did not converge: name server at epoch %d, sites at %v", rep.FinalEpoch, siteEpochs(in, sites))
	}
	if !in.WaitOrphansDrained(8 * time.Second) {
		return rep, fmt.Errorf("in-doubt transactions did not terminate: %d orphans remain", in.Orphans())
	}
	if err := checkInvariants(in, sites, itemIDs); err != nil {
		return rep, err
	}
	if err := checkCounters(in, sites, counters, counterInit, committedAdds); err != nil {
		return rep, err
	}

	// Full-restart audit: crash and recover every site, then re-check —
	// this forces recovery through the newest checkpoint chain plus the
	// retained WAL, proving the chains written under faults and epoch
	// bumps stay composable.
	for _, id := range sites {
		if err := in.Injector.Crash(id); err != nil {
			return rep, fmt.Errorf("final crash %s: %w", id, err)
		}
	}
	for _, id := range sites {
		if err := in.Injector.Recover(id); err != nil {
			return rep, fmt.Errorf("final recover %s: %w", id, err)
		}
	}
	if !in.WaitOrphansDrained(8 * time.Second) {
		return rep, fmt.Errorf("after full restart: %d orphans remain", in.Orphans())
	}
	if err := checkInvariants(in, sites, itemIDs); err != nil {
		return rep, fmt.Errorf("after full restart: %w", err)
	}
	// Re-running the exact-sum audit after the crash-everyone recomposition
	// is the point of the exercise: delta WAL records and checkpoint chains
	// must reproduce the reconciled counters to the digit.
	if err := checkCounters(in, sites, counters, counterInit, committedAdds); err != nil {
		return rep, fmt.Errorf("after full restart: %w", err)
	}
	return rep, nil
}

// planRound draws a deterministic fault/admin schedule for one round. All
// rng consumption happens here, before any concurrency, so a seed always
// produces the same plan. Crashes and partitions are emitted as pairs
// (fault, then undo) so a round cannot wedge the workload forever, and
// single-crash events take down at most one site at a time (a QC majority
// stays available); the crash-all event deliberately breaks that rule —
// every site goes down mid-round and recomposes from its WAL, exercising
// recovery straight through in-flight 2PC and 3PC episodes (termination
// state included).
func planRound(rng *rand.Rand, sites []model.SiteID, rep *Report) []step {
	var steps []step
	at := time.Duration(20+rng.Intn(40)) * time.Millisecond
	events := 1 + rng.Intn(3)
	for e := 0; e < events; e++ {
		hold := time.Duration(40+rng.Intn(80)) * time.Millisecond
		kinds := []string{"bump", "checkpoint", "crash", "partition", "crashall"}
		switch kinds[rng.Intn(len(kinds))] {
		case "bump":
			steps = append(steps, step{after: at, kind: "bump"})
			rep.EpochBumps++
		case "crash":
			victim := sites[rng.Intn(len(sites))]
			steps = append(steps, step{after: at, kind: "crash", site: victim})
			steps = append(steps, step{after: at + hold, kind: "recover", site: victim})
			rep.Crashes++
		case "crashall":
			// Crash-everyone recomposition: the whole cluster goes down
			// mid-episode (possibly mid-termination) and comes back from
			// logs alone.
			steps = append(steps, step{after: at, kind: "crashall"})
			steps = append(steps, step{after: at + hold, kind: "recoverall"})
			rep.Crashes += len(sites)
		case "checkpoint":
			steps = append(steps, step{after: at, kind: "checkpoint", site: sites[rng.Intn(len(sites))]})
			rep.Checkpoints++
		case "partition":
			shuffled := append([]model.SiteID(nil), sites...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			cut := 1 + rng.Intn(len(shuffled)-1)
			steps = append(steps, step{after: at, kind: "partition",
				group: [][]model.SiteID{shuffled[:cut], shuffled[cut:]}})
			steps = append(steps, step{after: at + hold, kind: "heal"})
			rep.Partitions++
		}
		at += hold + time.Duration(10+rng.Intn(30))*time.Millisecond
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].after < steps[j].after })
	return steps
}

// applyStep executes one planned event. Individual fault errors (a crash
// racing a recover, a checkpoint on a down site) are logged, not fatal —
// the invariants at the end are the verdict.
func applyStep(in *core.Instance, rng *rand.Rand, s step, logf func(string, ...any)) {
	switch s.kind {
	case "crash":
		logf("crash %s", s.site)
		if err := in.Injector.Crash(s.site); err != nil {
			logf("  (crash: %v)", err)
		}
	case "crashall":
		logf("crash ALL")
		for _, id := range in.SiteIDs() {
			if err := in.Injector.Crash(id); err != nil {
				logf("  (crash %s: %v)", id, err)
			}
		}
	case "recoverall":
		logf("recover ALL")
		for _, id := range in.SiteIDs() {
			if !in.Injector.Crashed(id) {
				continue
			}
			if err := in.Injector.Recover(id); err != nil {
				logf("  (recover %s: %v)", id, err)
			}
		}
	case "recover":
		logf("recover %s", s.site)
		if err := in.Injector.Recover(s.site); err != nil {
			logf("  (recover: %v)", err)
		}
	case "partition":
		logf("partition %v", s.group)
		in.Injector.Partition(s.group...)
	case "heal":
		logf("heal")
		in.Injector.Heal()
	case "checkpoint":
		if st, ok := in.Site(s.site); ok {
			logf("checkpoint %s", s.site)
			if err := st.Checkpoint(); err != nil {
				logf("  (checkpoint: %v)", err)
			}
		}
	case "bump":
		cat := in.Catalog()
		cat.Shards = 1 << rng.Intn(4) // 1..8
		cat.Checkpoint.DeltaMax = 1 + rng.Intn(4)
		epoch, err := in.UpdateCatalog(cat)
		logf("epoch bump -> %d (shards=%d deltaMax=%d): %v", epoch, cat.Shards, cat.Checkpoint.DeltaMax, err)
	}
}

func siteEpochs(in *core.Instance, sites []model.SiteID) map[model.SiteID]uint64 {
	out := make(map[model.SiteID]uint64, len(sites))
	for _, id := range sites {
		if st, ok := in.Site(id); ok {
			out[id] = st.Epoch()
		}
	}
	return out
}

// dumpItem renders one item's full cross-site picture — every copy and
// every history write event — so a divergence failure is self-diagnosing.
func dumpItem(in *core.Instance, sites []model.SiteID, item model.ItemID) string {
	var b strings.Builder
	for _, id := range sites {
		st, _ := in.Site(id)
		cp, ok := st.Store().Get(item)
		fmt.Fprintf(&b, "  %s: copy=%+v present=%v epoch=%d\n", id, cp, ok, st.Epoch())
	}
	for _, e := range in.History() {
		if e.Item == item && e.Kind == model.OpWrite {
			fmt.Fprintf(&b, "  history: site=%s tx=%v v%d=%d\n", e.Site, e.Tx, e.Version, e.Value)
		}
	}
	return b.String()
}

// tracesOf collates the retained trace fragments of the implicated
// transactions across every site and renders their stage breakdowns —
// appended to invariant-violation errors so a failure shows not just the
// divergent state but the distributed execution that produced it.
func tracesOf(in *core.Instance, sites []model.SiteID, txs map[model.TxID]bool) string {
	frags := make([][]trace.Trace, 0, len(sites))
	for _, id := range sites {
		if st, ok := in.Site(id); ok {
			frags = append(frags, st.Tracer().TracesFor(txs))
		}
	}
	groups := trace.Collate(frags...)
	if len(groups) == 0 {
		return "  traces: none retained for the implicated transactions\n"
	}
	ids := make([]trace.ID, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteString("  traces of implicated transactions:\n")
	for _, id := range ids {
		b.WriteString(trace.Format(groups[id]))
	}
	return b.String()
}

// itemWriters returns every transaction the merged history shows writing
// item — the implicated set for a copy-divergence or lost-write violation.
func itemWriters(in *core.Instance, item model.ItemID) map[model.TxID]bool {
	txs := make(map[model.TxID]bool)
	for _, e := range in.History() {
		if e.Item == item && e.Kind == model.OpWrite {
			txs[e.Tx] = true
		}
	}
	return txs
}

// checkCounters audits the add-only counter items: the reconciled value of
// each must equal its initial value plus the EXACT sum of committed deltas.
// The merged history is the ground truth — every committed add is recorded
// (as OpAdd) by each installing site, so deduping by (tx, item) yields each
// delta exactly once — and every client-acknowledged add must appear in it.
func checkCounters(in *core.Instance, sites []model.SiteID, counters []model.ItemID, initial map[model.ItemID]int64, acked map[model.TxID]addOp) error {
	if len(counters) == 0 {
		return nil
	}
	isCounter := make(map[model.ItemID]bool, len(counters))
	for _, c := range counters {
		isCounter[c] = true
	}
	type key struct {
		tx   model.TxID
		item model.ItemID
	}
	deltas := make(map[key]int64)
	count := make(map[model.ItemID]int)
	sum := make(map[model.ItemID]int64)
	for _, e := range in.History() {
		switch {
		case e.Kind == model.OpAdd:
			k := key{e.Tx, e.Item}
			if prev, seen := deltas[k]; seen {
				if prev != e.Value {
					return fmt.Errorf("add divergence: tx %v on %s recorded as both +%d and +%d\n%s",
						e.Tx, e.Item, prev, e.Value, tracesOf(in, sites, map[model.TxID]bool{e.Tx: true}))
				}
				continue
			}
			deltas[k] = e.Value
			count[e.Item]++
			sum[e.Item] += e.Value
		case e.Kind == model.OpWrite && isCounter[e.Item]:
			return fmt.Errorf("counter %s received an absolute write (tx %v v%d) — workload confinement broken",
				e.Item, e.Tx, e.Version)
		}
	}
	for tx, op := range acked {
		got, ok := deltas[key{tx, op.item}]
		if !ok {
			return fmt.Errorf("acknowledged add lost: tx %v (+%d on %s) missing from the merged history\n%s",
				tx, op.delta, op.item, tracesOf(in, sites, map[model.TxID]bool{tx: true}))
		}
		if got != op.delta {
			return fmt.Errorf("acknowledged add mutated: tx %v on %s committed +%d, history says +%d",
				tx, op.item, op.delta, got)
		}
	}
	ops := make([]model.Op, 0, len(counters))
	for _, c := range counters {
		ops = append(ops, model.Read(c))
	}
	var out model.Outcome
	deadline := time.Now().Add(12 * time.Second)
	for {
		out = in.Submit(context.Background(), sites[0], ops)
		if out.Committed || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !out.Committed {
		return fmt.Errorf("counter audit read would not commit: %+v", out)
	}
	for _, c := range counters {
		want := initial[c] + sum[c]
		if got := out.Reads[c]; got != want {
			return fmt.Errorf("counter %s = %d, want %d (initial %d + %d committed adds summing %d)\n%s",
				c, got, want, initial[c], count[c], sum[c], dumpItem(in, sites, c))
		}
	}
	return nil
}

// checkInvariants audits the settled cluster. See the package comment for
// the invariant list.
func checkInvariants(in *core.Instance, sites []model.SiteID, itemIDs []model.ItemID) error {
	// 1. Decision agreement: any transaction known to several decision
	// tables must carry the same verdict everywhere.
	verdicts := make(map[model.TxID]bool)
	owner := make(map[model.TxID]model.SiteID)
	for _, id := range sites {
		st, _ := in.Site(id)
		for tx, commit := range st.DecisionTable() {
			if prev, seen := verdicts[tx]; seen && prev != commit {
				return fmt.Errorf("decision divergence on %v: %s says commit=%v, %s says commit=%v\n%s",
					tx, owner[tx], prev, id, commit, tracesOf(in, sites, map[model.TxID]bool{tx: true}))
			}
			verdicts[tx], owner[tx] = commit, id
		}
	}

	// 2a. Copy agreement: a version is a per-item serialization point, so
	// two sites holding the same (item, version) must hold the same value.
	type stamped struct {
		val  int64
		site model.SiteID
	}
	byVersion := make(map[model.ItemID]map[model.Version]stamped)
	type copyAt struct {
		val int64
		ver model.Version
	}
	newest := make(map[model.ItemID]copyAt)
	for _, id := range sites {
		st, _ := in.Site(id)
		for item, cp := range st.Store().Snapshot() {
			if byVersion[item] == nil {
				byVersion[item] = make(map[model.Version]stamped)
			}
			if prev, seen := byVersion[item][cp.Version]; seen && prev.val != cp.Value {
				return fmt.Errorf("copy divergence on %s@v%d: %s has %d, %s has %d\n%s%s",
					item, cp.Version, prev.site, prev.val, id, cp.Value, dumpItem(in, sites, item),
					tracesOf(in, sites, itemWriters(in, item)))
			}
			byVersion[item][cp.Version] = stamped{val: cp.Value, site: id}
			if cur, ok := newest[item]; !ok || cp.Version > cur.ver {
				newest[item] = copyAt{val: cp.Value, ver: cp.Version}
			}
		}
	}

	// 2b. No committed write lost: every history write event is an install
	// of a committed transaction (the applier records before installing),
	// so the highest-version event per item must still be reachable — no
	// site may be "newest" with a version below it.
	for _, e := range in.History() {
		if e.Kind != model.OpWrite {
			continue
		}
		cur, ok := newest[e.Item]
		if !ok {
			return fmt.Errorf("committed write lost: %s@v%d (value %d) has no surviving copy\n%s",
				e.Item, e.Version, e.Value, tracesOf(in, sites, map[model.TxID]bool{e.Tx: true}))
		}
		if e.Version > cur.ver {
			return fmt.Errorf("committed write lost: %s@v%d (value %d) newer than every surviving copy (max v%d)\n%s",
				e.Item, e.Version, e.Value, cur.ver, tracesOf(in, sites, map[model.TxID]bool{e.Tx: true}))
		}
		if e.Version == cur.ver && e.Value != cur.val {
			return fmt.Errorf("committed write diverged: %s@v%d history says %d, newest copy says %d\n%s",
				e.Item, e.Version, e.Value, cur.val, tracesOf(in, sites, map[model.TxID]bool{e.Tx: true}))
		}
	}

	// 2c. Quorum audit read: a fresh transaction's read quorum intersects
	// the newest write's write quorum, so it must return the newest value.
	// Stragglers from the workload can hold locks briefly; retry.
	ops := make([]model.Op, 0, len(itemIDs))
	for _, item := range itemIDs {
		ops = append(ops, model.Read(item))
	}
	// The window must outlast the release-retry backoff (internal/site
	// releaseAt: five 1s-bounded attempts) under the race detector's
	// slowdown — a straggler's locks can legitimately take seconds to die.
	var out model.Outcome
	deadline := time.Now().Add(12 * time.Second)
	for {
		out = in.Submit(context.Background(), sites[0], ops)
		if out.Committed || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !out.Committed {
		return fmt.Errorf("final audit read would not commit: %+v", out)
	}
	for _, item := range itemIDs {
		want, ok := newest[item]
		if !ok {
			continue
		}
		if got := out.Reads[item]; got != want.val {
			return fmt.Errorf("quorum read of %s = %d, want newest committed value %d (v%d)\n%s",
				item, got, want.val, want.ver, tracesOf(in, sites, itemWriters(in, item)))
		}
	}
	return nil
}
