// Package failure implements Rainbow's fault/recovery injector (paper §1:
// "inject network and site failures and recoveries"). It operates on two
// planes at once: the network simulator (a crashed site becomes unreachable,
// partitions split the message space) and the site objects (a crashed site
// loses its volatile state and later recovers from its WAL).
//
// Injections can be applied immediately or scheduled on a timeline relative
// to a workload run — the mechanism behind experiment E5's
// crash-during-commit scenarios.
package failure

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
)

// CrashableSite is the site-side interface the injector drives.
// *site.Site implements it.
type CrashableSite interface {
	Crash()
	Recover() error
	Crashed() bool
}

// Fabric is the network-side interface. *simnet.Net implements it.
type Fabric interface {
	Pause(id model.SiteID)
	Resume(id model.SiteID)
	Partition(groups ...[]model.SiteID)
	Heal()
}

// Injector coordinates fault injection across the fabric and the sites.
type Injector struct {
	fabric Fabric

	mu    sync.Mutex
	sites map[model.SiteID]CrashableSite
	log   []Event
}

// Event records one injected fault or recovery for the experiment report.
type Event struct {
	At   time.Time
	Kind string // "crash", "recover", "partition", "heal"
	Site model.SiteID
}

// New builds an injector over the given network fabric.
func New(fabric Fabric) *Injector {
	return &Injector{fabric: fabric, sites: make(map[model.SiteID]CrashableSite)}
}

// Register makes a site crashable by id.
func (in *Injector) Register(id model.SiteID, s CrashableSite) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites[id] = s
}

// Crash fails a site: it becomes unreachable and loses volatile state.
func (in *Injector) Crash(id model.SiteID) error {
	in.mu.Lock()
	s, ok := in.sites[id]
	in.mu.Unlock()
	if !ok {
		return fmt.Errorf("failure: unknown site %s", id)
	}
	in.fabric.Pause(id)
	s.Crash()
	in.record("crash", id)
	return nil
}

// Recover brings a crashed site back through WAL recovery and reconnects it.
func (in *Injector) Recover(id model.SiteID) error {
	in.mu.Lock()
	s, ok := in.sites[id]
	in.mu.Unlock()
	if !ok {
		return fmt.Errorf("failure: unknown site %s", id)
	}
	if err := s.Recover(); err != nil {
		return err
	}
	in.fabric.Resume(id)
	in.record("recover", id)
	return nil
}

// Partition splits the network into the given groups.
func (in *Injector) Partition(groups ...[]model.SiteID) {
	in.fabric.Partition(groups...)
	in.record("partition", "")
}

// Heal removes all partitions.
func (in *Injector) Heal() {
	in.fabric.Heal()
	in.record("heal", "")
}

// Crashed reports whether a registered site is currently down.
func (in *Injector) Crashed(id model.SiteID) bool {
	in.mu.Lock()
	s, ok := in.sites[id]
	in.mu.Unlock()
	return ok && s.Crashed()
}

// Log returns the injection events in order.
func (in *Injector) Log() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}

func (in *Injector) record(kind string, site model.SiteID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.log = append(in.log, Event{At: time.Now(), Kind: kind, Site: site})
}

// Step is one scheduled injection.
type Step struct {
	// After is the delay from schedule start.
	After time.Duration
	// Kind is "crash", "recover", "partition" or "heal".
	Kind string
	// Site applies to crash/recover.
	Site model.SiteID
	// Groups applies to partition.
	Groups [][]model.SiteID
}

// Schedule runs the steps on their timeline in a background goroutine,
// returning a wait function that blocks until all steps have fired (or the
// stop channel closes). Steps run in After-order regardless of input order.
func (in *Injector) Schedule(steps []Step, stop <-chan struct{}) (wait func()) {
	ordered := make([]Step, len(steps))
	copy(ordered, steps)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].After < ordered[j].After })

	done := make(chan struct{})
	go func() {
		defer close(done)
		start := time.Now()
		for _, step := range ordered {
			delay := step.After - time.Since(start)
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-stop:
					return
				}
			}
			switch step.Kind {
			case "crash":
				in.Crash(step.Site) //nolint:errcheck
			case "recover":
				in.Recover(step.Site) //nolint:errcheck
			case "partition":
				in.Partition(step.Groups...)
			case "heal":
				in.Heal()
			}
		}
	}()
	return func() { <-done }
}
