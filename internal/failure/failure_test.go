package failure

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// fakeSite tracks crash/recover calls.
type fakeSite struct {
	mu      sync.Mutex
	crashed bool
	crashes int
	recover int
	failRec bool
}

func (f *fakeSite) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	f.crashes++
}

func (f *fakeSite) Recover() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failRec {
		return errors.New("recovery failed")
	}
	f.crashed = false
	f.recover++
	return nil
}

func (f *fakeSite) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// fakeFabric tracks network-plane calls.
type fakeFabric struct {
	mu         sync.Mutex
	paused     map[model.SiteID]bool
	partitions int
	heals      int
}

func newFabric() *fakeFabric { return &fakeFabric{paused: make(map[model.SiteID]bool)} }

func (f *fakeFabric) Pause(id model.SiteID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paused[id] = true
}

func (f *fakeFabric) Resume(id model.SiteID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paused[id] = false
}

func (f *fakeFabric) Partition(groups ...[]model.SiteID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitions++
}

func (f *fakeFabric) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.heals++
}

func TestCrashAndRecover(t *testing.T) {
	fab := newFabric()
	in := New(fab)
	s := &fakeSite{}
	in.Register("A", s)

	if err := in.Crash("A"); err != nil {
		t.Fatal(err)
	}
	if !s.Crashed() || !fab.paused["A"] {
		t.Error("crash did not hit both planes")
	}
	if !in.Crashed("A") {
		t.Error("Crashed() = false")
	}

	if err := in.Recover("A"); err != nil {
		t.Fatal(err)
	}
	if s.Crashed() || fab.paused["A"] {
		t.Error("recover did not hit both planes")
	}
}

func TestRecoverFailureKeepsSitePaused(t *testing.T) {
	fab := newFabric()
	in := New(fab)
	s := &fakeSite{failRec: true}
	in.Register("A", s)
	in.Crash("A")
	if err := in.Recover("A"); err == nil {
		t.Fatal("recovery error swallowed")
	}
	if !fab.paused["A"] {
		t.Error("site resumed on the network despite failed recovery")
	}
}

func TestUnknownSite(t *testing.T) {
	in := New(newFabric())
	if err := in.Crash("ghost"); err == nil {
		t.Error("crash of unknown site accepted")
	}
	if err := in.Recover("ghost"); err == nil {
		t.Error("recover of unknown site accepted")
	}
	if in.Crashed("ghost") {
		t.Error("unknown site reported crashed")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	fab := newFabric()
	in := New(fab)
	in.Partition([]model.SiteID{"A"}, []model.SiteID{"B"})
	in.Heal()
	if fab.partitions != 1 || fab.heals != 1 {
		t.Errorf("fabric calls = %d/%d", fab.partitions, fab.heals)
	}
}

func TestLogRecordsEvents(t *testing.T) {
	in := New(newFabric())
	s := &fakeSite{}
	in.Register("A", s)
	in.Crash("A")
	in.Recover("A")
	in.Partition()
	in.Heal()
	log := in.Log()
	if len(log) != 4 {
		t.Fatalf("log = %v", log)
	}
	kinds := []string{log[0].Kind, log[1].Kind, log[2].Kind, log[3].Kind}
	want := []string{"crash", "recover", "partition", "heal"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("log[%d] = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestScheduleRunsInOrder(t *testing.T) {
	fab := newFabric()
	in := New(fab)
	s := &fakeSite{}
	in.Register("A", s)

	stop := make(chan struct{})
	wait := in.Schedule([]Step{
		{After: 30 * time.Millisecond, Kind: "recover", Site: "A"},
		{After: 5 * time.Millisecond, Kind: "crash", Site: "A"}, // out of order on purpose
	}, stop)
	wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashes != 1 || s.recover != 1 {
		t.Errorf("crashes=%d recovers=%d", s.crashes, s.recover)
	}
	if s.crashed {
		t.Error("final state should be recovered")
	}
}

func TestScheduleStops(t *testing.T) {
	in := New(newFabric())
	s := &fakeSite{}
	in.Register("A", s)
	stop := make(chan struct{})
	wait := in.Schedule([]Step{{After: time.Hour, Kind: "crash", Site: "A"}}, stop)
	close(stop)
	done := make(chan struct{})
	go func() { wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("schedule did not stop")
	}
	if s.Crashed() {
		t.Error("cancelled step executed")
	}
}
