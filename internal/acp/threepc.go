package acp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wal"
)

// ThreePC is three-phase commit with quorum-based (E3PC-style) termination:
// 2PC with a pre-commit round inserted between voting and the decision.
// The pre-commit round is durable at participants, and the coordinator may
// decide commit only once a MAJORITY of the electorate has forced its
// pre-commit — that majority is the commit quorum every later termination
// election must intersect, which is what keeps a crashed-and-recovered
// member (or a re-forming partition) from terminating against the
// coordinator's decision. A cohort that loses its coordinator — or a
// coordinator that cannot assemble the pre-commit quorum — terminates
// through the participants' quorum termination protocol
// (Participant.Resolve), never unilaterally.
type ThreePC struct{}

// Name implements Protocol.
func (ThreePC) Name() string { return "3pc" }

// ThreePhase implements Protocol.
func (ThreePC) ThreePhase() bool { return true }

// Commit implements Protocol.
func (ThreePC) Commit(ctx context.Context, c Cohort, log wal.Log, opts Options, req Request, onDecision func(bool)) (bool, error) {
	opts = opts.withDefaults()
	act := trace.FromContext(ctx)
	prep := act.StartSpan(trace.StagePrepare, "3pc votes")
	commit, cohort, voteErr := collectVotes(ctx, c, opts, req, true)
	prep.End()

	if !commit {
		dec := act.StartSpan(trace.StageDecide, "3pc abort")
		defer dec.End()
		// No pre-commit was ever sent, so no quorum termination can reach
		// a commit pre-decision (commit needs a pre-committed member at
		// the highest ballot, and none exists at any): the abort is safe
		// to decide unilaterally, exactly like 2PC's vote-phase abort.
		if err := log.Append(wal.Record{Type: wal.RecDecision, Tx: req.Tx, Commit: false}); err != nil {
			return false, fmt.Errorf("acp: 3pc decision log: %w", err)
		}
		if onDecision != nil {
			onDecision(false)
		}
		if broadcastDecision(ctx, c, opts, req, cohort, false) {
			log.Append(wal.Record{Type: wal.RecEnd, Tx: req.Tx}) //nolint:errcheck
			broadcastEnd(ctx, c, opts, req, cohort)
		}
		if voteErr != nil {
			return false, voteErr
		}
		return false, model.Abortf(model.AbortACP, "3pc: aborted")
	}

	// Phase 2: pre-commit broadcast. An ack means the participant FORCED
	// its pre-committed state. The electorate equals the phase-2 cohort on
	// the all-yes path (read-only voters were excluded from both), so the
	// quorum is counted over the cohort. The pre-commit round is part of
	// reaching the decision, so it falls under the decide span.
	dec := act.StartSpan(trace.StageDecide, "3pc pre-commit+decision")
	defer dec.End()
	acked := broadcastPreCommit(ctx, c, opts, req, cohort)
	if quorum := len(cohort)/2 + 1; len(cohort) > 0 && acked < quorum {
		// The commit quorum did not form — and an abort cannot be decided
		// either: the members that DID force pre-commits could carry a
		// later termination election to commit. The outcome belongs to
		// quorum termination now; the caller must leave the cohort's
		// prepared state alone.
		return false, ErrInDoubt
	}

	if err := log.Append(wal.Record{Type: wal.RecDecision, Tx: req.Tx, Commit: true}); err != nil {
		return false, fmt.Errorf("acp: 3pc decision log: %w", err)
	}
	if onDecision != nil {
		onDecision(true)
	}
	if broadcastDecision(ctx, c, opts, req, cohort, true) {
		log.Append(wal.Record{Type: wal.RecEnd, Tx: req.Tx}) //nolint:errcheck
		broadcastEnd(ctx, c, opts, req, cohort)
	}
	return true, nil
}

// broadcastPreCommit fans the pre-commit out to the cohort and reports how
// many members acknowledged (= durably pre-committed) within the ack
// timeout.
func broadcastPreCommit(ctx context.Context, c Cohort, opts Options, req Request, cohort []model.SiteID) int {
	acked := make(chan bool, len(cohort))
	for _, site := range cohort {
		go func(site model.SiteID) {
			pctx, cancel := context.WithTimeout(ctx, opts.Ack)
			defer cancel()
			acked <- c.PreCommit(pctx, site, req.Tx) == nil
		}(site)
	}
	// Wait for the round to drain (bounded by opts.Ack per participant).
	deadline := time.After(opts.Ack + 100*time.Millisecond)
	n := 0
	for range cohort {
		select {
		case ok := <-acked:
			if ok {
				n++
			}
		case <-deadline:
			return n
		}
	}
	return n
}
