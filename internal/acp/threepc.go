package acp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
)

// ThreePC is three-phase commit: 2PC with a pre-commit round inserted
// between voting and the decision. Because no participant can commit while
// any cohort member is still merely prepared, a cohort that loses its
// coordinator can terminate deterministically (Participant.Terminate) —
// removing 2PC's blocking window in the absence of network partitions.
type ThreePC struct{}

// Name implements Protocol.
func (ThreePC) Name() string { return "3pc" }

// ThreePhase implements Protocol.
func (ThreePC) ThreePhase() bool { return true }

// Commit implements Protocol.
func (ThreePC) Commit(ctx context.Context, c Cohort, log wal.Log, opts Options, req Request, onDecision func(bool)) (bool, error) {
	opts = opts.withDefaults()
	commit, cohort, voteErr := collectVotes(ctx, c, opts, req, true)

	if commit {
		// Phase 2: pre-commit broadcast. Participants that ack have moved
		// to the pre-committed state; ones that don't will learn the
		// outcome from the cohort during termination.
		broadcastPreCommit(ctx, c, opts, req, cohort)
	}

	if err := log.Append(wal.Record{Type: wal.RecDecision, Tx: req.Tx, Commit: commit}); err != nil {
		return false, fmt.Errorf("acp: 3pc decision log: %w", err)
	}
	if onDecision != nil {
		onDecision(commit)
	}

	if broadcastDecision(ctx, c, opts, req, cohort, commit) {
		log.Append(wal.Record{Type: wal.RecEnd, Tx: req.Tx}) //nolint:errcheck
		broadcastEnd(ctx, c, opts, req, cohort)
	}

	if commit {
		return true, nil
	}
	if voteErr != nil {
		return false, voteErr
	}
	return false, model.Abortf(model.AbortACP, "3pc: aborted")
}

func broadcastPreCommit(ctx context.Context, c Cohort, opts Options, req Request, cohort []model.SiteID) {
	acked := make(chan struct{}, len(cohort))
	for _, site := range cohort {
		go func(site model.SiteID) {
			pctx, cancel := context.WithTimeout(ctx, opts.Ack)
			defer cancel()
			c.PreCommit(pctx, site, req.Tx) //nolint:errcheck
			acked <- struct{}{}
		}(site)
	}
	// Wait for the round to drain (bounded by opts.Ack per participant).
	deadline := time.After(opts.Ack + 100*time.Millisecond)
	for range cohort {
		select {
		case <-acked:
		case <-deadline:
			return
		}
	}
}
