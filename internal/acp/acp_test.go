package acp

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
	"repro/internal/wire"
)

// fakeCohort wires a coordinator to in-memory Participants, with per-site
// failure switches.
type fakeCohort struct {
	mu           sync.Mutex
	participants map[model.SiteID]*Participant
	down         map[model.SiteID]bool
	voteNo       map[model.SiteID]bool
	// dropDecision suppresses decision delivery to a site (simulates the
	// coordinator crashing after deciding).
	dropDecision map[model.SiteID]bool
	// dropPreCommit suppresses just the pre-commit round at a site (the
	// site stays up for votes and decisions).
	dropPreCommit map[model.SiteID]bool
	prepares      int
	decisions     int
	precommits    int
	ends          int
}

func newFakeCohort() *fakeCohort {
	return &fakeCohort{
		participants:  make(map[model.SiteID]*Participant),
		down:          make(map[model.SiteID]bool),
		voteNo:        make(map[model.SiteID]bool),
		dropDecision:  make(map[model.SiteID]bool),
		dropPreCommit: make(map[model.SiteID]bool),
	}
}

func (f *fakeCohort) add(site model.SiteID, a Applier) *Participant {
	p := NewParticipant(site, wal.NewMemory(), a)
	f.mu.Lock()
	f.participants[site] = p
	f.mu.Unlock()
	return p
}

func (f *fakeCohort) Prepare(ctx context.Context, site model.SiteID, req wire.PrepareReq) (wire.VoteResp, error) {
	f.mu.Lock()
	f.prepares++
	down, no := f.down[site], f.voteNo[site]
	p := f.participants[site]
	f.mu.Unlock()
	if down {
		<-ctx.Done()
		return wire.VoteResp{}, ctx.Err()
	}
	if no {
		return wire.VoteResp{Yes: false, Reason: "injected"}, nil
	}
	return p.HandlePrepare(req), nil
}

func (f *fakeCohort) PreCommit(ctx context.Context, site model.SiteID, tx model.TxID) error {
	f.mu.Lock()
	f.precommits++
	down := f.down[site] || f.dropPreCommit[site]
	p := f.participants[site]
	f.mu.Unlock()
	if down {
		<-ctx.Done()
		return ctx.Err()
	}
	return p.HandlePreCommit(tx)
}

func (f *fakeCohort) Decide(ctx context.Context, site model.SiteID, tx model.TxID, commit bool) error {
	f.mu.Lock()
	f.decisions++
	blocked := f.down[site] || f.dropDecision[site]
	p := f.participants[site]
	f.mu.Unlock()
	if blocked {
		<-ctx.Done()
		return ctx.Err()
	}
	return p.HandleDecision(tx, commit)
}

func (f *fakeCohort) End(ctx context.Context, site model.SiteID, tx model.TxID) error {
	f.mu.Lock()
	f.ends++
	down := f.down[site]
	p := f.participants[site]
	f.mu.Unlock()
	if down {
		<-ctx.Done()
		return ctx.Err()
	}
	p.Retire(tx)
	return nil
}

// fakeApplier records what was committed/aborted.
type fakeApplier struct {
	mu        sync.Mutex
	committed map[model.TxID][]model.WriteRecord
	aborted   map[model.TxID]bool
}

func newApplier() *fakeApplier {
	return &fakeApplier{committed: make(map[model.TxID][]model.WriteRecord), aborted: make(map[model.TxID]bool)}
}

func (a *fakeApplier) Commit(tx model.TxID, writes []model.WriteRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.committed[tx] = writes
	return nil
}

func (a *fakeApplier) Abort(tx model.TxID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.aborted[tx] = true
}

func (a *fakeApplier) wasCommitted(tx model.TxID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.committed[tx]
	return ok
}

func (a *fakeApplier) wasAborted(tx model.TxID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.aborted[tx]
}

var testOpts = Options{Vote: 100 * time.Millisecond, Ack: 100 * time.Millisecond}

func request(sites ...model.SiteID) Request {
	return Request{
		Tx:           model.TxID{Site: "S1", Seq: 1},
		TS:           model.Timestamp{Time: 1, Site: "S1"},
		Coordinator:  "S1",
		Participants: sites,
		WritesFor: func(s model.SiteID) []model.WriteRecord {
			return []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}
		},
	}
}

func TestNewByName(t *testing.T) {
	for name, three := range map[string]bool{"2pc": false, "3pc": true, "": false} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.ThreePhase() != three {
			t.Errorf("New(%q).ThreePhase() = %v", name, p.ThreePhase())
		}
	}
	if _, err := New("paxos-commit"); err == nil {
		t.Error("unknown ACP accepted")
	}
}

func TestStateName(t *testing.T) {
	for s, want := range map[uint8]string{
		StateNone: "none", StatePrepared: "prepared", StatePreCommitted: "precommitted",
		StateCommitted: "committed", StateAborted: "aborted",
		StatePreAborted: "preaborted", 99: "state(99)",
	} {
		if got := StateName(s); got != want {
			t.Errorf("StateName(%d) = %q", s, got)
		}
	}
}

func runProtocol(t *testing.T, proto Protocol, f *fakeCohort, req Request) (bool, error) {
	t.Helper()
	log := wal.NewMemory()
	var recorded *bool
	commit, err := proto.Commit(context.Background(), f, log, testOpts, req, func(c bool) { recorded = &c })
	if recorded == nil {
		t.Error("onDecision not invoked")
	} else if *recorded != commit {
		t.Errorf("onDecision(%v) but Commit returned %v", *recorded, commit)
	}
	return commit, err
}

func testCommitAllYes(t *testing.T, proto Protocol) {
	f := newFakeCohort()
	appliers := map[model.SiteID]*fakeApplier{}
	for _, s := range []model.SiteID{"S1", "S2", "S3"} {
		appliers[s] = newApplier()
		f.add(s, appliers[s])
	}
	req := request("S1", "S2", "S3")
	commit, err := runProtocol(t, proto, f, req)
	if err != nil || !commit {
		t.Fatalf("commit = %v, %v", commit, err)
	}
	for s, a := range appliers {
		if !a.wasCommitted(req.Tx) {
			t.Errorf("%s did not apply the commit", s)
		}
	}
}

func testAbortOnNoVote(t *testing.T, proto Protocol) {
	f := newFakeCohort()
	appliers := map[model.SiteID]*fakeApplier{}
	for _, s := range []model.SiteID{"S1", "S2", "S3"} {
		appliers[s] = newApplier()
		f.add(s, appliers[s])
	}
	f.voteNo["S2"] = true
	req := request("S1", "S2", "S3")
	commit, err := runProtocol(t, proto, f, req)
	if commit {
		t.Fatal("committed despite a no vote")
	}
	if model.CauseOf(err) != model.AbortACP {
		t.Errorf("cause = %v", model.CauseOf(err))
	}
	// The yes-voters must learn the abort.
	if !appliers["S1"].wasAborted(req.Tx) || !appliers["S3"].wasAborted(req.Tx) {
		t.Error("yes-voters not aborted")
	}
}

func testAbortOnParticipantDown(t *testing.T, proto Protocol) {
	f := newFakeCohort()
	for _, s := range []model.SiteID{"S1", "S2"} {
		f.add(s, newApplier())
	}
	f.down["S2"] = true
	commit, err := runProtocol(t, proto, f, request("S1", "S2"))
	if commit {
		t.Fatal("committed with an unreachable participant")
	}
	if model.CauseOf(err) != model.AbortACP {
		t.Errorf("cause = %v", model.CauseOf(err))
	}
}

func TestTwoPCCommitAllYes(t *testing.T)    { testCommitAllYes(t, TwoPC{}) }
func TestThreePCCommitAllYes(t *testing.T)  { testCommitAllYes(t, ThreePC{}) }
func TestTwoPCAbortOnNoVote(t *testing.T)   { testAbortOnNoVote(t, TwoPC{}) }
func TestThreePCAbortOnNoVote(t *testing.T) { testAbortOnNoVote(t, ThreePC{}) }
func TestTwoPCAbortOnDown(t *testing.T)     { testAbortOnParticipantDown(t, TwoPC{}) }
func TestThreePCAbortOnDown(t *testing.T)   { testAbortOnParticipantDown(t, ThreePC{}) }

func TestThreePCSendsPreCommit(t *testing.T) {
	f := newFakeCohort()
	for _, s := range []model.SiteID{"S1", "S2"} {
		f.add(s, newApplier())
	}
	if _, err := runProtocol(t, ThreePC{}, f, request("S1", "S2")); err != nil {
		t.Fatal(err)
	}
	if f.precommits != 2 {
		t.Errorf("precommits = %d, want 2", f.precommits)
	}
}

func TestTwoPCSkipsPreCommit(t *testing.T) {
	f := newFakeCohort()
	for _, s := range []model.SiteID{"S1", "S2"} {
		f.add(s, newApplier())
	}
	if _, err := runProtocol(t, TwoPC{}, f, request("S1", "S2")); err != nil {
		t.Fatal(err)
	}
	if f.precommits != 0 {
		t.Errorf("precommits = %d, want 0", f.precommits)
	}
}

func TestCoordinatorLogsDecisionBeforeBroadcast(t *testing.T) {
	f := newFakeCohort()
	a := newApplier()
	f.add("S1", a)
	log := wal.NewMemory()
	req := request("S1")
	decided := false
	_, err := (TwoPC{}).Commit(context.Background(), f, log, testOpts, req, func(commit bool) {
		decided = true
		// At decision time the decision record must already be durable.
		recs, _ := log.ReadAll()
		found := false
		for _, r := range recs {
			if r.Type == wal.RecDecision && r.Tx == req.Tx && r.Commit {
				found = true
			}
		}
		if !found {
			t.Error("decision not logged before onDecision")
		}
	})
	if err != nil || !decided {
		t.Fatalf("err = %v, decided = %v", err, decided)
	}
	// All acked → RecEnd present.
	recs, _ := log.ReadAll()
	if recs[len(recs)-1].Type != wal.RecEnd {
		t.Errorf("last record = %v, want end", recs[len(recs)-1].Type)
	}
}

func TestNoEndRecordWhenAckMissing(t *testing.T) {
	f := newFakeCohort()
	f.add("S1", newApplier())
	f.add("S2", newApplier())
	f.dropDecision["S2"] = true
	log := wal.NewMemory()
	commit, err := (TwoPC{}).Commit(context.Background(), f, log, testOpts, request("S1", "S2"), nil)
	if err != nil || !commit {
		t.Fatalf("commit failed: %v", err)
	}
	recs, _ := log.ReadAll()
	for _, r := range recs {
		if r.Type == wal.RecEnd {
			t.Error("RecEnd written although an ack is missing")
		}
	}
}

// --- Participant ---

func TestParticipantPrepareForcesLog(t *testing.T) {
	log := wal.NewMemory()
	p := NewParticipant("S2", log, newApplier())
	req := wire.PrepareReq{
		Tx: model.TxID{Site: "S1", Seq: 9}, Coordinator: "S1",
		Participants: []model.SiteID{"S1", "S2"},
		Writes:       []model.WriteRecord{{Item: "x", Value: 5, Version: 2}},
	}
	v := p.HandlePrepare(req)
	if !v.Yes {
		t.Fatalf("vote = %+v", v)
	}
	recs, _ := log.ReadAll()
	if len(recs) != 1 || recs[0].Type != wal.RecPrepared || len(recs[0].Writes) != 1 {
		t.Errorf("log = %+v", recs)
	}
	if p.HandleTermState(req.Tx) != StatePrepared {
		t.Error("state not prepared")
	}
	if p.InDoubtCount() != 1 {
		t.Error("in-doubt count wrong")
	}
}

func TestParticipantDuplicatePrepareIdempotent(t *testing.T) {
	p := NewParticipant("S2", wal.NewMemory(), newApplier())
	req := wire.PrepareReq{Tx: model.TxID{Site: "S1", Seq: 9}, Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}}
	p.HandlePrepare(req)
	v := p.HandlePrepare(req)
	if !v.Yes {
		t.Error("duplicate prepare should re-vote yes")
	}
	if p.InDoubtCount() != 1 {
		t.Error("duplicate prepare duplicated state")
	}
}

func TestParticipantDecisionAppliesOnce(t *testing.T) {
	a := newApplier()
	p := NewParticipant("S2", wal.NewMemory(), a)
	tx := model.TxID{Site: "S1", Seq: 9}
	p.HandlePrepare(wire.PrepareReq{Tx: tx, Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})
	if err := p.HandleDecision(tx, true); err != nil {
		t.Fatal(err)
	}
	if !a.wasCommitted(tx) {
		t.Fatal("not committed")
	}
	// Duplicate decision: idempotent, no double apply.
	a.mu.Lock()
	delete(a.committed, tx)
	a.mu.Unlock()
	if err := p.HandleDecision(tx, true); err != nil {
		t.Fatal(err)
	}
	if a.wasCommitted(tx) {
		t.Error("decision applied twice")
	}
	if commit, known := p.Decision(tx); !known || !commit {
		t.Error("decision not recorded")
	}
}

func TestParticipantAbortDecision(t *testing.T) {
	a := newApplier()
	p := NewParticipant("S2", wal.NewMemory(), a)
	tx := model.TxID{Site: "S1", Seq: 9}
	p.HandlePrepare(wire.PrepareReq{Tx: tx, Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})
	p.HandleDecision(tx, false)
	if !a.wasAborted(tx) {
		t.Error("not aborted")
	}
	if p.HandleTermState(tx) != StateAborted {
		t.Error("term state not aborted")
	}
}

func TestParticipantPrepareAfterDecisionVotesAccordingly(t *testing.T) {
	p := NewParticipant("S2", wal.NewMemory(), newApplier())
	tx := model.TxID{Site: "S1", Seq: 9}
	p.HandleDecision(tx, false)
	v := p.HandlePrepare(wire.PrepareReq{Tx: tx})
	if v.Yes {
		t.Error("prepare after abort decision voted yes")
	}
}

func TestParticipantInDoubtAging(t *testing.T) {
	p := NewParticipant("S2", wal.NewMemory(), newApplier())
	tx := model.TxID{Site: "S1", Seq: 9}
	p.HandlePrepare(wire.PrepareReq{Tx: tx, Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})
	if got := p.InDoubt(time.Hour); len(got) != 0 {
		t.Error("fresh prepare reported as aged orphan")
	}
	if got := p.InDoubt(0); len(got) != 1 || got[0] != tx {
		t.Errorf("InDoubt(0) = %v", got)
	}
}

// fakeResolver routes termination traffic between real Participants (when
// registered via addPeer) or answers from static maps, with per-site
// unreachability switches — the harness behind the quorum-termination unit
// matrix.
type fakeResolver struct {
	mu        sync.Mutex
	peers     map[model.SiteID]*Participant
	decisions map[model.SiteID]map[model.TxID]bool // site → tx → commit
	states    map[model.SiteID]uint8               // static fallback (no peer)
	down      map[model.SiteID]bool
}

func newResolver() *fakeResolver {
	return &fakeResolver{
		peers:     make(map[model.SiteID]*Participant),
		decisions: make(map[model.SiteID]map[model.TxID]bool),
		states:    make(map[model.SiteID]uint8),
		down:      make(map[model.SiteID]bool),
	}
}

// addPeer registers a real participant to serve site's termination traffic.
func (r *fakeResolver) addPeer(site model.SiteID, p *Participant) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers[site] = p
}

func (r *fakeResolver) peer(site model.SiteID) (*Participant, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down[site] {
		return nil, false, errors.New("unreachable")
	}
	p, ok := r.peers[site]
	return p, ok, nil
}

func (r *fakeResolver) QueryDecision(_ context.Context, site model.SiteID, tx model.TxID, threePhase bool) (bool, bool, error) {
	p, ok, err := r.peer(site)
	if err != nil {
		return false, false, err
	}
	if ok {
		commit, known := p.Decision(tx)
		return known, commit, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.decisions[site]; ok {
		if commit, ok := m[tx]; ok {
			return true, commit, nil
		}
	}
	return false, false, nil
}

func (r *fakeResolver) QueryTermination(_ context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot) (wire.TermQueryResp, error) {
	p, ok, err := r.peer(site)
	if err != nil {
		return wire.TermQueryResp{}, err
	}
	if ok {
		return p.HandleTermQuery(tx, ballot), nil
	}
	// Static fallback: emulate a stateless member from the states map.
	r.mu.Lock()
	defer r.mu.Unlock()
	switch st := r.states[site]; st {
	case StateCommitted:
		return wire.TermQueryResp{Decided: true, Commit: true}, nil
	case StateAborted:
		return wire.TermQueryResp{Decided: true, Commit: false}, nil
	default:
		return wire.TermQueryResp{Accepted: true, State: st}, nil
	}
}

func (r *fakeResolver) SendPreDecide(_ context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot, commit bool) (wire.TermPreDecideResp, error) {
	p, ok, err := r.peer(site)
	if err != nil {
		return wire.TermPreDecideResp{}, err
	}
	if ok {
		return p.HandlePreDecide(tx, ballot, commit), nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch st := r.states[site]; st {
	case StateNone:
		return wire.TermPreDecideResp{Accepted: false}, nil
	case StateCommitted:
		return wire.TermPreDecideResp{Decided: true, Commit: true}, nil
	case StateAborted:
		return wire.TermPreDecideResp{Decided: true, Commit: false}, nil
	default:
		return wire.TermPreDecideResp{Accepted: true}, nil
	}
}

func (r *fakeResolver) SendDecision(_ context.Context, site model.SiteID, tx model.TxID, commit bool) error {
	p, ok, err := r.peer(site)
	if err != nil {
		return err
	}
	if ok {
		return p.HandleDecision(tx, commit)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.decisions[site] == nil {
		r.decisions[site] = make(map[model.TxID]bool)
	}
	r.decisions[site][tx] = commit
	return nil
}

func TestResolveViaCoordinator(t *testing.T) {
	a := newApplier()
	p := NewParticipant("S2", wal.NewMemory(), a)
	tx := model.TxID{Site: "S1", Seq: 1}
	p.HandlePrepare(wire.PrepareReq{Tx: tx, Coordinator: "S1", Participants: []model.SiteID{"S1", "S2"}, Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})

	r := newResolver()
	r.decisions["S1"] = map[model.TxID]bool{tx: true}
	if !p.Resolve(context.Background(), r, tx) {
		t.Fatal("resolve failed with live coordinator")
	}
	if !a.wasCommitted(tx) {
		t.Error("resolved commit not applied")
	}
}

func TestResolve2PCBlocksWithoutCoordinator(t *testing.T) {
	p := NewParticipant("S2", wal.NewMemory(), newApplier())
	tx := model.TxID{Site: "S1", Seq: 1}
	p.HandlePrepare(wire.PrepareReq{Tx: tx, Coordinator: "S1", Participants: []model.SiteID{"S1", "S2", "S3"}, Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})

	r := newResolver()
	r.down["S1"] = true // coordinator crashed; S3 uncertain too
	if p.Resolve(context.Background(), r, tx) {
		t.Fatal("2PC resolved without any decision source — safety violation")
	}
	if p.InDoubtCount() != 1 {
		t.Error("orphan lost")
	}
}

func TestResolve2PCViaPeer(t *testing.T) {
	a := newApplier()
	p := NewParticipant("S2", wal.NewMemory(), a)
	tx := model.TxID{Site: "S1", Seq: 1}
	p.HandlePrepare(wire.PrepareReq{Tx: tx, Coordinator: "S1", Participants: []model.SiteID{"S1", "S2", "S3"}, Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})

	r := newResolver()
	r.down["S1"] = true
	r.decisions["S3"] = map[model.TxID]bool{tx: true} // peer learned commit
	if !p.Resolve(context.Background(), r, tx) {
		t.Fatal("2PC cooperative resolution failed")
	}
	if !a.wasCommitted(tx) {
		t.Error("commit not applied")
	}
}

// prepare3PC builds a participant holding tx in-doubt under the 3PC state
// machine and registers it with the resolver as self.
func prepare3PC(t *testing.T, r *fakeResolver, self model.SiteID, tx model.TxID) (*Participant, *fakeApplier) {
	t.Helper()
	a := newApplier()
	p := NewParticipant(self, wal.NewMemory(), a)
	v := p.HandlePrepare(wire.PrepareReq{
		Tx: tx, Coordinator: "S1",
		Participants: []model.SiteID{"S1", "S2", "S3"},
		Voters:       []model.SiteID{"S1", "S2", "S3"},
		ThreePhase:   true,
		Writes:       []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
	})
	if !v.Yes {
		t.Fatalf("prepare vote = %+v", v)
	}
	r.addPeer(self, p)
	return p, a
}

// --- 3PC quorum-termination matrix ---

// Coordinator crashed before any pre-commit: every reachable member is
// merely prepared, the election quorum (2 of 3) holds, and the
// pre-decision must be abort.
func TestResolve3PCAllPreparedAborts(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	p, a := prepare3PC(t, r, "S2", tx)
	r.down["S1"] = true
	r.states["S3"] = StatePrepared
	if !p.Resolve(context.Background(), r, tx) {
		t.Fatal("3PC termination did not resolve")
	}
	if !a.wasAborted(tx) {
		t.Error("all-prepared cohort must abort")
	}
}

// Coordinator crashed after delivering at least one pre-commit: the
// pre-committed member carries the highest accepted ballot, so termination
// must commit (the coordinator may have decided commit).
func TestResolve3PCPreCommittedCommits(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	p, a := prepare3PC(t, r, "S2", tx)
	if err := p.HandlePreCommit(tx); err != nil {
		t.Fatal(err)
	}
	r.down["S1"] = true
	r.states["S3"] = StatePrepared
	if !p.Resolve(context.Background(), r, tx) {
		t.Fatal("3PC termination did not resolve")
	}
	if !a.wasCommitted(tx) {
		t.Error("pre-committed member must drive commit")
	}
}

func TestResolve3PCPeerCommittedWins(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	p, a := prepare3PC(t, r, "S2", tx)
	r.down["S1"] = true
	r.states["S3"] = StateCommitted
	p.Resolve(context.Background(), r, tx)
	if !a.wasCommitted(tx) {
		t.Error("peer's committed state must propagate")
	}
}

// A partition that splits the electorate below a majority must BLOCK —
// deciding on a minority view is exactly the bug quorum termination
// exists to prevent.
func TestResolve3PCPartitionBelowQuorumBlocks(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	p, a := prepare3PC(t, r, "S2", tx)
	if err := p.HandlePreCommit(tx); err != nil {
		t.Fatal(err)
	}
	r.down["S1"] = true
	r.down["S3"] = true // only self reachable: 1 < quorum(3) = 2
	if p.Resolve(context.Background(), r, tx) {
		t.Fatal("terminated without an election quorum — safety violation")
	}
	if a.wasCommitted(tx) || a.wasAborted(tx) {
		t.Error("no outcome may be applied without a quorum")
	}
	if p.InDoubtCount() != 1 {
		t.Error("blocked transaction lost")
	}
}

// Two real members, one merely prepared and one pre-committed: the
// initiator that only holds prepared state must still terminate to COMMIT
// once the quorum surfaces the peer's pre-commit, and both members must
// agree.
func TestResolve3PCQuorumAdoptsPeerPreCommit(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	p2, a2 := prepare3PC(t, r, "S2", tx)
	p3, a3 := prepare3PC(t, r, "S3", tx)
	if err := p3.HandlePreCommit(tx); err != nil {
		t.Fatal(err)
	}
	r.down["S1"] = true
	if !p2.Resolve(context.Background(), r, tx) {
		t.Fatal("3PC termination did not resolve")
	}
	if !a2.wasCommitted(tx) || !a3.wasCommitted(tx) {
		t.Errorf("members disagree: S2 committed=%v S3 committed=%v",
			a2.wasCommitted(tx), a3.wasCommitted(tx))
	}
}

// A member that crashed with a LOGGED pre-commit rejoins termination with
// that state (Restore + RestoreTermState), not as freshly prepared: its
// recovered pre-commit must carry the election to commit.
func TestResolve3PCRecoveredMemberRejoinsWithLoggedState(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	a := newApplier()
	p := NewParticipant("S2", wal.NewMemory(), a)
	p.Restore(wire.PrepareReq{
		Tx: tx, Coordinator: "S1",
		Participants: []model.SiteID{"S1", "S2", "S3"},
		Voters:       []model.SiteID{"S1", "S2", "S3"},
		Writes:       []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
	}, true)
	b := model.Ballot{N: 0, Site: "S1"}
	p.RestoreTermState(tx, StatePreCommitted, b, b)
	r.addPeer("S2", p)
	r.down["S1"] = true
	r.states["S3"] = StatePrepared
	if !p.Resolve(context.Background(), r, tx) {
		t.Fatal("3PC termination did not resolve")
	}
	if !a.wasCommitted(tx) {
		t.Error("recovered pre-commit must drive commit, not presumed abort")
	}
}

// A stale pre-decision (lower ballot than the member's promise) must be
// rejected: the promised-ballot fence is what stops a re-forming partition
// from resurrecting a dead attempt against a newer one.
func TestPreDecideBelowPromiseRejected(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	p, _ := prepare3PC(t, r, "S2", tx)
	q := p.HandleTermQuery(tx, model.Ballot{N: 5, Site: "S3"})
	if !q.Accepted {
		t.Fatalf("election query rejected: %+v", q)
	}
	resp := p.HandlePreDecide(tx, model.Ballot{N: 2, Site: "S4"}, true)
	if resp.Accepted {
		t.Fatal("pre-decision below the promised ballot accepted")
	}
	if resp := p.HandlePreDecide(tx, model.Ballot{N: 5, Site: "S3"}, false); !resp.Accepted {
		t.Fatalf("pre-decision at the promised ballot rejected: %+v", resp)
	}
	if p.HandleTermState(tx) != StatePreAborted {
		t.Errorf("state = %s, want preaborted", StateName(p.HandleTermState(tx)))
	}
}

// A member with no trace of the transaction never voted yes — 3PC commit
// is impossible without it — so a termination query makes it decide abort
// unilaterally and DURABLY: the logged abort fences any late prepare, so
// the member can never retroactively supply the missing yes vote.
func TestTermQueryNoTraceMemberAbortsDurably(t *testing.T) {
	log := wal.NewMemory()
	p := NewParticipant("S2", log, newApplier())
	tx := model.TxID{Site: "S1", Seq: 9}
	q := p.HandleTermQuery(tx, model.Ballot{N: 1, Site: "S3"})
	if !q.Decided || q.Commit {
		t.Fatalf("no-trace election reply = %+v, want decided abort", q)
	}
	recs, _ := log.ReadAll()
	var logged bool
	for _, r := range recs {
		if r.Type == wal.RecDecision && r.Tx == tx && !r.Commit {
			logged = true
		}
	}
	if !logged {
		t.Fatal("unilateral abort not forced to the log")
	}
	// The fence: a late prepare for the same transaction must vote no.
	if v := p.HandlePrepare(wire.PrepareReq{
		Tx: tx, Coordinator: "S1", ThreePhase: true,
		Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
	}); v.Yes {
		t.Fatal("late prepare voted yes after a unilateral termination abort")
	}
	// And a pre-commit can never be acknowledged.
	if err := p.HandlePreCommit(tx); err == nil {
		t.Fatal("pre-commit acked after a unilateral termination abort")
	}
}

// A member that promised a termination-election ballot must NOT ack the
// coordinator's (lower-ballot) pre-commit round: the election read this
// member as merely prepared and may pre-decide abort — an ack here would
// let the coordinator's commit quorum overlap that abort, splitting the
// decision.
func TestPreCommitFencedByElectionPromise(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 1}
	p, _ := prepare3PC(t, r, "S2", tx)
	if q := p.HandleTermQuery(tx, model.Ballot{N: 1, Site: "S3"}); !q.Accepted {
		t.Fatalf("election query rejected: %+v", q)
	}
	if err := p.HandlePreCommit(tx); err == nil {
		t.Fatal("pre-commit acked after promising a higher election ballot")
	}
	if p.HandleTermState(tx) != StatePrepared {
		t.Errorf("state = %s, want prepared (the promised attempt owns it)", StateName(p.HandleTermState(tx)))
	}
	// The promised attempt's own pre-decision still lands.
	if resp := p.HandlePreDecide(tx, model.Ballot{N: 1, Site: "S3"}, false); !resp.Accepted {
		t.Fatalf("promised attempt's pre-decision rejected: %+v", resp)
	}
}

// The durable pre-commit rule: HandlePreCommit must force a RecPreDecide
// (ballot {0, coordinator}) before the ack.
func TestPreCommitIsDurable(t *testing.T) {
	log := wal.NewMemory()
	p := NewParticipant("S2", log, newApplier())
	tx := model.TxID{Site: "S1", Seq: 1}
	p.HandlePrepare(wire.PrepareReq{
		Tx: tx, Coordinator: "S1", ThreePhase: true,
		Participants: []model.SiteID{"S1", "S2"},
		Writes:       []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
	})
	if err := p.HandlePreCommit(tx); err != nil {
		t.Fatal(err)
	}
	recs, _ := log.ReadAll()
	var found bool
	for _, r := range recs {
		if r.Type == wal.RecPreDecide && r.Tx == tx && r.Commit && r.Ballot == (model.Ballot{N: 0, Site: "S1"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("pre-commit not forced as RecPreDecide: log = %+v", recs)
	}
}

// ThreePC with the pre-commit quorum unreachable: the coordinator must
// return ErrInDoubt WITHOUT logging any decision — and quorum termination
// must later drive every member to the same outcome.
func TestThreePCNoPreCommitQuorumLeavesInDoubt(t *testing.T) {
	f := newFakeCohort()
	appliers := map[model.SiteID]*fakeApplier{}
	for _, s := range []model.SiteID{"S1", "S2", "S3"} {
		appliers[s] = newApplier()
		f.add(s, appliers[s])
	}
	f.dropPreCommit["S2"] = true
	f.dropPreCommit["S3"] = true
	req := request("S1", "S2", "S3")
	req.Voters = []model.SiteID{"S1", "S2", "S3"}
	log := wal.NewMemory()
	commit, err := (ThreePC{}).Commit(context.Background(), f, log, testOpts, req, nil)
	if commit {
		t.Fatal("committed without a pre-commit quorum")
	}
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("err = %v, want ErrInDoubt", err)
	}
	recs, _ := log.ReadAll()
	for _, r := range recs {
		if r.Type == wal.RecDecision {
			t.Fatal("a decision was logged although the outcome is unresolved")
		}
	}
	for _, s := range []model.SiteID{"S1", "S2", "S3"} {
		if appliers[s].wasCommitted(req.Tx) || appliers[s].wasAborted(req.Tx) {
			t.Fatalf("%s applied an outcome while in doubt", s)
		}
	}

	// Termination: wire the three real participants into a resolver and
	// let the pre-committed member (S1 acked the pre-commit) initiate.
	r := newResolver()
	for _, s := range []model.SiteID{"S1", "S2", "S3"} {
		r.addPeer(s, f.participants[s])
	}
	if !f.participants["S1"].Resolve(context.Background(), r, req.Tx) {
		t.Fatal("quorum termination did not resolve")
	}
	var committed, aborted int
	for _, s := range []model.SiteID{"S1", "S2", "S3"} {
		// Drain the decision to the two members that were not the
		// initiator (adoptDecision already broadcast; Resolve on them is a
		// cheap no-op or decision adoption).
		f.participants[s].Resolve(context.Background(), r, req.Tx)
		if appliers[s].wasCommitted(req.Tx) {
			committed++
		}
		if appliers[s].wasAborted(req.Tx) {
			aborted++
		}
	}
	if committed != 3 || aborted != 0 {
		t.Errorf("termination split the cohort: %d committed, %d aborted (pre-commit at S1 must force commit)", committed, aborted)
	}
}

func TestRestoreAndRestoreDecisions(t *testing.T) {
	a := newApplier()
	p := NewParticipant("S2", wal.NewMemory(), a)
	tx := model.TxID{Site: "S1", Seq: 1}
	p.Restore(wire.PrepareReq{
		Tx: tx, Coordinator: "S1", Participants: []model.SiteID{"S1", "S2"},
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 3}},
	}, false)
	if p.HandleTermState(tx) != StatePrepared {
		t.Error("restored tx not prepared")
	}

	other := model.TxID{Site: "S9", Seq: 5}
	p.RestoreDecisions([]wal.Record{{Type: wal.RecDecision, Tx: other, Commit: true}})
	if commit, known := p.Decision(other); !known || !commit {
		t.Error("decision table not restored")
	}

	// The restored in-doubt tx resolves and applies its writes.
	r := newResolver()
	r.decisions["S1"] = map[model.TxID]bool{tx: true}
	p.Resolve(context.Background(), r, tx)
	if got := a.committed[tx]; len(got) != 1 || got[0].Value != 7 {
		t.Errorf("restored writes not applied: %v", got)
	}
}

func TestRecordDecisionFirstWins(t *testing.T) {
	p := NewParticipant("S1", wal.NewMemory(), newApplier())
	tx := model.TxID{Site: "S1", Seq: 1}
	p.RecordDecision(tx, true)
	p.RecordDecision(tx, false) // late conflicting record must not overwrite
	if commit, known := p.Decision(tx); !known || !commit {
		t.Error("decision overwritten")
	}
}

// --- Read-only participant optimization ---

func TestReadOnlyParticipantSkipsPhase2(t *testing.T) {
	f := newFakeCohort()
	appliers := map[model.SiteID]*fakeApplier{}
	for _, s := range []model.SiteID{"S1", "S2", "S3"} {
		appliers[s] = newApplier()
		f.add(s, appliers[s])
	}
	req := request("S1", "S2", "S3")
	// S3 holds no writes: it must vote read-only and see no decision.
	writesFor := req.WritesFor
	req.WritesFor = func(s model.SiteID) []model.WriteRecord {
		if s == "S3" {
			return nil
		}
		return writesFor(s)
	}
	commit, err := runProtocol(t, TwoPC{}, f, req)
	if err != nil || !commit {
		t.Fatalf("commit = %v, %v", commit, err)
	}
	if f.decisions != 2 {
		t.Errorf("decisions sent = %d, want 2 (read-only site excluded)", f.decisions)
	}
	// The read-only participant released its CC state at vote time.
	if !appliers["S3"].wasAborted(req.Tx) {
		t.Error("read-only participant did not release CC state")
	}
	if appliers["S3"].wasCommitted(req.Tx) {
		t.Error("read-only participant applied a commit")
	}
	// Writers applied normally.
	if !appliers["S1"].wasCommitted(req.Tx) || !appliers["S2"].wasCommitted(req.Tx) {
		t.Error("writers did not apply")
	}
}

func TestReadOnlyParticipantNeverOrphans(t *testing.T) {
	p := NewParticipant("S2", wal.NewMemory(), newApplier())
	v := p.HandlePrepare(wire.PrepareReq{Tx: model.TxID{Site: "S1", Seq: 9}})
	if !v.Yes || !v.ReadOnly {
		t.Fatalf("vote = %+v, want yes+read-only", v)
	}
	if p.InDoubtCount() != 0 {
		t.Error("read-only vote left in-doubt state")
	}
	// Nothing was logged: no recovery work can exist.
	if l := p.log.(*wal.MemoryLog); l.Len() != 0 {
		t.Errorf("read-only vote forced %d log records", l.Len())
	}
}

func TestReadOnlyOptDisabled(t *testing.T) {
	p := NewParticipant("S2", wal.NewMemory(), newApplier())
	v := p.HandlePrepare(wire.PrepareReq{Tx: model.TxID{Site: "S1", Seq: 9}, NoReadOnlyOpt: true})
	if !v.Yes || v.ReadOnly {
		t.Fatalf("vote = %+v, want plain yes with optimization disabled", v)
	}
	if p.InDoubtCount() != 1 {
		t.Error("disabled optimization should leave a prepared state")
	}
}

func TestAllReadOnlyCohortCommits(t *testing.T) {
	f := newFakeCohort()
	for _, s := range []model.SiteID{"S1", "S2"} {
		f.add(s, newApplier())
	}
	req := request("S1", "S2")
	req.WritesFor = func(model.SiteID) []model.WriteRecord { return nil }
	commit, err := runProtocol(t, TwoPC{}, f, req)
	if err != nil || !commit {
		t.Fatalf("all-read-only commit = %v, %v", commit, err)
	}
	if f.decisions != 0 {
		t.Errorf("decisions sent to an all-read-only cohort: %d", f.decisions)
	}
}

// --- 3PC termination leader preference ---

// ballotCountingResolver wraps a fakeResolver and records election traffic:
// how many termination queries went out and which distinct ballots they
// carried (one ballot == one election attempt somewhere in the electorate).
type ballotCountingResolver struct {
	*fakeResolver
	cmu     sync.Mutex
	queries int
	ballots map[model.Ballot]bool
}

func newBallotCounter(r *fakeResolver) *ballotCountingResolver {
	return &ballotCountingResolver{fakeResolver: r, ballots: make(map[model.Ballot]bool)}
}

func (c *ballotCountingResolver) QueryTermination(ctx context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot) (wire.TermQueryResp, error) {
	c.cmu.Lock()
	c.queries++
	c.ballots[ballot] = true
	c.cmu.Unlock()
	return c.fakeResolver.QueryTermination(ctx, site, tx, ballot)
}

func (c *ballotCountingResolver) counts() (queries, ballots int) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.queries, len(c.ballots)
}

// A member that promised a termination ballot from a LOWER-id voter knows
// the preferred initiator is live and electing: it must sit out its own
// attempts (no election traffic at all) until the deferral budget runs out,
// then elect anyway so a stalled initiator cannot block termination.
func TestTerminationDefersToLowerInitiator(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 21}
	p, a := prepare3PC(t, r, "S3", tx)
	r.down["S1"] = true // coordinator gone: Resolve goes to quorum termination
	r.states["S2"] = StatePrepared

	// S2 (lower id, the preferred initiator) ran an election round: S3
	// promised its ballot.
	if resp := p.HandleTermQuery(tx, model.Ballot{N: 5, Site: "S2"}); !resp.Accepted {
		t.Fatalf("promise refused: %+v", resp)
	}

	cr := newBallotCounter(r)
	for i := 0; i < termDeferMax; i++ {
		if p.Resolve(context.Background(), cr, tx) {
			t.Fatalf("attempt %d: resolved while deferring to S2", i+1)
		}
		if q, _ := cr.counts(); q != 0 {
			t.Fatalf("attempt %d: deferring member sent %d election queries", i+1, q)
		}
	}
	// Budget exhausted: S2 must have stalled, so S3 now initiates and (with
	// S2 answerable and every member merely prepared) terminates with abort.
	if !p.Resolve(context.Background(), cr, tx) {
		t.Fatal("post-deferral election did not resolve")
	}
	if q, b := cr.counts(); q == 0 || b != 1 {
		t.Errorf("post-deferral election: %d queries, %d ballots, want >0 queries from exactly 1 ballot", q, b)
	}
	if !a.wasAborted(tx) {
		t.Error("termination outcome not applied")
	}
}

// The preference is asymmetric: a member that promised a HIGHER-id
// initiator's ballot does not defer — the lowest live voter goes first.
func TestTerminationNoDeferenceToHigherInitiator(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S1", Seq: 22}
	p, a := prepare3PC(t, r, "S2", tx)
	r.down["S1"] = true
	r.states["S3"] = StatePrepared

	if resp := p.HandleTermQuery(tx, model.Ballot{N: 5, Site: "S3"}); !resp.Accepted {
		t.Fatalf("promise refused: %+v", resp)
	}
	cr := newBallotCounter(r)
	if !p.Resolve(context.Background(), cr, tx) {
		t.Fatal("preferred (lowest live) initiator deferred")
	}
	if q, _ := cr.counts(); q == 0 {
		t.Error("no election traffic from the preferred initiator")
	}
	if !a.wasAborted(tx) {
		t.Error("termination outcome not applied")
	}
}

// Concurrent terminations must converge — and with the leader preference,
// cheaply: racing initiators stop outbidding each other once they promise
// the preferred (lowest-id) member's ballot, so the electorate burns a
// bounded number of ballots instead of duelling round after round.
func TestConcurrentTerminationsConverge(t *testing.T) {
	r := newResolver()
	tx := model.TxID{Site: "S0", Seq: 23}
	voters := []model.SiteID{"S1", "S2", "S3"}
	parts := make(map[model.SiteID]*Participant, len(voters))
	apps := make(map[model.SiteID]*fakeApplier, len(voters))
	for _, self := range voters {
		a := newApplier()
		p := NewParticipant(self, wal.NewMemory(), a)
		v := p.HandlePrepare(wire.PrepareReq{
			Tx: tx, Coordinator: "S0",
			Participants: append([]model.SiteID{"S0"}, voters...),
			Voters:       voters,
			ThreePhase:   true,
			Writes:       []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
		})
		if !v.Yes {
			t.Fatalf("%s prepare vote = %+v", self, v)
		}
		r.addPeer(self, p)
		parts[self], apps[self] = p, a
	}
	r.down["S0"] = true // coordinator crashed before any pre-commit

	cr := newBallotCounter(r)
	var wg sync.WaitGroup
	for _, self := range voters {
		wg.Add(1)
		go func(p *Participant) {
			defer wg.Done()
			for !p.Resolve(context.Background(), cr, tx) {
				time.Sleep(time.Millisecond)
			}
		}(parts[self])
	}
	wg.Wait()

	for _, self := range voters {
		if !apps[self].wasAborted(tx) {
			t.Errorf("%s did not apply the abort", self)
		}
		if apps[self].wasCommitted(tx) {
			t.Errorf("%s committed against the electorate's abort", self)
		}
	}
	// Three racing initiators start at most one ballot each; the preference
	// caps the duel well below a multi-round bidding war.
	if _, b := cr.counts(); b > 2*len(voters) {
		t.Errorf("concurrent termination burned %d ballots, want <= %d", b, 2*len(voters))
	}
}
