// Package acp implements Rainbow's atomic commit protocols (ACPs):
// two-phase commit (2PC, the paper's default) and three-phase commit (3PC,
// the paper's suggested term-project replacement).
//
// The package provides both halves of each protocol: the coordinator state
// machine run by a transaction's home site (Protocol.Commit) and the
// participant state machine embedded in every site (Participant), including
// WAL forcing rules, decision retries, presumed-abort decision serving,
// crash recovery of in-doubt transactions, and 3PC's cooperative
// termination protocol. Blocked in-doubt participants are the paper's
// "orphan transactions" statistic.
package acp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
	"repro/internal/wire"
)

// TermState values reported by participants during termination.
const (
	StateNone         uint8 = iota // no trace of the transaction
	StatePrepared                  // voted yes, uncertain
	StatePreCommitted              // 3PC: accepted a commit pre-decision
	StateCommitted
	StateAborted
	// StatePreAborted is 3PC's symmetric pre-decision: the member accepted
	// an elected initiator's abort pre-decision (quorum termination may
	// only abort through it, exactly as it may only commit through
	// pre-commit).
	StatePreAborted
)

// StateName renders a TermState for logs.
func StateName(s uint8) string {
	switch s {
	case StateNone:
		return "none"
	case StatePrepared:
		return "prepared"
	case StatePreCommitted:
		return "precommitted"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	case StatePreAborted:
		return "preaborted"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// ErrInDoubt is returned by a 3PC coordinator whose outcome could not be
// resolved within the call: a pre-commit round that missed its quorum (or a
// termination attempt that could not reach one) leaves the transaction
// legitimately undecided — deciding unilaterally could contradict a quorum
// termination on the other side of a partition. The caller must NOT release
// the cohort's CC state (the transaction may yet commit); the participants'
// resolver loops drive it to an outcome. The cause is AbortInDoubt, not
// AbortACP: workload retry loops must not resubmit the work (the original
// transaction may still commit — a blind retry would double-execute it) and
// abort statistics must not count an unresolved outcome as a clean abort.
var ErrInDoubt = &model.AbortError{Cause: model.AbortInDoubt, Reason: "3pc: outcome unresolved (pre-commit quorum unreachable); quorum termination will decide"}

// Cohort is the coordinator's transport face: how it reaches participants.
// The site implements it over the wire layer (with a loopback fast path for
// itself).
type Cohort interface {
	// Prepare delivers phase-1 and returns the participant's vote.
	Prepare(ctx context.Context, site model.SiteID, req wire.PrepareReq) (wire.VoteResp, error)
	// PreCommit delivers the 3PC pre-commit and waits for its ack. The ack
	// means the participant FORCED its pre-committed state: the
	// coordinator may decide commit only after a majority of the
	// electorate acked (the commit quorum any later termination must
	// intersect).
	PreCommit(ctx context.Context, site model.SiteID, tx model.TxID) error
	// Decide delivers the final decision and waits for its ack.
	Decide(ctx context.Context, site model.SiteID, tx model.TxID, commit bool) error
	// End tells a participant the whole cohort acknowledged the decision,
	// so it may retire its decision-table entry. Best-effort and
	// fire-and-forget: the coordinator is the resort of record (it retains
	// its own entry until every ack is in), so a lost end message costs
	// only a lingering table entry, never a wrong resolution.
	End(ctx context.Context, site model.SiteID, tx model.TxID) error
}

// Options bounds the coordinator's waits.
type Options struct {
	// Vote bounds the wait for each participant's vote.
	Vote time.Duration
	// Ack bounds the wait for decision / pre-commit acknowledgements.
	Ack time.Duration
}

// withDefaults fills zero timeouts so a zero Options never spins.
func (o Options) withDefaults() Options {
	if o.Vote == 0 {
		o.Vote = 2 * time.Second
	}
	if o.Ack == 0 {
		o.Ack = 2 * time.Second
	}
	return o
}

// Request describes one commit run.
type Request struct {
	Tx           model.TxID
	TS           model.Timestamp
	Coordinator  model.SiteID
	Participants []model.SiteID
	// WritesFor returns the write records a participant must install.
	WritesFor func(model.SiteID) []model.WriteRecord
	// NoReadOnlyOpt disables the read-only participant optimization
	// (ablation knob; the optimization is on by default).
	NoReadOnlyOpt bool
	// Epoch is the catalog epoch the transaction began under, carried in
	// every prepare for the participants' epoch fence (see
	// wire.PrepareReq.Epoch).
	Epoch uint64
	// Voters is the 3PC termination electorate (see wire.PrepareReq.
	// Voters): participants holding writes, or all participants when the
	// read-only optimization is off. Leaving it empty DISABLES quorum
	// termination for the transaction (in-doubt members then resolve only
	// through known-decision queries, like legacy pre-electorate records)
	// — 3PC callers must populate it.
	Voters []model.SiteID
	// IncarnationFor returns the incarnation number site reported when this
	// transaction operated there (0 = unknown), for the participants'
	// incarnation fence (see wire.PrepareReq.Incarnation). Nil skips it.
	IncarnationFor func(model.SiteID) uint64
}

// Protocol is an atomic commit protocol, run by the coordinator.
type Protocol interface {
	// Name returns "2pc" or "3pc".
	Name() string
	// ThreePhase reports whether participants should run the 3PC machine.
	ThreePhase() bool
	// Commit drives the protocol to a decision. It returns the decision
	// (true = commit); a false decision is accompanied by an error carrying
	// the abort cause. onDecision fires exactly once, immediately after the
	// decision is logged and before it is propagated, so the caller can
	// serve decision requests for recovering participants.
	Commit(ctx context.Context, c Cohort, log wal.Log, opts Options, req Request, onDecision func(commit bool)) (bool, error)
}

// New constructs a protocol by name.
func New(name string) (Protocol, error) {
	switch name {
	case "2pc", "2PC", "":
		return TwoPC{}, nil
	case "3pc", "3PC":
		return ThreePC{}, nil
	default:
		return nil, fmt.Errorf("acp: unknown atomic commit protocol %q", name)
	}
}

// Names lists the available ACP names.
func Names() []string { return []string{"2pc", "3pc"} }
