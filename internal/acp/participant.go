package acp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Applier installs or discards a decided transaction's effects at a site.
// cc.Manager satisfies this interface.
type Applier interface {
	Commit(tx model.TxID, writes []model.WriteRecord) error
	Abort(tx model.TxID)
}

// Resolver lets a blocked participant query other sites for an outcome.
// The site implements it over the wire layer (with loopback fast paths for
// itself, so the initiator's own state participates uniformly).
type Resolver interface {
	// QueryDecision asks site for the outcome of tx (a DecisionReq).
	// threePhase suppresses presumed abort at the answerer — a 3PC cohort
	// can commit by quorum without its coordinator, so "no record" must
	// answer unknown, not abort.
	QueryDecision(ctx context.Context, site model.SiteID, tx model.TxID, threePhase bool) (known, commit bool, err error)
	// QueryTermination runs quorum termination's election step at site:
	// ask it to promise ballot and report its state (TermQueryReq).
	QueryTermination(ctx context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot) (wire.TermQueryResp, error)
	// SendPreDecide delivers the elected initiator's pre-decision to site
	// and reports whether it was accepted (TermPreDecideReq).
	SendPreDecide(ctx context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot, commit bool) (wire.TermPreDecideResp, error)
	// SendDecision delivers a termination decision to site (KindDecision).
	SendDecision(ctx context.Context, site model.SiteID, tx model.TxID, commit bool) error
}

// Participant is a site's half of the commit protocols: it votes on
// prepares, holds prepared (in-doubt) transactions, applies decisions
// exactly once, serves termination-state queries, and resolves in-doubt
// transactions after coordinator failures. All methods are safe for
// concurrent use.
type Participant struct {
	self model.SiteID
	log  wal.Log
	// gate, when set, is the checkpoint manager's snapshot interlock: every
	// decision's force-write + install runs under its read side, so a fuzzy
	// snapshot (taken under the write side) never captures a decision record
	// as durable without its effects. Set before the site serves traffic;
	// nil means no checkpointing.
	gate *sync.RWMutex

	mu        sync.Mutex
	applier   Applier
	states    map[model.TxID]*ptx
	decisions map[model.TxID]bool
	// ended remembers recently retired outcomes for a bounded window.
	// Retirement means every cohort member acknowledged — but a stale
	// termination query (or decision request) can still be in flight, and
	// answering it from NO memory at all would let a no-trace unilateral
	// abort (see HandleTermQuery) contradict the retired commit.
	ended map[model.TxID]endedOutcome
	// endedPruned rate-limits the ended sweep: above the size threshold
	// only entries past the retention can go, so sweeping more than once
	// per interval would be O(map) scans that delete nothing.
	endedPruned time.Time
}

type endedOutcome struct {
	commit bool
	at     time.Time
}

// endedRetention bounds how long retired outcomes stay answerable; stale
// queries are network-delay-bounded, so a generous minute is plenty.
const endedRetention = time.Minute

type ptx struct {
	state      uint8
	req        wire.PrepareReq
	preparedAt time.Time
	// ea is the highest termination ballot this member promised (forced as
	// RecElect); eb the ballot of the last pre-decision it accepted
	// (forced as RecPreDecide). The live coordinator's pre-commit round is
	// ballot {0, coordinator}; elections start at attempt 1.
	ea, eb model.Ballot
	// nextN seeds this member's next termination attempt number when it
	// initiates (volatile: it only affects liveness, never safety — a
	// reused attempt number is fenced by the promised-ballot order).
	nextN uint64
	// deferred counts termination attempts this member has yielded to a
	// lower-id initiator it promised (volatile leader preference; see
	// deferToLowerInitiator).
	deferred uint8
}

// NewParticipant builds the participant half for a site. applier is the
// site's CC manager (it installs writes and releases CC state).
func NewParticipant(self model.SiteID, log wal.Log, applier Applier) *Participant {
	return &Participant{
		self:      self,
		log:       log,
		applier:   applier,
		states:    make(map[model.TxID]*ptx),
		decisions: make(map[model.TxID]bool),
		ended:     make(map[model.TxID]endedOutcome),
	}
}

// SetApplier swaps the applier (site recovery replaces the CC manager).
func (p *Participant) SetApplier(a Applier) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applier = a
}

// UseGate installs the checkpoint manager's snapshot interlock. Must be
// called before the participant serves traffic.
func (p *Participant) UseGate(g *sync.RWMutex) { p.gate = g }

func (p *Participant) gateRLock() {
	if p.gate != nil {
		p.gate.RLock()
	}
}

func (p *Participant) gateRUnlock() {
	if p.gate != nil {
		p.gate.RUnlock()
	}
}

// HandlePrepare processes phase 1: force the prepared record and vote yes.
// A transaction already decided here votes according to that decision. A
// participant holding no writes votes "read" (presumed-abort read-only
// optimization): it releases its CC state at once, logs nothing, and takes
// no part in phase 2 — it can never become an orphan.
func (p *Participant) HandlePrepare(req wire.PrepareReq) wire.VoteResp {
	p.mu.Lock()
	if commit, ok := p.decisions[req.Tx]; ok {
		p.mu.Unlock()
		return wire.VoteResp{Yes: commit, Reason: "already decided"}
	}
	if commit, ok := p.endedLocked(req.Tx); ok {
		p.mu.Unlock()
		return wire.VoteResp{Yes: commit, Reason: "already decided (retired)"}
	}
	if _, dup := p.states[req.Tx]; dup {
		p.mu.Unlock()
		return wire.VoteResp{Yes: true, Reason: "already prepared"}
	}
	applier := p.applier
	p.mu.Unlock()

	if len(req.Writes) == 0 && !req.NoReadOnlyOpt {
		if applier != nil {
			applier.Abort(req.Tx) // release read locks / clear nothing-to-install state
		}
		return wire.VoteResp{Yes: true, ReadOnly: true}
	}

	// Force the prepared record before voting yes (the WAL rule that makes
	// the yes-vote binding across crashes). The site's production entry
	// point (votePrepare) holds the checkpoint gate's read side around
	// this whole call, so a live reconfiguration quiescing the pipeline
	// under the gate's write side cannot interleave between the site's
	// prepare guards and this force — the gate is deliberately NOT taken
	// here (it is not reentrant).
	if err := p.log.Append(wal.Record{
		Type:         wal.RecPrepared,
		Tx:           req.Tx,
		TS:           req.TS,
		Coordinator:  req.Coordinator,
		Participants: req.Participants,
		Voters:       req.Voters,
		ThreePhase:   req.ThreePhase,
		Writes:       req.Writes,
	}); err != nil {
		return wire.VoteResp{Yes: false, Reason: "log force failed: " + err.Error()}
	}

	p.mu.Lock()
	p.states[req.Tx] = &ptx{state: StatePrepared, req: req, preparedAt: time.Now()}
	p.mu.Unlock()
	return wire.VoteResp{Yes: true}
}

// HandlePreCommit moves a prepared transaction to the 3PC pre-committed
// state — durably: the transition is a RecPreDecide at the coordinator's
// ballot {0, coordinator}, forced before the ack, so a recovered member
// rejoins termination with its logged pre-commit instead of a presumed-
// abort guess. The ack IS the commit-quorum vote: the coordinator may
// decide commit on a majority of acks, so only a member that really is
// pre-committed (now, durably — or already decided commit) may return nil.
// A member with no state, an abort decision, or an accepted abort
// pre-decision must error: counting it would let the commit quorum overlap
// a termination abort.
func (p *Participant) HandlePreCommit(tx model.TxID) error {
	p.mu.Lock()
	if commit, ok := p.decisions[tx]; ok {
		p.mu.Unlock()
		if commit {
			return nil
		}
		return fmt.Errorf("acp: pre-commit of %v: already aborted", tx)
	}
	if commit, ok := p.endedLocked(tx); ok {
		p.mu.Unlock()
		if commit {
			return nil
		}
		return fmt.Errorf("acp: pre-commit of %v: already aborted", tx)
	}
	st, ok := p.states[tx]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("acp: pre-commit of %v: no prepared state", tx)
	}
	switch st.state {
	case StatePreCommitted:
		p.mu.Unlock()
		return nil // idempotent re-ack
	case StatePrepared:
	default:
		p.mu.Unlock()
		return fmt.Errorf("acp: pre-commit of %v: state is %s", tx, StateName(st.state))
	}
	// The coordinator's round is a pre-decision at ballot {0, coordinator}
	// and is fenced by the member's election promise exactly like any
	// other: once this member helped elect a termination attempt, acking
	// the (delayed) coordinator round would let the commit quorum overlap
	// an attempt that read this member as merely prepared — the attempt
	// could pre-decide abort from a quorum whose members then ack
	// pre-commits, splitting the decision.
	ballot := model.Ballot{N: 0, Site: st.req.Coordinator}
	if ballot.Less(st.ea) {
		ea := st.ea
		p.mu.Unlock()
		return fmt.Errorf("acp: pre-commit of %v: member promised election ballot %v", tx, ea)
	}
	p.mu.Unlock()

	if err := p.log.Append(wal.Record{Type: wal.RecPreDecide, Tx: tx, Commit: true, Ballot: ballot}); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok = p.states[tx]
	if !ok {
		if commit, decided := p.decisions[tx]; decided && commit {
			return nil
		}
		return fmt.Errorf("acp: pre-commit of %v: decided during force", tx)
	}
	if ballot.Less(st.ea) {
		// An election raced past the log force: the promise wins. The
		// logged pre-decision stands for recovery (logged-means-accepted,
		// and it sits below the promised ballot so any attempt's evidence
		// outranks it) but the ack — the commit-quorum vote — must not go
		// out.
		return fmt.Errorf("acp: pre-commit of %v: member promised election ballot %v", tx, st.ea)
	}
	if st.state == StatePrepared {
		st.state = StatePreCommitted
		if st.ea.Less(ballot) {
			st.ea = ballot
		}
		if st.eb.Less(ballot) {
			st.eb = ballot
		}
	}
	if st.state != StatePreCommitted {
		return fmt.Errorf("acp: pre-commit of %v: state moved to %s", tx, StateName(st.state))
	}
	return nil
}

// HandleTermQuery serves quorum termination's election step: promise the
// ballot (durably — a forgotten promise could let this member accept a
// stale pre-decision after helping elect a newer attempt) and report the
// member's state and last-accepted ballot.
//
// A member with NO trace of the transaction never voted yes (a yes vote is
// forced before it is cast, and recovery restores it; recently retired
// outcomes are answered from the ended window) — and in 3PC no commit can
// exist anywhere without EVERY voter's yes. It therefore unilaterally
// decides abort, durably, and answers with that decision: durability is
// what makes the answer binding — a later prepare for the same transaction
// finds the abort and votes no, so the member can never retroactively
// supply the yes vote a racing coordinator would need to reach commit.
// (This is also what keeps termination live when prepares were lost to a
// crash: members that cannot accept pre-decisions — they hold no prepared
// record — would otherwise starve the decision quorum forever.)
func (p *Participant) HandleTermQuery(tx model.TxID, ballot model.Ballot) wire.TermQueryResp {
	p.mu.Lock()
	if commit, ok := p.decisions[tx]; ok {
		p.mu.Unlock()
		return wire.TermQueryResp{Decided: true, Commit: commit}
	}
	if commit, ok := p.endedLocked(tx); ok {
		p.mu.Unlock()
		return wire.TermQueryResp{Decided: true, Commit: commit}
	}
	st, ok := p.states[tx]
	if !ok {
		p.mu.Unlock()
		if err := p.decide(tx, false, true); err != nil {
			return wire.TermQueryResp{Accepted: false}
		}
		return wire.TermQueryResp{Decided: true, Commit: false}
	}
	if !st.ea.Less(ballot) {
		resp := wire.TermQueryResp{Accepted: false, EA: st.ea, State: st.state, EB: st.eb}
		p.mu.Unlock()
		return resp
	}
	p.mu.Unlock()

	if err := p.log.Append(wal.Record{Type: wal.RecElect, Tx: tx, Ballot: ballot}); err != nil {
		return wire.TermQueryResp{Accepted: false}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if commit, ok := p.decisions[tx]; ok {
		return wire.TermQueryResp{Decided: true, Commit: commit}
	}
	if commit, ok := p.endedLocked(tx); ok {
		return wire.TermQueryResp{Decided: true, Commit: commit}
	}
	st, ok = p.states[tx]
	if !ok {
		// Decided-and-retired during the force; the retry answers exactly.
		return wire.TermQueryResp{Accepted: false}
	}
	if st.ea.Less(ballot) {
		st.ea = ballot
	} else if st.ea != ballot {
		// A higher promise raced past the log force; honor it.
		return wire.TermQueryResp{Accepted: false, EA: st.ea, State: st.state, EB: st.eb}
	}
	return wire.TermQueryResp{Accepted: true, EA: st.ea, State: st.state, EB: st.eb}
}

// HandlePreDecide serves quorum termination's pre-decision: a member that
// still honors the ballot forces the pre-decision (its new eb) and moves to
// pre-committed / pre-aborted. Members with no state never accept (they
// hold no prepared record to attach the pre-decision to), and stale
// ballots are rejected by the promised-ballot fence.
func (p *Participant) HandlePreDecide(tx model.TxID, ballot model.Ballot, commit bool) wire.TermPreDecideResp {
	p.mu.Lock()
	if c, ok := p.decisions[tx]; ok {
		p.mu.Unlock()
		return wire.TermPreDecideResp{Decided: true, Commit: c}
	}
	if c, ok := p.endedLocked(tx); ok {
		p.mu.Unlock()
		return wire.TermPreDecideResp{Decided: true, Commit: c}
	}
	st, ok := p.states[tx]
	if !ok || ballot.Less(st.ea) {
		p.mu.Unlock()
		return wire.TermPreDecideResp{Accepted: false}
	}
	p.mu.Unlock()

	if err := p.log.Append(wal.Record{Type: wal.RecPreDecide, Tx: tx, Commit: commit, Ballot: ballot}); err != nil {
		return wire.TermPreDecideResp{Accepted: false}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.decisions[tx]; ok {
		return wire.TermPreDecideResp{Decided: true, Commit: c}
	}
	st, ok = p.states[tx]
	if !ok || ballot.Less(st.ea) {
		return wire.TermPreDecideResp{Accepted: false}
	}
	st.ea, st.eb = ballot, ballot
	if commit {
		st.state = StatePreCommitted
	} else {
		st.state = StatePreAborted
	}
	return wire.TermPreDecideResp{Accepted: true}
}

// HandleDecision applies the final outcome exactly once and acknowledges.
// It is idempotent against duplicate deliveries, and it still applies when
// the outcome was already recorded without application (the coordinator
// records its decision in the table before delivering it to its own
// participant half). The force-write and the install happen under the
// checkpoint gate as one unit.
func (p *Participant) HandleDecision(tx model.TxID, commit bool) error {
	p.gateRLock()
	defer p.gateRUnlock()
	return p.decide(tx, commit, true)
}

// ForceDecision is the coordinator's half of the WAL decision rule: it
// forces the decision record (rec.Type must be RecDecision) and adopts the
// outcome locally — decision table entry plus local apply/release — as one
// unit under the checkpoint gate. Without the atomicity a fuzzy snapshot
// could observe the record durable below its horizon while the local
// install is still pending, and compaction would then strand the write set.
//
// Only the log force can fail the call: once the record is durable the
// decision IS the outcome, so a local install error (a write-set/schema
// mismatch) must not make the protocol report an abort or skip phase 2 —
// the write set stays in the WAL and recovery's version-guarded redo
// repairs the store.
func (p *Participant) ForceDecision(rec wal.Record) error {
	p.gateRLock()
	defer p.gateRUnlock()
	if err := p.log.Append(rec); err != nil {
		return err
	}
	p.decide(rec.Tx, rec.Commit, false) //nolint:errcheck
	return nil
}

// ForceEnd is the coordinator's transaction-complete rule: it appends the
// end record (rec.Type must be RecEnd) and retires the decision-table entry
// as one unit under the checkpoint gate. RecEnd means every cohort member
// acknowledged the decision, so no peer will ever ask for the outcome again
// — keeping the entry would only make every future snapshot mirror a dead
// decision. The gate atomicity gives recovery a clean invariant: a snapshot
// whose horizon is above the end record's LSN no longer carries the
// decision, and one below it retains the record, whose replay retires the
// entry again (RestoreDecisions).
func (p *Participant) ForceEnd(rec wal.Record) error {
	p.gateRLock()
	defer p.gateRUnlock()
	if err := p.log.Append(rec); err != nil {
		return err
	}
	p.Retire(rec.Tx)
	return nil
}

// Retire drops a fully acknowledged transaction from the decision table,
// remembering the outcome for a bounded window (see Participant.ended).
func (p *Participant) Retire(tx model.TxID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if commit, ok := p.decisions[tx]; ok {
		now := time.Now()
		p.ended[tx] = endedOutcome{commit: commit, at: now}
		if len(p.ended) > 8192 && now.Sub(p.endedPruned) > endedRetention/4 {
			p.endedPruned = now
			cutoff := now.Add(-endedRetention)
			for t, e := range p.ended {
				if e.at.Before(cutoff) {
					delete(p.ended, t)
				}
			}
		}
	}
	delete(p.decisions, tx)
}

// endedLocked looks a recently retired outcome up; callers hold p.mu.
func (p *Participant) endedLocked(tx model.TxID) (commit, ok bool) {
	e, ok := p.ended[tx]
	return e.commit, ok
}

// decide installs an outcome exactly once. logIt selects whether a decision
// record still needs forcing (false when the caller already forced one).
// Callers hold the checkpoint gate.
func (p *Participant) decide(tx model.TxID, commit bool, logIt bool) error {
	p.mu.Lock()
	st, hasState := p.states[tx]
	_, decided := p.decisions[tx]
	delete(p.states, tx)
	p.decisions[tx] = commit
	applier := p.applier
	p.mu.Unlock()

	if decided && !hasState {
		return nil // true duplicate: already applied (or never prepared here)
	}

	// Log before applying; Store.Apply is version-guarded so replay after a
	// crash between these two steps is idempotent.
	if logIt && !decided {
		if err := p.log.Append(wal.Record{Type: wal.RecDecision, Tx: tx, Commit: commit}); err != nil {
			return err
		}
	}
	if st == nil {
		// Decision for a transaction with no prepared state here (e.g. a
		// retry after completion, or an abort before prepare). Release any
		// CC state just in case.
		if !commit && applier != nil {
			applier.Abort(tx)
		}
		return nil
	}
	if applier == nil {
		return nil
	}
	if commit {
		return applier.Commit(tx, st.req.Writes)
	}
	applier.Abort(tx)
	return nil
}

// HandleTermState reports the transaction's state for cooperative
// termination.
func (p *Participant) HandleTermState(tx model.TxID) uint8 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if commit, ok := p.decisions[tx]; ok {
		if commit {
			return StateCommitted
		}
		return StateAborted
	}
	if st, ok := p.states[tx]; ok {
		return st.state
	}
	return StateNone
}

// Prepared reports whether the participant currently holds in-doubt
// (prepared, undecided) state for tx. Online reconfiguration uses it to
// tell which WAL-recovered in-doubt transactions are already carried in
// memory — those keep their live protocol state (e.g. 3PC pre-committed)
// instead of being reset to freshly-prepared.
func (p *Participant) Prepared(tx model.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.states[tx]
	return ok
}

// InDoubtThreePhase reports whether tx is held in-doubt here under the 3PC
// state machine. Decision serving uses it to suppress presumed abort: a
// 3PC cohort can cooperatively commit without its coordinator, so a
// recovered coordinator must not presume its own in-doubt 3PC transaction
// aborted.
func (p *Participant) InDoubtThreePhase(tx model.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.states[tx]
	return ok && st.req.ThreePhase
}

// Decision reports a locally known outcome (for decision-request serving),
// including recently retired ones: a stale query must never be answered
// worse after retirement than before it.
func (p *Participant) Decision(tx model.TxID) (commit, known bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if commit, known = p.decisions[tx]; known {
		return commit, known
	}
	return p.endedLocked(tx)
}

// RecordDecision notes an already-known outcome in the decision table
// without logging or applying anything. The production coordinator path is
// ForceDecision (which also forces the record and installs locally under
// the checkpoint gate); this remains for protocol-level tests and callers
// that learned an outcome out of band.
func (p *Participant) RecordDecision(tx model.TxID, commit bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.decisions[tx]; !ok {
		p.decisions[tx] = commit
	}
}

// InDoubt lists transactions prepared longer than age ago and still
// undecided — the paper's orphan transactions.
func (p *Participant) InDoubt(age time.Duration) []model.TxID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []model.TxID
	cutoff := time.Now().Add(-age)
	for tx, st := range p.states {
		if st.preparedAt.Before(cutoff) {
			out = append(out, tx)
		}
	}
	return out
}

// InDoubtCount reports the current number of in-doubt transactions.
func (p *Participant) InDoubtCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.states)
}

// Restore re-installs an in-doubt transaction found in the WAL during crash
// recovery. The caller must already have re-protected its write set in the
// CC layer (cc.Manager.Reinstate).
func (p *Participant) Restore(req wire.PrepareReq, threePhase bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	req.ThreePhase = threePhase
	p.states[req.Tx] = &ptx{state: StatePrepared, req: req, preparedAt: time.Now()}
}

// RestoreTermState re-installs a recovered 3PC transaction's logged
// termination state on top of Restore: the last accepted pre-decision
// (pre-committed / pre-aborted, with its ballot eb) and the highest
// promised ballot ea. A logged pre-decision counts as accepted even if the
// pre-crash process never managed to acknowledge it — the standard
// logged-means-accepted rule; claiming less could hide the highest-ballot
// evidence a later election quorum depends on.
func (p *Participant) RestoreTermState(tx model.TxID, state uint8, ea, eb model.Ballot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.states[tx]
	if !ok {
		return
	}
	if state == StatePreCommitted || state == StatePreAborted {
		st.state = state
	}
	if st.eb.Less(eb) {
		st.eb = eb
	}
	if st.ea.Less(ea) {
		st.ea = ea
	}
	if st.ea.Less(st.eb) {
		st.ea = st.eb
	}
}

// RestoreDecisions rebuilds the decision table from WAL records. An end
// record retires its transaction's entry again — the cohort had fully
// acknowledged, so the decision need not be served after recovery either.
func (p *Participant) RestoreDecisions(recs []wal.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range recs {
		switch r.Type {
		case wal.RecDecision:
			p.decisions[r.Tx] = r.Commit
		case wal.RecEnd:
			if commit, ok := p.decisions[r.Tx]; ok {
				p.ended[r.Tx] = endedOutcome{commit: commit, at: time.Now()}
			}
			delete(p.decisions, r.Tx)
		}
	}
}

// DecisionCount reports the decision table's current size (a durability
// gauge: retirement keeps it bounded by the in-flight cohort count).
func (p *Participant) DecisionCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.decisions)
}

// SeedDecisions preloads the decision table from a checkpoint snapshot
// (records compacted below the snapshot's horizon live on only there).
// WAL-derived entries win over snapshot entries, so call this before
// RestoreDecisions.
func (p *Participant) SeedDecisions(decs map[model.TxID]bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for tx, commit := range decs {
		if _, ok := p.decisions[tx]; !ok {
			p.decisions[tx] = commit
		}
	}
}

// DecisionTable returns a copy of the decision table; the checkpoint
// manager embeds it in each snapshot.
func (p *Participant) DecisionTable() map[model.TxID]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[model.TxID]bool, len(p.decisions))
	for tx, commit := range p.decisions {
		out[tx] = commit
	}
	return out
}

// Resolve tries to determine the outcome of an in-doubt transaction:
// first by asking the coordinator (decision request; for 2PC an answering
// coordinator with no record means presumed abort), then by asking peers
// (2PC) or by the quorum-based termination protocol over the electorate
// (3PC). It returns true when the transaction was decided and applied.
func (p *Participant) Resolve(ctx context.Context, r Resolver, tx model.TxID) bool {
	p.mu.Lock()
	st, ok := p.states[tx]
	if !ok {
		p.mu.Unlock()
		return true // already decided
	}
	req := st.req
	threePhase := st.req.ThreePhase
	p.mu.Unlock()

	if known, commit, err := r.QueryDecision(ctx, req.Coordinator, tx, threePhase); err == nil && known {
		p.HandleDecision(tx, commit) //nolint:errcheck
		return true
	}

	if !threePhase || len(req.Voters) == 0 {
		// 2PC — or a legacy 3PC prepare recorded before the electorate
		// (Voters) was carried: ask the rest of the cohort; any peer may
		// know the outcome. Legacy 3PC records must NOT quorum-terminate:
		// guessing the electorate from the participant list would count
		// read-only members whose yes vote no commit ever needed — a
		// no-trace unilateral abort from one of them could then contradict
		// a commit the pre-upgrade coordinator decided without today's
		// quorum rule. Known-decision queries block at worst; they never
		// split.
		for _, peer := range req.Participants {
			if peer == p.self || peer == req.Coordinator {
				continue
			}
			if known, commit, err := r.QueryDecision(ctx, peer, tx, threePhase); err == nil && known {
				p.HandleDecision(tx, commit) //nolint:errcheck
				return true
			}
		}
		return false // blocked: an orphan
	}
	return p.terminateQuorum(ctx, r, tx, req)
}

// terminateQuorum runs quorum-based (E3PC-style) termination for an
// in-doubt 3PC transaction. Unlike the classic cooperative protocol it
// stays safe under partitions and fail-recover:
//
//   - the initiator elects itself with a ballot above every promise it can
//     see, and needs a majority of the electorate to answer (the election
//     quorum) — two concurrent initiators on either side of a partition
//     cannot both proceed past members they share;
//   - commit may only be pre-decided when a member at the highest accepted
//     ballot in the quorum is pre-committed (the coordinator's pre-commit
//     round is ballot {0, coordinator}, so its commit quorum is visible to
//     every election quorum), and abort only otherwise — never against a
//     higher-ballot pre-commit;
//   - the decision is taken only after a majority FORCED the pre-decision
//     (the decision quorum), so a re-forming partition finds durable
//     evidence of the chosen outcome in every future quorum.
//
// Returns true when the transaction was decided and applied here.
func (p *Participant) terminateQuorum(ctx context.Context, r Resolver, tx model.TxID, req wire.PrepareReq) bool {
	voters := req.Voters
	if len(voters) == 0 {
		return false // legacy record: Resolve routes these to decision queries
	}
	quorum := len(voters)/2 + 1

	if p.deferToLowerInitiator(tx) {
		return false // leader preference: let the lower-id initiator finish
	}

	// Pick a ballot above everything this member has seen.
	p.mu.Lock()
	st, ok := p.states[tx]
	if !ok {
		p.mu.Unlock()
		return true // decided meanwhile
	}
	n := st.nextN
	if st.ea.N >= n {
		n = st.ea.N
	}
	n++
	st.nextN = n
	p.mu.Unlock()
	ballot := model.Ballot{N: n, Site: p.self}

	// Election: collect promises and states from the electorate (self
	// included, via the resolver's loopback).
	type reply struct {
		resp wire.TermQueryResp
		err  error
	}
	replies := make(chan reply, len(voters))
	for _, site := range voters {
		go func(site model.SiteID) {
			resp, err := r.QueryTermination(ctx, site, tx, ballot)
			replies <- reply{resp: resp, err: err}
		}(site)
	}
	var accepted []wire.TermQueryResp
	var maxSeen uint64
	for range voters {
		rep := <-replies
		if rep.err != nil {
			continue
		}
		resp := rep.resp
		if resp.Decided {
			p.adoptDecision(ctx, r, tx, voters, resp.Commit)
			return true
		}
		if resp.EA.N > maxSeen {
			maxSeen = resp.EA.N
		}
		if resp.Accepted {
			accepted = append(accepted, resp)
		}
	}
	p.bumpAttempt(tx, maxSeen)
	if len(accepted) < quorum {
		return false // no election quorum: stay blocked, retry later
	}

	// Pre-decision: commit iff a member at the highest accepted ballot is
	// pre-committed. Members that decided already short-circuited above;
	// StateNone members carry a zero EB and can only support abort.
	var maxEB model.Ballot
	for _, resp := range accepted {
		if maxEB.Less(resp.EB) {
			maxEB = resp.EB
		}
	}
	commit := false
	for _, resp := range accepted {
		if resp.EB == maxEB && resp.State == StatePreCommitted {
			commit = true
			break
		}
	}

	// Decision quorum: a majority must force the pre-decision.
	type ack struct {
		resp wire.TermPreDecideResp
		err  error
	}
	acks := make(chan ack, len(voters))
	for _, site := range voters {
		go func(site model.SiteID) {
			resp, err := r.SendPreDecide(ctx, site, tx, ballot, commit)
			acks <- ack{resp: resp, err: err}
		}(site)
	}
	got := 0
	for range voters {
		a := <-acks
		if a.err != nil {
			continue
		}
		if a.resp.Decided {
			p.adoptDecision(ctx, r, tx, voters, a.resp.Commit)
			return true
		}
		if a.resp.Accepted {
			got++
		}
	}
	if got < quorum {
		return false
	}
	p.adoptDecision(ctx, r, tx, voters, commit)
	return true
}

// adoptDecision applies a termination outcome locally and propagates it to
// the electorate (best-effort: members that miss it re-run termination and
// learn it from the quorum). The fan-out is concurrent, like every other
// broadcast in this package — one partitioned voter consuming the shared
// context sequentially would starve the reachable ones of a decision they
// could apply immediately.
func (p *Participant) adoptDecision(ctx context.Context, r Resolver, tx model.TxID, voters []model.SiteID, commit bool) {
	p.HandleDecision(tx, commit) //nolint:errcheck
	var wg sync.WaitGroup
	for _, site := range voters {
		if site == p.self {
			continue
		}
		wg.Add(1)
		go func(site model.SiteID) {
			defer wg.Done()
			r.SendDecision(ctx, site, tx, commit) //nolint:errcheck // best-effort
		}(site)
	}
	wg.Wait()
}

// termDeferMax bounds how many resolve attempts a member yields to a
// lower-id initiator before electing anyway. Deferral is liveness-only
// (the ballot order fences everything), so the budget just has to be small
// enough that a preferred initiator dying mid-election cannot block the
// electorate for long.
const termDeferMax = 2

// deferToLowerInitiator implements the election leader preference: when
// concurrent members race to terminate the same transaction, their duelling
// ballots invalidate each other and termination converges only after extra
// rounds. A member that has already PROMISED a termination ballot from a
// lower-id voter knows a preferred initiator is live and mid-election, so
// it sits out a bounded number of its own attempts — the lowest live voter
// initiates first, and the others join its quorum instead of outbidding it.
func (p *Participant) deferToLowerInitiator(tx model.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.states[tx]
	if !ok {
		return false
	}
	if st.ea.N == 0 || st.ea.Site == p.self || st.ea.Site > p.self {
		return false // no promise, or it is ours / from a less-preferred site
	}
	if st.deferred >= termDeferMax {
		return false // preferred initiator stalled: elect anyway
	}
	st.deferred++
	return true
}

// bumpAttempt raises the member's next attempt seed past ballots observed
// during a failed election, so the retry does not collide with them.
func (p *Participant) bumpAttempt(tx model.TxID, seen uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.states[tx]; ok && st.nextN < seen {
		st.nextN = seen
	}
}
