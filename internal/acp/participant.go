package acp

import (
	"context"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Applier installs or discards a decided transaction's effects at a site.
// cc.Manager satisfies this interface.
type Applier interface {
	Commit(tx model.TxID, writes []model.WriteRecord) error
	Abort(tx model.TxID)
}

// Resolver lets a blocked participant query other sites for an outcome.
// The site implements it over the wire layer.
type Resolver interface {
	// QueryDecision asks site for the outcome of tx (a DecisionReq).
	QueryDecision(ctx context.Context, site model.SiteID, tx model.TxID) (known, commit bool, err error)
	// QueryTermState asks a cohort peer for its commit-protocol state.
	QueryTermState(ctx context.Context, site model.SiteID, tx model.TxID) (uint8, error)
}

// Participant is a site's half of the commit protocols: it votes on
// prepares, holds prepared (in-doubt) transactions, applies decisions
// exactly once, serves termination-state queries, and resolves in-doubt
// transactions after coordinator failures. All methods are safe for
// concurrent use.
type Participant struct {
	self model.SiteID
	log  wal.Log
	// gate, when set, is the checkpoint manager's snapshot interlock: every
	// decision's force-write + install runs under its read side, so a fuzzy
	// snapshot (taken under the write side) never captures a decision record
	// as durable without its effects. Set before the site serves traffic;
	// nil means no checkpointing.
	gate *sync.RWMutex

	mu        sync.Mutex
	applier   Applier
	states    map[model.TxID]*ptx
	decisions map[model.TxID]bool
}

type ptx struct {
	state      uint8
	req        wire.PrepareReq
	preparedAt time.Time
}

// NewParticipant builds the participant half for a site. applier is the
// site's CC manager (it installs writes and releases CC state).
func NewParticipant(self model.SiteID, log wal.Log, applier Applier) *Participant {
	return &Participant{
		self:      self,
		log:       log,
		applier:   applier,
		states:    make(map[model.TxID]*ptx),
		decisions: make(map[model.TxID]bool),
	}
}

// SetApplier swaps the applier (site recovery replaces the CC manager).
func (p *Participant) SetApplier(a Applier) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.applier = a
}

// UseGate installs the checkpoint manager's snapshot interlock. Must be
// called before the participant serves traffic.
func (p *Participant) UseGate(g *sync.RWMutex) { p.gate = g }

func (p *Participant) gateRLock() {
	if p.gate != nil {
		p.gate.RLock()
	}
}

func (p *Participant) gateRUnlock() {
	if p.gate != nil {
		p.gate.RUnlock()
	}
}

// HandlePrepare processes phase 1: force the prepared record and vote yes.
// A transaction already decided here votes according to that decision. A
// participant holding no writes votes "read" (presumed-abort read-only
// optimization): it releases its CC state at once, logs nothing, and takes
// no part in phase 2 — it can never become an orphan.
func (p *Participant) HandlePrepare(req wire.PrepareReq) wire.VoteResp {
	p.mu.Lock()
	if commit, ok := p.decisions[req.Tx]; ok {
		p.mu.Unlock()
		return wire.VoteResp{Yes: commit, Reason: "already decided"}
	}
	if _, dup := p.states[req.Tx]; dup {
		p.mu.Unlock()
		return wire.VoteResp{Yes: true, Reason: "already prepared"}
	}
	applier := p.applier
	p.mu.Unlock()

	if len(req.Writes) == 0 && !req.NoReadOnlyOpt {
		if applier != nil {
			applier.Abort(req.Tx) // release read locks / clear nothing-to-install state
		}
		return wire.VoteResp{Yes: true, ReadOnly: true}
	}

	// Force the prepared record before voting yes (the WAL rule that makes
	// the yes-vote binding across crashes). The site's production entry
	// point (votePrepare) holds the checkpoint gate's read side around
	// this whole call, so a live reconfiguration quiescing the pipeline
	// under the gate's write side cannot interleave between the site's
	// prepare guards and this force — the gate is deliberately NOT taken
	// here (it is not reentrant).
	if err := p.log.Append(wal.Record{
		Type:         wal.RecPrepared,
		Tx:           req.Tx,
		TS:           req.TS,
		Coordinator:  req.Coordinator,
		Participants: req.Participants,
		ThreePhase:   req.ThreePhase,
		Writes:       req.Writes,
	}); err != nil {
		return wire.VoteResp{Yes: false, Reason: "log force failed: " + err.Error()}
	}

	p.mu.Lock()
	p.states[req.Tx] = &ptx{state: StatePrepared, req: req, preparedAt: time.Now()}
	p.mu.Unlock()
	return wire.VoteResp{Yes: true}
}

// HandlePreCommit moves a prepared transaction to the 3PC pre-committed
// state. Unknown transactions are acknowledged idempotently.
func (p *Participant) HandlePreCommit(tx model.TxID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.states[tx]; ok && st.state == StatePrepared {
		st.state = StatePreCommitted
	}
}

// HandleDecision applies the final outcome exactly once and acknowledges.
// It is idempotent against duplicate deliveries, and it still applies when
// the outcome was already recorded without application (the coordinator
// records its decision in the table before delivering it to its own
// participant half). The force-write and the install happen under the
// checkpoint gate as one unit.
func (p *Participant) HandleDecision(tx model.TxID, commit bool) error {
	p.gateRLock()
	defer p.gateRUnlock()
	return p.decide(tx, commit, true)
}

// ForceDecision is the coordinator's half of the WAL decision rule: it
// forces the decision record (rec.Type must be RecDecision) and adopts the
// outcome locally — decision table entry plus local apply/release — as one
// unit under the checkpoint gate. Without the atomicity a fuzzy snapshot
// could observe the record durable below its horizon while the local
// install is still pending, and compaction would then strand the write set.
//
// Only the log force can fail the call: once the record is durable the
// decision IS the outcome, so a local install error (a write-set/schema
// mismatch) must not make the protocol report an abort or skip phase 2 —
// the write set stays in the WAL and recovery's version-guarded redo
// repairs the store.
func (p *Participant) ForceDecision(rec wal.Record) error {
	p.gateRLock()
	defer p.gateRUnlock()
	if err := p.log.Append(rec); err != nil {
		return err
	}
	p.decide(rec.Tx, rec.Commit, false) //nolint:errcheck
	return nil
}

// ForceEnd is the coordinator's transaction-complete rule: it appends the
// end record (rec.Type must be RecEnd) and retires the decision-table entry
// as one unit under the checkpoint gate. RecEnd means every cohort member
// acknowledged the decision, so no peer will ever ask for the outcome again
// — keeping the entry would only make every future snapshot mirror a dead
// decision. The gate atomicity gives recovery a clean invariant: a snapshot
// whose horizon is above the end record's LSN no longer carries the
// decision, and one below it retains the record, whose replay retires the
// entry again (RestoreDecisions).
func (p *Participant) ForceEnd(rec wal.Record) error {
	p.gateRLock()
	defer p.gateRUnlock()
	if err := p.log.Append(rec); err != nil {
		return err
	}
	p.Retire(rec.Tx)
	return nil
}

// Retire drops a fully acknowledged transaction from the decision table.
func (p *Participant) Retire(tx model.TxID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.decisions, tx)
}

// decide installs an outcome exactly once. logIt selects whether a decision
// record still needs forcing (false when the caller already forced one).
// Callers hold the checkpoint gate.
func (p *Participant) decide(tx model.TxID, commit bool, logIt bool) error {
	p.mu.Lock()
	st, hasState := p.states[tx]
	_, decided := p.decisions[tx]
	delete(p.states, tx)
	p.decisions[tx] = commit
	applier := p.applier
	p.mu.Unlock()

	if decided && !hasState {
		return nil // true duplicate: already applied (or never prepared here)
	}

	// Log before applying; Store.Apply is version-guarded so replay after a
	// crash between these two steps is idempotent.
	if logIt && !decided {
		if err := p.log.Append(wal.Record{Type: wal.RecDecision, Tx: tx, Commit: commit}); err != nil {
			return err
		}
	}
	if st == nil {
		// Decision for a transaction with no prepared state here (e.g. a
		// retry after completion, or an abort before prepare). Release any
		// CC state just in case.
		if !commit && applier != nil {
			applier.Abort(tx)
		}
		return nil
	}
	if applier == nil {
		return nil
	}
	if commit {
		return applier.Commit(tx, st.req.Writes)
	}
	applier.Abort(tx)
	return nil
}

// HandleTermState reports the transaction's state for cooperative
// termination.
func (p *Participant) HandleTermState(tx model.TxID) uint8 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if commit, ok := p.decisions[tx]; ok {
		if commit {
			return StateCommitted
		}
		return StateAborted
	}
	if st, ok := p.states[tx]; ok {
		return st.state
	}
	return StateNone
}

// Prepared reports whether the participant currently holds in-doubt
// (prepared, undecided) state for tx. Online reconfiguration uses it to
// tell which WAL-recovered in-doubt transactions are already carried in
// memory — those keep their live protocol state (e.g. 3PC pre-committed)
// instead of being reset to freshly-prepared.
func (p *Participant) Prepared(tx model.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.states[tx]
	return ok
}

// InDoubtThreePhase reports whether tx is held in-doubt here under the 3PC
// state machine. Decision serving uses it to suppress presumed abort: a
// 3PC cohort can cooperatively commit without its coordinator, so a
// recovered coordinator must not presume its own in-doubt 3PC transaction
// aborted.
func (p *Participant) InDoubtThreePhase(tx model.TxID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.states[tx]
	return ok && st.req.ThreePhase
}

// Decision reports a locally known outcome (for decision-request serving).
func (p *Participant) Decision(tx model.TxID) (commit, known bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	commit, known = p.decisions[tx]
	return commit, known
}

// RecordDecision notes an already-known outcome in the decision table
// without logging or applying anything. The production coordinator path is
// ForceDecision (which also forces the record and installs locally under
// the checkpoint gate); this remains for protocol-level tests and callers
// that learned an outcome out of band.
func (p *Participant) RecordDecision(tx model.TxID, commit bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.decisions[tx]; !ok {
		p.decisions[tx] = commit
	}
}

// InDoubt lists transactions prepared longer than age ago and still
// undecided — the paper's orphan transactions.
func (p *Participant) InDoubt(age time.Duration) []model.TxID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []model.TxID
	cutoff := time.Now().Add(-age)
	for tx, st := range p.states {
		if st.preparedAt.Before(cutoff) {
			out = append(out, tx)
		}
	}
	return out
}

// InDoubtCount reports the current number of in-doubt transactions.
func (p *Participant) InDoubtCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.states)
}

// Restore re-installs an in-doubt transaction found in the WAL during crash
// recovery. The caller must already have re-protected its write set in the
// CC layer (cc.Manager.Reinstate).
func (p *Participant) Restore(req wire.PrepareReq, threePhase bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	req.ThreePhase = threePhase
	p.states[req.Tx] = &ptx{state: StatePrepared, req: req, preparedAt: time.Now()}
}

// RestoreDecisions rebuilds the decision table from WAL records. An end
// record retires its transaction's entry again — the cohort had fully
// acknowledged, so the decision need not be served after recovery either.
func (p *Participant) RestoreDecisions(recs []wal.Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range recs {
		switch r.Type {
		case wal.RecDecision:
			p.decisions[r.Tx] = r.Commit
		case wal.RecEnd:
			delete(p.decisions, r.Tx)
		}
	}
}

// DecisionCount reports the decision table's current size (a durability
// gauge: retirement keeps it bounded by the in-flight cohort count).
func (p *Participant) DecisionCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.decisions)
}

// SeedDecisions preloads the decision table from a checkpoint snapshot
// (records compacted below the snapshot's horizon live on only there).
// WAL-derived entries win over snapshot entries, so call this before
// RestoreDecisions.
func (p *Participant) SeedDecisions(decs map[model.TxID]bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for tx, commit := range decs {
		if _, ok := p.decisions[tx]; !ok {
			p.decisions[tx] = commit
		}
	}
}

// DecisionTable returns a copy of the decision table; the checkpoint
// manager embeds it in each snapshot.
func (p *Participant) DecisionTable() map[model.TxID]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[model.TxID]bool, len(p.decisions))
	for tx, commit := range p.decisions {
		out[tx] = commit
	}
	return out
}

// Resolve tries to determine the outcome of an in-doubt transaction:
// first by asking the coordinator (decision request; an answering
// coordinator with no record means presumed abort), then — for 3PC — by the
// cooperative termination protocol over the cohort. It returns true when
// the transaction was decided and applied.
func (p *Participant) Resolve(ctx context.Context, r Resolver, tx model.TxID) bool {
	p.mu.Lock()
	st, ok := p.states[tx]
	if !ok {
		p.mu.Unlock()
		return true // already decided
	}
	req := st.req
	threePhase := st.req.ThreePhase
	p.mu.Unlock()

	if known, commit, err := r.QueryDecision(ctx, req.Coordinator, tx); err == nil && known {
		p.HandleDecision(tx, commit) //nolint:errcheck
		return true
	}

	if !threePhase {
		// 2PC: ask the rest of the cohort; any peer may know the outcome.
		for _, peer := range req.Participants {
			if peer == p.self || peer == req.Coordinator {
				continue
			}
			if known, commit, err := r.QueryDecision(ctx, peer, tx); err == nil && known {
				p.HandleDecision(tx, commit) //nolint:errcheck
				return true
			}
		}
		return false // blocked: a 2PC orphan
	}
	return p.terminate3PC(ctx, r, tx, req)
}

// terminate3PC runs the simplified cooperative termination protocol
// (assumes site failures, not partitions — the paper's classroom setting):
//
//   - any cohort member committed/aborted → adopt that outcome;
//   - any member pre-committed → commit (the coordinator may have
//     committed; no member can still be unprepared);
//   - all reachable members merely prepared → abort (the coordinator
//     cannot have committed without a pre-commit round).
func (p *Participant) terminate3PC(ctx context.Context, r Resolver, tx model.TxID, req wire.PrepareReq) bool {
	anyPreCommitted := p.HandleTermState(tx) == StatePreCommitted
	for _, peer := range req.Participants {
		if peer == p.self {
			continue
		}
		state, err := r.QueryTermState(ctx, peer, tx)
		if err != nil {
			continue // unreachable peer: skip (no partitions assumed)
		}
		switch state {
		case StateCommitted:
			p.HandleDecision(tx, true) //nolint:errcheck
			return true
		case StateAborted, StateNone:
			p.HandleDecision(tx, false) //nolint:errcheck
			return true
		case StatePreCommitted:
			anyPreCommitted = true
		}
	}
	p.HandleDecision(tx, anyPreCommitted) //nolint:errcheck
	return true
}
