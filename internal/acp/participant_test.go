package acp

import (
	"testing"

	"repro/internal/model"
	"repro/internal/wal"
)

// TestForceEndRetiresDecision: the coordinator's end record (all cohort
// acknowledgements in) must both append to the log and drop the decision
// from the table, while an unacknowledged decision stays served.
func TestForceEndRetiresDecision(t *testing.T) {
	log := wal.NewMemory()
	p := NewParticipant("S1", log, newApplier())
	acked := model.TxID{Site: "S1", Seq: 1}
	unacked := model.TxID{Site: "S1", Seq: 2}
	if err := p.ForceDecision(wal.Record{Type: wal.RecDecision, Tx: acked, Commit: true}); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceDecision(wal.Record{Type: wal.RecDecision, Tx: unacked, Commit: true}); err != nil {
		t.Fatal(err)
	}
	if p.DecisionCount() != 2 {
		t.Fatalf("decision count = %d, want 2", p.DecisionCount())
	}

	if err := p.ForceEnd(wal.Record{Type: wal.RecEnd, Tx: acked}); err != nil {
		t.Fatal(err)
	}
	// The TABLE entry retires (snapshots stop mirroring it) — but stale
	// queries still get the right answer from the bounded ended window.
	if _, tabled := p.DecisionTable()[acked]; tabled {
		t.Error("fully acknowledged decision not retired from the table")
	}
	if commit, known := p.Decision(acked); !known || !commit {
		t.Error("retired outcome must stay answerable within the ended window")
	}
	if commit, known := p.Decision(unacked); !known || !commit {
		t.Error("unacknowledged decision must survive retirement of others")
	}
	if p.DecisionCount() != 1 {
		t.Errorf("decision count = %d, want 1", p.DecisionCount())
	}
	recs, _ := log.ReadAll()
	if recs[len(recs)-1].Type != wal.RecEnd || recs[len(recs)-1].Tx != acked {
		t.Errorf("end record not appended: last = %+v", recs[len(recs)-1])
	}
}

// TestRestoreDecisionsReplaysRetirement: WAL replay must retire decisions
// whose end record is retained, and keep those without one.
func TestRestoreDecisionsReplaysRetirement(t *testing.T) {
	ended := model.TxID{Site: "S1", Seq: 1}
	open := model.TxID{Site: "S1", Seq: 2}
	p := NewParticipant("S1", wal.NewMemory(), newApplier())
	// Snapshot-seeded entry for the ended transaction: the end record
	// retained above the snapshot horizon must still retire it.
	p.SeedDecisions(map[model.TxID]bool{ended: true})
	p.RestoreDecisions([]wal.Record{
		{Type: wal.RecDecision, Tx: open, Commit: false},
		{Type: wal.RecEnd, Tx: ended},
	})
	if _, tabled := p.DecisionTable()[ended]; tabled {
		t.Error("replayed end record did not retire the decision")
	}
	if commit, known := p.Decision(open); !known || commit {
		t.Error("open decision lost or flipped during replay")
	}
}
