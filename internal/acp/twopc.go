package acp

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/wire"
)

// TwoPC is the classic presumed-abort two-phase commit. The coordinator's
// decision record is the commit point; participants that voted yes and hear
// nothing are blocked (orphan transactions) until the coordinator answers a
// decision request — the blocking behaviour experiment E5 measures.
type TwoPC struct{}

// Name implements Protocol.
func (TwoPC) Name() string { return "2pc" }

// ThreePhase implements Protocol.
func (TwoPC) ThreePhase() bool { return false }

// Commit implements Protocol.
func (TwoPC) Commit(ctx context.Context, c Cohort, log wal.Log, opts Options, req Request, onDecision func(bool)) (bool, error) {
	opts = opts.withDefaults()
	act := trace.FromContext(ctx)
	prep := act.StartSpan(trace.StagePrepare, "2pc votes")
	commit, cohort, voteErr := collectVotes(ctx, c, opts, req, false)
	prep.End()

	dec := act.StartSpan(trace.StageDecide, "2pc decision")
	// Force the decision record — the commit point. Under presumed abort an
	// abort decision need not be forced, but logging it keeps the decision
	// table complete for decision-request serving.
	if err := log.Append(wal.Record{Type: wal.RecDecision, Tx: req.Tx, Commit: commit}); err != nil {
		dec.End()
		return false, fmt.Errorf("acp: 2pc decision log: %w", err)
	}
	if onDecision != nil {
		onDecision(commit)
	}

	allAcked := broadcastDecision(ctx, c, opts, req, cohort, commit)
	dec.End()
	if allAcked {
		// All phase-2 participants acknowledged: no recovery work remains.
		// The end record retires the coordinator's decision entry (via the
		// site's ForceEnd routing), and the end round lets the cohort retire
		// theirs, so checkpoints stop mirroring the dead decision.
		log.Append(wal.Record{Type: wal.RecEnd, Tx: req.Tx}) //nolint:errcheck
		broadcastEnd(ctx, c, opts, req, cohort)
	}

	if commit {
		return true, nil
	}
	if voteErr != nil {
		return false, voteErr
	}
	return false, model.Abortf(model.AbortACP, "2pc: aborted")
}

// collectVotes runs phase 1 concurrently and reports the decision plus the
// phase-2 cohort (participants that voted read-only are released and
// excluded). The returned error classifies a negative outcome (vote no,
// unreachable participant, coordinator cancellation).
func collectVotes(ctx context.Context, c Cohort, opts Options, req Request, threePhase bool) (bool, []model.SiteID, error) {
	type voteResult struct {
		site model.SiteID
		resp wire.VoteResp
		err  error
	}
	results := make(chan voteResult, len(req.Participants))
	for _, site := range req.Participants {
		go func(site model.SiteID) {
			vctx, cancel := context.WithTimeout(ctx, opts.Vote)
			defer cancel()
			var incarnation uint64
			if req.IncarnationFor != nil {
				incarnation = req.IncarnationFor(site)
			}
			resp, err := c.Prepare(vctx, site, wire.PrepareReq{
				Tx:            req.Tx,
				TS:            req.TS,
				Coordinator:   req.Coordinator,
				Writes:        req.WritesFor(site),
				Participants:  req.Participants,
				Voters:        req.Voters,
				ThreePhase:    threePhase,
				NoReadOnlyOpt: req.NoReadOnlyOpt,
				Epoch:         req.Epoch,
				Incarnation:   incarnation,
			})
			results <- voteResult{site: site, resp: resp, err: err}
		}(site)
	}

	commit := true
	var cohort []model.SiteID
	var cause error
	for range req.Participants {
		r := <-results
		switch {
		case r.err != nil:
			commit = false
			cohort = append(cohort, r.site)
			if cause == nil {
				cause = model.Abortf(model.AbortACP, "prepare at %s failed: %v", r.site, r.err)
			}
		case !r.resp.Yes:
			commit = false
			cohort = append(cohort, r.site)
			if cause == nil {
				cause = model.Abortf(model.AbortACP, "%s voted no: %s", r.site, r.resp.Reason)
			}
		case r.resp.ReadOnly:
			// Released at vote time; no phase 2 for this site.
		default:
			cohort = append(cohort, r.site)
		}
	}
	return commit, cohort, cause
}

// broadcastEnd fans the cohort-fully-acknowledged signal out to the
// participants, fire-and-forget: the goroutines detach from the caller's
// context (the transaction is already committed and its context may die
// with it) and each send is bounded by the ack timeout. Losses are
// harmless — see Cohort.End.
func broadcastEnd(ctx context.Context, c Cohort, opts Options, req Request, cohort []model.SiteID) {
	base := context.WithoutCancel(ctx)
	for _, site := range cohort {
		go func(site model.SiteID) {
			ectx, cancel := context.WithTimeout(base, opts.Ack)
			defer cancel()
			c.End(ectx, site, req.Tx) //nolint:errcheck // best-effort
		}(site)
	}
}

// broadcastDecision runs phase 2 concurrently over the voting cohort,
// reporting whether every member acknowledged. Unacknowledged members
// resolve later via decision requests.
func broadcastDecision(ctx context.Context, c Cohort, opts Options, req Request, cohort []model.SiteID, commit bool) bool {
	acked := make(chan bool, len(cohort))
	for _, site := range cohort {
		go func(site model.SiteID) {
			actx, cancel := context.WithTimeout(ctx, opts.Ack)
			defer cancel()
			acked <- c.Decide(actx, site, req.Tx, commit) == nil
		}(site)
	}
	all := true
	for range cohort {
		if !<-acked {
			all = false
		}
	}
	return all
}
