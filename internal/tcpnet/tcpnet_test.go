package tcpnet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wire"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSendReceive(t *testing.T) {
	n := New(nil)
	var got atomic.Int32
	b, err := n.Attach("b", func(env *wire.Envelope) {
		if env.From == "a" && string(env.Payload) == "ping" {
			got.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b", Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 }, "message not delivered over TCP")
}

func TestDynamicAddressResolved(t *testing.T) {
	n := New(map[model.SiteID]string{"x": "127.0.0.1:0"})
	ep, err := n.Attach("x", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	addr, ok := n.Addr("x")
	if !ok || addr == "127.0.0.1:0" {
		t.Errorf("listen address not resolved: %q", addr)
	}
}

func TestRPCOverTCP(t *testing.T) {
	n := New(nil)
	server, err := wire.NewPeer(n, "server", func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		var req wire.ReadCopyReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		return wire.KindReadCopy, &wire.ReadCopyResp{Value: 7, Version: 3}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := wire.NewPeer(n, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var resp wire.ReadCopyResp
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := client.Call(ctx, "server", wire.KindReadCopy, &wire.ReadCopyReq{Item: "x"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Value != 7 || resp.Version != 3 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestConcurrentRPCOverTCP(t *testing.T) {
	n := New(nil)
	server, err := wire.NewPeer(n, "server", func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		var req wire.PreWriteReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		return wire.KindPreWrite, &wire.PreWriteResp{Version: model.Version(req.Value)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := wire.NewPeer(n, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const calls = 32
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			var resp wire.PreWriteResp
			err := client.Call(ctx, "server", wire.KindPreWrite, &wire.PreWriteReq{Value: int64(i)}, &resp)
			if err == nil && resp.Version != model.Version(i) {
				err = context.DeadlineExceeded
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestSendToUnknownAddressFails(t *testing.T) {
	n := New(nil)
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "nowhere"}); err == nil {
		t.Error("send to unknown address should fail")
	}
}

func TestDuplicateAttachFails(t *testing.T) {
	n := New(nil)
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := n.Attach("a", func(*wire.Envelope) {}); err == nil {
		t.Error("duplicate attach should fail")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := New(nil)
	b, err := n.Attach("b", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"}); err == nil {
		t.Error("send after close should fail")
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	n := New(map[model.SiteID]string{})
	var got atomic.Int32
	b, err := n.Attach("b", func(*wire.Envelope) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := n.Addr("b")
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 }, "first message not delivered")

	// Restart b on the same address.
	b.Close()
	n.SetAddr("b", addr)
	b2, err := n.Attach("b", func(*wire.Envelope) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	// The cached connection is stale; Send must retry with a fresh dial.
	waitFor(t, func() bool {
		a.Send(context.Background(), &wire.Envelope{From: "a", To: "b"})
		return got.Load() >= 2
	}, "message not delivered after peer restart")
}
