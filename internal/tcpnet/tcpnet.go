// Package tcpnet implements wire.Network over real TCP connections. It
// supports the paper's multi-host deployment mode: each Rainbow site, the
// name server, and the home-host tooling run as separate processes and
// exchange the same envelopes as on the simulated network.
//
// The send path is flush-coalescing: Send enqueues onto a bounded
// per-connection queue drained by one writer goroutine, which encodes every
// queued envelope into a single buffered write — one syscall carries many
// envelopes, which is what keeps chatty 2PC/3PC rounds and coalesced
// pipeline replies off the per-message write(2) cost. On the wire the
// batch travels as one length-prefixed multi-envelope frame (see frame.go);
// the receive side reads a whole frame in one ReadFull and dispatches the
// decoded envelopes as a slice. Connections fall back to the legacy
// single-envelope gob framing when the peer does not open with the frame
// magic, so old peers interoperate (outbound legacy speak is a knob:
// Options.LegacyFraming).
//
// Message bodies are encoded at flush time with a per-connection negotiated
// codec: each batched direction opens with a wire.KindCodecHello envelope
// right after the frame magic, and once the peer's hello confirms it
// decodes compact binary bodies (wire.Body/codec.go) the writer stops gob-
// encoding them. Peers that never hello — old binaries, or ones pinned by
// the Options.Codec="gob" ablation knob — keep receiving gob, so mixed
// clusters interoperate with zero extra round trips.
//
// Backpressure is by bounded queue: a Send finding the queue full blocks
// briefly (a stall) and then sheds with an error rather than buffering
// unboundedly behind a slow reader — the wire.Endpoint contract is
// explicitly unreliable, and protocol layers already retry on loss.
//
// Addressing uses a shared address book (SiteID → host:port). Attaching a
// node starts a listener on its book address; ":0" addresses are resolved
// on listen and recorded back into the book, which is how single-machine
// tests obtain dynamic ports. In a real deployment the book comes from the
// name-server configuration (the paper's "id and end point specifications").
package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Options tunes the transport's batching behavior. The zero value selects
// the defaults (batched framing on).
type Options struct {
	// LegacyFraming makes outbound connections speak the original
	// single-envelope gob framing with no magic preamble, for clusters with
	// peers that predate multi-envelope frames (their gob decoders would
	// reject the preamble). Inbound legacy traffic is always accepted
	// regardless of this knob. Flush coalescing still applies — a gob
	// stream batches into one write just as well — only the frame format
	// and slice dispatch are lost.
	LegacyFraming bool
	// SendQueue bounds each connection's send queue; <= 0 selects 1024.
	SendQueue int
	// MaxBatch caps the envelopes encoded into one flush; <= 0 selects 128.
	MaxBatch int
	// FlushDelay, when positive, lets the writer wait up to this long for
	// more envelopes before flushing a non-full batch — trading latency for
	// larger batches. Zero flushes as soon as the queue is drained.
	FlushDelay time.Duration
	// SendStall bounds how long a Send blocks on a full queue before
	// shedding the envelope; <= 0 selects 1s.
	SendStall time.Duration
	// Codec selects the body codec offered to peers: "" or "binary" (the
	// default) negotiates the compact binary codec per connection — each
	// batched direction opens with a CodecHello, and bodies upgrade from
	// gob once the peer's hello arrives (a peer that never says hello, i.e.
	// an old binary, keeps the connection on gob). "gob" pins the legacy
	// codec and suppresses the hello — the ablation knob, and the safe
	// setting for clusters still rolling out negotiation-aware binaries.
	Codec string
}

func (o Options) withDefaults() Options {
	if o.SendQueue <= 0 {
		o.SendQueue = 1024
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 128
	}
	if o.SendStall <= 0 {
		o.SendStall = time.Second
	}
	return o
}

// Stats counts transport events; the flushes-vs-envelopes ratio is the
// syscalls-per-operation measurement the batching exists to improve, and
// the binary-vs-gob body split is the negotiated-codec measurement (a
// healthy same-version cluster sends almost everything binary).
type Stats struct {
	SentEnvelopes    uint64 // envelopes handed to the writer goroutines
	SentFlushes      uint64 // buffered-write flushes (≈ write syscalls)
	SentBatches      uint64 // batches encoded (== flushes unless a batch exceeded the buffer)
	SentBytes        uint64 // bytes written to sockets (bytes/flush = SentBytes/SentFlushes)
	MaxSendBatch     uint64 // largest single batch
	SendSheds        uint64 // envelopes shed on a full queue after SendStall
	SendStalls       uint64 // Sends that found their queue full and blocked
	SentBinaryBodies uint64 // bodies encoded with the negotiated binary codec
	SentGobBodies    uint64 // bodies encoded with the gob fallback codec
	RecvEnvelopes    uint64 // envelopes decoded inbound
	RecvFrames       uint64 // multi-envelope frames decoded inbound
	LegacyConns      uint64 // inbound connections negotiated down to gob framing
}

// Net is a TCP-backed wire.Network.
type Net struct {
	opts Options

	mu      sync.Mutex
	book    map[model.SiteID]string
	nodes   map[model.SiteID]*endpoint
	tracers map[model.SiteID]*trace.Tracer

	sentEnvelopes    atomic.Uint64
	sentFlushes      atomic.Uint64
	sentBatches      atomic.Uint64
	sentBytes        atomic.Uint64
	maxSendBatch     atomic.Uint64
	sendSheds        atomic.Uint64
	sendStalls       atomic.Uint64
	sentBinaryBodies atomic.Uint64
	sentGobBodies    atomic.Uint64
	recvEnvelopes    atomic.Uint64
	recvFrames       atomic.Uint64
	legacyConns      atomic.Uint64
}

// binaryBodies reports whether this net offers the binary body codec
// (Options.Codec left at the default).
func (n *Net) binaryBodies() bool { return n.opts.Codec != "gob" }

// New builds a TCP network with the given address book and default options.
// The book may be extended later via SetAddr (e.g. after registering with
// the name server).
func New(book map[model.SiteID]string) *Net {
	return NewWithOptions(book, Options{})
}

// NewWithOptions builds a TCP network with explicit batching options.
func NewWithOptions(book map[model.SiteID]string, opts Options) *Net {
	b := make(map[model.SiteID]string, len(book))
	for k, v := range book {
		b[k] = v
	}
	return &Net{
		opts:    opts.withDefaults(),
		book:    b,
		nodes:   make(map[model.SiteID]*endpoint),
		tracers: make(map[model.SiteID]*trace.Tracer),
	}
}

// RegisterTracer attaches a site's tracer to its endpoint: the transport
// then feeds flush-cycle latencies into the always-on net_flush histogram
// and attaches send-queue spans to in-flight sampled traces. Sites probe
// for this method through the wire.Network interface; transports without it
// (the simulator) simply skip transport stages.
func (n *Net) RegisterTracer(id model.SiteID, t *trace.Tracer) {
	n.mu.Lock()
	n.tracers[id] = t
	ep := n.nodes[id]
	n.mu.Unlock()
	if ep != nil {
		ep.tracer.Store(t)
	}
}

// SetAddr records or updates a node's address.
func (n *Net) SetAddr(id model.SiteID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.book[id] = addr
}

// Addr returns the (possibly listen-resolved) address of a node.
func (n *Net) Addr(id model.SiteID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.book[id]
	return a, ok
}

// NetStats snapshots the transport counters.
func (n *Net) NetStats() Stats {
	return Stats{
		SentEnvelopes:    n.sentEnvelopes.Load(),
		SentFlushes:      n.sentFlushes.Load(),
		SentBatches:      n.sentBatches.Load(),
		SentBytes:        n.sentBytes.Load(),
		MaxSendBatch:     n.maxSendBatch.Load(),
		SendSheds:        n.sendSheds.Load(),
		SendStalls:       n.sendStalls.Load(),
		SentBinaryBodies: n.sentBinaryBodies.Load(),
		SentGobBodies:    n.sentGobBodies.Load(),
		RecvEnvelopes:    n.recvEnvelopes.Load(),
		RecvFrames:       n.recvFrames.Load(),
		LegacyConns:      n.legacyConns.Load(),
	}
}

// Attach implements wire.Network: it starts a listener on the node's book
// address and serves inbound envelope streams.
func (n *Net) Attach(id model.SiteID, h wire.Handler) (wire.Endpoint, error) {
	return n.AttachBatch(id, h, nil)
}

// AttachBatch implements wire.BatchNetwork: bh, when non-nil, receives each
// decoded multi-envelope frame as one slice (legacy connections still
// dispatch per envelope through h).
func (n *Net) AttachBatch(id model.SiteID, h wire.Handler, bh wire.BatchHandler) (wire.Endpoint, error) {
	if h == nil {
		return nil, errors.New("tcpnet: nil handler")
	}
	n.mu.Lock()
	addr, ok := n.book[id]
	if !ok {
		addr = "127.0.0.1:0"
	}
	if _, dup := n.nodes[id]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("tcpnet: %s already attached", id)
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s for %s: %w", addr, id, err)
	}
	ep := &endpoint{
		id:      id,
		net:     n,
		ln:      ln,
		handler: h,
		batch:   bh,
		conns:   make(map[model.SiteID]*outConn),
	}
	n.mu.Lock()
	n.book[id] = ln.Addr().String()
	n.nodes[id] = ep
	if t := n.tracers[id]; t != nil {
		ep.tracer.Store(t)
	}
	n.mu.Unlock()

	go ep.acceptLoop()
	return ep, nil
}

type endpoint struct {
	id      model.SiteID
	net     *Net
	ln      net.Listener
	handler wire.Handler
	batch   wire.BatchHandler
	// tracer, when registered, receives flush-cycle observations and
	// send-queue spans for sampled envelopes leaving this endpoint.
	tracer atomic.Pointer[trace.Tracer]

	mu     sync.Mutex
	conns  map[model.SiteID]*outConn
	closed bool
}

// outConn is one connection's send half: a bounded queue drained by a
// writer goroutine that encodes every drained envelope into one buffered
// write. dialedTo is set on dialed connections (the writer redials once on
// a write failure, mirroring the old send-retry semantics); accepted
// connections cannot be redialed and die on error.
type outConn struct {
	ep       *endpoint
	conn     net.Conn
	batched  bool // multi-envelope framing (vs legacy gob)
	dialedTo model.SiteID

	// peerBinary is set by the read half of this socket when the peer's
	// CodecHello announces it accepts binary bodies; until then (and on old
	// peers, forever) the writer encodes bodies with gob. Reset on redial:
	// the replacement peer may be an old binary. FIFO ordering makes the
	// upgrade safe on the accept side — the dialer's hello precedes its
	// first request, so replies always see peerBinary already set.
	peerBinary atomic.Bool

	sendCh   chan sendItem
	done     chan struct{}
	killOnce sync.Once
	dead     atomic.Bool
}

// sendItem is one queued envelope; enq carries the enqueue instant (unix
// nanos) for sampled envelopes so the writer can close their send-queue
// span after the flush. Zero — the untraced case — costs nothing.
type sendItem struct {
	env *wire.Envelope
	enq int64
}

func (e *endpoint) newOutConn(conn net.Conn, batched bool, dialedTo model.SiteID) *outConn {
	c := &outConn{
		ep:       e,
		conn:     conn,
		batched:  batched,
		dialedTo: dialedTo,
		sendCh:   make(chan sendItem, e.net.opts.SendQueue),
		done:     make(chan struct{}),
	}
	go c.writeLoop()
	return c
}

func (e *endpoint) ID() model.SiteID { return e.id }

func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = make(map[model.SiteID]*outConn)
	e.mu.Unlock()

	for _, c := range conns {
		c.kill()
	}
	e.net.mu.Lock()
	delete(e.net.nodes, e.id)
	e.net.mu.Unlock()
	return e.ln.Close()
}

// kill marks the connection dead and closes the socket; the writer and read
// loops exit on their next operation.
func (c *outConn) kill() {
	c.killOnce.Do(func() {
		c.dead.Store(true)
		close(c.done)
		c.conn.Close()
	})
}

// Send implements wire.Endpoint: it lazily dials env.To and enqueues the
// envelope on the connection's send queue (the writer goroutine delivers
// it, coalesced with its queue neighbors, in one flush). A connection found
// dead is dropped and redialed once.
func (e *endpoint) Send(ctx context.Context, env *wire.Envelope) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("tcpnet: %s detached", e.id)
	}
	c, err := e.conn(ctx, env.To)
	if err != nil {
		return err
	}
	if err := c.enqueue(ctx, env); err != nil {
		if !c.dead.Load() {
			return err // backpressure shed on a live connection
		}
		e.dropConn(env.To, c)
		c, err = e.conn(ctx, env.To)
		if err != nil {
			return err
		}
		if err := c.enqueue(ctx, env); err != nil {
			e.dropConn(env.To, c)
			return fmt.Errorf("tcpnet: send %s→%s: %w", e.id, env.To, err)
		}
	}
	return nil
}

var errConnDead = errors.New("tcpnet: connection dead")

// enqueue puts env on the send queue: non-blocking first, then a bounded
// stall, then shed. The bounded queue plus bounded stall is what makes a
// slow reader shed load instead of deadlocking or buffering unboundedly.
func (c *outConn) enqueue(ctx context.Context, env *wire.Envelope) error {
	if c.dead.Load() {
		return errConnDead
	}
	item := sendItem{env: env}
	if env.Trace != 0 && c.ep.tracer.Load() != nil {
		item.enq = time.Now().UnixNano()
	}
	select {
	case c.sendCh <- item:
		c.ep.net.sentEnvelopes.Add(1)
		return nil
	default:
	}
	c.ep.net.sendStalls.Add(1)
	stall := time.NewTimer(c.ep.net.opts.SendStall)
	defer stall.Stop()
	select {
	case c.sendCh <- item:
		c.ep.net.sentEnvelopes.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-stall.C:
		c.ep.net.sendSheds.Add(1)
		return fmt.Errorf("tcpnet: send queue to %s full, envelope shed", env.To)
	}
}

// writeLoop is the connection's writer goroutine: block for the first
// queued envelope, drain greedily up to the batch cap (optionally waiting
// FlushDelay for stragglers), encode the whole batch, flush once.
func (c *outConn) writeLoop() {
	opts := c.ep.net.opts
	var (
		flushes countingWriter
		bw      *bufio.Writer
		enc     *gob.Encoder // legacy framing only
		scratch []byte       // frame-encode scratch, reused across flushes
		bodyTmp []byte       // body-encode scratch, reused across envelopes
	)
	rebind := func() {
		flushes = countingWriter{w: c.conn}
		bw = bufio.NewWriterSize(&flushes, 64<<10)
		enc = gob.NewEncoder(bw)
	}
	rebind()
	if c.batched {
		if err := c.writePreamble(c.conn); err != nil {
			c.kill()
			return
		}
	}
	items := make([]sendItem, 0, opts.MaxBatch)
	batch := make([]*wire.Envelope, 0, opts.MaxBatch)
	for {
		var item sendItem
		select {
		case item = <-c.sendCh:
		case <-c.done:
			return
		}
		items = append(items[:0], item)
	drain:
		for len(items) < opts.MaxBatch {
			select {
			case next := <-c.sendCh:
				items = append(items, next)
			default:
				if opts.FlushDelay <= 0 || len(items) >= opts.MaxBatch {
					break drain
				}
				t := time.NewTimer(opts.FlushDelay)
				select {
				case next := <-c.sendCh:
					t.Stop()
					items = append(items, next)
				case <-t.C:
					break drain
				}
			}
		}
		batch = batch[:0]
		for _, it := range items {
			batch = append(batch, it.env)
		}
		tracer := c.ep.tracer.Load()
		var flushStart time.Time
		if tracer != nil {
			flushStart = time.Now()
		}
		if err := c.writeBatch(bw, enc, &scratch, &bodyTmp, batch); err != nil {
			if !c.redial() {
				c.kill()
				return
			}
			rebind()
			if c.writeBatch(bw, enc, &scratch, &bodyTmp, batch) != nil {
				c.kill()
				return
			}
		}
		n := c.ep.net
		n.sentBatches.Add(1)
		n.sentFlushes.Add(flushes.take())
		n.sentBytes.Add(flushes.takeBytes())
		if l := uint64(len(items)); l > n.maxSendBatch.Load() {
			n.maxSendBatch.Store(l)
		}
		if tracer != nil {
			c.observeFlush(tracer, flushStart, items)
		}
	}
}

// observeFlush records one flush cycle: the always-on net_flush histogram,
// and a net_queue span (enqueue → flushed) attached to each sampled
// envelope's in-flight trace.
func (c *outConn) observeFlush(tracer *trace.Tracer, flushStart time.Time, items []sendItem) {
	end := time.Now()
	tracer.Observe(trace.StageNetFlush, end.Sub(flushStart))
	for _, it := range items {
		if it.enq == 0 {
			continue
		}
		start := time.Unix(0, it.enq)
		tracer.Lookup(trace.ID(it.env.Trace)).
			Record(trace.StageNetQueue, start, end.Sub(start), string(it.env.To)+" "+it.env.Kind.String())
	}
}

// writeBatch encodes one drained batch and flushes it. The body codec is
// picked per flush: binary once this net offers it and the peer's hello
// confirmed it, gob otherwise (legacy connections are gob by definition —
// their whole-envelope streams predate the codec field).
func (c *outConn) writeBatch(bw *bufio.Writer, enc *gob.Encoder, scratch, bodyTmp *[]byte, batch []*wire.Envelope) error {
	n := c.ep.net
	if c.batched {
		codec := wire.CodecGob
		if n.binaryBodies() && c.peerBinary.Load() {
			codec = wire.CodecBinary
		}
		frame, nbin, ngob := appendFrame((*scratch)[:0], batch, codec, bodyTmp)
		*scratch = frame
		n.sentBinaryBodies.Add(nbin)
		n.sentGobBodies.Add(ngob)
		if _, err := bw.Write(*scratch); err != nil {
			return err
		}
	} else {
		for _, env := range batch {
			// Whole-envelope gob streams carry gob payloads only: flatten
			// the typed body (and transcode any pre-flattened binary
			// payload) so old decoders see the historical byte stream.
			if err := env.Flatten(wire.CodecGob); err != nil {
				continue // encode error: drop the envelope (message loss)
			}
			if env.Codec == wire.CodecBinary && env.Reencode(wire.CodecGob) != nil {
				continue
			}
			n.sentGobBodies.Add(1)
			if err := enc.Encode(env); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writePreamble opens one batched connection direction: the frame magic,
// then — unless the codec knob pins gob — a single-envelope CodecHello
// frame announcing that this side accepts binary bodies. Old peers consume
// the hello as an unknown-kind cast and drop it; the sender keeps encoding
// gob toward them because their side never hellos back.
func (c *outConn) writePreamble(w io.Writer) error {
	buf := append([]byte(nil), frameMagic[:]...)
	if c.ep.net.binaryBodies() {
		hello := &wire.Envelope{
			From: c.ep.id, To: c.dialedTo, Kind: wire.KindCodecHello,
			Body: &wire.HelloBody{Codec: wire.CodecBinary},
		}
		var tmp []byte
		buf, _, _ = appendFrame(buf, []*wire.Envelope{hello}, wire.CodecBinary, &tmp)
	}
	_, err := w.Write(buf)
	return err
}

// redial replaces a failed dialed connection in place: the old socket is
// closed, a fresh one dialed, its read loop started, and the registered
// route updated if it still points here. Accepted connections (no dial
// address) and detached endpoints return false.
func (c *outConn) redial() bool {
	if c.dialedTo == "" || c.dead.Load() {
		return false
	}
	addr, ok := c.ep.net.Addr(c.dialedTo)
	if !ok {
		return false
	}
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return false
	}
	c.ep.mu.Lock()
	if c.ep.closed || c.dead.Load() || c.ep.conns[c.dialedTo] != c {
		c.ep.mu.Unlock()
		conn.Close()
		return false
	}
	old := c.conn
	c.conn = conn
	c.ep.mu.Unlock()
	old.Close()
	// The replacement peer may be an older binary: negotiation restarts
	// from gob and upgrades again when (if) its hello arrives.
	c.peerBinary.Store(false)
	if c.batched {
		if err := c.writePreamble(conn); err != nil {
			return false
		}
	}
	go c.ep.readLoop(c, c.dialedTo)
	return true
}

// countingWriter counts the writes that reach the socket (≈ syscalls) and
// the bytes they carry (bytes/flush is a NetStats-derived metric).
type countingWriter struct {
	w      io.Writer
	writes uint64
	bytes  uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	n, err := c.w.Write(p)
	c.bytes += uint64(n)
	return n, err
}

func (c *countingWriter) take() uint64 {
	n := c.writes
	c.writes = 0
	return n
}

func (c *countingWriter) takeBytes() uint64 {
	n := c.bytes
	c.bytes = 0
	return n
}

// hasHello reports whether a decoded frame carries a CodecHello. In
// practice hellos travel alone in the first frame of a direction, so this
// is one kind comparison per envelope on the hot path.
func hasHello(envs []*wire.Envelope) bool {
	for _, env := range envs {
		if env.Kind == wire.KindCodecHello && !env.Reply {
			return true
		}
	}
	return false
}

// takeHellos applies and strips the CodecHello envelopes of one frame,
// upgrading the paired out half when the peer accepts binary bodies.
func (c *outConn) takeHellos(envs []*wire.Envelope) []*wire.Envelope {
	kept := envs[:0]
	for _, env := range envs {
		if env.Kind != wire.KindCodecHello || env.Reply {
			kept = append(kept, env)
			continue
		}
		var hello wire.HelloBody
		if err := (wire.Payload{Codec: env.Codec, Bytes: env.Payload}).Decode(&hello); err == nil && hello.Codec == wire.CodecBinary {
			c.peerBinary.Store(true)
		}
	}
	return kept
}

// conn returns the cached connection to `to`, dialing one if needed.
func (e *endpoint) conn(ctx context.Context, to model.SiteID) (*outConn, error) {
	e.mu.Lock()
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	addr, ok := e.net.Addr(to)
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for %s", to)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %s (%s): %w", to, addr, err)
	}
	c := e.newOutConn(conn, !e.net.opts.LegacyFraming, to)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.kill()
		return nil, fmt.Errorf("tcpnet: %s detached", e.id)
	}
	if existing, ok := e.conns[to]; ok {
		e.mu.Unlock()
		c.kill()
		return existing, nil
	}
	e.conns[to] = c
	e.mu.Unlock()
	// Dialed connections are bidirectional: replies (and any traffic the
	// peer routes back on this socket) must be read too.
	go e.readLoop(c, to)
	return c, nil
}

func (e *endpoint) dropConn(to model.SiteID, c *outConn) {
	e.mu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	c.kill()
}

func (e *endpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// The out half's framing is decided by the handshake the read loop
		// performs: a peer that opened with the frame magic speaks batched
		// framing, so we reply in kind; anything else gets legacy gob.
		go e.serveAccepted(conn)
	}
}

// serveAccepted sniffs the peer's framing and runs the read loop. The
// outConn for the reply direction is created after the sniff so its writer
// speaks what the peer understands.
func (e *endpoint) serveAccepted(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	batched, err := sniffMagic(br)
	if err != nil {
		conn.Close()
		return
	}
	if !batched {
		e.net.legacyConns.Add(1)
	}
	oc := e.newOutConn(conn, batched, "")
	e.readConn(oc, br, "", batched)
}

// sniffMagic peeks the first eight bytes of a connection: the frame magic
// selects batched framing (and is consumed); anything else is the start of
// a legacy gob stream (left unconsumed).
func sniffMagic(br *bufio.Reader) (bool, error) {
	head, err := br.Peek(len(frameMagic))
	if err != nil {
		return false, err
	}
	if !bytes.Equal(head, frameMagic[:]) {
		return false, nil
	}
	br.Discard(len(frameMagic))
	return true, nil
}

// readLoop serves one dialed connection's inbound half: sniff the framing
// the peer chose for its direction (an old acceptor replies raw gob even
// when we dialed batched), then decode until the connection dies.
func (e *endpoint) readLoop(oc *outConn, from model.SiteID) {
	br := bufio.NewReaderSize(oc.conn, 64<<10)
	batched, err := sniffMagic(br)
	if err != nil {
		oc.conn.Close()
		return
	}
	e.readConn(oc, br, from, batched)
}

// readConn decodes one connection's inbound stream. Every connection is
// bidirectional: it is registered as the outbound route to whatever peer
// sends on it ("newest route wins"), so replies travel back on the
// connection the request arrived on — which keeps working across peer
// restarts where a previously cached dialed connection would be silently
// stale. from names the peer the connection was dialed to (empty for
// accepted connections; learned from traffic).
func (e *endpoint) readConn(oc *outConn, br *bufio.Reader, from model.SiteID, batched bool) {
	conn := oc.conn
	defer func() {
		e.mu.Lock()
		// A redial swapped in a fresh socket: this loop's exit concerns the
		// old one only, and the outConn (with its writer) lives on.
		stale := oc.conn != conn
		if from != "" && e.conns[from] == oc && !stale {
			delete(e.conns, from)
		}
		e.mu.Unlock()
		conn.Close()
		if !stale {
			// The write half has no reason to outlive the read half: without
			// this an accepted connection's idle writer (blocked on its send
			// queue, never registered in conns) leaks past endpoint Close.
			oc.kill()
		}
	}()

	var (
		dec      *gob.Decoder
		frameBuf []byte
	)
	if !batched {
		dec = gob.NewDecoder(br)
	}
	for {
		var envs []*wire.Envelope
		if batched {
			var hdr [4]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return
			}
			n := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
			if n < 4 || n > maxFrameBytes {
				return // torn or garbage frame length: drop the connection
			}
			if uint32(cap(frameBuf)) < n {
				frameBuf = make([]byte, n)
			}
			frameBuf = frameBuf[:n]
			if _, err := io.ReadFull(br, frameBuf); err != nil {
				return // torn frame: the sender re-sends on a fresh connection
			}
			decoded, err := decodeFrame(frameBuf)
			if err != nil {
				return
			}
			envs = decoded
			e.net.recvFrames.Add(1)
		} else {
			var env wire.Envelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			envs = []*wire.Envelope{&env}
		}
		e.net.recvEnvelopes.Add(uint64(len(envs)))
		if f := envs[0].From; f != "" && f != from {
			e.mu.Lock()
			e.conns[f] = oc
			e.mu.Unlock()
			from = f
		}
		if hasHello(envs) {
			// CodecHello is transport-internal: it upgrades this socket's
			// out half to binary bodies (the peer announced it decodes
			// them) and never reaches the handler. It rides the normal
			// envelope stream so route learning above still applies.
			envs = oc.takeHellos(envs)
			if len(envs) == 0 {
				continue
			}
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		if e.batch != nil && len(envs) > 1 {
			e.batch(envs)
			continue
		}
		for _, env := range envs {
			e.handler(env)
		}
	}
}
