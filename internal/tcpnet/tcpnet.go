// Package tcpnet implements wire.Network over real TCP connections with
// gob framing. It supports the paper's multi-host deployment mode: each
// Rainbow site, the name server, and the home-host tooling run as separate
// processes and exchange the same envelopes as on the simulated network.
//
// Addressing uses a shared address book (SiteID → host:port). Attaching a
// node starts a listener on its book address; ":0" addresses are resolved
// on listen and recorded back into the book, which is how single-machine
// tests obtain dynamic ports. In a real deployment the book comes from the
// name-server configuration (the paper's "id and end point specifications").
package tcpnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/model"
	"repro/internal/wire"
)

// Net is a TCP-backed wire.Network.
type Net struct {
	mu    sync.Mutex
	book  map[model.SiteID]string
	nodes map[model.SiteID]*endpoint
}

// New builds a TCP network with the given address book. The book may be
// extended later via SetAddr (e.g. after registering with the name server).
func New(book map[model.SiteID]string) *Net {
	b := make(map[model.SiteID]string, len(book))
	for k, v := range book {
		b[k] = v
	}
	return &Net{book: b, nodes: make(map[model.SiteID]*endpoint)}
}

// SetAddr records or updates a node's address.
func (n *Net) SetAddr(id model.SiteID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.book[id] = addr
}

// Addr returns the (possibly listen-resolved) address of a node.
func (n *Net) Addr(id model.SiteID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.book[id]
	return a, ok
}

// Attach implements wire.Network: it starts a listener on the node's book
// address and serves inbound envelope streams.
func (n *Net) Attach(id model.SiteID, h wire.Handler) (wire.Endpoint, error) {
	if h == nil {
		return nil, errors.New("tcpnet: nil handler")
	}
	n.mu.Lock()
	addr, ok := n.book[id]
	if !ok {
		addr = "127.0.0.1:0"
	}
	if _, dup := n.nodes[id]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("tcpnet: %s already attached", id)
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s for %s: %w", addr, id, err)
	}
	ep := &endpoint{
		id:      id,
		net:     n,
		ln:      ln,
		handler: h,
		conns:   make(map[model.SiteID]*outConn),
	}
	n.mu.Lock()
	n.book[id] = ln.Addr().String()
	n.nodes[id] = ep
	n.mu.Unlock()

	go ep.acceptLoop()
	return ep, nil
}

type endpoint struct {
	id      model.SiteID
	net     *Net
	ln      net.Listener
	handler wire.Handler

	mu     sync.Mutex
	conns  map[model.SiteID]*outConn
	closed bool
}

type outConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

func (e *endpoint) ID() model.SiteID { return e.id }

func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = make(map[model.SiteID]*outConn)
	e.mu.Unlock()

	for _, c := range conns {
		c.conn.Close()
	}
	e.net.mu.Lock()
	delete(e.net.nodes, e.id)
	e.net.mu.Unlock()
	return e.ln.Close()
}

// Send implements wire.Endpoint: it lazily dials env.To and gob-encodes the
// envelope on a cached connection. A stale connection is retried once.
func (e *endpoint) Send(ctx context.Context, env *wire.Envelope) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("tcpnet: %s detached", e.id)
	}
	c, err := e.conn(ctx, env.To)
	if err != nil {
		return err
	}
	if err := c.send(env); err != nil {
		e.dropConn(env.To, c)
		c, err = e.conn(ctx, env.To)
		if err != nil {
			return err
		}
		if err := c.send(env); err != nil {
			e.dropConn(env.To, c)
			return fmt.Errorf("tcpnet: send %s→%s: %w", e.id, env.To, err)
		}
	}
	return nil
}

func (c *outConn) send(env *wire.Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(env)
}

func (e *endpoint) conn(ctx context.Context, to model.SiteID) (*outConn, error) {
	e.mu.Lock()
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	addr, ok := e.net.Addr(to)
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for %s", to)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %s (%s): %w", to, addr, err)
	}
	c := &outConn{conn: conn, enc: gob.NewEncoder(conn)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("tcpnet: %s detached", e.id)
	}
	if existing, ok := e.conns[to]; ok {
		e.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	e.conns[to] = c
	e.mu.Unlock()
	// Dialed connections are bidirectional: replies (and any traffic the
	// peer routes back on this socket) must be read too.
	go e.readLoop(c, to)
	return c, nil
}

func (e *endpoint) dropConn(to model.SiteID, c *outConn) {
	e.mu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	c.conn.Close()
}

func (e *endpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(&outConn{conn: conn, enc: gob.NewEncoder(conn)}, "")
	}
}

// readLoop serves one connection (accepted or dialed). Every connection is
// bidirectional: it is registered as the outbound route to whatever peer
// sends on it ("newest route wins"), so replies travel back on the
// connection the request arrived on — which keeps working across peer
// restarts where a previously cached dialed connection would be silently
// stale. from names the peer the connection was dialed to (empty for
// accepted connections; learned from traffic).
func (e *endpoint) readLoop(oc *outConn, from model.SiteID) {
	defer func() {
		e.mu.Lock()
		if from != "" && e.conns[from] == oc {
			delete(e.conns, from)
		}
		e.mu.Unlock()
		oc.conn.Close()
	}()
	dec := gob.NewDecoder(oc.conn)
	for {
		var env wire.Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if env.From != "" && env.From != from {
			e.mu.Lock()
			e.conns[env.From] = oc
			e.mu.Unlock()
			from = env.From
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		e.handler(&env)
	}
}
