package tcpnet

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestFrameRoundTrip exercises the multi-envelope frame codec: every field
// combination (empty/large payloads, reply flags, zero correlations) must
// survive encode → decode bit-exactly.
func TestFrameRoundTrip(t *testing.T) {
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = byte(i)
	}
	in := []*wire.Envelope{
		{From: "a", To: "b", Kind: wire.KindPing, Corr: 1, Payload: []byte("x")},
		{From: "b", To: "a", Kind: wire.KindReadCopy, Corr: 42, Reply: true, Payload: big},
		{From: "site-with-long-name", To: "Z", Kind: wire.KindDecision, Corr: 0, Payload: nil},
		{From: "", To: "", Kind: 0, Corr: 1<<64 - 1, Reply: true, Payload: []byte{}},
	}
	var tmp []byte
	buf, _, _ := appendFrame(nil, in, wire.CodecGob, &tmp)
	out, err := decodeFrame(buf[4:]) // skip the frameLen prefix ReadFull consumes
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d envelopes, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.From != b.From || a.To != b.To || a.Kind != b.Kind || a.Corr != b.Corr || a.Reply != b.Reply {
			t.Errorf("envelope %d header mismatch: %+v vs %+v", i, a, b)
		}
		if string(a.Payload) != string(b.Payload) {
			t.Errorf("envelope %d payload mismatch (%d vs %d bytes)", i, len(a.Payload), len(b.Payload))
		}
	}
}

// TestFrameDecodeRejectsCorruption feeds truncations and corruptions of a
// valid frame to the decoder; every one must error, never panic or succeed.
func TestFrameDecodeRejectsCorruption(t *testing.T) {
	var tmp []byte
	buf, _, _ := appendFrame(nil, []*wire.Envelope{
		{From: "a", To: "b", Kind: wire.KindPing, Corr: 7, Payload: []byte("payload")},
		{From: "b", To: "a", Kind: wire.KindVote, Corr: 8, Payload: []byte("more")},
	}, wire.CodecGob, &tmp)
	body := buf[4:]
	for cut := 0; cut < len(body); cut++ {
		if _, err := decodeFrame(body[:cut]); err == nil {
			t.Errorf("truncation at %d decoded successfully", cut)
		}
	}
	if _, err := decodeFrame(append(append([]byte{}, body...), 0xEE)); err == nil {
		t.Error("trailing garbage decoded successfully")
	}
}

// TestMultiEnvelopeFrames drives enough traffic through one connection that
// the writer coalesces multiple envelopes per flush, and verifies (a) the
// receiver's batch handler sees multi-envelope slices and (b) the flush
// count stays well below the envelope count — the syscalls-per-op win.
func TestMultiEnvelopeFrames(t *testing.T) {
	n := NewWithOptions(nil, Options{FlushDelay: 20 * time.Millisecond})
	var envs, frames, maxFrame atomic.Int64
	b, err := n.AttachBatch("b", func(env *wire.Envelope) {
		envs.Add(1)
	}, func(batch []*wire.Envelope) {
		envs.Add(int64(len(batch)))
		frames.Add(1)
		if l := int64(len(batch)); l > maxFrame.Load() {
			maxFrame.Store(l)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const total = 64
	for i := 0; i < total; i++ {
		env := &wire.Envelope{From: "a", To: "b", Kind: wire.KindPing, Corr: uint64(i + 1)}
		if err := a.Send(context.Background(), env); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return envs.Load() == total }, "not all envelopes delivered")
	if maxFrame.Load() < 2 {
		t.Errorf("no multi-envelope frame dispatched (max %d)", maxFrame.Load())
	}
	st := n.NetStats()
	if st.SentFlushes >= st.SentEnvelopes {
		t.Errorf("no send coalescing: %d flushes for %d envelopes", st.SentFlushes, st.SentEnvelopes)
	}
	if st.MaxSendBatch < 2 {
		t.Errorf("MaxSendBatch = %d, want >= 2", st.MaxSendBatch)
	}
}

// TestLegacyFramingInterop runs an RPC round trip between a legacy-framing
// net (no magic, plain gob stream — a peer predating multi-envelope frames)
// and a current one, in both directions.
func TestLegacyFramingInterop(t *testing.T) {
	oldNet := NewWithOptions(nil, Options{LegacyFraming: true})
	newNet := New(nil)

	oldPeer, err := wire.NewPeer(oldNet, "old", func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		return wire.KindOK, &wire.OKBody{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oldPeer.Close()
	newPeer, err := wire.NewPeer(newNet, "new", func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		return wire.KindOK, &wire.OKBody{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer newPeer.Close()

	// The two Nets are separate processes in spirit: exchange addresses.
	oldAddr, _ := oldNet.Addr("old")
	newAddr, _ := newNet.Addr("new")
	oldNet.SetAddr("new", newAddr)
	newNet.SetAddr("old", oldAddr)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	// old → new: the acceptor must sniff the missing magic and fall back.
	if err := oldPeer.Call(ctx, "new", wire.KindPing, &wire.OKBody{}, nil); err != nil {
		t.Fatalf("legacy → batched call: %v", err)
	}
	// new → old: the dialer must speak legacy (knob) and parse a gob reply.
	if err := newPeer.Call(ctx, "old", wire.KindPing, &wire.OKBody{}, nil); err != nil {
		t.Fatalf("batched → legacy call: %v", err)
	}
	if st := newNet.NetStats(); st.LegacyConns == 0 {
		t.Error("batched net accepted a legacy connection but counted none")
	}
}

// TestTornFrameDropsConnection opens raw connections that die mid-frame (a
// crashed peer, a cut network) and verifies the receiver tears them down
// without hanging a read loop or disturbing healthy peers.
func TestTornFrameDropsConnection(t *testing.T) {
	n := New(nil)
	var got atomic.Int32
	b, err := n.Attach("b", func(*wire.Envelope) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr, _ := n.Addr("b")

	// Torn mid-body: promise 1000 bytes, deliver 10, hang up.
	torn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	torn.Write(frameMagic[:])
	torn.Write([]byte{0xE8, 0x03, 0x00, 0x00}) // frameLen = 1000
	torn.Write(make([]byte, 10))
	torn.Close()

	// Garbage length prefix: must be rejected before any huge allocation.
	garbage, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	garbage.Write(frameMagic[:])
	garbage.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	garbage.Close()

	// A healthy peer still gets through afterwards.
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b", Kind: wire.KindPing}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 }, "healthy peer starved after torn frames")
}

// TestReconnectResendsCurrentBatch kills the established connection under
// the sender and verifies the writer's redial-once path re-delivers without
// the caller seeing an error — the batched-framing equivalent of the old
// per-send retry. (The batch being re-sent may duplicate envelopes already
// flushed; the wire contract is at-most-once per send attempt with retry
// above, so duplicates are tolerated and only delivery is asserted.)
func TestReconnectResendsCurrentBatch(t *testing.T) {
	n := New(nil)
	var got atomic.Int32
	b, err := n.Attach("b", func(*wire.Envelope) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := n.Addr("b")
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b", Kind: wire.KindPing}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() >= 1 }, "first message not delivered")

	// Restart b: the sender's cached connection is now stale, and the next
	// write hits a dead socket mid-stream.
	b.Close()
	n.SetAddr("b", addr)
	b2, err := n.Attach("b", func(*wire.Envelope) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	waitFor(t, func() bool {
		a.Send(context.Background(), &wire.Envelope{From: "a", To: "b", Kind: wire.KindPing}) //nolint:errcheck
		return got.Load() >= 2
	}, "message not delivered after restart under batched framing")
}

// TestSlowReaderBackpressure points a flood at a receiver whose handler
// never returns. The bounded send queue plus bounded stall must convert the
// overload into shed errors — never an unbounded buffer, never a deadlock.
func TestSlowReaderBackpressure(t *testing.T) {
	n := NewWithOptions(nil, Options{SendQueue: 2, SendStall: 30 * time.Millisecond})
	block := make(chan struct{})
	b, err := n.Attach("b", func(*wire.Envelope) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	defer close(block)
	a, err := n.Attach("a", func(*wire.Envelope) {})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Large payloads fill the kernel socket buffers fast, so the writer
	// goroutine wedges in Write and the send queue backs up.
	payload := make([]byte, 256<<10)
	var shed error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		err := a.Send(context.Background(), &wire.Envelope{From: "a", To: "b", Kind: wire.KindPing, Payload: payload})
		if err != nil {
			shed = err
			break
		}
	}
	if shed == nil {
		t.Fatal("flooding a blocked reader never shed a send")
	}
	if st := n.NetStats(); st.SendSheds == 0 {
		t.Error("shed error returned but SendSheds == 0")
	}
}

// TestBatchedRPCStress hammers one server with concurrent calls under
// batched framing (run with -race to exercise the frame codec, the writer
// goroutines and the batch reply dispatch together).
func TestBatchedRPCStress(t *testing.T) {
	n := New(nil)
	server, err := wire.NewPeer(n, "server", func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		var req wire.PreWriteReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		return wire.KindPreWrite, &wire.PreWriteResp{Version: model.Version(req.Value)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	const clients, calls = 4, 64
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			client, err := wire.NewPeer(n, model.SiteID(fmt.Sprintf("client-%d", c)), nil)
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			for i := 0; i < calls; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				var resp wire.PreWriteResp
				err := client.Call(ctx, "server", wire.KindPreWrite, &wire.PreWriteReq{Value: int64(i)}, &resp)
				cancel()
				if err != nil {
					errCh <- fmt.Errorf("client %d call %d: %w", c, i, err)
					return
				}
				if resp.Version != model.Version(i) {
					errCh <- fmt.Errorf("client %d call %d: version %d", c, i, resp.Version)
					return
				}
			}
			errCh <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// codecEchoServe is a ReadCopy echo handler for the negotiation tests: the
// reply carries the request's sequence number back, so a codec mismatch
// that corrupted a body would surface as a wrong value, not just an error.
func codecEchoServe(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
	var req wire.ReadCopyReq
	if err := pay.Decode(&req); err != nil {
		return 0, nil, err
	}
	return wire.KindReadCopy, &wire.ReadCopyResp{Value: int64(req.Tx.Seq), Version: 1}, nil
}

// TestCodecNegotiationUpgradesToBinary connects two current nets and
// verifies the CodecHello handshake settles both directions on the compact
// binary codec: after a burst of RPCs each way, both sides must have sent
// binary-encoded bodies (only the dialer's pre-hello requests may ride the
// gob fallback).
func TestCodecNegotiationUpgradesToBinary(t *testing.T) {
	aNet, bNet := New(nil), New(nil)
	aPeer, err := wire.NewPeer(aNet, "A", codecEchoServe)
	if err != nil {
		t.Fatal(err)
	}
	defer aPeer.Close()
	bPeer, err := wire.NewPeer(bNet, "B", codecEchoServe)
	if err != nil {
		t.Fatal(err)
	}
	defer bPeer.Close()
	aAddr, _ := aNet.Addr("A")
	bAddr, _ := bNet.Addr("B")
	aNet.SetAddr("B", bAddr)
	bNet.SetAddr("A", aAddr)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 1; i <= 8; i++ {
		resp, err := wire.Call[wire.ReadCopyResp](ctx, aPeer, "B", wire.KindReadCopy,
			&wire.ReadCopyReq{Tx: model.TxID{Site: "A", Seq: uint64(i)}})
		if err != nil || resp.Value != int64(i) {
			t.Fatalf("A→B call %d: value=%v err=%v", i, resp, err)
		}
		resp, err = wire.Call[wire.ReadCopyResp](ctx, bPeer, "A", wire.KindReadCopy,
			&wire.ReadCopyReq{Tx: model.TxID{Site: "B", Seq: uint64(i)}})
		if err != nil || resp.Value != int64(i) {
			t.Fatalf("B→A call %d: value=%v err=%v", i, resp, err)
		}
	}
	if st := aNet.NetStats(); st.SentBinaryBodies == 0 {
		t.Errorf("A sent no binary bodies after negotiation: %+v", st)
	}
	if st := bNet.NetStats(); st.SentBinaryBodies == 0 {
		t.Errorf("B sent no binary bodies after negotiation: %+v", st)
	}
}

// TestCodecGobPinnedPeerInterop runs a mixed cluster: one peer pins the
// gob codec (the net_codec=gob ablation — stands in for an old binary that
// predates the CodecHello), the other negotiates. Both directions must land
// on gob — the pinned side never offers binary, so the negotiating side
// must never send a binary body at it — and every RPC must still round-trip
// correct values.
func TestCodecGobPinnedPeerInterop(t *testing.T) {
	gobNet := NewWithOptions(nil, Options{Codec: "gob"})
	binNet := New(nil)
	gobPeer, err := wire.NewPeer(gobNet, "old", codecEchoServe)
	if err != nil {
		t.Fatal(err)
	}
	defer gobPeer.Close()
	binPeer, err := wire.NewPeer(binNet, "new", codecEchoServe)
	if err != nil {
		t.Fatal(err)
	}
	defer binPeer.Close()
	gobAddr, _ := gobNet.Addr("old")
	binAddr, _ := binNet.Addr("new")
	gobNet.SetAddr("new", binAddr)
	binNet.SetAddr("old", gobAddr)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 1; i <= 8; i++ {
		resp, err := wire.Call[wire.ReadCopyResp](ctx, gobPeer, "new", wire.KindReadCopy,
			&wire.ReadCopyReq{Tx: model.TxID{Site: "old", Seq: uint64(i)}})
		if err != nil || resp.Value != int64(i) {
			t.Fatalf("gob→binary call %d: value=%v err=%v", i, resp, err)
		}
		resp, err = wire.Call[wire.ReadCopyResp](ctx, binPeer, "old", wire.KindReadCopy,
			&wire.ReadCopyReq{Tx: model.TxID{Site: "new", Seq: uint64(i)}})
		if err != nil || resp.Value != int64(i) {
			t.Fatalf("binary→gob call %d: value=%v err=%v", i, resp, err)
		}
	}
	if st := gobNet.NetStats(); st.SentBinaryBodies != 0 || st.SentGobBodies == 0 {
		t.Errorf("gob-pinned peer codec counters: %+v", st)
	}
	if st := binNet.NetStats(); st.SentBinaryBodies != 0 {
		t.Errorf("negotiating peer sent binary bodies at a gob-pinned peer: %+v", st)
	}
	if st := binNet.NetStats(); st.SentGobBodies == 0 {
		t.Errorf("negotiating peer sent no gob bodies: %+v", st)
	}
}
