package tcpnet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/model"
	"repro/internal/wire"
)

// Batched framing. A connection direction that speaks it starts with the
// 8-byte magic preamble, then carries a stream of length-prefixed
// multi-envelope frames:
//
//	[u32 frameLen][u32 count][count × ([u32 envLen][envLen bytes])]
//
// frameLen counts everything after the frameLen field itself, so a receiver
// reads one length, then the whole frame in one ReadFull, then slices the
// envelopes out of the buffer with no further syscalls. Envelopes use a
// compact ad-hoc binary encoding (below) rather than gob: inside a frame
// each envelope must be independently decodable from its own bytes, and a
// fresh gob stream per envelope would resend type definitions every time.
//
// The magic is absent on legacy connections, which carry the original
// self-delimiting gob stream of single envelopes; receivers sniff the first
// eight bytes to tell the two apart, so old peers interoperate (see
// Options.LegacyFraming for the outbound half).
//
// Each envelope's body payload is either gob (the default every peer
// decodes) or the compact binary codec, signalled per envelope by flag
// bit 2 and enabled per connection by codec negotiation (the CodecHello
// preamble envelope — see tcpnet.go and wire/codec.go).

// frameMagic opens every batched connection direction. It must not be a
// plausible gob stream prefix: gob messages start with a small uvarint
// length, so a first byte >= 0x80 (multi-byte uvarint of absurd size,
// rejected by gob) cannot be confused with legacy traffic.
var frameMagic = [8]byte{0xFB, 'b', 'w', 'F', 'r', 'm', '0', '1'}

// maxFrameBytes bounds one frame (a garbage length prefix would otherwise
// drive huge allocations); maxFrameEnvelopes bounds the envelope count.
const (
	maxFrameBytes     = 64 << 20
	maxFrameEnvelopes = 1 << 16
)

// appendEnvelope serializes env onto buf: uvarint-length-prefixed From, To
// and payload, uvarint Kind and Corr, and a flags byte (bit 0 = Reply,
// bit 1 = a uvarint trace ID follows, bit 2 = the payload is binary-codec
// encoded rather than gob). Untraced envelopes — the common case — spend
// only the flag bit. payload is the encoded body (env.Payload for
// pre-flattened envelopes); binaryBody selects flag bit 2. Pre-negotiation
// receivers ignore unknown flag bits, which is what makes the codec flag
// safe to send only after the peer's hello.
func appendEnvelope(buf []byte, env *wire.Envelope, payload []byte, binaryBody bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(env.From)))
	buf = append(buf, env.From...)
	buf = binary.AppendUvarint(buf, uint64(len(env.To)))
	buf = append(buf, env.To...)
	buf = binary.AppendUvarint(buf, uint64(env.Kind))
	buf = binary.AppendUvarint(buf, env.Corr)
	var flags byte
	if env.Reply {
		flags |= 1
	}
	if env.Trace != 0 {
		flags |= 2
	}
	if binaryBody {
		flags |= 4
	}
	buf = append(buf, flags)
	if env.Trace != 0 {
		buf = binary.AppendUvarint(buf, env.Trace)
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

// decodeEnvelope parses one envelope from its frame slot. The payload is
// copied out of the frame buffer (the buffer is reused across frames while
// handlers may retain the envelope).
func decodeEnvelope(b []byte) (*wire.Envelope, error) {
	env := &wire.Envelope{}
	readStr := func() (string, error) {
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < n {
			return "", fmt.Errorf("tcpnet: truncated envelope")
		}
		s := string(b[sz : sz+int(n)])
		b = b[sz+int(n):]
		return s, nil
	}
	readUvarint := func() (uint64, error) {
		v, sz := binary.Uvarint(b)
		if sz <= 0 {
			return 0, fmt.Errorf("tcpnet: truncated envelope")
		}
		b = b[sz:]
		return v, nil
	}
	from, err := readStr()
	if err != nil {
		return nil, err
	}
	to, err := readStr()
	if err != nil {
		return nil, err
	}
	kind, err := readUvarint()
	if err != nil {
		return nil, err
	}
	corr, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("tcpnet: truncated envelope")
	}
	flags := b[0]
	b = b[1:]
	var traceID uint64
	if flags&2 != 0 {
		traceID, err = readUvarint()
		if err != nil {
			return nil, err
		}
	}
	plen, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < plen {
		return nil, fmt.Errorf("tcpnet: truncated envelope payload")
	}
	env.From = model.SiteID(from)
	env.To = model.SiteID(to)
	env.Kind = wire.MsgKind(kind)
	env.Corr = corr
	env.Reply = flags&1 != 0
	env.Trace = traceID
	if flags&4 != 0 {
		env.Codec = wire.CodecBinary
	}
	if plen > 0 {
		env.Payload = append([]byte(nil), b[sz:sz+int(plen)]...)
	}
	return env, nil
}

// appendFrame frames a batch of envelopes onto buf, encoding each typed
// body with codec (bodies already flattened ride as-is; a binary payload
// bound for a gob connection is transcoded through the body registry). tmp
// is the writer goroutine's reusable body-encode scratch, so the flush path
// allocates neither frame nor body buffers in steady state. nbin/ngob count
// the body encodings used, feeding the negotiated-codec stats.
func appendFrame(buf []byte, batch []*wire.Envelope, codec wire.CodecID, tmp *[]byte) (out []byte, nbin, ngob uint64) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // frameLen placeholder
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batch)))
	for _, env := range batch {
		payload := env.Payload
		binaryBody := env.Codec == wire.CodecBinary
		if env.Body != nil {
			if codec == wire.CodecBinary {
				*tmp = env.Body.AppendTo((*tmp)[:0])
				payload, binaryBody = *tmp, true
			} else {
				// Gob fallback. An encode error is unreachable for the
				// registered body types; an empty payload (the receiver's
				// decode then fails) degrades to message loss, which the
				// unreliable-network contract allows.
				payload, _ = wire.Marshal(env.Body)
				binaryBody = false
			}
		} else if binaryBody && codec != wire.CodecBinary {
			// Pre-flattened binary payload bound for a gob peer: transcode
			// through the registry (same loss semantics on failure).
			if env.Reencode(wire.CodecGob) == nil {
				payload, binaryBody = env.Payload, false
			}
		}
		if binaryBody {
			nbin++
		} else {
			ngob++
		}
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0) // envLen placeholder
		buf = appendEnvelope(buf, env, payload, binaryBody)
		binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf, nbin, ngob
}

// decodeFrame parses the body of one frame (everything after the frameLen
// prefix) into envelopes.
func decodeFrame(b []byte) ([]*wire.Envelope, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("tcpnet: truncated frame header")
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if count == 0 || count > maxFrameEnvelopes {
		return nil, fmt.Errorf("tcpnet: bad frame envelope count %d", count)
	}
	envs := make([]*wire.Envelope, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("tcpnet: truncated frame")
		}
		n := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < n {
			return nil, fmt.Errorf("tcpnet: truncated frame")
		}
		env, err := decodeEnvelope(b[:n])
		if err != nil {
			return nil, err
		}
		envs = append(envs, env)
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("tcpnet: %d trailing bytes in frame", len(b))
	}
	return envs, nil
}
