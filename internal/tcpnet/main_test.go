package tcpnet

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the suite if any transport goroutine (acceptor, reader,
// coalescing sender) outlives the tests — every one is owned by a Close.
func TestMain(m *testing.M) { testutil.VerifyMain(m) }
