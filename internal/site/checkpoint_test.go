package site

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/simnet"
	"repro/internal/wal"
	"repro/internal/wire"
)

// TestSiteCheckpointBoundsRecovery is the acceptance scenario end to end on
// a live cluster (in-memory WAL, as under the simulator): after checkpoints
// the retained log shrinks, and a crash/recover cycle replays strictly
// fewer records than were ever appended while preserving committed state.
func TestSiteCheckpointBoundsRecovery(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	a := c.sites["A"]
	ctx := context.Background()

	write := func(val int64) {
		out := a.Execute(ctx, []model.Op{model.Write("x", val)})
		if !out.Committed {
			t.Fatalf("write did not commit: %+v", out)
		}
	}
	for v := int64(1); v <= 20; v++ {
		write(v)
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for v := int64(21); v <= 40; v++ {
		write(v)
	}
	ml := a.log.(*wal.MemoryLog)
	sizeBefore := ml.SizeBytes()
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := ml.SizeBytes(); after >= sizeBefore {
		t.Errorf("retained WAL did not shrink across checkpoint: %d -> %d", sizeBefore, after)
	}
	cs := a.CheckpointStats()
	if cs.Checkpoints != 2 || cs.SegmentsCompacted == 0 {
		t.Fatalf("checkpoint stats = %+v", cs)
	}

	_, appended := ml.BatchStats() // cumulative records ever appended
	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	stats := a.Stats()
	if stats.RecoveryRecords >= appended {
		t.Errorf("recovery replayed %d records, want strictly fewer than the %d appended", stats.RecoveryRecords, appended)
	}
	if stats.RecoveryRecords == 0 {
		t.Error("recovery replayed nothing; the tail after the horizon must replay")
	}

	out := a.Execute(ctx, []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 40 {
		t.Fatalf("post-recovery read = %+v, want x=40", out)
	}
	// The recovered site keeps processing and checkpointing.
	write(41)
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestSiteInDoubtSurvivesCheckpointAndCompaction: a participant holding a
// Prepared-but-undecided transaction checkpoints twice (compacting
// everything else below the horizon), crashes and recovers — the in-doubt
// transaction must still surface for termination, and its write set must
// still be installable when the decision finally arrives.
func TestSiteInDoubtSurvivesCheckpointAndCompaction(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	ctx := context.Background()

	// An in-doubt transaction from an unreachable coordinator "Z": prepared
	// here, never decided, resolver cannot learn an outcome.
	orphan := model.TxID{Site: "Z", Seq: 77}
	vote := a.part.HandlePrepare(wire.PrepareReq{
		Tx:           orphan,
		TS:           model.Timestamp{Time: 1, Site: "Z"},
		Coordinator:  "Z",
		Participants: []model.SiteID{"A", "Z"},
		Writes:       []model.WriteRecord{{Item: "z", Value: 777, Version: 100}},
	})
	if !vote.Yes {
		t.Fatalf("prepare rejected: %+v", vote)
	}

	for v := int64(1); v <= 15; v++ {
		if out := a.Execute(ctx, []model.Op{model.Write("x", v)}); !out.Committed {
			t.Fatalf("write did not commit: %+v", out)
		}
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for v := int64(16); v <= 30; v++ {
		if out := a.Execute(ctx, []model.Op{model.Write("x", v)}); !out.Committed {
			t.Fatalf("write did not commit: %+v", out)
		}
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if cs := a.CheckpointStats(); cs.SegmentsCompacted == 0 {
		t.Fatal("nothing compacted; the test would be vacuous")
	}

	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if n := a.InDoubtCount(); n != 1 {
		t.Fatalf("in-doubt after recovery = %d, want 1", n)
	}
	// The write set survived compaction with the pinned Prepared record:
	// delivering the decision installs it.
	if err := a.part.HandleDecision(orphan, true); err != nil {
		t.Fatal(err)
	}
	if c, ok := a.Store().Get("z"); !ok || c.Value != 777 {
		t.Fatalf("late decision install = %+v, want 777", c)
	}
	if n := a.InDoubtCount(); n != 0 {
		t.Errorf("in-doubt after decision = %d, want 0", n)
	}
}

// TestSiteIntervalCheckpointTrigger exercises the automatic trigger loop.
func TestSiteIntervalCheckpointTrigger(t *testing.T) {
	net := simnet.New(simnet.Config{})
	cat := schema.NewCatalog()
	cat.Sites["A"] = schema.SiteInfo{ID: "A"}
	cat.ReplicateEverywhere("x", 0)
	st, err := New(Config{
		ID: "A", Net: net, Catalog: cat,
		Checkpoint: schema.CheckpointPolicy{Interval: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if out := st.Execute(context.Background(), []model.Op{model.Write("x", 9)}); !out.Committed {
		t.Fatalf("write did not commit: %+v", out)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st.CheckpointStats().Checkpoints >= 1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("interval trigger never checkpointed: %+v", st.CheckpointStats())
}

// TestSiteRecoverySkipsSnapshotDecidedTx is the regression test for a
// subtle recovery bug: transaction T's Prepared record survives compaction
// only because it shares a retained segment with a genuine orphan's pin,
// while T's Decision record was compacted away — so from the retained
// records alone T looks in-doubt. The snapshot's decision table knows the
// outcome; recovery must NOT re-lock T's write set.
//
// Sparse rewriting (record-granular pinning) makes this layout impossible
// for binary segments — a rewrite sheds decided transactions' records — but
// legacy JSON-lines segments are kept whole when pinned, so logs from the
// pre-segment era can still present it. The test builds exactly that: both
// Prepared records pre-seeded in a legacy segment.
func TestSiteRecoverySkipsSnapshotDecidedTx(t *testing.T) {
	dir := t.TempDir()
	orphan := model.TxID{Site: "Z", Seq: 1}
	decided := model.TxID{Site: "Z", Seq: 2}

	// A legacy (headerless JSON-lines) segment holding the two Prepared
	// records; compaction keeps it whole as long as the orphan pins it.
	fl, err := wal.OpenFile(filepath.Join(dir, "00000000000000000000.seg"), false)
	if err != nil {
		t.Fatal(err)
	}
	seeded := []struct {
		tx   model.TxID
		item model.ItemID
		val  int64
	}{{orphan, "y", 111}, {decided, "z", 555}}
	for _, sr := range seeded {
		if err := fl.Append(wal.Record{
			Type: wal.RecPrepared, Tx: sr.tx,
			TS:          model.Timestamp{Time: sr.tx.Seq, Site: "Z"},
			Coordinator: "Z", Participants: []model.SiteID{"A", "Z"},
			Writes: []model.WriteRecord{{Item: sr.item, Value: sr.val, Version: 50}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	// Tiny segments so the Decision record's binary segment seals (and
	// compacts) quickly.
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.New(simnet.Config{})
	cat := schema.NewCatalog()
	cat.Sites["A"] = schema.SiteInfo{ID: "A"}
	cat.ReplicateEverywhere("x", 0)
	cat.ReplicateEverywhere("y", 0)
	cat.ReplicateEverywhere("z", 0)
	// New replays the log: both transactions come back in-doubt.
	st, err := New(Config{ID: "A", Net: net, Catalog: cat, Log: l})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()

	if n := st.InDoubtCount(); n != 2 {
		t.Fatalf("in-doubt after seeded open = %d, want 2", n)
	}
	if err := st.part.HandleDecision(decided, true); err != nil {
		t.Fatal(err)
	}

	for v := int64(1); v <= 12; v++ {
		if out := st.Execute(ctx, []model.Op{model.Write("x", v)}); !out.Committed {
			t.Fatalf("write: %+v", out)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for v := int64(13); v <= 24; v++ {
		if out := st.Execute(ctx, []model.Op{model.Write("x", v)}); !out.Committed {
			t.Fatalf("write: %+v", out)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Precondition for a non-vacuous test: the decided transaction's
	// Prepared record is retained (whole-kept legacy segment, pinned by the
	// orphan) but its Decision record was compacted away.
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sawPrep, sawDec := false, false
	for _, r := range recs {
		if r.Tx == decided {
			switch r.Type {
			case wal.RecPrepared:
				sawPrep = true
			case wal.RecDecision:
				sawDec = true
			}
		}
	}
	if !sawPrep || sawDec {
		t.Fatalf("layout precondition failed: prepared retained=%v decision retained=%v (tune SegmentBytes)", sawPrep, sawDec)
	}

	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	// Only the genuine orphan is in doubt; the snapshot-decided transaction
	// must not have been re-locked (a write to z would otherwise block on
	// its reinstated exclusive lock until the resolver clears it).
	if n := st.InDoubtCount(); n != 1 {
		t.Fatalf("in-doubt after recovery = %d, want 1 (the orphan only)", n)
	}
	if c, _ := st.Store().Get("z"); c.Value != 555 {
		t.Fatalf("decided transaction's effect lost: z = %+v, want 555", c)
	}
}

// TestSiteDeltaCheckpointsAndRecovery drives a site through an incremental
// (delta) checkpoint chain and a crash/recover cycle: deltas are recorded,
// the composed chain recovers the committed state, and the recovered site
// keeps checkpointing.
func TestSiteDeltaCheckpointsAndRecovery(t *testing.T) {
	net := simnet.New(simnet.Config{})
	cat := schema.NewCatalog()
	cat.Sites["A"] = schema.SiteInfo{ID: "A"}
	cat.ReplicateEverywhere("x", 0)
	cat.ReplicateEverywhere("y", 0)
	st, err := New(Config{
		ID: "A", Net: net, Catalog: cat,
		Checkpoint: schema.CheckpointPolicy{DeltaMax: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx := context.Background()

	write := func(item model.ItemID, val int64) {
		t.Helper()
		if out := st.Execute(ctx, []model.Op{model.Write(item, val)}); !out.Committed {
			t.Fatalf("write did not commit: %+v", out)
		}
	}
	for v := int64(1); v <= 10; v++ {
		write("x", v)
	}
	if err := st.Checkpoint(); err != nil { // full
		t.Fatal(err)
	}
	for v := int64(11); v <= 20; v++ {
		write("x", v)
	}
	write("y", 5)
	if err := st.Checkpoint(); err != nil { // delta
		t.Fatal(err)
	}
	cs := st.CheckpointStats()
	if cs.Checkpoints != 2 || cs.Deltas != 1 {
		t.Fatalf("checkpoint stats = %+v, want 2 checkpoints / 1 delta", cs)
	}
	if cs.LastPause <= 0 || cs.LastDirtyShards <= 0 {
		t.Errorf("pause/dirty gauges not recorded: %+v", cs)
	}

	st.Crash()
	if err := st.Recover(); err != nil {
		t.Fatal(err)
	}
	out := st.Execute(ctx, []model.Op{model.Read("x"), model.Read("y")})
	if !out.Committed || out.Reads["x"] != 20 || out.Reads["y"] != 5 {
		t.Fatalf("post-recovery reads = %+v, want x=20 y=5", out)
	}
	// The recovered site's first checkpoint restarts the chain with a full
	// snapshot (the manager's epoch bookkeeping is rebuilt).
	write("x", 21)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if cs := st.CheckpointStats(); cs.Deltas != 0 {
		t.Errorf("first post-recovery checkpoint must be full: %+v", cs)
	}
}

// TestSiteDecisionRetirementEndToEnd: a committed transaction whose cohort
// fully acknowledged (RecEnd) stops appearing in the decision table and in
// new snapshots, and stays retired across recovery; a decision without an
// end record survives both.
func TestSiteDecisionRetirementEndToEnd(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	ctx := context.Background()

	// A normally committed transaction: decision + RecEnd on the
	// coordinator; the table must not retain it.
	if out := a.Execute(ctx, []model.Op{model.Write("x", 7)}); !out.Committed {
		t.Fatalf("write did not commit: %+v", out)
	}
	if n := a.part.DecisionCount(); n != 0 {
		t.Fatalf("decision table after fully acked commit = %d entries, want 0 (retired)", n)
	}
	// The end broadcast reaches the rest of the cohort too (best-effort
	// cast over the simulated network): participant B's entry retires.
	bPart := c.sites["B"].part
	deadline := time.Now().Add(2 * time.Second)
	for bPart.DecisionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("participant decision table never retired: %d entries", bPart.DecisionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An unacknowledged decision (delivered from a peer coordinator, no end
	// record): must stay.
	open := model.TxID{Site: "Z", Seq: 1}
	if err := a.part.HandleDecision(open, false); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if commit, known := a.part.Decision(open); !known || commit {
		t.Error("unacknowledged decision lost across checkpoint+recovery")
	}
	if n := a.part.DecisionCount(); n != 1 {
		t.Errorf("decision table after recovery = %d entries, want only the open one", n)
	}
}

// TestSiteCatalogTriggerSurvivesLocalCaptureKnobs guards the policy merge:
// a site with only capture knobs set locally (rainbow-site's
// -checkpoint-delta-max default, no local trigger) must still arm the
// catalog's automatic trigger rather than silently dropping it.
func TestSiteCatalogTriggerSurvivesLocalCaptureKnobs(t *testing.T) {
	net := simnet.New(simnet.Config{})
	cat := schema.NewCatalog()
	cat.Sites["A"] = schema.SiteInfo{ID: "A"}
	cat.ReplicateEverywhere("x", 0)
	cat.Checkpoint = schema.CheckpointPolicy{Interval: 30 * time.Millisecond}
	st, err := New(Config{
		ID: "A", Net: net, Catalog: cat,
		Checkpoint: schema.CheckpointPolicy{DeltaMax: 8}, // no local trigger
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if out := st.Execute(context.Background(), []model.Op{model.Write("x", 9)}); !out.Committed {
		t.Fatalf("write did not commit: %+v", out)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if st.CheckpointStats().Checkpoints >= 1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("catalog interval trigger dropped by local capture knobs: %+v", st.CheckpointStats())
}
