package site

import (
	"context"
	"fmt"
	"time"

	"repro/internal/acp"
	"repro/internal/model"
	"repro/internal/rcp"
	"repro/internal/wire"
)

// Execute runs a one-shot transaction with this site as its home site,
// exactly as the paper describes (§2.1): the dedicated goroutine invokes
// the RCP for each operation in order, then the home site runs the atomic
// commit protocol over every touched site. It is Begin + ops + Commit over
// the interactive Txn API.
func (s *Site) Execute(ctx context.Context, ops []model.Op) model.Outcome {
	t, err := s.Begin(ctx)
	if err != nil {
		return model.Outcome{Committed: false, Cause: model.AbortClient, HomeSite: s.id}
	}
	for _, op := range ops {
		switch op.Kind {
		case model.OpRead:
			_, err = t.Read(op.Item)
		case model.OpWrite:
			err = t.Write(op.Item, op.Value)
		default:
			err = model.Abortf(model.AbortClient, "invalid op kind %d", op.Kind)
			t.doomed = err
		}
		if err != nil {
			return t.Abort()
		}
	}
	return t.Commit()
}

// classify maps an execution error onto the paper's abort-cause taxonomy.
func classify(err error) model.AbortCause {
	switch c := model.CauseOf(err); c {
	case model.AbortNone:
		return model.AbortClient
	case model.AbortClient:
		// Context timeouts during RCP ops count as replication-level
		// failures (copies unreachable).
		if err == context.DeadlineExceeded || err == context.Canceled {
			return model.AbortRCP
		}
		return model.AbortClient
	default:
		return c
	}
}

// releaseEverywhere discards CC state for an aborted-before-commit
// transaction at every touched site, plus any stray attempted sites where
// a timed-out operation may have succeeded late (KindReleaseTx).
func (s *Site) releaseEverywhere(sess *rcp.Session) {
	for _, site := range append(sess.Participants(), sess.Strays()...) {
		s.releaseAt(site, sess.Tx)
	}
}

// releaseStrays sends releases to attempted-but-unenlisted sites only.
func (s *Site) releaseStrays(sess *rcp.Session) {
	for _, site := range sess.Strays() {
		s.releaseAt(site, sess.Tx)
	}
}

// releaseAt releases one site's CC state for an aborted transaction. The
// local path aborts directly; the remote path acknowledges and retries in
// the background — a release silently lost to a partition or a paused link
// would otherwise strand the remote intent (and its locks) forever, since
// an unprepared transaction has no WAL trace for any recovery path to
// clean up. Attempts are bounded, and the retry loop rides lifeCtx, NOT
// the incarnation's runCtx: a simulated crash must not drop the pending
// releases of already-aborted transactions (the fabric enforces fail-stop
// by discarding a paused site's sends; retries flush after resume). Close
// cancels lifeCtx, so no goroutine outlives the site object.
func (s *Site) releaseAt(site model.SiteID, tx model.TxID) {
	if site == s.id {
		s.mu.Lock()
		ccm := s.ccm
		s.mu.Unlock()
		ccm.Abort(tx)
		return
	}
	life := s.lifeCtx
	go func() {
		for attempt := 0; attempt < 5; attempt++ {
			ctx, cancel := context.WithTimeout(life, time.Second)
			err := s.peer.Call(ctx, site, wire.KindReleaseTx, wire.ReleaseTxReq{Tx: tx}, nil)
			cancel()
			if err == nil || life.Err() != nil {
				return
			}
			select {
			case <-life.Done():
				return
			case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
			}
		}
	}()
}

// mergeContexts returns a context cancelled when either input is.
func mergeContexts(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// ---- rcp.CopyAccess implementation ----

// Local implements rcp.CopyAccess.
func (s *Site) Local() model.SiteID { return s.id }

// ReadCopy implements rcp.CopyAccess: a local fast path through the site's
// own CCP, or a ReadCopy RPC to the remote site.
func (s *Site) ReadCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, error) {
	if site == s.id {
		s.mu.Lock()
		ccm := s.ccm
		s.mu.Unlock()
		v, ver, err := ccm.Read(ctx, tx, ts, item)
		if err == nil {
			s.hist.Record(tx, model.OpRead, item, v, ver)
		}
		return v, ver, err
	}
	var resp wire.ReadCopyResp
	actx, cancel := s.attemptCtx(ctx)
	defer cancel()
	err := s.peer.Call(actx, site, wire.KindReadCopy, wire.ReadCopyReq{Tx: tx, TS: ts, Item: item}, &resp)
	s.stats.AddRoundTrips(1)
	if err != nil {
		return 0, 0, err
	}
	s.clock.Witness(model.Timestamp{Time: resp.Clock, Site: site})
	return resp.Value, resp.Version, nil
}

// attemptCtx bounds one remote copy-operation attempt so a silent site does
// not consume the whole operation budget.
func (s *Site) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	s.mu.Lock()
	op := s.timeouts.Op
	s.mu.Unlock()
	return context.WithTimeout(ctx, op)
}

// PreWriteCopy implements rcp.CopyAccess.
func (s *Site) PreWriteCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, error) {
	if site == s.id {
		s.mu.Lock()
		ccm := s.ccm
		s.mu.Unlock()
		return ccm.PreWrite(ctx, tx, ts, item, value)
	}
	var resp wire.PreWriteResp
	actx, cancel := s.attemptCtx(ctx)
	defer cancel()
	err := s.peer.Call(actx, site, wire.KindPreWrite, wire.PreWriteReq{Tx: tx, TS: ts, Item: item, Value: value}, &resp)
	s.stats.AddRoundTrips(1)
	if err != nil {
		return 0, err
	}
	s.clock.Witness(model.Timestamp{Time: resp.Clock, Site: site})
	return resp.Version, nil
}

// ---- acp.Cohort implementation ----

// Prepare implements acp.Cohort.
func (s *Site) Prepare(ctx context.Context, site model.SiteID, req wire.PrepareReq) (wire.VoteResp, error) {
	if site == s.id {
		return s.votePrepare(req), nil
	}
	var resp wire.VoteResp
	err := s.peer.Call(ctx, site, wire.KindPrepare, req, &resp)
	s.stats.AddRoundTrips(1)
	return resp, err
}

// votePrepare validates phase 1 before handing it to the participant. Two
// guards close the lost-protection window between pre-write and prepare:
//
//   - the epoch fence: a transaction begun under an epoch older than this
//     site's last live rebuild votes no (Site.fence);
//   - intent validation: the CC manager must still buffer a pre-write
//     intent for every item in the shipped write set. A crash recovery (or
//     a reconfiguration racing the fence) discards intents along with their
//     lock protection; preparing such a transaction could let two
//     conflicting writers install the same version with different values.
//
// Both guards are skipped for transactions the participant already tracks
// (duplicate prepares, recovered in-doubt state, recorded decisions) —
// those are the participant's own idempotency paths.
//
// The guards and the participant's force-write run as ONE unit under the
// site gate's read side: a live rebuild takes the gate's write side, so it
// either completes before the guards read the (new) fence and CC manager,
// or waits until the prepare has fully forced and registered — it can
// never interleave between a passed check and the force, which would let
// an unprotected prepare slip into the new stack.
func (s *Site) votePrepare(req wire.PrepareReq) wire.VoteResp {
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	fence := s.fence
	part := s.part
	ccm := s.ccm
	s.mu.Unlock()
	if known := part.Prepared(req.Tx); !known {
		if _, decided := part.Decision(req.Tx); !decided {
			if req.Epoch < fence {
				return wire.VoteResp{Yes: false, Reason: fmt.Sprintf("epoch fence: transaction epoch %d < rebuild epoch %d", req.Epoch, fence)}
			}
			if len(req.Writes) > 0 {
				items := make([]model.ItemID, len(req.Writes))
				for i, w := range req.Writes {
					items[i] = w.Item
				}
				if !ccm.HoldsIntents(req.Tx, items) {
					return wire.VoteResp{Yes: false, Reason: "pre-write intents lost (crash or reconfiguration between pre-write and prepare)"}
				}
			}
		}
	}
	return part.HandlePrepare(req)
}

// PreCommit implements acp.Cohort.
func (s *Site) PreCommit(ctx context.Context, site model.SiteID, tx model.TxID) error {
	if site == s.id {
		s.mu.Lock()
		part := s.part
		s.mu.Unlock()
		part.HandlePreCommit(tx)
		return nil
	}
	err := s.peer.Call(ctx, site, wire.KindPreCommit, wire.PreCommitReq{Tx: tx}, nil)
	s.stats.AddRoundTrips(1)
	return err
}

// Decide implements acp.Cohort.
func (s *Site) Decide(ctx context.Context, site model.SiteID, tx model.TxID, commit bool) error {
	if site == s.id {
		s.mu.Lock()
		part := s.part
		s.mu.Unlock()
		return part.HandleDecision(tx, commit)
	}
	err := s.peer.Call(ctx, site, wire.KindDecision, wire.DecisionMsg{Tx: tx, Commit: commit}, nil)
	s.stats.AddRoundTrips(1)
	return err
}

// End implements acp.Cohort: the cohort-fully-acknowledged notification.
// Fire-and-forget (Cast, no response awaited) — the participant retires its
// decision-table entry on receipt; a lost message only leaves the entry
// lingering until the site restarts without it.
func (s *Site) End(ctx context.Context, site model.SiteID, tx model.TxID) error {
	if site == s.id {
		s.mu.Lock()
		part := s.part
		s.mu.Unlock()
		part.Retire(tx)
		return nil
	}
	return s.peer.Cast(ctx, site, wire.KindEndTx, wire.EndTxMsg{Tx: tx})
}

// ---- acp.Resolver implementation ----

// QueryDecision implements acp.Resolver.
func (s *Site) QueryDecision(ctx context.Context, site model.SiteID, tx model.TxID) (bool, bool, error) {
	if site == s.id {
		commit, known := s.localDecision(tx)
		return known, commit, nil
	}
	var resp wire.DecisionResp
	err := s.peer.Call(ctx, site, wire.KindDecisionReq, wire.DecisionReq{Tx: tx}, &resp)
	s.stats.AddRoundTrips(1)
	if err != nil {
		return false, false, err
	}
	return resp.Known, resp.Commit, nil
}

// QueryTermState implements acp.Resolver.
func (s *Site) QueryTermState(ctx context.Context, site model.SiteID, tx model.TxID) (uint8, error) {
	if site == s.id {
		s.mu.Lock()
		part := s.part
		s.mu.Unlock()
		return part.HandleTermState(tx), nil
	}
	var resp wire.TermStateResp
	err := s.peer.Call(ctx, site, wire.KindTermState, wire.TermStateReq{Tx: tx}, &resp)
	s.stats.AddRoundTrips(1)
	if err != nil {
		return acp.StateNone, err
	}
	return resp.State, nil
}

// localDecision answers a decision request against local knowledge,
// implementing presumed abort for transactions this site coordinated: if we
// coordinated tx, it is not currently active, and no decision is logged,
// the transaction must have aborted (a commit is always logged before being
// announced).
//
// Presumed abort is NOT sound for a 3PC transaction this site still holds
// in-doubt: 3PC's cooperative termination can commit a transaction without
// its crashed coordinator's participation, so a recovered coordinator that
// presumed abort while a pre-committed cohort terminated to commit would
// split the decision. Such a transaction answers "unknown" instead, and
// the coordinator's own resolver learns the outcome through the same
// cooperative termination as everyone else.
func (s *Site) localDecision(tx model.TxID) (commit, known bool) {
	s.mu.Lock()
	part := s.part
	active := s.activeCoord[tx]
	s.mu.Unlock()
	if c, ok := part.Decision(tx); ok {
		return c, true
	}
	if active {
		return false, false // still deciding: caller must wait
	}
	if tx.Site == s.id {
		if part.InDoubtThreePhase(tx) {
			return false, false // 3PC: the cohort may yet commit without us
		}
		return false, true // presumed abort
	}
	return false, false
}

var errCrashed = fmt.Errorf("site crashed")
