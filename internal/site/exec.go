package site

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/rcp"
	"repro/internal/wire"
)

// Execute runs a one-shot transaction with this site as its home site,
// exactly as the paper describes (§2.1): the dedicated goroutine invokes
// the RCP for each operation in order, then the home site runs the atomic
// commit protocol over every touched site. It is Begin + ops + Commit over
// the interactive Txn API.
func (s *Site) Execute(ctx context.Context, ops []model.Op) model.Outcome {
	t, err := s.Begin(ctx)
	if err != nil {
		return model.Outcome{Committed: false, Cause: model.AbortClient, HomeSite: s.id}
	}
	for _, op := range orderedOps(ops) {
		switch op.Kind {
		case model.OpRead:
			_, err = t.Read(op.Item)
		case model.OpWrite:
			err = t.Write(op.Item, op.Value)
		case model.OpAdd:
			err = t.Add(op.Item, op.Value)
		default:
			err = model.Abortf(model.AbortClient, "invalid op kind %d", op.Kind)
			t.doomed = err
		}
		if err != nil {
			return t.Abort()
		}
	}
	return t.Commit()
}

// orderedOps reorders a one-shot batch by item ID so concurrent transactions
// acquire contended locks in one global order — contending batches then queue
// instead of deadlocking into lock-timeout churn. Safe only for one-shot
// programs whose items are all distinct: a repeated item makes the program
// order-sensitive (last write wins, read-your-writes), so those batches run
// as submitted. The common already-sorted case returns the input unchanged.
func orderedOps(ops []model.Op) []model.Op {
	seen := make(map[model.ItemID]bool, len(ops))
	sorted := true
	for i := range ops {
		if seen[ops[i].Item] {
			return ops
		}
		seen[ops[i].Item] = true
		if i > 0 && ops[i].Item < ops[i-1].Item {
			sorted = false
		}
	}
	if sorted {
		return ops
	}
	out := make([]model.Op, len(ops))
	copy(out, ops)
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	return out
}

// classify maps an execution error onto the paper's abort-cause taxonomy.
func classify(err error) model.AbortCause {
	switch c := model.CauseOf(err); c {
	case model.AbortNone:
		return model.AbortClient
	case model.AbortClient:
		// Context timeouts during RCP ops count as replication-level
		// failures (copies unreachable). errors.Is, not ==: transports and
		// RPC layers wrap the context error, and a wrapped deadline
		// misclassified as a client abort would hide replication failures
		// from the abort-cause statistics.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return model.AbortRCP
		}
		return model.AbortClient
	default:
		return c
	}
}

// releaseEverywhere discards CC state for an aborted-before-commit
// transaction at every touched site, plus any stray attempted sites where
// a timed-out operation may have succeeded late (KindReleaseTx).
func (s *Site) releaseEverywhere(sess *rcp.Session) {
	for _, site := range append(sess.Participants(), sess.Strays()...) {
		s.releaseAt(site, sess.Tx)
	}
}

// releaseStrays sends releases to attempted-but-unenlisted sites only.
func (s *Site) releaseStrays(sess *rcp.Session) {
	for _, site := range sess.Strays() {
		s.releaseAt(site, sess.Tx)
	}
}

// releaseAt releases one site's CC state for an aborted transaction. The
// local path aborts directly; the remote path acknowledges and retries in
// the background — a release silently lost to a partition or a paused link
// would otherwise strand the remote intent (and its locks) forever, since
// an unprepared transaction has no WAL trace for any recovery path to
// clean up. Attempts are bounded, and the retry loop rides lifeCtx, NOT
// the incarnation's runCtx: a simulated crash must not drop the pending
// releases of already-aborted transactions (the fabric enforces fail-stop
// by discarding a paused site's sends; retries flush after resume). Close
// cancels lifeCtx, so no goroutine outlives the site object.
func (s *Site) releaseAt(site model.SiteID, tx model.TxID) {
	if site == s.id {
		s.mu.Lock()
		ccm := s.ccm
		s.mu.Unlock()
		ccm.Abort(tx)
		return
	}
	life := s.lifeCtx
	go func() {
		for attempt := 0; attempt < 5; attempt++ {
			ctx, cancel := context.WithTimeout(life, time.Second)
			err := s.peer.Call(ctx, site, wire.KindReleaseTx, &wire.ReleaseTxReq{Tx: tx}, nil)
			cancel()
			if err == nil || life.Err() != nil {
				return
			}
			select {
			case <-life.Done():
				return
			case <-time.After(time.Duration(attempt+1) * 200 * time.Millisecond):
			}
		}
		// All attempts exhausted: the remote CC state is stranded until that
		// site's CC janitor presumed-abort-queries us. Count and report it —
		// a silently abandoned release looks exactly like a leak from the
		// outside, and the counter is what distinguishes "the janitor is the
		// cleanup path now" from "releases are being lost".
		s.releasesAbandoned.Add(1)
		log.Printf("site %s: abandoned release of %s at %s after 5 attempts (remote janitor takes over)", s.id, tx, site)
	}()
}

// mergeContexts returns a context cancelled when either input is.
func mergeContexts(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// ---- rcp.CopyAccess implementation ----

// Local implements rcp.CopyAccess.
func (s *Site) Local() model.SiteID { return s.id }

// ReadCopy implements rcp.CopyAccess: a local fast path through the site's
// own CCP, or a ReadCopy RPC to the remote site. The third return value is
// the serving site's incarnation number, recorded in the session for the
// prepare-time incarnation fence.
func (s *Site) ReadCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, uint64, error) {
	if site == s.id {
		s.mu.Lock()
		ccm := s.ccm
		inc := s.incarnation
		s.mu.Unlock()
		v, ver, err := ccm.Read(ctx, tx, ts, item)
		if err == nil {
			s.hist.Record(tx, model.OpRead, item, v, ver)
		}
		return v, ver, inc, err
	}
	actx, cancel := s.attemptCtx(ctx)
	defer cancel()
	resp, err := wire.Call[wire.ReadCopyResp](actx, s.peer, site, wire.KindReadCopy, &wire.ReadCopyReq{Tx: tx, TS: ts, Item: item})
	s.stats.AddRoundTrips(1)
	if err != nil {
		return 0, 0, 0, err
	}
	s.clock.Witness(model.Timestamp{Time: resp.Clock, Site: site})
	return resp.Value, resp.Version, resp.Incarnation, nil
}

// attemptCtx bounds one remote copy-operation attempt so a silent site does
// not consume the whole operation budget.
func (s *Site) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	s.mu.Lock()
	op := s.timeouts.Op
	s.mu.Unlock()
	return context.WithTimeout(ctx, op)
}

// PreWriteCopy implements rcp.CopyAccess.
func (s *Site) PreWriteCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, uint64, error) {
	if site == s.id {
		s.mu.Lock()
		ccm := s.ccm
		inc := s.incarnation
		s.mu.Unlock()
		ver, err := ccm.PreWrite(ctx, tx, ts, item, value)
		return ver, inc, err
	}
	actx, cancel := s.attemptCtx(ctx)
	defer cancel()
	resp, err := wire.Call[wire.PreWriteResp](actx, s.peer, site, wire.KindPreWrite, &wire.PreWriteReq{Tx: tx, TS: ts, Item: item, Value: value})
	s.stats.AddRoundTrips(1)
	if err != nil {
		return 0, 0, err
	}
	s.clock.Witness(model.Timestamp{Time: resp.Clock, Site: site})
	return resp.Version, resp.Incarnation, nil
}

// AddCopy implements rcp.CopyAccess: the blind-add counterpart of
// PreWriteCopy. The remote path rides the PreWrite wire message with the
// Add flag set (one hot-path message kind, one pipeline).
func (s *Site) AddCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, uint64, error) {
	if site == s.id {
		s.mu.Lock()
		ccm := s.ccm
		inc := s.incarnation
		s.mu.Unlock()
		ver, err := ccm.PreAdd(ctx, tx, ts, item, delta)
		return ver, inc, err
	}
	actx, cancel := s.attemptCtx(ctx)
	defer cancel()
	resp, err := wire.Call[wire.PreWriteResp](actx, s.peer, site, wire.KindPreWrite, &wire.PreWriteReq{Tx: tx, TS: ts, Item: item, Value: delta, Add: true})
	s.stats.AddRoundTrips(1)
	if err != nil {
		return 0, 0, err
	}
	s.clock.Witness(model.Timestamp{Time: resp.Clock, Site: site})
	return resp.Version, resp.Incarnation, nil
}

// ---- acp.Cohort implementation ----

// Prepare implements acp.Cohort.
func (s *Site) Prepare(ctx context.Context, site model.SiteID, req wire.PrepareReq) (wire.VoteResp, error) {
	if site == s.id {
		return s.votePrepare(req), nil
	}
	resp, err := wire.Call[wire.VoteResp](ctx, s.peer, site, wire.KindPrepare, &req)
	s.stats.AddRoundTrips(1)
	if err != nil {
		return wire.VoteResp{}, err
	}
	return *resp, nil
}

// votePrepare validates phase 1 before handing it to the participant. Four
// guards close the lost-protection window between copy operations and
// prepare:
//
//   - the incarnation fence: the prepare echoes the incarnation number
//     this site reported when the transaction first operated here; a crash
//     recovery (or live rebuild) in between bumped it, so the CC
//     protection backing this prepare is gone — vote no, deterministically
//     and regardless of what state the new incarnation happens to hold;
//   - the epoch fence: a transaction begun under an epoch older than this
//     site's last live rebuild votes no (Site.fence);
//   - the release tombstone: a transaction this site already released (an
//     abort, or the CC janitor's presumed-abort cleanup) must not prepare —
//     its read locks are gone, so even a read-only yes could commit a
//     stale read;
//   - intent validation: the CC manager must still buffer a pre-write
//     intent for every item in the shipped write set.
//
// All guards are skipped for transactions the participant already tracks
// (duplicate prepares, recovered in-doubt state, recorded decisions) —
// those are the participant's own idempotency paths.
//
// The guards and the participant's force-write run as ONE unit under the
// site gate's read side: a live rebuild takes the gate's write side, so it
// either completes before the guards read the (new) fence and CC manager,
// or waits until the prepare has fully forced and registered — it can
// never interleave between a passed check and the force, which would let
// an unprotected prepare slip into the new stack. (The CC janitor's
// check-then-release runs under the gate's write side for the same
// reason.)
func (s *Site) votePrepare(req wire.PrepareReq) wire.VoteResp {
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	fence := s.fence
	incarnation := s.incarnation
	part := s.part
	ccm := s.ccm
	s.mu.Unlock()
	if known := part.Prepared(req.Tx); !known {
		if _, decided := part.Decision(req.Tx); !decided {
			if req.Incarnation != 0 && req.Incarnation != incarnation {
				return wire.VoteResp{Yes: false, Reason: fmt.Sprintf("incarnation fence: transaction operated under incarnation %d, site is at %d", req.Incarnation, incarnation)}
			}
			if req.Epoch < fence {
				return wire.VoteResp{Yes: false, Reason: fmt.Sprintf("epoch fence: transaction epoch %d < rebuild epoch %d", req.Epoch, fence)}
			}
			if s.isReleased(req.Tx) {
				return wire.VoteResp{Yes: false, Reason: "transaction already released at this site"}
			}
			if len(req.Writes) > 0 {
				items := make([]model.ItemID, len(req.Writes))
				for i, w := range req.Writes {
					items[i] = w.Item
				}
				if !ccm.HoldsIntents(req.Tx, items) {
					return wire.VoteResp{Yes: false, Reason: "pre-write intents lost (crash or reconfiguration between pre-write and prepare)"}
				}
			}
		}
	}
	return part.HandlePrepare(req)
}

// PreCommit implements acp.Cohort: a nil return promises the participant
// FORCED its pre-committed state (the coordinator's commit quorum counts
// on it).
func (s *Site) PreCommit(ctx context.Context, site model.SiteID, tx model.TxID) error {
	if site == s.id {
		return s.handlePreCommit(tx)
	}
	err := s.peer.Call(ctx, site, wire.KindPreCommit, &wire.PreCommitReq{Tx: tx}, nil)
	s.stats.AddRoundTrips(1)
	return err
}

// handlePreCommit forces the participant's pre-commit transition under the
// site gate's read side (like every record-forcing path, so reconfiguration
// and fuzzy snapshots observe a quiescent record stream).
func (s *Site) handlePreCommit(tx model.TxID) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	part := s.part
	s.mu.Unlock()
	return part.HandlePreCommit(tx)
}

// handleTermQuery serves a quorum-termination election query under the
// gate's read side (it may force a RecElect promise).
func (s *Site) handleTermQuery(tx model.TxID, ballot model.Ballot) wire.TermQueryResp {
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	part := s.part
	s.mu.Unlock()
	return part.HandleTermQuery(tx, ballot)
}

// handlePreDecide serves a quorum-termination pre-decision under the
// gate's read side (it forces a RecPreDecide on acceptance).
func (s *Site) handlePreDecide(tx model.TxID, ballot model.Ballot, commit bool) wire.TermPreDecideResp {
	s.gate.RLock()
	defer s.gate.RUnlock()
	s.mu.Lock()
	part := s.part
	s.mu.Unlock()
	return part.HandlePreDecide(tx, ballot, commit)
}

// Decide implements acp.Cohort.
func (s *Site) Decide(ctx context.Context, site model.SiteID, tx model.TxID, commit bool) error {
	if site == s.id {
		s.mu.Lock()
		part := s.part
		s.mu.Unlock()
		return part.HandleDecision(tx, commit)
	}
	err := s.peer.Call(ctx, site, wire.KindDecision, &wire.DecisionMsg{Tx: tx, Commit: commit}, nil)
	s.stats.AddRoundTrips(1)
	return err
}

// End implements acp.Cohort: the cohort-fully-acknowledged notification.
// Fire-and-forget (Cast, no response awaited) — the participant retires its
// decision-table entry on receipt; a lost message only leaves the entry
// lingering until the site restarts without it.
func (s *Site) End(ctx context.Context, site model.SiteID, tx model.TxID) error {
	if site == s.id {
		s.mu.Lock()
		part := s.part
		s.mu.Unlock()
		part.Retire(tx)
		return nil
	}
	return s.peer.Cast(ctx, site, wire.KindEndTx, &wire.EndTxMsg{Tx: tx})
}

// ---- acp.Resolver implementation ----

// QueryDecision implements acp.Resolver.
func (s *Site) QueryDecision(ctx context.Context, site model.SiteID, tx model.TxID, threePhase bool) (bool, bool, error) {
	if site == s.id {
		commit, known := s.localDecision(tx, threePhase)
		return known, commit, nil
	}
	resp, err := wire.Call[wire.DecisionResp](ctx, s.peer, site, wire.KindDecisionReq, &wire.DecisionReq{Tx: tx, ThreePhase: threePhase})
	s.stats.AddRoundTrips(1)
	if err != nil {
		return false, false, err
	}
	return resp.Known, resp.Commit, nil
}

// QueryTermination implements acp.Resolver (the election leg of quorum
// termination), with a loopback fast path so the initiator's own state
// participates uniformly.
func (s *Site) QueryTermination(ctx context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot) (wire.TermQueryResp, error) {
	if site == s.id {
		return s.handleTermQuery(tx, ballot), nil
	}
	resp, err := wire.Call[wire.TermQueryResp](ctx, s.peer, site, wire.KindTermQuery, &wire.TermQueryReq{Tx: tx, Ballot: ballot})
	s.stats.AddRoundTrips(1)
	if err != nil {
		return wire.TermQueryResp{}, err
	}
	return *resp, nil
}

// SendPreDecide implements acp.Resolver (the pre-decision leg of quorum
// termination).
func (s *Site) SendPreDecide(ctx context.Context, site model.SiteID, tx model.TxID, ballot model.Ballot, commit bool) (wire.TermPreDecideResp, error) {
	if site == s.id {
		return s.handlePreDecide(tx, ballot, commit), nil
	}
	resp, err := wire.Call[wire.TermPreDecideResp](ctx, s.peer, site, wire.KindTermPreDecide, &wire.TermPreDecideReq{Tx: tx, Ballot: ballot, Commit: commit})
	s.stats.AddRoundTrips(1)
	if err != nil {
		return wire.TermPreDecideResp{}, err
	}
	return *resp, nil
}

// SendDecision implements acp.Resolver: deliver a termination decision.
func (s *Site) SendDecision(ctx context.Context, site model.SiteID, tx model.TxID, commit bool) error {
	return s.Decide(ctx, site, tx, commit)
}

// localDecision answers a decision request against local knowledge,
// implementing presumed abort for 2PC transactions this site coordinated:
// if we coordinated tx, it is not currently active, and no decision is
// logged, the transaction must have aborted (a commit is always logged
// before being announced).
//
// Presumed abort is NEVER sound for a 3PC transaction: the cohort can
// commit by quorum termination without its coordinator, so a recovered
// coordinator with no record — even one that was never a cohort member and
// so holds no in-doubt state to warn it — must answer "unknown" and let
// quorum termination decide the outcome. The requester marks 3PC queries
// (it knows from its prepared record); the in-doubt check below
// additionally covers member coordinators queried without the mark.
func (s *Site) localDecision(tx model.TxID, threePhase bool) (commit, known bool) {
	s.mu.Lock()
	part := s.part
	active := s.activeCoord[tx]
	s.mu.Unlock()
	if c, ok := part.Decision(tx); ok {
		return c, true
	}
	if active {
		return false, false // still deciding: caller must wait
	}
	if tx.Site == s.id {
		if threePhase || part.InDoubtThreePhase(tx) {
			return false, false // 3PC: the cohort may yet commit without us
		}
		return false, true // presumed abort
	}
	return false, false
}

var errCrashed = fmt.Errorf("site crashed")
