package site

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/simnet"
)

// cluster spins up a name server and n sites over a simulated network with
// every item replicated everywhere.
type cluster struct {
	net   *simnet.Net
	ns    *nameserver.Server
	sites map[model.SiteID]*Site
	ids   []model.SiteID
}

func newCluster(t *testing.T, n int, protocols schema.Protocols, items map[model.ItemID]int64) *cluster {
	t.Helper()
	net := simnet.New(simnet.Config{})
	cat := schema.NewCatalog()
	var ids []model.SiteID
	for i := 0; i < n; i++ {
		id := model.SiteID(string(rune('A' + i)))
		ids = append(ids, id)
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	for item, initial := range items {
		cat.ReplicateEverywhere(item, initial)
	}
	cat.Protocols = protocols
	cat.Timeouts = schema.Timeouts{
		Op: time.Second, Vote: time.Second, Ack: 500 * time.Millisecond,
		Lock: 500 * time.Millisecond, OrphanResolve: 50 * time.Millisecond,
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	ns, err := nameserver.New(net, cat)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{net: net, ns: ns, sites: make(map[model.SiteID]*Site), ids: ids}
	for _, id := range ids {
		st, err := New(Config{ID: id, Net: net})
		if err != nil {
			t.Fatal(err)
		}
		c.sites[id] = st
	}
	t.Cleanup(func() {
		for _, st := range c.sites {
			st.Close()
		}
		ns.Close()
	})
	return c
}

func defaultProtocols() schema.Protocols {
	return schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"}
}

func items() map[model.ItemID]int64 {
	return map[model.ItemID]int64{"x": 10, "y": 20, "z": 30}
}

func TestExecuteReadOnly(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	out := c.sites["A"].Execute(context.Background(), []model.Op{model.Read("x"), model.Read("y")})
	if !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Reads["x"] != 10 || out.Reads["y"] != 20 {
		t.Errorf("reads = %v", out.Reads)
	}
	if out.Tx.Site != "A" {
		t.Errorf("home site = %v", out.Tx.Site)
	}
}

func TestExecuteWriteVisibleEverywhereEventually(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	out := c.sites["A"].Execute(context.Background(), []model.Op{model.Write("x", 99)})
	if !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
	// QC: a read from any other site must see the new value (its read
	// quorum intersects the write quorum and takes the max version).
	for _, id := range c.ids {
		got := c.sites[id].Execute(context.Background(), []model.Op{model.Read("x")})
		if !got.Committed || got.Reads["x"] != 99 {
			t.Errorf("site %s read %v (committed=%v)", id, got.Reads, got.Committed)
		}
	}
}

func TestExecuteReadModifyWrite(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	s := c.sites["B"]
	out := s.Execute(context.Background(), []model.Op{model.Read("x"), model.Write("x", 11)})
	if !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
	got := s.Execute(context.Background(), []model.Op{model.Read("x")})
	if got.Reads["x"] != 11 {
		t.Errorf("read-after-rmw = %v", got.Reads)
	}
}

func TestExecuteUnknownItemAborts(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	out := c.sites["A"].Execute(context.Background(), []model.Op{model.Read("ghost")})
	if out.Committed || out.Cause != model.AbortClient {
		t.Errorf("outcome = %+v", out)
	}
}

func TestExecuteEmptyTransactionCommits(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	out := c.sites["A"].Execute(context.Background(), nil)
	if !out.Committed {
		t.Errorf("outcome = %+v", out)
	}
}

func TestAllProtocolCombinationsExecute(t *testing.T) {
	for _, rcpName := range []string{"rowa", "qc"} {
		for _, ccpName := range []string{"2pl", "tso", "mvtso"} {
			for _, acpName := range []string{"2pc", "3pc"} {
				name := rcpName + "/" + ccpName + "/" + acpName
				t.Run(name, func(t *testing.T) {
					c := newCluster(t, 3, schema.Protocols{RCP: rcpName, CCP: ccpName, ACP: acpName}, items())
					s := c.sites["A"]
					w := s.Execute(context.Background(), []model.Op{model.Write("x", 5), model.Read("y")})
					if !w.Committed {
						t.Fatalf("write tx failed: %+v", w)
					}
					r := c.sites["C"].Execute(context.Background(), []model.Op{model.Read("x")})
					if !r.Committed || r.Reads["x"] != 5 {
						t.Fatalf("read tx = %+v", r)
					}
				})
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	s := c.sites["A"]
	for i := 0; i < 5; i++ {
		s.Execute(context.Background(), []model.Op{model.Write("x", int64(i))})
	}
	st := s.Stats()
	if st.Began != 5 || st.Committed != 5 || st.Aborted != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Latency.Count != 5 {
		t.Errorf("latency samples = %d", st.Latency.Count)
	}
	s.ResetStats()
	if got := s.Stats(); got.Began != 0 {
		t.Errorf("reset failed: %+v", got)
	}
}

func TestHistoryRecordedAndSerializable(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	committed := make(map[model.TxID]bool)
	for i := 0; i < 10; i++ {
		home := c.sites[c.ids[i%len(c.ids)]]
		out := home.Execute(context.Background(), []model.Op{
			model.Read("x"), model.Write("x", int64(i)), model.Write("y", int64(i)),
		})
		if out.Committed {
			committed[out.Tx] = true
		}
	}
	var recs []*history.Recorder
	for _, id := range c.ids {
		recs = append(recs, c.sites[id].HistoryRecorder())
	}
	if err := history.CheckSerializable(history.Merge(recs...), committed); err != nil {
		t.Error(err)
	}
	if len(committed) == 0 {
		t.Fatal("nothing committed")
	}
}

func TestCrashedSiteRejectsWork(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	s := c.sites["A"]
	c.net.Pause("A")
	s.Crash()
	out := s.Execute(context.Background(), []model.Op{model.Read("x")})
	if out.Committed {
		t.Error("crashed site committed a transaction")
	}
	if !s.Crashed() {
		t.Error("Crashed() = false")
	}
}

func TestCrashRecoveryPreservesCommittedData(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	a := c.sites["A"]
	if out := a.Execute(context.Background(), []model.Op{model.Write("x", 77)}); !out.Committed {
		t.Fatalf("setup write failed: %+v", out)
	}

	c.net.Pause("A")
	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	c.net.Resume("A")

	out := a.Execute(context.Background(), []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 77 {
		t.Errorf("read after recovery = %+v", out)
	}
}

func TestRecoverNotCrashedFails(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	if err := c.sites["A"].Recover(); err == nil {
		t.Error("Recover on a live site should fail")
	}
}

func TestQuorumSurvivesMinorityCrash(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	c.net.Pause("C")
	c.sites["C"].Crash()

	// QC with majority quorums keeps working with 2 of 3 sites.
	out := c.sites["A"].Execute(context.Background(), []model.Op{model.Write("x", 5), model.Read("x")})
	if !out.Committed {
		t.Fatalf("majority write failed: %+v", out)
	}
}

func TestROWAWriteFailsWithSiteDown(t *testing.T) {
	c := newCluster(t, 3, schema.Protocols{RCP: "rowa", CCP: "2pl", ACP: "2pc"}, items())
	c.net.Pause("C")
	c.sites["C"].Crash()

	out := c.sites["A"].Execute(context.Background(), []model.Op{model.Write("x", 5)})
	if out.Committed {
		t.Fatal("ROWA write committed with a copy site down")
	}
	if out.Cause != model.AbortRCP {
		t.Errorf("cause = %v, want rcp", out.Cause)
	}
	// Reads still work (read-one).
	r := c.sites["A"].Execute(context.Background(), []model.Op{model.Read("x")})
	if !r.Committed {
		t.Errorf("ROWA read failed with one site down: %+v", r)
	}
}

func TestConflictingTransactionsSerialize(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	const n = 20
	results := make(chan model.Outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			home := c.sites[c.ids[i%len(c.ids)]]
			// Read-modify-write on a hotspot is an upgrade-deadlock storm
			// under 2PL; retry aborted attempts with jittered backoff as a
			// real workload would (immediate lockstep retries livelock).
			rng := rand.New(rand.NewSource(int64(i)))
			var out model.Outcome
			for attempt := 0; attempt < 16; attempt++ {
				out = home.Execute(context.Background(), []model.Op{
					model.Read("x"), model.Write("x", int64(i)),
				})
				if out.Committed {
					break
				}
				time.Sleep(time.Duration(rng.Intn(80*(attempt+1))) * time.Millisecond)
			}
			results <- out
		}(i)
	}
	committed := make(map[model.TxID]bool)
	for i := 0; i < n; i++ {
		if out := <-results; out.Committed {
			committed[out.Tx] = true
		}
	}
	if len(committed) == 0 {
		t.Fatal("all conflicting transactions aborted")
	}
	// History must stay serializable under contention.
	var recs []*history.Recorder
	for _, id := range c.ids {
		recs = append(recs, c.sites[id].HistoryRecorder())
	}
	if err := history.CheckSerializable(history.Merge(recs...), committed); err != nil {
		t.Error(err)
	}
	final := c.sites["A"].Execute(context.Background(), []model.Op{model.Read("x")})
	if !final.Committed {
		t.Fatalf("final read failed: %+v", final)
	}
}

func TestExecuteViaSubmitTxRPC(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	// Submit through the wire as the WLG does.
	other := c.sites["B"]
	_ = other
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	out := c.sites["A"].Execute(ctx, []model.Op{model.Write("y", 1)})
	if !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
}
