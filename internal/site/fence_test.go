package site

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/wire"
)

// TestVotePrepareEpochFence: after a live rebuild, prepares from
// transactions begun under an older epoch vote no — the rebuild discarded
// their CC protection, so preparing them could double-serialize a version.
func TestVotePrepareEpochFence(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]

	// Before any reconfigure the fence is down: old-epoch prepares with
	// live intents pass (cold boots and registration skew must not fence).
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	preTx := model.TxID{Site: "B", Seq: 1}
	if _, err := a.ccm.PreWrite(ctx, preTx, model.Timestamp{Time: 1, Site: "B"}, "x", 1); err != nil {
		t.Fatal(err)
	}
	v := a.votePrepare(wire.PrepareReq{
		Tx: preTx, Coordinator: "B", Participants: []model.SiteID{"A", "B"},
		Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
	})
	if !v.Yes {
		t.Fatalf("pre-fence prepare rejected: %+v", v)
	}

	cat := bump(a)
	cat.Shards = 4
	if err := a.Reconfigure(cat); err != nil {
		t.Fatal(err)
	}
	v = a.votePrepare(wire.PrepareReq{
		Tx: model.TxID{Site: "B", Seq: 2}, Epoch: 0, // begun pre-bump
		Coordinator: "B", Participants: []model.SiteID{"A", "B"},
		Writes: []model.WriteRecord{{Item: "x", Value: 2, Version: 2}},
	})
	if v.Yes || !strings.Contains(v.Reason, "epoch fence") {
		t.Fatalf("post-rebuild old-epoch prepare = %+v, want epoch-fence no", v)
	}
}

// TestVotePrepareRejectsLostIntents: a prepare whose write set has no
// buffered pre-write intents here (wiped by crash recovery or a rebuild)
// votes no; with live intents it votes yes.
func TestVotePrepareRejectsLostIntents(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]

	ghost := model.TxID{Site: "B", Seq: 10}
	v := a.votePrepare(wire.PrepareReq{
		Tx: ghost, Coordinator: "B", Participants: []model.SiteID{"A", "B"},
		Writes: []model.WriteRecord{{Item: "y", Value: 5, Version: 1}},
	})
	if v.Yes || !strings.Contains(v.Reason, "intents") {
		t.Fatalf("intent-less prepare = %+v, want intents-lost no", v)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	real := model.TxID{Site: "B", Seq: 11}
	if _, err := a.ccm.PreWrite(ctx, real, model.Timestamp{Time: 2, Site: "B"}, "y", 6); err != nil {
		t.Fatal(err)
	}
	v = a.votePrepare(wire.PrepareReq{
		Tx: real, Coordinator: "B", Participants: []model.SiteID{"A", "B"},
		Writes: []model.WriteRecord{{Item: "y", Value: 6, Version: 1}},
	})
	if !v.Yes {
		t.Fatalf("prepared-with-intents vote = %+v, want yes", v)
	}

	// Read-only prepares carry no writes and stay exempt.
	v = a.votePrepare(wire.PrepareReq{
		Tx: model.TxID{Site: "B", Seq: 12}, Coordinator: "B",
		Participants: []model.SiteID{"A", "B"},
	})
	if !v.Yes || !v.ReadOnly {
		t.Fatalf("read-only prepare = %+v, want yes/read-only", v)
	}
}

// TestVotePrepareIdempotentForKnownTx: duplicate prepares for transactions
// the participant already tracks (in-doubt or decided) bypass the guards —
// recovery reinstates locks, not intents, and the duplicate path must stay
// idempotent.
func TestVotePrepareIdempotentForKnownTx(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	req := wire.PrepareReq{
		Tx: model.TxID{Site: "B", Seq: 20}, Coordinator: "B",
		Participants: []model.SiteID{"A", "B"},
		Writes:       []model.WriteRecord{{Item: "z", Value: 9, Version: 1}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := a.ccm.PreWrite(ctx, req.Tx, model.Timestamp{Time: 3, Site: "B"}, "z", 9); err != nil {
		t.Fatal(err)
	}
	if v := a.votePrepare(req); !v.Yes {
		t.Fatalf("first prepare: %+v", v)
	}
	// Crash/recover wipes intents but restores the in-doubt state; the
	// duplicate prepare must still vote yes.
	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := a.votePrepare(req); !v.Yes {
		t.Fatalf("duplicate prepare after recovery: %+v", v)
	}
}

// TestOwn3PCInDoubtNotPresumedAborted: a coordinator answering a decision
// request for its own transaction presumes abort under 2PC, but must answer
// "unknown" while it still holds the transaction in-doubt under 3PC — the
// cohort may have cooperatively committed while this site was down.
func TestOwn3PCInDoubtNotPresumedAborted(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]

	own2pc := model.TxID{Site: "A", Seq: 30}
	if v := a.part.HandlePrepare(wire.PrepareReq{
		Tx: own2pc, Coordinator: "A", Participants: []model.SiteID{"A", "B"},
		Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 5}},
	}); !v.Yes {
		t.Fatal(v)
	}
	if commit, known := a.localDecision(own2pc, false); !known || commit {
		t.Errorf("2PC own in-doubt decision = (%v,%v), want presumed abort (false,true)", commit, known)
	}

	own3pc := model.TxID{Site: "A", Seq: 31}
	if v := a.part.HandlePrepare(wire.PrepareReq{
		Tx: own3pc, Coordinator: "A", Participants: []model.SiteID{"A", "B"},
		ThreePhase: true,
		Writes:     []model.WriteRecord{{Item: "y", Value: 1, Version: 5}},
	}); !v.Yes {
		t.Fatal(v)
	}
	if _, known := a.localDecision(own3pc, false); known {
		t.Error("3PC own in-doubt transaction must not be presumed aborted")
	}
	// A marked 3PC query never gets presumed abort, even with no local
	// trace at all (a recovered non-member coordinator).
	if _, known := a.localDecision(model.TxID{Site: "A", Seq: 32}, true); known {
		t.Error("marked 3PC query answered with presumed abort")
	}
}
