package site

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the suite if any site goroutine (janitor, checkpointer,
// pipeline worker, transport loop) outlives the tests — Stop owns them all.
func TestMain(m *testing.M) { testutil.VerifyMain(m) }
