package site

import (
	"context"
	"sync"
	"testing"

	"repro/internal/model"
)

func TestTxnInteractiveReadModifyWrite(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	s := c.sites["A"]
	txn, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	x, err := txn.Read("x")
	if err != nil || x != 10 {
		t.Fatalf("read x = %d, %v", x, err)
	}
	if err := txn.Write("x", x*2); err != nil {
		t.Fatal(err)
	}
	out := txn.Commit()
	if !out.Committed {
		t.Fatalf("outcome = %+v", out)
	}
	check := s.Execute(context.Background(), []model.Op{model.Read("x")})
	if check.Reads["x"] != 20 {
		t.Errorf("x = %d, want 20", check.Reads["x"])
	}
}

func TestTxnAbortDiscardsWrites(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	s := c.sites["A"]
	txn, _ := s.Begin(context.Background())
	txn.Write("x", 999)
	out := txn.Abort()
	if out.Committed {
		t.Fatal("aborted txn reported committed")
	}
	check := s.Execute(context.Background(), []model.Op{model.Read("x")})
	if !check.Committed || check.Reads["x"] != 10 {
		t.Errorf("x = %+v, want original 10", check)
	}
}

func TestTxnDoomedAfterError(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	s := c.sites["A"]
	txn, _ := s.Begin(context.Background())
	if _, err := txn.Read("ghost"); err == nil {
		t.Fatal("read of unknown item succeeded")
	}
	// Every further operation returns the dooming error.
	if _, err := txn.Read("x"); err == nil {
		t.Error("doomed txn allowed another read")
	}
	if err := txn.Write("x", 1); err == nil {
		t.Error("doomed txn allowed a write")
	}
	// Commit degrades to abort.
	out := txn.Commit()
	if out.Committed {
		t.Error("doomed txn committed")
	}
}

func TestTxnDoubleFinishSafe(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	s := c.sites["A"]
	txn, _ := s.Begin(context.Background())
	txn.Write("x", 1)
	first := txn.Commit()
	if !first.Committed {
		t.Fatalf("outcome = %+v", first)
	}
	// Double finishes are inert and do not distort statistics.
	before := s.Stats()
	txn.Commit()
	txn.Abort()
	if _, err := txn.Read("x"); err == nil {
		t.Error("finished txn allowed a read")
	}
	after := s.Stats()
	if after.Began != before.Began || after.Committed != before.Committed || after.Aborted != before.Aborted {
		t.Errorf("double finish changed stats: %+v -> %+v", before, after)
	}
}

func TestTxnBeginOnCrashedSiteFails(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	s := c.sites["A"]
	c.net.Pause("A")
	s.Crash()
	if _, err := s.Begin(context.Background()); err == nil {
		t.Error("Begin on crashed site succeeded")
	}
}

func TestTxnReadYourOwnWrite(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	s := c.sites["B"]
	txn, _ := s.Begin(context.Background())
	if err := txn.Write("y", 77); err != nil {
		t.Fatal(err)
	}
	v, err := txn.Read("y")
	if err != nil || v != 77 {
		t.Errorf("read-own-write = %d (%v), want 77", v, err)
	}
	txn.Commit()
}

func TestTxnConcurrentTransfersPreserveSum(t *testing.T) {
	// The bank example's invariant as a test: concurrent interactive
	// read-modify-write transfers never create or destroy value.
	c := newCluster(t, 3, defaultProtocols(), map[model.ItemID]int64{"a1": 100, "a2": 100, "a3": 100})
	var wg sync.WaitGroup
	accounts := []model.ItemID{"a1", "a2", "a3"}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			home := c.sites[c.ids[g%len(c.ids)]]
			from, to := accounts[g%3], accounts[(g+1)%3]
			for i := 0; i < 5; i++ {
				txn, err := home.Begin(context.Background())
				if err != nil {
					continue
				}
				bf, err := txn.Read(from)
				if err != nil {
					txn.Abort()
					continue
				}
				bt, err := txn.Read(to)
				if err != nil {
					txn.Abort()
					continue
				}
				if txn.Write(from, bf-1) != nil || txn.Write(to, bt+1) != nil {
					txn.Abort()
					continue
				}
				txn.Commit()
			}
		}(g)
	}
	wg.Wait()
	audit := c.sites["A"].Execute(context.Background(), []model.Op{
		model.Read("a1"), model.Read("a2"), model.Read("a3"),
	})
	if !audit.Committed {
		t.Fatalf("audit failed: %+v", audit)
	}
	sum := audit.Reads["a1"] + audit.Reads["a2"] + audit.Reads["a3"]
	if sum != 300 {
		t.Errorf("sum = %d, want 300 (balances %v)", sum, audit.Reads)
	}
}
