package site

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/wire"
)

// bump returns a copy of the site's current catalog with the epoch
// incremented, ready to mutate into the next version.
func bump(s *Site) *schema.Catalog {
	cat := s.Catalog().Clone()
	cat.Epoch++
	return cat
}

// TestReconfigureReshardsLive is the tentpole's acceptance scenario at site
// scope: a live epoch bump changes the shard count without a restart, with
// committed data readable before and after, and the site keeps committing.
func TestReconfigureReshardsLive(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	a := c.sites["A"]
	ctx := context.Background()

	for v := int64(1); v <= 10; v++ {
		if out := a.Execute(ctx, []model.Op{model.Write("x", v), model.Write("y", v*2)}); !out.Committed {
			t.Fatalf("write did not commit: %+v", out)
		}
	}

	for _, shards := range []int{8, 2} {
		cat := bump(a)
		cat.Shards = shards
		if err := a.Reconfigure(cat); err != nil {
			t.Fatalf("reconfigure to %d shards: %v", shards, err)
		}
		if got := a.Store().ShardCount(); got != shards {
			t.Fatalf("shard count after reconfigure = %d, want %d", got, shards)
		}
		if got := a.Epoch(); got != cat.Epoch {
			t.Fatalf("epoch after reconfigure = %d, want %d", got, cat.Epoch)
		}
		out := a.Execute(ctx, []model.Op{model.Read("x"), model.Read("y")})
		if !out.Committed || out.Reads["x"] != 10 || out.Reads["y"] != 20 {
			t.Fatalf("post-reshard read = %+v, want x=10 y=20", out)
		}
		// The re-sharded site keeps committing new work.
		if out := a.Execute(ctx, []model.Op{model.Write("z", int64(shards))}); !out.Committed {
			t.Fatalf("post-reshard write did not commit: %+v", out)
		}
	}
	if got := a.Reconfigures(); got != 2 {
		t.Errorf("reconfigure count = %d, want 2", got)
	}
	if st := a.Stats(); st.Epoch != a.Epoch() || st.Reconfigures != 2 {
		t.Errorf("stats epoch/reconfigures = %d/%d", st.Epoch, st.Reconfigures)
	}
}

// TestReconfigureStaleEpochRejected: equal and older epochs must be refused
// without touching the stack.
func TestReconfigureStaleEpochRejected(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	before := a.Store()

	same := a.Catalog().Clone() // epoch unchanged
	if err := a.Reconfigure(same); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("same-epoch reconfigure error = %v, want ErrStaleEpoch", err)
	}
	if a.Store() != before {
		t.Error("stale reconfigure replaced the store")
	}
	if n := a.Reconfigures(); n != 0 {
		t.Errorf("reconfigure count = %d, want 0", n)
	}
}

// TestReconfigureImmaterialSkipsRebuild: an epoch bump that only touches
// site registrations (what RegisterSite does) adopts the metadata without
// rebuilding the store.
func TestReconfigureImmaterialSkipsRebuild(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	before := a.Store()

	cat := bump(a)
	info := cat.Sites["B"]
	info.Addr = "10.0.0.2:7001"
	cat.Sites["B"] = info
	if err := a.Reconfigure(cat); err != nil {
		t.Fatal(err)
	}
	if a.Epoch() != cat.Epoch {
		t.Errorf("epoch not adopted: %d", a.Epoch())
	}
	if a.Store() != before {
		t.Error("immaterial reconfigure rebuilt the store")
	}
}

// TestReconfigureAddsItem: a new item entering the replication schema at
// runtime becomes readable/writable everywhere after all sites adopt the
// epoch.
func TestReconfigureAddsItem(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	ctx := context.Background()

	cat := bump(c.sites["A"])
	cat.ReplicateEverywhere("w", 555)
	for _, id := range c.ids {
		if err := c.sites[id].Reconfigure(cat.Clone()); err != nil {
			t.Fatalf("site %s: %v", id, err)
		}
	}
	out := c.sites["B"].Execute(ctx, []model.Op{model.Read("w")})
	if !out.Committed || out.Reads["w"] != 555 {
		t.Fatalf("new-item read = %+v, want w=555", out)
	}
	if out := c.sites["C"].Execute(ctx, []model.Op{model.Write("w", 556)}); !out.Committed {
		t.Fatalf("new-item write = %+v", out)
	}
}

// TestReconfigureCarriesInDoubtAcross: a Prepared-but-undecided transaction
// held when the epoch bump lands must survive the rebuild — still counted
// in-doubt, its write set re-protected in the new CC manager, and still
// installable when the decision finally arrives (2PC termination).
func TestReconfigureCarriesInDoubtAcross(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	ctx := context.Background()

	orphan := model.TxID{Site: "Z", Seq: 77}
	vote := a.part.HandlePrepare(wire.PrepareReq{
		Tx:           orphan,
		TS:           model.Timestamp{Time: 1, Site: "Z"},
		Coordinator:  "Z",
		Participants: []model.SiteID{"A", "Z"},
		Writes:       []model.WriteRecord{{Item: "z", Value: 777, Version: 100}},
	})
	if !vote.Yes {
		t.Fatalf("prepare rejected: %+v", vote)
	}

	cat := bump(a)
	cat.Shards = 4
	if err := a.Reconfigure(cat); err != nil {
		t.Fatal(err)
	}
	if n := a.InDoubtCount(); n != 1 {
		t.Fatalf("in-doubt after reconfigure = %d, want 1", n)
	}
	// The in-doubt write set is re-protected in the NEW lock manager: a
	// conflicting write must not slip past it.
	wctx, cancel := context.WithTimeout(ctx, 700*time.Millisecond)
	if out := a.Execute(wctx, []model.Op{model.Write("z", 1)}); out.Committed {
		t.Fatal("conflicting write committed past an in-doubt transaction")
	}
	cancel()
	// Late decision installs into the post-reshard store.
	if err := a.part.HandleDecision(orphan, true); err != nil {
		t.Fatal(err)
	}
	if cp, ok := a.Store().Get("z"); !ok || cp.Value != 777 {
		t.Fatalf("late decision install = %+v, want 777", cp)
	}
	if n := a.InDoubtCount(); n != 0 {
		t.Errorf("in-doubt after decision = %d, want 0", n)
	}
}

// TestReconfigureUnderLoad re-shards a site while concurrent transactions
// run against the whole cluster; every transaction reported committed must
// have its effects durable afterwards (version-guarded redo through the
// forced snapshot must lose nothing).
func TestReconfigureUnderLoad(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	a := c.sites["A"]
	ctx := context.Background()

	var wg sync.WaitGroup
	var mu sync.Mutex
	maxCommitted := make(map[model.ItemID]int64) // item -> highest committed value
	itemsList := []model.ItemID{"x", "y", "z"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			home := c.sites[c.ids[w%len(c.ids)]]
			item := itemsList[w%len(itemsList)]
			for v := int64(1); v <= 25; v++ {
				val := int64(w+1)*1000 + v
				out := home.Execute(ctx, []model.Op{model.Write(item, val)})
				if out.Committed {
					mu.Lock()
					if val > maxCommitted[item] {
						maxCommitted[item] = val
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	// Two epoch bumps mid-flight.
	for i, shards := range []int{8, 2} {
		time.Sleep(20 * time.Millisecond)
		cat := bump(a)
		cat.Shards = shards
		if err := a.Reconfigure(cat); err != nil {
			t.Fatalf("reconfigure %d: %v", i, err)
		}
	}
	wg.Wait()

	// Workers race each other per item, so the final value is the winner of
	// the last conflict — but it must be SOME value a committed transaction
	// wrote, and a read through the quorum must succeed at every site.
	committedVals := make(map[model.ItemID]map[int64]bool)
	for _, e := range a.HistoryRecorder().Events() {
		if e.Kind == model.OpWrite {
			if committedVals[e.Item] == nil {
				committedVals[e.Item] = map[int64]bool{}
			}
			committedVals[e.Item][e.Value] = true
		}
	}
	var final model.Outcome
	for attempt := 0; attempt < 10; attempt++ {
		final = a.Execute(ctx, []model.Op{model.Read("x"), model.Read("y"), model.Read("z")})
		if final.Committed {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !final.Committed {
		t.Fatalf("final audit read aborted: %+v", final)
	}
	initial := items()
	for _, item := range itemsList {
		got := final.Reads[item]
		if got == initial[item] && maxCommitted[item] == 0 {
			continue // nothing committed on this item
		}
		if !committedVals[item][got] && got != initial[item] {
			t.Errorf("item %s = %d after reconfigure, not a committed value", item, got)
		}
	}
}

// TestReconfigureWhileCrashedFails: a crashed site refuses live
// reconfiguration (recovery owns the rebuild), then converges after
// recovery via an explicit call.
func TestReconfigureWhileCrashedFails(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	cat := bump(a)
	cat.Shards = 4
	a.Crash()
	if err := a.Reconfigure(cat); err == nil {
		t.Fatal("reconfigure on crashed site succeeded")
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconfigure(cat); err != nil {
		t.Fatal(err)
	}
	if got := a.Store().ShardCount(); got != 4 {
		t.Fatalf("shard count after recover+reconfigure = %d, want 4", got)
	}
}

// TestReconfigureSurvivesCrashRecovery: state written after a reconfigure
// recovers from the forced-full snapshot plus the post-reconfigure records,
// under the new shard count.
func TestReconfigureSurvivesCrashRecovery(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	ctx := context.Background()

	if out := a.Execute(ctx, []model.Op{model.Write("x", 41)}); !out.Committed {
		t.Fatalf("pre-reconfigure write: %+v", out)
	}
	cat := bump(a)
	cat.Shards = 8
	if err := a.Reconfigure(cat); err != nil {
		t.Fatal(err)
	}
	if out := a.Execute(ctx, []model.Op{model.Write("x", 42)}); !out.Committed {
		t.Fatalf("post-reconfigure write: %+v", out)
	}
	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := a.Store().ShardCount(); got != 8 {
		t.Fatalf("recovered shard count = %d, want 8 (catalog survives recovery)", got)
	}
	out := a.Execute(ctx, []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 42 {
		t.Fatalf("post-recovery read = %+v, want x=42", out)
	}
}

// TestReconfigureSerializesConcurrentBumps: many goroutines racing distinct
// epochs through Reconfigure must apply cleanly in some order — monotone
// epoch, exactly one winner per epoch, data intact.
func TestReconfigureSerializesConcurrentBumps(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	base := a.Catalog().Clone()

	var wg sync.WaitGroup
	applied := make([]error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cat := base.Clone()
			cat.Epoch = base.Epoch + uint64(i) + 1
			cat.Shards = 1 << (uint(i) % 4)
			applied[i] = a.Reconfigure(cat)
		}(i)
	}
	wg.Wait()
	// Every error must be a stale-epoch reject (a higher epoch won first);
	// the final epoch must be the max that succeeded.
	var maxOK uint64
	for i, err := range applied {
		epoch := base.Epoch + uint64(i) + 1
		if err == nil {
			if epoch > maxOK {
				maxOK = epoch
			}
		} else if !errors.Is(err, ErrStaleEpoch) {
			t.Errorf("epoch %d: unexpected error %v", epoch, err)
		}
	}
	if maxOK == 0 {
		t.Fatal("no reconfigure succeeded")
	}
	if got := a.Epoch(); got != maxOK {
		t.Errorf("final epoch = %d, want %d", got, maxOK)
	}
	out := a.Execute(context.Background(), []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 10 {
		t.Fatalf("read after concurrent bumps = %+v", out)
	}
}

// TestReconfigureValidatesCatalog: a catalog that fails validation is
// rejected before any quiesce work.
func TestReconfigureValidatesCatalog(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	cat := bump(a)
	cat.Protocols.CCP = "nope"
	if err := a.Reconfigure(cat); err == nil {
		t.Fatal("invalid catalog accepted")
	}
	if a.Epoch() != 0 {
		t.Errorf("epoch moved on invalid catalog: %d", a.Epoch())
	}
}

// TestReconfigureTimeoutsOnlyAdoptsInPlace: a material but rebuild-free
// change (timeouts) adopts without replacing the store or raising the
// epoch fence.
func TestReconfigureTimeoutsOnlyAdoptsInPlace(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	before := a.Store()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	preTx := model.TxID{Site: "B", Seq: 50}
	if _, err := a.ccm.PreWrite(ctx, preTx, model.Timestamp{Time: 9, Site: "B"}, "x", 5); err != nil {
		t.Fatal(err)
	}

	cat := bump(a)
	cat.Timeouts.Op = 3 * time.Second
	if err := a.Reconfigure(cat); err != nil {
		t.Fatal(err)
	}
	if a.Store() != before {
		t.Error("timeouts-only reconfigure rebuilt the store")
	}
	if a.Epoch() != cat.Epoch {
		t.Errorf("epoch = %d, want %d", a.Epoch(), cat.Epoch)
	}
	// No fence raise: the pre-bump transaction's prepare (epoch 0) with
	// its intact intents still passes.
	v := a.votePrepare(wire.PrepareReq{
		Tx: preTx, Coordinator: "B", Participants: []model.SiteID{"A", "B"},
		Writes: []model.WriteRecord{{Item: "x", Value: 5, Version: 1}},
	})
	if !v.Yes {
		t.Fatalf("pre-bump prepare after timeouts-only change = %+v, want yes", v)
	}
}
