package site

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// BenchmarkPipelineThroughput measures contended-shard saturation
// throughput of the copy-operation command path: open-loop feeders hammer
// one hot item with already-decoded ReadCopy requests (payload decode is
// identical in both designs and runs embarrassingly parallel on transport
// goroutines, so it is excluded to keep the shard path itself in focus).
// "sync" is the pre-pipeline design: every request captures the site-state
// snapshot and runs the full per-operation readCopy on its own goroutine,
// all of them colliding on the site snapshot mutex, the release-tombstone
// map, the Lamport clock and the CC manager, plus a context.WithTimeout
// allocation per admission. "pipelined" demuxes requests onto the item
// shard's single-writer pipeline — feeders block only on queue
// backpressure, so the sequencer drains full batches and pays the
// snapshot, tombstone scan and clock witness once per batch, admitting
// each operation with the non-blocking TryRead. Timestamp-ordering CC
// keeps admission O(1) with no per-transaction lock state, so iterations
// are flat in b.N.
func BenchmarkPipelineThroughput(b *testing.B) {
	req := wire.ReadCopyReq{
		Tx:   model.TxID{Site: "C1", Seq: 1},
		TS:   model.Timestamp{Time: 1, Site: "C1"},
		Item: "hot",
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"sync", true}, {"pipelined", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cat := schema.NewCatalog()
			cat.Sites["S1"] = schema.SiteInfo{ID: "S1"}
			cat.PlaceCopies("hot", 100, "S1")
			cat.Protocols.CCP = "tso"
			st, err := New(Config{
				ID: "S1", Net: simnet.New(simnet.Config{}), Catalog: cat,
				Pipeline: schema.PipelinePolicy{Disable: mode.disable},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()

			var pending sync.WaitGroup
			reply := func(_ wire.MsgKind, _ wire.Body, err error) {
				if err != nil {
					b.Error(err)
				}
				pending.Done()
			}
			var submit func()
			if p := st.pipe.Load(); p != nil {
				sh := int(shard.Hash(req.Item)) & (p.Shards() - 1)
				op := copyOp{from: "C1", kind: wire.KindReadCopy, read: req, reply: reply}
				submit = func() {
					pending.Add(1)
					if err := p.Submit(st.lifeCtx, sh, op); err != nil {
						pending.Done()
						b.Error(err)
					}
				}
			} else {
				submit = func() {
					// The pre-pipeline serve prologue: snapshot the site
					// state under s.mu once per request.
					st.mu.Lock()
					ccm := st.ccm
					runCtx := st.runCtx
					timeouts := st.timeouts
					incarnation := st.incarnation
					st.mu.Unlock()
					if _, err := st.readCopy(ccm, runCtx, timeouts, incarnation, req); err != nil {
						b.Error(err)
					}
				}
			}

			// Contention needs far more outstanding requests than cores:
			// feeders are the queue depth the hot shard actually sees.
			if n := runtime.GOMAXPROCS(0); n < 8 {
				b.SetParallelism(16 * 8 / n)
			} else {
				b.SetParallelism(16)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					submit()
				}
			})
			pending.Wait() // drain the queued tail before the timer stops
			if ps, _ := st.PipelineStats(); ps.Batches > 0 {
				b.ReportMetric(float64(ps.Submitted)/float64(ps.Batches), "ops/batch")
			}
		})
	}
}
