package site

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
	"repro/internal/trace"
)

// TestTraceEndToEndTCP runs sampled write transactions through a real
// loopback-TCP cluster and checks that collating the sites' fragment rings
// reassembles a distributed trace: the home site's root fragment carries the
// exec/op/prepare/decide spans, remote fragments carry the pipeline and WAL
// work their sites did, the transport contributes send-queue spans, and the
// span timings are consistent with the measured end-to-end latency.
func TestTraceEndToEndTCP(t *testing.T) {
	net := tcpnet.New(nil)

	cat := schema.NewCatalog()
	ids := []model.SiteID{"A", "B", "C"}
	for _, id := range ids {
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	cat.ReplicateEverywhere("x", 10)
	cat.ReplicateEverywhere("y", 20)
	cat.Timeouts = schema.Timeouts{
		Op: 2 * time.Second, Vote: 2 * time.Second, Ack: time.Second,
		Lock: time.Second, OrphanResolve: 100 * time.Millisecond,
	}
	ns, err := nameserver.New(net, cat)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	sites := make(map[model.SiteID]*Site)
	for _, id := range ids {
		st, err := New(Config{
			ID: id, Net: net, Register: true,
			Trace: schema.TracePolicy{SampleRate: 1, Ring: 1024},
		})
		if err != nil {
			t.Fatal(err)
		}
		sites[id] = st
	}
	defer func() {
		for _, st := range sites {
			st.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Write transactions: the read-only optimization skips the ACP round, so
	// reads alone would never produce prepare/decide spans.
	latency := make(map[model.TxID]time.Duration)
	committed := 0
	for i := 0; i < 20; i++ {
		begin := time.Now()
		out := sites["A"].Execute(ctx, []model.Op{model.Read("x"), model.Write("y", int64(i))})
		if out.Committed {
			latency[out.Tx] = time.Since(begin)
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no transaction committed over TCP")
	}

	var rings [][]trace.Trace
	for _, id := range ids {
		rings = append(rings, sites[id].Traces())
	}
	groups := trace.Collate(rings...)

	stageOf := func(g []trace.Trace, stage trace.Stage, remoteOnly bool) bool {
		for _, fr := range g {
			if remoteOnly && fr.Root {
				continue
			}
			for _, sp := range fr.Spans {
				if sp.Stage == stage {
					return true
				}
			}
		}
		return false
	}

	checked := 0
	for _, g := range groups {
		root := g[0]
		if !root.Root {
			continue // fragments whose root was evicted or not yet finished
		}
		wall, ok := latency[root.Tx]
		if !ok {
			continue // an aborted/retried attempt
		}
		checked++
		dump := func(msg string) {
			t.Errorf("%s\n%s", msg, trace.Format(g))
		}
		if root.Site != "A" {
			dump("root fragment not at the home site")
			continue
		}

		// Stage coverage: the trace must span the pipeline/CC, WAL, ACP and
		// transport layers, with the CC and WAL work on remote fragments.
		var rootExec, rootOp, rootPrepare, rootDecide time.Duration
		for _, sp := range root.Spans {
			switch sp.Stage {
			case trace.StageExec:
				rootExec = sp.Dur
			case trace.StageOp:
				rootOp += sp.Dur
			case trace.StagePrepare:
				rootPrepare = sp.Dur
			case trace.StageDecide:
				rootDecide = sp.Dur
			}
		}
		if rootExec == 0 || rootOp == 0 {
			dump("root fragment missing exec/op spans")
		}
		if rootPrepare == 0 || rootDecide == 0 {
			dump("root fragment missing the ACP prepare/decide spans")
		}
		if !stageOf(g, trace.StageQueue, true) && !stageOf(g, trace.StageAdmit, true) && !stageOf(g, trace.StageSpill, true) {
			dump("no remote fragment recorded pipeline/CC admission work")
		}
		if !stageOf(g, trace.StageWALAppend, true) {
			dump("no remote fragment recorded a WAL prepare force")
		}
		if !stageOf(g, trace.StageNetQueue, false) {
			dump("no fragment recorded a transport send-queue span")
		}

		// Multi-site coverage: a distributed write must leave fragments on at
		// least two distinct sites.
		distinct := make(map[model.SiteID]bool)
		for _, fr := range g {
			distinct[fr.Site] = true
		}
		if len(distinct) < 2 {
			dump("trace covers fewer than two sites")
		}

		// Timing consistency: the sequential root stages must fit within the
		// exec span, and exec within the measured end-to-end latency. The
		// slack absorbs scheduling between span closes.
		if sum := rootOp + rootPrepare + rootDecide; sum > rootExec+5*time.Millisecond {
			dump("root stage spans exceed the exec span")
		}
		if rootExec > wall+5*time.Millisecond {
			dump("exec span exceeds the measured end-to-end latency")
		}
		for _, fr := range g {
			if fr.Start.Before(root.Start.Add(-5 * time.Millisecond)) {
				dump("a fragment started before its root")
			}
		}
	}
	if checked == 0 {
		t.Fatalf("no committed transaction left a collated trace (groups=%d)", len(groups))
	}

	// The always-on stage histograms aggregated regardless of sampling.
	for _, id := range ids {
		if hs := sites[id].Tracer().StageHistograms(); len(hs) == 0 {
			t.Errorf("site %s has empty stage histograms", id)
		}
	}
}

// traceFootprint replays the span-call footprint one committed write
// transaction leaves on its home site: Begin, two op spans, a queue record,
// the prepare/decide spans, a transport Lookup, Finish. With sampling off
// Begin returns nil and every helper bails before touching the clock, so
// this is the entire per-transaction cost of carrying the instrumentation.
func traceFootprint(tr *trace.Tracer, txid model.TxID) {
	act := tr.Begin(txid)
	for op := 0; op < 2; op++ {
		sp := act.StartSpan(trace.StageOp, "read x")
		sp.End()
	}
	act.Record(trace.StageQueue, time.Time{}, 0, "shard queue")
	prep := act.StartSpan(trace.StagePrepare, "2pc votes")
	prep.End()
	dec := act.StartSpan(trace.StageDecide, "2pc decision")
	dec.End()
	tr.Lookup(act.ID())
	act.Finish()
}

// benchSite builds a one-site instance for the overhead benchmarks.
func benchSite(b *testing.B, policy schema.TracePolicy) *Site {
	b.Helper()
	cat := schema.NewCatalog()
	cat.Sites["S1"] = schema.SiteInfo{ID: "S1"}
	cat.PlaceCopies("hot", 100, "S1")
	st, err := New(Config{
		ID: "S1", Net: simnet.New(simnet.Config{}), Catalog: cat,
		Trace: policy,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

// BenchmarkTraceOverhead holds tracing to its "unsampled ≈ free" contract.
//
// The "gate" sub-benchmark is the CI acceptance check and is machine-
// invariant: it times the unsampled instrumentation footprint (min of
// several pure-CPU rounds, so scheduler noise can only shrink it) and the
// full write-transaction path from the same run, reports their quotient as
// unsampled-overhead-pct, and fails outright above 5%. The margin is ~three
// orders of magnitude (tens of ns against tens of µs), so a clock read or
// allocation leaking ahead of the nil check trips it loudly while runner
// speed cancels out. benchdiff additionally gates drift of the recorded
// percentage against BENCH_baseline.json (see .github/workflows/ci.yml).
//
// The unsampled/sampled pair prices the footprint itself, and
// txn-unsampled/txn-sampled record the end-to-end path both ways for the
// BENCH artifact — informational, since µs-scale cluster work is too noisy
// to hold a 5% bound directly.
func BenchmarkTraceOverhead(b *testing.B) {
	txid := model.TxID{Site: "S1", Seq: 1}

	b.Run("gate", func(b *testing.B) {
		tr := trace.New("S1", trace.Policy{})
		const rounds = 5
		const iters = 1 << 19
		perTx := math.MaxFloat64
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				traceFootprint(tr, txid)
			}
			if d := float64(time.Since(start).Nanoseconds()) / iters; d < perTx {
				perTx = d
			}
		}

		st := benchSite(b, schema.TracePolicy{})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := st.Execute(ctx, []model.Op{model.Write("hot", int64(i))})
			if !out.Committed {
				b.Fatalf("write aborted: %+v", out)
			}
		}
		b.StopTimer()
		txnNS := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		pct := perTx / txnNS * 100
		b.ReportMetric(pct, "unsampled-overhead-pct")
		if pct > 5 {
			b.Fatalf("unsampled tracing overhead %.3f%% of a %.0fns transaction (footprint %.1fns), above the 5%% bound", pct, txnNS, perTx)
		}
	})

	for _, mode := range []struct {
		name   string
		policy trace.Policy
	}{
		{"unsampled", trace.Policy{}},
		{"sampled", trace.Policy{SampleRate: 1, Ring: 1024}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			tr := trace.New("S1", mode.policy)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				traceFootprint(tr, txid)
			}
		})
	}

	for _, mode := range []struct {
		name   string
		policy schema.TracePolicy
	}{
		{"txn-unsampled", schema.TracePolicy{}},
		{"txn-sampled", schema.TracePolicy{SampleRate: 1, Ring: 1024}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st := benchSite(b, mode.policy)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := st.Execute(ctx, []model.Op{model.Write("hot", int64(i))})
				if !out.Committed {
					b.Fatalf("write aborted: %+v", out)
				}
			}
			b.StopTimer()
			if mode.policy.SampleRate > 0 {
				if got := st.Tracer().Stats().Sampled; got < uint64(b.N) {
					b.Fatalf("sampled %d of %d transactions", got, b.N)
				}
			}
		})
	}
}
