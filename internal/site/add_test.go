package site

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/wire"
)

func TestExecuteAddReconciles(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	out := c.sites["A"].Execute(context.Background(), []model.Op{model.Add("x", 5)})
	if !out.Committed {
		t.Fatalf("add outcome = %+v", out)
	}
	for _, id := range c.ids {
		out := c.sites[id].Execute(context.Background(), []model.Op{model.Read("x")})
		if !out.Committed || out.Reads["x"] != 15 {
			t.Errorf("site %s: read = %+v, want x=15", id, out)
		}
	}
}

func TestConcurrentAddsExactSum(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	const perSite = 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	sum := int64(0)
	for _, id := range c.ids {
		wg.Add(1)
		go func(id model.SiteID) {
			defer wg.Done()
			for i := 0; i < perSite; i++ {
				d := int64(i + 1)
				out := c.sites[id].Execute(context.Background(), []model.Op{model.Add("x", d)})
				if out.Committed {
					mu.Lock()
					sum += d
					mu.Unlock()
				}
			}
		}(id)
	}
	wg.Wait()
	if sum == 0 {
		t.Fatal("no adds committed")
	}
	for _, id := range c.ids {
		out := c.sites[id].Execute(context.Background(), []model.Op{model.Read("x")})
		if !out.Committed {
			t.Fatalf("site %s: verify read aborted: %+v", id, out)
		}
		if got := out.Reads["x"]; got != 10+sum {
			t.Errorf("site %s: x = %d, want %d (10 + committed deltas %d)", id, got, 10+sum, sum)
		}
	}
}

func TestMixedAddWriteHistorySerializable(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	committed := make(map[model.TxID]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				home := c.sites[c.ids[(w+i)%len(c.ids)]]
				var ops []model.Op
				switch i % 3 {
				case 0:
					ops = []model.Op{model.Add("x", 1), model.Write("y", int64(w*100+i))}
				case 1:
					ops = []model.Op{model.Read("y"), model.Write("z", int64(w*100+i))}
				default:
					ops = []model.Op{model.Add("x", 2), model.Read("z")}
				}
				out := home.Execute(context.Background(), ops)
				if out.Committed {
					mu.Lock()
					committed[out.Tx] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if len(committed) == 0 {
		t.Fatal("nothing committed")
	}
	var recs []*history.Recorder
	for _, id := range c.ids {
		recs = append(recs, c.sites[id].HistoryRecorder())
	}
	if err := history.CheckSerializable(history.Merge(recs...), committed); err != nil {
		t.Error(err)
	}
}

func TestTxnAddMixingRejected(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	s := c.sites["A"]

	// Read then Add of the same item.
	txn, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read("x"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Add("x", 1); model.CauseOf(err) != model.AbortClient {
		t.Errorf("Add after Read = %v, want client abort", err)
	}
	txn.Abort()

	// Add then Read / Write of the same item.
	txn, err = s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Add("y", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read("y"); model.CauseOf(err) != model.AbortClient {
		t.Errorf("Read after Add = %v, want client abort", err)
	}
	txn.Abort()

	txn, err = s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Add("y", 1); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("y", 9); model.CauseOf(err) != model.AbortClient {
		t.Errorf("Write after Add = %v, want client abort", err)
	}
	txn.Abort()

	// Different items mix freely.
	txn, err = s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Read("x"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Add("y", 3); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write("z", 7); err != nil {
		t.Fatal(err)
	}
	if out := txn.Commit(); !out.Committed {
		t.Fatalf("mixed-item txn aborted: %+v", out)
	}
}

func TestNoHotSplitAblationBehavesLikeWrites(t *testing.T) {
	p := defaultProtocols()
	p.NoHotSplit = true
	c := newCluster(t, 2, p, items())
	for i := 0; i < 5; i++ {
		out := c.sites["A"].Execute(context.Background(), []model.Op{model.Add("x", 2)})
		if !out.Committed {
			t.Fatalf("add %d aborted under ablation: %+v", i, out)
		}
	}
	out := c.sites["B"].Execute(context.Background(), []model.Op{model.Read("x")})
	if !out.Committed || out.Reads["x"] != 20 {
		t.Fatalf("read = %+v, want x=20", out)
	}
	st := c.sites["A"].Stats()
	if st.CCSplits != 0 || st.CCSplitAdds != 0 {
		t.Errorf("ablation split stats: %+v", st)
	}
}

// TestClassifyWrappedContextErrors covers the abort-cause taxonomy fix:
// transports wrap context errors, and classify must use errors.Is, not ==.
func TestClassifyWrappedContextErrors(t *testing.T) {
	cases := []struct {
		err  error
		want model.AbortCause
	}{
		{context.DeadlineExceeded, model.AbortRCP},
		{context.Canceled, model.AbortRCP},
		{fmt.Errorf("rpc to B: %w", context.DeadlineExceeded), model.AbortRCP},
		{fmt.Errorf("attempt: %w", fmt.Errorf("dial: %w", context.Canceled)), model.AbortRCP},
		{fmt.Errorf("plain failure"), model.AbortClient},
		{model.Abortf(model.AbortCC, "lock timeout"), model.AbortCC},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got != tc.want {
			t.Errorf("classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestOrderedOps(t *testing.T) {
	sorted := []model.Op{model.Add("a", 1), model.Add("b", 1), model.Add("c", 1)}
	if got := orderedOps(sorted); &got[0] != &sorted[0] {
		t.Error("already-sorted ops should be returned as-is")
	}
	unsorted := []model.Op{model.Add("c", 1), model.Add("a", 1), model.Add("b", 1)}
	got := orderedOps(unsorted)
	if got[0].Item != "a" || got[1].Item != "b" || got[2].Item != "c" {
		t.Errorf("orderedOps = %v", got)
	}
	if unsorted[0].Item != "c" {
		t.Error("input slice mutated")
	}
	// Duplicate items must keep program order: a read-modify-write pair
	// reordered across another op on the same item changes semantics.
	dup := []model.Op{model.Read("b"), model.Write("a", 1), model.Write("b", 2)}
	if got := orderedOps(dup); &got[0] != &dup[0] {
		t.Error("ops with duplicate items should be returned in program order")
	}
}

// TestStragglerOpForFinishedTxRefusedFast covers the spill-path fix: a copy
// operation arriving for a transaction this site already finished must be
// refused with a terminal error immediately, not collapsed into would-block
// and sent to the blocking path to burn a full lock timeout.
func TestStragglerOpForFinishedTxRefusedFast(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	out := a.Execute(context.Background(), []model.Op{model.Write("x", 1)})
	if !out.Committed {
		t.Fatalf("setup tx aborted: %+v", out)
	}

	start := time.Now()
	_, err := wire.Call[wire.PreWriteResp](context.Background(), a.peer, "B",
		wire.KindPreWrite, &wire.PreWriteReq{
			Tx: out.Tx, TS: model.Timestamp{Time: 99, Site: "A"}, Item: "x", Value: 9,
		})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("straggler pre-write for a finished transaction succeeded")
	}
	if model.CauseOf(err) != model.AbortCC {
		t.Errorf("straggler refusal cause = %v (%v), want CC", model.CauseOf(err), err)
	}
	// The cluster's lock timeout is 500ms; a spilled op would burn all of
	// it before failing.
	if elapsed > 300*time.Millisecond {
		t.Errorf("straggler refusal took %v — it was spilled to the blocking path", elapsed)
	}
}
