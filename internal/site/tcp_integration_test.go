package site

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/tcpnet"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/wlg"
)

// TestTCPDeployment exercises the real multi-process deployment path in one
// process: name server and three sites over TCP with file-backed WALs, site
// registration, a remote workload through the SubmitTx RPC (the WLGlet
// path), and a file-WAL restart.
func TestTCPDeployment(t *testing.T) {
	net := tcpnet.New(nil)

	cat := schema.NewCatalog()
	ids := []model.SiteID{"A", "B", "C"}
	for _, id := range ids {
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	cat.ReplicateEverywhere("x", 10)
	cat.ReplicateEverywhere("y", 20)
	cat.Timeouts = schema.Timeouts{
		Op: 2 * time.Second, Vote: 2 * time.Second, Ack: time.Second,
		Lock: time.Second, OrphanResolve: 100 * time.Millisecond,
	}
	ns, err := nameserver.New(net, cat)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	dir := t.TempDir()
	sites := make(map[model.SiteID]*Site)
	logs := make(map[model.SiteID]string)
	for _, id := range ids {
		logs[id] = filepath.Join(dir, string(id)+".wal")
		fl, err := wal.OpenFile(logs[id], false)
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(Config{ID: id, Net: net, Log: fl, Register: true})
		if err != nil {
			t.Fatal(err)
		}
		sites[id] = st
	}
	defer func() {
		for _, st := range sites {
			st.Close()
		}
	}()

	// Registration reached the name server over TCP.
	if got := len(ns.Catalog().Sites); got != 3 {
		t.Fatalf("registered sites = %d", got)
	}

	// Run a remote workload through the SubmitTx RPC.
	client, err := wire.NewPeer(net, "wlg-client", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	gen := wlg.New(wlg.Profile{
		Sites: ids, Items: []model.ItemID{"x", "y"},
		Transactions: 20, MPL: 2, OpsPerTx: 2, ReadFraction: 0.5, Retries: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res := gen.Run(ctx, wlg.RemoteSubmitter{Peer: client})
	if res.Submitted != 20 {
		t.Fatalf("submitted = %d", res.Submitted)
	}
	if res.Committed == 0 {
		t.Fatalf("nothing committed over TCP: %+v", res.ByCause)
	}

	// Write a marker value and restart site A from its on-disk WAL.
	out := wlg.RemoteSubmitter{Peer: client}.Submit(ctx, "A", []model.Op{model.Write("x", 777)})
	if !out.Committed {
		t.Fatalf("marker write failed: %+v", out)
	}
	addr, _ := net.Addr("A")
	sites["A"].Close()
	net.SetAddr("A", addr)
	fl, err := wal.OpenFile(logs["A"], false)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := New(Config{ID: "A", Net: net, Log: fl})
	if err != nil {
		t.Fatal(err)
	}
	sites["A"] = st2

	read := st2.Execute(ctx, []model.Op{model.Read("x")})
	if !read.Committed || read.Reads["x"] != 777 {
		t.Errorf("read after file-WAL restart = %+v, want x=777", read)
	}
}
