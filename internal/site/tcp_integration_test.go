package site

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/tcpnet"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/wlg"
)

// TestTCPDeployment exercises the real multi-process deployment path in one
// process: name server and three sites over TCP with file-backed WALs, site
// registration, a remote workload through the SubmitTx RPC (the WLGlet
// path), and a file-WAL restart.
func TestTCPDeployment(t *testing.T) {
	net := tcpnet.New(nil)

	cat := schema.NewCatalog()
	ids := []model.SiteID{"A", "B", "C"}
	for _, id := range ids {
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	cat.ReplicateEverywhere("x", 10)
	cat.ReplicateEverywhere("y", 20)
	cat.Timeouts = schema.Timeouts{
		Op: 2 * time.Second, Vote: 2 * time.Second, Ack: time.Second,
		Lock: time.Second, OrphanResolve: 100 * time.Millisecond,
	}
	ns, err := nameserver.New(net, cat)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	dir := t.TempDir()
	sites := make(map[model.SiteID]*Site)
	logs := make(map[model.SiteID]string)
	for _, id := range ids {
		logs[id] = filepath.Join(dir, string(id)+".wal")
		fl, err := wal.OpenFile(logs[id], false)
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(Config{ID: id, Net: net, Log: fl, Register: true})
		if err != nil {
			t.Fatal(err)
		}
		sites[id] = st
	}
	defer func() {
		for _, st := range sites {
			st.Close()
		}
	}()

	// Registration reached the name server over TCP.
	if got := len(ns.Catalog().Sites); got != 3 {
		t.Fatalf("registered sites = %d", got)
	}

	// Run a remote workload through the SubmitTx RPC.
	client, err := wire.NewPeer(net, "wlg-client", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	gen := wlg.New(wlg.Profile{
		Sites: ids, Items: []model.ItemID{"x", "y"},
		Transactions: 20, MPL: 2, OpsPerTx: 2, ReadFraction: 0.5, Retries: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res := gen.Run(ctx, wlg.RemoteSubmitter{Peer: client})
	if res.Submitted != 20 {
		t.Fatalf("submitted = %d", res.Submitted)
	}
	if res.Committed == 0 {
		t.Fatalf("nothing committed over TCP: %+v", res.ByCause)
	}

	// Write a marker value and restart site A from its on-disk WAL.
	out := wlg.RemoteSubmitter{Peer: client}.Submit(ctx, "A", []model.Op{model.Write("x", 777)})
	if !out.Committed {
		t.Fatalf("marker write failed: %+v", out)
	}
	addr, _ := net.Addr("A")
	sites["A"].Close()
	net.SetAddr("A", addr)
	fl, err := wal.OpenFile(logs["A"], false)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := New(Config{ID: "A", Net: net, Log: fl})
	if err != nil {
		t.Fatal(err)
	}
	sites["A"] = st2

	read := st2.Execute(ctx, []model.Op{model.Read("x")})
	if !read.Committed || read.Reads["x"] != 777 {
		t.Errorf("read after file-WAL restart = %+v, want x=777", read)
	}
}

// TestTCPMixedCodecCluster runs a heterogeneous cluster over real TCP:
// sites A and B negotiate the binary body codec between themselves while
// site C pins gob (the net_codec=gob ablation — a stand-in for an old
// binary that predates the CodecHello). Cross-codec traffic must fall back
// to gob in both directions, and the soak-style invariants — every
// submitted transaction decided, committed writes visible, copies of a
// replicated item agreeing at every site — must hold across the codec
// boundary.
func TestTCPMixedCodecCluster(t *testing.T) {
	binNet := tcpnet.New(nil)
	gobNet := tcpnet.NewWithOptions(nil, tcpnet.Options{Codec: "gob"})

	cat := schema.NewCatalog()
	ids := []model.SiteID{"A", "B", "C"}
	for _, id := range ids {
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	cat.ReplicateEverywhere("x", 10)
	cat.ReplicateEverywhere("y", 20)
	cat.Timeouts = schema.Timeouts{
		Op: 2 * time.Second, Vote: 2 * time.Second, Ack: time.Second,
		Lock: time.Second, OrphanResolve: 100 * time.Millisecond,
	}

	nets := map[model.SiteID]*tcpnet.Net{"A": binNet, "B": binNet, "C": gobNet}
	sites := make(map[model.SiteID]*Site)
	for _, id := range ids {
		st, err := New(Config{ID: id, Net: nets[id], Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		sites[id] = st
	}
	defer func() {
		for _, st := range sites {
			st.Close()
		}
	}()
	// Each net resolved its own listeners' ports; cross-populate so the
	// two address books cover the whole cluster.
	for _, id := range ids {
		addr, ok := nets[id].Addr(id)
		if !ok {
			t.Fatalf("site %s has no resolved address", id)
		}
		for _, other := range []*tcpnet.Net{binNet, gobNet} {
			if other != nets[id] {
				other.SetAddr(id, addr)
			}
		}
	}

	client, err := wire.NewPeer(binNet, "wlg-client", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Mixed workload across all three homes: every write 2PC-prepares at
	// all sites (items replicate everywhere), so A↔B runs binary while
	// A→C, B→C and all of C's outbound traffic crosses the codec boundary.
	gen := wlg.New(wlg.Profile{
		Sites: ids, Items: []model.ItemID{"x", "y"},
		Transactions: 30, MPL: 3, OpsPerTx: 2, ReadFraction: 0.5, Retries: 3,
	})
	res := gen.Run(ctx, wlg.RemoteSubmitter{Peer: client})
	if res.Submitted != 30 {
		t.Fatalf("submitted = %d", res.Submitted)
	}
	if res.Committed == 0 {
		t.Fatalf("nothing committed across the codec boundary: %+v", res.ByCause)
	}

	// Marker write homed at the gob-pinned site: its prepares and decisions
	// all travel gob→binary.
	out := wlg.RemoteSubmitter{Peer: client}.Submit(ctx, "C", []model.Op{model.Write("x", 4242)})
	if !out.Committed {
		t.Fatalf("write homed at gob site failed: %+v", out)
	}

	// Copy agreement: every site's copy of x must converge on the marker
	// value (decision propagation to remote participants is asynchronous,
	// so poll briefly).
	deadline := time.Now().Add(5 * time.Second)
	for _, id := range ids {
		for {
			read := sites[id].Execute(ctx, []model.Op{model.Read("x")})
			if read.Committed && read.Reads["x"] == 4242 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("site %s copy of x = %+v, want 4242", id, read)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Negotiation outcome: the pinned side must never have sent a binary
	// body, while the negotiating side used both codecs — binary toward its
	// binary peer, gob toward the pinned one.
	if st := gobNet.NetStats(); st.SentBinaryBodies != 0 || st.SentGobBodies == 0 {
		t.Errorf("gob-pinned net codec counters: %+v", st)
	}
	if st := binNet.NetStats(); st.SentBinaryBodies == 0 || st.SentGobBodies == 0 {
		t.Errorf("negotiating net should have used both codecs: %+v", st)
	}
}
