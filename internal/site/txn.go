package site

import (
	"context"
	"errors"
	"time"

	"repro/internal/acp"
	"repro/internal/model"
	"repro/internal/rcp"
	"repro/internal/schema"
	"repro/internal/trace"
)

// Txn is an interactive transaction at its home site: the caller interleaves
// Read and Write calls with its own logic (computing transfer amounts from
// balances just read, for example) and finishes with Commit or Abort. The
// one-shot Execute API is built on top of it.
type Txn struct {
	s    *Site
	tx   model.TxID
	ts   model.Timestamp
	sess *rcp.Session

	catalog  *schema.Catalog
	rcpProto rcp.Protocol
	acpProto acp.Protocol
	timeouts schema.Timeouts

	ctx    context.Context
	cancel context.CancelFunc
	start  time.Time
	reads  map[model.ItemID]int64
	// wrote/added track which items this transaction wrote resp. blind-
	// added (lazily allocated). Mixing Add with Read/Write of the same
	// item in one transaction is rejected: an add's delta record and a
	// write's absolute record cannot merge in the session write set, and
	// an add-after-read defeats the point of the blind add anyway (the
	// read already holds the exclusive-with-readers lock — callers who
	// read should just Write the computed value).
	wrote    map[model.ItemID]bool
	added    map[model.ItemID]bool
	doomed   error
	finished bool
	// act is the transaction's sampled trace (nil for the untraced common
	// case — every span call then no-ops without reading the clock). It
	// rides t.ctx, so remote calls stamp its ID on their envelopes.
	act *trace.Active
}

// Begin admits a new transaction at this home site, dedicating the calling
// goroutine to it (paper §2.1). It fails if the site is crashed.
func (s *Site) Begin(ctx context.Context) (*Txn, error) {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return nil, model.Abortf(model.AbortClient, "site %s is down", s.id)
	}
	s.seq++
	t := &Txn{
		s:        s,
		tx:       model.TxID{Site: s.id, Seq: s.seq},
		ts:       s.clock.Now(),
		catalog:  s.catalog,
		rcpProto: s.rcpProto,
		acpProto: s.acpProto,
		timeouts: s.timeouts,
		start:    time.Now(),
		reads:    make(map[model.ItemID]int64),
	}
	runCtx := s.runCtx
	s.mu.Unlock()

	t.sess = rcp.NewSession(t.tx, t.ts)
	t.ctx, t.cancel = mergeContexts(ctx, runCtx)
	t.act = s.tracer.Begin(t.tx)
	t.ctx = trace.NewContext(t.ctx, t.act)
	s.stats.TxBegin()
	return t, nil
}

// ID returns the transaction's id.
func (t *Txn) ID() model.TxID { return t.tx }

// Read performs a logical read through the replication control protocol.
// After any operation fails the transaction is doomed: further operations
// return the same abort and Commit turns into Abort.
func (t *Txn) Read(item model.ItemID) (int64, error) {
	if err := t.usable(); err != nil {
		return 0, err
	}
	meta, ok := t.catalog.Items[item]
	if !ok {
		t.doomed = model.Abortf(model.AbortClient, "unknown item %s", item)
		return 0, t.doomed
	}
	if t.added[item] {
		t.doomed = model.Abortf(model.AbortClient, "cannot read %s after blind-adding it in the same transaction", item)
		return 0, t.doomed
	}
	opCtx, cancel := context.WithTimeout(t.ctx, 3*t.timeouts.Op)
	defer cancel()
	sp := t.act.StartSpan(trace.StageOp, "read "+string(item))
	v, err := t.rcpProto.Read(opCtx, t.s, t.sess, meta)
	sp.End()
	if err != nil {
		t.doomed = err
		return 0, err
	}
	t.reads[item] = v
	return v, nil
}

// Write performs a logical write through the replication control protocol.
func (t *Txn) Write(item model.ItemID, value int64) error {
	if err := t.usable(); err != nil {
		return err
	}
	meta, ok := t.catalog.Items[item]
	if !ok {
		t.doomed = model.Abortf(model.AbortClient, "unknown item %s", item)
		return t.doomed
	}
	if t.added[item] {
		t.doomed = model.Abortf(model.AbortClient, "cannot write %s after blind-adding it in the same transaction", item)
		return t.doomed
	}
	opCtx, cancel := context.WithTimeout(t.ctx, 3*t.timeouts.Op)
	defer cancel()
	sp := t.act.StartSpan(trace.StageOp, "write "+string(item))
	err := t.rcpProto.Write(opCtx, t.s, t.sess, meta, value)
	sp.End()
	if err != nil {
		t.doomed = err
		return err
	}
	if t.wrote == nil {
		t.wrote = make(map[model.ItemID]bool)
	}
	t.wrote[item] = true
	return nil
}

// Add performs a logical blind add: delta is reconciled into the item's
// committed value at commit time without reading it first. Adds commute, so
// under 2PL a hot item's adds can run lock-free through split execution
// (Doppel-style); under TSO/MVTSO they are ordinary timestamped intents.
// Repeated adds of one item merge their deltas. Mixing Add with Read or
// Write of the same item in one transaction is rejected with AbortClient.
func (t *Txn) Add(item model.ItemID, delta int64) error {
	if err := t.usable(); err != nil {
		return err
	}
	meta, ok := t.catalog.Items[item]
	if !ok {
		t.doomed = model.Abortf(model.AbortClient, "unknown item %s", item)
		return t.doomed
	}
	if _, read := t.reads[item]; read || t.wrote[item] {
		t.doomed = model.Abortf(model.AbortClient, "cannot blind-add %s after reading or writing it in the same transaction", item)
		return t.doomed
	}
	opCtx, cancel := context.WithTimeout(t.ctx, 3*t.timeouts.Op)
	defer cancel()
	sp := t.act.StartSpan(trace.StageOp, "add "+string(item))
	err := t.rcpProto.Add(opCtx, t.s, t.sess, meta, delta)
	sp.End()
	if err != nil {
		t.doomed = err
		return err
	}
	if t.added == nil {
		t.added = make(map[model.ItemID]bool)
	}
	t.added[item] = true
	return nil
}

func (t *Txn) usable() error {
	if t.finished {
		return model.Abortf(model.AbortClient, "transaction %s already finished", t.tx)
	}
	return t.doomed
}

// finishedOutcome is returned by operations on an already-finished
// transaction without touching the statistics again.
func (t *Txn) finishedOutcome() model.Outcome {
	return model.Outcome{Tx: t.tx, Committed: false, Cause: model.AbortClient, HomeSite: t.s.id}
}

// Commit drives the atomic commit protocol over every touched site and
// returns the final outcome. A doomed transaction aborts instead.
func (t *Txn) Commit() model.Outcome {
	if t.finished {
		return t.finishedOutcome()
	}
	if t.doomed != nil {
		return t.Abort()
	}
	defer t.cancel()
	t.finished = true

	participants := t.sess.Participants()
	if len(participants) == 0 {
		return t.outcome(true, model.AbortNone)
	}

	s := t.s
	s.mu.Lock()
	s.activeCoord[t.tx] = true
	coordLog := s.coordLog
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.activeCoord, t.tx)
		s.mu.Unlock()
	}()

	// The termination electorate: participants holding writes. With the
	// read-only optimization off every participant logs a prepared record
	// and may carry termination state, so all of them count.
	voters := t.sess.WriteSites()
	if t.catalog.Protocols.NoReadOnlyOpt {
		voters = participants
	}
	req := acp.Request{
		Tx:            t.tx,
		TS:            t.ts,
		Coordinator:   s.id,
		Participants:  participants,
		Voters:        voters,
		WritesFor:     t.sess.WritesFor,
		NoReadOnlyOpt: t.catalog.Protocols.NoReadOnlyOpt,
		// The begin-time epoch, for the participants' epoch fence: a site
		// that live-rebuilt past it refuses to prepare this transaction.
		Epoch: t.catalog.Epoch,
		// Per-site incarnations observed during copy operations, for the
		// participants' incarnation fence.
		IncarnationFor: t.sess.IncarnationFor,
	}
	// coordLog routes the decision force through the participant, which
	// records the outcome and applies it locally under the checkpoint gate,
	// so no separate onDecision bookkeeping is needed.
	committed, err := t.acpProto.Commit(t.ctx, s, coordLog,
		acp.Options{Vote: t.timeouts.Vote, Ack: t.timeouts.Ack},
		req, nil)

	// Stray sites — attempted during quorum building but never enlisted —
	// may hold CC state from operations that completed after the
	// coordinator gave up on them; release them regardless of outcome. On
	// abort, release the participants as well: one whose prepare was lost
	// to a fault holds pre-write/read CC state but no prepared record, so
	// neither in-doubt resolution nor recovery will ever free it — and the
	// abort decision that would have released it may have been lost to the
	// same fault. The release is idempotent (the abort decision is
	// durable; a participant that already applied it just no-ops).
	if !committed {
		if errors.Is(err, acp.ErrInDoubt) {
			// 3PC could not assemble its pre-commit quorum: the outcome is
			// legitimately unresolved and belongs to quorum termination.
			// The cohort's prepared state MUST survive (the transaction
			// may yet commit); only strays are safe to release.
			s.releaseStrays(t.sess)
			return t.outcome(false, classify(err))
		}
		s.releaseEverywhere(t.sess) // participants + strays
		return t.outcome(false, classify(err))
	}
	s.releaseStrays(t.sess)
	return t.outcome(true, model.AbortNone)
}

// Abort discards the transaction, releasing CC state at every touched site.
func (t *Txn) Abort() model.Outcome {
	if t.finished {
		return t.finishedOutcome()
	}
	t.finished = true
	defer t.cancel()
	t.s.releaseEverywhere(t.sess)
	cause := model.AbortClient
	if t.doomed != nil {
		cause = classify(t.doomed)
	}
	return t.outcome(false, cause)
}

func (t *Txn) outcome(committed bool, cause model.AbortCause) model.Outcome {
	latency := time.Since(t.start)
	t.s.stats.TxDone(committed, cause, latency)
	if t.act != nil {
		note := "committed"
		if !committed {
			note = "aborted: " + cause.String()
		}
		t.act.Record(trace.StageExec, t.start, latency, note)
		t.act.Finish()
	}
	reads := t.reads
	if !committed {
		reads = nil
	}
	return model.Outcome{
		Tx:        t.tx,
		Committed: committed,
		Cause:     cause,
		LatencyNS: int64(latency),
		Reads:     reads,
		HomeSite:  t.s.id,
	}
}
