package site

import (
	"context"
	"fmt"

	"repro/internal/cc"
	"repro/internal/model"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/trace"
	"repro/internal/wire"
)

// serve dispatches inbound requests. It runs on transport goroutines. tid
// is the request's distributed-trace ID (zero for the untraced common
// case): traced copy operations and prepares record a local trace fragment
// under it, joined with the home site's fragment by ID at collation time.
func (s *Site) serve(from model.SiteID, tid trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
	s.mu.Lock()
	if s.crashed {
		// Belt and braces: the network layer already drops traffic to a
		// crashed site; refuse anything that slips through.
		s.mu.Unlock()
		return 0, nil, errCrashed
	}
	ccm := s.ccm
	part := s.part
	runCtx := s.runCtx
	timeouts := s.timeouts
	// The incarnation is captured together with the CC manager so the
	// number reported on copy-operation responses names the incarnation
	// that actually protects the operation.
	incarnation := s.incarnation
	s.mu.Unlock()

	switch kind {
	case wire.KindPing:
		return wire.KindOK, &wire.OKBody{}, nil

	case wire.KindReadCopy:
		var req wire.ReadCopyReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		act := s.tracer.Join(tid, req.Tx)
		defer act.Finish()
		sp := act.StartSpan(trace.StageAdmit, "read "+string(req.Item))
		resp, err := s.readCopy(ccm, trace.NewContext(runCtx, act), timeouts, incarnation, req)
		sp.End()
		if err != nil {
			return 0, nil, err
		}
		return wire.KindReadCopy, &resp, nil

	case wire.KindPreWrite:
		var req wire.PreWriteReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		if s.isReleased(req.Tx) {
			return 0, nil, model.Abortf(model.AbortCC, "transaction %s already released", req.Tx)
		}
		act := s.tracer.Join(tid, req.Tx)
		defer act.Finish()
		s.clock.Witness(req.TS)
		ctx, cancel := context.WithTimeout(trace.NewContext(runCtx, act), timeouts.Lock)
		defer cancel()
		label, pre := "pre-write ", ccm.PreWrite
		if req.Add {
			label, pre = "pre-add ", ccm.PreAdd
		}
		sp := act.StartSpan(trace.StageAdmit, label+string(req.Item))
		ver, err := pre(ctx, req.Tx, req.TS, req.Item, req.Value)
		sp.End()
		if err != nil {
			return 0, nil, err
		}
		if s.isReleased(req.Tx) {
			ccm.Abort(req.Tx)
			return 0, nil, model.Abortf(model.AbortCC, "transaction %s already released", req.Tx)
		}
		return wire.KindPreWrite, &wire.PreWriteResp{Version: ver, Clock: s.clock.Peek(), Incarnation: incarnation}, nil

	case wire.KindReleaseTx:
		var req wire.ReleaseTxReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		s.tombstone(req.Tx)
		ccm.Abort(req.Tx)
		return wire.KindOK, &wire.OKBody{}, nil

	case wire.KindPrepare:
		var req wire.PrepareReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		s.clock.Witness(req.TS)
		act := s.tracer.Join(tid, req.Tx)
		sp := act.StartSpan(trace.StageWALAppend, "prepare force")
		resp := s.votePrepare(req)
		sp.End()
		act.Finish()
		return wire.KindVote, &resp, nil

	case wire.KindPreCommit:
		var req wire.PreCommitReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		// The ack promises a FORCED pre-commit (the coordinator counts it
		// toward the commit quorum); a failed force must not ack.
		if err := s.handlePreCommit(req.Tx); err != nil {
			return 0, nil, err
		}
		return wire.KindAck, &wire.AckMsg{Tx: req.Tx}, nil

	case wire.KindTermQuery:
		var req wire.TermQueryReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		resp := s.handleTermQuery(req.Tx, req.Ballot)
		return wire.KindTermQuery, &resp, nil

	case wire.KindTermPreDecide:
		var req wire.TermPreDecideReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		resp := s.handlePreDecide(req.Tx, req.Ballot, req.Commit)
		return wire.KindTermPreDecide, &resp, nil

	case wire.KindDecision:
		var req wire.DecisionMsg
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		if err := part.HandleDecision(req.Tx, req.Commit); err != nil {
			return 0, nil, err
		}
		return wire.KindAck, &wire.AckMsg{Tx: req.Tx}, nil

	case wire.KindEndTx:
		var req wire.EndTxMsg
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		// The cohort fully acknowledged: the decision entry is dead weight
		// (nobody will ask again); drop it so snapshots stop mirroring it.
		part.Retire(req.Tx)
		return wire.KindOK, &wire.OKBody{}, nil

	case wire.KindDecisionReq:
		var req wire.DecisionReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		commit, known := s.localDecision(req.Tx, req.ThreePhase)
		return wire.KindDecision, &wire.DecisionResp{Known: known, Commit: commit}, nil

	case wire.KindTermState:
		// Legacy cooperative-termination probe: nothing in this version
		// sends it (quorum termination replaced the cooperative protocol),
		// but the kind keeps its wire number and this answer keeps
		// mixed-version peers from erroring.
		var req wire.TermStateReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		return wire.KindTermState, &wire.TermStateResp{State: part.HandleTermState(req.Tx)}, nil

	case wire.KindSubmitTx:
		var req wire.SubmitTxReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		outcome := s.Execute(runCtx, req.Ops)
		return wire.KindSubmitTx, &wire.SubmitTxResp{Outcome: outcome}, nil

	case wire.KindCatalogPush:
		var req nameserver.CatalogPushMsg
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		// Reconfigure quiesces and rebuilds; never on a transport goroutine.
		// Stale pushes (a racing poll already applied the epoch) are the
		// expected no-op; real failures surface on the next poll tick.
		cat := req.Catalog
		go s.Reconfigure(&cat) //nolint:errcheck
		return wire.KindOK, &wire.OKBody{}, nil

	case wire.KindGetStats:
		return wire.KindGetStats, &StatsResp{Stats: s.Stats()}, nil

	case wire.KindResetStats:
		s.ResetStats()
		return wire.KindOK, &wire.OKBody{}, nil

	case wire.KindGetHistory:
		return wire.KindGetHistory, &HistoryResp{Events: s.History()}, nil

	default:
		return 0, nil, fmt.Errorf("site %s: unhandled message kind %s", s.id, kind)
	}
}

// readCopy is the synchronous ReadCopy path, shared by serve and the
// pipeline ablation: tombstone check, clock witness, blocking CC admission
// under the lock timeout, and the release re-check that undoes a read a
// concurrent release raced past. The caller passes the site-state snapshot
// it captured under s.mu so one serve dispatch reads it exactly once.
func (s *Site) readCopy(ccm cc.Manager, runCtx context.Context, timeouts schema.Timeouts, incarnation uint64, req wire.ReadCopyReq) (wire.ReadCopyResp, error) {
	if s.isReleased(req.Tx) {
		return wire.ReadCopyResp{}, model.Abortf(model.AbortCC, "transaction %s already released", req.Tx)
	}
	s.clock.Witness(req.TS)
	ctx, cancel := context.WithTimeout(runCtx, timeouts.Lock)
	defer cancel()
	v, ver, err := ccm.Read(ctx, req.Tx, req.TS, req.Item)
	if err != nil {
		return wire.ReadCopyResp{}, err
	}
	if s.isReleased(req.Tx) {
		// The release raced past the in-flight read: undo and refuse.
		ccm.Abort(req.Tx)
		return wire.ReadCopyResp{}, model.Abortf(model.AbortCC, "transaction %s already released", req.Tx)
	}
	s.hist.Record(req.Tx, model.OpRead, req.Item, v, ver)
	return wire.ReadCopyResp{Value: v, Version: ver, Clock: s.clock.Peek(), Incarnation: incarnation}, nil
}
