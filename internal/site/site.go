// Package site implements a Rainbow site: the full transaction-processing
// node of the system. Each site is simultaneously
//
//   - a home site: it admits transactions, dedicates a goroutine to each
//     (the paper's "one thread"), drives the RCP per operation, and runs
//     the ACP as coordinator (paper §2.1);
//   - a participant: it serves copy reads and pre-writes through its CCP,
//     votes in commit protocols, applies decisions, and answers decision /
//     termination-state queries;
//   - a recoverable store: a crash discards all volatile state (locks,
//     intents, commit-protocol states, in-flight coordination) while the
//     WAL survives; recovery rebuilds the store, re-protects in-doubt
//     transactions and resolves them through the commit protocol's
//     termination paths.
package site

import (
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/acp"
	"repro/internal/cc"
	"repro/internal/checkpoint"
	"repro/internal/clock"
	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/nameserver"
	"repro/internal/pipeline"
	"repro/internal/rcp"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/tcpnet"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/wire"
)

// StatsResp carries a site's statistics snapshot (PMlet traffic).
type StatsResp struct {
	Stats monitor.SiteStats
}

// HistoryResp carries a site's local execution history (PMlet traffic).
type HistoryResp struct {
	Events []history.Event
}

// The monitoring bodies are cold-path (one stats poll per report interval)
// and deeply structured, so they ride the gob escape hatch rather than a
// hand-rolled encoding: the wire.Body implementation just wraps gob bytes,
// which keeps them off the reflection-free hot path guarantees without
// maintaining ~60 field encoders.

// Kind implements wire.Body.
func (r *StatsResp) Kind() wire.MsgKind { return wire.KindGetStats }

// AppendTo implements wire.Body.
func (r *StatsResp) AppendTo(buf []byte) []byte { return wire.AppendGob(buf, r) }

// DecodeFrom implements wire.Body.
func (r *StatsResp) DecodeFrom(p []byte) error { return wire.DecodeGob(p, r) }

// Kind implements wire.Body.
func (r *HistoryResp) Kind() wire.MsgKind { return wire.KindGetHistory }

// AppendTo implements wire.Body.
func (r *HistoryResp) AppendTo(buf []byte) []byte { return wire.AppendGob(buf, r) }

// DecodeFrom implements wire.Body.
func (r *HistoryResp) DecodeFrom(p []byte) error { return wire.DecodeGob(p, r) }

func init() {
	// gob registrations stay for interop with gob-codec peers.
	gob.Register(StatsResp{})
	gob.Register(HistoryResp{})
	wire.RegisterBody(wire.KindGetStats, true, func() wire.Body { return &StatsResp{} })
	wire.RegisterBody(wire.KindGetHistory, true, func() wire.Body { return &HistoryResp{} })
}

// Config configures a site.
type Config struct {
	ID  model.SiteID
	Net wire.Network
	// Log is the site's WAL; nil selects a fresh in-memory log.
	Log wal.Log
	// Catalog provides the configuration directly; when nil the site
	// fetches it from the name server at start.
	Catalog *schema.Catalog
	// Register, when true, records the site's endpoint with the name
	// server at start.
	Register bool
	// Addr is the endpoint specification reported on registration.
	Addr string
	// Shards sets the data-plane shard count (storage shards and 2PL lock
	// stripes); <= 0 selects a GOMAXPROCS-derived default.
	Shards int
	// Checkpoint sets the checkpoint/compaction policy; zero values fall
	// back to the catalog's policy. Checkpointing engages only when the WAL
	// supports compaction (the segmented and in-memory logs; the legacy
	// single-file JSON log does not).
	Checkpoint schema.CheckpointPolicy
	// Pipeline sets the per-shard command-pipeline policy for the copy-
	// operation hot path; zero fields fall back to the catalog's policy.
	Pipeline schema.PipelinePolicy
	// Snapshots overrides the checkpoint snapshot store. Nil selects the
	// WAL's segment directory for segmented logs and an in-memory store
	// (surviving simulated crashes alongside the memory log) otherwise.
	Snapshots checkpoint.Store
	// CatalogPoll, when positive, makes the site probe the name server's
	// catalog epoch at this interval and reconfigure itself live when the
	// epoch moved — the pull half of online reconfiguration (the push half
	// is the name server's catalog broadcast). Zero disables polling.
	CatalogPoll time.Duration
	// Trace sets the per-site transaction-tracing policy; zero fields fall
	// back to the catalog's policy.
	Trace schema.TracePolicy
}

// Site is one Rainbow site.
type Site struct {
	id model.SiteID
	// net is the transport the site attached through; Stats probes it for
	// optional coalescing-sender counters (the tcpnet backend implements
	// them; the simulated network does not).
	net    wire.Network
	peer   *wire.Peer
	clock  *clock.Clock
	stats  *monitor.Collector
	hist   *history.Recorder
	shards int

	// tracer owns the site's per-stage latency histograms and the sampled
	// per-transaction trace fragments. Like the stats collector it is set
	// once at New and survives crashes and reconfigurations; policy changes
	// adopt in place.
	tracer   *trace.Tracer
	traceCfg schema.TracePolicy

	// snaps is the checkpoint snapshot store; like the WAL it survives
	// simulated crashes (set once at New).
	snaps   checkpoint.Store
	ckptCfg schema.CheckpointPolicy
	pipeCfg schema.PipelinePolicy
	poll    time.Duration

	// pipe is the per-shard command pipeline for the copy-operation hot path
	// (nil when disabled); swapped whole on every stack rebuild. Atomic
	// because serveAsync reads it on transport goroutines. pipeSpills counts
	// contended operations that left their sequencer for a blocking-path
	// goroutine.
	pipe       atomic.Pointer[pipeline.Pipeline[copyOp]]
	pipeSpills atomic.Uint64

	// gate is the site's snapshot/quiesce interlock, owned here for the
	// site's whole lifetime and shared with every checkpoint-manager
	// incarnation and the decision pipeline: record-forcing paths hold it
	// in read mode, fuzzy snapshots take it in write mode for the O(shards)
	// seal, and online reconfiguration write-locks it across the whole
	// stack rebuild so the WAL read observes a quiescent record stream.
	gate *sync.RWMutex

	// reconfigMu serializes live reconfigurations with each other and with
	// crash recovery (both rebuild the protocol stack).
	reconfigMu sync.Mutex

	mu          sync.Mutex
	log         wal.Log
	coordLog    wal.Log
	catalog     *schema.Catalog
	store       *storage.Store
	ccm         cc.Manager
	part        *acp.Participant
	ckpt        *checkpoint.Manager
	rcpProto    rcp.Protocol
	acpProto    acp.Protocol
	timeouts    schema.Timeouts
	seq         uint64
	activeCoord map[model.TxID]bool
	// recoveryRecords/recoveryNS describe the last (re)start: how many
	// retained WAL records were replayed and how long the rebuild took.
	recoveryRecords uint64
	recoveryNS      int64
	// ckptAccum accumulates checkpoint counters from previous incarnations
	// (each recovery builds a fresh manager); ckptBase window-scopes the
	// accumulated totals for ResetStats.
	ckptAccum checkpoint.Stats
	ckptBase  checkpoint.Stats
	// ccAccum accumulates CC-manager counters from previous stack
	// incarnations (every rebuild constructs a fresh manager); ccBase
	// window-scopes the totals for ResetStats, like ckptBase.
	ccAccum cc.Stats
	ccBase  cc.Stats
	// reconfigures counts completed live catalog reconfigurations.
	reconfigures uint64
	// incarnation identifies this protocol-stack incarnation: bumped on
	// EVERY rebuild (boot, crash recovery, live reconfiguration), reported
	// on copy-operation responses and echoed back in prepares, so a
	// prepare whose CC protection died with a previous incarnation is
	// rejected exactly (not just by the conservative intent heuristic or
	// the epoch fence). Wall-clock seeded, so it is monotone across real
	// process restarts without needing its own durable record.
	incarnation uint64
	// fence is the epoch fence: the catalog epoch of the last LIVE stack
	// rebuild. A live rebuild discards concurrency-control state exactly
	// like a crash, but unlike a crash the affected transactions keep
	// running — so this site refuses to prepare any transaction begun
	// under an older epoch (its locks here may be gone, and preparing it
	// could let two conflicting writers commit the same version). Cold
	// rebuilds (boot, crash recovery) leave the fence alone: there is no
	// epoch marker separating pre-crash transactions, and registration
	// skew must not fence freshly booted clusters.
	fence uint64
	// ckptCancel stops just the checkpoint trigger loop (reconfiguration
	// swaps the manager under a running site; crash/close cancel runCtx,
	// which this context descends from). ckptWG waits it out.
	ckptCancel context.CancelFunc
	ckptWG     sync.WaitGroup
	// released tombstones aborted transactions so a straggling copy
	// operation that races with its own ReleaseTx cannot leak CC state.
	released map[model.TxID]time.Time
	// walBaseFlushes/walBaseRecords snapshot the WAL's cumulative
	// group-commit counters at the last ResetStats, so SiteStats reports
	// them window-scoped like every other counter.
	walBaseFlushes uint64
	walBaseRecords uint64
	// releasesAbandoned counts release-retry loops that exhausted their
	// attempts and gave up, leaving cleanup to the remote presumed-abort
	// janitor. Nonzero values mean remote CC state stayed locked for a
	// janitor sweep longer than it should have.
	releasesAbandoned     atomic.Uint64
	releasesAbandonedBase uint64
	crashed               bool
	runCtx                context.Context
	runCancel             context.CancelFunc
	// lifeCtx spans the site OBJECT's lifetime (cancelled by Close only,
	// not by simulated crashes): background release retries ride it, so a
	// crash does not silently drop an aborted transaction's pending
	// releases — the network fabric already enforces fail-stop by
	// dropping a paused site's sends, and once the site resumes the
	// retries flush, unsticking remote CC state the abort left behind.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	resolveWG  sync.WaitGroup
}

// isReleased reports whether tx was already released/aborted here, and
// lazily prunes old tombstones.
func (s *Site) isReleased(tx model.TxID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.released[tx]
	return ok
}

// tombstone marks tx released.
func (s *Site) tombstone(tx model.TxID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.released) > 8192 {
		cutoff := time.Now().Add(-time.Minute)
		for t, at := range s.released {
			if at.Before(cutoff) {
				delete(s.released, t)
			}
		}
	}
	s.released[tx] = time.Now()
}

// New attaches a site to the network and brings it online. If the WAL
// already contains records (a restart), recovery runs before the site
// serves traffic.
func New(cfg Config) (*Site, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("site: empty id")
	}
	log := cfg.Log
	if log == nil {
		log = wal.NewMemory()
	}
	snaps := cfg.Snapshots
	if snaps == nil {
		switch l := log.(type) {
		case *wal.SegmentedLog:
			snaps = checkpoint.NewDirStore(l.Dir())
		case *wal.MemoryLog:
			snaps = checkpoint.NewMemStore()
		}
	}
	s := &Site{
		id:          cfg.ID,
		net:         cfg.Net,
		clock:       clock.New(cfg.ID),
		stats:       monitor.NewCollector(cfg.ID),
		hist:        history.NewRecorder(cfg.ID),
		shards:      cfg.Shards,
		snaps:       snaps,
		ckptCfg:     cfg.Checkpoint,
		pipeCfg:     cfg.Pipeline,
		poll:        cfg.CatalogPoll,
		gate:        new(sync.RWMutex),
		log:         log,
		tracer:      trace.New(cfg.ID, trace.Policy{}),
		traceCfg:    cfg.Trace,
		activeCoord: make(map[model.TxID]bool),
		released:    make(map[model.TxID]time.Time),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())

	// The WAL reports per-flush force-write timings into the always-on
	// wal_fsync stage histogram (one atomic load per flush when unobserved).
	if ol, ok := log.(wal.Observable); ok {
		tr := s.tracer
		ol.SetFlushObserver(func(d time.Duration, _ uint64) {
			tr.Observe(trace.StageWALFsync, d)
		})
	}
	// Transports that understand tracing (tcpnet) attach send-queue and
	// flush spans to in-flight envelopes via the registered tracer.
	if rt, ok := cfg.Net.(interface {
		RegisterTracer(model.SiteID, *trace.Tracer)
	}); ok {
		rt.RegisterTracer(cfg.ID, s.tracer)
	}

	peer, err := wire.NewPeer(cfg.Net, cfg.ID, s.serve)
	if err != nil {
		return nil, fmt.Errorf("site %s: %w", cfg.ID, err)
	}
	s.peer = peer

	catalog := cfg.Catalog
	if catalog == nil {
		catalog, err = s.fetchCatalog()
		if err != nil {
			peer.Close()
			return nil, fmt.Errorf("site %s: %w", cfg.ID, err)
		}
	}
	if err := s.configure(catalog); err != nil {
		peer.Close()
		return nil, fmt.Errorf("site %s: %w", cfg.ID, err)
	}
	// The stack exists: copy operations may now take the pipelined path
	// (serveAsync declines everything until rebuild installs a pipeline).
	peer.SetAsyncServe(s.serveAsync)

	if cfg.Register {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := nameserver.Register(ctx, peer, cfg.ID, cfg.Addr); err != nil {
			peer.Close()
			return nil, err
		}
	}
	s.startResolver()
	s.startCheckpointer()
	s.startCatalogPoller()
	return s, nil
}

// fetchCatalog retries the name server briefly to tolerate start ordering.
func (s *Site) fetchCatalog() (*schema.Catalog, error) {
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		cat, err := nameserver.Fetch(ctx, s.peer)
		cancel()
		if err == nil {
			return cat, nil
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	return nil, fmt.Errorf("catalog fetch failed: %w", lastErr)
}

// configure (re)builds the site's protocol stack from a catalog. Recovery
// is bounded: the newest valid checkpoint snapshot (torn ones are skipped)
// seeds the store and decision table, and only the retained WAL records are
// scanned — redo applies records at/after the snapshot's horizon, while
// retained records below it surface in-doubt transactions for termination.
// Called at start and during recovery.
func (s *Site) configure(catalog *schema.Catalog) error {
	return s.rebuild(catalog, false)
}

// rebuild is the shared stack (re)build behind configure (cold: boot and
// crash recovery, where the site serves no traffic and volatile state is
// legitimately gone) and Reconfigure (live: the site keeps serving, the
// participant survives the swap, and the rebuild runs under the site gate's
// write side so the quiesced decision pipeline cannot race the WAL read).
func (s *Site) rebuild(catalog *schema.Catalog, live bool) error {
	timeouts := catalog.Timeouts.WithDefaults()
	recoveryStart := time.Now()

	// Per-site config wins; otherwise the catalog's experiment-wide shard
	// knob applies (this is how name-server-fetched sites receive it).
	shards := s.shards
	if shards <= 0 {
		shards = catalog.Shards
	}

	if live {
		// Quiesce the decision pipeline: every record-forcing path
		// (prepare, decision, end) holds the gate's read side, so the write
		// lock waits out in-flight forces and blocks new ones. Reads and
		// pre-writes keep flowing against the old stack; from here the log
		// is a stable stream whose effects at/after the forced snapshot's
		// horizon are exactly what the new store must redo.
		s.gate.Lock()
		defer s.gate.Unlock()
	}
	store := storage.NewSharded(shards)

	// The newest recoverable snapshot chain (full + consecutive valid
	// deltas; a torn delta falls back one link) composes into one image.
	var snap *checkpoint.Snapshot
	if s.snaps != nil {
		var err error
		if snap, err = checkpoint.Latest(s.snaps); err != nil {
			return err
		}
	}
	recs, err := s.log.ReadAll()
	if err != nil {
		return err
	}
	var snapItems map[model.ItemID]storage.Copy
	var horizon uint64
	if snap != nil {
		snapItems, horizon = snap.Items, snap.Horizon
	}
	inDoubt, err := store.RecoverRecords(catalog.LocalItems(s.id), snapItems, horizon, recs)
	if err != nil {
		return err
	}
	ccm, err := cc.New(catalog.Protocols.CCP, store, cc.Options{
		LockTimeout:              timeouts.Lock,
		DisableDeadlockDetection: catalog.Protocols.NoDeadlockDetection,
		NoSplit:                  catalog.Protocols.NoHotSplit,
		Shards:                   shards,
		Tracer:                   s.tracer,
	})
	if err != nil {
		return err
	}
	rcpProto, err := rcp.New(catalog.Protocols.RCP)
	if err != nil {
		return err
	}
	acpProto, err := acp.New(catalog.Protocols.ACP)
	if err != nil {
		return err
	}

	var part *acp.Participant
	if live {
		// The participant survives a live reconfiguration: its decision
		// table and in-doubt protocol states (including 3PC pre-committed)
		// are current in memory, and keeping the object means handler
		// goroutines that captured it before the swap keep routing through
		// the NEW applier — no decision can install into the dead store.
		part = s.part
		for _, r := range inDoubt {
			// The WAL surfaces a pinned Prepared record as in-doubt even
			// when the live table already knows the outcome; skip those.
			if _, decided := part.Decision(r.Tx); decided {
				continue
			}
			// Re-protect the write set in the new CC manager. A transaction
			// still held in memory keeps its live state; one found only in
			// the WAL (compacted decision, pre-reconfigure incarnation) is
			// restored as freshly prepared.
			if err := ccm.Reinstate(r.Tx, r.TS, r.Writes); err != nil {
				return err
			}
			if !part.Prepared(r.Tx) {
				part.Restore(wire.PrepareReq{
					Tx:           r.Tx,
					TS:           r.TS,
					Coordinator:  r.Coordinator,
					Participants: r.Participants,
					Voters:       r.Voters,
					Writes:       r.Writes,
				}, r.ThreePhase)
				restoreTermState(part, r)
			}
		}
		part.SetApplier(&applierWithHistory{cc: ccm, hist: s.hist})
	} else {
		part = acp.NewParticipant(s.id, s.log, &applierWithHistory{cc: ccm, hist: s.hist})
		part.UseGate(s.gate)
		var snapDecisions map[model.TxID]bool
		if snap != nil {
			snapDecisions = snap.DecisionMap()
			part.SeedDecisions(snapDecisions)
		}
		part.RestoreDecisions(recs)
		for _, r := range inDoubt {
			// A transaction can look in-doubt from the retained records
			// alone — its Prepared record pinned in a kept segment, its
			// decision record compacted away — while the snapshot's
			// decision table knows the outcome (and, for commits, the
			// snapshot already carries its effects). Don't re-lock those;
			// they are decided.
			if _, decided := snapDecisions[r.Tx]; decided {
				continue
			}
			if err := ccm.Reinstate(r.Tx, r.TS, r.Writes); err != nil {
				return err
			}
			part.Restore(wire.PrepareReq{
				Tx:           r.Tx,
				TS:           r.TS,
				Coordinator:  r.Coordinator,
				Participants: r.Participants,
				Voters:       r.Voters,
				Writes:       r.Writes,
			}, r.ThreePhase)
			restoreTermState(part, r)
		}
	}

	// The checkpoint manager engages when the WAL supports compaction; the
	// site-owned gate threads into it so fuzzy snapshots serialize with the
	// decision pipeline across manager incarnations.
	var mgr *checkpoint.Manager
	if cl, ok := s.log.(wal.Compactable); ok && s.snaps != nil {
		// Per-site knobs merge over the catalog's experiment-wide policy:
		// the automatic triggers fall back as a pair (a site with no local
		// trigger defers to the catalog's — even when its capture knobs are
		// set, e.g. by rainbow-site's -checkpoint-delta-max default), and
		// the capture knobs fall back field-wise. DeltaMax 0 defers,
		// negative explicitly forces full snapshots; NoCOW merges as a
		// union of disable requests.
		pol := s.ckptCfg
		if !pol.Enabled() {
			pol.Bytes, pol.Interval = catalog.Checkpoint.Bytes, catalog.Checkpoint.Interval
		}
		if pol.DeltaMax == 0 {
			pol.DeltaMax = catalog.Checkpoint.DeltaMax
		}
		pol.NoCOW = pol.NoCOW || catalog.Checkpoint.NoCOW
		pol.NoDirtyItems = pol.NoDirtyItems || catalog.Checkpoint.NoDirtyItems
		store.TrackDirtyItems(!pol.NoDirtyItems)
		mgr = checkpoint.NewManager(store, cl, s.snaps, part.DecisionTable,
			checkpoint.Policy{Bytes: pol.Bytes, Interval: pol.Interval, DeltaMax: pol.DeltaMax, NoCOW: pol.NoCOW})
		mgr.ShareGate(s.gate)
	}

	// A fresh incarnation for the fresh stack: any CC protection granted by
	// the previous incarnation is gone, so prepares carrying its number
	// must be rejected. Wall-clock seeding keeps it monotone across real
	// process restarts; max() guards against clock steps within one.
	incarnation := uint64(time.Now().UnixNano())
	s.mu.Lock()
	if incarnation <= s.incarnation {
		incarnation = s.incarnation + 1
	}
	if live && s.crashed {
		// A crash won the race against this reconfiguration: its recovery
		// owns the next rebuild; installing ours now would resurrect state
		// read before the crash.
		s.mu.Unlock()
		return fmt.Errorf("crashed during reconfiguration")
	}
	if s.ckpt != nil {
		old := s.ckpt.Stats()
		s.ckptAccum.Checkpoints += old.Checkpoints
		s.ckptAccum.Deltas += old.Deltas
		s.ckptAccum.SegmentsCompacted += old.SegmentsCompacted
	}
	if s.ccm != nil {
		addCCStats(&s.ccAccum, s.ccm.Stats())
	}
	s.catalog = catalog
	s.store = store
	s.ccm = ccm
	s.part = part
	s.ckpt = mgr
	s.incarnation = incarnation
	if live {
		s.fence = catalog.Epoch
	}
	s.coordLog = coordLog{Log: s.log, part: part}
	s.recoveryRecords = uint64(len(recs))
	s.recoveryNS = int64(time.Since(recoveryStart))
	s.rcpProto = rcpProto
	s.acpProto = acpProto
	s.timeouts = timeouts
	// Transaction ids must never repeat across site incarnations: peers
	// keep tombstones and decisions for the previous incarnation's ids.
	// Seeding the sequence from the wall clock guarantees monotonicity
	// across restarts (aborted transactions leave no WAL trace to scan).
	if now := uint64(time.Now().UnixNano()); s.seq < now {
		s.seq = now
	}
	s.mu.Unlock()

	// Install the new stack's command pipeline, merging the site-local
	// policy over the catalog's (field-wise, like the checkpoint policy).
	// Outside s.mu: closing the displaced pipeline waits out in-flight
	// batches, which take s.mu.
	pol := s.pipeCfg
	pol.Disable = pol.Disable || catalog.Pipeline.Disable
	if pol.Depth <= 0 {
		pol.Depth = catalog.Pipeline.Depth
	}
	if pol.MaxBatch <= 0 {
		pol.MaxBatch = catalog.Pipeline.MaxBatch
	}
	s.swapPipeline(pol, store.ShardCount())
	s.adoptTracePolicy(catalog)
	return nil
}

// adoptTracePolicy merges the site-local trace config over the catalog's
// (field-wise, like the checkpoint policy) and installs it on the tracer in
// place — no quiesce or rebuild is ever needed for a tracing change.
func (s *Site) adoptTracePolicy(catalog *schema.Catalog) {
	pol := s.traceCfg
	if pol.SampleRate == 0 {
		pol.SampleRate = catalog.Trace.SampleRate
	}
	if pol.Ring == 0 {
		pol.Ring = catalog.Trace.Ring
	}
	if pol.SlowMS == 0 {
		pol.SlowMS = catalog.Trace.SlowMS
	}
	s.tracer.SetPolicy(trace.Policy{
		SampleRate:    pol.SampleRate,
		Ring:          pol.Ring,
		SlowThreshold: time.Duration(pol.SlowMS) * time.Millisecond,
	})
}

// Tracer exposes the site's tracer (trace export, slow-trace hooks, tests).
func (s *Site) Tracer() *trace.Tracer { return s.tracer }

// Traces snapshots the site's ring of completed trace fragments,
// oldest-first.
func (s *Site) Traces() []trace.Trace { return s.tracer.Snapshot() }

// restoreTermState re-installs a recovered 3PC transaction's logged
// termination state (promised ballot, accepted pre-decision) so the member
// rejoins quorum termination where it left off instead of as freshly
// prepared.
func restoreTermState(part *acp.Participant, r storage.RecoveredTx) {
	if !r.ThreePhase {
		return
	}
	state := acp.StatePrepared
	if !r.EB.IsZero() {
		if r.PreDecide {
			state = acp.StatePreCommitted
		} else {
			state = acp.StatePreAborted
		}
	}
	part.RestoreTermState(r.Tx, state, r.EA, r.EB)
}

// Incarnation returns the site's current stack-incarnation number.
func (s *Site) Incarnation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incarnation
}

// ErrStaleEpoch rejects a Reconfigure whose catalog is not newer than the
// site's current one (a reordered push, a duplicate poll, an administrator
// replaying an old configuration).
var ErrStaleEpoch = fmt.Errorf("stale catalog epoch")

// Reconfigure applies a newer catalog version to a running site without a
// restart: quiesce the decision pipeline under the checkpoint gate, force a
// full snapshot at the current horizon, rebuild the protocol stack (shard
// count, item placement, protocols, checkpoint policy) and restore the
// store from that snapshot plus the records forced after it. Committed data
// survives, in-doubt transactions carry across (still terminated via
// 2PC/3PC), and reads/pre-writes keep being served throughout. Concurrency
// control state of not-yet-prepared transactions does not survive the swap
// — exactly the crash contract, minus the downtime and the log replay.
func (s *Site) Reconfigure(catalog *schema.Catalog) error {
	if err := catalog.Validate(); err != nil {
		return fmt.Errorf("site %s: reconfigure: %w", s.id, err)
	}
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	s.mu.Lock()
	cur := s.catalog
	crashed := s.crashed
	ckpt := s.ckpt
	s.mu.Unlock()
	if crashed {
		return fmt.Errorf("site %s is down", s.id)
	}
	if catalog.Epoch <= cur.Epoch {
		return fmt.Errorf("site %s: %w: got %d, have %d", s.id, ErrStaleEpoch, catalog.Epoch, cur.Epoch)
	}
	diff := catalog.DiffFrom(cur)
	if !diff.Material() {
		// The epoch moved without touching any site-local structure (site
		// registrations do this): adopt the metadata, skip the rebuild.
		s.mu.Lock()
		s.catalog = catalog
		s.mu.Unlock()
		return nil
	}
	if !diff.RequiresRebuild() {
		// Timeouts and/or trace policy only: adopt in place — no quiesce,
		// no snapshot, no fence raise (nothing is wiped). New transactions
		// pick the timeouts up at Begin; the running resolver ticker keeps
		// its old OrphanResolve interval until the next rebuild.
		s.mu.Lock()
		s.catalog = catalog
		s.timeouts = catalog.Timeouts.WithDefaults()
		s.reconfigures++
		s.mu.Unlock()
		s.adoptTracePolicy(catalog)
		return nil
	}

	// Stop the trigger loop first so the old manager cannot race the
	// rebuild, then force a full snapshot at the current horizon: the
	// rebuild restores from one self-contained image and redoes only the
	// records forced after it.
	s.stopCheckpointer()
	if ckpt != nil {
		if err := ckpt.CheckpointFull(); err != nil {
			s.startCheckpointer()
			return fmt.Errorf("site %s: reconfigure snapshot: %w", s.id, err)
		}
	}
	if err := s.rebuild(catalog, true); err != nil {
		s.startCheckpointer() // the old stack stays installed
		return fmt.Errorf("site %s: reconfigure: %w", s.id, err)
	}
	s.mu.Lock()
	s.reconfigures++
	s.mu.Unlock()
	s.startCheckpointer()
	return nil
}

// coordLog is the WAL face handed to the atomic commit protocols when this
// site coordinates: decision records route through the participant's
// ForceDecision so the force-write and the local adoption (decision table +
// install) are one unit under the checkpoint gate, and end records route
// through ForceEnd so the fully-acknowledged transaction's decision-table
// entry retires under the same gate; everything else passes straight
// through.
type coordLog struct {
	wal.Log
	part *acp.Participant
}

// Append implements wal.Log.
func (c coordLog) Append(r wal.Record) error {
	switch r.Type {
	case wal.RecDecision:
		return c.part.ForceDecision(r)
	case wal.RecEnd:
		return c.part.ForceEnd(r)
	}
	return c.Log.Append(r)
}

// applierWithHistory records committed writes in the execution history
// before installing them through the CC manager.
type applierWithHistory struct {
	cc   cc.Manager
	hist *history.Recorder
}

func (a *applierWithHistory) Commit(tx model.TxID, writes []model.WriteRecord) error {
	for _, w := range writes {
		// Delta records are logged as OpAdd, not OpWrite: concurrent split
		// adds share one coordinator-assigned install version, and the MVSG
		// checker (rightly) flags duplicate versions among ordinary writes.
		// Adds commute, so they carry no precedence edges of their own; the
		// checker skips OpAdd events and the delta-sum invariant tests cover
		// their value exactness instead.
		kind := model.OpWrite
		if w.Delta {
			kind = model.OpAdd
		}
		a.hist.Record(tx, kind, w.Item, w.Value, w.Version)
	}
	return a.cc.Commit(tx, writes)
}

// addCCStats accumulates a CC manager's counters into acc (managers are
// discarded wholesale on every stack rebuild, so totals must be carried
// across incarnations by hand, like checkpoint stats).
func addCCStats(acc *cc.Stats, s cc.Stats) {
	acc.Reads += s.Reads
	acc.PreWrites += s.PreWrites
	acc.Rejections += s.Rejections
	acc.Deadlocks += s.Deadlocks
	acc.Timeouts += s.Timeouts
	acc.Waits += s.Waits
	acc.Adds += s.Adds
	acc.SplitAdds += s.SplitAdds
	acc.Splits += s.Splits
	acc.Drains += s.Drains
}

func (a *applierWithHistory) Abort(tx model.TxID) { a.cc.Abort(tx) }

// ID returns the site's id.
func (s *Site) ID() model.SiteID { return s.id }

// Stats snapshots the site's statistics including the current orphan count,
// the data-plane shard / WAL group-commit counters, the checkpoint and
// log-volume gauges, and the last recovery's replay cost.
func (s *Site) Stats() monitor.SiteStats {
	s.mu.Lock()
	part := s.part
	store := s.store
	log := s.log
	ckpt := s.ckpt
	ccm := s.ccm
	baseFlushes, baseRecords := s.walBaseFlushes, s.walBaseRecords
	ckptAccum, ckptBase := s.ckptAccum, s.ckptBase
	ccAccum, ccBase := s.ccAccum, s.ccBase
	releasesAbandonedBase := s.releasesAbandonedBase
	recoveryRecords, recoveryNS := s.recoveryRecords, s.recoveryNS
	var epoch uint64
	if s.catalog != nil {
		epoch = s.catalog.Epoch
	}
	reconfigures := s.reconfigures
	s.mu.Unlock()
	orphans := 0
	if part != nil {
		orphans = part.InDoubtCount()
	}
	stats := s.stats.Snapshot(orphans)
	if store != nil {
		stats.Shards = store.ShardCount()
		for _, sh := range store.ShardStats() {
			stats.StoreShards = append(stats.StoreShards, monitor.ShardStat{
				Items: sh.Items, Hits: sh.Hits, Installs: sh.Installs,
			})
		}
	}
	if bs, ok := log.(wal.BatchStats); ok {
		flushes, records := bs.BatchStats()
		stats.WALFlushes = flushes - baseFlushes
		stats.WALRecords = records - baseRecords
	}
	if cl, ok := log.(wal.Compactable); ok {
		stats.WALSegments = cl.Segments()
		stats.WALBytes = cl.SizeBytes()
	}
	if ckpt != nil {
		cs := ckpt.Stats()
		ckptAccum.Checkpoints += cs.Checkpoints
		ckptAccum.Deltas += cs.Deltas
		ckptAccum.SegmentsCompacted += cs.SegmentsCompacted
		stats.CheckpointHorizon = cs.LastHorizon
		stats.CheckpointPauseNS = int64(cs.LastPause)
		stats.DirtyShards = ckpt.PendingDirty()
	}
	if part != nil {
		stats.Decisions = part.DecisionCount()
	}
	stats.Checkpoints = ckptAccum.Checkpoints - min(ckptBase.Checkpoints, ckptAccum.Checkpoints)
	stats.CheckpointDeltas = ckptAccum.Deltas - min(ckptBase.Deltas, ckptAccum.Deltas)
	stats.SegmentsCompacted = ckptAccum.SegmentsCompacted - min(ckptBase.SegmentsCompacted, ckptAccum.SegmentsCompacted)
	if ccm != nil {
		addCCStats(&ccAccum, ccm.Stats())
		if sp, ok := ccm.(interface{ SplitItems() int }); ok {
			stats.SplitItems = sp.SplitItems()
		}
	}
	stats.CCAdds = ccAccum.Adds - min(ccBase.Adds, ccAccum.Adds)
	stats.CCSplitAdds = ccAccum.SplitAdds - min(ccBase.SplitAdds, ccAccum.SplitAdds)
	stats.CCSplits = ccAccum.Splits - min(ccBase.Splits, ccAccum.Splits)
	stats.CCDrains = ccAccum.Drains - min(ccBase.Drains, ccAccum.Drains)
	ra := s.releasesAbandoned.Load()
	stats.ReleasesAbandoned = ra - min(releasesAbandonedBase, ra)
	stats.RecoveryRecords = recoveryRecords
	stats.RecoveryNS = recoveryNS
	stats.Epoch = epoch
	stats.Reconfigures = reconfigures
	ps, spills := s.PipelineStats()
	stats.PipeDepth = ps.Depth
	stats.PipeSubmitted = ps.Submitted
	stats.PipeBatches = ps.Batches
	stats.PipeMaxBatch = ps.MaxBatch
	stats.PipeStalls = ps.Stalls
	stats.PipeSpills = spills
	if ns, ok := s.net.(interface{ NetStats() tcpnet.Stats }); ok {
		n := ns.NetStats()
		stats.NetSentEnvelopes = n.SentEnvelopes
		stats.NetSendFlushes = n.SentFlushes
		stats.NetRecvEnvelopes = n.RecvEnvelopes
		stats.NetRecvFrames = n.RecvFrames
		stats.NetSendSheds = n.SendSheds
		stats.NetLegacyConns = n.LegacyConns
		stats.NetSentBytes = n.SentBytes
		stats.NetBinaryBodies = n.SentBinaryBodies
		stats.NetGobBodies = n.SentGobBodies
	}
	stats.Stages = s.tracer.StageHistograms()
	ts := s.tracer.Stats()
	stats.TraceSampled = ts.Sampled
	stats.TraceFragments = ts.Fragments
	stats.TraceEvicted = ts.Evicted
	stats.TraceSlow = ts.Slow
	return stats
}

// ResetStats zeroes the statistics window, including the WAL, checkpoint
// and per-shard counters' baselines.
func (s *Site) ResetStats() {
	s.stats.Reset()
	s.tracer.ResetStages()
	s.mu.Lock()
	if bs, ok := s.log.(wal.BatchStats); ok {
		s.walBaseFlushes, s.walBaseRecords = bs.BatchStats()
	}
	s.ckptBase = s.ckptAccum
	if s.ckpt != nil {
		cs := s.ckpt.Stats()
		s.ckptBase.Checkpoints += cs.Checkpoints
		s.ckptBase.Deltas += cs.Deltas
		s.ckptBase.SegmentsCompacted += cs.SegmentsCompacted
	}
	s.ccBase = s.ccAccum
	if s.ccm != nil {
		addCCStats(&s.ccBase, s.ccm.Stats())
	}
	s.releasesAbandonedBase = s.releasesAbandoned.Load()
	store := s.store
	s.mu.Unlock()
	if store != nil {
		store.ResetShardStats()
	}
}

// Checkpoint takes a fuzzy snapshot of the store now, pins the replay
// horizon, and compacts the WAL — the manual trigger next to the automatic
// byte/interval policies. It serializes with Reconfigure (reconfigMu): the
// old manager snapshotting the frozen pre-reshard store at a post-rebuild
// durable LSN would claim coverage of installs that only the new store
// holds, and a recovery restoring that snapshot would lose them. (The
// background trigger loop needs no such guard — Reconfigure stops it and
// waits it out before rebuilding.)
func (s *Site) Checkpoint() error {
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	s.mu.Lock()
	ckpt := s.ckpt
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return fmt.Errorf("site %s is down", s.id)
	}
	if ckpt == nil {
		return fmt.Errorf("site %s: WAL backend does not support checkpoints", s.id)
	}
	return ckpt.Checkpoint()
}

// CheckpointStats reports the checkpoint manager's counters (zero when
// checkpointing is unsupported).
func (s *Site) CheckpointStats() checkpoint.Stats {
	s.mu.Lock()
	ckpt := s.ckpt
	s.mu.Unlock()
	if ckpt == nil {
		return checkpoint.Stats{}
	}
	return ckpt.Stats()
}

// History snapshots the site's local execution history.
func (s *Site) History() []history.Event { return s.hist.Events() }

// HistoryRecorder exposes the recorder for cluster-level merging.
func (s *Site) HistoryRecorder() *history.Recorder { return s.hist }

// Store returns the current copy store (for monitors and tests).
func (s *Site) Store() *storage.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// Catalog returns the site's current catalog.
func (s *Site) Catalog() *schema.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.catalog
}

// Epoch returns the epoch of the site's current catalog.
func (s *Site) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.catalog == nil {
		return 0
	}
	return s.catalog.Epoch
}

// Reconfigures counts completed live catalog reconfigurations.
func (s *Site) Reconfigures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconfigures
}

// DecisionTable returns a copy of the participant's current decision table
// (the soak harness's cross-site agreement invariant reads it).
func (s *Site) DecisionTable() map[model.TxID]bool {
	s.mu.Lock()
	part := s.part
	s.mu.Unlock()
	if part == nil {
		return nil
	}
	return part.DecisionTable()
}

// InDoubtCount reports the site's current number of blocked in-doubt
// transactions (the paper's orphans).
func (s *Site) InDoubtCount() int {
	s.mu.Lock()
	part := s.part
	s.mu.Unlock()
	if part == nil {
		return 0
	}
	return part.InDoubtCount()
}

// Crash simulates a site failure: all volatile state is lost and the site
// stops processing. The WAL survives. Use together with the network-level
// pause so the crashed site is also unreachable.
func (s *Site) Crash() {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return
	}
	s.crashed = true
	s.runCancel()
	s.log.Close() // stale handler goroutines can no longer force records
	s.mu.Unlock()
	s.resolveWG.Wait()
	s.ckptWG.Wait()
}

// Crashed reports whether the site is currently down.
func (s *Site) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Recover brings a crashed site back: the WAL is replayed, committed writes
// reinstalled, in-doubt transactions re-protected, and the resolver loop
// restarted to drive them to an outcome.
func (s *Site) Recover() error {
	// Serialize with live reconfiguration: both rebuild the stack, and a
	// reconfigure that lost the race against the crash must not install its
	// pre-crash reads over the recovery's rebuild.
	s.reconfigMu.Lock()
	defer s.reconfigMu.Unlock()
	s.mu.Lock()
	if !s.crashed {
		s.mu.Unlock()
		return fmt.Errorf("site %s: not crashed", s.id)
	}
	if ml, ok := s.log.(*wal.MemoryLog); ok {
		ml.Reopen()
	}
	catalog := s.catalog
	s.mu.Unlock()

	if err := s.configure(catalog); err != nil {
		return err
	}
	s.mu.Lock()
	s.crashed = false
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.mu.Unlock()
	s.startResolver()
	s.startCheckpointer()
	s.startCatalogPoller()
	return nil
}

// Close shuts the site down permanently.
func (s *Site) Close() error {
	s.mu.Lock()
	crashed := s.crashed
	s.crashed = true
	s.runCancel()
	s.lifeCancel()
	s.mu.Unlock()
	// Drain and stop the command pipeline (queued operations get their
	// crashed-refusal replies); blocked Submits error out on lifeCtx.
	if p := s.pipe.Swap(nil); p != nil {
		p.Close()
	}
	s.resolveWG.Wait()
	s.ckptWG.Wait()
	if !crashed {
		s.log.Close()
	}
	return s.peer.Close()
}

// startCheckpointer runs the checkpoint manager's trigger loop for this
// incarnation (a no-op when checkpointing is unsupported or no automatic
// trigger is configured). The loop's context descends from runCtx (crash
// and close still stop it) but has its own cancel so a live reconfiguration
// can stop just this loop while the site keeps serving.
func (s *Site) startCheckpointer() {
	s.mu.Lock()
	ckpt := s.ckpt
	// A crashed site starts nothing, and the WaitGroup Add happens inside
	// the same critical section that checks crashed: Crash() flips the
	// flag under s.mu BEFORE waiting on ckptWG, so the Add either
	// happened-before that Wait (counted) or this start observes crashed
	// and skips — never an Add racing a Wait-from-zero.
	if ckpt == nil || s.crashed {
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.runCtx)
	s.ckptCancel = cancel
	s.ckptWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.ckptWG.Done()
		ckpt.Run(ctx)
	}()
}

// stopCheckpointer halts the background checkpoint loop and waits it out —
// reconfiguration is about to replace the manager it drives.
func (s *Site) stopCheckpointer() {
	s.mu.Lock()
	cancel := s.ckptCancel
	s.ckptCancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.ckptWG.Wait()
}

// startCatalogPoller runs the catalog staleness probe: every poll interval,
// fetch the name server's epoch and reconfigure live when it moved past the
// site's. The poll is the delivery guarantee behind the name server's
// best-effort push — a site that was partitioned, crashed or simply missed
// the cast converges as soon as it can reach the name server again.
func (s *Site) startCatalogPoller() {
	s.mu.Lock()
	ctx := s.runCtx
	interval := s.poll
	s.mu.Unlock()
	if interval <= 0 {
		return
	}
	s.resolveWG.Add(1)
	go func() {
		defer s.resolveWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				s.pollCatalog(ctx)
			}
		}
	}()
}

// pollCatalog performs one staleness probe tick.
func (s *Site) pollCatalog(ctx context.Context) {
	s.mu.Lock()
	cur := s.catalog.Epoch
	s.mu.Unlock()
	ectx, cancel := context.WithTimeout(ctx, time.Second)
	epoch, err := nameserver.FetchEpoch(ectx, s.peer)
	cancel()
	if err != nil || epoch <= cur {
		return
	}
	fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	cat, err := nameserver.Fetch(fctx, s.peer)
	cancel()
	if err != nil {
		return
	}
	// A racing push may already have applied this epoch; the stale-epoch
	// reject below is then the expected outcome, and real failures surface
	// again next tick.
	s.Reconfigure(cat) //nolint:errcheck
}

// startResolver runs the orphan-resolution loop: periodically try to decide
// in-doubt transactions via decision requests / cooperative termination.
func (s *Site) startResolver() {
	s.mu.Lock()
	ctx := s.runCtx
	interval := s.timeouts.OrphanResolve
	part := s.part
	s.mu.Unlock()

	s.resolveWG.Add(1)
	go func() {
		defer s.resolveWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				for _, tx := range part.InDoubt(interval) {
					rctx, cancel := context.WithTimeout(ctx, interval)
					part.Resolve(rctx, s, tx)
					cancel()
				}
				s.janitorSweep(ctx)
			}
		}
	}()
}

// janitorAge is the stranded-holder threshold the CC janitor applies,
// derived from the lock timeout: CC state older than this that never
// prepared cannot belong to a healthy transaction (operations and lock
// waits are all bounded well below it).
func janitorAge(t schema.Timeouts) time.Duration {
	return 10 * t.Lock
}

// janitorSweep is the CC-level janitor: unprepared CC state (locks,
// buffered intents) stranded at this site — its home aborted and the
// release was lost, or the home process died outright, taking its
// in-process release retries with it — is found by age and freed by
// presumed-abort-querying the home. Site-local cleanup: it survives a real
// home-process death, unlike the home's bounded retry loop.
//
// Safety: prepared (in-doubt) transactions are the ACP termination path's
// property and are never touched. The final not-prepared re-check and the
// release run under the site gate's WRITE side, which votePrepare's
// check+force excludes — a prepare racing the janitor either lands before
// (the re-check sees it and skips) or after (the tombstone makes it vote
// no); it can never interleave. A presumed-abort answer for a transaction
// that is merely slow costs that transaction an abort at prepare time —
// never an inconsistency.
func (s *Site) janitorSweep(ctx context.Context) {
	s.mu.Lock()
	ccm := s.ccm
	part := s.part
	timeouts := s.timeouts
	s.mu.Unlock()
	if ccm == nil || part == nil {
		return
	}
	// One bounded query per UNREACHABLE home per sweep: a dead home with
	// many stranded transactions must not serialize N timeouts.Op waits
	// through the resolver goroutine (in-doubt resolution shares it).
	deadHomes := make(map[model.SiteID]bool)
	for _, tx := range ccm.Holders(janitorAge(timeouts)) {
		if part.Prepared(tx) {
			continue // in-doubt: ACP termination owns it
		}
		s.mu.Lock()
		active := s.activeCoord[tx]
		s.mu.Unlock()
		if active {
			continue // our own commit round is running
		}
		var known bool
		if _, decided := part.Decision(tx); decided {
			// Outcome known locally: whatever unprepared state remains is
			// stray (a decided cohort member would have been prepared).
			known = true
		} else if tx.Site == s.id {
			_, known = s.localDecision(tx, false)
		} else {
			if deadHomes[tx.Site] {
				continue // already timed out this sweep: retry next tick
			}
			qctx, cancel := context.WithTimeout(ctx, timeouts.Op)
			var err error
			known, _, err = s.QueryDecision(qctx, tx.Site, tx, false)
			cancel()
			if err != nil {
				deadHomes[tx.Site] = true
				continue // home unreachable: retry next tick
			}
		}
		if !known {
			continue // the home is alive and still deciding — leave it
		}
		// The outcome is known (an abort, a presumed abort, or a commit
		// that never enlisted this site — a participant would hold a
		// prepared record, checked above). Either way the unprepared state
		// is garbage. Tombstone, then re-check under the gate's write side
		// so no prepare can interleave.
		s.gate.Lock()
		if !part.Prepared(tx) {
			s.tombstone(tx)
			ccm.Abort(tx)
		}
		s.gate.Unlock()
	}
}
