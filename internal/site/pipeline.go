package site

import (
	"context"
	"errors"
	"time"

	"repro/internal/cc"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/wire"
)

// The copy-operation hot path (reads and pre-writes — the paper's RCP
// traffic, the bulk of every workload) runs through per-shard single-writer
// pipelines instead of the synchronous serve path: the transport hands the
// request to serveAsync, which decodes it and demuxes it by item shard onto
// a bounded queue; one sequencer goroutine per shard drains operations in
// batches and runs copyBatch, which pays the site-state snapshot, tombstone
// scans, clock witnessing and reply flush once per batch. Admission uses the
// CC managers' non-blocking TryRead/TryPreWrite so a contended operation
// never stalls its whole shard: it spills to a goroutine running the
// original blocking path, exactly preserving the synchronous semantics.
//
// Everything else (prepares, decisions, control traffic) keeps the
// synchronous path: those force WAL records under the checkpoint gate and
// already batch at the group-commit layer.

// copyOp is one queued copy operation. Exactly one of read/write is set,
// selected by kind. tid carries the request's distributed-trace ID and enq
// its submit time (UnixNano; stamped only for traced requests, so the
// untraced hot path never reads the clock here).
type copyOp struct {
	from  model.SiteID
	kind  wire.MsgKind
	read  wire.ReadCopyReq
	write wire.PreWriteReq
	reply wire.ReplyFunc
	tid   trace.ID
	enq   int64
}

func (o *copyOp) tx() model.TxID {
	if o.kind == wire.KindReadCopy {
		return o.read.Tx
	}
	return o.write.Tx
}

func (o *copyOp) ts() model.Timestamp {
	if o.kind == wire.KindReadCopy {
		return o.read.TS
	}
	return o.write.TS
}

// copyResult carries one operation's admission outcome between copyBatch's
// passes.
type copyResult struct {
	value   int64
	ver     model.Version
	err     error
	ok      bool // admitted, pending the tombstone re-check
	raced   bool // admitted but a release raced past: undo and refuse
	spilled bool // would block: runs the blocking path on a spill goroutine
}

// serveAsync is the wire.AsyncServeFunc half of the site: it claims
// KindReadCopy/KindPreWrite requests for the pipeline and declines the rest
// (false sends the transport down the synchronous serve path). Decode
// happens here — the pipeline's first stage — on the transport goroutine,
// so a malformed payload is refused without occupying a queue slot.
func (s *Site) serveAsync(from model.SiteID, tid trace.ID, kind wire.MsgKind, pay wire.Payload, reply wire.ReplyFunc) bool {
	if kind != wire.KindReadCopy && kind != wire.KindPreWrite {
		return false
	}
	p := s.pipe.Load()
	if p == nil {
		return false // pipeline disabled or not built yet
	}
	op := copyOp{from: from, kind: kind, reply: reply, tid: tid}
	if tid != 0 {
		op.enq = time.Now().UnixNano()
	}
	var item model.ItemID
	if kind == wire.KindReadCopy {
		if err := pay.Decode(&op.read); err != nil {
			reply(0, nil, err)
			return true
		}
		item = op.read.Item
	} else {
		if err := pay.Decode(&op.write); err != nil {
			reply(0, nil, err)
			return true
		}
		item = op.write.Item
	}
	// Same placement function as the storage shards and lock stripes, so one
	// sequencer owns each item's hot path end to end.
	sh := int(shard.Hash(item)) & (p.Shards() - 1)
	// lifeCtx (not runCtx) bounds a blocked Submit: it is set once at New and
	// cancelled only by Close, so it needs no lock here; a crash leaves the
	// sequencers draining, which frees the slot anyway.
	if err := p.Submit(s.lifeCtx, sh, op); err != nil {
		return false // closing/swapping: the synchronous path still works
	}
	return true
}

// copyBatch processes one drained batch on its shard's sequencer goroutine.
// The per-operation costs of the synchronous path that don't depend on the
// operation — the site-state snapshot under s.mu, the release-tombstone
// lookups, the clock witness and peek — are paid once per batch.
func (s *Site) copyBatch(_ int, batch []copyOp) {
	// Two clock reads per BATCH (not per op) feed the always-on batch-drain
	// histogram; the per-op cost is amortized over the whole drain.
	batchStart := time.Now()
	defer func() { s.tracer.Observe(trace.StageBatch, time.Since(batchStart)) }()

	s.mu.Lock()
	crashed := s.crashed
	ccm := s.ccm
	runCtx := s.runCtx
	timeouts := s.timeouts
	incarnation := s.incarnation
	released := make([]bool, len(batch))
	for i := range batch {
		_, released[i] = s.released[batch[i].tx()]
	}
	s.mu.Unlock()

	if crashed || ccm == nil {
		for i := range batch {
			batch[i].reply(0, nil, errCrashed)
		}
		return
	}

	// One Witness covers the whole batch: the clock only ever advances to
	// the maximum observed time, so witnessing the batch's newest timestamp
	// is equivalent to witnessing each in turn.
	var maxTS model.Timestamp
	for i := range batch {
		if ts := batch[i].ts(); maxTS.Less(ts) {
			maxTS = ts
		}
	}
	s.clock.Witness(maxTS)

	results := make([]copyResult, len(batch))
	for i := range batch {
		op := &batch[i]
		if released[i] {
			results[i].err = model.Abortf(model.AbortCC, "transaction %s already released", op.tx())
			continue
		}
		if op.kind == wire.KindReadCopy {
			v, ver, err := ccm.TryRead(op.read.Tx, op.read.TS, op.read.Item)
			if errors.Is(err, cc.ErrWouldBlock) {
				results[i].spilled = true
				continue
			}
			results[i] = copyResult{value: v, ver: ver, err: err, ok: err == nil}
		} else {
			tryPre := ccm.TryPreWrite
			if op.write.Add {
				tryPre = ccm.TryPreAdd
			}
			ver, err := tryPre(op.write.Tx, op.write.TS, op.write.Item, op.write.Value)
			if errors.Is(err, cc.ErrWouldBlock) {
				results[i].spilled = true
				continue
			}
			results[i] = copyResult{ver: ver, err: err, ok: err == nil}
		}
	}

	// Re-check tombstones for the admitted operations under one lock: a
	// release that raced past the admit must win — undo and refuse, exactly
	// like the synchronous path's post-admit check.
	s.mu.Lock()
	for i := range batch {
		if results[i].ok {
			if _, raced := s.released[batch[i].tx()]; raced {
				results[i].ok = false
				results[i].raced = true
			}
		}
	}
	s.mu.Unlock()

	// Peek after Witness(maxTS): every reply's Clock is >= its request's
	// timestamp, as the synchronous path guarantees.
	clockNow := s.clock.Peek()
	for i := range batch {
		op := &batch[i]
		r := &results[i]
		if op.tid != 0 {
			// Traced op: record its shard-queue wait (decode to sequencer
			// pickup) and, unless it spilled, the batched admission, as a
			// fragment collated with the home site's trace by ID. A spilled
			// op's admission is recorded by spillCopy on its own fragment.
			act := s.tracer.Join(op.tid, op.tx())
			enq := time.Unix(0, op.enq)
			act.Record(trace.StageQueue, enq, batchStart.Sub(enq), "shard queue")
			if !r.spilled {
				act.Record(trace.StageAdmit, batchStart, time.Since(batchStart), "batched")
			}
			act.Finish()
		}
		switch {
		case r.spilled:
			s.pipeSpills.Add(1)
			go s.spillCopy(*op, ccm, runCtx, timeouts, incarnation)
		case r.raced:
			ccm.Abort(op.tx())
			op.reply(0, nil, model.Abortf(model.AbortCC, "transaction %s already released", op.tx()))
		case r.err != nil:
			op.reply(0, nil, r.err)
		case op.kind == wire.KindReadCopy:
			s.hist.Record(op.read.Tx, model.OpRead, op.read.Item, r.value, r.ver)
			op.reply(wire.KindReadCopy, &wire.ReadCopyResp{
				Value: r.value, Version: r.ver, Clock: clockNow, Incarnation: incarnation,
			}, nil)
		default:
			op.reply(wire.KindPreWrite, &wire.PreWriteResp{
				Version: r.ver, Clock: clockNow, Incarnation: incarnation,
			}, nil)
		}
	}
}

// spillCopy runs one contended operation through the original blocking CC
// path off the sequencer goroutine, so a lock wait or timestamp-intent gate
// never stalls the operations queued behind it. The stack captured at batch
// time rides along: a spill that straddles a reconfiguration behaves like
// any in-flight synchronous operation against the old incarnation.
func (s *Site) spillCopy(op copyOp, ccm cc.Manager, runCtx context.Context, timeouts schema.Timeouts, incarnation uint64) {
	act := s.tracer.Join(op.tid, op.tx())
	defer act.Finish()
	ctx, cancel := context.WithTimeout(trace.NewContext(runCtx, act), timeouts.Lock)
	defer cancel()
	if op.kind == wire.KindReadCopy {
		sp := act.StartSpan(trace.StageSpill, "read "+string(op.read.Item))
		v, ver, err := ccm.Read(ctx, op.read.Tx, op.read.TS, op.read.Item)
		sp.End()
		if err != nil {
			op.reply(0, nil, err)
			return
		}
		if s.isReleased(op.read.Tx) {
			ccm.Abort(op.read.Tx)
			op.reply(0, nil, model.Abortf(model.AbortCC, "transaction %s already released", op.read.Tx))
			return
		}
		s.hist.Record(op.read.Tx, model.OpRead, op.read.Item, v, ver)
		op.reply(wire.KindReadCopy, &wire.ReadCopyResp{
			Value: v, Version: ver, Clock: s.clock.Peek(), Incarnation: incarnation,
		}, nil)
		return
	}
	label, pre := "pre-write ", ccm.PreWrite
	if op.write.Add {
		label, pre = "pre-add ", ccm.PreAdd
	}
	sp := act.StartSpan(trace.StageSpill, label+string(op.write.Item))
	ver, err := pre(ctx, op.write.Tx, op.write.TS, op.write.Item, op.write.Value)
	sp.End()
	if err != nil {
		op.reply(0, nil, err)
		return
	}
	if s.isReleased(op.write.Tx) {
		ccm.Abort(op.write.Tx)
		op.reply(0, nil, model.Abortf(model.AbortCC, "transaction %s already released", op.write.Tx))
		return
	}
	op.reply(wire.KindPreWrite, &wire.PreWriteResp{
		Version: ver, Clock: s.clock.Peek(), Incarnation: incarnation,
	}, nil)
}

// swapPipeline installs the pipeline for a freshly (re)built stack and
// closes the previous one. Called after rebuild releases s.mu: Close waits
// out in-flight batches, which take s.mu — closing under it would deadlock.
// Old-pipeline batches still draining capture the CURRENT stack at batch
// time, so they behave like the synchronous path's in-flight operations.
func (s *Site) swapPipeline(pol schema.PipelinePolicy, shards int) {
	var next *pipeline.Pipeline[copyOp]
	if !pol.Disable {
		next = pipeline.New[copyOp](shards, pol.Depth, pol.MaxBatch, s.copyBatch)
	}
	if old := s.pipe.Swap(next); old != nil {
		old.Close()
	}
}

// PipelineStats snapshots the current pipeline's counters plus the spill
// count (zeros when the pipeline is disabled).
func (s *Site) PipelineStats() (pipeline.Stats, uint64) {
	if p := s.pipe.Load(); p != nil {
		return p.Stats(), s.pipeSpills.Load()
	}
	return pipeline.Stats{}, s.pipeSpills.Load()
}
