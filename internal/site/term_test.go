package site

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nameserver"
	"repro/internal/schema"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// newClusterTimeouts is newCluster with caller-chosen protocol timeouts
// (the janitor test needs a small lock timeout so the derived holder age
// threshold is test-sized).
func newClusterTimeouts(t *testing.T, n int, timeouts schema.Timeouts) *cluster {
	t.Helper()
	net := simnet.New(simnet.Config{})
	cat := schema.NewCatalog()
	var ids []model.SiteID
	for i := 0; i < n; i++ {
		id := model.SiteID(string(rune('A' + i)))
		ids = append(ids, id)
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	for item, initial := range items() {
		cat.ReplicateEverywhere(item, initial)
	}
	cat.Protocols = defaultProtocols()
	cat.Timeouts = timeouts
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	ns, err := nameserver.New(net, cat)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{net: net, ns: ns, sites: make(map[model.SiteID]*Site), ids: ids}
	for _, id := range ids {
		st, err := New(Config{ID: id, Net: net})
		if err != nil {
			t.Fatal(err)
		}
		c.sites[id] = st
	}
	t.Cleanup(func() {
		for _, st := range c.sites {
			st.Close()
		}
		ns.Close()
	})
	return c
}

// TestVotePrepareIncarnationFence: a prepare carrying a stale incarnation
// number is rejected deterministically — even while matching intents ARE
// buffered (the exactness the conservative intent heuristic lacks) — and a
// crash recovery bumps the incarnation.
func TestVotePrepareIncarnationFence(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a := c.sites["A"]
	inc := a.Incarnation()
	if inc == 0 {
		t.Fatal("incarnation not assigned at boot")
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	tx := model.TxID{Site: "B", Seq: 50}
	if _, err := a.ccm.PreWrite(ctx, tx, model.Timestamp{Time: 1, Site: "B"}, "x", 1); err != nil {
		t.Fatal(err)
	}
	// Stale incarnation: rejected despite live intents.
	v := a.votePrepare(wire.PrepareReq{
		Tx: tx, Coordinator: "B", Participants: []model.SiteID{"A", "B"},
		Writes:      []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
		Incarnation: inc - 1,
	})
	if v.Yes || !strings.Contains(v.Reason, "incarnation fence") {
		t.Fatalf("stale-incarnation prepare = %+v, want incarnation-fence no", v)
	}
	// Current incarnation: accepted.
	v = a.votePrepare(wire.PrepareReq{
		Tx: tx, Coordinator: "B", Participants: []model.SiteID{"A", "B"},
		Writes:      []model.WriteRecord{{Item: "x", Value: 1, Version: 1}},
		Incarnation: inc,
	})
	if !v.Yes {
		t.Fatalf("current-incarnation prepare = %+v, want yes", v)
	}

	a.Crash()
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := a.Incarnation(); got <= inc {
		t.Errorf("incarnation after crash recovery = %d, want > %d", got, inc)
	}
}

// TestCopyOpsReportIncarnation: read and pre-write responses carry the
// serving site's incarnation (the number the session echoes into
// prepares).
func TestCopyOpsReportIncarnation(t *testing.T) {
	c := newCluster(t, 2, defaultProtocols(), items())
	a, b := c.sites["A"], c.sites["B"]
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	tx := model.TxID{Site: "A", Seq: 60}
	ts := model.Timestamp{Time: 1, Site: "A"}
	if _, _, inc, err := a.ReadCopy(ctx, "B", tx, ts, "x"); err != nil || inc != b.Incarnation() {
		t.Fatalf("remote read incarnation = %d, %v; want %d", inc, err, b.Incarnation())
	}
	if _, inc, err := a.PreWriteCopy(ctx, "B", tx, ts, "y", 9); err != nil || inc != b.Incarnation() {
		t.Fatalf("remote pre-write incarnation = %d, %v; want %d", inc, err, b.Incarnation())
	}
	b.Decide(ctx, "B", tx, false) //nolint:errcheck // release the probe state
}

// TestJanitorReleasesStrandedState: unprepared CC state whose home has no
// record of the transaction (the home process died and took its release
// retries with it) is presumed-abort-queried and released by the holding
// site's own janitor — and the tombstone makes a late prepare vote no.
func TestJanitorReleasesStrandedState(t *testing.T) {
	c := newClusterTimeouts(t, 2, schema.Timeouts{
		Op: time.Second, Vote: time.Second, Ack: 500 * time.Millisecond,
		Lock:          40 * time.Millisecond, // janitor age = 400ms
		OrphanResolve: 30 * time.Millisecond,
	})
	b := c.sites["B"]

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	tx := model.TxID{Site: "A", Seq: 12345} // home A has never heard of it
	if _, err := b.ccm.PreWrite(ctx, tx, model.Timestamp{Time: 1, Site: "A"}, "x", 7); err != nil {
		t.Fatal(err)
	}
	if got := b.ccm.Holders(0); len(got) != 1 {
		t.Fatalf("holders = %v, want the stranded transaction", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for len(b.ccm.Holders(0)) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never released the stranded state: holders = %v", b.ccm.Holders(0))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The tombstone fences a late prepare for the janitored transaction.
	v := b.votePrepare(wire.PrepareReq{
		Tx: tx, Coordinator: "A", Participants: []model.SiteID{"A", "B"},
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 1}},
	})
	if v.Yes {
		t.Fatalf("late prepare after janitor release voted yes: %+v", v)
	}

	// The freed lock is actually usable again.
	free := model.TxID{Site: "B", Seq: 1}
	if _, err := b.ccm.PreWrite(ctx, free, model.Timestamp{Time: 2, Site: "B"}, "x", 8); err != nil {
		t.Fatalf("lock still held after janitor release: %v", err)
	}
	b.ccm.Abort(free)
}

// TestRecovered3PCMemberTerminatesWithLoggedPreCommit: a member that
// crashes holding a LOGGED pre-commit rejoins quorum termination with it
// after recovery, and the whole cohort converges on COMMIT — the exact
// fail-recover schedule the old volatile pre-commit state got wrong.
func TestRecovered3PCMemberTerminatesWithLoggedPreCommit(t *testing.T) {
	c := newCluster(t, 3, defaultProtocols(), items())
	sites := []model.SiteID{"A", "B", "C"}
	tx := model.TxID{Site: "A", Seq: 99}
	ts := model.Timestamp{Time: 5, Site: "A"}
	writes := []model.WriteRecord{{Item: "x", Value: 42, Version: 1}}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, id := range sites {
		st := c.sites[id]
		if _, err := st.ccm.PreWrite(ctx, tx, ts, "x", 42); err != nil {
			t.Fatal(err)
		}
		v := st.votePrepare(wire.PrepareReq{
			Tx: tx, TS: ts, Coordinator: "A",
			Participants: sites, Voters: sites, ThreePhase: true,
			Writes: writes, Incarnation: st.Incarnation(),
		})
		if !v.Yes {
			t.Fatalf("%s vote = %+v", id, v)
		}
	}
	b := c.sites["B"]
	if err := b.PreCommit(ctx, "B", tx); err != nil {
		t.Fatal(err)
	}
	// The coordinator "crashes" before deciding; B crashes with its logged
	// pre-commit and recovers.
	b.Crash()
	if err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	if b.InDoubtCount() != 1 {
		t.Fatalf("recovered member lost its in-doubt state: %d", b.InDoubtCount())
	}

	// The resolver loops must drive every member to the SAME outcome —
	// commit, because B's pre-commit is the highest-ballot evidence.
	deadline := time.Now().Add(8 * time.Second)
	for {
		drained := true
		for _, id := range sites {
			if c.sites[id].InDoubtCount() != 0 {
				drained = false
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("termination did not drain: A=%d B=%d C=%d",
				c.sites["A"].InDoubtCount(), c.sites["B"].InDoubtCount(), c.sites["C"].InDoubtCount())
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, id := range sites {
		st := c.sites[id]
		if cp, ok := st.Store().Get("x"); !ok || cp.Value != 42 || cp.Version != 1 {
			t.Errorf("%s: x = %+v, want 42@v1 (commit must install everywhere)", id, cp)
		}
		if commit, known := st.part.Decision(tx); !known || !commit {
			t.Errorf("%s: decision = (%v,%v), want known commit", id, commit, known)
		}
	}
}
