package storage

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/wal"
)

// TestSnapshotReshardsAcrossShardCounts: a snapshot captured from a store
// with one shard count must restore losslessly into stores of any other
// shard count — the storage half of online re-sharding (the snapshot is a
// flat item map; placement is recomputed by the receiving store's hash).
func TestSnapshotReshardsAcrossShardCounts(t *testing.T) {
	initial := make(map[model.ItemID]int64, 64)
	for i := 0; i < 64; i++ {
		initial[model.ItemID(fmt.Sprintf("item-%02d", i))] = int64(i)
	}
	src := NewSharded(8)
	src.Init(initial)
	var writes []model.WriteRecord
	for item := range initial {
		writes = append(writes, model.WriteRecord{Item: item, Value: initial[item] * 10, Version: 3})
	}
	if err := src.Apply(writes); err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot()

	for _, shards := range []int{1, 2, 8, 32} {
		t.Run(fmt.Sprintf("into-%d", shards), func(t *testing.T) {
			dst := NewSharded(shards)
			if _, err := dst.RecoverRecords(initial, snap, 5, nil); err != nil {
				t.Fatal(err)
			}
			if got := dst.ShardCount(); got != shards {
				t.Fatalf("shard count = %d, want %d", got, shards)
			}
			got := dst.Snapshot()
			if len(got) != len(snap) {
				t.Fatalf("restored %d items, want %d", len(got), len(snap))
			}
			for item, want := range snap {
				if got[item] != want {
					t.Errorf("item %s = %+v, want %+v", item, got[item], want)
				}
			}
		})
	}
}

// TestReshardRestoreAppliesRedoAndDropsUnplacedItems: restoring into a
// different shard count composes with WAL redo at/after the horizon, and
// snapshot items the new schema no longer places here are dropped.
func TestReshardRestoreAppliesRedoAndDropsUnplacedItems(t *testing.T) {
	snap := map[model.ItemID]Copy{
		"a":    {Value: 10, Version: 2},
		"b":    {Value: 20, Version: 2},
		"gone": {Value: 99, Version: 9}, // no longer in the schema
	}
	// The new placement keeps a and b only; redo carries a decided write to
	// b above the horizon and a below-horizon record that must NOT reapply
	// as committed (it is only scanned for in-doubt detection).
	recs := []wal.Record{
		{LSN: 3, Type: wal.RecPrepared, Tx: model.TxID{Site: "S", Seq: 1},
			Writes: []model.WriteRecord{{Item: "b", Value: 21, Version: 3}}},
		{LSN: 4, Type: wal.RecDecision, Tx: model.TxID{Site: "S", Seq: 1}, Commit: true},
		{LSN: 1, Type: wal.RecPrepared, Tx: model.TxID{Site: "S", Seq: 0},
			Writes: []model.WriteRecord{{Item: "a", Value: 777, Version: 99}}},
	}
	dst := NewSharded(2)
	inDoubt, err := dst.RecoverRecords(map[model.ItemID]int64{"a": 0, "b": 0}, snap, 3, recs)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := dst.Get("b"); got.Value != 21 || got.Version != 3 {
		t.Errorf("redo write lost across reshard: b = %+v", got)
	}
	if got, _ := dst.Get("a"); got.Value != 10 || got.Version != 2 {
		t.Errorf("a = %+v, want the snapshot value (10, v2)", got)
	}
	if _, ok := dst.Get("gone"); ok {
		t.Error("unplaced item survived the reshard restore")
	}
	if len(inDoubt) != 1 || inDoubt[0].Tx != (model.TxID{Site: "S", Seq: 0}) {
		t.Errorf("in-doubt = %+v, want the undecided S.0", inDoubt)
	}
}
