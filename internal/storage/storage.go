// Package storage implements a Rainbow site's local copy store: the
// physical copies of database items placed on the site by the replication
// schema, each carrying a value and a version number (quorum consensus
// reads the max-version value of a quorum and installs max+1 on writes).
//
// The store is sharded: copies are spread over a fixed power-of-two array
// of shards by an item-ID hash, each shard guarded by its own RWMutex, so
// concurrent transactions touching different items never contend on a
// global lock. Whole-store operations (Init, Snapshot, Items, multi-shard
// Apply) acquire shard locks in index order, which keeps them atomic with
// respect to each other and internally deadlock-free.
//
// The store is deliberately below concurrency control: all isolation is the
// CCP's job (internal/cc); the store only provides atomic snapshots and
// version-guarded installation, plus WAL-based crash recovery.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/shard"
	"repro/internal/wal"
)

// Copy is one physical copy of an item.
type Copy struct {
	Value   int64
	Version model.Version
}

// MaxShards bounds the shard count; beyond this the per-shard maps are so
// small that more shards only waste memory.
const MaxShards = 256

// DefaultShards returns the default shard count: the smallest power of two
// covering the available parallelism, capped at MaxShards.
func DefaultShards() int {
	return NormalizeShards(0)
}

// NormalizeShards clamps n to [1, MaxShards] and rounds it up to a power of
// two (the shard mask requires one). Non-positive n selects DefaultShards.
func NormalizeShards(n int) int {
	return shard.Normalize(n, MaxShards)
}

// storeShard is one stripe of the store.
type storeShard struct {
	mu     sync.RWMutex
	copies map[model.ItemID]Copy
	// sealed marks copies as referenced by an in-progress checkpoint
	// capture: the next install must clone the map first (copy-on-write),
	// so the capture can read the sealed map without holding any lock.
	sealed bool
	// dirtyEpoch is the store's capture epoch at the last install; a
	// checkpoint delta carries exactly the shards whose dirtyEpoch is at or
	// after the previous capture's epoch.
	dirtyEpoch atomic.Uint64
	// dirty maps each written item to the capture epoch of its last
	// install (one map insert per install). Delta captures read it so a
	// hot shard's delta carries only its written items, not the whole
	// shard map; entries below the capture's since-epoch are pruned during
	// the sweep. Nil when item-granular tracking is disabled (the
	// shard-granular ablation).
	dirty map[model.ItemID]uint64
	// hits counts point lookups (Get/Has), installs counts version-guarded
	// writes that took effect — the per-shard traffic counters behind the
	// monitor's hash-skew panel. Atomic so read paths never write-lock.
	hits     atomic.Uint64
	installs atomic.Uint64
}

// Store holds a site's copies across a fixed set of shards.
type Store struct {
	shards []storeShard
	mask   uint32
	// epoch is the capture epoch: incremented by BeginCapture, stamped into
	// each shard's dirtyEpoch (and dirty-item entry) on install.
	epoch atomic.Uint64
	// itemDirty enables per-item dirty tracking (on by default); see
	// storeShard.dirty. TrackDirtyItems(false) selects the shard-granular
	// ablation.
	itemDirty bool
}

// New returns an empty store with the default shard count.
func New() *Store { return NewSharded(0) }

// NewSharded returns an empty store with n shards (normalized to a power of
// two; n <= 0 selects the default).
func NewSharded(n int) *Store {
	n = NormalizeShards(n)
	s := &Store{shards: make([]storeShard, n), mask: uint32(n - 1), itemDirty: true}
	s.epoch.Store(1)
	for i := range s.shards {
		s.shards[i].copies = make(map[model.ItemID]Copy)
		s.shards[i].dirty = make(map[model.ItemID]uint64)
	}
	return s
}

// TrackDirtyItems toggles per-item dirty tracking (on by default). With it
// off, delta captures fall back to whole dirty shards — the pre-item
// behavior, kept as an ablation knob (`-checkpoint-dirty-items=false`).
// Call before the store serves traffic.
func (s *Store) TrackDirtyItems(enable bool) {
	s.lockAll()
	defer s.unlockAll()
	s.itemDirty = enable
	for i := range s.shards {
		if enable {
			if s.shards[i].dirty == nil {
				s.shards[i].dirty = make(map[model.ItemID]uint64)
			}
		} else {
			s.shards[i].dirty = nil
		}
	}
}

// ShardCount returns the number of shards.
func (s *Store) ShardCount() int { return len(s.shards) }

func (s *Store) shardOf(item model.ItemID) *storeShard {
	return &s.shards[shard.Hash(item)&s.mask]
}

// lockAll write-locks every shard in index order (the store-wide lock
// acquisition order; all multi-shard paths follow it).
func (s *Store) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// rlockAll read-locks every shard in index order.
func (s *Store) rlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := range s.shards {
		s.shards[i].mu.RUnlock()
	}
}

// Init (re)creates the copies this site hosts with their initial values at
// version 0, per the database schema in the name-server catalog.
func (s *Store) Init(items map[model.ItemID]int64) {
	s.lockAll()
	defer s.unlockAll()
	epoch := s.epoch.Load()
	for i := range s.shards {
		// Fresh maps: a sealed map stays with its capture untouched.
		s.shards[i].copies = make(map[model.ItemID]Copy)
		s.shards[i].sealed = false
		s.shards[i].dirtyEpoch.Store(epoch)
		if s.itemDirty {
			s.shards[i].dirty = make(map[model.ItemID]uint64)
		}
	}
	for item, v := range items {
		s.shardOf(item).copies[item] = Copy{Value: v}
	}
}

// Get returns the current copy of an item.
func (s *Store) Get(item model.ItemID) (Copy, bool) {
	sh := s.shardOf(item)
	sh.hits.Add(1)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.copies[item]
	return c, ok
}

// Has reports whether this site hosts a copy of item.
func (s *Store) Has(item model.ItemID) bool {
	sh := s.shardOf(item)
	sh.hits.Add(1)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.copies[item]
	return ok
}

// Apply installs write records. Absolute records are version-guarded and
// therefore idempotent: a record only takes effect if its version exceeds
// the copy's current version, which makes WAL replay safe to repeat. Delta
// records (commutative blind adds) merge value += delta at version+1 and are
// NOT idempotent — their exactly-once contract is enforced upstream by the
// participant's decision table and the checkpoint horizon.
//
// All shards touched by the write set are locked (in index order) for the
// whole installation, so a Snapshot never observes half a transaction.
func (s *Store) Apply(writes []model.WriteRecord) error {
	if len(writes) == 0 {
		return nil
	}
	// Fast path: a write set confined to one shard needs no ordering dance.
	first := s.shardOf(writes[0].Item)
	multi := false
	for _, w := range writes[1:] {
		if s.shardOf(w.Item) != first {
			multi = true
			break
		}
	}
	if !multi {
		first.mu.Lock()
		defer first.mu.Unlock()
		return s.applyLocked(first, writes)
	}

	// Group the writes per shard index (preserving per-item order), lock
	// the touched shards in index order, then install each group.
	grouped := make(map[int][]model.WriteRecord, 4)
	for _, w := range writes {
		idx := int(shard.Hash(w.Item) & s.mask)
		grouped[idx] = append(grouped[idx], w)
	}
	order := make([]int, 0, len(grouped))
	for idx := range grouped {
		order = append(order, idx)
	}
	sort.Ints(order)
	for _, idx := range order {
		s.shards[idx].mu.Lock()
	}
	defer func() {
		for _, idx := range order {
			s.shards[idx].mu.Unlock()
		}
	}()
	for _, idx := range order {
		if err := s.applyLocked(&s.shards[idx], grouped[idx]); err != nil {
			return err
		}
	}
	return nil
}

// applyLocked installs writes into sh, which the caller holds locked. A
// sealed shard is cloned before the first effective install (copy-on-write):
// the sealed map belongs to an in-progress checkpoint capture and must stay
// exactly as captured.
func (s *Store) applyLocked(sh *storeShard, writes []model.WriteRecord) error {
	for _, w := range writes {
		c, ok := sh.copies[w.Item]
		if !ok {
			return fmt.Errorf("storage: no copy of %s on this site", w.Item)
		}
		// Delta records merge into the current value and bump the version by
		// one, bypassing the version guard: concurrent commutative adds may
		// carry colliding coordinator-assigned versions (each saw the same
		// base), yet every delta must still take effect exactly once. The
		// at-most-once guarantee moves from the version guard to the callers
		// (decision-table idempotency, checkpoint horizon exactness).
		// Absolute records keep the version guard, which makes their replay
		// idempotent.
		var next Copy
		if w.Delta {
			next = Copy{Value: c.Value + w.Value, Version: c.Version + 1}
		} else if w.Version > c.Version {
			next = Copy{Value: w.Value, Version: w.Version}
		} else {
			continue
		}
		if sh.sealed {
			clone := make(map[model.ItemID]Copy, len(sh.copies))
			for k, v := range sh.copies {
				clone[k] = v
			}
			sh.copies = clone
			sh.sealed = false
		}
		sh.copies[w.Item] = next
		sh.installs.Add(1)
		epoch := s.epoch.Load()
		sh.dirtyEpoch.Store(epoch)
		if sh.dirty != nil {
			sh.dirty[w.Item] = epoch
		}
	}
	return nil
}

// Capture is one copy-on-write capture of the store, taken by the
// checkpoint manager under its snapshot gate. BeginCapture only seals the
// dirty shards — O(shards), no item data is touched — so the gate is
// released before the O(data) Collect step runs. Installs arriving after
// the seal clone their shard's map first, leaving the sealed maps frozen at
// capture time.
type Capture struct {
	// Epoch is this capture's epoch; pass it as since to the next
	// BeginCapture to capture exactly the shards dirtied in between.
	Epoch uint64
	// Dirty is the number of shards captured, Total the shard count.
	Dirty int
	Total int
	parts []capturePart
	items int
}

// capturePart pairs a sealed shard with the map reference captured from it
// (the shard's live map may move on via a copy-on-write clone). For
// item-granular delta captures, items narrows the capture to the shard's
// written items; nil means the whole map (full captures, or the
// shard-granular ablation).
type capturePart struct {
	sh    *storeShard
	m     map[model.ItemID]Copy
	items []model.ItemID
}

// BeginCapture seals every shard whose last install happened at or after
// epoch since (since 0 seals everything — a full capture) and returns the
// sealed map set. Each dirty shard's lock is taken only to flip the seal
// bit — and, on item-granular delta captures, to sweep its dirty-item set:
// the delta then carries exactly the items written since the previous
// capture, not the whole shard map, so the gate-held work is O(shards +
// items written), never O(store). Entries below since are pruned during
// the sweep (no earlier capture can need them; a failed attempt retries
// with the same since, which the sweep preserves). The caller must exclude
// installs for the duration of the call (the checkpoint gate does); reads
// never block on it.
func (s *Store) BeginCapture(since uint64) *Capture {
	c := &Capture{Epoch: s.epoch.Add(1), Total: len(s.shards)}
	itemGranular := s.itemDirty && since > 0
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.dirtyEpoch.Load() < since {
			continue
		}
		sh.mu.Lock()
		sh.sealed = true
		part := capturePart{sh: sh, m: sh.copies}
		if itemGranular && sh.dirty != nil {
			part.items = make([]model.ItemID, 0, len(sh.dirty))
			for item, epoch := range sh.dirty {
				if epoch >= since {
					part.items = append(part.items, item)
				} else {
					delete(sh.dirty, item)
				}
			}
			c.items += len(part.items)
		} else {
			c.items += len(sh.copies)
		}
		c.parts = append(c.parts, part)
		sh.mu.Unlock()
		c.Dirty++
	}
	return c
}

// Collect copies the captured shards' contents into one map, then releases
// the seals so later installs mutate in place again instead of paying a
// copy-on-write clone for a capture that no longer needs the map. The copy
// itself takes no locks: sealed maps are immutable — an install arriving
// before its shard is unsealed clones the map before writing. Call Collect
// exactly once per capture, and never overlap two captures of one store
// (the checkpoint manager serializes them).
func (c *Capture) Collect() map[model.ItemID]Copy {
	out := make(map[model.ItemID]Copy, c.items)
	for _, p := range c.parts {
		if p.items != nil {
			for _, item := range p.items {
				if v, ok := p.m[item]; ok {
					out[item] = v
				}
			}
			continue
		}
		for k, v := range p.m {
			out[k] = v
		}
	}
	for _, p := range c.parts {
		p.sh.mu.Lock()
		p.sh.sealed = false
		p.sh.mu.Unlock()
	}
	return out
}

// Items returns the number of copies the capture holds.
func (c *Capture) Items() int { return c.items }

// DirtyShards counts shards with an install at or after epoch since — the
// size of the next delta capture, surfaced as a durability gauge.
func (s *Store) DirtyShards(since uint64) int {
	n := 0
	for i := range s.shards {
		if s.shards[i].dirtyEpoch.Load() >= since {
			n++
		}
	}
	return n
}

// ShardStat is one shard's occupancy and traffic counters.
type ShardStat struct {
	// Items is the shard's current copy count.
	Items int
	// Hits counts point lookups served; Installs counts writes installed.
	Hits     uint64
	Installs uint64
}

// ShardStats reports per-shard occupancy and traffic, the data behind the
// monitor's hash-skew indicator.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n := len(sh.copies)
		sh.mu.RUnlock()
		out[i] = ShardStat{Items: n, Hits: sh.hits.Load(), Installs: sh.installs.Load()}
	}
	return out
}

// ResetShardStats zeroes the per-shard traffic counters (a new measurement
// window; occupancy is a gauge and unaffected).
func (s *Store) ResetShardStats() {
	for i := range s.shards {
		s.shards[i].hits.Store(0)
		s.shards[i].installs.Store(0)
	}
}

// Items returns the hosted item ids in sorted order.
func (s *Store) Items() []model.ItemID {
	s.rlockAll()
	defer s.runlockAll()
	var out []model.ItemID
	for i := range s.shards {
		for item := range s.shards[i].copies {
			out = append(out, item)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns a consistent copy of the whole store (for monitors,
// tests and the GUI's display panels). All shards are read-locked in index
// order for the duration, making the snapshot atomic against Apply.
func (s *Store) Snapshot() map[model.ItemID]Copy {
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].copies)
	}
	out := make(map[model.ItemID]Copy, n)
	for i := range s.shards {
		for k, v := range s.shards[i].copies {
			out[k] = v
		}
	}
	return out
}

// RecoveredTx describes an in-doubt transaction found during WAL replay: it
// was prepared here but no decision record exists. The recovering site must
// re-protect its write set and resolve the outcome via the commit protocol's
// termination path.
type RecoveredTx struct {
	Tx           model.TxID
	TS           model.Timestamp
	Coordinator  model.SiteID
	Participants []model.SiteID
	// Voters is the 3PC termination electorate recorded with the prepare.
	Voters     []model.SiteID
	ThreePhase bool
	Writes     []model.WriteRecord
	// EA is the highest termination ballot this site promised (RecElect /
	// RecPreDecide records), EB the ballot of the last pre-decision it
	// accepted, and PreDecide that pre-decision's direction (valid only
	// when EB is set): 3PC members rejoin quorum termination with exactly
	// the state they logged. A logged pre-decision counts even if the ack
	// never left the pre-crash process (logged-means-accepted).
	EA, EB    model.Ballot
	PreDecide bool
}

// Recover rebuilds the store from initial values plus a WAL: committed
// transactions' writes are re-installed (version-guarded, so replay is
// idempotent even if the pre-crash process already applied them), and the
// in-doubt transactions are returned for ACP-level resolution.
func (s *Store) Recover(items map[model.ItemID]int64, log wal.Log) ([]RecoveredTx, error) {
	recs, err := log.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("storage: recover: %w", err)
	}
	return s.RecoverRecords(items, nil, 0, recs)
}

// RecoverRecords rebuilds the store from initial values, an optional
// checkpoint snapshot, and the retained WAL records. The snapshot is
// installed first; redo then applies only decisions at or after horizon —
// everything below it is already reflected in the snapshot (the checkpoint
// manager's gate guarantees that). Retained records below the horizon are
// still scanned: they are the pinned Prepared records of in-doubt
// transactions, which are returned for ACP-level termination exactly like
// in-doubt transactions from after the horizon.
//
// A nil snapshot with horizon 0 is the full-history replay path (the legacy
// FileLog, or a site that never checkpointed).
func (s *Store) RecoverRecords(items map[model.ItemID]int64, snapshot map[model.ItemID]Copy, horizon uint64, recs []wal.Record) ([]RecoveredTx, error) {
	s.Init(items)
	if len(snapshot) > 0 {
		s.lockAll()
		for item, c := range snapshot {
			sh := s.shardOf(item)
			// Install only items the current schema still places here.
			if _, ok := sh.copies[item]; ok {
				sh.copies[item] = c
			}
		}
		s.unlockAll()
	}

	prepared := make(map[model.TxID]wal.Record)
	type termState struct {
		ea, eb    model.Ballot
		preDecide bool
	}
	terms := make(map[model.TxID]*termState)
	term := func(tx model.TxID) *termState {
		t, ok := terms[tx]
		if !ok {
			t = &termState{}
			terms[tx] = t
		}
		return t
	}
	var order []model.TxID
	for _, r := range recs {
		switch r.Type {
		case wal.RecPrepared:
			if _, dup := prepared[r.Tx]; !dup {
				order = append(order, r.Tx)
			}
			prepared[r.Tx] = r
		case wal.RecElect:
			if t := term(r.Tx); t.ea.Less(r.Ballot) {
				t.ea = r.Ballot
			}
		case wal.RecPreDecide:
			// The highest-ballot pre-decision wins (appends can land out of
			// ballot order when an election races a stale pre-decision).
			t := term(r.Tx)
			if t.eb.Less(r.Ballot) || (t.eb.IsZero() && r.Ballot.IsZero()) {
				t.eb, t.preDecide = r.Ballot, r.Commit
			}
			if t.ea.Less(r.Ballot) {
				t.ea = r.Ballot
			}
		case wal.RecDecision:
			p, ok := prepared[r.Tx]
			if r.Commit && ok && r.LSN >= horizon {
				if err := s.Apply(p.Writes); err != nil {
					return nil, err
				}
			}
			delete(prepared, r.Tx)
			delete(terms, r.Tx)
		case wal.RecEnd:
			delete(prepared, r.Tx)
			delete(terms, r.Tx)
		}
	}

	var inDoubt []RecoveredTx
	for _, tx := range order {
		p, ok := prepared[tx]
		if !ok {
			continue
		}
		rec := RecoveredTx{
			Tx:           p.Tx,
			TS:           p.TS,
			Coordinator:  p.Coordinator,
			Participants: p.Participants,
			Voters:       p.Voters,
			ThreePhase:   p.ThreePhase,
			Writes:       p.Writes,
		}
		if t, ok := terms[tx]; ok {
			rec.EA, rec.EB, rec.PreDecide = t.ea, t.eb, t.preDecide
		}
		inDoubt = append(inDoubt, rec)
	}
	return inDoubt, nil
}
