// Package storage implements a Rainbow site's local copy store: the
// physical copies of database items placed on the site by the replication
// schema, each carrying a value and a version number (quorum consensus
// reads the max-version value of a quorum and installs max+1 on writes).
//
// The store is deliberately below concurrency control: all isolation is the
// CCP's job (internal/cc); the store only provides atomic snapshots and
// version-guarded installation, plus WAL-based crash recovery.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/wal"
)

// Copy is one physical copy of an item.
type Copy struct {
	Value   int64
	Version model.Version
}

// Store holds a site's copies.
type Store struct {
	mu     sync.RWMutex
	copies map[model.ItemID]Copy
}

// New returns an empty store.
func New() *Store {
	return &Store{copies: make(map[model.ItemID]Copy)}
}

// Init (re)creates the copies this site hosts with their initial values at
// version 0, per the database schema in the name-server catalog.
func (s *Store) Init(items map[model.ItemID]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.copies = make(map[model.ItemID]Copy, len(items))
	for item, v := range items {
		s.copies[item] = Copy{Value: v}
	}
}

// Get returns the current copy of an item.
func (s *Store) Get(item model.ItemID) (Copy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.copies[item]
	return c, ok
}

// Has reports whether this site hosts a copy of item.
func (s *Store) Has(item model.ItemID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.copies[item]
	return ok
}

// Apply installs write records. Installation is version-guarded and
// therefore idempotent: a record only takes effect if its version exceeds
// the copy's current version, which makes WAL replay safe to repeat.
func (s *Store) Apply(writes []model.WriteRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range writes {
		c, ok := s.copies[w.Item]
		if !ok {
			return fmt.Errorf("storage: no copy of %s on this site", w.Item)
		}
		if w.Version > c.Version {
			s.copies[w.Item] = Copy{Value: w.Value, Version: w.Version}
		}
	}
	return nil
}

// Items returns the hosted item ids in sorted order.
func (s *Store) Items() []model.ItemID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.ItemID, 0, len(s.copies))
	for item := range s.copies {
		out = append(out, item)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns a consistent copy of the whole store (for monitors,
// tests and the GUI's display panels).
func (s *Store) Snapshot() map[model.ItemID]Copy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[model.ItemID]Copy, len(s.copies))
	for k, v := range s.copies {
		out[k] = v
	}
	return out
}

// RecoveredTx describes an in-doubt transaction found during WAL replay: it
// was prepared here but no decision record exists. The recovering site must
// re-protect its write set and resolve the outcome via the commit protocol's
// termination path.
type RecoveredTx struct {
	Tx           model.TxID
	TS           model.Timestamp
	Coordinator  model.SiteID
	Participants []model.SiteID
	ThreePhase   bool
	Writes       []model.WriteRecord
}

// Recover rebuilds the store from initial values plus a WAL: committed
// transactions' writes are re-installed (version-guarded, so replay is
// idempotent even if the pre-crash process already applied them), and the
// in-doubt transactions are returned for ACP-level resolution.
func (s *Store) Recover(items map[model.ItemID]int64, log wal.Log) ([]RecoveredTx, error) {
	recs, err := log.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("storage: recover: %w", err)
	}
	s.Init(items)

	prepared := make(map[model.TxID]wal.Record)
	var order []model.TxID
	for _, r := range recs {
		switch r.Type {
		case wal.RecPrepared:
			if _, dup := prepared[r.Tx]; !dup {
				order = append(order, r.Tx)
			}
			prepared[r.Tx] = r
		case wal.RecDecision:
			p, ok := prepared[r.Tx]
			if r.Commit && ok {
				if err := s.Apply(p.Writes); err != nil {
					return nil, err
				}
			}
			delete(prepared, r.Tx)
		case wal.RecEnd:
			delete(prepared, r.Tx)
		}
	}

	var inDoubt []RecoveredTx
	for _, tx := range order {
		p, ok := prepared[tx]
		if !ok {
			continue
		}
		inDoubt = append(inDoubt, RecoveredTx{
			Tx:           p.Tx,
			TS:           p.TS,
			Coordinator:  p.Coordinator,
			Participants: p.Participants,
			ThreePhase:   p.ThreePhase,
			Writes:       p.Writes,
		})
	}
	return inDoubt, nil
}
