package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/wal"
)

func newStore(items map[model.ItemID]int64) *Store {
	s := New()
	s.Init(items)
	return s
}

func TestInitAndGet(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 10, "y": 20})
	c, ok := s.Get("x")
	if !ok || c.Value != 10 || c.Version != 0 {
		t.Errorf("Get(x) = %+v, %v", c, ok)
	}
	if _, ok := s.Get("z"); ok {
		t.Error("Get of unhosted item should report absence")
	}
	if !s.Has("y") || s.Has("z") {
		t.Error("Has is wrong")
	}
}

func TestApplyInstallsNewerVersions(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 0})
	if err := s.Apply([]model.WriteRecord{{Item: "x", Value: 5, Version: 1}}); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Get("x")
	if c.Value != 5 || c.Version != 1 {
		t.Errorf("copy = %+v", c)
	}
}

func TestApplyIgnoresStaleVersions(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 0})
	s.Apply([]model.WriteRecord{{Item: "x", Value: 5, Version: 3}})
	s.Apply([]model.WriteRecord{{Item: "x", Value: 99, Version: 2}}) // stale
	c, _ := s.Get("x")
	if c.Value != 5 || c.Version != 3 {
		t.Errorf("stale write applied: %+v", c)
	}
	// Re-applying the same record (replay) is a no-op.
	s.Apply([]model.WriteRecord{{Item: "x", Value: 5, Version: 3}})
	c, _ = s.Get("x")
	if c.Value != 5 || c.Version != 3 {
		t.Errorf("idempotent replay broke copy: %+v", c)
	}
}

func TestApplyUnknownItemFails(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 0})
	if err := s.Apply([]model.WriteRecord{{Item: "nope", Value: 1, Version: 1}}); err == nil {
		t.Error("apply to unhosted item should fail")
	}
}

func TestItemsSorted(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"c": 0, "a": 0, "b": 0})
	items := s.Items()
	if len(items) != 3 || items[0] != "a" || items[1] != "b" || items[2] != "c" {
		t.Errorf("Items = %v", items)
	}
}

func TestSnapshotIsIsolated(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 1})
	snap := s.Snapshot()
	snap["x"] = Copy{Value: 999, Version: 999}
	c, _ := s.Get("x")
	if c.Value != 1 {
		t.Error("snapshot shares memory with store")
	}
}

func txid(seq uint64) model.TxID { return model.TxID{Site: "S1", Seq: seq} }

func TestRecoverRedoesCommitted(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(1), Commit: true})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Errorf("in-doubt = %v", inDoubt)
	}
	c, _ := s.Get("x")
	if c.Value != 7 || c.Version != 1 {
		t.Errorf("committed write not redone: %+v", c)
	}
}

func TestRecoverSkipsAborted(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(1), Commit: false})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Errorf("aborted tx reported in-doubt: %v", inDoubt)
	}
	c, _ := s.Get("x")
	if c.Value != 0 || c.Version != 0 {
		t.Errorf("aborted write applied: %+v", c)
	}
}

func TestRecoverReportsInDoubt(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{
		Type: wal.RecPrepared, Tx: txid(2),
		TS:           model.Timestamp{Time: 5, Site: "S1"},
		Coordinator:  "S9",
		Participants: []model.SiteID{"S1", "S9"},
		ThreePhase:   true,
		Writes:       []model.WriteRecord{{Item: "x", Value: 3, Version: 2}},
	})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 {
		t.Fatalf("in-doubt = %v", inDoubt)
	}
	r := inDoubt[0]
	if r.Tx != txid(2) || r.Coordinator != "S9" || !r.ThreePhase ||
		len(r.Participants) != 2 || len(r.Writes) != 1 {
		t.Errorf("recovered tx = %+v", r)
	}
	// The write must NOT be applied until the outcome is known.
	c, _ := s.Get("x")
	if c.Version != 0 {
		t.Errorf("in-doubt write applied early: %+v", c)
	}
}

func TestRecoverEndRecordClearsInDoubt(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecEnd, Tx: txid(1)})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Errorf("RecEnd should clear in-doubt state: %v", inDoubt)
	}
}

func TestRecoverMultipleTxOrder(t *testing.T) {
	log := wal.NewMemory()
	// Two committed writes to the same item: latest version wins.
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(1), Commit: true})
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(2),
		Writes: []model.WriteRecord{{Item: "x", Value: 2, Version: 2}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(2), Commit: true})
	// Plus two in-doubt transactions, reported in prepare order.
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(4)})
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(3)})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.Get("x")
	if c.Value != 2 || c.Version != 2 {
		t.Errorf("copy after replay = %+v", c)
	}
	if len(inDoubt) != 2 || inDoubt[0].Tx != txid(4) || inDoubt[1].Tx != txid(3) {
		t.Errorf("in-doubt order = %v", inDoubt)
	}
}

func TestRecoverPropertyFinalStateMatchesOnline(t *testing.T) {
	// Property: replaying a log of committed transactions yields the same
	// store as applying them online, regardless of the version sequence.
	f := func(vals []int64) bool {
		log := wal.NewMemory()
		online := newStore(map[model.ItemID]int64{"x": 0})
		for i, v := range vals {
			w := []model.WriteRecord{{Item: "x", Value: v, Version: model.Version(i + 1)}}
			log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(uint64(i)), Writes: w})
			log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(uint64(i)), Commit: true})
			online.Apply(w)
		}
		recovered := New()
		if _, err := recovered.Recover(map[model.ItemID]int64{"x": 0}, log); err != nil {
			return false
		}
		a, _ := online.Get("x")
		b, _ := recovered.Get("x")
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestShardCountNormalization(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 300: MaxShards}
	for in, want := range cases {
		if got := NewSharded(in).ShardCount(); got != want {
			t.Errorf("NewSharded(%d).ShardCount() = %d, want %d", in, got, want)
		}
	}
	if got := New().ShardCount(); got != DefaultShards() {
		t.Errorf("New().ShardCount() = %d, want default %d", got, DefaultShards())
	}
}

// TestShardedBehaviourMatchesSingleShard checks that shard count is purely
// a performance knob: every API call behaves identically at 1 and 16 shards.
func TestShardedBehaviourMatchesSingleShard(t *testing.T) {
	items := make(map[model.ItemID]int64)
	for i := 0; i < 40; i++ {
		items[model.ItemID(fmt.Sprintf("i%02d", i))] = int64(i)
	}
	one, many := NewSharded(1), NewSharded(16)
	one.Init(items)
	many.Init(items)
	writes := []model.WriteRecord{
		{Item: "i03", Value: 333, Version: 2},
		{Item: "i27", Value: 777, Version: 1},
		{Item: "i03", Value: 111, Version: 1}, // stale: must lose to version 2
	}
	if err := one.Apply(writes); err != nil {
		t.Fatal(err)
	}
	if err := many.Apply(writes); err != nil {
		t.Fatal(err)
	}
	snapOne, snapMany := one.Snapshot(), many.Snapshot()
	if len(snapOne) != len(snapMany) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(snapOne), len(snapMany))
	}
	for k, v := range snapOne {
		if snapMany[k] != v {
			t.Errorf("item %s: 1-shard %+v vs 16-shard %+v", k, v, snapMany[k])
		}
	}
	itemsOne, itemsMany := one.Items(), many.Items()
	for i := range itemsOne {
		if itemsOne[i] != itemsMany[i] {
			t.Fatalf("Items() order diverges at %d: %s vs %s", i, itemsOne[i], itemsMany[i])
		}
	}
	if err := one.Apply([]model.WriteRecord{{Item: "nope", Version: 1}}); err == nil {
		t.Error("apply of unhosted item should fail (1 shard)")
	}
	if err := many.Apply([]model.WriteRecord{{Item: "nope", Version: 1}}); err == nil {
		t.Error("apply of unhosted item should fail (16 shards)")
	}
}

// TestStoreConcurrentStress hammers every shard from many goroutines —
// run with -race. Versions only grow, so after the storm each copy must
// hold the value installed at its highest version.
func TestStoreConcurrentStress(t *testing.T) {
	const nItems, goroutines, iters = 64, 16, 300
	items := make(map[model.ItemID]int64, nItems)
	ids := make([]model.ItemID, nItems)
	for i := range ids {
		ids[i] = model.ItemID(fmt.Sprintf("i%02d", i))
		items[ids[i]] = 0
	}
	s := NewSharded(8)
	s.Init(items)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= iters; i++ {
				a, b := ids[(g*7+i)%nItems], ids[(g*13+i*5)%nItems]
				v := model.Version(i)
				switch i % 4 {
				case 0:
					s.Snapshot()
				case 1:
					s.Get(a)
					s.Has(b)
				default:
					// Cross-shard write set exercises the ordered multi-
					// shard Apply path.
					s.Apply([]model.WriteRecord{
						{Item: a, Value: int64(i), Version: v},
						{Item: b, Value: int64(i), Version: v},
					})
				}
			}
		}(g)
	}
	wg.Wait()
	for _, id := range ids {
		c, ok := s.Get(id)
		if !ok {
			t.Fatalf("item %s vanished", id)
		}
		if c.Version > 0 && c.Value != int64(c.Version) {
			t.Errorf("item %s: value %d does not match version %d", id, c.Value, c.Version)
		}
	}
}

// TestSnapshotAtomicAgainstApply checks that a snapshot never observes half
// a cross-shard write set: both writes carry the same version, so any
// snapshot must see them at equal versions.
func TestSnapshotAtomicAgainstApply(t *testing.T) {
	s := NewSharded(8)
	// "a" and "h" land in different shards for any multi-shard layout that
	// splits these ids; even if they collide the test remains valid.
	s.Init(map[model.ItemID]int64{"a": 0, "h": 0})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := model.Version(1); v <= 500; v++ {
			s.Apply([]model.WriteRecord{
				{Item: "a", Value: int64(v), Version: v},
				{Item: "h", Value: int64(v), Version: v},
			})
		}
	}()
	for i := 0; i < 200; i++ {
		snap := s.Snapshot()
		if snap["a"].Version != snap["h"].Version {
			t.Fatalf("snapshot tore a transaction: a@%d h@%d", snap["a"].Version, snap["h"].Version)
		}
	}
	<-done
}

func TestShardStats(t *testing.T) {
	s := NewSharded(4)
	items := map[model.ItemID]int64{}
	for i := 0; i < 32; i++ {
		items[model.ItemID(fmt.Sprintf("s%02d", i))] = 1
	}
	s.Init(items)
	stats := s.ShardStats()
	if len(stats) != s.ShardCount() {
		t.Fatalf("got %d shard stats, want %d", len(stats), s.ShardCount())
	}
	total := 0
	for _, sh := range stats {
		total += sh.Items
	}
	if total != 32 {
		t.Errorf("occupancy sums to %d, want 32", total)
	}
	for i := 0; i < 10; i++ {
		s.Get("s00")
	}
	s.Apply([]model.WriteRecord{{Item: "s00", Value: 5, Version: 1}})
	s.Apply([]model.WriteRecord{{Item: "s00", Value: 4, Version: 1}}) // stale: no install
	var hits, installs uint64
	for _, sh := range s.ShardStats() {
		hits += sh.Hits
		installs += sh.Installs
	}
	if hits != 10 {
		t.Errorf("hits = %d, want 10", hits)
	}
	if installs != 1 {
		t.Errorf("installs = %d, want 1 (stale write must not count)", installs)
	}
	s.ResetShardStats()
	for _, sh := range s.ShardStats() {
		if sh.Hits != 0 || sh.Installs != 0 {
			t.Errorf("counters survive reset: %+v", sh)
		}
		_ = sh
	}
}

func TestRecoverRecordsSnapshotAndHorizon(t *testing.T) {
	items := map[model.ItemID]int64{"x": 0, "y": 0, "gone": 0}
	snapshot := map[model.ItemID]Copy{
		"x": {Value: 50, Version: 5},
		// An item the schema no longer places here must be skipped.
		"dropped": {Value: 1, Version: 1},
	}
	tx := func(seq uint64) model.TxID { return model.TxID{Site: "S", Seq: seq} }
	recs := []wal.Record{
		// Below the horizon: effects count as already captured by the
		// snapshot, so redo must skip it — proven by y staying 0.
		{LSN: 1, Type: wal.RecPrepared, Tx: tx(1), Writes: []model.WriteRecord{{Item: "y", Value: 999, Version: 9}}},
		{LSN: 2, Type: wal.RecDecision, Tx: tx(1), Commit: true},
		// At/after the horizon: must be redone.
		{LSN: 10, Type: wal.RecPrepared, Tx: tx(2), Writes: []model.WriteRecord{{Item: "x", Value: 60, Version: 6}}},
		{LSN: 11, Type: wal.RecDecision, Tx: tx(2), Commit: true},
		// In-doubt from BELOW the horizon (its segment was pinned): must
		// surface but not install.
		{LSN: 3, Type: wal.RecPrepared, Tx: tx(3), Coordinator: "C",
			Writes: []model.WriteRecord{{Item: "y", Value: 77, Version: 7}}},
	}
	s := NewSharded(2)
	inDoubt, err := s.RecoverRecords(items, snapshot, 10, recs)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := s.Get("x"); c.Value != 60 || c.Version != 6 {
		t.Errorf("x = %+v, want redo result 60@v6", c)
	}
	if c, _ := s.Get("y"); c.Value != 0 {
		t.Errorf("y = %+v: below-horizon decision must not re-apply and in-doubt must not install", c)
	}
	if s.Has("dropped") {
		t.Error("snapshot resurrected an item the schema no longer hosts")
	}
	if len(inDoubt) != 1 || inDoubt[0].Tx != tx(3) {
		t.Fatalf("inDoubt = %+v, want tx 3 only", inDoubt)
	}
}

// TestCaptureCopyOnWrite: a sealed shard's captured map must stay frozen at
// capture time — installs arriving after the seal clone the map first.
func TestCaptureCopyOnWrite(t *testing.T) {
	s := NewSharded(4)
	s.Init(map[model.ItemID]int64{"a": 1, "b": 2, "c": 3})

	cap1 := s.BeginCapture(0) // full capture: everything dirty since Init
	if cap1.Dirty == 0 || cap1.Total != 4 {
		t.Fatalf("full capture = %d/%d shards", cap1.Dirty, cap1.Total)
	}
	// Mutate AFTER the seal but BEFORE Collect: the capture must not see it.
	if err := s.Apply([]model.WriteRecord{{Item: "a", Value: 100, Version: 1}}); err != nil {
		t.Fatal(err)
	}
	got := cap1.Collect()
	if got["a"].Value != 1 {
		t.Errorf("capture saw a post-seal install: a = %+v", got["a"])
	}
	if len(got) != 3 {
		t.Errorf("full capture has %d items, want 3", len(got))
	}
	// The live store did take the write.
	if c, _ := s.Get("a"); c.Value != 100 {
		t.Errorf("live store lost the install: %+v", c)
	}

	// Second capture since the first: only the shard dirtied by "a" is in.
	cap2 := s.BeginCapture(cap1.Epoch)
	if cap2.Dirty != 1 {
		t.Errorf("delta capture sealed %d shards, want 1", cap2.Dirty)
	}
	delta := cap2.Collect()
	if delta["a"].Value != 100 {
		t.Errorf("delta capture missed the new value: %+v", delta["a"])
	}
	// A capture with nothing dirtied since is empty.
	cap3 := s.BeginCapture(cap2.Epoch)
	if cap3.Dirty != 0 || len(cap3.Collect()) != 0 {
		t.Errorf("idle capture = %d shards, %d items", cap3.Dirty, cap3.Items())
	}
}

// TestDirtyShardsGauge tracks the pending-delta gauge across captures.
func TestDirtyShardsGauge(t *testing.T) {
	s := NewSharded(8)
	items := make(map[model.ItemID]int64)
	for i := 0; i < 64; i++ {
		items[model.ItemID(fmt.Sprintf("i%02d", i))] = 0
	}
	s.Init(items)
	if got := s.DirtyShards(0); got != 8 {
		t.Errorf("DirtyShards(0) = %d, want all 8", got)
	}
	c := s.BeginCapture(0)
	if got := s.DirtyShards(c.Epoch); got != 0 {
		t.Errorf("DirtyShards after capture = %d, want 0", got)
	}
	if err := s.Apply([]model.WriteRecord{{Item: "i00", Value: 1, Version: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := s.DirtyShards(c.Epoch); got != 1 {
		t.Errorf("DirtyShards after one install = %d, want 1", got)
	}
}

// TestCaptureConcurrentApply hammers Apply/Get from many goroutines while
// captures run, for the race detector; each Collect must be internally
// consistent (only values that existed at or before its seal point per item
// version monotonicity).
func TestCaptureConcurrentApply(t *testing.T) {
	s := NewSharded(8)
	const nItems = 128
	items := make(map[model.ItemID]int64, nItems)
	ids := make([]model.ItemID, nItems)
	for i := range ids {
		ids[i] = model.ItemID(fmt.Sprintf("i%03d", i))
		items[ids[i]] = 0
	}
	s.Init(items)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := 1; ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				it := ids[(g*31+v)%nItems]
				s.Apply([]model.WriteRecord{{Item: it, Value: int64(v), Version: model.Version(v)}}) //nolint:errcheck
				s.Get(it)
			}
		}(g)
	}
	since := uint64(0)
	for i := 0; i < 50; i++ {
		c := s.BeginCapture(since)
		snap := c.Collect()
		for id, copyv := range snap {
			if copyv.Version < 0 {
				t.Fatalf("impossible version for %s: %+v", id, copyv)
			}
		}
		since = c.Epoch
	}
	close(stop)
	wg.Wait()
}
