package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/wal"
)

func newStore(items map[model.ItemID]int64) *Store {
	s := New()
	s.Init(items)
	return s
}

func TestInitAndGet(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 10, "y": 20})
	c, ok := s.Get("x")
	if !ok || c.Value != 10 || c.Version != 0 {
		t.Errorf("Get(x) = %+v, %v", c, ok)
	}
	if _, ok := s.Get("z"); ok {
		t.Error("Get of unhosted item should report absence")
	}
	if !s.Has("y") || s.Has("z") {
		t.Error("Has is wrong")
	}
}

func TestApplyInstallsNewerVersions(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 0})
	if err := s.Apply([]model.WriteRecord{{Item: "x", Value: 5, Version: 1}}); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Get("x")
	if c.Value != 5 || c.Version != 1 {
		t.Errorf("copy = %+v", c)
	}
}

func TestApplyIgnoresStaleVersions(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 0})
	s.Apply([]model.WriteRecord{{Item: "x", Value: 5, Version: 3}})
	s.Apply([]model.WriteRecord{{Item: "x", Value: 99, Version: 2}}) // stale
	c, _ := s.Get("x")
	if c.Value != 5 || c.Version != 3 {
		t.Errorf("stale write applied: %+v", c)
	}
	// Re-applying the same record (replay) is a no-op.
	s.Apply([]model.WriteRecord{{Item: "x", Value: 5, Version: 3}})
	c, _ = s.Get("x")
	if c.Value != 5 || c.Version != 3 {
		t.Errorf("idempotent replay broke copy: %+v", c)
	}
}

func TestApplyUnknownItemFails(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 0})
	if err := s.Apply([]model.WriteRecord{{Item: "nope", Value: 1, Version: 1}}); err == nil {
		t.Error("apply to unhosted item should fail")
	}
}

func TestItemsSorted(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"c": 0, "a": 0, "b": 0})
	items := s.Items()
	if len(items) != 3 || items[0] != "a" || items[1] != "b" || items[2] != "c" {
		t.Errorf("Items = %v", items)
	}
}

func TestSnapshotIsIsolated(t *testing.T) {
	s := newStore(map[model.ItemID]int64{"x": 1})
	snap := s.Snapshot()
	snap["x"] = Copy{Value: 999, Version: 999}
	c, _ := s.Get("x")
	if c.Value != 1 {
		t.Error("snapshot shares memory with store")
	}
}

func txid(seq uint64) model.TxID { return model.TxID{Site: "S1", Seq: seq} }

func TestRecoverRedoesCommitted(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(1), Commit: true})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Errorf("in-doubt = %v", inDoubt)
	}
	c, _ := s.Get("x")
	if c.Value != 7 || c.Version != 1 {
		t.Errorf("committed write not redone: %+v", c)
	}
}

func TestRecoverSkipsAborted(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(1), Commit: false})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Errorf("aborted tx reported in-doubt: %v", inDoubt)
	}
	c, _ := s.Get("x")
	if c.Value != 0 || c.Version != 0 {
		t.Errorf("aborted write applied: %+v", c)
	}
}

func TestRecoverReportsInDoubt(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{
		Type: wal.RecPrepared, Tx: txid(2),
		TS:           model.Timestamp{Time: 5, Site: "S1"},
		Coordinator:  "S9",
		Participants: []model.SiteID{"S1", "S9"},
		ThreePhase:   true,
		Writes:       []model.WriteRecord{{Item: "x", Value: 3, Version: 2}},
	})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 {
		t.Fatalf("in-doubt = %v", inDoubt)
	}
	r := inDoubt[0]
	if r.Tx != txid(2) || r.Coordinator != "S9" || !r.ThreePhase ||
		len(r.Participants) != 2 || len(r.Writes) != 1 {
		t.Errorf("recovered tx = %+v", r)
	}
	// The write must NOT be applied until the outcome is known.
	c, _ := s.Get("x")
	if c.Version != 0 {
		t.Errorf("in-doubt write applied early: %+v", c)
	}
}

func TestRecoverEndRecordClearsInDoubt(t *testing.T) {
	log := wal.NewMemory()
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecEnd, Tx: txid(1)})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Errorf("RecEnd should clear in-doubt state: %v", inDoubt)
	}
}

func TestRecoverMultipleTxOrder(t *testing.T) {
	log := wal.NewMemory()
	// Two committed writes to the same item: latest version wins.
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(1),
		Writes: []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(1), Commit: true})
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(2),
		Writes: []model.WriteRecord{{Item: "x", Value: 2, Version: 2}}})
	log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(2), Commit: true})
	// Plus two in-doubt transactions, reported in prepare order.
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(4)})
	log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(3)})

	s := New()
	inDoubt, err := s.Recover(map[model.ItemID]int64{"x": 0}, log)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.Get("x")
	if c.Value != 2 || c.Version != 2 {
		t.Errorf("copy after replay = %+v", c)
	}
	if len(inDoubt) != 2 || inDoubt[0].Tx != txid(4) || inDoubt[1].Tx != txid(3) {
		t.Errorf("in-doubt order = %v", inDoubt)
	}
}

func TestRecoverPropertyFinalStateMatchesOnline(t *testing.T) {
	// Property: replaying a log of committed transactions yields the same
	// store as applying them online, regardless of the version sequence.
	f := func(vals []int64) bool {
		log := wal.NewMemory()
		online := newStore(map[model.ItemID]int64{"x": 0})
		for i, v := range vals {
			w := []model.WriteRecord{{Item: "x", Value: v, Version: model.Version(i + 1)}}
			log.Append(wal.Record{Type: wal.RecPrepared, Tx: txid(uint64(i)), Writes: w})
			log.Append(wal.Record{Type: wal.RecDecision, Tx: txid(uint64(i)), Commit: true})
			online.Apply(w)
		}
		recovered := New()
		if _, err := recovered.Recover(map[model.ItemID]int64{"x": 0}, log); err != nil {
			return false
		}
		a, _ := online.Get("x")
		b, _ := recovered.Get("x")
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
