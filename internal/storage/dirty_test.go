package storage

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/wal"
)

// TestRecoverRecordsSurfacesTermState: an in-doubt 3PC transaction's
// electorate, promised ballot and accepted pre-decision ride the recovered
// record set, and the highest-ballot pre-decision wins regardless of
// append order.
func TestRecoverRecordsSurfacesTermState(t *testing.T) {
	tx := model.TxID{Site: "S1", Seq: 3}
	recs := []wal.Record{
		{
			Type: wal.RecPrepared, Tx: tx,
			TS:           model.Timestamp{Time: 3, Site: "S1"},
			Coordinator:  "S1",
			Participants: []model.SiteID{"S1", "S2", "S3"},
			Voters:       []model.SiteID{"S1", "S2"},
			ThreePhase:   true,
			Writes:       []model.WriteRecord{{Item: "x", Value: 9, Version: 1}},
		},
		{Type: wal.RecPreDecide, Tx: tx, Commit: true, Ballot: model.Ballot{N: 0, Site: "S1"}},
		{Type: wal.RecElect, Tx: tx, Ballot: model.Ballot{N: 4, Site: "S3"}},
		// A stale (lower-ballot) pre-decision logged AFTER the higher one
		// above must not win.
		{Type: wal.RecPreDecide, Tx: tx, Commit: false, Ballot: model.Ballot{N: 2, Site: "S2"}},
	}
	for i := range recs {
		recs[i].LSN = uint64(i + 1)
	}
	s := NewSharded(4)
	inDoubt, err := s.RecoverRecords(map[model.ItemID]int64{"x": 1}, nil, 0, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 {
		t.Fatalf("in-doubt = %d, want 1", len(inDoubt))
	}
	r := inDoubt[0]
	if got, want := fmt.Sprintf("%v", r.Voters), "[S1 S2]"; got != want {
		t.Errorf("voters = %s, want %s", got, want)
	}
	if r.EA != (model.Ballot{N: 4, Site: "S3"}) {
		t.Errorf("EA = %+v, want 4@S3", r.EA)
	}
	if r.EB != (model.Ballot{N: 2, Site: "S2"}) || r.PreDecide {
		t.Errorf("EB/PreDecide = %+v/%v, want 2@S2 pre-abort", r.EB, r.PreDecide)
	}

	// A decision retires the term state entirely.
	recs = append(recs, wal.Record{Type: wal.RecDecision, Tx: tx, Commit: true, LSN: 5})
	s2 := NewSharded(4)
	inDoubt, err = s2.RecoverRecords(map[model.ItemID]int64{"x": 1}, nil, 0, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("decided transaction still in doubt: %+v", inDoubt)
	}
}

func applyOne(t *testing.T, s *Store, item model.ItemID, val int64, ver model.Version) {
	t.Helper()
	if err := s.Apply([]model.WriteRecord{{Item: item, Value: val, Version: ver}}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaCaptureItemGranular: a delta capture of a hot shard carries only
// the items written since the previous capture, not the whole shard map.
func TestDeltaCaptureItemGranular(t *testing.T) {
	s := NewSharded(1) // one shard: everything is "hot"
	items := make(map[model.ItemID]int64)
	for i := 0; i < 64; i++ {
		items[model.ItemID(fmt.Sprintf("i%02d", i))] = 0
	}
	s.Init(items)
	for i := 0; i < 64; i++ {
		applyOne(t, s, model.ItemID(fmt.Sprintf("i%02d", i)), 1, 1)
	}
	full := s.BeginCapture(0)
	if got := len(full.Collect()); got != 64 {
		t.Fatalf("full capture = %d items, want 64", got)
	}

	applyOne(t, s, "i07", 2, 2)
	applyOne(t, s, "i21", 2, 2)
	delta := s.BeginCapture(full.Epoch)
	got := delta.Collect()
	if len(got) != 2 {
		t.Fatalf("delta capture = %d items (%v), want exactly the 2 written", len(got), got)
	}
	if got["i07"].Version != 2 || got["i21"].Version != 2 {
		t.Errorf("delta carries wrong copies: %v", got)
	}
	if delta.Items() != 2 {
		t.Errorf("capture.Items() = %d, want 2", delta.Items())
	}

	// The next delta sees only what was written after THIS capture.
	applyOne(t, s, "i42", 2, 2)
	delta2 := s.BeginCapture(delta.Epoch)
	if got := delta2.Collect(); len(got) != 1 || got["i42"].Version != 2 {
		t.Fatalf("second delta = %v, want just i42", got)
	}
}

// TestDeltaCaptureRetryAfterFailureKeepsItems: the sweep prunes only
// entries below since — a failed snapshot attempt retries with the SAME
// since, and every item it needs must still be there.
func TestDeltaCaptureRetryAfterFailureKeepsItems(t *testing.T) {
	s := NewSharded(1)
	s.Init(map[model.ItemID]int64{"a": 0, "b": 0})
	full := s.BeginCapture(0)
	full.Collect()

	applyOne(t, s, "a", 1, 1)
	// First attempt (fails downstream, by assumption): same-since retry
	// must still see "a".
	first := s.BeginCapture(full.Epoch)
	first.Collect()
	retry := s.BeginCapture(full.Epoch)
	if got := retry.Collect(); len(got) != 1 || got["a"].Version != 1 {
		t.Fatalf("retry capture = %v, want item a", got)
	}
}

// TestDeltaCaptureShardGranularAblation: with item tracking off, a delta
// falls back to whole dirty shards (the pre-item behavior).
func TestDeltaCaptureShardGranularAblation(t *testing.T) {
	s := NewSharded(1)
	s.TrackDirtyItems(false)
	s.Init(map[model.ItemID]int64{"a": 0, "b": 0, "c": 0})
	full := s.BeginCapture(0)
	full.Collect()
	applyOne(t, s, "a", 1, 1)
	delta := s.BeginCapture(full.Epoch)
	if got := delta.Collect(); len(got) != 3 {
		t.Fatalf("shard-granular delta = %d items, want the whole shard (3)", len(got))
	}
}

// TestDeltaCaptureCOWInstallDuringCapture: an install landing between
// BeginCapture and Collect clones the sealed map; the capture stays frozen
// and the new write belongs to the NEXT delta.
func TestDeltaCaptureCOWInstallDuringCapture(t *testing.T) {
	s := NewSharded(1)
	s.Init(map[model.ItemID]int64{"a": 0, "b": 0})
	full := s.BeginCapture(0)
	full.Collect()
	applyOne(t, s, "a", 1, 1)

	delta := s.BeginCapture(full.Epoch)
	applyOne(t, s, "b", 5, 1) // lands after the seal
	got := delta.Collect()
	if len(got) != 1 || got["a"].Version != 1 {
		t.Fatalf("capture polluted by post-seal install: %v", got)
	}
	next := s.BeginCapture(delta.Epoch)
	if got := next.Collect(); len(got) != 1 || got["b"].Value != 5 {
		t.Fatalf("post-seal install lost from next delta: %v", got)
	}
}
