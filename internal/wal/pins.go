package wal

import (
	"sort"

	"repro/internal/model"
)

// pinTracker maintains, per transaction, the LSNs of its recovery-critical
// records (Prepared, plus the 3PC termination Elect/PreDecide records) and
// the first Decision/End LSN ever appended — the inputs to compaction's
// in-doubt pinning rule. An in-doubt transaction's termination state is as
// load-bearing as its Prepared record: dropping a logged pre-decision would
// let a recovered member rejoin quorum termination with a stale ballot.
// Both Compactable backends (MemoryLog and SegmentedLog) share it so the
// pinning semantics cannot drift between the simulated and file-backed
// logs. Callers provide their own locking.
type pinTracker struct {
	held    map[model.TxID][]uint64
	decided map[model.TxID]uint64
}

func newPinTracker() pinTracker {
	return pinTracker{
		held:    make(map[model.TxID][]uint64),
		decided: make(map[model.TxID]uint64),
	}
}

// track records one appended record. LSNs arrive in append order, so each
// transaction's held list stays sorted.
func (t *pinTracker) track(typ RecType, tx model.TxID, lsn uint64) {
	switch typ {
	case RecPrepared, RecElect, RecPreDecide:
		t.held[tx] = append(t.held[tx], lsn)
	case RecDecision, RecEnd:
		if _, ok := t.decided[tx]; !ok {
			t.decided[tx] = lsn
		}
	}
}

// pinned reports whether tx holds recovery-critical records below horizon
// and was still undecided as of horizon — those records must survive
// compaction.
func (t *pinTracker) pinned(tx model.TxID, horizon uint64) bool {
	h, ok := t.held[tx]
	if !ok || len(h) == 0 || h[0] >= horizon {
		return false
	}
	d, ok := t.decided[tx]
	return !ok || d >= horizon
}

// pins returns the sorted held LSNs (below horizon) of every transaction
// pinned as of horizon (segment-granular compaction checks ranges against
// them).
func (t *pinTracker) pins(horizon uint64) []uint64 {
	var out []uint64
	for tx, h := range t.held {
		if len(h) == 0 || h[0] >= horizon || !t.pinned(tx, horizon) {
			continue
		}
		for _, lsn := range h {
			if lsn < horizon {
				out = append(out, lsn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// prune drops entries for transactions fully resolved below horizon; they
// can never be pinned by any future (monotonically increasing) horizon.
func (t *pinTracker) prune(horizon uint64) {
	for tx, h := range t.held {
		d, ok := t.decided[tx]
		if ok && d < horizon && len(h) > 0 && h[len(h)-1] < horizon {
			delete(t.held, tx)
			delete(t.decided, tx)
		}
	}
	for tx, d := range t.decided {
		if _, ok := t.held[tx]; !ok && d < horizon {
			delete(t.decided, tx)
		}
	}
}
