package wal

import (
	"sort"

	"repro/internal/model"
)

// pinTracker maintains, per transaction, the first Prepared LSN and the
// first Decision/End LSN ever appended — the inputs to compaction's
// in-doubt pinning rule. Both Compactable backends (MemoryLog and
// SegmentedLog) share it so the pinning semantics cannot drift between the
// simulated and file-backed logs. Callers provide their own locking.
type pinTracker struct {
	prepared map[model.TxID]uint64
	decided  map[model.TxID]uint64
}

func newPinTracker() pinTracker {
	return pinTracker{
		prepared: make(map[model.TxID]uint64),
		decided:  make(map[model.TxID]uint64),
	}
}

// track records one appended record.
func (t *pinTracker) track(typ RecType, tx model.TxID, lsn uint64) {
	switch typ {
	case RecPrepared:
		if _, ok := t.prepared[tx]; !ok {
			t.prepared[tx] = lsn
		}
	case RecDecision, RecEnd:
		if _, ok := t.decided[tx]; !ok {
			t.decided[tx] = lsn
		}
	}
}

// pinned reports whether tx was prepared below horizon and still undecided
// as of horizon — its Prepared record must survive compaction.
func (t *pinTracker) pinned(tx model.TxID, horizon uint64) bool {
	p, ok := t.prepared[tx]
	if !ok || p >= horizon {
		return false
	}
	d, ok := t.decided[tx]
	return !ok || d >= horizon
}

// pins returns the sorted Prepared LSNs of every transaction pinned as of
// horizon (segment-granular compaction checks ranges against them).
func (t *pinTracker) pins(horizon uint64) []uint64 {
	var out []uint64
	for tx, p := range t.prepared {
		if p < horizon && t.pinned(tx, horizon) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// prune drops entries for transactions fully resolved below horizon; they
// can never be pinned by any future (monotonically increasing) horizon.
func (t *pinTracker) prune(horizon uint64) {
	for tx, p := range t.prepared {
		if d, ok := t.decided[tx]; ok && d < horizon && p < horizon {
			delete(t.prepared, tx)
			delete(t.decided, tx)
		}
	}
	for tx, d := range t.decided {
		if _, ok := t.prepared[tx]; !ok && d < horizon {
			delete(t.decided, tx)
		}
	}
}
