package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/model"
)

// A Codec serializes one Record payload. Segments frame every payload with a
// length prefix and a CRC32 regardless of codec, so torn and corrupt records
// are detected positively (checksum mismatch) instead of by parse failure.
//
// Two codecs exist: the compact binary encoding used for new segments, and a
// JSON encoding kept for reading (and, via SegmentOptions.Codec, writing)
// legacy-style logs and for codec ablation benchmarks.
type Codec interface {
	// Name returns "binary" or "json".
	Name() string
	// ID is the codec byte stored in a segment header.
	ID() uint8
	// Append serializes r onto buf and returns the extended buffer.
	Append(buf []byte, r *Record) ([]byte, error)
	// Decode parses one payload produced by Append.
	Decode(payload []byte) (Record, error)
}

// Codec IDs stored in segment headers.
const (
	codecIDBinary uint8 = 1
	codecIDJSON   uint8 = 2
)

// CodecByName resolves a codec flag value ("binary", "json", "" = binary).
func CodecByName(name string) (Codec, error) {
	switch name {
	case "binary", "":
		return BinaryCodec{}, nil
	case "json":
		return JSONCodec{}, nil
	default:
		return nil, fmt.Errorf("wal: unknown codec %q", name)
	}
}

func codecByID(id uint8) (Codec, error) {
	switch id {
	case codecIDBinary:
		return BinaryCodec{}, nil
	case codecIDJSON:
		return JSONCodec{}, nil
	default:
		return nil, fmt.Errorf("wal: unknown codec id %d", id)
	}
}

// ---- Frame layer ----

// frameHeaderSize is the per-record framing overhead: a uint32 payload
// length followed by a uint32 CRC32 (IEEE) of the payload.
const frameHeaderSize = 8

// maxFrameSize bounds a single record payload; larger frames are treated as
// corruption (a garbage length prefix would otherwise drive huge reads).
const maxFrameSize = 64 << 20

// appendFrame frames payload bytes produced by a codec.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// ---- Binary codec ----

// binaryVersion is the binary record-encoding version byte. Version 2
// appended the termination electorate (Voters) and the election Ballot;
// version-1 records (written before quorum-based 3PC termination) decode
// with those fields zero. Version 3 appended per-write delta flags
// (commutative blind-add records); older records decode with every write
// absolute.
const binaryVersion = 3

// BinaryCodec is the compact length-delimited binary record encoding:
// varint-encoded integers and length-prefixed strings, roughly 3-4x smaller
// than the JSON encoding and allocation-free to encode.
type BinaryCodec struct{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "binary" }

// ID implements Codec.
func (BinaryCodec) ID() uint8 { return codecIDBinary }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Append implements Codec.
func (BinaryCodec) Append(buf []byte, r *Record) ([]byte, error) {
	buf = append(buf, binaryVersion, byte(r.Type))
	var flags byte
	if r.ThreePhase {
		flags |= 1
	}
	if r.Commit {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = appendString(buf, string(r.Tx.Site))
	buf = binary.AppendUvarint(buf, r.Tx.Seq)
	buf = binary.AppendUvarint(buf, r.TS.Time)
	buf = appendString(buf, string(r.TS.Site))
	buf = appendString(buf, string(r.Coordinator))
	buf = binary.AppendUvarint(buf, uint64(len(r.Participants)))
	for _, p := range r.Participants {
		buf = appendString(buf, string(p))
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Writes)))
	for _, w := range r.Writes {
		buf = appendString(buf, string(w.Item))
		buf = binary.AppendVarint(buf, w.Value)
		buf = binary.AppendUvarint(buf, uint64(w.Version))
	}
	buf = binary.AppendUvarint(buf, r.Horizon)
	// Version-2 fields.
	buf = binary.AppendUvarint(buf, uint64(len(r.Voters)))
	for _, p := range r.Voters {
		buf = appendString(buf, string(p))
	}
	buf = binary.AppendUvarint(buf, r.Ballot.N)
	buf = appendString(buf, string(r.Ballot.Site))
	// Version-3 fields: one delta flag per write, in write order (appended at
	// the end so version-2 readers never see them).
	for _, w := range r.Writes {
		var delta byte
		if w.Delta {
			delta = 1
		}
		buf = append(buf, delta)
	}
	return buf, nil
}

// binReader walks a binary payload, latching the first error.
type binReader struct {
	b   []byte
	err error
}

func (d *binReader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated binary record")
	}
}

func (d *binReader) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *binReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binReader) string() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Decode implements Codec.
func (BinaryCodec) Decode(payload []byte) (Record, error) {
	d := &binReader{b: payload}
	version := d.byte()
	if d.err == nil && (version < 1 || version > binaryVersion) {
		return Record{}, fmt.Errorf("wal: unsupported binary record version %d", version)
	}
	var r Record
	r.Type = RecType(d.byte())
	flags := d.byte()
	r.ThreePhase = flags&1 != 0
	r.Commit = flags&2 != 0
	r.Tx.Site = model.SiteID(d.string())
	r.Tx.Seq = d.uvarint()
	r.TS.Time = d.uvarint()
	r.TS.Site = model.SiteID(d.string())
	r.Coordinator = model.SiteID(d.string())
	if n := d.uvarint(); d.err == nil && n > 0 {
		if n > uint64(len(d.b)) {
			d.fail()
		} else {
			r.Participants = make([]model.SiteID, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				r.Participants = append(r.Participants, model.SiteID(d.string()))
			}
		}
	}
	if n := d.uvarint(); d.err == nil && n > 0 {
		if n > uint64(len(d.b)) {
			d.fail()
		} else {
			r.Writes = make([]model.WriteRecord, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				var w model.WriteRecord
				w.Item = model.ItemID(d.string())
				w.Value = d.varint()
				w.Version = model.Version(d.uvarint())
				r.Writes = append(r.Writes, w)
			}
		}
	}
	r.Horizon = d.uvarint()
	if version >= 2 {
		if n := d.uvarint(); d.err == nil && n > 0 {
			if n > uint64(len(d.b)) {
				d.fail()
			} else {
				r.Voters = make([]model.SiteID, 0, n)
				for i := uint64(0); i < n && d.err == nil; i++ {
					r.Voters = append(r.Voters, model.SiteID(d.string()))
				}
			}
		}
		r.Ballot.N = d.uvarint()
		r.Ballot.Site = model.SiteID(d.string())
	}
	if version >= 3 {
		for i := range r.Writes {
			r.Writes[i].Delta = d.byte() != 0
		}
	}
	if d.err != nil {
		return Record{}, d.err
	}
	return r, nil
}

// ---- JSON codec ----

// JSONCodec serializes records as the same JSON objects the legacy
// line-framed FileLog writes, so old logs stay readable and the binary
// encoding has an ablation baseline.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

// ID implements Codec.
func (JSONCodec) ID() uint8 { return codecIDJSON }

// Append implements Codec.
func (JSONCodec) Append(buf []byte, r *Record) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("wal: marshal record: %w", err)
	}
	return append(buf, b...), nil
}

// Decode implements Codec.
func (JSONCodec) Decode(payload []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, fmt.Errorf("wal: unmarshal record: %w", err)
	}
	return r, nil
}
