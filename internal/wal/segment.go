package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// ErrCorrupt marks a record whose checksum does not match its payload —
// positive corruption detection, as opposed to the parse-failure heuristic
// the legacy JSON-lines log relies on. A torn tail (an incomplete final
// frame left by a crash mid-force) is NOT corruption and is truncated away;
// ErrCorrupt means a fully framed record failed its CRC.
var ErrCorrupt = errors.New("wal: corrupt record (crc mismatch)")

// DefaultSegmentBytes is the rotation threshold when SegmentOptions leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

const (
	segSuffix     = ".seg"
	segTmpSuffix  = ".seg-rewrite"
	segHeaderSize = 24 // magic(8) + first LSN(8) + codec(1) + flags(1) + reserved(6)
)

// segFlagSparse (header flags bit) marks a segment rewritten by compaction
// down to its pinned records: frames are no longer LSN-dense, so each one is
// prefixed with its explicit 8-byte LSN. Pre-flag segments carry a zero
// flags byte (it was reserved) and parse as dense.
const segFlagSparse = 1 << 0

var segMagic = [8]byte{'R', 'B', 'W', 'S', 'E', 'G', '1', 0}

// errRedundantSparse marks a sparse segment whose LSN range was already
// covered by the preceding (dense) segment — the leftover of a crash between
// a sparse rewrite's rename and the removal of the original. The original
// is a superset, so the leftover is simply deleted at open.
var errRedundantSparse = errors.New("wal: redundant sparse rewrite leftover")

// SegmentOptions configures a SegmentedLog.
type SegmentOptions struct {
	// Sync fsyncs every force-write cycle (and every segment seal).
	Sync bool
	// Codec selects the record encoding for newly written segments; nil
	// selects BinaryCodec. Existing segments are read with the codec named
	// in their header regardless of this setting.
	Codec Codec
	// SegmentBytes is the rotation threshold; a segment is sealed once the
	// next batch would push it past this size. <= 0 selects
	// DefaultSegmentBytes. A single batch larger than the threshold still
	// lands in one segment (batches never split).
	SegmentBytes int64
	// NoGroupCommit disables the committer goroutine (ablation knob).
	NoGroupCommit bool
}

// segMeta describes one segment file.
type segMeta struct {
	path    string
	codec   Codec
	legacy  bool // headerless JSON-lines file from the pre-segment era
	sparse  bool // compaction rewrite: pinned records only, explicit LSNs
	first   uint64
	last    uint64 // == first-1 while empty
	size    int64
	records int
}

// segReq is one caller's pre-framed payload parked on the committer.
type segReq struct {
	payload []byte
	metas   []segRecMeta
	done    chan error // buffered(1)
}

// segRecMeta carries the tracking identity of one framed record.
type segRecMeta struct {
	typ RecType
	tx  model.TxID
}

// SegmentedLog is the production file backend: an append-only sequence of
// rotated segment files with length-prefixed, CRC32-checksummed binary
// frames (a versioned header names each segment's codec; headerless
// JSON-lines files from the legacy FileLog era are still readable). It
// group-commits exactly like the legacy FileLog, assigns a log sequence
// number to every record, and supports checkpoint-driven compaction:
// segments wholly below the replay horizon are deleted unless they hold a
// Prepared record of a still-undecided transaction.
type SegmentedLog struct {
	opts SegmentOptions
	dir  string

	// mu guards the open/closed lifecycle.
	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	// ioMu fences force-write cycles, rotation and compaction against
	// ReadAll, so a reader never observes a half-written batch and never
	// races a segment deletion.
	ioMu    sync.Mutex
	f       *os.File
	w       *bufio.Writer
	active  segMeta
	sealed  []segMeta
	nextLSN uint64
	// pins feeds Compact's in-doubt pinning rule (shared with MemoryLog).
	pins pinTracker

	durable   atomic.Uint64
	size      atomic.Uint64
	appended  atomic.Uint64
	flushes   atomic.Uint64
	records   atomic.Uint64
	compacted atomic.Uint64
	rewrites  atomic.Uint64
	flushObs  atomic.Pointer[FlushObserver]

	reqCh  chan *segReq
	stopCh chan struct{}
	doneCh chan struct{}
}

// OpenSegmented opens (creating if needed) a segmented log in dir. Existing
// segments are scanned to rebuild the LSN sequence and the in-doubt pin
// maps; a torn tail on the newest segment is truncated away; a fully framed
// record with a bad CRC fails the open with ErrCorrupt. A fresh active
// segment is always started, so mixed-codec directories reopen cleanly.
func OpenSegmented(dir string, opts SegmentOptions) (*SegmentedLog, error) {
	if opts.Codec == nil {
		opts.Codec = BinaryCodec{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &SegmentedLog{
		opts:    opts,
		dir:     dir,
		nextLSN: 1,
		pins:    newPinTracker(),
	}

	paths, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, path := range paths {
		m, recs, err := l.scanSegment(path, i == len(paths)-1)
		if errors.Is(err, errRedundantSparse) {
			os.Remove(path) //nolint:errcheck
			continue
		}
		if err != nil {
			return nil, err
		}
		if m.records == 0 {
			if m.size > segHeaderSize {
				// Bytes are present but nothing parsed: refuse to guess.
				return nil, fmt.Errorf("wal: segment %s: unreadable (no records in %d bytes)", path, m.size)
			}
			// Nothing acknowledged ever lived here (a crash between segment
			// creation and the first flush); drop the empty shell.
			os.Remove(path) //nolint:errcheck
			continue
		}
		for i := range recs {
			l.pins.track(recs[i].Type, recs[i].Tx, recs[i].LSN)
		}
		l.nextLSN = m.last + 1
		l.size.Add(uint64(m.size))
		l.sealed = append(l.sealed, m)
	}
	l.durable.Store(l.nextLSN - 1)

	if err := l.startSegmentLocked(); err != nil {
		return nil, err
	}
	if !opts.NoGroupCommit {
		l.reqCh = make(chan *segReq, 64)
		l.stopCh = make(chan struct{})
		l.doneCh = make(chan struct{})
		go l.commitLoop()
	}
	return l, nil
}

// Dir returns the log's segment directory (checkpoint snapshots live next
// to the segments).
func (l *SegmentedLog) Dir() string { return l.dir }

// listSegments returns the segment paths in name order; names are
// zero-padded first-LSNs, so name order is LSN order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), segTmpSuffix) {
			// An interrupted sparse rewrite; the original segment survives.
			os.Remove(filepath.Join(dir, e.Name())) //nolint:errcheck
			continue
		}
		if strings.HasSuffix(e.Name(), segSuffix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

func segName(first uint64) string {
	return fmt.Sprintf("%020d%s", first, segSuffix)
}

// scanSegment reads a segment from disk, returning its metadata and
// records. When tail is true (the newest segment) an incomplete final frame
// is truncated away — it is the torn remnant of a crash mid-force and was
// never acknowledged. First LSNs come from the segment header; headerless
// legacy JSON-lines files continue the running sequence.
func (l *SegmentedLog) scanSegment(path string, tail bool) (segMeta, []Record, error) {
	m := segMeta{path: path, first: l.nextLSN}
	f, err := os.Open(path)
	if err != nil {
		return m, nil, fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return m, nil, fmt.Errorf("wal: stat segment %s: %w", path, err)
	}
	if st.Size() == 0 {
		m.last = m.first - 1
		return m, nil, nil
	}

	var hdr [segHeaderSize]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF {
		return m, nil, fmt.Errorf("wal: read segment header %s: %w", path, err)
	}
	switch {
	case n >= 8 && [8]byte(hdr[0:8]) == segMagic:
		if n < segHeaderSize {
			if !tail {
				return m, nil, fmt.Errorf("wal: segment %s: truncated header", path)
			}
			m.last = m.first - 1
			return m, nil, nil // torn header: nothing acknowledged
		}
		first := binary.LittleEndian.Uint64(hdr[8:16])
		codec, err := codecByID(hdr[16])
		if err != nil {
			return m, nil, fmt.Errorf("wal: segment %s: %w", path, err)
		}
		sparse := hdr[17]&segFlagSparse != 0
		if first < l.nextLSN {
			if sparse {
				// A crash between a sparse rewrite's rename and the removal of
				// the original left both behind; the original (scanned first —
				// lower first LSN, lower name) is a superset of this one. The
				// sentinel travels wrapped in segment context like every other
				// scan error, so callers must match it with errors.Is.
				return m, nil, fmt.Errorf("wal: segment %s: %w", path, errRedundantSparse)
			}
			return m, nil, fmt.Errorf("wal: segment %s: first LSN %d overlaps sequence at %d", path, first, l.nextLSN)
		}
		m.first, m.codec, m.sparse = first, codec, sparse
		var recs []Record
		var validSize int64
		if sparse {
			recs, validSize, err = readSparseFrames(f, first, codec, segHeaderSize)
		} else {
			recs, validSize, err = readFrames(f, m.first, codec, segHeaderSize, tail)
		}
		if err != nil {
			return m, nil, fmt.Errorf("wal: segment %s: %w", path, err)
		}
		if validSize < st.Size() {
			if err := os.Truncate(path, validSize); err != nil {
				return m, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
		}
		m.size = validSize
		m.records = len(recs)
		m.last = m.first + uint64(len(recs)) - 1
		if sparse && len(recs) > 0 {
			m.last = recs[len(recs)-1].LSN
		}
		return m, recs, nil
	default:
		// No magic: a legacy JSON-lines log (the pre-segment FileLog
		// format) dropped into the directory. Read-only; LSNs continue the
		// running sequence.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return m, nil, err
		}
		recs, err := readLegacyLines(f, m.first)
		if err != nil {
			return m, nil, fmt.Errorf("wal: legacy segment %s: %w", path, err)
		}
		m.legacy = true
		m.codec = JSONCodec{}
		m.size = st.Size()
		m.records = len(recs)
		m.last = m.first + uint64(len(recs)) - 1
		return m, recs, nil
	}
}

// readFrames parses framed records from r starting at LSN first. offset is
// the file position of the first frame (for torn-tail truncation
// reporting); tail enables torn-tail tolerance. It returns the records and
// the file size up to the end of the last complete frame.
func readFrames(r io.Reader, first uint64, codec Codec, offset int64, tail bool) ([]Record, int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var recs []Record
	valid := offset
	lsn := first
	for {
		var hdr [frameHeaderSize]byte
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return recs, valid, nil
		}
		if err == io.ErrUnexpectedEOF {
			if tail {
				return recs, valid, nil // torn frame header
			}
			return recs, valid, fmt.Errorf("truncated frame header at offset %d (n=%d)", valid, n)
		}
		if err != nil {
			return recs, valid, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxFrameSize {
			if tail {
				return recs, valid, nil // garbage length in a torn tail
			}
			return recs, valid, fmt.Errorf("frame at offset %d: implausible length %d: %w", valid, length, ErrCorrupt)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if (err == io.ErrUnexpectedEOF || err == io.EOF) && tail {
				return recs, valid, nil // torn payload
			}
			return recs, valid, fmt.Errorf("frame at offset %d: %w", valid, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			// The frame is complete — its bytes are all present — so this is
			// bitrot, not a torn write: refuse to silently drop forced data.
			return recs, valid, fmt.Errorf("frame at offset %d (lsn %d): %w", valid, lsn, ErrCorrupt)
		}
		rec, err := codec.Decode(payload)
		if err != nil {
			return recs, valid, fmt.Errorf("frame at offset %d: %w", valid, err)
		}
		rec.LSN = lsn
		lsn++
		recs = append(recs, rec)
		valid += int64(frameHeaderSize) + int64(length)
	}
}

// readSparseFrames parses a sparse (compaction-rewritten) segment: every
// frame is prefixed with its explicit 8-byte LSN, and LSNs must be strictly
// increasing starting at the header's first LSN. Sparse segments are written
// whole (temp file + rename), never appended to, so there is no torn-tail
// tolerance: any truncation or checksum failure is corruption.
func readSparseFrames(r io.Reader, first uint64, codec Codec, offset int64) ([]Record, int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var recs []Record
	valid := offset
	prev := first - 1
	for {
		var pre [8 + frameHeaderSize]byte
		n, err := io.ReadFull(br, pre[:])
		if err == io.EOF {
			return recs, valid, nil
		}
		if err == io.ErrUnexpectedEOF {
			return recs, valid, fmt.Errorf("truncated sparse frame at offset %d (n=%d)", valid, n)
		}
		if err != nil {
			return recs, valid, err
		}
		lsn := binary.LittleEndian.Uint64(pre[0:8])
		length := binary.LittleEndian.Uint32(pre[8:12])
		sum := binary.LittleEndian.Uint32(pre[12:16])
		if lsn <= prev {
			return recs, valid, fmt.Errorf("sparse frame at offset %d: LSN %d not after %d: %w", valid, lsn, prev, ErrCorrupt)
		}
		if length > maxFrameSize {
			return recs, valid, fmt.Errorf("sparse frame at offset %d: implausible length %d: %w", valid, length, ErrCorrupt)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, valid, fmt.Errorf("sparse frame at offset %d: %w", valid, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, valid, fmt.Errorf("sparse frame at offset %d (lsn %d): %w", valid, lsn, ErrCorrupt)
		}
		rec, err := codec.Decode(payload)
		if err != nil {
			return recs, valid, fmt.Errorf("sparse frame at offset %d: %w", valid, err)
		}
		rec.LSN = lsn
		prev = lsn
		recs = append(recs, rec)
		valid += 8 + int64(frameHeaderSize) + int64(length)
	}
}

// readLegacyLines parses a headerless JSON-lines log, tolerating a torn
// final line exactly like the legacy FileLog reader.
func readLegacyLines(r io.Reader, first uint64) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lsn := first
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn tail line: stop replay here
		}
		rec.LSN = lsn
		lsn++
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return recs, err
	}
	return recs, nil
}

// startSegmentLocked creates a fresh active segment at nextLSN. Callers
// hold ioMu or have exclusive ownership (Open).
func (l *SegmentedLog) startSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.nextLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", path, err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[0:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], l.nextLSN)
	hdr[16] = l.opts.Codec.ID()
	l.f = f
	l.w = bufio.NewWriter(f)
	if _, err := l.w.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header %s: %w", path, err)
	}
	l.active = segMeta{
		path:  path,
		codec: l.opts.Codec,
		first: l.nextLSN,
		last:  l.nextLSN - 1,
		size:  segHeaderSize,
	}
	l.size.Add(segHeaderSize)
	SyncDir(l.dir)
	return nil
}

// rotateLocked seals the active segment and starts a new one. ioMu held.
func (l *SegmentedLog) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush %s: %w", l.active.path, err)
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s: %w", l.active.path, err)
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", l.active.path, err)
	}
	l.sealed = append(l.sealed, l.active)
	return l.startSegmentLocked()
}

// marshalFrames renders records as framed payloads plus tracking metadata;
// marshalling happens in the caller's goroutine so the committer's cycle is
// pure I/O.
func (l *SegmentedLog) marshalFrames(recs []Record) ([]byte, []segRecMeta, error) {
	var buf []byte
	metas := make([]segRecMeta, 0, len(recs))
	var scratch []byte
	for i := range recs {
		payload, err := l.opts.Codec.Append(scratch[:0], &recs[i])
		if err != nil {
			return nil, nil, err
		}
		scratch = payload
		buf = appendFrame(buf, payload)
		metas = append(metas, segRecMeta{typ: recs[i].Type, tx: recs[i].Tx})
	}
	return buf, metas, nil
}

// Append implements Log.
func (l *SegmentedLog) Append(r Record) error {
	return l.AppendBatch([]Record{r})
}

// AppendBatch implements Log. With group commit enabled the call parks on
// the committer and returns once its batch — possibly merged with other
// concurrent appends — has been force-written.
func (l *SegmentedLog) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	payload, metas, err := l.marshalFrames(recs)
	if err != nil {
		return err
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: append to closed log %s", l.dir)
	}
	if l.opts.NoGroupCommit {
		defer l.mu.Unlock()
		return l.force(payload, metas)
	}
	l.inflight.Add(1)
	l.mu.Unlock()
	defer l.inflight.Done()

	req := &segReq{payload: payload, metas: metas, done: make(chan error, 1)}
	l.reqCh <- req
	return <-req.done
}

// force writes one batch through a rotate-if-needed / write / flush / fsync
// cycle and assigns LSNs in commit order. Callers either hold l.mu
// (no-group-commit path) or are the committer goroutine.
func (l *SegmentedLog) force(payload []byte, metas []segRecMeta) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if obs := l.flushObs.Load(); obs != nil {
		start := time.Now()
		defer func() { (*obs)(time.Since(start), uint64(len(metas))) }()
	}
	if l.active.records > 0 && l.active.size+int64(len(payload)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: write %s: %w", l.active.path, err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush %s: %w", l.active.path, err)
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s: %w", l.active.path, err)
		}
	}
	for _, m := range metas {
		l.pins.track(m.typ, m.tx, l.nextLSN)
		l.nextLSN++
	}
	l.active.last = l.nextLSN - 1
	l.active.records += len(metas)
	l.active.size += int64(len(payload))
	l.size.Add(uint64(len(payload)))
	l.appended.Add(uint64(len(payload)))
	l.durable.Store(l.nextLSN - 1)
	l.flushes.Add(1)
	l.records.Add(uint64(len(metas)))
	return nil
}

// commitLoop is the group committer (same shape as the legacy FileLog's):
// take the first parked request, greedily drain the rest, pay one
// force-write for the merged batch.
func (l *SegmentedLog) commitLoop() {
	defer close(l.doneCh)
	for {
		select {
		case req := <-l.reqCh:
			l.commitBatch(req)
		case <-l.stopCh:
			for {
				select {
				case req := <-l.reqCh:
					l.commitBatch(req)
				default:
					return
				}
			}
		}
	}
}

func (l *SegmentedLog) commitBatch(first *segReq) {
	batch := []*segReq{first}
	payload := first.payload
	metas := first.metas
drain:
	for {
		select {
		case req := <-l.reqCh:
			batch = append(batch, req)
			payload = append(payload, req.payload...)
			metas = append(metas, req.metas...)
		default:
			break drain
		}
	}
	err := l.force(payload, metas)
	for _, req := range batch {
		req.done <- err
	}
}

// ReadAll implements Log: every retained record across all segments in LSN
// order. LSN gaps appear where compaction removed whole segments.
func (l *SegmentedLog) ReadAll() ([]Record, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	var out []Record
	for _, m := range l.sealed {
		recs, err := readSegmentFile(m, false)
		if err != nil {
			return out, err
		}
		out = append(out, recs...)
	}
	recs, err := readSegmentFile(l.active, true)
	if err != nil {
		return out, err
	}
	return append(out, recs...), nil
}

// readSegmentFile re-reads a known segment from disk.
func readSegmentFile(m segMeta, tail bool) ([]Record, error) {
	f, err := os.Open(m.path)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen segment %s: %w", m.path, err)
	}
	defer f.Close()
	if m.legacy {
		recs, err := readLegacyLines(f, m.first)
		if err != nil {
			return nil, fmt.Errorf("wal: legacy segment %s: %w", m.path, err)
		}
		return recs, nil
	}
	if _, err := f.Seek(segHeaderSize, io.SeekStart); err != nil {
		return nil, err
	}
	var recs []Record
	if m.sparse {
		recs, _, err = readSparseFrames(f, m.first, m.codec, segHeaderSize)
	} else {
		recs, _, err = readFrames(f, m.first, m.codec, segHeaderSize, tail)
	}
	if err != nil {
		return recs, fmt.Errorf("wal: segment %s: %w", m.path, err)
	}
	return recs, nil
}

// DurableLSN implements Compactable.
func (l *SegmentedLog) DurableLSN() uint64 { return l.durable.Load() }

// AppendedBytes implements Compactable.
func (l *SegmentedLog) AppendedBytes() uint64 { return l.appended.Load() }

// SizeBytes implements Compactable.
func (l *SegmentedLog) SizeBytes() uint64 { return l.size.Load() }

// Segments implements Compactable (sealed segments plus the active one).
func (l *SegmentedLog) Segments() int {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return len(l.sealed) + 1
}

// Compacted returns the lifetime count of segments removed by compaction.
func (l *SegmentedLog) Compacted() uint64 { return l.compacted.Load() }

// Rewrites returns the lifetime count of pinned segments compaction rewrote
// down to their pinned records (sparse segments).
func (l *SegmentedLog) Rewrites() uint64 { return l.rewrites.Load() }

// Compact implements Compactable: sealed segments whose records all lie
// below horizon are deleted, except where a segment holds recovery-critical
// records (Prepared/Elect/PreDecide) of a transaction still undecided as of
// horizon — the in-doubt pins 2PC/3PC termination needs. Pinning is
// record-granular: instead of retaining a whole segment for a handful of
// pinned records, the segment is rewritten down to just those records as a
// sparse segment (explicit per-frame LSNs), so one long-lived orphan bounds
// retained log space by its own records, not by every segment it shares
// with unrelated traffic.
func (l *SegmentedLog) Compact(horizon uint64) (int, error) {
	if horizon == 0 {
		return 0, nil
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()

	pins := l.pins.pins(horizon)
	kept := l.sealed[:0]
	removed := 0
	var firstErr error
	for _, m := range l.sealed {
		if m.last >= horizon {
			kept = append(kept, m)
			continue
		}
		if pinInRange(pins, m.first, m.last) {
			// Legacy JSON-lines segments are read-only artifacts; keep whole.
			if m.legacy {
				kept = append(kept, m)
				continue
			}
			nm, err := l.rewriteSparse(m, pins)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			kept = append(kept, nm)
			continue
		}
		if err := os.Remove(m.path); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: compact %s: %w", m.path, err)
			}
			kept = append(kept, m)
			continue
		}
		l.size.Add(^uint64(m.size - 1)) // subtract
		removed++
	}
	l.sealed = kept
	if removed > 0 {
		SyncDir(l.dir)
		l.compacted.Add(uint64(removed))
	}
	l.pins.prune(horizon)
	return removed, firstErr
}

// rewriteSparse shrinks a fully-below-horizon segment down to its pinned
// records. The replacement is written to a temp file and renamed into place;
// when the first pinned LSN moved the file name changes and the original is
// removed after the rename — a crash in between leaves a dense superset plus
// a redundant sparse file, which open-time scanning deletes. On any error
// the original segment is kept untouched.
func (l *SegmentedLog) rewriteSparse(m segMeta, pins []uint64) (segMeta, error) {
	recs, err := readSegmentFile(m, false)
	if err != nil {
		return m, fmt.Errorf("wal: sparse rewrite read %s: %w", m.path, err)
	}
	keep := recs[:0]
	for _, r := range recs {
		if pinHas(pins, r.LSN) {
			keep = append(keep, r)
		}
	}
	if len(keep) == 0 || len(keep) == len(recs) {
		return m, nil // nothing pinned here after all, or nothing to shed
	}

	var buf []byte
	var hdr [segHeaderSize]byte
	copy(hdr[0:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], keep[0].LSN)
	hdr[16] = m.codec.ID()
	hdr[17] = segFlagSparse
	buf = append(buf, hdr[:]...)
	var scratch []byte
	var lsnBuf [8]byte
	for i := range keep {
		payload, err := m.codec.Append(scratch[:0], &keep[i])
		if err != nil {
			return m, fmt.Errorf("wal: sparse rewrite encode %s: %w", m.path, err)
		}
		scratch = payload
		binary.LittleEndian.PutUint64(lsnBuf[:], keep[i].LSN)
		buf = append(buf, lsnBuf[:]...)
		buf = appendFrame(buf, payload)
	}

	tmp := m.path + segTmpSuffix
	if err := writeFileSync(tmp, buf); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return m, fmt.Errorf("wal: sparse rewrite %s: %w", m.path, err)
	}
	newPath := filepath.Join(l.dir, segName(keep[0].LSN))
	if err := os.Rename(tmp, newPath); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return m, fmt.Errorf("wal: sparse rewrite rename %s: %w", newPath, err)
	}
	if newPath != m.path {
		os.Remove(m.path) //nolint:errcheck // redundant leftover is harmless
	}
	SyncDir(l.dir)

	l.size.Add(^uint64(m.size - 1)) // subtract
	l.size.Add(uint64(len(buf)))
	l.rewrites.Add(1)
	return segMeta{
		path:    newPath,
		codec:   m.codec,
		sparse:  true,
		first:   keep[0].LSN,
		last:    keep[len(keep)-1].LSN,
		size:    int64(len(buf)),
		records: len(keep),
	}, nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pinInRange reports whether any pinned LSN falls in [first, last].
func pinInRange(pins []uint64, first, last uint64) bool {
	i := sort.Search(len(pins), func(i int) bool { return pins[i] >= first })
	return i < len(pins) && pins[i] <= last
}

// pinHas reports whether lsn is one of the (sorted) pinned LSNs.
func pinHas(pins []uint64, lsn uint64) bool {
	i := sort.Search(len(pins), func(i int) bool { return pins[i] >= lsn })
	return i < len(pins) && pins[i] == lsn
}

// BatchStats implements the BatchStats interface.
func (l *SegmentedLog) BatchStats() (flushes, records uint64) {
	return l.flushes.Load(), l.records.Load()
}

// SetFlushObserver implements Observable.
func (l *SegmentedLog) SetFlushObserver(f FlushObserver) {
	if f == nil {
		l.flushObs.Store(nil)
		return
	}
	l.flushObs.Store(&f)
}

// Close implements Log: stop accepting appends, drain the committer, seal
// the active segment.
func (l *SegmentedLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	if l.reqCh != nil {
		l.inflight.Wait()
		close(l.stopCh)
		<-l.doneCh
	}

	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	flushErr := l.w.Flush()
	var syncErr error
	if l.opts.Sync && flushErr == nil {
		syncErr = l.f.Sync()
	}
	closeErr := l.f.Close()
	if flushErr != nil {
		return fmt.Errorf("wal: flush %s on close: %w", l.active.path, flushErr)
	}
	if syncErr != nil {
		return fmt.Errorf("wal: sync %s on close: %w", l.active.path, syncErr)
	}
	return closeErr
}

// SyncDir fsyncs a directory so file creations/removals/renames within it
// are durable; best-effort (some filesystems reject directory fsync). The
// checkpoint snapshot store shares it so WAL-segment and snapshot
// durability behavior cannot diverge.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}
