package wal

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/model"
)

// termRecords is a 3PC termination history: a prepared record carrying the
// electorate, an election promise, and an accepted pre-decision.
func termRecords() []Record {
	return []Record{
		{
			Type:         RecPrepared,
			Tx:           model.TxID{Site: "S1", Seq: 7},
			TS:           model.Timestamp{Time: 7, Site: "S1"},
			Coordinator:  "S1",
			Participants: []model.SiteID{"S1", "S2", "S3"},
			Voters:       []model.SiteID{"S1", "S2"},
			ThreePhase:   true,
			Writes:       []model.WriteRecord{{Item: "x", Value: 3, Version: 2}},
		},
		{Type: RecElect, Tx: model.TxID{Site: "S1", Seq: 7}, Ballot: model.Ballot{N: 2, Site: "S3"}},
		{Type: RecPreDecide, Tx: model.TxID{Site: "S1", Seq: 7}, Commit: true, Ballot: model.Ballot{N: 2, Site: "S3"}},
	}
}

// TestTermRecordsRoundTrip: the v2 fields (Voters, Ballot) survive both
// codecs through a segmented log.
func TestTermRecordsRoundTrip(t *testing.T) {
	for _, codec := range []Codec{BinaryCodec{}, JSONCodec{}} {
		t.Run(codec.Name(), func(t *testing.T) {
			l := openSeg(t, t.TempDir(), SegmentOptions{Codec: codec})
			defer l.Close()
			want := termRecords()
			for _, r := range want {
				if err := l.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			got, err := l.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d records, want %d", len(got), len(want))
			}
			for i := range want {
				got[i].LSN = 0
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// appendV1 encodes a record exactly as binary version 1 did (no Voters, no
// Ballot) — the back-compat fixture.
func appendV1(buf []byte, r *Record) []byte {
	buf = append(buf, 1, byte(r.Type))
	var flags byte
	if r.ThreePhase {
		flags |= 1
	}
	if r.Commit {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = appendString(buf, string(r.Tx.Site))
	buf = binary.AppendUvarint(buf, r.Tx.Seq)
	buf = binary.AppendUvarint(buf, r.TS.Time)
	buf = appendString(buf, string(r.TS.Site))
	buf = appendString(buf, string(r.Coordinator))
	buf = binary.AppendUvarint(buf, uint64(len(r.Participants)))
	for _, p := range r.Participants {
		buf = appendString(buf, string(p))
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Writes)))
	for _, w := range r.Writes {
		buf = appendString(buf, string(w.Item))
		buf = binary.AppendVarint(buf, w.Value)
		buf = binary.AppendUvarint(buf, uint64(w.Version))
	}
	return binary.AppendUvarint(buf, r.Horizon)
}

// appendV2 encodes a record exactly as binary version 2 did (Voters and
// Ballot, but no per-write delta flags) — the back-compat fixture.
func appendV2(buf []byte, r *Record) []byte {
	buf = appendV1(buf, r)
	buf[0] = 2
	buf = binary.AppendUvarint(buf, uint64(len(r.Voters)))
	for _, p := range r.Voters {
		buf = appendString(buf, string(p))
	}
	buf = binary.AppendUvarint(buf, r.Ballot.N)
	return appendString(buf, string(r.Ballot.Site))
}

// TestBinaryCodecDecodesVersion2: logs written before commutative blind
// adds (version-2 records) still decode, with every write absolute.
func TestBinaryCodecDecodesVersion2(t *testing.T) {
	want := Record{
		Type:         RecPrepared,
		Tx:           model.TxID{Site: "S2", Seq: 11},
		TS:           model.Timestamp{Time: 11, Site: "S2"},
		Coordinator:  "S2",
		Participants: []model.SiteID{"S1", "S2"},
		Writes: []model.WriteRecord{
			{Item: "y", Value: -4, Version: 5},
			{Item: "z", Value: 8, Version: 6},
		},
		Voters: []model.SiteID{"S1", "S2"},
		Ballot: model.Ballot{N: 3, Site: "S1"},
	}
	payload := appendV2(nil, &want)
	got, err := (BinaryCodec{}).Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v2 decode: got %+v, want %+v", got, want)
	}
	for i, w := range got.Writes {
		if w.Delta {
			t.Errorf("v2 decode invented a delta flag on write %d: %+v", i, w)
		}
	}
}

// TestBinaryCodecDecodesVersion1: logs written before quorum termination
// (version-1 records) still decode, with the new fields zero.
func TestBinaryCodecDecodesVersion1(t *testing.T) {
	want := Record{
		Type:         RecPrepared,
		Tx:           model.TxID{Site: "S1", Seq: 9},
		TS:           model.Timestamp{Time: 9, Site: "S1"},
		Coordinator:  "S1",
		Participants: []model.SiteID{"S1", "S2"},
		ThreePhase:   true,
		Writes:       []model.WriteRecord{{Item: "y", Value: -4, Version: 5}},
		Horizon:      3,
	}
	payload := appendV1(nil, &want)
	got, err := (BinaryCodec{}).Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v1 decode: got %+v, want %+v", got, want)
	}
	if got.Voters != nil || !got.Ballot.IsZero() {
		t.Errorf("v1 decode invented v2 fields: %+v", got)
	}
}

// TestCompactionPinsTermRecords: an in-doubt transaction's Elect/PreDecide
// records must survive compaction exactly like its Prepared record — a
// recovered member rejoins termination FROM them — and all of them go once
// the transaction is decided below the horizon.
func TestCompactionPinsTermRecords(t *testing.T) {
	l := NewMemory()
	tx := model.TxID{Site: "S1", Seq: 7}
	for _, r := range termRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Unrelated decided traffic pushes the horizon up.
	other := model.TxID{Site: "S2", Seq: 1}
	l.Append(Record{Type: RecPrepared, Tx: other, Writes: []model.WriteRecord{{Item: "z", Value: 1, Version: 1}}}) //nolint:errcheck
	l.Append(Record{Type: RecDecision, Tx: other, Commit: true})                                                   //nolint:errcheck
	horizon := l.DurableLSN() + 1

	if _, err := l.Compact(horizon); err != nil {
		t.Fatal(err)
	}
	recs, _ := l.ReadAll()
	var prepared, elect, predecide bool
	for _, r := range recs {
		if r.Tx != tx {
			continue
		}
		switch r.Type {
		case RecPrepared:
			prepared = true
		case RecElect:
			elect = true
		case RecPreDecide:
			predecide = true
		}
	}
	if !prepared || !elect || !predecide {
		t.Fatalf("compaction dropped in-doubt termination state: prepared=%v elect=%v predecide=%v (log %+v)",
			prepared, elect, predecide, recs)
	}

	// Decide + end: everything about tx is now compactable.
	l.Append(Record{Type: RecDecision, Tx: tx, Commit: true}) //nolint:errcheck
	l.Append(Record{Type: RecEnd, Tx: tx})                    //nolint:errcheck
	if _, err := l.Compact(l.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	recs, _ = l.ReadAll()
	for _, r := range recs {
		if r.Tx == tx {
			t.Fatalf("decided transaction's record survived compaction: %+v", r)
		}
	}
}
