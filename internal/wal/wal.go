// Package wal implements the per-site write-ahead log that makes Rainbow's
// atomic commit protocols recoverable. Participants force a Prepared record
// (carrying the transaction's write records) before voting yes, and a
// Decision record when they learn the outcome; coordinators force their
// decision before broadcasting it. Crash recovery replays the log to
// rebuild committed state and to find in-doubt transactions.
//
// Two backends are provided: an in-memory log (used under the network
// simulator, where a "crash" discards a site's volatile state but keeps its
// log, exactly like a disk surviving a process crash) and a JSON-lines file
// log for real multi-process deployments.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/model"
)

// RecType discriminates log records.
type RecType uint8

// Record types.
const (
	// RecPrepared is forced by a participant before it votes yes (and by a
	// coordinator for its own local cohort membership). It carries the
	// write records needed to redo the transaction at commit.
	RecPrepared RecType = iota + 1
	// RecDecision is forced when the commit/abort outcome is known. On a
	// coordinator it is the commit point.
	RecDecision
	// RecEnd marks that all cohort acknowledgements arrived and the
	// transaction needs no further recovery work.
	RecEnd
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecPrepared:
		return "prepared"
	case RecDecision:
		return "decision"
	case RecEnd:
		return "end"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one WAL entry. Fields are populated according to Type.
type Record struct {
	Type RecType
	Tx   model.TxID
	TS   model.Timestamp
	// Coordinator and Participants describe the commit cohort (RecPrepared).
	Coordinator  model.SiteID
	Participants []model.SiteID
	// ThreePhase records which ACP state machine governs the transaction.
	ThreePhase bool
	// Writes are the records to install on commit (RecPrepared).
	Writes []model.WriteRecord
	// Commit is the outcome (RecDecision).
	Commit bool
}

// Log is an append-only record log.
type Log interface {
	// Append durably appends a record.
	Append(Record) error
	// ReadAll returns every record in append order.
	ReadAll() ([]Record, error)
	// Close releases resources. Appending after Close is an error.
	Close() error
}

// ---- In-memory backend ----

// MemoryLog is a Log kept in process memory. It survives the simulated site
// crashes used by the failure injector (the site's volatile state is
// discarded; the log object is handed to the recovered site).
type MemoryLog struct {
	mu     sync.Mutex
	recs   []Record
	closed bool
}

// NewMemory returns an empty in-memory log.
func NewMemory() *MemoryLog { return &MemoryLog{} }

// Append implements Log.
func (l *MemoryLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append to closed log")
	}
	// Deep-copy slices so callers cannot mutate logged state.
	r.Writes = append([]model.WriteRecord(nil), r.Writes...)
	r.Participants = append([]model.SiteID(nil), r.Participants...)
	l.recs = append(l.recs, r)
	return nil
}

// ReadAll implements Log.
func (l *MemoryLog) ReadAll() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Close implements Log. A closed memory log can still be read (recovery
// reads the log of a crashed site).
func (l *MemoryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Reopen makes a closed memory log appendable again, modelling the disk
// being remounted by the recovered site.
func (l *MemoryLog) Reopen() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = false
}

// Len returns the number of records (for tests and monitors).
func (l *MemoryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// ---- File backend ----

// FileLog is a JSON-lines file-backed Log for real deployments.
type FileLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	sync bool
	path string
}

// OpenFile opens (creating if needed) a file log at path. When sync is
// true every append is fsynced — the textbook force-write; when false the
// log is flushed but not synced, trading durability for speed in classroom
// experiments.
func OpenFile(path string, sync bool) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &FileLog{f: f, w: bufio.NewWriter(f), sync: sync, path: path}, nil
}

// Append implements Log.
func (l *FileLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: append to closed log %s", l.path)
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("wal: marshal record: %w", err)
	}
	if _, err := l.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("wal: write %s: %w", l.path, err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush %s: %w", l.path, err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s: %w", l.path, err)
		}
	}
	return nil
}

// ReadAll implements Log. It tolerates a torn final line (a crash mid-write)
// by ignoring it, the standard recovery rule for line-framed logs.
func (l *FileLog) ReadAll() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.Open(l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen %s: %w", l.path, err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			// Torn tail record: stop replay here.
			break
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return recs, fmt.Errorf("wal: scan %s: %w", l.path, err)
	}
	return recs, nil
}

// Close implements Log.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.w.Flush()
	err := l.f.Close()
	l.f = nil
	return err
}
