// Package wal implements the per-site write-ahead log that makes Rainbow's
// atomic commit protocols recoverable. Participants force a Prepared record
// (carrying the transaction's write records) before voting yes, and a
// Decision record when they learn the outcome; coordinators force their
// decision before broadcasting it. Crash recovery replays the log to
// rebuild committed state and to find in-doubt transactions.
//
// The file backend group-commits: a dedicated committer goroutine coalesces
// concurrently arriving appends into a single buffer-write/flush/fsync
// cycle, so under load N transactions pay one disk force instead of N. The
// durability contract is unchanged — Append and AppendBatch return only
// after the record's batch has been flushed (and fsynced when the log is in
// sync mode), so a participant's yes-vote still implies a forced Prepared
// record. Records remain one JSON line each; a crash mid-batch tears only
// the final line, which recovery discards, replaying every complete record.
//
// Two backends are provided: an in-memory log (used under the network
// simulator, where a "crash" discards a site's volatile state but keeps its
// log, exactly like a disk surviving a process crash) and a JSON-lines file
// log for real multi-process deployments.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// RecType discriminates log records.
type RecType uint8

// Record types.
const (
	// RecPrepared is forced by a participant before it votes yes (and by a
	// coordinator for its own local cohort membership). It carries the
	// write records needed to redo the transaction at commit.
	RecPrepared RecType = iota + 1
	// RecDecision is forced when the commit/abort outcome is known. On a
	// coordinator it is the commit point.
	RecDecision
	// RecEnd marks that all cohort acknowledgements arrived and the
	// transaction needs no further recovery work.
	RecEnd
	// RecCheckpoint is written by the checkpoint manager after a fuzzy
	// snapshot has been made durable. It pins the replay horizon: recovery
	// loads the snapshot and redoes only records at or after Horizon.
	RecCheckpoint
	// RecElect is forced by a 3PC participant before it answers a
	// termination-election query: Ballot is the new election epoch the
	// member promised (its "ea"). The promise must survive a crash —
	// otherwise a recovered member could accept a pre-decision from an
	// attempt older than one it already helped elect, and two quorums could
	// decide differently.
	RecElect
	// RecPreDecide is forced by a 3PC participant before it acknowledges a
	// pre-commit (Ballot{0, coordinator}, the live coordinator's round) or
	// a termination pre-decision (an elected initiator's ballot). Commit
	// carries the pre-decision's direction; Ballot is the accepted attempt
	// (the member's "eb"). Pre-committed state is durable, not volatile:
	// a recovered member rejoins termination with its logged state instead
	// of a presumed-abort guess.
	RecPreDecide
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecPrepared:
		return "prepared"
	case RecDecision:
		return "decision"
	case RecEnd:
		return "end"
	case RecCheckpoint:
		return "checkpoint"
	case RecElect:
		return "elect"
	case RecPreDecide:
		return "predecide"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one WAL entry. Fields are populated according to Type.
type Record struct {
	Type RecType
	Tx   model.TxID
	TS   model.Timestamp
	// Coordinator and Participants describe the commit cohort (RecPrepared).
	Coordinator  model.SiteID
	Participants []model.SiteID
	// Voters lists the termination electorate (RecPrepared, 3PC): the
	// cohort members that hold writes (or all participants when the
	// read-only optimization is off). Quorum-based termination counts its
	// majorities over this set — read-only participants release at vote
	// time and must not dilute the quorum arithmetic.
	Voters []model.SiteID `json:",omitempty"`
	// ThreePhase records which ACP state machine governs the transaction.
	ThreePhase bool
	// Writes are the records to install on commit (RecPrepared).
	Writes []model.WriteRecord
	// Commit is the outcome (RecDecision) or the pre-decision direction
	// (RecPreDecide).
	Commit bool
	// Ballot is the termination-election epoch (RecElect: the promised
	// "ea"; RecPreDecide: the accepted attempt "eb").
	Ballot model.Ballot
	// Horizon is the replay horizon pinned by a checkpoint record
	// (RecCheckpoint): the first LSN recovery must redo on top of the
	// checkpoint's snapshot.
	Horizon uint64 `json:",omitempty"`
	// LSN is the record's log sequence number. It is a position, not
	// payload: LSN-aware logs assign it at append time and report it on
	// reads; it is never serialized.
	LSN uint64 `json:"-"`
}

// Log is an append-only record log.
type Log interface {
	// Append durably appends a record.
	Append(Record) error
	// AppendBatch durably appends records as one unit: all of them are on
	// stable storage when it returns. Backends may coalesce concurrent
	// batches into a single force-write.
	AppendBatch([]Record) error
	// ReadAll returns every record in append order.
	ReadAll() ([]Record, error)
	// Close releases resources. Appending after Close is an error.
	Close() error
}

// BatchStats reports group-commit counters: flushes is the number of
// force-write cycles, records the number of records they carried. Both
// backends implement it; the progress monitor reads it through the Log
// interface.
type BatchStats interface {
	BatchStats() (flushes, records uint64)
}

// FlushObserver receives the wall-clock duration of each force-write cycle
// (write + flush + fsync) and the number of records the cycle carried. The
// site's tracer feeds its wal_fsync stage histogram through it. Observers
// run inline on the committer goroutine and must be fast and safe for
// concurrent use; with no observer installed a flush pays one atomic load.
type FlushObserver func(d time.Duration, records uint64)

// Observable is implemented by logs that report per-flush timings (all
// backends in this package). The wal package stays free of monitoring
// imports; callers probe for this interface and install a closure.
type Observable interface {
	SetFlushObserver(FlushObserver)
}

// Compactable is implemented by logs that assign log sequence numbers and
// support checkpoint-driven compaction (SegmentedLog and MemoryLog; the
// legacy single-file FileLog does not). The checkpoint manager drives it:
// a fuzzy snapshot at horizon H makes every record below H redundant for
// redo, except Prepared records of still-undecided (in-doubt) transactions,
// which must survive for ACP termination.
type Compactable interface {
	Log
	// DurableLSN returns the LSN of the last durably appended record
	// (0 when the log is empty). LSNs start at 1 and increase by one per
	// record in append order.
	DurableLSN() uint64
	// AppendedBytes returns the cumulative bytes appended over the log's
	// lifetime (monotone; compaction does not decrease it). The checkpoint
	// manager's bytes-since-last-checkpoint trigger reads it.
	AppendedBytes() uint64
	// SizeBytes returns the currently retained log volume.
	SizeBytes() uint64
	// Segments returns the retained segment count (1 record = 1 unit for
	// the in-memory log).
	Segments() int
	// Compact removes segments wholly below horizon that contain no
	// Prepared record of a transaction still undecided as of horizon,
	// returning how many were removed. Compact(0) is a no-op.
	Compact(horizon uint64) (removed int, err error)
}

// ---- In-memory backend ----

// MemoryLog is a Log kept in process memory. It survives the simulated site
// crashes used by the failure injector (the site's volatile state is
// discarded; the log object is handed to the recovered site). It is
// Compactable — each record is its own "segment" — so simulated experiments
// exercise the same checkpoint/compaction machinery as file-backed sites.
type MemoryLog struct {
	mu      sync.Mutex
	recs    []Record
	closed  bool
	flushes uint64
	records uint64

	nextLSN  uint64
	appended uint64
	size     uint64
	// pins feeds Compact's in-doubt pinning rule (shared with SegmentedLog).
	pins pinTracker

	flushObs atomic.Pointer[FlushObserver]
}

// NewMemory returns an empty in-memory log.
func NewMemory() *MemoryLog {
	return &MemoryLog{nextLSN: 1, pins: newPinTracker()}
}

// estimateSize approximates a record's serialized footprint; the in-memory
// log never marshals, but the checkpoint manager's bytes trigger and the
// monitor's log-volume gauge still need a monotone byte signal.
func estimateSize(r *Record) uint64 {
	n := 48 + len(r.Tx.Site) + len(r.Coordinator) + len(r.TS.Site) + len(r.Ballot.Site)
	for _, p := range r.Participants {
		n += 8 + len(p)
	}
	for _, p := range r.Voters {
		n += 8 + len(p)
	}
	for _, w := range r.Writes {
		n += 20 + len(w.Item)
	}
	return uint64(n)
}

// Append implements Log.
func (l *MemoryLog) Append(r Record) error {
	return l.AppendBatch([]Record{r})
}

// SetFlushObserver implements Observable.
func (l *MemoryLog) SetFlushObserver(f FlushObserver) {
	if f == nil {
		l.flushObs.Store(nil)
		return
	}
	l.flushObs.Store(&f)
}

// AppendBatch implements Log.
func (l *MemoryLog) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	if obs := l.flushObs.Load(); obs != nil {
		start := time.Now()
		defer func() { (*obs)(time.Since(start), uint64(len(recs))) }()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append to closed log")
	}
	for _, r := range recs {
		// Deep-copy slices so callers cannot mutate logged state.
		r.Writes = append([]model.WriteRecord(nil), r.Writes...)
		r.Participants = append([]model.SiteID(nil), r.Participants...)
		r.Voters = append([]model.SiteID(nil), r.Voters...)
		r.LSN = l.nextLSN
		l.nextLSN++
		l.pins.track(r.Type, r.Tx, r.LSN)
		sz := estimateSize(&r)
		l.appended += sz
		l.size += sz
		l.recs = append(l.recs, r)
	}
	l.flushes++
	l.records += uint64(len(recs))
	return nil
}

// DurableLSN implements Compactable.
func (l *MemoryLog) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// AppendedBytes implements Compactable.
func (l *MemoryLog) AppendedBytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// SizeBytes implements Compactable.
func (l *MemoryLog) SizeBytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Segments implements Compactable: each retained record counts as one unit.
func (l *MemoryLog) Segments() int { return l.Len() }

// Compact implements Compactable: records below horizon are dropped unless
// they are Prepared records of transactions undecided as of horizon (the
// in-doubt pin — those must survive for commit-protocol termination).
func (l *MemoryLog) Compact(horizon uint64) (int, error) {
	if horizon == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.recs[:0]
	removed := 0
	for _, r := range l.recs {
		pinnable := r.Type == RecPrepared || r.Type == RecElect || r.Type == RecPreDecide
		if r.LSN >= horizon || (pinnable && l.pins.pinned(r.Tx, horizon)) {
			kept = append(kept, r)
			continue
		}
		l.size -= estimateSize(&r)
		removed++
	}
	// Zero the tail so dropped records are collectable.
	for i := len(kept); i < len(l.recs); i++ {
		l.recs[i] = Record{}
	}
	l.recs = kept
	l.pins.prune(horizon)
	return removed, nil
}

// ReadAll implements Log.
func (l *MemoryLog) ReadAll() ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.recs))
	copy(out, l.recs)
	return out, nil
}

// Close implements Log. A closed memory log can still be read (recovery
// reads the log of a crashed site).
func (l *MemoryLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// Reopen makes a closed memory log appendable again, modelling the disk
// being remounted by the recovered site.
func (l *MemoryLog) Reopen() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = false
}

// Len returns the number of records (for tests and monitors).
func (l *MemoryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// BatchStats implements the BatchStats interface.
func (l *MemoryLog) BatchStats() (flushes, records uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushes, l.records
}

// ---- File backend ----

// FileOptions configures a FileLog.
type FileOptions struct {
	// Sync fsyncs every force-write cycle — the textbook force-write; when
	// false the log is flushed but not synced, trading durability for speed
	// in classroom experiments.
	Sync bool
	// NoGroupCommit disables the committer goroutine: each append marshals,
	// writes, flushes and fsyncs individually under the log mutex. Used by
	// ablation benchmarks; production keeps group commit on.
	NoGroupCommit bool
}

// batchReq is one caller's pre-marshalled payload parked on the committer.
type batchReq struct {
	payload []byte
	records uint64
	done    chan error // buffered(1)
}

// FileLog is a JSON-lines file-backed Log for real deployments.
type FileLog struct {
	opts FileOptions
	path string

	// mu guards the open/closed lifecycle; the committer goroutine owns the
	// file handle and writer between Open and the post-shutdown Close steps.
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	closed   bool
	inflight sync.WaitGroup // appends accepted but not yet force-written
	// ioMu serializes force-write cycles against ReadAll, so a reader can
	// never observe a half-written batch as a torn tail. Lock order: mu or
	// the committer's ownership first, then ioMu.
	ioMu sync.Mutex

	reqCh  chan *batchReq
	stopCh chan struct{}
	doneCh chan struct{} // closed when the committer has drained and exited

	flushes  atomic.Uint64
	records  atomic.Uint64
	flushObs atomic.Pointer[FlushObserver]
}

// OpenFile opens (creating if needed) a group-committing file log at path.
// When sync is true every force-write cycle is fsynced.
func OpenFile(path string, sync bool) (*FileLog, error) {
	return OpenFileWith(path, FileOptions{Sync: sync})
}

// OpenFileWith opens a file log with explicit options. A torn tail left by
// a crash mid-force is truncated away first: appending after an unparsable
// line would strand the new records beyond recovery's replay horizon.
func OpenFileWith(path string, opts FileOptions) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if err := truncateTornTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &FileLog{
		opts: opts,
		path: path,
		f:    f,
		w:    bufio.NewWriter(f),
	}
	if !opts.NoGroupCommit {
		l.reqCh = make(chan *batchReq, 64)
		l.stopCh = make(chan struct{})
		l.doneCh = make(chan struct{})
		go l.commitLoop()
	}
	return l, nil
}

// truncateTornTail chops the file back to the end of its last complete,
// parsable record. Everything past that point is a torn batch tail from a
// crash mid-force; replay would stop there anyway, and leaving it in place
// would strand every record appended afterwards.
func truncateTornTail(f *os.File) error {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	valid := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		end := valid + int64(len(line)) + 1 // +1 for the newline
		if end > size {
			// Final line lost its newline in the tear. A forced (acked)
			// record always reaches disk with its newline, so this one was
			// never acknowledged — drop it even if the JSON parses.
			break
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			break
		}
		valid = end
	}
	if err := sc.Err(); err != nil {
		// Do NOT truncate on scan errors (e.g. a line over the scanner
		// cap): the bytes past `valid` might be an acknowledged oversized
		// record, and destroying forced data is worse than failing the
		// open loudly.
		return err
	}
	if valid < size {
		if err := f.Truncate(valid); err != nil {
			return err
		}
	}
	return nil
}

// marshalLines renders records as JSON lines; marshalling happens in the
// caller's goroutine so the committer's cycle is pure I/O.
func marshalLines(recs []Record) ([]byte, error) {
	var buf []byte
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("wal: marshal record: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	return buf, nil
}

// Append implements Log.
func (l *FileLog) Append(r Record) error {
	return l.AppendBatch([]Record{r})
}

// AppendBatch implements Log. With group commit enabled the call parks on
// the committer and returns once its batch — possibly merged with other
// concurrent appends — has been force-written.
func (l *FileLog) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	payload, err := marshalLines(recs)
	if err != nil {
		return err
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: append to closed log %s", l.path)
	}
	if l.opts.NoGroupCommit {
		defer l.mu.Unlock()
		return l.forceLocked(payload, uint64(len(recs)))
	}
	l.inflight.Add(1)
	l.mu.Unlock()
	defer l.inflight.Done()

	req := &batchReq{payload: payload, records: uint64(len(recs)), done: make(chan error, 1)}
	l.reqCh <- req
	return <-req.done
}

// forceLocked writes payload through one buffer/flush/fsync cycle. Callers
// either hold l.mu (no-group-commit path) or are the committer goroutine,
// which owns the file handle exclusively while running; ioMu additionally
// fences concurrent ReadAll scans out of the cycle.
func (l *FileLog) forceLocked(payload []byte, records uint64) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if obs := l.flushObs.Load(); obs != nil {
		start := time.Now()
		defer func() { (*obs)(time.Since(start), records) }()
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: write %s: %w", l.path, err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush %s: %w", l.path, err)
	}
	if l.opts.Sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s: %w", l.path, err)
		}
	}
	l.flushes.Add(1)
	l.records.Add(records)
	return nil
}

// commitLoop is the group committer: it takes the first parked request,
// greedily drains every other request already waiting, concatenates their
// payloads and pays one force-write for the whole batch.
func (l *FileLog) commitLoop() {
	defer close(l.doneCh)
	for {
		select {
		case req := <-l.reqCh:
			l.commitBatch(req)
		case <-l.stopCh:
			// Close waits for in-flight appends before stopping, so one
			// final drain empties the channel.
			for {
				select {
				case req := <-l.reqCh:
					l.commitBatch(req)
				default:
					return
				}
			}
		}
	}
}

// commitBatch coalesces req with everything else queued and force-writes
// the merged payload, then reports the outcome to every parked caller.
func (l *FileLog) commitBatch(first *batchReq) {
	batch := []*batchReq{first}
	payload := first.payload
	records := first.records
drain:
	for {
		select {
		case req := <-l.reqCh:
			batch = append(batch, req)
			payload = append(payload, req.payload...)
			records += req.records
		default:
			break drain
		}
	}
	err := l.forceLocked(payload, records)
	for _, req := range batch {
		req.done <- err
	}
}

// ReadAll implements Log. It tolerates a torn final line (a crash mid-write,
// possibly mid-batch) by stopping replay there — every record completely
// written before the tear is replayed, the standard recovery rule for
// line-framed logs. Holding ioMu keeps the scan from racing a force-write
// cycle and mistaking a half-written batch for a torn tail.
func (l *FileLog) ReadAll() ([]Record, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	f, err := os.Open(l.path)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen %s: %w", l.path, err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			// Torn tail record: stop replay here.
			break
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return recs, fmt.Errorf("wal: scan %s: %w", l.path, err)
	}
	return recs, nil
}

// BatchStats implements the BatchStats interface.
func (l *FileLog) BatchStats() (flushes, records uint64) {
	return l.flushes.Load(), l.records.Load()
}

// SetFlushObserver implements Observable.
func (l *FileLog) SetFlushObserver(f FlushObserver) {
	if f == nil {
		l.flushObs.Store(nil)
		return
	}
	l.flushObs.Store(&f)
}

// Close implements Log: it stops accepting appends, waits for the committer
// to force every accepted batch, then flushes and closes the file. A failed
// final flush is reported — silently dropping it would lose tail records.
func (l *FileLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	if l.reqCh != nil {
		l.inflight.Wait() // all accepted appends are parked or done
		close(l.stopCh)
		<-l.doneCh // committer drained the queue and exited
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	flushErr := l.w.Flush()
	closeErr := l.f.Close()
	l.f = nil
	if flushErr != nil {
		return fmt.Errorf("wal: flush %s on close: %w", l.path, flushErr)
	}
	return closeErr
}
