package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func sampleRecord(seq uint64) Record {
	return Record{
		Type:         RecPrepared,
		Tx:           model.TxID{Site: "S1", Seq: seq},
		TS:           model.Timestamp{Time: seq, Site: "S1"},
		Coordinator:  "S1",
		Participants: []model.SiteID{"S1", "S2"},
		Writes:       []model.WriteRecord{{Item: "x", Value: int64(seq), Version: model.Version(seq)}},
	}
}

func testLogBehaviour(t *testing.T, l Log) {
	t.Helper()
	recs := []Record{
		sampleRecord(1),
		{Type: RecDecision, Tx: model.TxID{Site: "S1", Seq: 1}, Commit: true},
		{Type: RecEnd, Tx: model.TxID{Site: "S1", Seq: 1}},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("ReadAll returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestMemoryLog(t *testing.T) {
	testLogBehaviour(t, NewMemory())
}

func TestFileLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testLogBehaviour(t, l)
}

func TestFileLogSynced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testLogBehaviour(t, l)
}

func TestMemoryLogCloseRejectsAppends(t *testing.T) {
	l := NewMemory()
	l.Append(sampleRecord(1))
	l.Close()
	if err := l.Append(sampleRecord(2)); err == nil {
		t.Error("append after close should fail")
	}
	// Reads still work: recovery reads the crashed site's log.
	recs, err := l.ReadAll()
	if err != nil || len(recs) != 1 {
		t.Errorf("ReadAll after close: %v, %d records", err, len(recs))
	}
	l.Reopen()
	if err := l.Append(sampleRecord(3)); err != nil {
		t.Errorf("append after Reopen failed: %v", err)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestMemoryLogIsolatesCallerSlices(t *testing.T) {
	l := NewMemory()
	writes := []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}
	l.Append(Record{Type: RecPrepared, Writes: writes})
	writes[0].Value = 999
	recs, _ := l.ReadAll()
	if recs[0].Writes[0].Value != 1 {
		t.Error("log shares memory with caller's slice")
	}
}

func TestFileLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(sampleRecord(1))
	l.Append(sampleRecord(2))
	l.Close()

	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Tx.Seq != 2 {
		t.Errorf("got %d records after reopen", len(recs))
	}
	// Appends continue after the existing tail.
	l2.Append(sampleRecord(3))
	recs, _ = l2.ReadAll()
	if len(recs) != 3 {
		t.Errorf("got %d records after append, want 3", len(recs))
	}
}

func TestFileLogTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(sampleRecord(1))
	l.Close()

	// Simulate a crash mid-append: garbage partial line at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"Type":1,"Tx":{"Si`)
	f.Close()

	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("torn tail should be ignored; got %d records", len(recs))
	}
}

func TestFileLogAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(sampleRecord(1)); err == nil {
		t.Error("append after close should fail")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
}

func TestRecTypeString(t *testing.T) {
	if RecPrepared.String() != "prepared" || RecDecision.String() != "decision" || RecEnd.String() != "end" {
		t.Error("record type names wrong")
	}
	if RecType(77).String() == "" {
		t.Error("unknown record type should render something")
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quick.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := 0
	f := func(seq uint64, item string, val int64, commit bool) bool {
		r := Record{
			Type:   RecDecision,
			Tx:     model.TxID{Site: "S", Seq: seq},
			Writes: []model.WriteRecord{{Item: model.ItemID(item), Value: val}},
			Commit: commit,
		}
		if err := l.Append(r); err != nil {
			return false
		}
		n++
		recs, err := l.ReadAll()
		if err != nil || len(recs) != n {
			return false
		}
		got := recs[n-1]
		return got.Tx == r.Tx && got.Commit == r.Commit &&
			len(got.Writes) == 1 && got.Writes[0] == r.Writes[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
