package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func sampleRecord(seq uint64) Record {
	return Record{
		Type:         RecPrepared,
		Tx:           model.TxID{Site: "S1", Seq: seq},
		TS:           model.Timestamp{Time: seq, Site: "S1"},
		Coordinator:  "S1",
		Participants: []model.SiteID{"S1", "S2"},
		Writes: []model.WriteRecord{
			{Item: "x", Value: int64(seq), Version: model.Version(seq)},
			{Item: "c", Value: 3, Version: model.Version(seq + 1), Delta: true},
		},
	}
}

func testLogBehaviour(t *testing.T, l Log) {
	t.Helper()
	recs := []Record{
		sampleRecord(1),
		{Type: RecDecision, Tx: model.TxID{Site: "S1", Seq: 1}, Commit: true},
		{Type: RecEnd, Tx: model.TxID{Site: "S1", Seq: 1}},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("ReadAll returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		got[i].LSN = 0 // position, not payload: LSN-aware logs stamp it on reads
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestMemoryLog(t *testing.T) {
	testLogBehaviour(t, NewMemory())
}

func TestFileLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testLogBehaviour(t, l)
}

func TestFileLogSynced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testLogBehaviour(t, l)
}

func TestMemoryLogCloseRejectsAppends(t *testing.T) {
	l := NewMemory()
	l.Append(sampleRecord(1))
	l.Close()
	if err := l.Append(sampleRecord(2)); err == nil {
		t.Error("append after close should fail")
	}
	// Reads still work: recovery reads the crashed site's log.
	recs, err := l.ReadAll()
	if err != nil || len(recs) != 1 {
		t.Errorf("ReadAll after close: %v, %d records", err, len(recs))
	}
	l.Reopen()
	if err := l.Append(sampleRecord(3)); err != nil {
		t.Errorf("append after Reopen failed: %v", err)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestMemoryLogIsolatesCallerSlices(t *testing.T) {
	l := NewMemory()
	writes := []model.WriteRecord{{Item: "x", Value: 1, Version: 1}}
	l.Append(Record{Type: RecPrepared, Writes: writes})
	writes[0].Value = 999
	recs, _ := l.ReadAll()
	if recs[0].Writes[0].Value != 1 {
		t.Error("log shares memory with caller's slice")
	}
}

func TestFileLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(sampleRecord(1))
	l.Append(sampleRecord(2))
	l.Close()

	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Tx.Seq != 2 {
		t.Errorf("got %d records after reopen", len(recs))
	}
	// Appends continue after the existing tail.
	l2.Append(sampleRecord(3))
	recs, _ = l2.ReadAll()
	if len(recs) != 3 {
		t.Errorf("got %d records after append, want 3", len(recs))
	}
}

func TestFileLogTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(sampleRecord(1))
	l.Close()

	// Simulate a crash mid-append: garbage partial line at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"Type":1,"Tx":{"Si`)
	f.Close()

	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("torn tail should be ignored; got %d records", len(recs))
	}
}

func TestFileLogAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(sampleRecord(1)); err == nil {
		t.Error("append after close should fail")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close should be a no-op, got %v", err)
	}
}

func TestAppendBatch(t *testing.T) {
	for name, open := range map[string]func(t *testing.T) Log{
		"memory": func(*testing.T) Log { return NewMemory() },
		"file": func(t *testing.T) Log {
			l, err := OpenFile(filepath.Join(t.TempDir(), "site.wal"), false)
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
	} {
		t.Run(name, func(t *testing.T) {
			l := open(t)
			defer l.Close()
			if err := l.AppendBatch(nil); err != nil {
				t.Errorf("empty batch: %v", err)
			}
			batch := []Record{sampleRecord(1), sampleRecord(2), sampleRecord(3)}
			if err := l.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
			recs, err := l.ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			for i := range recs {
				recs[i].LSN = 0
			}
			if len(recs) != 3 || !reflect.DeepEqual(recs, batch) {
				t.Errorf("ReadAll after AppendBatch: got %d records", len(recs))
			}
			bs, ok := l.(BatchStats)
			if !ok {
				t.Fatal("log should expose BatchStats")
			}
			flushes, records := bs.BatchStats()
			if flushes != 1 || records != 3 {
				t.Errorf("BatchStats = (%d, %d), want (1, 3)", flushes, records)
			}
		})
	}
}

func TestFileLogGroupCommitCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	const appenders, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := l.Append(sampleRecord(uint64(g*1000 + i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != appenders*perG {
		t.Errorf("got %d records, want %d", len(recs), appenders*perG)
	}
	flushes, records := l.BatchStats()
	if records != appenders*perG {
		t.Errorf("BatchStats records = %d, want %d", records, appenders*perG)
	}
	if flushes == 0 || flushes > records {
		t.Errorf("BatchStats flushes = %d out of range (records %d)", flushes, records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Every record survives the close and is replayed in order.
	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err = l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != appenders*perG {
		t.Errorf("after reopen: %d records, want %d", len(recs), appenders*perG)
	}
}

// TestFileLogTornBatchTailRecovery simulates a crash mid-way through a
// group-commit batch flush: the final record is torn, and replay must
// return every record completely written before the tear.
func TestFileLogTornBatchTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]Record{sampleRecord(2), sampleRecord(3), sampleRecord(4)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the batch: chop the tail mid-way through the last record's line.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("torn batch tail: got %d records, want 3", len(recs))
	}
	for i, want := range []uint64{1, 2, 3} {
		if recs[i].Tx.Seq != want {
			t.Errorf("record %d: seq %d, want %d", i, recs[i].Tx.Seq, want)
		}
	}
}

// TestFileLogReopenTruncatesTornTail checks that opening a log with a torn
// tail removes the tear before new appends: otherwise records written after
// the garbage line would be stranded beyond replay's stop-at-tear horizon
// and silently lost by the next recovery.
func TestFileLogReopenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"Type":1,"Tx":{"Si`) // crash mid-force
	f.Close()

	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(sampleRecord(2)); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	recs, err := l3.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Tx.Seq != 1 || recs[1].Tx.Seq != 2 {
		t.Fatalf("post-tear append lost: got %d records %+v", len(recs), recs)
	}
}

// TestFileLogOpenDropsUnterminatedFinalRecord: a final line that parses but
// lacks its newline was never acknowledged (the force includes the newline),
// so open must drop it rather than let the next append glue onto it.
func TestFileLogOpenDropsUnterminatedFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(sampleRecord(1))
	l.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the record without its trailing newline: parsable, torn.
	if err := os.WriteFile(path, append(b, b[:len(b)-1]...), 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(sampleRecord(2)); err != nil {
		t.Fatal(err)
	}
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Tx.Seq != 1 || recs[1].Tx.Seq != 2 {
		t.Fatalf("got %d records %+v, want seqs 1,2", len(recs), recs)
	}
}

func TestFileLogNoGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFileWith(path, FileOptions{NoGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testLogBehaviour(t, l)
	flushes, records := l.BatchStats()
	if flushes != records {
		t.Errorf("direct path should force per record: flushes %d, records %d", flushes, records)
	}
}

func TestFileLogCloseDuringConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "site.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	accepted := make(chan uint64, 128)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				seq := uint64(g*100 + i)
				if err := l.Append(sampleRecord(seq)); err != nil {
					return // closed under us: acceptable
				}
				accepted <- seq
			}
		}(g)
	}
	l.Close()
	wg.Wait()
	close(accepted)
	want := make(map[uint64]bool)
	for seq := range accepted {
		want[seq] = true
	}
	// Every append that reported success must be durable.
	l2, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]bool)
	for _, r := range recs {
		got[r.Tx.Seq] = true
	}
	for seq := range want {
		if !got[seq] {
			t.Errorf("record %d acknowledged but lost at close", seq)
		}
	}
	if len(want) == 0 {
		t.Log("close won the race before any append; nothing to verify")
	}
}

func TestRecTypeString(t *testing.T) {
	if RecPrepared.String() != "prepared" || RecDecision.String() != "decision" || RecEnd.String() != "end" {
		t.Error("record type names wrong")
	}
	if RecType(77).String() == "" {
		t.Error("unknown record type should render something")
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quick.wal")
	l, err := OpenFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := 0
	f := func(seq uint64, item string, val int64, commit bool) bool {
		r := Record{
			Type:   RecDecision,
			Tx:     model.TxID{Site: "S", Seq: seq},
			Writes: []model.WriteRecord{{Item: model.ItemID(item), Value: val}},
			Commit: commit,
		}
		if err := l.Append(r); err != nil {
			return false
		}
		n++
		recs, err := l.ReadAll()
		if err != nil || len(recs) != n {
			return false
		}
		got := recs[n-1]
		return got.Tx == r.Tx && got.Commit == r.Commit &&
			len(got.Writes) == 1 && got.Writes[0] == r.Writes[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
