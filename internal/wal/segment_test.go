package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
)

func openSeg(t *testing.T, dir string, opts SegmentOptions) *SegmentedLog {
	t.Helper()
	l, err := OpenSegmented(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// appendTxn appends a Prepared+Decision pair for one transaction.
func appendTxn(t *testing.T, l Log, seq uint64, commit bool) {
	t.Helper()
	if err := l.Append(sampleRecord(seq)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecDecision, Tx: model.TxID{Site: "S1", Seq: seq}, Commit: commit}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedRoundTripBothCodecs(t *testing.T) {
	for _, codec := range []Codec{BinaryCodec{}, JSONCodec{}} {
		t.Run(codec.Name(), func(t *testing.T) {
			dir := t.TempDir()
			l := openSeg(t, dir, SegmentOptions{Codec: codec})
			want := []Record{
				sampleRecord(1),
				{Type: RecDecision, Tx: model.TxID{Site: "S1", Seq: 1}, Commit: true},
				{Type: RecEnd, Tx: model.TxID{Site: "S1", Seq: 1}},
				{Type: RecCheckpoint, Horizon: 4},
			}
			for _, r := range want {
				if err := l.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			check := func(got []Record, err error) {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("got %d records, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i].LSN != uint64(i+1) {
						t.Errorf("record %d: LSN = %d, want %d", i, got[i].LSN, i+1)
					}
					got[i].LSN = 0
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
					}
				}
			}
			check(l.ReadAll())
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen: scan rebuilds the sequence and the records survive.
			l2 := openSeg(t, dir, SegmentOptions{Codec: codec})
			defer l2.Close()
			check(l2.ReadAll())
			if got := l2.DurableLSN(); got != 4 {
				t.Errorf("DurableLSN after reopen = %d, want 4", got)
			}
		})
	}
}

func TestSegmentedRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{SegmentBytes: 256})
	for seq := uint64(1); seq <= 40; seq++ {
		appendTxn(t, l, seq, true)
	}
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", segs)
	}
	before := l.SizeBytes()
	horizon := l.DurableLSN() + 1

	removed, err := l.Compact(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("Compact removed no segments")
	}
	if after := l.SizeBytes(); after >= before {
		t.Errorf("SizeBytes did not shrink: %d -> %d", before, after)
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 80 {
		t.Errorf("ReadAll after compaction returned %d records, want far fewer than 80", len(recs))
	}
	for _, r := range recs {
		if r.LSN >= horizon {
			t.Errorf("record %d at/above horizon %d unexpectedly present", r.LSN, horizon)
		}
	}
	// Appends keep working and LSNs keep increasing after compaction.
	appendTxn(t, l, 99, true)
	if got := l.DurableLSN(); got != 82 {
		t.Errorf("DurableLSN after post-compaction appends = %d, want 82", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen across the LSN gap left by compaction.
	l2 := openSeg(t, dir, SegmentOptions{})
	defer l2.Close()
	recs2, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs2 {
		if r.Type == RecPrepared && r.Tx.Seq == 99 {
			found = true
		}
	}
	if !found {
		t.Error("post-compaction append lost across reopen")
	}
	if got := l2.DurableLSN(); got != 82 {
		t.Errorf("DurableLSN after reopen = %d, want 82", got)
	}
}

func TestSegmentedCompactionPinsInDoubt(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{SegmentBytes: 256})
	defer l.Close()
	// An in-doubt transaction in the very first segment: prepared, never
	// decided.
	orphan := model.TxID{Site: "S1", Seq: 1000}
	if err := l.Append(Record{Type: RecPrepared, Tx: orphan, Coordinator: "S2",
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 3}}}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 40; seq++ {
		appendTxn(t, l, seq, true)
	}
	segsBefore := l.Segments()
	removed, err := l.Compact(l.DurableLSN() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || removed >= segsBefore-1 {
		t.Fatalf("removed %d of %d segments; the pinned one must survive", removed, segsBefore)
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Type == RecPrepared && r.Tx == orphan {
			found = true
		}
	}
	if !found {
		t.Fatal("in-doubt Prepared record was compacted away")
	}
	// Once decided, the pin lifts and a later compaction removes it.
	if err := l.Append(Record{Type: RecDecision, Tx: orphan, Commit: false}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(l.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	recs, err = l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == RecPrepared && r.Tx == orphan {
			t.Error("decided transaction's Prepared record still pinned")
		}
	}
}

func TestSegmentedTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{})
	for seq := uint64(1); seq <= 5; seq++ {
		appendTxn(t, l, seq, true)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := paths[len(paths)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final frame mid-payload.
	if err := os.Truncate(last, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	l2 := openSeg(t, dir, SegmentOptions{})
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("after torn tail: %d records, want 9", len(recs))
	}
	// The log accepts appends after truncation.
	appendTxn(t, l2, 6, true)
	recs, err = l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Fatalf("after post-tear appends: %d records, want 11", len(recs))
	}
}

// TestSegmentedCorruptCRCDetected proves positive corruption detection: a
// bit flipped inside a fully framed record — one that still decodes — is
// caught by the checksum, not by parse failure.
func TestSegmentedCorruptCRCDetected(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{})
	for seq := uint64(1); seq <= 5; seq++ {
		appendTxn(t, l, seq, true)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Locate the second frame and flip a payload byte in the middle of it —
	// far from the tail, so torn-tail tolerance cannot mask the damage.
	firstLen := binary.LittleEndian.Uint32(b[segHeaderSize : segHeaderSize+4])
	second := segHeaderSize + frameHeaderSize + int(firstLen)
	secondLen := binary.LittleEndian.Uint32(b[second : second+4])
	b[second+frameHeaderSize+int(secondLen)/2] ^= 0x01
	if err := os.WriteFile(paths[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSegmented(dir, SegmentOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt record: err = %v, want ErrCorrupt", err)
	}
}

func TestSegmentedReadsLegacyJSONLines(t *testing.T) {
	dir := t.TempDir()
	// A legacy FileLog writes headerless JSON lines; drop one into the
	// segment directory.
	legacy := filepath.Join(dir, "00000000000000000000.seg")
	fl, err := OpenFile(legacy, false)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		appendTxn(t, fl, seq, true)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	l := openSeg(t, dir, SegmentOptions{})
	defer l.Close()
	appendTxn(t, l, 4, true) // new records go to a binary segment
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("legacy + binary ReadAll: %d records, want 8", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Errorf("record %d: LSN = %d, want %d", i, r.LSN, i+1)
		}
	}
	if recs[0].Tx.Seq != 1 || recs[6].Tx.Seq != 4 {
		t.Errorf("record order wrong: %+v", recs)
	}
}

func TestSegmentedGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{SegmentBytes: 1024})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq := uint64(w*per + i + 1)
				if err := l.Append(sampleRecord(seq)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("got %d records, want %d", len(recs), workers*per)
	}
	seen := make(map[uint64]bool)
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: LSN %d not dense", i, r.LSN)
		}
		if seen[r.Tx.Seq] {
			t.Fatalf("duplicate record for seq %d", r.Tx.Seq)
		}
		seen[r.Tx.Seq] = true
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryLogCompaction(t *testing.T) {
	l := NewMemory()
	orphan := model.TxID{Site: "M", Seq: 500}
	if err := l.Append(Record{Type: RecPrepared, Tx: orphan}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		appendTxn(t, l, seq, true)
	}
	sizeBefore := l.SizeBytes()
	horizon := l.DurableLSN() + 1
	removed, err := l.Compact(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 20 {
		t.Errorf("removed %d records, want 20 (all but the pinned prepare)", removed)
	}
	if l.SizeBytes() >= sizeBefore {
		t.Errorf("SizeBytes did not shrink: %d -> %d", sizeBefore, l.SizeBytes())
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Tx != orphan {
		t.Fatalf("retained records = %+v, want only the in-doubt prepare", recs)
	}
	// Deciding the orphan lifts the pin.
	if err := l.Append(Record{Type: RecDecision, Tx: orphan, Commit: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(l.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	if n := l.Len(); n != 0 {
		t.Errorf("after deciding the orphan and compacting: %d records retained", n)
	}
}

func TestCodecByName(t *testing.T) {
	for name, want := range map[string]string{"": "binary", "binary": "binary", "json": "json"} {
		c, err := CodecByName(name)
		if err != nil || c.Name() != want {
			t.Errorf("CodecByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := CodecByName("protobuf"); err == nil {
		t.Error("CodecByName(protobuf) should fail")
	}
}

func TestBinaryCodecCompactness(t *testing.T) {
	r := sampleRecord(42)
	bin, err := BinaryCodec{}.Append(nil, &r)
	if err != nil {
		t.Fatal(err)
	}
	js, err := JSONCodec{}.Append(nil, &r)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(js) {
		t.Errorf("binary encoding (%dB) not smaller than JSON (%dB)", len(bin), len(js))
	}
	got, err := BinaryCodec{}.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("binary round trip: got %+v, want %+v", got, r)
	}
}

func TestBinaryCodecRejectsTruncation(t *testing.T) {
	r := sampleRecord(7)
	payload, err := BinaryCodec{}.Append(nil, &r)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(payload); cut += 3 {
		if _, err := (BinaryCodec{}).Decode(payload[:cut]); err == nil {
			// Trailing fields (horizon) default to zero, so very deep cuts
			// may legitimately parse; only complain when the cut removes
			// required structure.
			if cut < len(payload)-2 {
				t.Errorf("Decode of %d/%d bytes succeeded", cut, len(payload))
			}
		}
	}
}

func TestSegmentedAppendAfterCloseFails(t *testing.T) {
	l := openSeg(t, t.TempDir(), SegmentOptions{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecord(1)); err == nil {
		t.Fatal("append after Close should fail")
	}
}

func TestSegmentedNoGroupCommit(t *testing.T) {
	l := openSeg(t, t.TempDir(), SegmentOptions{NoGroupCommit: true})
	defer l.Close()
	for seq := uint64(1); seq <= 4; seq++ {
		appendTxn(t, l, seq, true)
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
}

func TestSegmentNameOrdering(t *testing.T) {
	// Zero-padded names must sort numerically for LSNs up to 2^64-1.
	if segName(9) >= segName(10) || segName(99999999999) >= segName(100000000000) {
		t.Error("segment names do not sort numerically")
	}
	if fmt.Sprintf("%020d", uint64(1<<63)) != segName(1 << 63)[:20] {
		t.Error("segment name truncates large LSNs")
	}
}

// --- sparse (record-granular) pin compaction ---

// One orphan among heavy decided traffic: compaction must not retain the
// orphan's whole segment — it rewrites it down to the pinned record, with
// the original LSN preserved across the rewrite and across a reopen.
func TestCompactionRewritesPinnedSegmentSparse(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{SegmentBytes: 256})
	orphan := model.TxID{Site: "S1", Seq: 1000}
	if err := l.Append(Record{Type: RecPrepared, Tx: orphan, Coordinator: "S2",
		Writes: []model.WriteRecord{{Item: "x", Value: 7, Version: 3}}}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 40; seq++ {
		appendTxn(t, l, seq, true)
	}
	before := l.SizeBytes()
	if _, err := l.Compact(l.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	if got := l.Rewrites(); got != 1 {
		t.Fatalf("Rewrites = %d, want 1 (the orphan's segment)", got)
	}
	if after := l.SizeBytes(); after >= before/4 {
		t.Errorf("sparse rewrite kept %d of %d bytes; pinning should be record-granular", after, before)
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var kept *Record
	for i := range recs {
		if recs[i].Type == RecPrepared && recs[i].Tx == orphan {
			kept = &recs[i]
		}
	}
	if kept == nil {
		t.Fatal("pinned record lost in sparse rewrite")
	}
	if kept.LSN != 1 {
		t.Errorf("pinned record LSN = %d after rewrite, want 1", kept.LSN)
	}
	if len(kept.Writes) != 1 || kept.Writes[0].Value != 7 {
		t.Errorf("pinned record payload mangled: %+v", kept)
	}

	// The sparse segment must survive a reopen byte-exactly.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openSeg(t, dir, SegmentOptions{})
	recs2, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs2 {
		if r.Type == RecPrepared && r.Tx == orphan && r.LSN == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("sparse segment unreadable after reopen")
	}
	// The reopened log re-derives the pin; once decided, a later compaction
	// drops the sparse segment entirely.
	if err := l2.Append(Record{Type: RecDecision, Tx: orphan, Commit: false}); err != nil {
		t.Fatal(err)
	}
	appendTxn(t, l2, 99, true) // seal progress past the decision
	if _, err := l2.Compact(l2.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	recs3, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs3 {
		// The decision itself sits in the active tail; only the pin must go.
		if r.Type == RecPrepared && r.Tx == orphan {
			t.Error("decided orphan's Prepared record still retained")
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// Compaction-bound: with K orphans scattered across many segments of decided
// filler, retained sealed-log content is exactly the K pinned records — not
// K whole segments.
func TestCompactionRetentionBoundedByPinnedRecords(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{SegmentBytes: 256})
	defer l.Close()
	const orphans = 5
	var seq uint64
	for o := 0; o < orphans; o++ {
		if err := l.Append(Record{Type: RecPrepared, Tx: model.TxID{Site: "S9", Seq: uint64(o)}, Coordinator: "S2",
			Writes: []model.WriteRecord{{Item: "y", Value: int64(o), Version: 1}}}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			seq++
			appendTxn(t, l, seq, true)
		}
	}
	sealedLast := l.DurableLSN() // active-tail records stay regardless
	if _, err := l.Compact(l.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	if got := l.Rewrites(); got == 0 {
		t.Fatal("no sparse rewrites happened; test setup did not span segments")
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var pinned, fillerBelowTail int
	activeFirst := uint64(0)
	// Records in the still-active segment are untouched by compaction; find
	// where it starts so the bound only covers sealed territory.
	if segs := l.Segments(); segs > 0 {
		activeFirst = sealedLast // conservative: only count well below the tail
	}
	for _, r := range recs {
		if r.Tx.Site == "S9" {
			pinned++
			continue
		}
		if r.LSN < activeFirst-20 { // clearly inside sealed, compacted range
			fillerBelowTail++
		}
	}
	if pinned != orphans {
		t.Errorf("retained %d pinned records, want %d", pinned, orphans)
	}
	if fillerBelowTail > 24 { // at most one segment's worth beside the tail
		t.Errorf("%d unpinned filler records retained in sealed segments; retention must be bounded by pinned records", fillerBelowTail)
	}
}

// A crash between a sparse rewrite's rename and the removal of the original
// leaves both files; reopening must keep the dense superset, delete the
// redundant sparse leftover, and clean stray rewrite temp files.
func TestSparseRewriteCrashLeftoverRecovered(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{SegmentBytes: 256})
	// Orphan NOT first in its segment, so the rewrite changes the file name.
	appendTxn(t, l, 1, true)
	orphan := model.TxID{Site: "S1", Seq: 1000}
	if err := l.Append(Record{Type: RecPrepared, Tx: orphan, Coordinator: "S2"}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(2); seq <= 40; seq++ {
		appendTxn(t, l, seq, true)
	}
	// Snapshot the dense segment that holds the orphan (the first one).
	paths, err := listSegments(dir)
	if err != nil || len(paths) < 2 {
		t.Fatalf("segments = %v, %v", paths, err)
	}
	densePath := paths[0]
	dense, err := os.ReadFile(densePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(l.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	if l.Rewrites() != 1 {
		t.Fatalf("Rewrites = %d, want 1", l.Rewrites())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// "Crash" reconstruction: the dense original reappears next to the
	// sparse rewrite (rename done, removal lost), plus a stray temp file.
	if err := os.WriteFile(densePath, dense, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk"+segTmpSuffix), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openSeg(t, dir, SegmentOptions{})
	defer l2.Close()
	recs, err := l2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, r := range recs {
		if r.Type == RecPrepared && r.Tx == orphan {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("orphan record appears %d times after leftover recovery, want exactly 1", found)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segTmpSuffix) {
			t.Errorf("stray rewrite temp file %s not cleaned at open", e.Name())
		}
	}
}

// The redundant-sparse sentinel now travels wrapped in segment context,
// like every other scan error. The recovery path must match it with
// errors.Is: identity comparison only ever worked because the sentinel
// happened to be returned bare, and a reopen that misclassifies the
// leftover refuses to open the log at all.
func TestRedundantSparseSentinelArrivesWrapped(t *testing.T) {
	dir := t.TempDir()
	l := openSeg(t, dir, SegmentOptions{SegmentBytes: 256})
	appendTxn(t, l, 1, true)
	orphan := model.TxID{Site: "S1", Seq: 1000}
	if err := l.Append(Record{Type: RecPrepared, Tx: orphan, Coordinator: "S2"}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(2); seq <= 40; seq++ {
		appendTxn(t, l, seq, true)
	}
	paths, err := listSegments(dir)
	if err != nil || len(paths) < 2 {
		t.Fatalf("segments = %v, %v", paths, err)
	}
	densePath := paths[0]
	dense, err := os.ReadFile(densePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(l.DurableLSN() + 1); err != nil {
		t.Fatal(err)
	}
	if l.Rewrites() != 1 {
		t.Fatalf("Rewrites = %d, want 1", l.Rewrites())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash reconstruction: dense original back beside the sparse rewrite.
	if err := os.WriteFile(densePath, dense, 0o644); err != nil {
		t.Fatal(err)
	}

	// Drive the scan exactly like OpenSegmented does and catch the error
	// the redundant sparse leftover produces.
	paths, err = listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	scanner := &SegmentedLog{nextLSN: 1, pins: newPinTracker()}
	var redundantErr error
	for i, path := range paths {
		m, _, err := scanner.scanSegment(path, i == len(paths)-1)
		if err != nil {
			redundantErr = err
			break
		}
		scanner.nextLSN = m.last + 1
	}
	if redundantErr == nil {
		t.Fatal("no scan error; expected the sparse leftover to be reported redundant")
	}
	if redundantErr == errRedundantSparse { //rainbowlint:allow errcompare — this asserts the sentinel IS wrapped
		t.Fatal("sentinel returned bare; it must be wrapped in segment context")
	}
	if !errors.Is(redundantErr, errRedundantSparse) {
		t.Fatalf("scan error %v does not wrap errRedundantSparse", redundantErr)
	}

	// And the real open path classifies it correctly: the leftover is
	// dropped and the log opens.
	l2 := openSeg(t, dir, SegmentOptions{})
	defer l2.Close()
	if _, err := l2.ReadAll(); err != nil {
		t.Fatal(err)
	}
}
