package nameserver

import (
	"context"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func setup(t *testing.T) (*Server, *wire.Peer) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	srv, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := wire.NewPeer(net, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); client.Close() })
	return srv, client
}

func ctx(t *testing.T) context.Context {
	c, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestFetchEmptyCatalog(t *testing.T) {
	_, client := setup(t)
	cat, err := Fetch(ctx(t), client)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Sites) != 0 || cat.Protocols.RCP != "qc" {
		t.Errorf("catalog = %+v", cat)
	}
}

func TestRegisterSite(t *testing.T) {
	srv, client := setup(t)
	if err := Register(ctx(t), client, "S1", "10.0.0.1:9001"); err != nil {
		t.Fatal(err)
	}
	if err := Register(ctx(t), client, "S2", "10.0.0.2:9001"); err != nil {
		t.Fatal(err)
	}
	cat := srv.Catalog()
	if len(cat.Sites) != 2 || cat.Sites["S1"].Addr != "10.0.0.1:9001" {
		t.Errorf("sites = %+v", cat.Sites)
	}
	if cat.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", cat.Epoch)
	}
}

func TestPushAndFetchRoundTrip(t *testing.T) {
	_, client := setup(t)
	c := schema.NewCatalog()
	c.Sites["S1"] = schema.SiteInfo{ID: "S1"}
	c.Sites["S2"] = schema.SiteInfo{ID: "S2"}
	c.Sites["S3"] = schema.SiteInfo{ID: "S3"}
	c.ReplicateEverywhere("x", 42)
	c.Protocols = schema.Protocols{RCP: "rowa", CCP: "tso", ACP: "3pc"}

	if err := Push(ctx(t), client, c); err != nil {
		t.Fatal(err)
	}
	got, err := Fetch(ctx(t), client)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sites) != 3 || got.Items["x"].Initial != 42 ||
		got.Protocols.RCP != "rowa" || got.Protocols.CCP != "tso" || got.Protocols.ACP != "3pc" {
		t.Errorf("fetched = %+v", got)
	}
	if got.Epoch == 0 {
		t.Error("push should bump epoch")
	}
}

func TestPushInvalidCatalogRejected(t *testing.T) {
	srv, client := setup(t)
	c := schema.NewCatalog()
	c.Protocols.RCP = "bogus"
	if err := Push(ctx(t), client, c); err == nil {
		t.Error("invalid catalog accepted")
	}
	if srv.Catalog().Protocols.RCP != "qc" {
		t.Error("invalid catalog installed")
	}
}

func TestSetCatalogValidatesQuorums(t *testing.T) {
	srv, _ := setup(t)
	c := schema.NewCatalog()
	c.Sites["S1"] = schema.SiteInfo{ID: "S1"}
	c.Items["x"] = schema.ItemMeta{Item: "x", Votes: map[model.SiteID]int{"S1": 1}, ReadQuorum: 2, WriteQuorum: 2}
	if err := srv.SetCatalog(c); err == nil {
		t.Error("unreachable quorum accepted")
	}
}

func TestPing(t *testing.T) {
	_, client := setup(t)
	if err := client.Call(ctx(t), model.NameServerID, wire.KindPing, &wire.PingReq{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKindRejected(t *testing.T) {
	_, client := setup(t)
	err := client.Call(ctx(t), model.NameServerID, wire.KindPrepare, &wire.PrepareReq{}, nil)
	if err == nil {
		t.Error("name server accepted a Prepare message")
	}
}

func TestCatalogIsolation(t *testing.T) {
	srv, client := setup(t)
	Register(ctx(t), client, "S1", "addr")
	cat := srv.Catalog()
	cat.Sites["EVIL"] = schema.SiteInfo{ID: "EVIL"}
	if _, ok := srv.Catalog().Sites["EVIL"]; ok {
		t.Error("Catalog() exposes internal state")
	}
}

func TestInitialCatalogCloned(t *testing.T) {
	net := simnet.New(simnet.Config{})
	initial := schema.NewCatalog()
	initial.Sites["S1"] = schema.SiteInfo{ID: "S1"}
	srv, err := New(net, initial)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	initial.Sites["S2"] = schema.SiteInfo{ID: "S2"}
	if len(srv.Catalog().Sites) != 1 {
		t.Error("server shares the caller's catalog")
	}
}

func TestFetchEpochProbe(t *testing.T) {
	srv, client := setup(t)
	e, err := FetchEpoch(ctx(t), client)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("fresh epoch = %d, want 0", e)
	}
	if err := Register(ctx(t), client, "S1", "10.0.0.1:9001"); err != nil {
		t.Fatal(err)
	}
	if e, err = FetchEpoch(ctx(t), client); err != nil || e != 1 {
		t.Errorf("epoch after register = %d (%v), want 1", e, err)
	}
	if srv.Epoch() != 1 {
		t.Errorf("server epoch = %d", srv.Epoch())
	}
}

func TestSetCatalogStaleEpochRejected(t *testing.T) {
	srv, client := setup(t)
	if err := Register(ctx(t), client, "S1", "a:1"); err != nil {
		t.Fatal(err)
	}
	if err := Register(ctx(t), client, "S2", "a:2"); err != nil {
		t.Fatal(err)
	}
	// Unconditional (epoch 0) update applies and stamps epoch 3.
	c := srv.Catalog()
	c.Epoch = 0
	c.ReplicateEverywhere("x", 1)
	if err := srv.SetCatalog(c); err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 3 {
		t.Fatalf("epoch after update = %d, want 3", srv.Epoch())
	}
	// A CAS with the epoch the first admin saw (2) is now stale.
	stale := srv.Catalog()
	stale.Epoch = 2
	if err := srv.SetCatalog(stale); err == nil {
		t.Fatal("stale CAS accepted")
	}
	// A CAS with the current epoch applies.
	fresh := srv.Catalog() // Epoch 3
	fresh.ReplicateEverywhere("y", 2)
	if err := srv.SetCatalog(fresh); err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 4 {
		t.Errorf("epoch after CAS update = %d, want 4", srv.Epoch())
	}
}
