// Package nameserver implements the Rainbow name server: the single
// metadata authority of a Rainbow instance. It stores the registered sites
// ("id and end point specifications"), the database fragmentation /
// replication / distribution schema, and the selected transaction-processing
// protocols; any site can query it over the wire layer (paper §2: "Any site
// can query the name server to get pertinent information").
package nameserver

import (
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/trace"
	"repro/internal/wire"
)

// CatalogResp carries the full catalog to a querying site.
type CatalogResp struct {
	Catalog schema.Catalog
}

// SetCatalogReq replaces the catalog (administrator traffic from the GUI /
// NSlet path).
type SetCatalogReq struct {
	Catalog schema.Catalog
}

// CatalogPushMsg is the server-initiated half of catalog propagation: after
// an update installs, the name server casts the stamped catalog to every
// registered site so reconfiguration starts without waiting a poll tick.
// Delivery is best-effort (a partitioned or crashed site misses it and
// catches up through its poll loop).
type CatalogPushMsg struct {
	Catalog schema.Catalog
}

// The catalog bodies are cold-path (poll ticks and administrator updates)
// and wrap the deeply nested schema.Catalog, so their wire.Body
// implementations ride the gob escape hatch instead of a hand-rolled
// encoding (see wire.AppendGob).

// Kind implements wire.Body.
func (r *CatalogResp) Kind() wire.MsgKind { return wire.KindGetCatalog }

// AppendTo implements wire.Body.
func (r *CatalogResp) AppendTo(buf []byte) []byte { return wire.AppendGob(buf, r) }

// DecodeFrom implements wire.Body.
func (r *CatalogResp) DecodeFrom(p []byte) error { return wire.DecodeGob(p, r) }

// Kind implements wire.Body.
func (r *SetCatalogReq) Kind() wire.MsgKind { return wire.KindSetCatalog }

// AppendTo implements wire.Body.
func (r *SetCatalogReq) AppendTo(buf []byte) []byte { return wire.AppendGob(buf, r) }

// DecodeFrom implements wire.Body.
func (r *SetCatalogReq) DecodeFrom(p []byte) error { return wire.DecodeGob(p, r) }

// Kind implements wire.Body.
func (r *CatalogPushMsg) Kind() wire.MsgKind { return wire.KindCatalogPush }

// AppendTo implements wire.Body.
func (r *CatalogPushMsg) AppendTo(buf []byte) []byte { return wire.AppendGob(buf, r) }

// DecodeFrom implements wire.Body.
func (r *CatalogPushMsg) DecodeFrom(p []byte) error { return wire.DecodeGob(p, r) }

func init() {
	// gob registrations stay for interop with gob-codec peers.
	gob.Register(CatalogResp{})
	gob.Register(SetCatalogReq{})
	gob.Register(CatalogPushMsg{})
	wire.RegisterBody(wire.KindGetCatalog, true, func() wire.Body { return &CatalogResp{} })
	wire.RegisterBody(wire.KindSetCatalog, false, func() wire.Body { return &SetCatalogReq{} })
	wire.RegisterBody(wire.KindCatalogPush, false, func() wire.Body { return &CatalogPushMsg{} })
}

// Server is the name server node.
type Server struct {
	peer *wire.Peer

	mu      sync.Mutex
	catalog *schema.Catalog
}

// New attaches a name server to the network at model.NameServerID with the
// given initial catalog (nil starts empty).
func New(net wire.Network, initial *schema.Catalog) (*Server, error) {
	if initial == nil {
		initial = schema.NewCatalog()
	}
	s := &Server{catalog: initial.Clone()}
	peer, err := wire.NewPeer(net, model.NameServerID, s.serve)
	if err != nil {
		return nil, fmt.Errorf("nameserver: %w", err)
	}
	s.peer = peer
	return s, nil
}

// Close detaches the server.
func (s *Server) Close() error { return s.peer.Close() }

// Catalog returns a deep copy of the current catalog (local, for tests and
// the admin tooling co-located with the server).
func (s *Server) Catalog() *schema.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.catalog.Clone()
}

// Epoch returns the current catalog epoch.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.catalog.Epoch
}

// SetCatalog validates and installs a new catalog, bumping the epoch, then
// pushes the stamped catalog to every registered site. A nonzero Epoch on
// the submitted catalog is a compare-and-set token: the update is rejected
// as stale unless it matches the current epoch, so two administrators
// editing concurrently cannot silently clobber each other. Epoch 0 updates
// unconditionally.
func (s *Server) SetCatalog(c *schema.Catalog) error {
	if err := c.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	if c.Epoch != 0 && c.Epoch != s.catalog.Epoch {
		cur := s.catalog.Epoch
		s.mu.Unlock()
		return fmt.Errorf("nameserver: stale catalog epoch %d (current %d)", c.Epoch, cur)
	}
	nc := c.Clone()
	nc.Epoch = s.catalog.Epoch + 1
	s.catalog = nc
	pushed := nc.Clone()
	s.mu.Unlock()
	s.push(pushed)
	return nil
}

// push casts the new catalog to every registered site, best-effort,
// concurrently and off the caller's lock: a transport that blocks dialing
// an unreachable site (TCP connect up to the 1s bound) must stall neither
// the update caller nor the other sites' deliveries. The poll loop covers
// anything a cast misses.
func (s *Server) push(c *schema.Catalog) {
	for _, id := range c.SiteIDs() {
		go func(id model.SiteID) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			s.peer.Cast(ctx, id, wire.KindCatalogPush, &CatalogPushMsg{Catalog: *c}) //nolint:errcheck // best-effort; poll catches up
		}(id)
	}
}

func (s *Server) serve(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
	switch kind {
	case wire.KindPing:
		return wire.KindOK, &wire.OKBody{}, nil

	case wire.KindGetCatalog:
		s.mu.Lock()
		cat := s.catalog.Clone()
		s.mu.Unlock()
		return wire.KindGetCatalog, &CatalogResp{Catalog: *cat}, nil

	case wire.KindGetEpoch:
		return wire.KindGetEpoch, &wire.EpochResp{Epoch: s.Epoch()}, nil

	case wire.KindSetCatalog:
		var req SetCatalogReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		if err := s.SetCatalog(&req.Catalog); err != nil {
			return 0, nil, err
		}
		return wire.KindOK, &wire.OKBody{}, nil

	case wire.KindRegisterSite:
		var req wire.RegisterSiteReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		s.mu.Lock()
		s.catalog.Sites[req.Site] = schema.SiteInfo{ID: req.Site, Addr: req.Addr}
		s.catalog.Epoch++
		s.mu.Unlock()
		return wire.KindOK, &wire.OKBody{}, nil

	default:
		return 0, nil, fmt.Errorf("nameserver: unhandled message kind %s", kind)
	}
}

// ---- Client helpers used by sites and tooling ----

// Fetch retrieves the catalog from the name server via peer.
func Fetch(ctx context.Context, peer *wire.Peer) (*schema.Catalog, error) {
	resp, err := wire.Call[CatalogResp](ctx, peer, model.NameServerID, wire.KindGetCatalog, &wire.GetCatalogReq{})
	if err != nil {
		return nil, fmt.Errorf("nameserver: fetch catalog: %w", err)
	}
	return &resp.Catalog, nil
}

// FetchEpoch retrieves just the catalog epoch — the cheap probe a site's
// catalog-poll loop issues every tick.
func FetchEpoch(ctx context.Context, peer *wire.Peer) (uint64, error) {
	resp, err := wire.Call[wire.EpochResp](ctx, peer, model.NameServerID, wire.KindGetEpoch, &wire.GetEpochReq{})
	if err != nil {
		return 0, fmt.Errorf("nameserver: fetch epoch: %w", err)
	}
	return resp.Epoch, nil
}

// Push validates locally and installs a new catalog on the name server.
func Push(ctx context.Context, peer *wire.Peer, c *schema.Catalog) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := peer.Call(ctx, model.NameServerID, wire.KindSetCatalog, &SetCatalogReq{Catalog: *c}, nil); err != nil {
		return fmt.Errorf("nameserver: push catalog: %w", err)
	}
	return nil
}

// Register records a site's endpoint with the name server.
func Register(ctx context.Context, peer *wire.Peer, site model.SiteID, addr string) error {
	req := &wire.RegisterSiteReq{Site: site, Addr: addr}
	if err := peer.Call(ctx, model.NameServerID, wire.KindRegisterSite, req, nil); err != nil {
		return fmt.Errorf("nameserver: register %s: %w", site, err)
	}
	return nil
}
