// Package checkpoint implements Rainbow's checkpoint & log-compaction
// subsystem: fuzzy snapshots of the sharded copy store plus the decision
// table, written atomically and validated by checksum, that bound both the
// write-ahead log's on-disk volume and the amount of history crash recovery
// must replay.
//
// A checkpoint at horizon H captures every effect of WAL records below H,
// so recovery becomes load-latest-valid-snapshot + redo-from-H instead of
// full-history replay, and the log can delete segments wholly below H —
// except segments pinned by Prepared-but-undecided (in-doubt) transactions,
// whose records must survive for 2PC/3PC termination.
//
// Snapshots are "fuzzy" in the classical sense: transaction processing
// continues while one is taken. The only interlock is the manager's gate, a
// reader-writer lock the decision pipeline holds in read mode around each
// decision's force-write + install; the manager takes it in write mode just
// long enough to read the durable LSN and copy the store, guaranteeing that
// every decision below the horizon is fully installed in the snapshot.
// Prepares, reads and pre-writes never touch the gate.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Decision is one decided transaction carried in a snapshot (the decision
// table must survive compaction so recovered coordinators keep answering
// peers' decision requests).
type Decision struct {
	Tx     model.TxID `json:"tx"`
	Commit bool       `json:"commit"`
}

// Snapshot is one fuzzy checkpoint image.
type Snapshot struct {
	// Horizon is the first LSN recovery must redo on top of this snapshot:
	// every record below it is fully reflected in Items and Decisions.
	Horizon uint64 `json:"horizon"`
	// Items are the store's copies at snapshot time.
	Items map[model.ItemID]storage.Copy `json:"items"`
	// Decisions is the participant's decision table at snapshot time.
	Decisions []Decision `json:"decisions,omitempty"`
}

// DecisionMap converts the decision list back to the participant's table
// form.
func (s *Snapshot) DecisionMap() map[model.TxID]bool {
	out := make(map[model.TxID]bool, len(s.Decisions))
	for _, d := range s.Decisions {
		out[d.Tx] = d.Commit
	}
	return out
}

// Store persists snapshots. Implementations must make Save atomic (a torn
// or partial snapshot must never be returned by Latest) and tolerate
// corrupt entries by falling back to older ones.
type Store interface {
	// Save durably stores a snapshot.
	Save(*Snapshot) error
	// Latest returns the newest valid snapshot, skipping torn or corrupt
	// entries, or nil when none exists.
	Latest() (*Snapshot, error)
	// Horizons lists the horizons of stored valid snapshots in ascending
	// order.
	Horizons() ([]uint64, error)
	// Prune removes all but the newest keep snapshots.
	Prune(keep int) error
}

// ---- Directory-backed store ----

const (
	snapPrefix     = "checkpoint-"
	snapSuffix     = ".snap"
	snapHeaderSize = 16 // magic(8) + payload length(4) + payload CRC32(4)
)

var snapMagic = [8]byte{'R', 'B', 'W', 'S', 'N', 'A', 'P', '1'}

// DirStore keeps snapshots as files in a directory (conventionally the
// WAL's segment directory). Each file is a checksummed JSON image written
// via temp file + fsync + rename, so a crash mid-checkpoint leaves either
// the previous snapshot set intact or the new file complete — never a torn
// visible snapshot. A torn or bit-rotted file fails validation and Latest
// falls back to the next-newest one.
type DirStore struct {
	dir string
	mu  sync.Mutex
	// known caches validation verdicts per path. Snapshot files are
	// immutable once renamed into place, so a verdict holds for the
	// process lifetime; entries are dropped when files are pruned.
	known map[string]bool
}

// NewDirStore returns a store over dir (created on first Save).
func NewDirStore(dir string) *DirStore {
	return &DirStore{dir: dir, known: make(map[string]bool)}
}

// checkValid validates path with the per-path cache.
func (s *DirStore) checkValid(path string) bool {
	if v, ok := s.known[path]; ok {
		return v
	}
	_, err := validate(path)
	s.known[path] = err == nil
	return err == nil
}

func snapPath(dir string, horizon uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, horizon, snapSuffix))
}

// Save implements Store.
func (s *DirStore) Save(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: mkdir %s: %w", s.dir, err)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal snapshot: %w", err)
	}
	var hdr [snapHeaderSize]byte
	copy(hdr[0:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))

	final := snapPath(s.dir, snap.Horizon)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint: rename %s: %w", final, err)
	}
	wal.SyncDir(s.dir)
	s.known[final] = true
	return nil
}

// validate reads one snapshot file and checks its frame: a short file, bad
// magic, bad length or CRC mismatch returns an error (the caller falls
// back). The payload is returned undecoded — horizon listing only needs the
// integrity check, not the full JSON parse.
func validate(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [snapHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: truncated header: %w", path, err)
	}
	if [8]byte(hdr[0:8]) != snapMagic {
		return nil, fmt.Errorf("checkpoint: %s: bad magic", path)
	}
	length := binary.LittleEndian.Uint32(hdr[8:12])
	sum := binary.LittleEndian.Uint32(hdr[12:16])
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: torn payload: %w", path, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("checkpoint: %s: checksum mismatch", path)
	}
	return payload, nil
}

// load validates and decodes one snapshot file.
func load(path string) (*Snapshot, error) {
	payload, err := validate(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: decode: %w", path, err)
	}
	return &snap, nil
}

// horizonFromName parses the horizon out of a snapshot filename
// (checkpoint-%020d.snap — Save names files by horizon).
func horizonFromName(path string) (uint64, bool) {
	name := filepath.Base(path)
	name = strings.TrimPrefix(name, snapPrefix)
	name = strings.TrimSuffix(name, snapSuffix)
	h, err := strconv.ParseUint(name, 10, 64)
	return h, err == nil
}

// list returns snapshot file paths in ascending horizon (name) order.
func (s *DirStore) list() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list %s: %w", s.dir, err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix) {
			out = append(out, filepath.Join(s.dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Latest implements Store: newest file first, falling back past any that
// fail validation.
func (s *DirStore) Latest() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := s.list()
	if err != nil {
		return nil, err
	}
	for i := len(paths) - 1; i >= 0; i-- {
		if snap, err := load(paths[i]); err == nil {
			return snap, nil
		}
	}
	return nil, nil
}

// Horizons implements Store (valid snapshots only). Integrity is checked
// (magic + CRC) but the JSON body is not decoded: the horizon comes from
// the filename, so listing stays cheap even with large store images.
func (s *DirStore) Horizons() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := s.list()
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, p := range paths {
		h, ok := horizonFromName(p)
		if !ok {
			continue
		}
		if s.checkValid(p) {
			out = append(out, h)
		}
	}
	return out, nil
}

// Prune implements Store: keep the newest keep files (by name order),
// remove the rest.
func (s *DirStore) Prune(keep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := s.list()
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	var firstErr error
	for i := 0; i < len(paths)-keep; i++ {
		if err := os.Remove(paths[i]); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("checkpoint: prune %s: %w", paths[i], err)
			continue
		}
		delete(s.known, paths[i])
	}
	if len(paths) > keep {
		wal.SyncDir(s.dir)
	}
	return firstErr
}

// ---- In-memory store ----

// MemStore keeps snapshots in process memory. Like wal.MemoryLog it
// survives the failure injector's simulated crashes (the site's volatile
// state is discarded; the store object is handed to the recovered site), so
// simnet experiments exercise the full checkpoint/recovery path.
type MemStore struct {
	mu    sync.Mutex
	snaps []*Snapshot // ascending horizon
}

// NewMemStore returns an empty in-memory snapshot store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store. Snapshots are treated as immutable after Save.
func (s *MemStore) Save(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].Horizon >= snap.Horizon })
	if i < len(s.snaps) && s.snaps[i].Horizon == snap.Horizon {
		s.snaps[i] = snap
		return nil
	}
	s.snaps = append(s.snaps, nil)
	copy(s.snaps[i+1:], s.snaps[i:])
	s.snaps[i] = snap
	return nil
}

// Latest implements Store.
func (s *MemStore) Latest() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.snaps) == 0 {
		return nil, nil
	}
	return s.snaps[len(s.snaps)-1], nil
}

// Horizons implements Store.
func (s *MemStore) Horizons() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.snaps))
	for i, snap := range s.snaps {
		out[i] = snap.Horizon
	}
	return out, nil
}

// Prune implements Store.
func (s *MemStore) Prune(keep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keep < 1 {
		keep = 1
	}
	if n := len(s.snaps) - keep; n > 0 {
		s.snaps = append(s.snaps[:0:0], s.snaps[n:]...)
	}
	return nil
}
