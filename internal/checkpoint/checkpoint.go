// Package checkpoint implements Rainbow's checkpoint & log-compaction
// subsystem: fuzzy snapshots of the sharded copy store plus the decision
// table, written atomically and validated by checksum, that bound both the
// write-ahead log's on-disk volume and the amount of history crash recovery
// must replay.
//
// A checkpoint at horizon H captures every effect of WAL records below H,
// so recovery becomes load-latest-valid-snapshot + redo-from-H instead of
// full-history replay, and the log can delete segments wholly below H —
// except segments pinned by Prepared-but-undecided (in-doubt) transactions,
// whose records must survive for 2PC/3PC termination.
//
// Snapshots are "fuzzy" in the classical sense: transaction processing
// continues while one is taken. The only interlock is the manager's gate, a
// reader-writer lock the decision pipeline holds in read mode around each
// decision's force-write + install; the manager takes it in write mode just
// long enough to read the durable LSN and copy the store, guaranteeing that
// every decision below the horizon is fully installed in the snapshot.
// Prepares, reads and pre-writes never touch the gate.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Decision is one decided transaction carried in a snapshot (the decision
// table must survive compaction so recovered coordinators keep answering
// peers' decision requests).
type Decision struct {
	Tx     model.TxID `json:"tx"`
	Commit bool       `json:"commit"`
}

// Snapshot is one fuzzy checkpoint image: either a full snapshot (Base 0,
// Items covering the whole store) or a delta carrying only the shards
// dirtied since the previous snapshot in its chain.
type Snapshot struct {
	// Horizon is the first LSN recovery must redo on top of this snapshot
	// (composed with its chain for deltas): every record below it is fully
	// reflected in the chain's Items and in Decisions.
	Horizon uint64 `json:"horizon"`
	// Base is the horizon of the full snapshot this delta extends; 0 marks
	// a full snapshot.
	Base uint64 `json:"base,omitempty"`
	// Prev is the horizon of the immediately preceding snapshot in the
	// chain (Base for the first delta). Recovery walks Prev pointers back
	// to the full snapshot; a torn link truncates the chain there.
	Prev uint64 `json:"prev,omitempty"`
	// Items are the captured copies: the whole store for a full snapshot,
	// the dirty shards' contents for a delta.
	Items map[model.ItemID]storage.Copy `json:"items"`
	// Decisions is the participant's full decision table at snapshot time
	// (carried by deltas too — retirement keeps it small, and recovery then
	// only ever needs the newest link's table).
	Decisions []Decision `json:"decisions,omitempty"`
}

// Delta reports whether the snapshot is a delta in a chain.
func (s *Snapshot) Delta() bool { return s.Base != 0 }

// Compose overlays a snapshot chain — a full snapshot followed by its
// consecutive deltas in horizon order — into one equivalent full snapshot.
// Decisions come from the newest link (each link carries the whole table).
// A nil or empty chain composes to nil.
func Compose(chain []*Snapshot) *Snapshot {
	if len(chain) == 0 {
		return nil
	}
	last := chain[len(chain)-1]
	if len(chain) == 1 {
		return last
	}
	n := 0
	for _, s := range chain {
		n += len(s.Items)
	}
	items := make(map[model.ItemID]storage.Copy, n)
	for _, s := range chain {
		for k, v := range s.Items {
			items[k] = v
		}
	}
	return &Snapshot{Horizon: last.Horizon, Items: items, Decisions: last.Decisions}
}

// DecisionMap converts the decision list back to the participant's table
// form.
func (s *Snapshot) DecisionMap() map[model.TxID]bool {
	out := make(map[model.TxID]bool, len(s.Decisions))
	for _, d := range s.Decisions {
		out[d.Tx] = d.Commit
	}
	return out
}

// Store persists snapshots. Implementations must make Save atomic (a torn
// or partial snapshot must never appear in a chain) and tolerate corrupt
// entries by falling back to older ones.
type Store interface {
	// Save durably stores a snapshot.
	Save(*Snapshot) error
	// LatestChain returns the newest recoverable snapshot chain — a full
	// snapshot followed by its consecutive valid deltas in horizon order,
	// ready for Compose. A torn or missing link truncates the chain just
	// below it ("torn delta falls back one link"); a chain whose full base
	// is unreadable is skipped entirely in favor of an older one. Nil when
	// nothing recoverable exists.
	LatestChain() ([]*Snapshot, error)
	// Horizons lists the horizons of stored valid snapshots (full and
	// delta) in ascending order.
	Horizons() ([]uint64, error)
	// Prune removes the oldest snapshots, keeping at least the newest keep
	// ones — extended backwards so a kept delta never loses the chain
	// leading to its full base.
	Prune(keep int) error
}

// Latest composes a store's newest recoverable chain into one full
// snapshot image (nil when the store is empty).
func Latest(s Store) (*Snapshot, error) {
	chain, err := s.LatestChain()
	if err != nil {
		return nil, err
	}
	return Compose(chain), nil
}

// latestChain is the chain walk shared by the snapshot stores: among n
// snapshots in ascending horizon order, find the newest recoverable chain.
// at(i) loads candidate i, prev(h) loads the snapshot at horizon h; both
// return nil for a torn or missing entry, which makes the walk fall back —
// one candidate for a bad newest link, one link for a bad Prev target. The
// length guard breaks cyclic Prev pointers in corrupt metadata.
func latestChain(n int, at func(int) *Snapshot, prev func(uint64) *Snapshot) []*Snapshot {
candidates:
	for i := n - 1; i >= 0; i-- {
		cur := at(i)
		if cur == nil {
			continue
		}
		chain := []*Snapshot{cur}
		for cur.Delta() {
			if len(chain) > n {
				continue candidates
			}
			if cur = prev(cur.Prev); cur == nil {
				continue candidates
			}
			chain = append(chain, cur)
		}
		// Reverse into horizon order: full base first.
		for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
			chain[l], chain[r] = chain[r], chain[l]
		}
		return chain
	}
	return nil
}

// pruneCut is the chain-preserving prune rule shared by the snapshot
// stores: of n snapshots in ascending horizon order, how many leading ones
// may be removed while keeping at least keep and never separating a kept
// delta (isDelta(i)) from the full snapshot that starts its chain. Chains
// are contiguous in horizon order because the manager is the only writer.
func pruneCut(n, keep int, isDelta func(int) bool) int {
	if keep < 1 {
		keep = 1
	}
	cut := n - keep
	for cut > 0 && isDelta(cut) {
		cut--
	}
	if cut < 0 {
		return 0
	}
	return cut
}

// ---- Directory-backed store ----

const (
	snapPrefix     = "checkpoint-"
	snapSuffix     = ".snap"
	deltaMark      = ".delta"
	snapHeaderSize = 16 // magic(8) + payload length(4) + payload CRC32(4)
)

var snapMagic = [8]byte{'R', 'B', 'W', 'S', 'N', 'A', 'P', '1'}

// DirStore keeps snapshots as files in a directory (conventionally the
// WAL's segment directory). Each file is a checksummed JSON image written
// via temp file + fsync + rename, so a crash mid-checkpoint leaves either
// the previous snapshot set intact or the new file complete — never a torn
// visible snapshot. A torn or bit-rotted file fails validation and Latest
// falls back to the next-newest one.
type DirStore struct {
	dir string
	mu  sync.Mutex
	// known caches validation verdicts per path. Snapshot files are
	// immutable once renamed into place, so a verdict holds for the
	// process lifetime; entries are dropped when files are pruned.
	known map[string]bool
}

// NewDirStore returns a store over dir (created on first Save).
func NewDirStore(dir string) *DirStore {
	return &DirStore{dir: dir, known: make(map[string]bool)}
}

// checkValid validates path with the per-path cache.
func (s *DirStore) checkValid(path string) bool {
	if v, ok := s.known[path]; ok {
		return v
	}
	_, err := validate(path)
	s.known[path] = err == nil
	return err == nil
}

// snapPath names a snapshot file: checkpoint-<horizon>.snap for full
// snapshots, checkpoint-<horizon>.delta.snap for deltas. The horizon's
// fixed-width encoding keeps lexical order == horizon order, and the delta
// mark lets Prune respect chain boundaries without decoding payloads.
func snapPath(dir string, horizon uint64, delta bool) string {
	mark := ""
	if delta {
		mark = deltaMark
	}
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s%s", snapPrefix, horizon, mark, snapSuffix))
}

// Save implements Store.
func (s *DirStore) Save(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: mkdir %s: %w", s.dir, err)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal snapshot: %w", err)
	}
	var hdr [snapHeaderSize]byte
	copy(hdr[0:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))

	final := snapPath(s.dir, snap.Horizon, snap.Delta())
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint: rename %s: %w", final, err)
	}
	wal.SyncDir(s.dir)
	s.known[final] = true
	return nil
}

// validate reads one snapshot file and checks its frame: a short file, bad
// magic, bad length or CRC mismatch returns an error (the caller falls
// back). The payload is returned undecoded — horizon listing only needs the
// integrity check, not the full JSON parse.
func validate(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [snapHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: truncated header: %w", path, err)
	}
	if [8]byte(hdr[0:8]) != snapMagic {
		return nil, fmt.Errorf("checkpoint: %s: bad magic", path)
	}
	length := binary.LittleEndian.Uint32(hdr[8:12])
	sum := binary.LittleEndian.Uint32(hdr[12:16])
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: torn payload: %w", path, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("checkpoint: %s: checksum mismatch", path)
	}
	return payload, nil
}

// load validates and decodes one snapshot file.
func load(path string) (*Snapshot, error) {
	payload, err := validate(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: decode: %w", path, err)
	}
	return &snap, nil
}

// parseSnapName parses the horizon and delta mark out of a snapshot
// filename (see snapPath).
func parseSnapName(path string) (horizon uint64, delta, ok bool) {
	name := filepath.Base(path)
	name = strings.TrimPrefix(name, snapPrefix)
	name = strings.TrimSuffix(name, snapSuffix)
	if strings.HasSuffix(name, deltaMark) {
		delta = true
		name = strings.TrimSuffix(name, deltaMark)
	}
	h, err := strconv.ParseUint(name, 10, 64)
	return h, delta, err == nil
}

// list returns snapshot file paths in ascending horizon (name) order.
func (s *DirStore) list() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list %s: %w", s.dir, err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix) {
			out = append(out, filepath.Join(s.dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// LatestChain implements Store: candidates newest-first; for each, the
// chain is walked back through Prev pointers to its full base. A candidate
// whose chain breaks (torn, missing or cyclic link) is skipped in favor of
// the next-newest file — the torn-delta fallback.
func (s *DirStore) LatestChain() ([]*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := s.list()
	if err != nil {
		return nil, err
	}
	byHorizon := make(map[uint64]string, len(paths))
	for _, p := range paths {
		if h, _, ok := parseSnapName(p); ok {
			byHorizon[h] = p
		}
	}
	// loaded caches decode results across candidate walks (nil = bad file).
	loaded := make(map[string]*Snapshot)
	get := func(p string) *Snapshot {
		if snap, ok := loaded[p]; ok {
			return snap
		}
		snap, err := load(p)
		if err != nil {
			snap = nil
		}
		loaded[p] = snap
		return snap
	}
	chain := latestChain(len(paths),
		func(i int) *Snapshot { return get(paths[i]) },
		func(h uint64) *Snapshot {
			p, ok := byHorizon[h]
			if !ok {
				return nil // link pruned or never written
			}
			return get(p)
		})
	return chain, nil
}

// Horizons implements Store (valid snapshots only). Integrity is checked
// (magic + CRC) but the JSON body is not decoded: the horizon comes from
// the filename, so listing stays cheap even with large store images.
func (s *DirStore) Horizons() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := s.list()
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, p := range paths {
		h, _, ok := parseSnapName(p)
		if !ok {
			continue
		}
		if s.checkValid(p) {
			out = append(out, h)
		}
	}
	return out, nil
}

// Prune implements Store: keep the newest keep files (by name order),
// extended backwards past any leading deltas so every kept delta retains
// the chain down to its full base, and remove the rest. Chains are
// contiguous in horizon order (the manager is the only writer), so "back
// to the nearest full snapshot" is exactly chain-preserving.
func (s *DirStore) Prune(keep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths, err := s.list()
	if err != nil {
		return err
	}
	cut := pruneCut(len(paths), keep, func(i int) bool {
		_, delta, ok := parseSnapName(paths[i])
		return ok && delta
	})
	var firstErr error
	for i := 0; i < cut; i++ {
		if err := os.Remove(paths[i]); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("checkpoint: prune %s: %w", paths[i], err)
			continue
		}
		delete(s.known, paths[i])
	}
	if cut > 0 {
		wal.SyncDir(s.dir)
	}
	return firstErr
}

// ---- In-memory store ----

// MemStore keeps snapshots in process memory. Like wal.MemoryLog it
// survives the failure injector's simulated crashes (the site's volatile
// state is discarded; the store object is handed to the recovered site), so
// simnet experiments exercise the full checkpoint/recovery path.
type MemStore struct {
	mu    sync.Mutex
	snaps []*Snapshot // ascending horizon
}

// NewMemStore returns an empty in-memory snapshot store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements Store. Snapshots are treated as immutable after Save.
func (s *MemStore) Save(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].Horizon >= snap.Horizon })
	if i < len(s.snaps) && s.snaps[i].Horizon == snap.Horizon {
		s.snaps[i] = snap
		return nil
	}
	s.snaps = append(s.snaps, nil)
	copy(s.snaps[i+1:], s.snaps[i:])
	s.snaps[i] = snap
	return nil
}

// LatestChain implements Store. In-memory snapshots cannot tear, but the
// chain walk still guards against missing links (e.g. after an external
// prune) by falling back one candidate, mirroring DirStore.
func (s *MemStore) LatestChain() ([]*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byHorizon := make(map[uint64]*Snapshot, len(s.snaps))
	for _, snap := range s.snaps {
		byHorizon[snap.Horizon] = snap
	}
	chain := latestChain(len(s.snaps),
		func(i int) *Snapshot { return s.snaps[i] },
		func(h uint64) *Snapshot { return byHorizon[h] })
	return chain, nil
}

// Horizons implements Store.
func (s *MemStore) Horizons() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.snaps))
	for i, snap := range s.snaps {
		out[i] = snap.Horizon
	}
	return out, nil
}

// Prune implements Store, with the same chain-preserving extension as
// DirStore: a kept delta keeps its whole chain down to the full base.
func (s *MemStore) Prune(keep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cut := pruneCut(len(s.snaps), keep, func(i int) bool { return s.snaps[i].Delta() })
	if cut > 0 {
		s.snaps = append(s.snaps[:0:0], s.snaps[cut:]...)
	}
	return nil
}
