package checkpoint

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/wal"
)

// newChainRig builds a manager over a segmented log + dir store, the setup
// every delta-chain edge case shares.
func newChainRig(t *testing.T, pol Policy) (*Manager, *storage.Store, *wal.SegmentedLog, *DirStore) {
	t.Helper()
	dir := t.TempDir()
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	st := storage.NewSharded(16)
	st.Init(map[model.ItemID]int64{"x": 0, "y": 0})
	snaps := NewDirStore(dir)
	return NewManager(st, l, snaps, nil, pol), st, l, snaps
}

// TestDeltaMaxBoundaryExactlyHit: with DeltaMax=N the chain must be
// full, delta x N, full — the N-th delta is still a delta (the boundary is
// inclusive) and exactly the (N+1)-th checkpoint re-forces a full.
func TestDeltaMaxBoundaryExactlyHit(t *testing.T) {
	for _, deltaMax := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("deltaMax=%d", deltaMax), func(t *testing.T) {
			m, st, l, snaps := newChainRig(t, Policy{DeltaMax: deltaMax, Retain: 16})
			seq := 1
			ckpt := func() Stats {
				populate(t, m, st, l, seq, 3)
				seq += 3
				if err := m.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				return m.Stats()
			}
			ckpt() // the chain's full
			for i := 1; i <= deltaMax; i++ {
				s := ckpt()
				if s.Deltas != uint64(i) {
					t.Fatalf("checkpoint %d: deltas = %d, want %d (boundary is inclusive)", i+1, s.Deltas, i)
				}
			}
			// Exactly at the boundary: the next one is full again.
			s := ckpt()
			if s.Deltas != uint64(deltaMax) {
				t.Fatalf("past boundary: deltas = %d, want still %d", s.Deltas, deltaMax)
			}
			if s.Checkpoints != uint64(deltaMax)+2 {
				t.Fatalf("checkpoints = %d, want %d", s.Checkpoints, deltaMax+2)
			}
			// On-disk shape: horizons[0] full, 1..deltaMax deltas, last full.
			hs, err := snaps.Horizons()
			if err != nil || len(hs) != deltaMax+2 {
				t.Fatalf("horizons = %v, %v", hs, err)
			}
			for i, h := range hs {
				wantDelta := i > 0 && i < len(hs)-1
				if _, err := load(snapPath(t.TempDir(), h, wantDelta)); err == nil {
					t.Fatal("bogus path must not load") // guard against path mixups below
				}
				if _, err := load(snapPath(l.Dir(), h, wantDelta)); err != nil {
					t.Errorf("snapshot %d (horizon %d): want delta=%v: %v", i, h, wantDelta, err)
				}
			}
		})
	}
}

// TestPruneRacesInProgressCapture: explicit Prune calls and store installs
// racing live checkpoints must never leave the store unrecoverable — every
// observable chain composes, and the final Latest image carries the final
// value. (Run under -race: this is as much a data-race probe as an
// invariant check.)
func TestPruneRacesInProgressCapture(t *testing.T) {
	m, st, l, snaps := newChainRig(t, Policy{DeltaMax: 2, Retain: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// install appends one decided write through the gate, like the decision
	// pipeline does.
	install := func(seq uint64, item model.ItemID) {
		tx := model.TxID{Site: "S1", Seq: seq}
		w := []model.WriteRecord{{Item: item, Value: int64(seq), Version: model.Version(seq)}}
		l.Append(wal.Record{Type: wal.RecPrepared, Tx: tx, Coordinator: "S1", Writes: w}) //nolint:errcheck
		gate := m.Gate()
		gate.RLock()
		if err := l.Append(wal.Record{Type: wal.RecDecision, Tx: tx, Commit: true}); err == nil {
			st.Apply(w) //nolint:errcheck
		}
		gate.RUnlock()
	}
	wg.Add(1)
	go func() { // background writer racing the captures on another shard
		defer wg.Done()
		for seq := uint64(1_000_000); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			install(seq, "y")
		}
	}()
	wg.Add(1)
	go func() { // pruner: races captures and the manager's own prune
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snaps.Prune(2) //nolint:errcheck
			if chain, err := snaps.LatestChain(); err != nil {
				t.Error(err)
				return
			} else if len(chain) > 0 && Compose(chain) == nil {
				t.Error("non-empty chain composed to nil")
				return
			}
		}
	}()
	// The main loop guarantees each checkpoint has something to capture (a
	// fresh x install), so the race with the pruner and the writer is
	// exercised on every iteration, not left to scheduler luck.
	for i := 0; i < 40; i++ {
		install(uint64(i+1), "x")
		if err := m.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The final state must recover: one last checkpoint, then compose.
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := Latest(snaps)
	if err != nil || snap == nil {
		hs, herr := snaps.Horizons()
		t.Fatalf("Latest after race = %v, %v (horizons=%v %v, stats=%+v)", snap, err, hs, herr, m.Stats())
	}
	rec := storage.NewSharded(4)
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.RecoverRecords(map[model.ItemID]int64{"x": 0, "y": 0}, snap.Items, snap.Horizon, recs); err != nil {
		t.Fatal(err)
	}
	want, _ := st.Get("x")
	got, _ := rec.Get("x")
	if got != want {
		t.Fatalf("recovered x = %+v, want %+v", got, want)
	}
}

// TestReconfigureBetweenDeltaAndForcedFull: a CheckpointFull (the
// reconfigure-reason snapshot) landing while a delta chain is mid-flight —
// after a delta, before the DeltaMax-forced full — must write a
// self-contained full snapshot, restart the chain there, and keep every
// older chain recoverable.
func TestReconfigureBetweenDeltaAndForcedFull(t *testing.T) {
	m, st, l, snaps := newChainRig(t, Policy{DeltaMax: 4, Retain: 16})
	populate(t, m, st, l, 1, 5)
	if err := m.Checkpoint(); err != nil { // full
		t.Fatal(err)
	}
	populate(t, m, st, l, 6, 5)
	if err := m.Checkpoint(); err != nil { // delta (1 of 4)
		t.Fatal(err)
	}
	populate(t, m, st, l, 11, 5)
	if err := m.CheckpointFull(); err != nil { // reconfigure arrives mid-chain
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Checkpoints != 3 || s.Deltas != 1 {
		t.Fatalf("stats = %+v, want 3 checkpoints / 1 delta", s)
	}
	chain, err := snaps.LatestChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Delta() {
		t.Fatalf("chain after forced full = %d links (delta at head: %v)", len(chain), chain[0].Delta())
	}
	if chain[0].Items["x"].Value != 15 {
		t.Fatalf("forced full carries x=%+v, want 15", chain[0].Items["x"])
	}
	// The chain restarts at the forced full: the next delta's Base/Prev
	// point at it, not at the pre-reconfigure full.
	populate(t, m, st, l, 16, 5)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	chain, err = snaps.LatestChain()
	if err != nil || len(chain) != 2 {
		t.Fatalf("chain after post-reconfigure delta = %d links, %v", len(chain), err)
	}
	if !chain[1].Delta() || chain[1].Base != chain[0].Horizon {
		t.Fatalf("new delta base = %d, want the forced full's horizon %d", chain[1].Base, chain[0].Horizon)
	}
	if comp := Compose(chain); comp.Items["x"].Value != 20 {
		t.Fatalf("composed post-reconfigure chain x = %+v, want 20", comp.Items["x"])
	}
}

// TestCheckpointFullOnIdleManagerStillSnapshots: unlike Checkpoint,
// CheckpointFull must not take the idle shortcut — the reconfigure caller
// is about to restore from the snapshot it asked for.
func TestCheckpointFullOnIdleManagerStillSnapshots(t *testing.T) {
	m, st, l, snaps := newChainRig(t, Policy{DeltaMax: 2})
	populate(t, m, st, l, 1, 3)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Nothing appended since: Checkpoint would no-op, CheckpointFull must
	// still write a full image.
	before, _ := snaps.Horizons()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after, _ := snaps.Horizons(); len(after) != len(before) {
		t.Fatalf("idle Checkpoint wrote a snapshot: %v -> %v", before, after)
	}
	if err := m.CheckpointFull(); err != nil {
		t.Fatal(err)
	}
	after, _ := snaps.Horizons()
	if len(after) != len(before)+1 {
		t.Fatalf("idle CheckpointFull wrote nothing: %v -> %v", before, after)
	}
	chain, err := snaps.LatestChain()
	if err != nil || len(chain) != 1 || chain[0].Delta() {
		t.Fatalf("chain after idle forced full: %d links, %v", len(chain), err)
	}
	if chain[0].Items["x"].Value != 3 {
		t.Fatalf("idle forced full x = %+v, want 3", chain[0].Items["x"])
	}
}
