package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/wal"
)

func sampleSnapshot(h uint64) *Snapshot {
	return &Snapshot{
		Horizon: h,
		Items: map[model.ItemID]storage.Copy{
			"x": {Value: int64(h), Version: model.Version(h)},
		},
		Decisions: []Decision{{Tx: model.TxID{Site: "S1", Seq: h}, Commit: true}},
	}
}

func stores(t *testing.T) map[string]Store {
	return map[string]Store{
		"dir": NewDirStore(t.TempDir()),
		"mem": NewMemStore(),
	}
}

func TestStoreSaveLatestPrune(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if snap, err := Latest(s); err != nil || snap != nil {
				t.Fatalf("empty store Latest = %v, %v", snap, err)
			}
			for _, h := range []uint64{10, 20, 30} {
				if err := s.Save(sampleSnapshot(h)); err != nil {
					t.Fatal(err)
				}
			}
			snap, err := Latest(s)
			if err != nil || snap == nil || snap.Horizon != 30 {
				t.Fatalf("Latest = %+v, %v", snap, err)
			}
			if snap.Items["x"].Value != 30 || len(snap.Decisions) != 1 {
				t.Errorf("snapshot content lost: %+v", snap)
			}
			hs, err := s.Horizons()
			if err != nil || len(hs) != 3 || hs[0] != 10 || hs[2] != 30 {
				t.Fatalf("Horizons = %v, %v", hs, err)
			}
			if err := s.Prune(2); err != nil {
				t.Fatal(err)
			}
			hs, _ = s.Horizons()
			if len(hs) != 2 || hs[0] != 20 {
				t.Fatalf("after Prune(2): %v", hs)
			}
		})
	}
}

// TestDirStoreTornSnapshotFallsBack is the crash-during-checkpoint case:
// the newest snapshot file is torn (truncated mid-payload) or bit-rotted,
// and Latest must fall back to the previous valid snapshot rather than
// load garbage or give up.
func TestDirStoreTornSnapshotFallsBack(t *testing.T) {
	corruptions := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()/2); err != nil {
				t.Fatal(err)
			}
		},
		"bitrot": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := NewDirStore(dir)
			if err := s.Save(sampleSnapshot(10)); err != nil {
				t.Fatal(err)
			}
			if err := s.Save(sampleSnapshot(20)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, snapPath(dir, 20, false))

			// Recovery happens in a fresh process: read through a fresh
			// store (DirStore caches per-path validation verdicts, since
			// snapshot files are immutable under normal operation).
			r := NewDirStore(dir)
			snap, err := Latest(r)
			if err != nil {
				t.Fatal(err)
			}
			if snap == nil || snap.Horizon != 10 {
				t.Fatalf("Latest after corruption = %+v, want fallback to horizon 10", snap)
			}
			if hs, _ := r.Horizons(); len(hs) != 1 || hs[0] != 10 {
				t.Errorf("Horizons should skip the corrupt file: %v", hs)
			}
			// Latest always re-validates (defense in depth): even the store
			// that wrote the file must not load the corrupt image.
			if snap, err := Latest(s); err != nil || snap == nil || snap.Horizon != 10 {
				t.Errorf("writer-side Latest after corruption = %+v, %v", snap, err)
			}
		})
	}
}

func TestDirStoreIgnoresStrayTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewDirStore(dir)
	if err := s.Save(sampleSnapshot(5)); err != nil {
		t.Fatal(err)
	}
	// A crash between temp-write and rename leaves a .tmp file behind.
	if err := os.WriteFile(filepath.Join(dir, snapPrefix+"00000000000000000009"+snapSuffix+".tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := Latest(s)
	if err != nil || snap == nil || snap.Horizon != 5 {
		t.Fatalf("Latest = %+v, %v", snap, err)
	}
}

// populate appends n committed transactions through the log and applies
// them to the store, mimicking the site's decision pipeline (gate held in
// read mode around decision force + install).
func populate(t *testing.T, m *Manager, st *storage.Store, l wal.Compactable, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := uint64(from + i)
		tx := model.TxID{Site: "S1", Seq: seq}
		w := []model.WriteRecord{{Item: "x", Value: int64(seq), Version: model.Version(seq)}}
		if err := l.Append(wal.Record{Type: wal.RecPrepared, Tx: tx, Coordinator: "S1", Writes: w}); err != nil {
			t.Fatal(err)
		}
		gate := m.Gate()
		gate.RLock()
		err := l.Append(wal.Record{Type: wal.RecDecision, Tx: tx, Commit: true})
		if err == nil {
			err = st.Apply(w)
		}
		gate.RUnlock()
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestManagerCheckpointBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	items := map[model.ItemID]int64{"x": 0}
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.NewSharded(4)
	st.Init(items)
	snaps := NewDirStore(dir)
	decisions := map[model.TxID]bool{}
	m := NewManager(st, l, snaps, func() map[model.TxID]bool { return decisions }, Policy{})

	populate(t, m, st, l, 1, 60)
	decisions[model.TxID{Site: "S1", Seq: 60}] = true
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	populate(t, m, st, l, 61, 60)
	sizeBefore := l.SizeBytes()
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Acceptance: after a checkpoint, on-disk WAL bytes shrink.
	if after := l.SizeBytes(); after >= sizeBefore {
		t.Errorf("WAL bytes did not shrink after checkpoint: %d -> %d", sizeBefore, after)
	}
	ms := m.Stats()
	if ms.Checkpoints != 2 || ms.SegmentsCompacted == 0 {
		t.Errorf("manager stats = %+v", ms)
	}

	// Crash/recover cycle: a fresh store recovers from the latest snapshot
	// plus the retained records, reading strictly fewer records than were
	// ever appended.
	totalAppended := 240 + 2 // 120 txns * 2 records + 2 checkpoint records
	snap, err := Latest(snaps)
	if err != nil || snap == nil {
		t.Fatalf("Latest = %v, %v", snap, err)
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= totalAppended {
		t.Errorf("recovery reads %d records, want strictly fewer than %d appended", len(recs), totalAppended)
	}
	st2 := storage.NewSharded(4)
	inDoubt, err := st2.RecoverRecords(items, snap.Items, snap.Horizon, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Errorf("no in-doubt transactions expected, got %v", inDoubt)
	}
	c, ok := st2.Get("x")
	if !ok || c.Value != 120 || c.Version != 120 {
		t.Errorf("recovered copy = %+v, want value 120 @ v120", c)
	}
	if snap.DecisionMap()[model.TxID{Site: "S1", Seq: 60}] != true {
		t.Error("decision table lost from snapshot")
	}
}

// TestManagerInDoubtSurvivesCompaction: a transaction prepared before the
// horizon and never decided must surface from recovery even after two
// checkpoints compacted everything else below the horizon.
func TestManagerInDoubtSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	items := map[model.ItemID]int64{"x": 0, "y": 0}
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.NewSharded(4)
	st.Init(items)
	snaps := NewDirStore(dir)
	m := NewManager(st, l, snaps, nil, Policy{})

	orphan := model.TxID{Site: "S2", Seq: 9999}
	if err := l.Append(wal.Record{Type: wal.RecPrepared, Tx: orphan, Coordinator: "S2",
		Participants: []model.SiteID{"S1", "S2"},
		Writes:       []model.WriteRecord{{Item: "y", Value: 42, Version: 7}}}); err != nil {
		t.Fatal(err)
	}
	populate(t, m, st, l, 1, 50)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	populate(t, m, st, l, 51, 50)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SegmentsCompacted == 0 {
		t.Fatal("compaction never removed a segment; test is vacuous")
	}

	snap, err := Latest(snaps)
	if err != nil || snap == nil {
		t.Fatal(err)
	}
	if orphanLSN := uint64(1); snap.Horizon <= orphanLSN {
		t.Fatalf("horizon %d does not cover the orphan's prepare", snap.Horizon)
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	st2 := storage.NewSharded(4)
	inDoubt, err := st2.RecoverRecords(items, snap.Items, snap.Horizon, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 || inDoubt[0].Tx != orphan {
		t.Fatalf("in-doubt = %+v, want the orphan %v", inDoubt, orphan)
	}
	if inDoubt[0].Writes[0].Item != "y" || inDoubt[0].Coordinator != "S2" {
		t.Errorf("orphan payload lost: %+v", inDoubt[0])
	}
	// The undecided write must NOT be installed.
	if c, _ := st2.Get("y"); c.Value != 0 {
		t.Errorf("in-doubt write leaked into the store: %+v", c)
	}
}

// TestManagerTornNewestSnapshotRecovery glues the two halves together: the
// newest snapshot is torn, recovery falls back to the previous snapshot,
// and the WAL still holds every record needed from that older horizon
// (compaction lags one checkpoint for exactly this reason).
func TestManagerTornNewestSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	items := map[model.ItemID]int64{"x": 0}
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.NewSharded(4)
	st.Init(items)
	snaps := NewDirStore(dir)
	m := NewManager(st, l, snaps, nil, Policy{})

	populate(t, m, st, l, 1, 40)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	populate(t, m, st, l, 41, 40)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	populate(t, m, st, l, 81, 10)

	hs, err := snaps.Horizons()
	if err != nil || len(hs) != 2 {
		t.Fatalf("Horizons = %v, %v", hs, err)
	}
	// Tear the newest snapshot, as a crash mid-write would.
	st2, err := os.Stat(snapPath(dir, hs[1], false))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snapPath(dir, hs[1], false), st2.Size()-7); err != nil {
		t.Fatal(err)
	}

	snap, err := Latest(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Horizon != hs[0] {
		t.Fatalf("fallback snapshot horizon = %+v, want %d", snap, hs[0])
	}
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Every record at or after the fallback horizon must still be present.
	for want := snap.Horizon; want <= l.DurableLSN(); want++ {
		found := false
		for _, r := range recs {
			if r.LSN == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("record %d (>= fallback horizon %d) was compacted away", want, snap.Horizon)
		}
	}
	fresh := storage.NewSharded(4)
	if _, err := fresh.RecoverRecords(items, snap.Items, snap.Horizon, recs); err != nil {
		t.Fatal(err)
	}
	c, ok := fresh.Get("x")
	if !ok || c.Value != 90 {
		t.Errorf("recovered value = %+v, want 90", c)
	}
}

func TestManagerNoopWhenNothingAppended(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.New()
	st.Init(map[model.ItemID]int64{"x": 0})
	m := NewManager(st, l, NewDirStore(dir), nil, Policy{})
	populate(t, m, st, l, 1, 3)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Checkpoints; got != 1 {
		t.Errorf("idle re-checkpoint should be a no-op: %d checkpoints", got)
	}
}

func TestPolicyEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Error("zero policy should be disabled")
	}
	if !(Policy{Bytes: 1}).Enabled() || !(Policy{Interval: 1}).Enabled() {
		t.Error("byte/interval policies should be enabled")
	}
}

// TestManagerDeltaChain drives an incremental policy through several
// checkpoints: the first snapshot is full, later ones are deltas carrying
// only dirty shards, a full is re-forced after DeltaMax deltas, and the
// chain composes to the live store state.
func TestManagerDeltaChain(t *testing.T) {
	dir := t.TempDir()
	items := map[model.ItemID]int64{}
	for i := 0; i < 64; i++ {
		items[model.ItemID(fmt.Sprintf("i%02d", i))] = 0
	}
	items["x"] = 0
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.NewSharded(16)
	st.Init(items)
	snaps := NewDirStore(dir)
	m := NewManager(st, l, snaps, nil, Policy{DeltaMax: 2, Retain: 10})

	// Checkpoint 1: full (nothing captured yet).
	populate(t, m, st, l, 1, 10)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Checkpoints 2 and 3: deltas — only "x" is ever written, so the delta
	// must carry far fewer items than the store holds.
	populate(t, m, st, l, 11, 10)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	populate(t, m, st, l, 21, 10)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 4: DeltaMax reached, full again.
	populate(t, m, st, l, 31, 10)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ms := m.Stats()
	if ms.Checkpoints != 4 || ms.Deltas != 2 {
		t.Fatalf("stats = %+v, want 4 checkpoints / 2 deltas", ms)
	}
	if ms.LastItems != len(items) {
		t.Errorf("final full snapshot carries %d items, want the whole store (%d)", ms.LastItems, len(items))
	}

	chain, err := snaps.LatestChain()
	if err != nil {
		t.Fatal(err)
	}
	// The newest snapshot is full, so the chain is just that one link.
	if len(chain) != 1 || chain[0].Delta() {
		t.Fatalf("chain after re-forced full = %d links (delta=%v)", len(chain), chain[0].Delta())
	}

	// Corrupt nothing, but check the intermediate chain shape on disk: the
	// two middle snapshots must be deltas chained to the first full.
	all, err := snaps.Horizons()
	if err != nil || len(all) != 4 {
		t.Fatalf("Horizons = %v, %v", all, err)
	}
	d2, err := load(snapPath(dir, all[1], true))
	if err != nil {
		t.Fatalf("middle snapshot not stored as a delta: %v", err)
	}
	if d2.Base != all[0] || d2.Prev != all[0] {
		t.Errorf("first delta base/prev = %d/%d, want %d", d2.Base, d2.Prev, all[0])
	}
	if len(d2.Items) >= len(items) {
		t.Errorf("delta carries %d items — not incremental (store has %d)", len(d2.Items), len(items))
	}
	d3, err := load(snapPath(dir, all[2], true))
	if err != nil {
		t.Fatal(err)
	}
	if d3.Base != all[0] || d3.Prev != all[1] {
		t.Errorf("second delta base/prev = %d/%d, want %d/%d", d3.Base, d3.Prev, all[0], all[1])
	}

	// Compose the delta chain as recovery would have seen it before the
	// second full: full + two deltas must equal the store state at d3.
	sub := []*Snapshot{mustLoad(t, dir, all[0], false), d2, d3}
	comp := Compose(sub)
	if comp.Horizon != d3.Horizon || comp.Items["x"].Value != 30 {
		t.Fatalf("composed chain = horizon %d x=%+v, want horizon %d x=30", comp.Horizon, comp.Items["x"], d3.Horizon)
	}
}

func mustLoad(t *testing.T, dir string, h uint64, delta bool) *Snapshot {
	t.Helper()
	s, err := load(snapPath(dir, h, delta))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTornDeltaFallsBackOneLink: the newest delta is torn; LatestChain must
// return the chain up to the previous link, and recovery from that
// composed image plus the retained WAL reaches the full final state
// (compaction lags one snapshot for exactly this).
func TestTornDeltaFallsBackOneLink(t *testing.T) {
	dir := t.TempDir()
	items := map[model.ItemID]int64{"x": 0}
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.NewSharded(4)
	st.Init(items)
	snaps := NewDirStore(dir)
	m := NewManager(st, l, snaps, nil, Policy{DeltaMax: 8, Retain: 10})

	populate(t, m, st, l, 1, 20)
	if err := m.Checkpoint(); err != nil { // full
		t.Fatal(err)
	}
	populate(t, m, st, l, 21, 20)
	if err := m.Checkpoint(); err != nil { // delta 1
		t.Fatal(err)
	}
	populate(t, m, st, l, 41, 20)
	if err := m.Checkpoint(); err != nil { // delta 2
		t.Fatal(err)
	}
	populate(t, m, st, l, 61, 5)

	hs, err := snaps.Horizons()
	if err != nil || len(hs) != 3 {
		t.Fatalf("Horizons = %v, %v", hs, err)
	}
	// Tear the newest delta mid-payload.
	p := snapPath(dir, hs[2], true)
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	chain, err := NewDirStore(dir).LatestChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[1].Horizon != hs[1] {
		t.Fatalf("fallback chain = %d links ending at %d, want 2 ending at %d", len(chain), chain[len(chain)-1].Horizon, hs[1])
	}
	snap := Compose(chain)
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	fresh := storage.NewSharded(4)
	if _, err := fresh.RecoverRecords(items, snap.Items, snap.Horizon, recs); err != nil {
		t.Fatal(err)
	}
	if c, _ := fresh.Get("x"); c.Value != 65 {
		t.Errorf("recovered x = %+v, want 65 (snapshot 40 + redo 41..65)", c)
	}
}

// TestCrashBetweenDeltaAndFull: the forced full snapshot is torn by a crash
// mid-write; recovery must fall back to the preceding full+delta chain and
// still reach the final state via WAL redo.
func TestCrashBetweenDeltaAndFull(t *testing.T) {
	dir := t.TempDir()
	items := map[model.ItemID]int64{"x": 0}
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.NewSharded(4)
	st.Init(items)
	snaps := NewDirStore(dir)
	m := NewManager(st, l, snaps, nil, Policy{DeltaMax: 2, Retain: 10})

	populate(t, m, st, l, 1, 15)
	if err := m.Checkpoint(); err != nil { // full 1
		t.Fatal(err)
	}
	populate(t, m, st, l, 16, 15)
	if err := m.Checkpoint(); err != nil { // delta 1
		t.Fatal(err)
	}
	populate(t, m, st, l, 31, 15)
	if err := m.Checkpoint(); err != nil { // delta 2
		t.Fatal(err)
	}
	populate(t, m, st, l, 46, 15)
	if err := m.Checkpoint(); err != nil { // full 2 (DeltaMax reached)
		t.Fatal(err)
	}
	populate(t, m, st, l, 61, 5)

	hs, err := snaps.Horizons()
	if err != nil || len(hs) != 4 {
		t.Fatalf("Horizons = %v, %v", hs, err)
	}
	// "Crash mid-full": the newest (full) snapshot file is torn.
	p := snapPath(dir, hs[3], false)
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, fi.Size()/3); err != nil {
		t.Fatal(err)
	}

	chain, err := NewDirStore(dir).LatestChain()
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0].Delta() || !chain[2].Delta() || chain[2].Horizon != hs[2] {
		t.Fatalf("fallback chain shape wrong: %d links, horizons %v", len(chain), hs)
	}
	snap := Compose(chain)
	recs, err := l.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	fresh := storage.NewSharded(4)
	if _, err := fresh.RecoverRecords(items, snap.Items, snap.Horizon, recs); err != nil {
		t.Fatal(err)
	}
	if c, _ := fresh.Get("x"); c.Value != 65 {
		t.Errorf("recovered x = %+v, want 65", c)
	}
}

// TestPrunePreservesChain: pruning must never orphan a delta from its full
// base — the cut extends back to the chain's full snapshot.
func TestPrunePreservesChain(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			full := func(h uint64) *Snapshot { return sampleSnapshot(h) }
			delta := func(h, base, prev uint64) *Snapshot {
				sn := sampleSnapshot(h)
				sn.Base, sn.Prev = base, prev
				return sn
			}
			for _, sn := range []*Snapshot{
				full(10), delta(20, 10, 10), delta(30, 10, 20),
				full(40), delta(50, 40, 40),
			} {
				if err := s.Save(sn); err != nil {
					t.Fatal(err)
				}
			}
			// Keep 2 → the cut would land inside chain {40,50}; it must not
			// split it, and chain {10,20,30} is removable in full.
			if err := s.Prune(2); err != nil {
				t.Fatal(err)
			}
			hs, err := s.Horizons()
			if err != nil {
				t.Fatal(err)
			}
			if len(hs) != 2 || hs[0] != 40 || hs[1] != 50 {
				t.Fatalf("after Prune(2): %v, want [40 50]", hs)
			}
			// Keep 1 → cut would land on the delta at 50; extend back to 40.
			if err := s.Prune(1); err != nil {
				t.Fatal(err)
			}
			hs, _ = s.Horizons()
			if len(hs) != 2 || hs[0] != 40 {
				t.Fatalf("Prune(1) split the chain: %v", hs)
			}
			chain, err := s.LatestChain()
			if err != nil || len(chain) != 2 || chain[0].Horizon != 40 {
				t.Fatalf("chain after pruning = %v, %v", chain, err)
			}
		})
	}
}

// TestManagerRetiredDecisionLeavesSnapshots: a decision retired (cohort
// fully acknowledged) before a checkpoint no longer appears in the next
// snapshot, while an unacknowledged one survives.
func TestManagerRetiredDecisionLeavesSnapshots(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.OpenSegmented(dir, wal.SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := storage.NewSharded(4)
	st.Init(map[model.ItemID]int64{"x": 0})
	snaps := NewDirStore(dir)
	decisions := map[model.TxID]bool{
		{Site: "S1", Seq: 1}: true, // will retire
		{Site: "S1", Seq: 2}: true, // unacked: stays
	}
	m := NewManager(st, l, snaps, func() map[model.TxID]bool {
		out := make(map[model.TxID]bool, len(decisions))
		for k, v := range decisions {
			out[k] = v
		}
		return out
	}, Policy{})

	populate(t, m, st, l, 1, 5)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := Latest(snaps)
	if err != nil || snap == nil {
		t.Fatal(err)
	}
	if len(snap.Decisions) != 2 {
		t.Fatalf("first snapshot decisions = %+v, want both", snap.Decisions)
	}

	// The cohort of tx 1 fully acknowledges: the site retires the entry.
	delete(decisions, model.TxID{Site: "S1", Seq: 1})
	populate(t, m, st, l, 6, 5)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err = Latest(snaps)
	if err != nil || snap == nil {
		t.Fatal(err)
	}
	dm := snap.DecisionMap()
	if _, ok := dm[model.TxID{Site: "S1", Seq: 1}]; ok {
		t.Error("retired decision still mirrored into the new snapshot")
	}
	if _, ok := dm[model.TxID{Site: "S1", Seq: 2}]; !ok {
		t.Error("unacknowledged decision lost from the new snapshot")
	}
}
