package checkpoint

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Policy configures when checkpoints fire and how snapshots are captured.
type Policy struct {
	// Bytes triggers a checkpoint once this many WAL bytes have been
	// appended since the last one; 0 disables the bytes trigger.
	Bytes int64
	// Interval triggers periodic checkpoints; 0 disables the timer.
	Interval time.Duration
	// Retain is how many snapshots to keep; values < 2 select 2 (the
	// previous snapshot is the fallback when the newest turns out torn, so
	// compaction never outruns it).
	Retain int
	// DeltaMax bounds the consecutive delta snapshots taken before a full
	// snapshot is forced; 0 or negative disables incremental checkpoints
	// entirely (every snapshot is full — the pre-delta behavior). The first
	// checkpoint of a manager's lifetime is always full, so a catalog or
	// codec change (which rebuilds the manager) restarts the chain.
	DeltaMax int
	// NoCOW disables copy-on-write shard capture: the captured shards are
	// copied while the snapshot gate is held, stalling the decision
	// pipeline for the O(data) copy instead of the O(shards) seal — the
	// pre-COW behavior, kept as an ablation knob for
	// BenchmarkCheckpointPause.
	NoCOW bool
}

// Enabled reports whether any automatic trigger is configured. Manual
// checkpoints work regardless.
func (p Policy) Enabled() bool { return p.Bytes > 0 || p.Interval > 0 }

func (p Policy) retain() int {
	if p.Retain < 2 {
		return 2
	}
	return p.Retain
}

// Stats is a snapshot of the manager's counters for the progress monitor.
type Stats struct {
	// Checkpoints counts completed checkpoints; Deltas counts how many of
	// them were delta snapshots; Failures counts attempts that errored
	// (snapshot write or log append).
	Checkpoints uint64
	Deltas      uint64
	Failures    uint64
	// SegmentsCompacted counts WAL segments deleted by compaction.
	SegmentsCompacted uint64
	// LastHorizon is the horizon of the newest completed checkpoint.
	LastHorizon uint64
	// LastDuration is the wall time of the newest completed checkpoint.
	LastDuration time.Duration
	// LastPause is how long the newest checkpoint held the snapshot gate —
	// the decision-pipeline stall. Under copy-on-write capture this is the
	// O(shards) seal flip; with Policy.NoCOW it includes the O(data) copy.
	LastPause time.Duration
	// LastDirtyShards and LastItems describe the newest snapshot's capture:
	// how many shards were dirty and how many copies the snapshot carries.
	LastDirtyShards int
	LastItems       int
}

// Manager drives fuzzy checkpoints of one site's store: snapshot under the
// gate, persist atomically, pin the horizon with a WAL checkpoint record,
// prune old snapshots, compact the log. One Manager per site incarnation;
// it is rebuilt (over the surviving snapshot store and log) on recovery.
type Manager struct {
	store     *storage.Store
	log       wal.Compactable
	snaps     Store
	decisions func() map[model.TxID]bool
	pol       Policy

	// gate serializes fuzzy snapshots against the decision pipeline: every
	// decision force-write + install runs under RLock, the snapshot step
	// under Lock. See the package comment. The pointer may be replaced by
	// ShareGate with an externally owned lock (the site shares one gate
	// across manager incarnations so online reconfiguration can quiesce the
	// pipeline with the same write lock a snapshot uses).
	gate *sync.RWMutex

	// ckptMu serializes whole checkpoints (a manual trigger racing the
	// background loop).
	ckptMu sync.Mutex

	mu        sync.Mutex
	st        Stats
	lastBytes uint64
	lastAt    time.Time
	// lastEpoch is the store-capture epoch of the last successful snapshot:
	// the next delta captures exactly the shards dirtied at or after it
	// (0 — nothing captured yet — makes the first capture full).
	lastEpoch uint64
	// lastFull is the horizon of the chain's full snapshot and
	// deltasSinceFull the chain length so far; a delta's Prev pointer is
	// simply st.LastHorizon (the manager is the only snapshot writer).
	lastFull        uint64
	deltasSinceFull int
}

// NewManager builds a manager. decisions supplies the participant's
// decision table (may be nil when the site has none, e.g. in unit tests).
func NewManager(store *storage.Store, log wal.Compactable, snaps Store, decisions func() map[model.TxID]bool, pol Policy) *Manager {
	return &Manager{
		store:     store,
		log:       log,
		snaps:     snaps,
		decisions: decisions,
		pol:       pol,
		gate:      new(sync.RWMutex),
		lastBytes: log.AppendedBytes(),
		lastAt:    time.Now(),
	}
}

// ShareGate replaces the manager's private snapshot interlock with an
// externally owned one. A site owns one gate for its whole lifetime and
// hands it to every manager incarnation (the manager is rebuilt on recovery
// and reconfiguration) as well as to its decision pipeline; online catalog
// reconfiguration then quiesces decisions by write-locking that same gate
// across the stack rebuild. Call before the manager serves checkpoints.
func (m *Manager) ShareGate(g *sync.RWMutex) { m.gate = g }

// Gate returns the snapshot interlock; the site's decision pipeline holds
// it in read mode around each decision's force-write + install.
func (m *Manager) Gate() *sync.RWMutex { return m.gate }

// Stats returns the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st
}

// Checkpoint takes one checkpoint now (the manual trigger and the
// background loop both land here). A checkpoint with nothing new to capture
// (no records since the last horizon) is a no-op.
//
// The snapshot gate is held only for the copy-on-write shard seal (plus the
// decision-table copy), so the decision pipeline stalls for O(shards), not
// O(data); the captured shards are collected and persisted after the gate
// drops. A chain that has reached Policy.DeltaMax deltas — or a manager
// whose epoch bookkeeping holds nothing yet (first checkpoint, recovery
// rebuild) — writes a full snapshot; otherwise a delta carrying only the
// dirty shards, chained to the previous snapshot via Prev/Base.
func (m *Manager) Checkpoint() error { return m.checkpoint(false) }

// CheckpointFull takes one full (whole-store, chain-restarting) snapshot
// now, regardless of the delta chain's position — the reconfigure-reason
// checkpoint. Online reconfiguration forces one immediately before
// rebuilding the protocol stack so the rebuild restores from a single
// self-contained image at the current horizon and only redoes records
// appended after it; unlike Checkpoint it never takes the idle shortcut,
// because the caller is about to rely on the snapshot it asked for.
func (m *Manager) CheckpointFull() error { return m.checkpoint(true) }

func (m *Manager) checkpoint(forceFull bool) error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	start := time.Now()
	m.mu.Lock()
	lastHorizon := m.st.LastHorizon
	lastEpoch, lastFull, deltas := m.lastEpoch, m.lastFull, m.deltasSinceFull
	m.mu.Unlock()

	full := forceFull || m.pol.DeltaMax <= 0 || lastFull == 0 || deltas >= m.pol.DeltaMax
	since := lastEpoch
	if full {
		since = 0
	}

	m.gate.Lock()
	gateStart := time.Now()
	horizon := m.log.DurableLSN() + 1
	// Nothing but the previous checkpoint's own pin record (at LSN
	// lastHorizon) has been appended: a new snapshot would capture nothing.
	// Refresh the trigger baselines so an idle site stops re-taking the
	// gate every poll tick, but still retry pruning/compaction — a previous
	// checkpoint may have snapshotted successfully and then failed there,
	// and a manual trigger on an idle site must be able to reclaim space.
	if !forceFull && horizon <= lastHorizon+1 {
		m.gate.Unlock()
		m.mu.Lock()
		m.lastBytes = m.log.AppendedBytes()
		m.lastAt = time.Now()
		m.mu.Unlock()
		return m.pruneAndCompact()
	}
	capture := m.store.BeginCapture(since)
	var items map[model.ItemID]storage.Copy
	if m.pol.NoCOW {
		items = capture.Collect() // the O(data) copy under the gate
	}
	var decs map[model.TxID]bool
	if m.decisions != nil {
		decs = m.decisions()
	}
	pause := time.Since(gateStart)
	m.gate.Unlock()
	if items == nil {
		items = capture.Collect()
	}

	snap := &Snapshot{Horizon: horizon, Items: items, Decisions: decisionList(decs)}
	if !full {
		snap.Base, snap.Prev = lastFull, lastHorizon
	}
	// Failures past this point leave lastEpoch untouched, so shards dirty
	// before the failed capture still satisfy dirtyEpoch >= lastEpoch and
	// are re-captured by the retry — nothing is lost to a failed attempt.
	if err := m.snaps.Save(snap); err != nil {
		m.fail()
		return err
	}
	// Pin the horizon in the log itself; recovery trusts the snapshot
	// store, but the record documents the checkpoint in the record stream
	// and is forced before any compaction may rely on it.
	if err := m.log.Append(wal.Record{Type: wal.RecCheckpoint, Horizon: horizon}); err != nil {
		m.fail()
		return fmt.Errorf("checkpoint: pin record: %w", err)
	}
	// The checkpoint itself is durable from here on: count it and advance
	// the trigger baselines even if pruning/compaction below goes wrong
	// (those failures are counted separately so the monitor surfaces them).
	m.mu.Lock()
	m.st.Checkpoints++
	m.st.LastHorizon = horizon
	m.st.LastDuration = time.Since(start)
	m.st.LastPause = pause
	m.st.LastDirtyShards = capture.Dirty
	m.st.LastItems = len(items)
	m.lastEpoch = capture.Epoch
	if full {
		m.lastFull, m.deltasSinceFull = horizon, 0
	} else {
		m.st.Deltas++
		m.deltasSinceFull++
	}
	m.lastBytes = m.log.AppendedBytes()
	m.lastAt = time.Now()
	m.mu.Unlock()

	return m.pruneAndCompact()
}

// PendingDirty reports how many store shards have been dirtied since the
// last successful capture — the size of the next delta, a durability gauge.
func (m *Manager) PendingDirty() int {
	m.mu.Lock()
	since := m.lastEpoch
	m.mu.Unlock()
	return m.store.DirtyShards(since)
}

// pruneAndCompact trims the snapshot store to the retention count and
// compacts the log below the SECOND-newest retained snapshot's horizon: if
// the newest file is later found torn, recovery falls back to the previous
// snapshot — whose redo records must still exist.
func (m *Manager) pruneAndCompact() error {
	if err := m.snaps.Prune(m.pol.retain()); err != nil {
		m.fail()
		return err
	}
	horizons, err := m.snaps.Horizons()
	if err != nil {
		m.fail()
		return err
	}
	var compactH uint64
	if len(horizons) >= 2 {
		compactH = horizons[len(horizons)-2]
	}
	removed, err := m.log.Compact(compactH)
	if err != nil {
		m.fail()
		return err
	}
	m.mu.Lock()
	m.st.SegmentsCompacted += uint64(removed)
	m.mu.Unlock()
	return nil
}

func (m *Manager) fail() {
	m.mu.Lock()
	m.st.Failures++
	m.mu.Unlock()
}

// decisionList flattens the decision table deterministically.
func decisionList(decs map[model.TxID]bool) []Decision {
	if len(decs) == 0 {
		return nil
	}
	out := make([]Decision, 0, len(decs))
	for tx, commit := range decs {
		out = append(out, Decision{Tx: tx, Commit: commit})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tx.Site != out[j].Tx.Site {
			return out[i].Tx.Site < out[j].Tx.Site
		}
		return out[i].Tx.Seq < out[j].Tx.Seq
	})
	return out
}

// Run drives the automatic triggers until ctx is cancelled. It returns
// immediately when no trigger is configured.
func (m *Manager) Run(ctx context.Context) {
	if !m.pol.Enabled() {
		return
	}
	poll := 250 * time.Millisecond
	if m.pol.Interval > 0 && m.pol.Interval < poll {
		poll = m.pol.Interval
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if m.due() {
				m.Checkpoint() //nolint:errcheck // counted in Stats.Failures
			}
		}
	}
}

// due evaluates the byte and interval triggers.
func (m *Manager) due() bool {
	m.mu.Lock()
	lastBytes, lastAt := m.lastBytes, m.lastAt
	m.mu.Unlock()
	if m.pol.Bytes > 0 && m.log.AppendedBytes()-lastBytes >= uint64(m.pol.Bytes) {
		return true
	}
	return m.pol.Interval > 0 && time.Since(lastAt) >= m.pol.Interval
}
