// Package pm is the progress-monitor client — the role PMlet plays in the
// paper: it brings "progress related requests to and results back from both
// the name server and the Rainbow sites" over the wire layer. It fetches
// per-site statistics and execution histories remotely, aggregates them
// into a cluster report, and can verify global serializability of a live
// cluster, all without in-process access to the sites.
package pm

import (
	"context"
	"fmt"

	"repro/internal/history"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/site"
	"repro/internal/wire"
)

// Client issues monitor queries through a wire peer.
type Client struct {
	Peer *wire.Peer
}

// FetchStats retrieves one site's statistics snapshot.
func (c Client) FetchStats(ctx context.Context, id model.SiteID) (monitor.SiteStats, error) {
	resp, err := wire.Call[site.StatsResp](ctx, c.Peer, id, wire.KindGetStats, &wire.PingReq{})
	if err != nil {
		return monitor.SiteStats{}, fmt.Errorf("pm: stats from %s: %w", id, err)
	}
	return resp.Stats, nil
}

// FetchHistory retrieves one site's local execution history.
func (c Client) FetchHistory(ctx context.Context, id model.SiteID) ([]history.Event, error) {
	resp, err := wire.Call[site.HistoryResp](ctx, c.Peer, id, wire.KindGetHistory, &wire.PingReq{})
	if err != nil {
		return nil, fmt.Errorf("pm: history from %s: %w", id, err)
	}
	return resp.Events, nil
}

// ResetStats zeroes one site's statistics window.
func (c Client) ResetStats(ctx context.Context, id model.SiteID) error {
	if err := c.Peer.Call(ctx, id, wire.KindResetStats, &wire.PingReq{}, nil); err != nil {
		return fmt.Errorf("pm: reset %s: %w", id, err)
	}
	return nil
}

// Report aggregates the statistics of the given sites into a cluster
// report. Unreachable sites are skipped and returned in the second value
// (a crashed site cannot answer — its absence is itself a finding).
func (c Client) Report(ctx context.Context, ids []model.SiteID) (monitor.Report, []model.SiteID) {
	var rep monitor.Report
	var down []model.SiteID
	for _, id := range ids {
		st, err := c.FetchStats(ctx, id)
		if err != nil {
			down = append(down, id)
			continue
		}
		rep.Sites = append(rep.Sites, st)
	}
	return rep, down
}

// CheckSerializable fetches every site's history and verifies the merged
// global execution is (multiversion) conflict-serializable for the given
// committed set.
func (c Client) CheckSerializable(ctx context.Context, ids []model.SiteID, committed map[model.TxID]bool) error {
	var events []history.Event
	for _, id := range ids {
		evs, err := c.FetchHistory(ctx, id)
		if err != nil {
			return err
		}
		events = append(events, evs...)
	}
	return history.CheckSerializable(events, committed)
}
