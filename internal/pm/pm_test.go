package pm

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/wire"
	"repro/internal/wlg"
)

func setup(t *testing.T) (*core.Instance, Client) {
	t.Helper()
	inst, err := core.New(core.Options{
		Timeouts: schema.Timeouts{
			Op: time.Second, Vote: time.Second, Ack: 500 * time.Millisecond,
			Lock: 300 * time.Millisecond, OrphanResolve: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := wire.NewPeer(inst.Net, "@pm", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close(); inst.Close() })
	return inst, Client{Peer: peer}
}

func ctx(t *testing.T) context.Context {
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestFetchStatsOverWire(t *testing.T) {
	inst, c := setup(t)
	inst.Submit(ctx(t), "S1", []model.Op{model.Write("x", 1)})
	st, err := c.FetchStats(ctx(t), "S1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Site != "S1" || st.Began != 1 || st.Committed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFetchHistoryAndCheckSerializable(t *testing.T) {
	inst, c := setup(t)
	res := inst.RunWorkload(ctx(t), wlg.Profile{Transactions: 15, MPL: 2, Retries: 3})
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	evs, err := c.FetchHistory(ctx(t), "S1")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Error("no history events over the wire")
	}
	if err := c.CheckSerializable(ctx(t), inst.SiteIDs(), core.CommittedSet(res.Outcomes)); err != nil {
		t.Error(err)
	}
}

func TestResetStatsOverWire(t *testing.T) {
	inst, c := setup(t)
	inst.Submit(ctx(t), "S2", []model.Op{model.Write("y", 1)})
	if err := c.ResetStats(ctx(t), "S2"); err != nil {
		t.Fatal(err)
	}
	st, err := c.FetchStats(ctx(t), "S2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Began != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestReportSkipsCrashedSites(t *testing.T) {
	inst, c := setup(t)
	inst.Submit(ctx(t), "S1", []model.Op{model.Write("x", 1)})
	inst.Injector.Crash("S3")

	shortCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	rep, down := c.Report(shortCtx, inst.SiteIDs())
	if len(rep.Sites) != 2 {
		t.Errorf("live sites = %d, want 2", len(rep.Sites))
	}
	if len(down) != 1 || down[0] != "S3" {
		t.Errorf("down = %v", down)
	}
	if rep.Totals().Began == 0 {
		t.Error("aggregation lost data")
	}
}

func TestFetchStatsUnknownSite(t *testing.T) {
	_, c := setup(t)
	shortCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.FetchStats(shortCtx, "ZZ"); err == nil {
		t.Error("stats from unknown site succeeded")
	}
}
