// Package quorum implements weighted-voting (Gifford) quorum machinery for
// Rainbow's quorum-consensus replication control: vote assignments over an
// item's copies, read/write quorum thresholds, greedy quorum construction,
// intersection validation, and the closed-form availability analytics used
// by experiment E7 (replication configuration panel).
package quorum

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Assignment is a vote assignment for one replicated item: each copy-holding
// site has a positive vote weight, and read/write operations must assemble
// the respective quorum of votes.
//
// Correctness requires ReadQuorum+WriteQuorum > TotalVotes (read/write
// intersection) and 2*WriteQuorum > TotalVotes (write/write intersection).
type Assignment struct {
	Votes       map[model.SiteID]int
	ReadQuorum  int
	WriteQuorum int
}

// Majority builds the default assignment: one vote per copy, read and write
// quorums both a simple majority. This is the classic majority consensus.
func Majority(sites []model.SiteID) Assignment {
	votes := make(map[model.SiteID]int, len(sites))
	for _, s := range sites {
		votes[s] = 1
	}
	maj := len(sites)/2 + 1
	return Assignment{Votes: votes, ReadQuorum: maj, WriteQuorum: maj}
}

// ReadOneWriteAll builds the ROWA-shaped assignment: one vote per copy,
// read quorum 1, write quorum all. (Rainbow's ROWA protocol short-circuits
// this, but the assignment is useful for analytics comparisons.)
func ReadOneWriteAll(sites []model.SiteID) Assignment {
	votes := make(map[model.SiteID]int, len(sites))
	for _, s := range sites {
		votes[s] = 1
	}
	return Assignment{Votes: votes, ReadQuorum: 1, WriteQuorum: len(sites)}
}

// TotalVotes sums the vote weights.
func (a Assignment) TotalVotes() int {
	t := 0
	for _, v := range a.Votes {
		t += v
	}
	return t
}

// Sites returns the copy-holding sites in sorted order.
func (a Assignment) Sites() []model.SiteID {
	out := make([]model.SiteID, 0, len(a.Votes))
	for s := range a.Votes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the weighted-voting correctness conditions.
func (a Assignment) Validate() error {
	if len(a.Votes) == 0 {
		return fmt.Errorf("quorum: no copies")
	}
	total := 0
	for s, v := range a.Votes {
		if v <= 0 {
			return fmt.Errorf("quorum: site %s has non-positive vote %d", s, v)
		}
		total += v
	}
	if a.ReadQuorum <= 0 || a.WriteQuorum <= 0 {
		return fmt.Errorf("quorum: quorums must be positive (r=%d w=%d)", a.ReadQuorum, a.WriteQuorum)
	}
	if a.ReadQuorum > total || a.WriteQuorum > total {
		return fmt.Errorf("quorum: quorum exceeds total votes %d (r=%d w=%d)", total, a.ReadQuorum, a.WriteQuorum)
	}
	if a.ReadQuorum+a.WriteQuorum <= total {
		return fmt.Errorf("quorum: r+w=%d must exceed total votes %d (read/write intersection)", a.ReadQuorum+a.WriteQuorum, total)
	}
	if 2*a.WriteQuorum <= total {
		return fmt.Errorf("quorum: 2w=%d must exceed total votes %d (write/write intersection)", 2*a.WriteQuorum, total)
	}
	return nil
}

// VotesOf sums the votes of a site set.
func (a Assignment) VotesOf(sites []model.SiteID) int {
	t := 0
	seen := make(map[model.SiteID]bool, len(sites))
	for _, s := range sites {
		if seen[s] {
			continue
		}
		seen[s] = true
		t += a.Votes[s]
	}
	return t
}

// IsReadQuorum reports whether the site set carries a read quorum.
func (a Assignment) IsReadQuorum(sites []model.SiteID) bool {
	return a.VotesOf(sites) >= a.ReadQuorum
}

// IsWriteQuorum reports whether the site set carries a write quorum.
func (a Assignment) IsWriteQuorum(sites []model.SiteID) bool {
	return a.VotesOf(sites) >= a.WriteQuorum
}

// Pick greedily selects sites until need votes are gathered, preferring
// sites in the order given (the QC protocol passes the home site first for
// locality, then the rest deterministically). exclude lists sites already
// tried and failed. Returns the chosen set and whether the quorum is
// reachable.
func (a Assignment) Pick(need int, prefer []model.SiteID, exclude map[model.SiteID]bool) ([]model.SiteID, bool) {
	var chosen []model.SiteID
	got := 0
	used := make(map[model.SiteID]bool)
	take := func(s model.SiteID) {
		if used[s] || exclude[s] {
			return
		}
		if v, ok := a.Votes[s]; ok && got < need {
			chosen = append(chosen, s)
			used[s] = true
			got += v
		}
	}
	for _, s := range prefer {
		take(s)
	}
	for _, s := range a.Sites() {
		take(s)
	}
	return chosen, got >= need
}

// ReadAvailability returns the probability that a read quorum of live sites
// exists when every site is independently up with probability p. Computed
// by exact enumeration over the 2^n up/down states (n is small in Rainbow
// configurations).
func (a Assignment) ReadAvailability(p float64) float64 {
	return a.availability(p, a.ReadQuorum)
}

// WriteAvailability is ReadAvailability for the write quorum.
func (a Assignment) WriteAvailability(p float64) float64 {
	return a.availability(p, a.WriteQuorum)
}

func (a Assignment) availability(p float64, need int) float64 {
	sites := a.Sites()
	n := len(sites)
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		votes := 0
		prob := 1.0
		for i, s := range sites {
			if mask&(1<<i) != 0 {
				votes += a.Votes[s]
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		if votes >= need {
			total += prob
		}
	}
	return total
}
