package quorum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func sites(n int) []model.SiteID {
	out := make([]model.SiteID, n)
	for i := range out {
		out[i] = model.SiteID(string(rune('A' + i)))
	}
	return out
}

func TestMajorityValid(t *testing.T) {
	for n := 1; n <= 9; n++ {
		a := Majority(sites(n))
		if err := a.Validate(); err != nil {
			t.Errorf("Majority(%d): %v", n, err)
		}
		if a.TotalVotes() != n {
			t.Errorf("Majority(%d): total votes %d", n, a.TotalVotes())
		}
	}
}

func TestReadOneWriteAllValid(t *testing.T) {
	for n := 1; n <= 9; n++ {
		a := ReadOneWriteAll(sites(n))
		if err := a.Validate(); err != nil {
			t.Errorf("ROWA(%d): %v", n, err)
		}
		if a.ReadQuorum != 1 || a.WriteQuorum != n {
			t.Errorf("ROWA(%d): r=%d w=%d", n, a.ReadQuorum, a.WriteQuorum)
		}
	}
}

func TestValidateRejectsBadAssignments(t *testing.T) {
	ss := sites(3)
	cases := []Assignment{
		{}, // no copies
		{Votes: map[model.SiteID]int{"A": 0}, ReadQuorum: 1, WriteQuorum: 1},  // zero vote
		{Votes: map[model.SiteID]int{"A": -1}, ReadQuorum: 1, WriteQuorum: 1}, // negative vote
		{Votes: Majority(ss).Votes, ReadQuorum: 0, WriteQuorum: 3},            // zero read quorum
		{Votes: Majority(ss).Votes, ReadQuorum: 1, WriteQuorum: 4},            // quorum > total
		{Votes: Majority(ss).Votes, ReadQuorum: 1, WriteQuorum: 2},            // r+w == total
		{Votes: Majority(ss).Votes, ReadQuorum: 3, WriteQuorum: 1},            // 2w <= total
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid assignment accepted: %+v", i, a)
		}
	}
}

func TestWeightedAssignment(t *testing.T) {
	a := Assignment{
		Votes:       map[model.SiteID]int{"A": 3, "B": 1, "C": 1},
		ReadQuorum:  3,
		WriteQuorum: 3,
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsWriteQuorum([]model.SiteID{"A"}) {
		t.Error("A alone carries 3 votes and should be a write quorum")
	}
	if a.IsWriteQuorum([]model.SiteID{"B", "C"}) {
		t.Error("B+C carry 2 votes and are not a write quorum")
	}
}

func TestVotesOfIgnoresDuplicates(t *testing.T) {
	a := Majority(sites(3))
	if got := a.VotesOf([]model.SiteID{"A", "A", "A"}); got != 1 {
		t.Errorf("VotesOf duplicates = %d, want 1", got)
	}
}

func TestPickPrefersGivenOrder(t *testing.T) {
	a := Majority(sites(5))
	chosen, ok := a.Pick(a.ReadQuorum, []model.SiteID{"E", "D"}, nil)
	if !ok {
		t.Fatal("quorum not reachable")
	}
	if len(chosen) != 3 || chosen[0] != "E" || chosen[1] != "D" {
		t.Errorf("chosen = %v", chosen)
	}
}

func TestPickWithExclusions(t *testing.T) {
	a := Majority(sites(3))
	chosen, ok := a.Pick(a.WriteQuorum, nil, map[model.SiteID]bool{"A": true})
	if !ok {
		t.Fatal("quorum should be reachable with 2 of 3 sites")
	}
	for _, s := range chosen {
		if s == "A" {
			t.Error("excluded site chosen")
		}
	}
	if _, ok := a.Pick(a.WriteQuorum, nil, map[model.SiteID]bool{"A": true, "B": true}); ok {
		t.Error("quorum built from a single remaining site of three")
	}
}

func TestPickUnknownPreferredSiteIgnored(t *testing.T) {
	a := Majority(sites(3))
	chosen, ok := a.Pick(a.ReadQuorum, []model.SiteID{"Z"}, nil)
	if !ok || len(chosen) != 2 {
		t.Errorf("chosen = %v ok=%v", chosen, ok)
	}
}

// TestQuorumIntersectionProperty verifies the fundamental quorum property:
// for any valid assignment, every write quorum intersects every read quorum
// and every other write quorum. Checked by exhaustive subset enumeration.
func TestQuorumIntersectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		ss := sites(n)
		votes := make(map[model.SiteID]int, n)
		total := 0
		for _, s := range ss {
			v := 1 + rng.Intn(3)
			votes[s] = v
			total += v
		}
		w := total/2 + 1 + rng.Intn(total-total/2) // (total/2, total]
		if w > total {
			w = total
		}
		r := total - w + 1 + rng.Intn(w) // (total-w, total]
		if r > total {
			r = total
		}
		a := Assignment{Votes: votes, ReadQuorum: r, WriteQuorum: w}
		if err := a.Validate(); err != nil {
			return false
		}
		// Enumerate all subsets; every pair (writeQ, readQ) and
		// (writeQ, writeQ) must share a site.
		var subsets [][]model.SiteID
		for mask := 0; mask < 1<<n; mask++ {
			var sub []model.SiteID
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sub = append(sub, ss[i])
				}
			}
			subsets = append(subsets, sub)
		}
		intersects := func(a, b []model.SiteID) bool {
			set := make(map[model.SiteID]bool, len(a))
			for _, s := range a {
				set[s] = true
			}
			for _, s := range b {
				if set[s] {
					return true
				}
			}
			return false
		}
		for _, wq := range subsets {
			if !a.IsWriteQuorum(wq) {
				continue
			}
			for _, other := range subsets {
				if a.IsReadQuorum(other) && !intersects(wq, other) {
					return false
				}
				if a.IsWriteQuorum(other) && !intersects(wq, other) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAvailabilityBounds(t *testing.T) {
	a := Majority(sites(5))
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		ra, wa := a.ReadAvailability(p), a.WriteAvailability(p)
		if ra < 0 || ra > 1 || wa < 0 || wa > 1 {
			t.Errorf("p=%v: availability out of range: r=%v w=%v", p, ra, wa)
		}
	}
	if a.ReadAvailability(1) != 1 || a.WriteAvailability(1) != 1 {
		t.Error("availability at p=1 should be 1")
	}
	if a.ReadAvailability(0) != 0 {
		t.Error("majority availability at p=0 should be 0")
	}
}

func TestAvailabilityMajorityClosedForm(t *testing.T) {
	// For 3 copies, majority: P = p^3 + 3p^2(1-p).
	a := Majority(sites(3))
	p := 0.9
	want := math.Pow(p, 3) + 3*math.Pow(p, 2)*(1-p)
	if got := a.WriteAvailability(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("WriteAvailability(0.9) = %v, want %v", got, want)
	}
}

func TestAvailabilityROWAShape(t *testing.T) {
	// The paper-era motivation for QC: ROWA write availability collapses as
	// n grows (p^n) while majority-QC write availability grows (for p>0.5).
	p := 0.9
	for _, n := range []int{3, 5, 7} {
		rowa := ReadOneWriteAll(sites(n))
		qc := Majority(sites(n))
		if rowa.WriteAvailability(p) >= qc.WriteAvailability(p) {
			t.Errorf("n=%d: ROWA write availability %v should be below QC %v",
				n, rowa.WriteAvailability(p), qc.WriteAvailability(p))
		}
		// And ROWA read availability beats QC (any single copy serves).
		if rowa.ReadAvailability(p) <= qc.ReadAvailability(p) {
			t.Errorf("n=%d: ROWA read availability should beat QC", n)
		}
	}
}

func TestAvailabilityMonotoneInP(t *testing.T) {
	a := Majority(sites(5))
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		cur := a.WriteAvailability(p)
		if cur+1e-12 < prev {
			t.Fatalf("availability not monotone at p=%v: %v < %v", p, cur, prev)
		}
		prev = cur
	}
}

func TestSitesSorted(t *testing.T) {
	a := Majority([]model.SiteID{"C", "A", "B"})
	s := a.Sites()
	if s[0] != "A" || s[1] != "B" || s[2] != "C" {
		t.Errorf("Sites = %v", s)
	}
}
