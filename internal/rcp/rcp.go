// Package rcp implements Rainbow's replication control protocols (RCPs):
// Read-One-Write-All (ROWA) and weighted-voting Quorum Consensus (QC, the
// paper's default). The RCP runs at a transaction's home site and maps each
// logical operation onto physical copy operations at other sites, which
// pass through those sites' CCPs (paper §2.1).
//
// The RCP layer is where Rainbow classifies replication-level aborts: a
// logical operation that cannot reach enough copies aborts the transaction
// with cause RCP; a copy operation rejected by a remote CCP propagates its
// CC abort unchanged.
package rcp

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/schema"
)

// CopyAccess is the home site's handle for operating on physical copies.
// Implementations route to the local CCP directly or to remote sites over
// the wire layer.
type CopyAccess interface {
	// Local returns the home site's id (preferred for read-one locality).
	Local() model.SiteID
	// ReadCopy reads the copy of item at site through that site's CCP. The
	// returned incarnation is the serving site's incarnation number (0 if
	// the transport predates it); the session records it so the prepare can
	// be fenced against a crash recovery at that site in between.
	ReadCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID) (int64, model.Version, uint64, error)
	// PreWriteCopy pre-writes the copy of item at site through that site's
	// CCP, returning the copy's current version plus the serving site's
	// incarnation number.
	PreWriteCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID, value int64) (model.Version, uint64, error)
	// AddCopy pre-writes a commutative blind add (delta merges into the
	// copy at commit) through the site's CCP; same returns as PreWriteCopy.
	AddCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, uint64, error)
}

// Session accumulates one transaction's replication state at its home site:
// the set of sites touched (the future commit cohort) and the final write
// records each participant must install.
type Session struct {
	Tx model.TxID
	TS model.Timestamp

	mu        sync.Mutex
	touched   map[model.SiteID]bool
	attempted map[model.SiteID]bool
	writes    map[model.SiteID]map[model.ItemID]model.WriteRecord
	// incs records, per site, the incarnation number the site reported on
	// this transaction's FIRST copy operation there. The prepare echoes it
	// so the site can reject exactly when it crash-recovered (or was
	// live-rebuilt) after protecting the operation — the CC state backing
	// the prepare died with the old incarnation.
	incs map[model.SiteID]uint64
}

// NewSession starts a session for one transaction.
func NewSession(tx model.TxID, ts model.Timestamp) *Session {
	return &Session{
		Tx:        tx,
		TS:        ts,
		touched:   make(map[model.SiteID]bool),
		attempted: make(map[model.SiteID]bool),
		writes:    make(map[model.SiteID]map[model.ItemID]model.WriteRecord),
		incs:      make(map[model.SiteID]uint64),
	}
}

// Touch records that site holds CC state for the transaction.
func (s *Session) Touch(site model.SiteID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touched[site] = true
	s.attempted[site] = true
}

// Attempt records that a copy operation was SENT to site, whether or not a
// response arrived. A request that times out at the coordinator may still
// succeed late at the site, leaving CC state there; the home site must
// release such sites at the end of the transaction even though they never
// became participants.
func (s *Session) Attempt(site model.SiteID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempted[site] = true
}

// Strays returns the attempted sites that did not become participants —
// the set the home site must send releases to regardless of outcome.
func (s *Session) Strays() []model.SiteID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []model.SiteID
	for site := range s.attempted {
		if !s.touched[site] {
			out = append(out, site)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SawIncarnation records the incarnation number site reported on a copy
// operation. The first observation wins: if the site restarts mid-
// transaction, later operations would report a newer incarnation, but the
// protection of the EARLIER operations is what the prepare must verify.
func (s *Session) SawIncarnation(site model.SiteID, inc uint64) {
	if inc == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.incs[site]; !ok {
		s.incs[site] = inc
	}
}

// IncarnationFor returns the incarnation recorded for site (0 = none).
func (s *Session) IncarnationFor(site model.SiteID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.incs[site]
}

// WriteSites returns the sites holding write records — the 3PC termination
// electorate (read-only participants are excluded from quorum counting).
func (s *Session) WriteSites() []model.SiteID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]model.SiteID, 0, len(s.writes))
	for site, m := range s.writes {
		if len(m) > 0 {
			out = append(out, site)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RecordWrite records the final write record site must install at commit.
// A later write of the same item by the same transaction replaces the
// earlier record.
func (s *Session) RecordWrite(site model.SiteID, rec model.WriteRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touched[site] = true
	if s.writes[site] == nil {
		s.writes[site] = make(map[model.ItemID]model.WriteRecord)
	}
	s.writes[site][rec.Item] = rec
}

// RecordAdd merges a delta write record for site: repeated adds of the same
// item by one transaction sum their deltas (RecordWrite's last-wins rule
// would lose the earlier ones), keeping the larger install version.
func (s *Session) RecordAdd(site model.SiteID, rec model.WriteRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touched[site] = true
	if s.writes[site] == nil {
		s.writes[site] = make(map[model.ItemID]model.WriteRecord)
	}
	if old, ok := s.writes[site][rec.Item]; ok && old.Delta && rec.Delta {
		rec.Value += old.Value
		if old.Version > rec.Version {
			rec.Version = old.Version
		}
	}
	s.writes[site][rec.Item] = rec
}

// WriteQuorum returns the sites already holding a write record for item —
// the write quorum a previous logical write of this transaction built —
// and that record. A repeated write MUST update exactly this set: building
// a fresh quorum could leave a non-overlapping member of the old one with
// the stale record, and commit would then install two different values
// under one version number on different copies.
func (s *Session) WriteQuorum(item model.ItemID) ([]model.SiteID, model.WriteRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sites []model.SiteID
	var rec model.WriteRecord
	found := false
	for site, m := range s.writes {
		if r, ok := m[item]; ok {
			sites = append(sites, site)
			rec, found = r, true
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites, rec, found
}

// Participants returns every touched site in sorted order — the atomic
// commit cohort (read-only participants included: under strict CC they hold
// read locks that only the commit protocol releases).
func (s *Session) Participants() []model.SiteID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]model.SiteID, 0, len(s.touched))
	for site := range s.touched {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WritesFor returns the write records site must install, sorted by item.
func (s *Session) WritesFor(site model.SiteID) []model.WriteRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.writes[site]
	out := make([]model.WriteRecord, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	return out
}

// HasWrites reports whether any site has pending write records.
func (s *Session) HasWrites() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.writes {
		if len(m) > 0 {
			return true
		}
	}
	return false
}

// Protocol is a replication control protocol.
type Protocol interface {
	// Name returns "rowa" or "qc".
	Name() string
	// Read performs a logical read of the item described by meta.
	Read(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta) (int64, error)
	// Write performs a logical write: pre-writes enough copies and records
	// the final write records (with install versions) in the session.
	Write(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta, value int64) error
	// Add performs a logical blind add: the delta merges into every copy at
	// commit. BOTH protocols pre-add ALL copies: a delta missing from a copy
	// cannot be reconstructed by a version-based quorum read (versions say
	// which copy is newest, not which deltas it absorbed), so add
	// availability follows ROWA's write-all rule even under QC.
	Add(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta, delta int64) error
}

// New constructs a protocol by name.
func New(name string) (Protocol, error) {
	switch name {
	case "qc", "QC", "":
		return QC{}, nil
	case "rowa", "ROWA":
		return ROWA{}, nil
	default:
		return nil, fmt.Errorf("rcp: unknown replication control protocol %q", name)
	}
}

// Names lists the available RCP names.
func Names() []string { return []string{"rowa", "qc"} }

// preferredOrder lists the copy sites for meta with the local site first,
// then the rest sorted — the deterministic preference order both protocols
// use.
func preferredOrder(acc CopyAccess, meta schema.ItemMeta) []model.SiteID {
	sites := meta.Sites()
	local := acc.Local()
	out := make([]model.SiteID, 0, len(sites))
	if _, ok := meta.Votes[local]; ok {
		out = append(out, local)
	}
	for _, s := range sites {
		if s != local {
			out = append(out, s)
		}
	}
	return out
}

// isCC reports whether err is a protocol abort that must stop the
// transaction (as opposed to a copy being unreachable, which the RCP may
// route around).
func isCC(err error) bool {
	c := model.CauseOf(err)
	return c == model.AbortCC || c == model.AbortACP || c == model.AbortInjected
}

// addAll pre-adds delta at EVERY copy of the item concurrently — the shared
// body of ROWA.Add and QC.Add (see Protocol.Add for why QC cannot use a
// quorum here). Any unreachable copy aborts with cause RCP; any CC rejection
// propagates. The recorded install version is max(version)+1 over all
// copies (delta applies ignore it, but it keeps version bookkeeping — and
// quorum reads that follow a committed add — monotonic).
func addAll(ctx context.Context, proto string, acc CopyAccess, sess *Session, meta schema.ItemMeta, delta int64) error {
	sites := preferredOrder(acc, meta)
	type result struct {
		site model.SiteID
		ver  model.Version
		inc  uint64
		err  error
	}
	results := make(chan result, len(sites))
	for _, site := range sites {
		sess.Attempt(site)
		go func(site model.SiteID) {
			ver, inc, err := acc.AddCopy(ctx, site, sess.Tx, sess.TS, meta.Item, delta)
			results <- result{site: site, ver: ver, inc: inc, err: err}
		}(site)
	}

	var maxVer model.Version
	var ccErr, rcpErr error
	for range sites {
		r := <-results
		switch {
		case r.err == nil:
			sess.SawIncarnation(r.site, r.inc)
			sess.Touch(r.site)
			if r.ver > maxVer {
				maxVer = r.ver
			}
		case isCC(r.err):
			sess.Touch(r.site)
			if ccErr == nil {
				ccErr = r.err
			}
		default:
			if rcpErr == nil {
				rcpErr = r.err
			}
		}
	}
	if ccErr != nil {
		return ccErr
	}
	if rcpErr != nil {
		return model.Abortf(model.AbortRCP, "%s: add-all of %s failed: %v", proto, meta.Item, rcpErr)
	}

	rec := model.WriteRecord{Item: meta.Item, Value: delta, Version: maxVer + 1, Delta: true}
	for _, site := range sites {
		sess.RecordAdd(site, rec)
	}
	return nil
}
