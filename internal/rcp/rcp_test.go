package rcp

import (
	"context"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/schema"
)

// fakeAccess is an in-memory CopyAccess: each site holds a copy with a
// value and version; sites can be marked down or CC-rejecting; every copy
// operation is counted (the message-economy assertions in these tests mirror
// experiment E2).
type fakeAccess struct {
	local model.SiteID

	mu     sync.Mutex
	copies map[model.SiteID]struct {
		val int64
		ver model.Version
	}
	down     map[model.SiteID]bool
	ccReject map[model.SiteID]bool
	ops      int
	perSite  map[model.SiteID]int
}

func newFake(local model.SiteID, sites ...model.SiteID) *fakeAccess {
	f := &fakeAccess{
		local: local,
		copies: make(map[model.SiteID]struct {
			val int64
			ver model.Version
		}),
		down:     make(map[model.SiteID]bool),
		ccReject: make(map[model.SiteID]bool),
		perSite:  make(map[model.SiteID]int),
	}
	for _, s := range sites {
		f.copies[s] = struct {
			val int64
			ver model.Version
		}{val: 10, ver: 0}
	}
	return f
}

func (f *fakeAccess) set(site model.SiteID, val int64, ver model.Version) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.copies[site] = struct {
		val int64
		ver model.Version
	}{val, ver}
}

func (f *fakeAccess) Local() model.SiteID { return f.local }

// fakeIncarnation is the incarnation number every fake site reports (the
// session-recording tests assert it round-trips).
const fakeIncarnation = 7

func (f *fakeAccess) ReadCopy(_ context.Context, site model.SiteID, _ model.TxID, _ model.Timestamp, _ model.ItemID) (int64, model.Version, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	f.perSite[site]++
	if f.down[site] {
		return 0, 0, 0, model.Abortf(model.AbortRCP, "site %s unreachable", site)
	}
	if f.ccReject[site] {
		return 0, 0, 0, model.Abortf(model.AbortCC, "rejected at %s", site)
	}
	c := f.copies[site]
	return c.val, c.ver, fakeIncarnation, nil
}

func (f *fakeAccess) AddCopy(ctx context.Context, site model.SiteID, tx model.TxID, ts model.Timestamp, item model.ItemID, delta int64) (model.Version, uint64, error) {
	return f.PreWriteCopy(ctx, site, tx, ts, item, delta)
}

func (f *fakeAccess) PreWriteCopy(_ context.Context, site model.SiteID, _ model.TxID, _ model.Timestamp, _ model.ItemID, _ int64) (model.Version, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	f.perSite[site]++
	if f.down[site] {
		return 0, 0, model.Abortf(model.AbortRCP, "site %s unreachable", site)
	}
	if f.ccReject[site] {
		return 0, 0, model.Abortf(model.AbortCC, "rejected at %s", site)
	}
	return f.copies[site].ver, fakeIncarnation, nil
}

func meta3() schema.ItemMeta {
	return schema.ItemMeta{
		Item:        "x",
		Votes:       map[model.SiteID]int{"S1": 1, "S2": 1, "S3": 1},
		ReadQuorum:  2,
		WriteQuorum: 2,
	}
}

func sess() *Session {
	return NewSession(model.TxID{Site: "S1", Seq: 1}, model.Timestamp{Time: 1, Site: "S1"})
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"rowa", "qc", ""} {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if name == "" && p.Name() != "qc" {
			t.Error("default RCP should be qc")
		}
	}
	if _, err := New("chain"); err == nil {
		t.Error("unknown RCP accepted")
	}
}

// --- ROWA ---

func TestROWAReadUsesOneCopyPreferLocal(t *testing.T) {
	f := newFake("S2", "S1", "S2", "S3")
	s := sess()
	v, err := (ROWA{}).Read(context.Background(), f, s, meta3())
	if err != nil || v != 10 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if f.ops != 1 || f.perSite["S2"] != 1 {
		t.Errorf("ROWA read used %d ops (%v), want 1 local", f.ops, f.perSite)
	}
	p := s.Participants()
	if len(p) != 1 || p[0] != "S2" {
		t.Errorf("participants = %v", p)
	}
}

func TestROWAReadFailsOverToNextCopy(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S1"] = true
	v, err := (ROWA{}).Read(context.Background(), f, sess(), meta3())
	if err != nil || v != 10 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if f.ops != 2 {
		t.Errorf("ops = %d, want 2 (failover)", f.ops)
	}
}

func TestROWAReadAllDown(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	for s := range f.copies {
		f.down[s] = true
	}
	_, err := (ROWA{}).Read(context.Background(), f, sess(), meta3())
	if model.CauseOf(err) != model.AbortRCP {
		t.Fatalf("want RCP abort, got %v", err)
	}
}

func TestROWAReadCCRejectionPropagates(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.ccReject["S1"] = true
	_, err := (ROWA{}).Read(context.Background(), f, sess(), meta3())
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("CC rejection must not be routed around: %v", err)
	}
	if f.ops != 1 {
		t.Errorf("ops = %d: ROWA retried after CC rejection", f.ops)
	}
}

func TestROWAWriteTouchesAllCopies(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.set("S2", 5, 7) // stale copies with differing versions
	s := sess()
	if err := (ROWA{}).Write(context.Background(), f, s, meta3(), 42); err != nil {
		t.Fatal(err)
	}
	if f.ops != 3 {
		t.Errorf("ops = %d, want 3 (write-all)", f.ops)
	}
	for _, site := range []model.SiteID{"S1", "S2", "S3"} {
		w := s.WritesFor(site)
		if len(w) != 1 || w[0].Value != 42 || w[0].Version != 8 {
			t.Errorf("%s writes = %v (want version max+1 = 8)", site, w)
		}
	}
}

func TestROWAWriteFailsIfAnyCopyDown(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S3"] = true
	err := (ROWA{}).Write(context.Background(), f, sess(), meta3(), 42)
	if model.CauseOf(err) != model.AbortRCP {
		t.Fatalf("ROWA write with a down copy must RCP-abort: %v", err)
	}
}

func TestROWAWriteCCWins(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S3"] = true
	f.ccReject["S2"] = true
	err := (ROWA{}).Write(context.Background(), f, sess(), meta3(), 1)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("CC rejection should take precedence: %v", err)
	}
}

// --- QC ---

func TestQCReadUsesQuorumMessages(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	s := sess()
	v, err := (QC{}).Read(context.Background(), f, s, meta3())
	if err != nil || v != 10 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if f.ops != 2 {
		t.Errorf("ops = %d, want read-quorum size 2", f.ops)
	}
	if len(s.Participants()) != 2 {
		t.Errorf("participants = %v", s.Participants())
	}
}

func TestQCReadReturnsMaxVersionValue(t *testing.T) {
	f := newFake("S3", "S1", "S2", "S3")
	f.set("S3", 10, 0) // local copy is stale
	f.set("S1", 99, 5)
	f.set("S2", 99, 5)
	// Local-first preference picks S3 plus one other; the max-version value
	// must win regardless of which copies answer.
	v, err := (QC{}).Read(context.Background(), f, sess(), meta3())
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Errorf("read = %d, want max-version value 99", v)
	}
}

func TestQCReadRoutesAroundFailure(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S2"] = true
	v, err := (QC{}).Read(context.Background(), f, sess(), meta3())
	if err != nil || v != 10 {
		t.Fatalf("read = %d, %v", v, err)
	}
	// 2 first round (S1,S2) + 1 replacement (S3).
	if f.ops != 3 {
		t.Errorf("ops = %d, want 3", f.ops)
	}
}

func TestQCReadQuorumUnreachable(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S2"] = true
	f.down["S3"] = true
	_, err := (QC{}).Read(context.Background(), f, sess(), meta3())
	if model.CauseOf(err) != model.AbortRCP {
		t.Fatalf("want RCP abort, got %v", err)
	}
}

func TestQCReadSingleSiteMinorityFails(t *testing.T) {
	// Read quorum 2 with only one live site: must abort even though the
	// live site keeps answering.
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S2"] = true
	f.down["S3"] = true
	_, err := (QC{}).Read(context.Background(), f, sess(), meta3())
	if err == nil {
		t.Fatal("minority read quorum built")
	}
}

func TestQCWriteInstallsMaxPlusOneAtQuorum(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.set("S2", 5, 7)
	s := sess()
	if err := (QC{}).Write(context.Background(), f, s, meta3(), 42); err != nil {
		t.Fatal(err)
	}
	if f.ops != 2 {
		t.Errorf("ops = %d, want write-quorum size 2", f.ops)
	}
	// Exactly the quorum members carry write records, version = 7+1.
	recs := 0
	for _, site := range []model.SiteID{"S1", "S2", "S3"} {
		for _, w := range s.WritesFor(site) {
			recs++
			if w.Version != 8 || w.Value != 42 {
				t.Errorf("%s: record %+v, want v8", site, w)
			}
		}
	}
	if recs != 2 {
		t.Errorf("write records at %d sites, want 2", recs)
	}
}

func TestQCWriteCCRejectionStops(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.ccReject["S2"] = true
	err := (QC{}).Write(context.Background(), f, sess(), meta3(), 1)
	if model.CauseOf(err) != model.AbortCC {
		t.Fatalf("want CC abort, got %v", err)
	}
}

func TestQCWeightedVotes(t *testing.T) {
	// S1 carries 3 votes: alone it is a write quorum.
	meta := schema.ItemMeta{
		Item:        "x",
		Votes:       map[model.SiteID]int{"S1": 3, "S2": 1, "S3": 1},
		ReadQuorum:  3,
		WriteQuorum: 3,
	}
	f := newFake("S1", "S1", "S2", "S3")
	s := sess()
	if err := (QC{}).Write(context.Background(), f, s, meta, 9); err != nil {
		t.Fatal(err)
	}
	if f.ops != 1 {
		t.Errorf("ops = %d, want 1 (weighted quorum met by local site)", f.ops)
	}
	if len(s.WritesFor("S1")) != 1 || len(s.WritesFor("S2")) != 0 {
		t.Error("write records misplaced")
	}
}

func TestQCWriteMinorityPartitionAborts(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S2"] = true
	f.down["S3"] = true
	err := (QC{}).Write(context.Background(), f, sess(), meta3(), 1)
	if model.CauseOf(err) != model.AbortRCP {
		t.Fatalf("minority write must RCP-abort: %v", err)
	}
}

// --- Session ---

func TestSessionParticipantsSortedAndDeduped(t *testing.T) {
	s := sess()
	s.Touch("S3")
	s.Touch("S1")
	s.Touch("S3")
	s.RecordWrite("S2", model.WriteRecord{Item: "x", Value: 1, Version: 1})
	p := s.Participants()
	if len(p) != 3 || p[0] != "S1" || p[1] != "S2" || p[2] != "S3" {
		t.Errorf("participants = %v", p)
	}
}

func TestSessionLaterWriteReplacesEarlier(t *testing.T) {
	s := sess()
	s.RecordWrite("S1", model.WriteRecord{Item: "x", Value: 1, Version: 1})
	s.RecordWrite("S1", model.WriteRecord{Item: "x", Value: 2, Version: 2})
	s.RecordWrite("S1", model.WriteRecord{Item: "y", Value: 3, Version: 1})
	w := s.WritesFor("S1")
	if len(w) != 2 {
		t.Fatalf("writes = %v", w)
	}
	if w[0].Item != "x" || w[0].Value != 2 || w[1].Item != "y" {
		t.Errorf("writes = %v", w)
	}
}

func TestSessionHasWrites(t *testing.T) {
	s := sess()
	if s.HasWrites() {
		t.Error("fresh session has writes")
	}
	s.Touch("S1")
	if s.HasWrites() {
		t.Error("touch should not create writes")
	}
	s.RecordWrite("S1", model.WriteRecord{Item: "x"})
	if !s.HasWrites() {
		t.Error("HasWrites false after RecordWrite")
	}
}

func TestQCRewriteSticksToOriginalQuorum(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S3"] = true
	sess := NewSession(model.TxID{Site: "S1", Seq: 1}, model.Timestamp{Time: 1, Site: "S1"})
	meta := meta3()

	// First write lands on {S1, S2} (S3 down).
	if err := (QC{}).Write(context.Background(), f, sess, meta, 100); err != nil {
		t.Fatal(err)
	}
	sites, rec, ok := sess.WriteQuorum("x")
	if !ok || len(sites) != 2 || rec.Value != 100 {
		t.Fatalf("first write quorum = %v rec=%+v", sites, rec)
	}

	// Second write of the same item: re-pre-writes exactly the original
	// quorum with the new value, keeping the install version — never a
	// fresh quorum that could strand a stale record on an old member.
	f.down["S3"] = false
	if err := (QC{}).Write(context.Background(), f, sess, meta, 200); err != nil {
		t.Fatal(err)
	}
	sites2, rec2, _ := sess.WriteQuorum("x")
	if len(sites2) != 2 || sites2[0] != sites[0] || sites2[1] != sites[1] {
		t.Fatalf("rewrite quorum changed: %v -> %v", sites, sites2)
	}
	if rec2.Value != 200 || rec2.Version != rec.Version {
		t.Fatalf("rewrite record = %+v, want value 200 at version %d", rec2, rec.Version)
	}
	for _, site := range []model.SiteID{"S1", "S2", "S3"} {
		w := sess.WritesFor(site)
		holds := len(w) == 1 && w[0].Value == 200
		inQuorum := site == sites[0] || site == sites[1]
		if holds != inQuorum {
			t.Errorf("site %s: writes=%v, in original quorum=%v", site, w, inQuorum)
		}
	}
}

func TestQCRewriteAbortsIfOriginalQuorumMemberDown(t *testing.T) {
	f := newFake("S1", "S1", "S2", "S3")
	f.down["S3"] = true
	sess := NewSession(model.TxID{Site: "S1", Seq: 2}, model.Timestamp{Time: 2, Site: "S1"})
	meta := meta3()
	if err := (QC{}).Write(context.Background(), f, sess, meta, 100); err != nil {
		t.Fatal(err)
	}
	// The original quorum loses a member; a fresh {S2,S3} quorum would be
	// available, but diverting to it would strand S1's stale record — the
	// rewrite must abort instead.
	f.down["S3"] = false
	f.down["S1"] = true
	if err := (QC{}).Write(context.Background(), f, sess, meta, 200); err == nil {
		t.Fatal("rewrite diverted to a fresh quorum instead of aborting")
	}
}
