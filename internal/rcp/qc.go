package rcp

import (
	"context"
	"sync"

	"repro/internal/model"
	"repro/internal/schema"
)

// QC is Gifford-style weighted-voting quorum consensus, Rainbow's default
// RCP (paper §2.1: "QC starts by building a quorum (read or write) for the
// first operation of the transaction").
//
// A logical read assembles a read quorum of copies and returns the value
// carried by the highest version number in the quorum; a logical write
// pre-writes a write quorum and installs max(version)+1 at its members.
// Copies that fail to respond are replaced by other vote-holders; the
// operation aborts with cause RCP only when the remaining copies cannot
// carry a quorum.
type QC struct{}

// Name implements Protocol.
func (QC) Name() string { return "qc" }

// Read implements Protocol.
func (QC) Read(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta) (int64, error) {
	var (
		mu      sync.Mutex
		bestVal int64
		bestVer model.Version
		first   = true
	)
	err := buildQuorum(ctx, acc, sess, meta, meta.ReadQuorum, func(ctx context.Context, site model.SiteID) error {
		v, ver, inc, err := acc.ReadCopy(ctx, site, sess.Tx, sess.TS, meta.Item)
		if err != nil {
			return err
		}
		sess.SawIncarnation(site, inc)
		mu.Lock()
		if first || ver > bestVer {
			bestVal, bestVer, first = v, ver, false
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return bestVal, nil
}

// Write implements Protocol.
func (QC) Write(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta, value int64) error {
	// A repeated write of an item this transaction already wrote is pinned
	// to the original write quorum: every member re-pre-writes (their
	// X-locks/intents are already ours, so this cannot block on strangers)
	// and the recorded value is replaced in place, keeping the install
	// version. Picking a fresh quorum here would be a correctness bug: a
	// member of the old quorum outside the new one would keep the stale
	// record, and commit would install two different values under the same
	// version number on different copies.
	if sites, prev, ok := sess.WriteQuorum(meta.Item); ok {
		for _, site := range sites {
			_, inc, err := acc.PreWriteCopy(ctx, site, sess.Tx, sess.TS, meta.Item, value)
			if err != nil {
				return err
			}
			sess.SawIncarnation(site, inc)
		}
		rec := model.WriteRecord{Item: meta.Item, Value: value, Version: prev.Version}
		for _, site := range sites {
			sess.RecordWrite(site, rec)
		}
		return nil
	}
	var (
		mu     sync.Mutex
		maxVer model.Version
		quorum []model.SiteID
	)
	err := buildQuorum(ctx, acc, sess, meta, meta.WriteQuorum, func(ctx context.Context, site model.SiteID) error {
		ver, inc, err := acc.PreWriteCopy(ctx, site, sess.Tx, sess.TS, meta.Item, value)
		if err != nil {
			return err
		}
		sess.SawIncarnation(site, inc)
		mu.Lock()
		if ver > maxVer {
			maxVer = ver
		}
		quorum = append(quorum, site)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	rec := model.WriteRecord{Item: meta.Item, Value: value, Version: maxVer + 1}
	for _, site := range quorum {
		sess.RecordWrite(site, rec)
	}
	return nil
}

// Add implements Protocol: blind adds pre-write ALL copies, not a write
// quorum — a quorum read resolves by version number and cannot reconstruct
// a delta a non-member copy missed (see Protocol.Add).
func (QC) Add(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta, delta int64) error {
	return addAll(ctx, "qc", acc, sess, meta, delta)
}

// buildQuorum gathers `need` votes for one operation. It first picks the
// minimal preferred vote set (assuming all sites up — this is what keeps QC
// message counts near the quorum size, the property experiment E2
// measures), issues the copy operation to the set concurrently, and
// replaces failed members with the remaining vote-holders until the quorum
// is complete or provably unreachable.
//
// The op callback is invoked concurrently across the sites of one round;
// callbacks guard their own shared state.
func buildQuorum(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta,
	need int, op func(ctx context.Context, site model.SiteID) error) error {

	assignment := meta.Assignment()
	prefer := preferredOrder(acc, meta)
	tried := make(map[model.SiteID]bool)
	gotVotes := 0

	for gotVotes < need {
		// Select sites to cover the remaining votes, excluding failures and
		// already-counted members.
		round, ok := assignment.Pick(need-gotVotes, prefer, tried)
		if !ok || len(round) == 0 {
			return model.Abortf(model.AbortRCP,
				"qc: quorum of %d votes unreachable for %s (%d gathered)", need, meta.Item, gotVotes)
		}

		type result struct {
			site model.SiteID
			err  error
		}
		results := make(chan result, len(round))
		for _, site := range round {
			tried[site] = true
			sess.Attempt(site)
			go func(site model.SiteID) {
				results <- result{site: site, err: op(ctx, site)}
			}(site)
		}
		collected := make([]result, 0, len(round))
		for range round {
			collected = append(collected, <-results)
		}
		for _, r := range collected {
			switch {
			case r.err == nil:
				sess.Touch(r.site)
				gotVotes += assignment.Votes[r.site]
			case isCC(r.err):
				// The remote CCP rejected the operation: the transaction is
				// doomed; that site holds CC state to release.
				sess.Touch(r.site)
				return r.err
			default:
				// Unreachable copy: leave it excluded and re-pick.
			}
		}
	}
	return nil
}
