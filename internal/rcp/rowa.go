package rcp

import (
	"context"

	"repro/internal/model"
	"repro/internal/schema"
)

// ROWA is Read-One-Write-All: a logical read touches exactly one copy
// (preferring the local one) and a logical write must pre-write every copy.
// ROWA minimizes message traffic for read-heavy workloads but its write
// availability collapses as soon as any copy site is down — the contrast
// experiments E2/E5/E7 measure against QC.
type ROWA struct{}

// Name implements Protocol.
func (ROWA) Name() string { return "rowa" }

// Read implements Protocol: try copies in preference order until one
// responds. A CC rejection aborts the transaction immediately (the remote
// scheduler has doomed it); unreachable copies are skipped.
func (ROWA) Read(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta) (int64, error) {
	var lastErr error
	for _, site := range preferredOrder(acc, meta) {
		sess.Attempt(site)
		v, _, inc, err := acc.ReadCopy(ctx, site, sess.Tx, sess.TS, meta.Item)
		if err == nil {
			sess.SawIncarnation(site, inc)
			sess.Touch(site)
			return v, nil
		}
		if isCC(err) {
			sess.Touch(site)
			return 0, err
		}
		lastErr = err
	}
	if lastErr == nil {
		return 0, model.Abortf(model.AbortRCP, "rowa: item %s has no copies", meta.Item)
	}
	return 0, model.Abortf(model.AbortRCP, "rowa: no copy of %s reachable: %v", meta.Item, lastErr)
}

// Write implements Protocol: pre-write ALL copies concurrently. Any
// unreachable copy aborts with cause RCP (the ROWA availability weakness);
// any CC rejection propagates. The install version is max(version)+1 over
// all copies.
func (ROWA) Write(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta, value int64) error {
	sites := preferredOrder(acc, meta)
	type result struct {
		site model.SiteID
		ver  model.Version
		inc  uint64
		err  error
	}
	results := make(chan result, len(sites))
	for _, site := range sites {
		sess.Attempt(site)
		go func(site model.SiteID) {
			ver, inc, err := acc.PreWriteCopy(ctx, site, sess.Tx, sess.TS, meta.Item, value)
			results <- result{site: site, ver: ver, inc: inc, err: err}
		}(site)
	}

	var maxVer model.Version
	var ccErr, rcpErr error
	for range sites {
		r := <-results
		switch {
		case r.err == nil:
			sess.SawIncarnation(r.site, r.inc)
			sess.Touch(r.site)
			if r.ver > maxVer {
				maxVer = r.ver
			}
		case isCC(r.err):
			sess.Touch(r.site)
			if ccErr == nil {
				ccErr = r.err
			}
		default:
			if rcpErr == nil {
				rcpErr = r.err
			}
		}
	}
	if ccErr != nil {
		return ccErr
	}
	if rcpErr != nil {
		return model.Abortf(model.AbortRCP, "rowa: write-all of %s failed: %v", meta.Item, rcpErr)
	}

	rec := model.WriteRecord{Item: meta.Item, Value: value, Version: maxVer + 1}
	for _, site := range sites {
		sess.RecordWrite(site, rec)
	}
	return nil
}

// Add implements Protocol: blind adds pre-write all copies, exactly like
// ROWA writes.
func (ROWA) Add(ctx context.Context, acc CopyAccess, sess *Session, meta schema.ItemMeta, delta int64) error {
	return addAll(ctx, "rowa", acc, sess, meta, delta)
}
