// Package trace implements Rainbow's lightweight per-transaction tracing:
// sampled end-to-end trace contexts whose spans mark every stage boundary a
// transaction crosses — pipeline queue wait, batched CC admission, lock
// waits, WAL forces, ACP rounds, transport send queues — across every site
// it touches.
//
// The design is Dapper-style: the home site samples a transaction at Begin
// (counter-based, every Nth), allocates a TraceID and an Active span
// collector, and the ID rides outbound wire envelopes (Envelope.Trace).
// Remote sites that see a non-zero ID record their own *fragment* — a Trace
// with the same ID, their own SiteID, and the spans of the work they did —
// into their local bounded ring. Collating the rings of all sites by ID
// reassembles the distributed picture; nothing is shipped eagerly, so
// tracing adds no messages.
//
// Cost model: an unsampled transaction pays one atomic add at Begin and
// carries a nil *Active — every span helper is nil-safe and returns before
// touching the clock, so the hot path stays within noise of untraced.
// Sampled work pays two clock reads per span plus one ring insert at
// Finish. Independent of sampling, the Tracer also aggregates always-on
// per-stage latency histograms (fed by batch/flush-grained observers whose
// cost is amortized over many operations), which the monitor exports.
package trace

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/monitor"
)

// ID identifies one sampled transaction across every site it touches.
// Zero means "not sampled"; it is the wire default and costs nothing.
type ID uint64

// Stage names one instrumented stage boundary.
type Stage uint8

// Stages, in rough hot-path order.
const (
	// StageExec is the whole transaction, begin to outcome (home site).
	StageExec Stage = iota
	// StageOp is one RCP read/write operation round trip (home site).
	StageOp
	// StageQueue is the pipeline shard-queue wait: transport decode to
	// sequencer pickup.
	StageQueue
	// StageBatch is one pipeline batch drain (admission + replies).
	StageBatch
	// StageAdmit is a CC admission (TryRead/TryPreWrite or the sync path).
	StageAdmit
	// StageSpill is a blocking-path CC admission after the sequencer's
	// non-blocking admit answered would-block.
	StageSpill
	// StageLockWait is time actually parked on a lock queue or a TSO/MVTSO
	// intent gate.
	StageLockWait
	// StageWALAppend is a caller-visible durable WAL append (includes the
	// group-commit wait).
	StageWALAppend
	// StageWALFsync is one WAL force-write cycle (flush + fsync).
	StageWALFsync
	// StagePrepare is the ACP vote round (coordinator side).
	StagePrepare
	// StageDecide is the ACP decision round: decision force + broadcast.
	StageDecide
	// StageNetQueue is an envelope's transport send-queue wait, enqueue to
	// flushed.
	StageNetQueue
	// StageNetFlush is one transport flush cycle (frame encode + write).
	StageNetFlush

	numStages
)

// NumStages is the number of defined stages.
const NumStages = int(numStages)

var stageNames = [numStages]string{
	StageExec:      "exec",
	StageOp:        "op",
	StageQueue:     "queue",
	StageBatch:     "batch",
	StageAdmit:     "admit",
	StageSpill:     "spill",
	StageLockWait:  "lock_wait",
	StageWALAppend: "wal_append",
	StageWALFsync:  "wal_fsync",
	StagePrepare:   "prepare",
	StageDecide:    "decide",
	StageNetQueue:  "net_queue",
	StageNetFlush:  "net_flush",
}

// String names the stage (the monitor's histogram key and the JSON form).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Stages lists every stage name in declaration order (metrics rendering).
func Stages() []string {
	out := make([]string, numStages)
	for i := range out {
		out[i] = Stage(i).String()
	}
	return out
}

// Span is one recorded stage interval inside a trace fragment.
type Span struct {
	Stage Stage `json:"-"`
	// Name is Stage's string form, for the JSON export.
	Name string `json:"stage"`
	// Note carries stage-specific detail (an item, a peer site, a message
	// kind); may be empty.
	Note string `json:"note,omitempty"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// Dur is the span's length.
	Dur time.Duration `json:"dur_ns"`
}

// Trace is one completed fragment: the spans one site recorded for one
// sampled transaction. The home site's fragment has Root=true and a
// StageExec span covering the whole transaction; every other fragment
// covers a single remote request.
type Trace struct {
	ID    ID           `json:"id"`
	Tx    model.TxID   `json:"tx"`
	Site  model.SiteID `json:"site"`
	Root  bool         `json:"root,omitempty"`
	Start time.Time    `json:"start"`
	End   time.Time    `json:"end"`
	Spans []Span       `json:"spans"`
}

// Duration is the fragment's end-to-end length.
func (t Trace) Duration() time.Duration { return t.End.Sub(t.Start) }

// Policy configures sampling and retention. The zero value disables
// sampling entirely (always-on histograms still aggregate).
type Policy struct {
	// SampleRate is the fraction of transactions sampled at Begin, applied
	// as every-Nth with N = round(1/rate). <= 0 disables; >= 1 samples all.
	SampleRate float64
	// Ring bounds the completed-fragment ring; 0 selects DefaultRing.
	Ring int
	// SlowThreshold, when > 0, marks root traces slower than it and hands
	// them to the slow-trace sink (a log dump by default).
	SlowThreshold time.Duration
}

// DefaultRing is the default completed-fragment ring capacity.
const DefaultRing = 256

// interval converts SampleRate to the every-Nth counter interval
// (0 = never sample).
func (p Policy) interval() uint64 {
	if p.SampleRate <= 0 {
		return 0
	}
	if p.SampleRate >= 1 {
		return 1
	}
	return uint64(1/p.SampleRate + 0.5)
}

// Stats snapshots the tracer's counters for the monitor.
type Stats struct {
	// Sampled counts Begin decisions that produced an Active context.
	Sampled uint64
	// Fragments counts completed fragments pushed into the ring.
	Fragments uint64
	// Evicted counts ring overwrites (fragments lost to bounded retention).
	Evicted uint64
	// Slow counts root traces over the slow threshold.
	Slow uint64
}

// Tracer is one site's trace state: the sampling counter, the completed
// fragment ring, and the always-on per-stage histograms. All methods are
// safe for concurrent use; a nil *Tracer is a valid no-op.
type Tracer struct {
	site model.SiteID

	// policy is swapped atomically by live reconfiguration (SetPolicy);
	// interval is denormalized for the Begin fast path.
	policy   atomic.Pointer[Policy]
	interval atomic.Uint64

	seq     atomic.Uint64 // sampling counter
	idSeq   atomic.Uint64 // trace-ID counter (low bits)
	idBase  uint64        // per-site high bits, fnv of the site ID
	sampled atomic.Uint64
	slow    atomic.Uint64

	// onSlow, when set, receives root traces over the slow threshold.
	onSlow atomic.Pointer[func(Trace)]

	mu        sync.Mutex
	ring      []Trace // fixed-capacity circular buffer
	next      int
	fragments uint64
	evicted   uint64
	stages    [numStages]monitor.Histogram

	// actives indexes in-flight span collectors by trace ID so layers that
	// see only a wire-level ID (the transport's send queue) can attach
	// spans without a context in hand. First collector per ID wins; Finish
	// removes only its own entry.
	activeMu sync.Mutex
	actives  map[ID]*Active
}

// New builds a tracer for site under policy.
func New(site model.SiteID, policy Policy) *Tracer {
	t := &Tracer{site: site, actives: make(map[ID]*Active)}
	h := fnv.New64a()
	h.Write([]byte(site))
	// Keep the low 24 bits for the counter's visible portion and spread the
	// site hash over the top 40, so IDs minted by different sites for their
	// own transactions cannot collide in practice.
	t.idBase = h.Sum64() << 24
	t.SetPolicy(policy)
	return t
}

// SetPolicy swaps the sampling policy in place (live reconfiguration: no
// rebuild, in-flight traces keep their sampled state). The ring is resized
// lazily — existing fragments are retained up to the new bound.
func (t *Tracer) SetPolicy(p Policy) {
	if t == nil {
		return
	}
	if p.Ring <= 0 {
		p.Ring = DefaultRing
	}
	t.mu.Lock()
	// Re-rotate to a dense, chronologically ordered prefix so the ring
	// invariant (append while under capacity, overwrite at next when full)
	// holds across a capacity change in either direction.
	ordered := t.snapshotLocked()
	t.policy.Store(&p)
	t.interval.Store(p.interval())
	if len(ordered) > p.Ring {
		ordered = ordered[len(ordered)-p.Ring:] // keep the newest
	}
	t.ring = append([]Trace(nil), ordered...)
	t.next = 0
	t.mu.Unlock()
}

// Policy returns the active policy.
func (t *Tracer) Policy() Policy {
	if t == nil {
		return Policy{}
	}
	return *t.policy.Load()
}

// OnSlow installs the slow-trace sink (nil clears it).
func (t *Tracer) OnSlow(f func(Trace)) {
	if t == nil {
		return
	}
	if f == nil {
		t.onSlow.Store(nil)
		return
	}
	t.onSlow.Store(&f)
}

// Begin makes the sampling decision for a new home-site transaction,
// returning a root Active context or nil (the common case). The unsampled
// path is one atomic add and a modulo.
func (t *Tracer) Begin(tx model.TxID) *Active {
	if t == nil {
		return nil
	}
	n := t.interval.Load()
	if n == 0 || t.seq.Add(1)%n != 0 {
		return nil
	}
	t.sampled.Add(1)
	id := ID(t.idBase | (t.idSeq.Add(1) & (1<<24 - 1)))
	a := &Active{tr: t, id: id, tx: tx, root: true, start: time.Now()}
	t.register(a)
	return a
}

// Join opens a fragment for remote work arriving with a propagated trace
// ID. Returns nil when id is zero, so callers can pass the wire field
// through unconditionally.
func (t *Tracer) Join(id ID, tx model.TxID) *Active {
	if t == nil || id == 0 {
		return nil
	}
	a := &Active{tr: t, id: id, tx: tx, start: time.Now()}
	t.register(a)
	return a
}

// register indexes a new collector; the first one per ID wins (a site may
// serve several requests of one trace concurrently).
func (t *Tracer) register(a *Active) {
	t.activeMu.Lock()
	if _, busy := t.actives[a.id]; !busy {
		t.actives[a.id] = a
	}
	t.activeMu.Unlock()
}

// Lookup returns the in-flight collector registered for id, or nil.
// Nil-safe on both tracer and result.
func (t *Tracer) Lookup(id ID) *Active {
	if t == nil || id == 0 {
		return nil
	}
	t.activeMu.Lock()
	a := t.actives[id]
	t.activeMu.Unlock()
	return a
}

// Observe feeds one latency sample into a stage's always-on histogram.
// Nil-safe; called at batch/flush granularity so the mutex stays cold.
func (t *Tracer) Observe(stage Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages[stage].Observe(int64(d))
	t.mu.Unlock()
}

// StageHistograms snapshots the per-stage histograms, keyed by stage name;
// empty stages are omitted.
func (t *Tracer) StageHistograms() map[string]monitor.Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]monitor.Histogram)
	for i := range t.stages {
		if t.stages[i].Count > 0 {
			out[Stage(i).String()] = t.stages[i]
		}
	}
	return out
}

// Stats snapshots the tracer counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	frags, ev := t.fragments, t.evicted
	t.mu.Unlock()
	return Stats{
		Sampled:   t.sampled.Load(),
		Fragments: frags,
		Evicted:   ev,
		Slow:      t.slow.Load(),
	}
}

// ResetStages zeroes the per-stage histograms (the monitor's window reset).
// The fragment ring is retention, not a counter, and is left alone.
func (t *Tracer) ResetStages() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.stages {
		t.stages[i] = monitor.Histogram{}
	}
	t.mu.Unlock()
}

// Snapshot returns the retained fragments, oldest first.
func (t *Tracer) Snapshot() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// snapshotLocked rotates the ring into chronological order (next is the
// oldest slot when the ring is full, 0 otherwise). Caller holds mu.
func (t *Tracer) snapshotLocked() []Trace {
	out := make([]Trace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// TracesFor returns the retained fragments recorded for the given
// transactions (the soak harness's violation dump).
func (t *Tracer) TracesFor(txs map[model.TxID]bool) []Trace {
	var out []Trace
	for _, tr := range t.Snapshot() {
		if txs[tr.Tx] {
			out = append(out, tr)
		}
	}
	return out
}

// push retires a completed fragment into the ring and folds its spans into
// the stage histograms.
func (t *Tracer) push(tr Trace) {
	t.mu.Lock()
	for _, sp := range tr.Spans {
		t.stages[sp.Stage].Observe(int64(sp.Dur))
	}
	t.fragments++
	if limit := t.Policy().Ring; len(t.ring) < limit {
		t.ring = append(t.ring, tr)
	} else {
		if t.next >= len(t.ring) {
			t.next = 0
		}
		t.ring[t.next] = tr
		t.next = (t.next + 1) % len(t.ring)
		t.evicted++
	}
	t.mu.Unlock()

	p := t.policy.Load()
	if tr.Root && p.SlowThreshold > 0 && tr.Duration() > p.SlowThreshold {
		t.slow.Add(1)
		if f := t.onSlow.Load(); f != nil {
			(*f)(tr)
		}
	}
}

// Active is the span collector for one in-flight sampled transaction (or
// one remote fragment of it). A nil *Active is the unsampled case: every
// method returns immediately, before reading the clock.
type Active struct {
	tr    *Tracer
	id    ID
	tx    model.TxID
	root  bool
	start time.Time

	mu    sync.Mutex
	spans []Span
	done  bool
}

// ID returns the trace ID (0 for nil), for stamping outbound envelopes.
func (a *Active) ID() ID {
	if a == nil {
		return 0
	}
	return a.id
}

// Tx returns the traced transaction.
func (a *Active) Tx() model.TxID {
	if a == nil {
		return model.TxID{}
	}
	return a.tx
}

// Record adds a completed span. Nil-safe.
func (a *Active) Record(stage Stage, start time.Time, d time.Duration, note string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.done {
		a.spans = append(a.spans, Span{Stage: stage, Name: stage.String(), Note: note, Start: start, Dur: d})
	}
	a.mu.Unlock()
}

// StartSpan opens a span; call End on the returned timer when the stage
// completes. On a nil Active the timer is inert and no clock is read.
func (a *Active) StartSpan(stage Stage, note string) Timer {
	if a == nil {
		return Timer{}
	}
	return Timer{a: a, stage: stage, note: note, start: time.Now()}
}

// Timer is an open span handle. The zero Timer (from a nil Active) no-ops.
type Timer struct {
	a     *Active
	stage Stage
	note  string
	start time.Time
}

// End closes the span and records it.
func (t Timer) End() {
	if t.a == nil {
		return
	}
	t.a.Record(t.stage, t.start, time.Since(t.start), t.note)
}

// Finish completes the fragment and retires it into the tracer's ring.
// Idempotent; spans recorded after Finish are dropped.
func (a *Active) Finish() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	spans := a.spans
	a.mu.Unlock()
	a.tr.activeMu.Lock()
	if a.tr.actives[a.id] == a {
		delete(a.tr.actives, a.id)
	}
	a.tr.activeMu.Unlock()
	a.tr.push(Trace{
		ID: a.id, Tx: a.tx, Site: a.tr.site, Root: a.root,
		Start: a.start, End: time.Now(), Spans: spans,
	})
}

// Collate groups fragments from any number of sites by trace ID, each
// group's fragments ordered root-first then by start time. Used by trace
// dumps and the bench's slow-trace report.
func Collate(fragments ...[]Trace) map[ID][]Trace {
	out := make(map[ID][]Trace)
	for _, frs := range fragments {
		for _, fr := range frs {
			out[fr.ID] = append(out[fr.ID], fr)
		}
	}
	for _, group := range out {
		sortFragments(group)
	}
	return out
}

func sortFragments(group []Trace) {
	for i := 1; i < len(group); i++ {
		for j := i; j > 0; j-- {
			a, b := &group[j-1], &group[j]
			if b.Root && !a.Root || (a.Root == b.Root && b.Start.Before(a.Start)) {
				group[j-1], group[j] = group[j], group[j-1]
			} else {
				break
			}
		}
	}
}

// Format renders one collated trace group as an indented stage breakdown
// (the slow-trace dump and the bench -trace report).
func Format(group []Trace) string {
	if len(group) == 0 {
		return ""
	}
	var b []byte
	head := group[0]
	b = fmt.Appendf(b, "trace %016x tx=%s %.3fms\n", uint64(head.ID), head.Tx, float64(head.Duration())/float64(time.Millisecond))
	for _, fr := range group {
		role := "frag"
		if fr.Root {
			role = "root"
		}
		b = fmt.Appendf(b, "  [%s] site=%s %.3fms\n", role, fr.Site, float64(fr.Duration())/float64(time.Millisecond))
		for _, sp := range fr.Spans {
			off := sp.Start.Sub(head.Start)
			b = fmt.Appendf(b, "    +%8.3fms %-10s %8.3fms", float64(off)/float64(time.Millisecond), sp.Name, float64(sp.Dur)/float64(time.Millisecond))
			if sp.Note != "" {
				b = fmt.Appendf(b, "  %s", sp.Note)
			}
			b = append(b, '\n')
		}
	}
	return string(b)
}
