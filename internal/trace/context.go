package trace

import "context"

// ctxKey is the private context key carrying the *Active span collector.
type ctxKey struct{}

// NewContext returns ctx carrying act. A nil act returns ctx unchanged, so
// callers can thread the result unconditionally.
func NewContext(ctx context.Context, act *Active) context.Context {
	if act == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, act)
}

// FromContext returns the Active carried by ctx, or nil. All Active
// methods are nil-safe, so the result can be used without checking.
func FromContext(ctx context.Context) *Active {
	act, _ := ctx.Value(ctxKey{}).(*Active)
	return act
}

// IDFromContext returns the trace ID carried by ctx (0 when untraced); the
// wire layer stamps it onto outbound envelopes.
func IDFromContext(ctx context.Context) ID {
	return FromContext(ctx).ID()
}
