package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

func tx(seq uint64) model.TxID { return model.TxID{Site: "S1", Seq: seq} }

func TestSamplingInterval(t *testing.T) {
	cases := []struct {
		rate  float64
		n     int
		wantN int
	}{
		{rate: 0, n: 100, wantN: 0},
		{rate: 1, n: 100, wantN: 100},
		{rate: 0.25, n: 100, wantN: 25},
		{rate: 2, n: 10, wantN: 10}, // >= 1 clamps to every transaction
	}
	for _, c := range cases {
		tr := New("S1", Policy{SampleRate: c.rate})
		got := 0
		for i := 0; i < c.n; i++ {
			if a := tr.Begin(tx(uint64(i))); a != nil {
				got++
				a.Finish()
			}
		}
		if got != c.wantN {
			t.Errorf("rate %v: sampled %d of %d, want %d", c.rate, got, c.n, c.wantN)
		}
	}
}

func TestNilActiveIsSafe(t *testing.T) {
	var a *Active
	if a.ID() != 0 {
		t.Error("nil Active ID != 0")
	}
	a.Record(StageOp, time.Now(), time.Millisecond, "x")
	a.StartSpan(StageOp, "x").End() // zero Timer no-ops
	a.Finish()

	var tr *Tracer
	tr.Observe(StageOp, time.Millisecond)
	if tr.Begin(tx(1)) != nil || tr.Join(7, tx(1)) != nil || tr.Lookup(7) != nil {
		t.Error("nil Tracer produced a collector")
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil Tracer Snapshot = %v", got)
	}
}

func TestJoinZeroIDIsUnsampled(t *testing.T) {
	tr := New("S2", Policy{SampleRate: 1})
	if a := tr.Join(0, tx(1)); a != nil {
		t.Fatal("Join(0) must return nil")
	}
	if got := tr.Stats().Fragments; got != 0 {
		t.Fatalf("fragments = %d after zero-ID join", got)
	}
}

func TestFragmentRecordingAndLookup(t *testing.T) {
	tr := New("S1", Policy{SampleRate: 1})
	a := tr.Begin(tx(1))
	if a == nil {
		t.Fatal("rate-1 Begin did not sample")
	}
	if got := tr.Lookup(a.ID()); got != a {
		t.Fatalf("Lookup(%v) = %p, want %p", a.ID(), got, a)
	}
	a.Record(StageOp, time.Now(), 3*time.Millisecond, "read x")
	sp := a.StartSpan(StageLockWait, "x")
	time.Sleep(time.Millisecond)
	sp.End()
	a.Finish()
	if tr.Lookup(a.ID()) != nil {
		t.Error("Finish left the collector registered")
	}
	frags := tr.Snapshot()
	if len(frags) != 1 {
		t.Fatalf("snapshot = %d fragments", len(frags))
	}
	fr := frags[0]
	if !fr.Root || fr.Tx != tx(1) || fr.Site != "S1" || len(fr.Spans) != 2 {
		t.Fatalf("fragment = %+v", fr)
	}
	if fr.Spans[1].Dur <= 0 {
		t.Error("timed span has no duration")
	}
	// Spans folded into the always-on stage histograms.
	hs := tr.StageHistograms()
	if hs[StageOp.String()].Count != 1 || hs[StageLockWait.String()].Count != 1 {
		t.Errorf("stage histograms = %v", hs)
	}
	// Post-Finish records are dropped, and Finish is idempotent.
	a.Record(StageOp, time.Now(), time.Millisecond, "late")
	a.Finish()
	if got := tr.Stats(); got.Fragments != 1 {
		t.Errorf("fragments = %d after double Finish", got.Fragments)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New("S1", Policy{SampleRate: 1, Ring: 4})
	for i := 0; i < 10; i++ {
		a := tr.Begin(tx(uint64(i)))
		a.Finish()
	}
	frags := tr.Snapshot()
	if len(frags) != 4 {
		t.Fatalf("ring holds %d, want 4", len(frags))
	}
	// Oldest first, and only the newest four survive.
	for i, fr := range frags {
		if want := tx(uint64(6 + i)); fr.Tx != want {
			t.Errorf("ring[%d] = %v, want %v", i, fr.Tx, want)
		}
	}
	if st := tr.Stats(); st.Fragments != 10 || st.Evicted != 6 {
		t.Errorf("stats = %+v, want 10 fragments / 6 evicted", st)
	}
}

func TestSetPolicyResizesRing(t *testing.T) {
	tr := New("S1", Policy{SampleRate: 1, Ring: 8})
	for i := 0; i < 8; i++ {
		tr.Begin(tx(uint64(i))).Finish()
	}
	tr.SetPolicy(Policy{SampleRate: 1, Ring: 3})
	frags := tr.Snapshot()
	if len(frags) != 3 {
		t.Fatalf("after shrink: %d fragments", len(frags))
	}
	if frags[0].Tx != tx(5) || frags[2].Tx != tx(7) {
		t.Errorf("shrink kept %v..%v, want newest three", frags[0].Tx, frags[2].Tx)
	}
	// Growing keeps retained fragments and the ring fills again.
	tr.SetPolicy(Policy{SampleRate: 1, Ring: 16})
	tr.Begin(tx(100)).Finish()
	if got := len(tr.Snapshot()); got != 4 {
		t.Errorf("after grow: %d fragments, want 4", got)
	}
}

func TestTracesFor(t *testing.T) {
	tr := New("S1", Policy{SampleRate: 1})
	a := tr.Begin(tx(1))
	a.Finish()
	tr.Begin(tx(2)).Finish()
	got := tr.TracesFor(map[model.TxID]bool{tx(1): true})
	if len(got) != 1 || got[0].Tx != tx(1) {
		t.Fatalf("TracesFor = %+v", got)
	}
}

func TestSlowTraceSink(t *testing.T) {
	tr := New("S1", Policy{SampleRate: 1, SlowThreshold: time.Microsecond})
	var dumped []Trace
	tr.OnSlow(func(fr Trace) { dumped = append(dumped, fr) })
	a := tr.Begin(tx(1))
	time.Sleep(2 * time.Millisecond)
	a.Finish()
	if len(dumped) != 1 || tr.Stats().Slow != 1 {
		t.Fatalf("slow sink got %d dumps, stats %+v", len(dumped), tr.Stats())
	}
	// Remote fragments never trip the slow sink: only roots gauge the
	// transaction end to end.
	j := tr.Join(99, tx(2))
	time.Sleep(2 * time.Millisecond)
	j.Finish()
	if len(dumped) != 1 {
		t.Errorf("non-root fragment reached the slow sink")
	}
}

func TestObserveAndReset(t *testing.T) {
	tr := New("S1", Policy{})
	tr.Observe(StageWALFsync, 5*time.Millisecond)
	tr.Observe(StageWALFsync, 7*time.Millisecond)
	if got := tr.StageHistograms()[StageWALFsync.String()].Count; got != 2 {
		t.Fatalf("fsync count = %d", got)
	}
	tr.ResetStages()
	if got := tr.StageHistograms(); len(got) != 0 {
		t.Fatalf("histograms after reset = %v", got)
	}
}

func TestCollateAndFormat(t *testing.T) {
	home := New("H", Policy{SampleRate: 1})
	remote := New("R", Policy{SampleRate: 1})
	a := home.Begin(tx(1))
	id := a.ID()
	a.Record(StageExec, time.Now(), 10*time.Millisecond, "committed")
	j := remote.Join(id, tx(1))
	j.Record(StageAdmit, time.Now(), time.Millisecond, "pre-write x")
	j.Finish()
	a.Finish()

	groups := Collate(home.Snapshot(), remote.Snapshot())
	g, ok := groups[id]
	if !ok || len(g) != 2 {
		t.Fatalf("collated group = %v", groups)
	}
	if !g[0].Root || g[0].Site != "H" || g[1].Site != "R" {
		t.Fatalf("group order = %+v (root must sort first)", g)
	}
	out := Format(g)
	for _, want := range []string{"root", "frag", "exec", "admit", "site=H", "site=R", "committed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	if Format(nil) != "" {
		t.Error("Format(nil) != \"\"")
	}
}

func TestDistinctIDsAcrossSites(t *testing.T) {
	a := New("S1", Policy{SampleRate: 1})
	b := New("S2", Policy{SampleRate: 1})
	seen := make(map[ID]bool)
	for i := 0; i < 50; i++ {
		for _, tr := range []*Tracer{a, b} {
			act := tr.Begin(tx(uint64(i)))
			if seen[act.ID()] {
				t.Fatalf("duplicate trace ID %v", act.ID())
			}
			seen[act.ID()] = true
			act.Finish()
		}
	}
}
