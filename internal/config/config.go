// Package config serializes complete Rainbow experiment configurations to
// JSON, implementing the paper's "configuration data can be saved for reuse
// in another session" (§4.2). A configuration bundles the instance setup
// (sites, database, replication, protocols, network simulation), the
// workload profile, and an optional fault-injection schedule.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/simnet"
	"repro/internal/wlg"
)

// Experiment is a complete saved session configuration.
type Experiment struct {
	// Name labels the experiment in reports.
	Name string `json:"name"`
	// Sites lists the Rainbow sites.
	Sites []model.SiteID `json:"sites"`
	// Items maps items to initial values (replicated everywhere unless
	// Placements overrides).
	Items map[model.ItemID]int64 `json:"items"`
	// Placements optionally pins items to site subsets with votes and
	// quorums. Items absent here are replicated everywhere.
	Placements map[model.ItemID]Placement `json:"placements,omitempty"`
	// Protocols selects RCP/CCP/ACP.
	Protocols schema.Protocols `json:"protocols"`
	// Network configures the simulator.
	Network Network `json:"network"`
	// TimeoutsMS bounds protocol waits, in milliseconds.
	TimeoutsMS TimeoutsMS `json:"timeouts_ms"`
	// Workload is the simulated workload profile.
	Workload Workload `json:"workload"`
	// Faults optionally schedules fault injections relative to workload
	// start.
	Faults []Fault `json:"faults,omitempty"`
	// Shards sets each site's data-plane shard count (storage shards and
	// lock stripes); 0/absent selects a GOMAXPROCS-derived default.
	Shards int `json:"shards,omitempty"`
	// CheckpointBytes triggers a site checkpoint (fuzzy snapshot + WAL
	// compaction) after this many WAL bytes; 0/absent disables the trigger.
	CheckpointBytes int64 `json:"checkpoint_bytes,omitempty"`
	// CheckpointIntervalMS triggers periodic checkpoints; 0/absent disables.
	CheckpointIntervalMS int64 `json:"checkpoint_interval_ms,omitempty"`
	// CheckpointDeltaMax bounds consecutive delta (dirty-shards-only)
	// snapshots between full ones; 0/absent makes every snapshot full.
	CheckpointDeltaMax int `json:"checkpoint_delta_max,omitempty"`
	// CheckpointNoCOW disables copy-on-write shard capture (the snapshot is
	// then copied under the checkpoint gate) — an ablation knob.
	CheckpointNoCOW bool `json:"checkpoint_no_cow,omitempty"`
	// CheckpointNoDirtyItems disables per-item dirty tracking: delta
	// snapshots carry whole dirty shards instead of just the written items
	// — an ablation knob.
	CheckpointNoDirtyItems bool `json:"checkpoint_no_dirty_items,omitempty"`
	// PipelineDisable turns off the per-shard command pipelines on every
	// site: copy operations run the synchronous per-request path — the
	// batching-experiment ablation knob.
	PipelineDisable bool `json:"pipeline_disable,omitempty"`
	// PipelineDepth bounds each per-shard pipeline queue; 0/absent selects
	// the default.
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// PipelineMaxBatch caps one drained pipeline batch; 0/absent selects the
	// default.
	PipelineMaxBatch int `json:"pipeline_max_batch,omitempty"`
	// TraceSampleRate samples this fraction of transactions for end-to-end
	// tracing (counter-based every-Nth at Begin); 0/absent disables sampling
	// (the always-on stage histograms still aggregate).
	TraceSampleRate float64 `json:"trace_sample_rate,omitempty"`
	// TraceRing bounds each site's completed-trace ring; 0/absent selects
	// the default.
	TraceRing int `json:"trace_ring,omitempty"`
	// TraceSlowMS dumps root traces slower than this to the site's
	// slow-trace sink; 0/absent disables.
	TraceSlowMS int64 `json:"trace_slow_ms,omitempty"`
	// NetCodec selects the wire-transport body codec: "" or "binary"
	// (default: negotiated compact binary with gob fallback) or "gob"
	// (pin connections to gob — the codec-ablation knob). Applied when a
	// site creates its transport; simnet-backed instances always use the
	// binary codec in-process.
	NetCodec string `json:"net_codec,omitempty"`
	// CatalogPollMS makes each site probe the name server's catalog epoch
	// at this interval and live-reconfigure when it moved; 0/absent
	// disables polling (sites still receive the name server's push).
	CatalogPollMS int64 `json:"catalog_poll_ms,omitempty"`
	// Epoch is the catalog version this experiment was derived from. When
	// nonzero it acts as a compare-and-set token on catalog updates (POST
	// /catalog, nameserver.SetCatalog): the update is rejected as stale
	// unless it matches the server's current epoch.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Placement mirrors schema.ItemMeta's replication fields.
type Placement struct {
	Votes       map[model.SiteID]int `json:"votes"`
	ReadQuorum  int                  `json:"read_quorum"`
	WriteQuorum int                  `json:"write_quorum"`
}

// Network mirrors simnet.Config with JSON-friendly fields.
type Network struct {
	BaseLatencyUS int64   `json:"base_latency_us"`
	JitterUS      int64   `json:"jitter_us"`
	DropRate      float64 `json:"drop_rate"`
	Seed          int64   `json:"seed"`
}

// TimeoutsMS mirrors schema.Timeouts in milliseconds.
type TimeoutsMS struct {
	Op            int64 `json:"op"`
	Vote          int64 `json:"vote"`
	Ack           int64 `json:"ack"`
	Lock          int64 `json:"lock"`
	OrphanResolve int64 `json:"orphan_resolve"`
}

// Workload mirrors wlg.Profile with JSON-friendly fields.
type Workload struct {
	Transactions int     `json:"transactions"`
	MPL          int     `json:"mpl"`
	ArrivalRate  float64 `json:"arrival_rate,omitempty"`
	OpsPerTx     int     `json:"ops_per_tx"`
	ReadFraction float64 `json:"read_fraction"`
	Zipf         float64 `json:"zipf,omitempty"`
	HotItems     int     `json:"hot_items,omitempty"`
	Retries      int     `json:"retries"`
	RandomHomes  bool    `json:"random_homes,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
}

// Fault mirrors failure.Step with JSON-friendly fields.
type Fault struct {
	AfterMS int64            `json:"after_ms"`
	Kind    string           `json:"kind"`
	Site    model.SiteID     `json:"site,omitempty"`
	Groups  [][]model.SiteID `json:"groups,omitempty"`
}

// Default returns the demo configuration: 3 sites, 8 items, QC+2PL+2PC,
// 200 transactions at MPL 4.
func Default() Experiment {
	items := make(map[model.ItemID]int64)
	for _, it := range []model.ItemID{"a", "b", "c", "d", "e", "f", "g", "h"} {
		items[it] = 100
	}
	return Experiment{
		Name:      "default",
		Sites:     []model.SiteID{"S1", "S2", "S3"},
		Items:     items,
		Protocols: schema.Protocols{RCP: "qc", CCP: "2pl", ACP: "2pc"},
		Network:   Network{BaseLatencyUS: 200, JitterUS: 100},
		TimeoutsMS: TimeoutsMS{
			Op: 1000, Vote: 1000, Ack: 500, Lock: 500, OrphanResolve: 100,
		},
		Workload: Workload{
			Transactions: 200, MPL: 4, OpsPerTx: 4, ReadFraction: 0.75, Retries: 3,
		},
	}
}

// Validate checks the experiment for consistency.
func (e *Experiment) Validate() error {
	if len(e.Sites) == 0 {
		return fmt.Errorf("config: no sites")
	}
	if len(e.Items) == 0 {
		return fmt.Errorf("config: no items")
	}
	cat, err := e.BuildCatalog()
	if err != nil {
		return err
	}
	return cat.Validate()
}

// BuildCatalog converts the experiment into a schema catalog.
func (e *Experiment) BuildCatalog() (*schema.Catalog, error) {
	cat := schema.NewCatalog()
	for _, id := range e.Sites {
		cat.Sites[id] = schema.SiteInfo{ID: id}
	}
	for item, initial := range e.Items {
		if p, ok := e.Placements[item]; ok {
			cat.Items[item] = schema.ItemMeta{
				Item:        item,
				Initial:     initial,
				Votes:       p.Votes,
				ReadQuorum:  p.ReadQuorum,
				WriteQuorum: p.WriteQuorum,
			}
			continue
		}
		cat.ReplicateEverywhere(item, initial)
	}
	if e.Protocols != (schema.Protocols{}) {
		cat.Protocols = e.Protocols
	}
	cat.Timeouts = e.Timeouts()
	cat.Shards = e.Shards
	cat.Checkpoint = e.Checkpoint()
	cat.Pipeline = e.Pipeline()
	cat.Trace = e.Trace()
	cat.Net = schema.NetPolicy{Codec: e.NetCodec}
	cat.Epoch = e.Epoch
	return cat, nil
}

// Trace converts the tracing fields to a schema policy.
func (e *Experiment) Trace() schema.TracePolicy {
	return schema.TracePolicy{
		SampleRate: e.TraceSampleRate,
		Ring:       e.TraceRing,
		SlowMS:     e.TraceSlowMS,
	}
}

// Pipeline converts the pipeline fields to a schema policy.
func (e *Experiment) Pipeline() schema.PipelinePolicy {
	return schema.PipelinePolicy{
		Disable:  e.PipelineDisable,
		Depth:    e.PipelineDepth,
		MaxBatch: e.PipelineMaxBatch,
	}
}

// Checkpoint converts the checkpoint fields to a schema policy.
func (e *Experiment) Checkpoint() schema.CheckpointPolicy {
	return schema.CheckpointPolicy{
		Bytes:        e.CheckpointBytes,
		Interval:     time.Duration(e.CheckpointIntervalMS) * time.Millisecond,
		DeltaMax:     e.CheckpointDeltaMax,
		NoCOW:        e.CheckpointNoCOW,
		NoDirtyItems: e.CheckpointNoDirtyItems,
	}
}

// Timeouts converts TimeoutsMS to schema.Timeouts.
func (e *Experiment) Timeouts() schema.Timeouts {
	ms := func(v int64) time.Duration { return time.Duration(v) * time.Millisecond }
	return schema.Timeouts{
		Op:            ms(e.TimeoutsMS.Op),
		Vote:          ms(e.TimeoutsMS.Vote),
		Ack:           ms(e.TimeoutsMS.Ack),
		Lock:          ms(e.TimeoutsMS.Lock),
		OrphanResolve: ms(e.TimeoutsMS.OrphanResolve),
	}
}

// Options converts the experiment into core.Options.
func (e *Experiment) Options() (core.Options, error) {
	cat, err := e.BuildCatalog()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Catalog: cat,
		Net: simnet.Config{
			BaseLatency: time.Duration(e.Network.BaseLatencyUS) * time.Microsecond,
			Jitter:      time.Duration(e.Network.JitterUS) * time.Microsecond,
			DropRate:    e.Network.DropRate,
			Seed:        e.Network.Seed,
		},
		Shards:      e.Shards,
		CatalogPoll: time.Duration(e.CatalogPollMS) * time.Millisecond,
	}, nil
}

// Profile converts the workload section into a wlg.Profile (sites/items are
// filled by the instance at run time).
func (e *Experiment) Profile() wlg.Profile {
	w := e.Workload
	return wlg.Profile{
		Transactions: w.Transactions,
		MPL:          w.MPL,
		ArrivalRate:  w.ArrivalRate,
		OpsPerTx:     w.OpsPerTx,
		ReadFraction: w.ReadFraction,
		Zipf:         w.Zipf,
		HotItems:     w.HotItems,
		Retries:      w.Retries,
		RandomHomes:  w.RandomHomes,
		Seed:         w.Seed,
	}
}

// Steps converts the fault schedule into failure steps.
func (e *Experiment) Steps() []failure.Step {
	out := make([]failure.Step, 0, len(e.Faults))
	for _, f := range e.Faults {
		out = append(out, failure.Step{
			After:  time.Duration(f.AfterMS) * time.Millisecond,
			Kind:   f.Kind,
			Site:   f.Site,
			Groups: f.Groups,
		})
	}
	return out
}

// Save writes the experiment as indented JSON.
func (e *Experiment) Save(path string) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("config: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("config: write %s: %w", path, err)
	}
	return nil
}

// Load reads an experiment from a JSON file and validates it.
func Load(path string) (Experiment, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Experiment{}, fmt.Errorf("config: read %s: %w", path, err)
	}
	return Parse(b)
}

// Parse decodes and validates an experiment from JSON bytes.
func Parse(b []byte) (Experiment, error) {
	var e Experiment
	if err := json.Unmarshal(b, &e); err != nil {
		return Experiment{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Experiment{}, err
	}
	return e, nil
}
