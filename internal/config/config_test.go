package config

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// newInstance builds a core instance (indirection keeps the import local to
// the end-to-end test).
func newInstance(opts core.Options) (*core.Instance, error) { return core.New(opts) }

func TestDefaultValid(t *testing.T) {
	e := Default()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := Default()
	e.Name = "round-trip"
	e.Workload.Zipf = 1.2
	e.Faults = []Fault{{AfterMS: 100, Kind: "crash", Site: "S2"}}
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/exp.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseGarbage(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestParseValidates(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x"}`)); err == nil {
		t.Error("empty experiment accepted")
	}
}

func TestValidateRejectsBadPlacement(t *testing.T) {
	e := Default()
	e.Placements = map[model.ItemID]Placement{
		"a": {Votes: map[model.SiteID]int{"S1": 1}, ReadQuorum: 1, WriteQuorum: 1},
		// r+w = 2 > 1 total? 1+1=2 > 1 ok; 2w=2 > 1 ok — actually valid.
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("single-copy placement should be valid: %v", err)
	}
	e.Placements["a"] = Placement{Votes: map[model.SiteID]int{"ZZ": 1}, ReadQuorum: 1, WriteQuorum: 1}
	if err := e.Validate(); err == nil {
		t.Error("placement on unknown site accepted")
	}
}

func TestBuildCatalogPlacements(t *testing.T) {
	e := Default()
	e.Placements = map[model.ItemID]Placement{
		"a": {Votes: map[model.SiteID]int{"S1": 2, "S2": 1}, ReadQuorum: 2, WriteQuorum: 2},
	}
	cat, err := e.BuildCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if cat.Items["a"].Votes["S1"] != 2 || cat.Items["a"].ReadQuorum != 2 {
		t.Errorf("placement not applied: %+v", cat.Items["a"])
	}
	// Unpinned items replicated everywhere.
	if len(cat.Items["b"].Votes) != 3 {
		t.Errorf("item b not replicated everywhere: %+v", cat.Items["b"])
	}
}

func TestOptionsAndProfileConversion(t *testing.T) {
	e := Default()
	opts, err := e.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Catalog == nil || opts.Net.BaseLatency == 0 {
		t.Errorf("options = %+v", opts)
	}
	p := e.Profile()
	if p.Transactions != 200 || p.MPL != 4 || p.ReadFraction != 0.75 {
		t.Errorf("profile = %+v", p)
	}
}

func TestStepsConversion(t *testing.T) {
	e := Default()
	e.Faults = []Fault{
		{AfterMS: 50, Kind: "crash", Site: "S1"},
		{AfterMS: 150, Kind: "recover", Site: "S1"},
		{AfterMS: 200, Kind: "partition", Groups: [][]model.SiteID{{"S1"}, {"S2", "S3"}}},
	}
	steps := e.Steps()
	if len(steps) != 3 || steps[0].Kind != "crash" || steps[2].Groups == nil {
		t.Errorf("steps = %+v", steps)
	}
	if steps[1].After.Milliseconds() != 150 {
		t.Errorf("after = %v", steps[1].After)
	}
}

func TestTimeoutsConversion(t *testing.T) {
	e := Default()
	ts := e.Timeouts()
	if ts.Op.Milliseconds() != 1000 || ts.Lock.Milliseconds() != 500 {
		t.Errorf("timeouts = %+v", ts)
	}
}

// TestEndToEndFromConfig builds a live instance from a config and runs its
// workload — the full "save a session, reload it, run it" loop.
func TestEndToEndFromConfig(t *testing.T) {
	e := Default()
	e.Workload.Transactions = 20
	e.Network.BaseLatencyUS = 0 // fast test
	e.Network.JitterUS = 0
	opts, err := e.Options()
	if err != nil {
		t.Fatal(err)
	}
	in, err := newInstance(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	res := in.RunWorkload(t.Context(), e.Profile())
	if res.Submitted != 20 || res.Committed == 0 {
		t.Errorf("result = %+v", res)
	}
}
