package wire_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/wire"
)

func newPair(t *testing.T, serve wire.ServeFunc) (*wire.Peer, *wire.Peer) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	server, err := wire.NewPeer(net, "server", serve)
	if err != nil {
		t.Fatal(err)
	}
	client, err := wire.NewPeer(net, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

func TestCallRoundTrip(t *testing.T) {
	_, client := newPair(t, func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		var req wire.ReadCopyReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		return wire.KindReadCopy, &wire.ReadCopyResp{Value: 99, Version: model.Version(req.Tx.Seq)}, nil
	})

	var resp wire.ReadCopyResp
	err := client.Call(context.Background(), "server", wire.KindReadCopy,
		&wire.ReadCopyReq{Tx: model.TxID{Site: "c", Seq: 5}, Item: "x"}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != 99 || resp.Version != 5 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestCallPropagatesAbortCause(t *testing.T) {
	_, client := newPair(t, func(model.SiteID, trace.ID, wire.MsgKind, wire.Payload) (wire.MsgKind, wire.Body, error) {
		return 0, nil, model.Abortf(model.AbortCC, "timestamp too old")
	})
	err := client.Call(context.Background(), "server", wire.KindReadCopy, &wire.ReadCopyReq{}, nil)
	if model.CauseOf(err) != model.AbortCC {
		t.Errorf("cause = %v, err = %v", model.CauseOf(err), err)
	}
}

func TestCallGenericErrorNotAbort(t *testing.T) {
	_, client := newPair(t, func(model.SiteID, trace.ID, wire.MsgKind, wire.Payload) (wire.MsgKind, wire.Body, error) {
		return 0, nil, errors.New("disk on fire")
	})
	err := client.Call(context.Background(), "server", wire.KindPing, &wire.PingReq{}, nil)
	if err == nil {
		t.Fatal("want error")
	}
	if c := model.CauseOf(err); c != model.AbortClient {
		t.Errorf("generic remote error should surface as client-level, got %v", c)
	}
}

func TestCallTimeout(t *testing.T) {
	net := simnet.New(simnet.Config{})
	// A server that is attached but paused never replies.
	if _, err := wire.NewPeer(net, "server", func(model.SiteID, trace.ID, wire.MsgKind, wire.Payload) (wire.MsgKind, wire.Body, error) {
		return wire.KindOK, &wire.OKBody{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	client, err := wire.NewPeer(net, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Pause("server")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := client.Call(ctx, "server", wire.KindPing, &wire.PingReq{}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestCallToUnknownDestinationTimesOut(t *testing.T) {
	net := simnet.New(simnet.Config{})
	client, err := wire.NewPeer(net, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := client.Call(ctx, "ghost", wire.KindPing, &wire.PingReq{}, nil); err == nil {
		t.Error("call to unknown destination should fail")
	}
}

func TestCast(t *testing.T) {
	var got atomic.Int64
	_, client := newPair(t, func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		var d wire.DecisionMsg
		if err := pay.Decode(&d); err == nil && d.Commit {
			got.Add(1)
		}
		return wire.KindOK, &wire.OKBody{}, nil
	})
	if err := client.Cast(context.Background(), "server", wire.KindDecision, &wire.DecisionMsg{Commit: true}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Error("cast not delivered")
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, client := newPair(t, func(from model.SiteID, _ trace.ID, kind wire.MsgKind, pay wire.Payload) (wire.MsgKind, wire.Body, error) {
		var req wire.ReadCopyReq
		if err := pay.Decode(&req); err != nil {
			return 0, nil, err
		}
		return wire.KindReadCopy, &wire.ReadCopyResp{Value: int64(req.Tx.Seq)}, nil
	})
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp wire.ReadCopyResp
			err := client.Call(context.Background(), "server", wire.KindReadCopy,
				&wire.ReadCopyReq{Tx: model.TxID{Site: "c", Seq: uint64(i)}}, &resp)
			if err == nil && resp.Value != int64(i) {
				err = fmt.Errorf("cross-wired reply: got %d want %d", resp.Value, i)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestClosedPeerFailsCalls(t *testing.T) {
	_, client := newPair(t, func(model.SiteID, trace.ID, wire.MsgKind, wire.Payload) (wire.MsgKind, wire.Body, error) {
		return wire.KindOK, &wire.OKBody{}, nil
	})
	client.Close()
	if err := client.Call(context.Background(), "server", wire.KindPing, &wire.PingReq{}, nil); err == nil {
		t.Error("call on closed peer should fail")
	}
}

func TestServerlessPeerRepliesError(t *testing.T) {
	net := simnet.New(simnet.Config{})
	if _, err := wire.NewPeer(net, "mute", nil); err != nil {
		t.Fatal(err)
	}
	client, err := wire.NewPeer(net, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := client.Call(ctx, "mute", wire.KindPing, &wire.PingReq{}, nil); err == nil {
		t.Error("peer with nil ServeFunc should return an error reply")
	}
}
