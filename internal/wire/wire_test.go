package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	in := PrepareReq{
		Tx:          model.TxID{Site: "S1", Seq: 7},
		TS:          model.Timestamp{Time: 9, Site: "S1"},
		Coordinator: "S1",
		Writes: []model.WriteRecord{
			{Item: "x", Value: 42, Version: 3},
			{Item: "y", Value: -1, Version: 1},
		},
		Participants: []model.SiteID{"S1", "S2", "S3"},
		ThreePhase:   true,
	}
	payload, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out PrepareReq
	if err := Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tx != in.Tx || out.TS != in.TS || out.Coordinator != in.Coordinator ||
		len(out.Writes) != 2 || out.Writes[0] != in.Writes[0] || out.Writes[1] != in.Writes[1] ||
		len(out.Participants) != 3 || !out.ThreePhase {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestMarshalRoundTripQuick(t *testing.T) {
	f := func(tx uint64, item string, val int64, ver uint64) bool {
		in := PreWriteReq{
			Tx:    model.TxID{Site: "S", Seq: tx},
			Item:  model.ItemID(item),
			Value: val,
			TS:    model.Timestamp{Time: ver, Site: "S"},
		}
		p, err := Marshal(in)
		if err != nil {
			return false
		}
		var out PreWriteReq
		return Unmarshal(p, &out) == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalError(t *testing.T) {
	var out ReadCopyResp
	if err := Unmarshal([]byte{0x01, 0x02}, &out); err == nil {
		t.Error("garbage payload should fail to unmarshal")
	}
}

func TestEnvelopeSize(t *testing.T) {
	env := &Envelope{From: "S1", To: "S2", Kind: KindPing, Corr: 1, Payload: make([]byte, 100)}
	if got := env.Size(); got <= 100 {
		t.Errorf("Size() = %d, want > payload length", got)
	}
	empty := &Envelope{From: "a", To: "b"}
	if empty.Size() <= 0 {
		t.Error("empty envelope should still have header size")
	}
}

func TestMsgKindString(t *testing.T) {
	if KindPrepare.String() != "Prepare" {
		t.Errorf("KindPrepare.String() = %q", KindPrepare.String())
	}
	if MsgKind(9999).String() != "MsgKind(9999)" {
		t.Errorf("unknown kind string = %q", MsgKind(9999).String())
	}
}

func TestErrorBodyPreservesAbortCause(t *testing.T) {
	eb := ErrorBody{Cause: model.AbortCC, Reason: "deadlock"}
	err := eb.Err()
	if model.CauseOf(err) != model.AbortCC {
		t.Errorf("cause lost across ErrorBody: %v", model.CauseOf(err))
	}

	generic := ErrorBody{Cause: model.AbortNone, Reason: "io failure"}
	if model.CauseOf(generic.Err()) == model.AbortCC {
		t.Error("generic error must not become a protocol abort")
	}
	if generic.Err() == nil {
		t.Error("non-abort ErrorBody must still be an error")
	}
}
