// Typed body codec: the compact binary encoding for message bodies and the
// kind→constructor registry that replaces blanket gob registration.
//
// Every body implements Body: it knows its canonical kind, appends its
// binary encoding to a caller-supplied buffer, and decodes itself from one.
// The encoding follows internal/wal/codec.go's style — a leading version
// byte, uvarint/varint integers, length-prefixed strings — because gob's
// self-describing streams dominated the transport CPU profile: a fresh
// encoder per message re-sends type definitions every time, and
// gob.compileDec alone was over half the loopback transport cost.
//
// Evolution rules (mirroring the WAL codec):
//
//   - Fields are append-only. New fields go at the end of the encoding and
//     bump the body's version byte.
//   - Decoders accept any version they know and ignore trailing bytes, so a
//     v1 decoder reads the v1 prefix of a v2 body and a v2 decoder gates
//     the appended fields on the version byte.
//   - Kinds are append-only too (see the MsgKind block in wire.go): a
//     receiver that does not know a kind drops the message, it never
//     misdecodes one.
//
// The codec is negotiated per connection (see internal/tcpnet): peers open
// with a CodecHello and fall back to gob for peers that never say hello, so
// old binaries interoperate. Cold-path bodies with deeply nested payloads
// (catalogs, stats dumps) keep gob under the typed surface via AppendGob/
// DecodeGob — negotiation and the Body API are uniform, only their bytes
// stay self-describing.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// CodecID identifies a body encoding on the wire.
type CodecID uint8

const (
	// CodecGob is the legacy reflection codec: self-describing, slow, and
	// what every peer speaks — the negotiation fallback.
	CodecGob CodecID = 0
	// CodecBinary is the compact hand-rolled codec defined in this file.
	CodecBinary CodecID = 1
)

// String names the codec for stats, metrics and logs.
func (c CodecID) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBinary:
		return "binary"
	}
	return fmt.Sprintf("CodecID(%d)", uint8(c))
}

// CodecByName resolves a codec knob value ("binary" or "gob"; empty selects
// binary, the default).
func CodecByName(name string) (CodecID, error) {
	switch name {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	}
	return 0, fmt.Errorf("wire: unknown codec %q (want binary or gob)", name)
}

// Body is implemented by every message body. Implementations use pointer
// receivers: DecodeFrom mutates, and passing *T keeps gob's encoding of the
// fallback path byte-identical to the historical value encodes (gob
// flattens the pointer).
type Body interface {
	// Kind returns the body's canonical message kind. Some bodies serve
	// several kinds (PingReq doubles as the empty stats/history request), so
	// envelopes carry their kind explicitly; Kind is the default used by
	// helpers and tests.
	Kind() MsgKind
	// AppendTo appends the body's binary encoding to buf and returns the
	// extended slice.
	AppendTo(buf []byte) []byte
	// DecodeFrom decodes the binary encoding in b into the receiver.
	DecodeFrom(b []byte) error
}

// Payload is the received view of a body: the raw bytes plus the codec they
// were encoded with. Handlers decode it into the typed body for the
// envelope's kind.
type Payload struct {
	Codec CodecID
	Bytes []byte
}

// Decode decodes the payload into the typed body, dispatching on the codec
// it arrived under.
func (p Payload) Decode(into Body) error {
	if p.Codec == CodecBinary {
		return into.DecodeFrom(p.Bytes)
	}
	return Unmarshal(p.Bytes, into)
}

// ---- Kind → constructor registry ----

type bodyKey struct {
	kind  MsgKind
	reply bool
}

var bodyCtors = map[bodyKey]func() Body{}

// RegisterBody records the constructor for the body type carried by (kind,
// reply) envelopes — the typed replacement for gob.Register. It must be
// called during package initialization (the map is read lock-free
// afterwards); packages owning cold-path bodies (site stats, nameserver
// catalogs) register theirs alongside the wire kinds registered here.
func RegisterBody(kind MsgKind, reply bool, ctor func() Body) {
	key := bodyKey{kind, reply}
	if _, dup := bodyCtors[key]; dup {
		panic(fmt.Sprintf("wire: duplicate body registration for %v reply=%v", kind, reply))
	}
	bodyCtors[key] = ctor
}

// NewBody constructs an empty body for (kind, reply), or false for kinds
// with no registered body (unknown or from a newer peer).
func NewBody(kind MsgKind, reply bool) (Body, bool) {
	ctor, ok := bodyCtors[bodyKey{kind, reply}]
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// RegisteredBodyKinds lists every (kind, reply) pair with a registered
// constructor, sorted — the fuzzer and round-trip tests sweep it so new
// bodies are covered by registration alone.
func RegisteredBodyKinds() []struct {
	Kind  MsgKind
	Reply bool
} {
	out := make([]struct {
		Kind  MsgKind
		Reply bool
	}, 0, len(bodyCtors))
	for k := range bodyCtors {
		out = append(out, struct {
			Kind  MsgKind
			Reply bool
		}{k.kind, k.reply})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return !out[i].Reply && out[j].Reply
	})
	return out
}

// ---- Gob escape hatch ----

// gobBufPool recycles encode buffers across Marshal/AppendGob calls: the
// gob fallback still builds a fresh encoder per message (that is the cost
// the binary codec retires), but at least the buffer churn is gone.
var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// AppendGob appends the gob encoding of v to buf — the escape hatch for
// cold-path bodies (catalogs, stats dumps) whose nested types are not worth
// hand-rolled encoders. An encode error (unreachable for the registered
// body types) leaves the payload truncated; the receiver's decode then
// fails and the message is lost, which the unreliable-network contract
// already allows.
func AppendGob(buf []byte, v any) []byte {
	b := gobBufPool.Get().(*bytes.Buffer)
	b.Reset()
	if err := gob.NewEncoder(b).Encode(v); err == nil {
		buf = append(buf, b.Bytes()...)
	}
	gobBufPool.Put(b)
	return buf
}

// DecodeGob decodes a gob payload produced by AppendGob into v.
func DecodeGob(b []byte, v any) error {
	return Unmarshal(b, v)
}

// ---- Encoding helpers ----

// bodyVersion is the current version byte every hand-rolled body encoding
// opens with. Bump per body (not globally) when appending fields.
const bodyVersion = 1

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }
func appendVarint(buf []byte, v int64) []byte   { return binary.AppendVarint(buf, v) }

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendTx(buf []byte, tx model.TxID) []byte {
	buf = appendString(buf, string(tx.Site))
	return appendUvarint(buf, tx.Seq)
}

func appendTS(buf []byte, ts model.Timestamp) []byte {
	buf = appendUvarint(buf, ts.Time)
	return appendString(buf, string(ts.Site))
}

func appendBallot(buf []byte, b model.Ballot) []byte {
	buf = appendUvarint(buf, b.N)
	return appendString(buf, string(b.Site))
}

// bodyReader walks a binary body encoding with latched errors, mirroring
// the WAL codec's reader: after the first failure every accessor returns
// zero values and the error survives to the end, so decoders read fields
// straight-line without per-field checks.
type bodyReader struct {
	b   []byte
	err error
}

func (r *bodyReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated body (%s)", what)
	}
}

func (r *bodyReader) byte() byte {
	if r.err != nil || len(r.b) == 0 {
		r.fail("byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *bodyReader) bool() bool { return r.byte() != 0 }

func (r *bodyReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *bodyReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *bodyReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail("string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// count reads a collection length and bounds it by the remaining bytes
// (each element costs at least one byte), so corrupt counts cannot drive
// huge allocations.
func (r *bodyReader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)) {
		r.fail("count")
		return 0
	}
	return int(n)
}

func (r *bodyReader) tx() model.TxID {
	site := r.str()
	return model.TxID{Site: model.SiteID(site), Seq: r.uvarint()}
}

func (r *bodyReader) ts() model.Timestamp {
	t := r.uvarint()
	return model.Timestamp{Time: t, Site: model.SiteID(r.str())}
}

func (r *bodyReader) ballot() model.Ballot {
	n := r.uvarint()
	return model.Ballot{N: n, Site: model.SiteID(r.str())}
}

// version reads and validates the leading version byte. Decoders tolerate
// newer versions (append-only fields: the known prefix still decodes).
func (r *bodyReader) version() byte {
	v := r.byte()
	if r.err == nil && v == 0 {
		r.fail("version")
	}
	return v
}

// ---- Hand-rolled encoders, one pair per body ----
//
// Collections encode as a uvarint count followed by the elements; a zero
// count decodes to a nil slice/map, matching gob's round-trip of empty
// collections so the two codecs are semantically interchangeable.

func (b *ErrorBody) Kind() MsgKind { return KindError }

func (b *ErrorBody) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = append(buf, byte(b.Cause))
	return appendString(buf, b.Reason)
}

func (b *ErrorBody) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Cause = model.AbortCause(r.byte())
	b.Reason = r.str()
	return r.err
}

func (b *OKBody) Kind() MsgKind { return KindOK }

func (b *OKBody) AppendTo(buf []byte) []byte { return append(buf, bodyVersion) }

func (b *OKBody) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	return r.err
}

func (b *RegisterSiteReq) Kind() MsgKind { return KindRegisterSite }

func (b *RegisterSiteReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendString(buf, string(b.Site))
	return appendString(buf, b.Addr)
}

func (b *RegisterSiteReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Site = model.SiteID(r.str())
	b.Addr = r.str()
	return r.err
}

func (b *GetCatalogReq) Kind() MsgKind { return KindGetCatalog }

func (b *GetCatalogReq) AppendTo(buf []byte) []byte { return append(buf, bodyVersion) }

func (b *GetCatalogReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	return r.err
}

func (b *PingReq) Kind() MsgKind { return KindPing }

func (b *PingReq) AppendTo(buf []byte) []byte { return append(buf, bodyVersion) }

func (b *PingReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	return r.err
}

func (b *ReadCopyReq) Kind() MsgKind { return KindReadCopy }

func (b *ReadCopyReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendTx(buf, b.Tx)
	buf = appendTS(buf, b.TS)
	return appendString(buf, string(b.Item))
}

func (b *ReadCopyReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	b.TS = r.ts()
	b.Item = model.ItemID(r.str())
	return r.err
}

func (b *ReadCopyResp) Kind() MsgKind { return KindReadCopy }

func (b *ReadCopyResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendVarint(buf, b.Value)
	buf = appendUvarint(buf, uint64(b.Version))
	buf = appendUvarint(buf, b.Clock)
	return appendUvarint(buf, b.Incarnation)
}

func (b *ReadCopyResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Value = r.varint()
	b.Version = model.Version(r.uvarint())
	b.Clock = r.uvarint()
	b.Incarnation = r.uvarint()
	return r.err
}

func (b *PreWriteReq) Kind() MsgKind { return KindPreWrite }

func (b *PreWriteReq) AppendTo(buf []byte) []byte {
	// Version 2 appended Add (commutative blind-add pre-writes).
	buf = append(buf, 2)
	buf = appendTx(buf, b.Tx)
	buf = appendTS(buf, b.TS)
	buf = appendString(buf, string(b.Item))
	buf = appendVarint(buf, b.Value)
	return appendBool(buf, b.Add)
}

func (b *PreWriteReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	v := r.version()
	b.Tx = r.tx()
	b.TS = r.ts()
	b.Item = model.ItemID(r.str())
	b.Value = r.varint()
	b.Add = v >= 2 && r.bool()
	return r.err
}

func (b *PreWriteResp) Kind() MsgKind { return KindPreWrite }

func (b *PreWriteResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendUvarint(buf, uint64(b.Version))
	buf = appendUvarint(buf, b.Clock)
	return appendUvarint(buf, b.Incarnation)
}

func (b *PreWriteResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Version = model.Version(r.uvarint())
	b.Clock = r.uvarint()
	b.Incarnation = r.uvarint()
	return r.err
}

func (b *ReleaseTxReq) Kind() MsgKind { return KindReleaseTx }

func (b *ReleaseTxReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return appendTx(buf, b.Tx)
}

func (b *ReleaseTxReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	return r.err
}

func (b *PrepareReq) Kind() MsgKind { return KindPrepare }

func (b *PrepareReq) AppendTo(buf []byte) []byte {
	// Version 2 appended per-write delta flags (commutative blind-add
	// records), at the end so version-1 decoders never see them.
	buf = append(buf, 2)
	buf = appendTx(buf, b.Tx)
	buf = appendTS(buf, b.TS)
	buf = appendString(buf, string(b.Coordinator))
	buf = appendUvarint(buf, uint64(len(b.Writes)))
	for _, w := range b.Writes {
		buf = appendString(buf, string(w.Item))
		buf = appendVarint(buf, w.Value)
		buf = appendUvarint(buf, uint64(w.Version))
	}
	buf = appendUvarint(buf, uint64(len(b.Participants)))
	for _, s := range b.Participants {
		buf = appendString(buf, string(s))
	}
	buf = appendBool(buf, b.ThreePhase)
	buf = appendBool(buf, b.NoReadOnlyOpt)
	buf = appendUvarint(buf, b.Epoch)
	buf = appendUvarint(buf, uint64(len(b.Voters)))
	for _, s := range b.Voters {
		buf = appendString(buf, string(s))
	}
	buf = appendUvarint(buf, b.Incarnation)
	// Version-2 fields: one delta flag per write, in write order.
	for _, w := range b.Writes {
		buf = appendBool(buf, w.Delta)
	}
	return buf
}

func (b *PrepareReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	v := r.version()
	b.Tx = r.tx()
	b.TS = r.ts()
	b.Coordinator = model.SiteID(r.str())
	if n := r.count(); n > 0 {
		b.Writes = make([]model.WriteRecord, n)
		for i := range b.Writes {
			b.Writes[i] = model.WriteRecord{
				Item:    model.ItemID(r.str()),
				Value:   r.varint(),
				Version: model.Version(r.uvarint()),
			}
		}
	} else {
		b.Writes = nil
	}
	if n := r.count(); n > 0 {
		b.Participants = make([]model.SiteID, n)
		for i := range b.Participants {
			b.Participants[i] = model.SiteID(r.str())
		}
	} else {
		b.Participants = nil
	}
	b.ThreePhase = r.bool()
	b.NoReadOnlyOpt = r.bool()
	b.Epoch = r.uvarint()
	if n := r.count(); n > 0 {
		b.Voters = make([]model.SiteID, n)
		for i := range b.Voters {
			b.Voters[i] = model.SiteID(r.str())
		}
	} else {
		b.Voters = nil
	}
	b.Incarnation = r.uvarint()
	if v >= 2 {
		for i := range b.Writes {
			b.Writes[i].Delta = r.bool()
		}
	}
	return r.err
}

func (b *VoteResp) Kind() MsgKind { return KindVote }

func (b *VoteResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendBool(buf, b.Yes)
	buf = appendBool(buf, b.ReadOnly)
	return appendString(buf, b.Reason)
}

func (b *VoteResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Yes = r.bool()
	b.ReadOnly = r.bool()
	b.Reason = r.str()
	return r.err
}

func (b *PreCommitReq) Kind() MsgKind { return KindPreCommit }

func (b *PreCommitReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return appendTx(buf, b.Tx)
}

func (b *PreCommitReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	return r.err
}

func (b *DecisionMsg) Kind() MsgKind { return KindDecision }

func (b *DecisionMsg) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendTx(buf, b.Tx)
	return appendBool(buf, b.Commit)
}

func (b *DecisionMsg) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	b.Commit = r.bool()
	return r.err
}

func (b *AckMsg) Kind() MsgKind { return KindAck }

func (b *AckMsg) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return appendTx(buf, b.Tx)
}

func (b *AckMsg) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	return r.err
}

func (b *EndTxMsg) Kind() MsgKind { return KindEndTx }

func (b *EndTxMsg) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return appendTx(buf, b.Tx)
}

func (b *EndTxMsg) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	return r.err
}

func (b *GetEpochReq) Kind() MsgKind { return KindGetEpoch }

func (b *GetEpochReq) AppendTo(buf []byte) []byte { return append(buf, bodyVersion) }

func (b *GetEpochReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	return r.err
}

func (b *EpochResp) Kind() MsgKind { return KindGetEpoch }

func (b *EpochResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return appendUvarint(buf, b.Epoch)
}

func (b *EpochResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Epoch = r.uvarint()
	return r.err
}

func (b *DecisionReq) Kind() MsgKind { return KindDecisionReq }

func (b *DecisionReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendTx(buf, b.Tx)
	return appendBool(buf, b.ThreePhase)
}

func (b *DecisionReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	b.ThreePhase = r.bool()
	return r.err
}

func (b *DecisionResp) Kind() MsgKind { return KindDecision }

func (b *DecisionResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendBool(buf, b.Known)
	return appendBool(buf, b.Commit)
}

func (b *DecisionResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Known = r.bool()
	b.Commit = r.bool()
	return r.err
}

func (b *TermStateReq) Kind() MsgKind { return KindTermState }

func (b *TermStateReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return appendTx(buf, b.Tx)
}

func (b *TermStateReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	return r.err
}

func (b *TermStateResp) Kind() MsgKind { return KindTermState }

func (b *TermStateResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return append(buf, b.State)
}

func (b *TermStateResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.State = r.byte()
	return r.err
}

func (b *TermQueryReq) Kind() MsgKind { return KindTermQuery }

func (b *TermQueryReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendTx(buf, b.Tx)
	return appendBallot(buf, b.Ballot)
}

func (b *TermQueryReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	b.Ballot = r.ballot()
	return r.err
}

func (b *TermQueryResp) Kind() MsgKind { return KindTermQuery }

func (b *TermQueryResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendBool(buf, b.Accepted)
	buf = appendBallot(buf, b.EA)
	buf = append(buf, b.State)
	buf = appendBallot(buf, b.EB)
	buf = appendBool(buf, b.Decided)
	return appendBool(buf, b.Commit)
}

func (b *TermQueryResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Accepted = r.bool()
	b.EA = r.ballot()
	b.State = r.byte()
	b.EB = r.ballot()
	b.Decided = r.bool()
	b.Commit = r.bool()
	return r.err
}

func (b *TermPreDecideReq) Kind() MsgKind { return KindTermPreDecide }

func (b *TermPreDecideReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendTx(buf, b.Tx)
	buf = appendBallot(buf, b.Ballot)
	return appendBool(buf, b.Commit)
}

func (b *TermPreDecideReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Tx = r.tx()
	b.Ballot = r.ballot()
	b.Commit = r.bool()
	return r.err
}

func (b *TermPreDecideResp) Kind() MsgKind { return KindTermPreDecide }

func (b *TermPreDecideResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendBool(buf, b.Accepted)
	buf = appendBool(buf, b.Decided)
	return appendBool(buf, b.Commit)
}

func (b *TermPreDecideResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Accepted = r.bool()
	b.Decided = r.bool()
	b.Commit = r.bool()
	return r.err
}

func (b *SubmitTxReq) Kind() MsgKind { return KindSubmitTx }

func (b *SubmitTxReq) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	buf = appendUvarint(buf, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		buf = append(buf, byte(op.Kind))
		buf = appendString(buf, string(op.Item))
		buf = appendVarint(buf, op.Value)
	}
	return buf
}

func (b *SubmitTxReq) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	if n := r.count(); n > 0 {
		b.Ops = make([]model.Op, n)
		for i := range b.Ops {
			b.Ops[i] = model.Op{
				Kind:  model.OpKind(r.byte()),
				Item:  model.ItemID(r.str()),
				Value: r.varint(),
			}
		}
	} else {
		b.Ops = nil
	}
	return r.err
}

func (b *SubmitTxResp) Kind() MsgKind { return KindSubmitTx }

func (b *SubmitTxResp) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	o := &b.Outcome
	buf = appendTx(buf, o.Tx)
	buf = appendBool(buf, o.Committed)
	buf = append(buf, byte(o.Cause))
	buf = appendVarint(buf, o.LatencyNS)
	buf = appendUvarint(buf, uint64(len(o.Reads)))
	if len(o.Reads) > 0 {
		// Sorted keys keep the encoding deterministic (round-trip tests
		// compare bytes, and byte-identical traffic is a package promise).
		items := make([]string, 0, len(o.Reads))
		for item := range o.Reads {
			items = append(items, string(item))
		}
		sort.Strings(items)
		for _, item := range items {
			buf = appendString(buf, item)
			buf = appendVarint(buf, o.Reads[model.ItemID(item)])
		}
	}
	return appendString(buf, string(o.HomeSite))
}

func (b *SubmitTxResp) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	o := &b.Outcome
	o.Tx = r.tx()
	o.Committed = r.bool()
	o.Cause = model.AbortCause(r.byte())
	o.LatencyNS = r.varint()
	if n := r.count(); n > 0 {
		o.Reads = make(map[model.ItemID]int64, n)
		for i := 0; i < n; i++ {
			item := model.ItemID(r.str())
			o.Reads[item] = r.varint()
		}
	} else {
		o.Reads = nil
	}
	o.HomeSite = model.SiteID(r.str())
	return r.err
}

// HelloBody is the codec-negotiation handshake (KindCodecHello): each side
// of a batched connection announces the body codec it accepts right after
// the frame magic. Peers that predate negotiation simply drop the unknown
// kind — their absence of a hello is what keeps the connection on gob.
type HelloBody struct {
	// Codec is the richest codec the sender accepts for inbound bodies.
	Codec CodecID
}

func (b *HelloBody) Kind() MsgKind { return KindCodecHello }

func (b *HelloBody) AppendTo(buf []byte) []byte {
	buf = append(buf, bodyVersion)
	return append(buf, byte(b.Codec))
}

func (b *HelloBody) DecodeFrom(p []byte) error {
	r := bodyReader{b: p}
	r.version()
	b.Codec = CodecID(r.byte())
	return r.err
}

func init() {
	// The typed registry: one constructor per (kind, reply) pair. Kinds
	// whose requests are empty share PingReq (the canonical empty body).
	RegisterBody(KindError, true, func() Body { return &ErrorBody{} })
	RegisterBody(KindOK, true, func() Body { return &OKBody{} })
	RegisterBody(KindRegisterSite, false, func() Body { return &RegisterSiteReq{} })
	RegisterBody(KindGetCatalog, false, func() Body { return &GetCatalogReq{} })
	RegisterBody(KindPing, false, func() Body { return &PingReq{} })
	RegisterBody(KindReadCopy, false, func() Body { return &ReadCopyReq{} })
	RegisterBody(KindReadCopy, true, func() Body { return &ReadCopyResp{} })
	RegisterBody(KindPreWrite, false, func() Body { return &PreWriteReq{} })
	RegisterBody(KindPreWrite, true, func() Body { return &PreWriteResp{} })
	RegisterBody(KindReleaseTx, false, func() Body { return &ReleaseTxReq{} })
	RegisterBody(KindPrepare, false, func() Body { return &PrepareReq{} })
	RegisterBody(KindVote, true, func() Body { return &VoteResp{} })
	RegisterBody(KindPreCommit, false, func() Body { return &PreCommitReq{} })
	RegisterBody(KindAck, true, func() Body { return &AckMsg{} })
	RegisterBody(KindDecision, false, func() Body { return &DecisionMsg{} })
	RegisterBody(KindDecision, true, func() Body { return &DecisionResp{} })
	RegisterBody(KindDecisionReq, false, func() Body { return &DecisionReq{} })
	RegisterBody(KindEndTx, false, func() Body { return &EndTxMsg{} })
	RegisterBody(KindGetEpoch, false, func() Body { return &GetEpochReq{} })
	RegisterBody(KindGetEpoch, true, func() Body { return &EpochResp{} })
	RegisterBody(KindTermState, false, func() Body { return &TermStateReq{} })
	RegisterBody(KindTermState, true, func() Body { return &TermStateResp{} })
	RegisterBody(KindTermQuery, false, func() Body { return &TermQueryReq{} })
	RegisterBody(KindTermQuery, true, func() Body { return &TermQueryResp{} })
	RegisterBody(KindTermPreDecide, false, func() Body { return &TermPreDecideReq{} })
	RegisterBody(KindTermPreDecide, true, func() Body { return &TermPreDecideResp{} })
	RegisterBody(KindSubmitTx, false, func() Body { return &SubmitTxReq{} })
	RegisterBody(KindSubmitTx, true, func() Body { return &SubmitTxResp{} })
	RegisterBody(KindGetStats, false, func() Body { return &PingReq{} })
	RegisterBody(KindResetStats, false, func() Body { return &PingReq{} })
	RegisterBody(KindGetHistory, false, func() Body { return &PingReq{} })
	RegisterBody(KindCodecHello, false, func() Body { return &HelloBody{} })
}
