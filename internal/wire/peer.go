package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// ErrClosed is returned by Peer operations after Close.
var ErrClosed = errors.New("wire: peer closed")

// ServeFunc handles one inbound request and returns the response kind and
// body. Returning an error sends a KindError reply carrying the error's
// abort cause (if any) to the caller. ServeFunc runs on transport
// goroutines and must be safe for concurrent use.
type ServeFunc func(from model.SiteID, kind MsgKind, payload []byte) (MsgKind, any, error)

// Peer layers request/response RPC over a Network endpoint. Each Rainbow
// node (name server, site, workload driver, monitor) owns one Peer.
//
// Outbound: Call sends a request and blocks for the correlated reply; Cast
// sends one-way. Inbound: requests are dispatched to the ServeFunc and the
// returned body is sent back as a reply.
type Peer struct {
	ep    Endpoint
	serve ServeFunc

	corr    atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan *Envelope
	closed  bool
}

// NewPeer attaches id to the network with the given request handler.
// serve may be nil for pure-client peers (inbound requests then get a
// generic error reply).
func NewPeer(net Network, id model.SiteID, serve ServeFunc) (*Peer, error) {
	p := &Peer{serve: serve, pending: make(map[uint64]chan *Envelope)}
	ep, err := net.Attach(id, p.handle)
	if err != nil {
		return nil, err
	}
	p.ep = ep
	return p, nil
}

// ID returns the peer's network address.
func (p *Peer) ID() model.SiteID { return p.ep.ID() }

// Close detaches the peer and fails all pending calls.
func (p *Peer) Close() error {
	p.mu.Lock()
	p.closed = true
	for corr, ch := range p.pending {
		close(ch)
		delete(p.pending, corr)
	}
	p.mu.Unlock()
	return p.ep.Close()
}

// Call sends a request to `to` and blocks until the reply arrives, ctx is
// done, or the peer closes. The reply payload is decoded into respBody when
// respBody is non-nil. A KindError reply is converted back into the error
// it carries (preserving abort causes).
func (p *Peer) Call(ctx context.Context, to model.SiteID, kind MsgKind, body, respBody any) error {
	payload, err := Marshal(body)
	if err != nil {
		return err
	}
	corr := p.corr.Add(1)
	ch := make(chan *Envelope, 1)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending[corr] = ch
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		delete(p.pending, corr)
		p.mu.Unlock()
	}()

	env := &Envelope{From: p.ep.ID(), To: to, Kind: kind, Corr: corr, Payload: payload}
	if err := p.ep.Send(ctx, env); err != nil {
		return err
	}

	select {
	case <-ctx.Done():
		return ctx.Err()
	case reply, ok := <-ch:
		if !ok {
			return ErrClosed
		}
		if reply.Kind == KindError {
			var eb ErrorBody
			if err := Unmarshal(reply.Payload, &eb); err != nil {
				return err
			}
			return eb.Err()
		}
		if respBody != nil {
			return Unmarshal(reply.Payload, respBody)
		}
		return nil
	}
}

// Cast sends a one-way message with no reply expected.
func (p *Peer) Cast(ctx context.Context, to model.SiteID, kind MsgKind, body any) error {
	payload, err := Marshal(body)
	if err != nil {
		return err
	}
	return p.ep.Send(ctx, &Envelope{From: p.ep.ID(), To: to, Kind: kind, Payload: payload})
}

// handle is the transport-facing inbound handler.
func (p *Peer) handle(env *Envelope) {
	if env.Reply {
		p.mu.Lock()
		ch, ok := p.pending[env.Corr]
		if ok {
			delete(p.pending, env.Corr)
		}
		p.mu.Unlock()
		if ok {
			ch <- env
		}
		return // late/duplicate replies are dropped
	}

	if env.Corr == 0 {
		// One-way cast: dispatch, discard result.
		if p.serve != nil {
			p.serve(env.From, env.Kind, env.Payload) //nolint:errcheck
		}
		return
	}

	var (
		kind MsgKind
		body any
		err  error
	)
	if p.serve == nil {
		err = fmt.Errorf("node %s does not serve requests", p.ep.ID())
	} else {
		kind, body, err = p.serve(env.From, env.Kind, env.Payload)
	}
	if err != nil {
		kind = KindError
		body = ErrorBody{Cause: model.CauseOf(err), Reason: err.Error()}
		if model.CauseOf(err) == model.AbortClient {
			// Not a protocol abort; keep cause None so Err() re-creates a
			// generic error rather than a spurious client abort.
			body = ErrorBody{Cause: model.AbortNone, Reason: err.Error()}
		}
	}
	payload, merr := Marshal(body)
	if merr != nil {
		payload, _ = Marshal(ErrorBody{Reason: merr.Error()})
		kind = KindError
	}
	reply := &Envelope{
		From: p.ep.ID(), To: env.From, Kind: kind,
		Corr: env.Corr, Reply: true, Payload: payload,
	}
	// Replies are best-effort; the caller times out on loss.
	p.ep.Send(context.Background(), reply) //nolint:errcheck
}
