package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/trace"
)

// ErrClosed is returned by Peer operations after Close.
var ErrClosed = errors.New("wire: peer closed")

// ServeFunc handles one inbound request and returns the response kind and
// typed body. Returning an error sends a KindError reply carrying the
// error's abort cause (if any) to the caller. req is the encoded request
// payload plus the codec it arrived under; handlers decode it into the
// typed body for the kind (req.Decode). tid is the request envelope's
// trace ID (zero for the untraced common case); handlers doing traced work
// join the distributed trace under it. ServeFunc runs on transport
// goroutines and must be safe for concurrent use.
type ServeFunc func(from model.SiteID, tid trace.ID, kind MsgKind, req Payload) (MsgKind, Body, error)

// ReplyFunc sends the response for one asynchronously served request. It
// may be called from any goroutine, exactly once; err takes precedence over
// (kind, body) and is converted to a KindError reply exactly like a
// ServeFunc error.
type ReplyFunc func(kind MsgKind, body Body, err error)

// AsyncServeFunc is the pipelined alternative to ServeFunc: instead of
// computing the reply on the transport goroutine, the handler may take
// ownership of the request (returning true) and deliver the response later
// through reply — e.g. after the request has passed through a per-shard
// command pipeline. Returning false declines the request, which then falls
// through to the synchronous ServeFunc; an AsyncServeFunc that returned
// true must eventually call reply exactly once or the caller times out.
type AsyncServeFunc func(from model.SiteID, tid trace.ID, kind MsgKind, req Payload, reply ReplyFunc) bool

// Peer layers request/response RPC over a Network endpoint. Each Rainbow
// node (name server, site, workload driver, monitor) owns one Peer.
//
// Outbound: Call sends a request and blocks for the correlated reply; Cast
// sends one-way. Inbound: requests are dispatched to the ServeFunc and the
// returned body is sent back as a reply.
type Peer struct {
	ep    Endpoint
	serve ServeFunc
	// async, when set, gets first claim on inbound requests (see
	// AsyncServeFunc). Atomic because SetAsyncServe may race early inbound
	// traffic on an already-attached endpoint.
	async atomic.Pointer[AsyncServeFunc]

	corr    atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan *Envelope
	closed  bool
}

// NewPeer attaches id to the network with the given request handler.
// serve may be nil for pure-client peers (inbound requests then get a
// generic error reply). On transports that deliver decoded frames in
// slices the peer attaches its batch handler too, so reply correlation for
// a whole frame costs one pending-map critical section.
func NewPeer(net Network, id model.SiteID, serve ServeFunc) (*Peer, error) {
	p := &Peer{serve: serve, pending: make(map[uint64]chan *Envelope)}
	var (
		ep  Endpoint
		err error
	)
	if bn, ok := net.(BatchNetwork); ok {
		ep, err = bn.AttachBatch(id, p.handle, p.handleBatch)
	} else {
		ep, err = net.Attach(id, p.handle)
	}
	if err != nil {
		return nil, err
	}
	p.ep = ep
	return p, nil
}

// ID returns the peer's network address.
func (p *Peer) ID() model.SiteID { return p.ep.ID() }

// Close detaches the peer and fails all pending calls.
func (p *Peer) Close() error {
	p.mu.Lock()
	p.closed = true
	for corr, ch := range p.pending {
		close(ch)
		delete(p.pending, corr)
	}
	p.mu.Unlock()
	return p.ep.Close()
}

// Call sends a request to `to` and blocks until the reply arrives, ctx is
// done, or the peer closes. The reply payload is decoded into respBody when
// respBody is non-nil. A KindError reply is converted back into the error
// it carries (preserving abort causes). The request body travels typed: the
// transport encodes it at flush time with the connection's negotiated
// codec. See the generic Call helper for the declare-free typed form.
func (p *Peer) Call(ctx context.Context, to model.SiteID, kind MsgKind, body, respBody Body) error {
	corr := p.corr.Add(1)
	ch := make(chan *Envelope, 1)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending[corr] = ch
	p.mu.Unlock()

	defer func() {
		p.mu.Lock()
		delete(p.pending, corr)
		p.mu.Unlock()
	}()

	env := &Envelope{From: p.ep.ID(), To: to, Kind: kind, Corr: corr, Body: body, Trace: uint64(trace.IDFromContext(ctx))}
	if err := p.ep.Send(ctx, env); err != nil {
		return err
	}

	select {
	case <-ctx.Done():
		return ctx.Err()
	case reply, ok := <-ch:
		if !ok {
			return ErrClosed
		}
		if reply.Kind == KindError {
			var eb ErrorBody
			if err := (Payload{Codec: reply.Codec, Bytes: reply.Payload}).Decode(&eb); err != nil {
				return err
			}
			return eb.Err()
		}
		if respBody != nil {
			return (Payload{Codec: reply.Codec, Bytes: reply.Payload}).Decode(respBody)
		}
		return nil
	}
}

// Call sends req and decodes the typed response, constructing it for the
// caller — the generic replacement for declare-a-zero-value-and-pass
// boilerplate around Peer.Call. Resp is the response body type (named
// explicitly at the call site; the pointer-receiver Body implementation is
// inferred). kind stays explicit because several kinds share body types.
func Call[Resp any, P interface {
	*Resp
	Body
}](ctx context.Context, p *Peer, to model.SiteID, kind MsgKind, req Body) (*Resp, error) {
	resp := new(Resp)
	if err := p.Call(ctx, to, kind, req, P(resp)); err != nil {
		return nil, err
	}
	return resp, nil
}

// Cast sends a one-way message with no reply expected.
func (p *Peer) Cast(ctx context.Context, to model.SiteID, kind MsgKind, body Body) error {
	return p.ep.Send(ctx, &Envelope{From: p.ep.ID(), To: to, Kind: kind, Body: body, Trace: uint64(trace.IDFromContext(ctx))})
}

// SetAsyncServe installs the pipelined inbound handler (see
// AsyncServeFunc). Passing nil reverts to synchronous-only serving.
func (p *Peer) SetAsyncServe(f AsyncServeFunc) {
	if f == nil {
		p.async.Store(nil)
		return
	}
	p.async.Store(&f)
}

// handle is the transport-facing inbound handler. It may be called from a
// per-connection read loop (tcpnet), so only non-blocking work runs inline:
// reply correlation is a map send, and the async path's claim is a decode
// plus a queue submit. A synchronous serve can block arbitrarily long (CC
// admission waits up to the lock timeout, prepares force the WAL), so it
// gets its own goroutine — otherwise one blocked request head-of-line
// blocks every envelope behind it on the same connection.
func (p *Peer) handle(env *Envelope) {
	if env.Reply {
		p.mu.Lock()
		ch, ok := p.pending[env.Corr]
		if ok {
			delete(p.pending, env.Corr)
		}
		p.mu.Unlock()
		if ok {
			ch <- env
		}
		return // late/duplicate replies are dropped
	}

	if env.Corr == 0 {
		// One-way cast: dispatch, discard result. Casts run the same
		// ServeFunc, so they may block just like requests.
		if p.serve != nil {
			go p.serve(env.From, trace.ID(env.Trace), env.Kind, Payload{Codec: env.Codec, Bytes: env.Payload}) //nolint:errcheck
		}
		return
	}

	if af := p.async.Load(); af != nil {
		from, corr, tid := env.From, env.Corr, env.Trace
		if (*af)(env.From, trace.ID(env.Trace), env.Kind, Payload{Codec: env.Codec, Bytes: env.Payload}, func(kind MsgKind, body Body, err error) {
			p.sendReply(from, corr, tid, kind, body, err)
		}) {
			return // the pipeline owns the reply now
		}
	}

	go p.serveSync(env)
}

// serveSync runs the blocking ServeFunc for one request and sends its
// reply; always on its own goroutine (see handle).
func (p *Peer) serveSync(env *Envelope) {
	var (
		kind MsgKind
		body Body
		err  error
	)
	if p.serve == nil {
		err = fmt.Errorf("node %s does not serve requests", p.ep.ID())
	} else {
		kind, body, err = p.serve(env.From, trace.ID(env.Trace), env.Kind, Payload{Codec: env.Codec, Bytes: env.Payload})
	}
	p.sendReply(env.From, env.Corr, env.Trace, kind, body, err)
}

// handleBatch dispatches one decoded wire frame: all replies resolve in a
// single pending-map critical section (the frame-level batching win on the
// caller side of coalesced RPC fan-ins), then requests dispatch through the
// normal per-envelope path.
func (p *Peer) handleBatch(envs []*Envelope) {
	var requests []*Envelope
	p.mu.Lock()
	for _, env := range envs {
		if !env.Reply {
			requests = append(requests, env)
			continue
		}
		if ch, ok := p.pending[env.Corr]; ok {
			delete(p.pending, env.Corr)
			ch <- env // cap-1 buffered and only the map winner sends: never blocks
		}
	}
	p.mu.Unlock()
	for _, env := range requests {
		p.handle(env)
	}
}

// sendReply sends one response envelope; shared by the synchronous serve
// path and the async ReplyFunc closures. An error is converted to a
// KindError reply preserving its abort cause. The request's trace ID is
// echoed so the reply's transport hops are traceable too. The typed body
// rides the envelope; the transport encodes it at flush time.
func (p *Peer) sendReply(to model.SiteID, corr, tid uint64, kind MsgKind, body Body, err error) {
	if err != nil {
		kind = KindError
		cause := model.CauseOf(err)
		if cause == model.AbortClient {
			// Not a protocol abort; keep cause None so Err() re-creates a
			// generic error rather than a spurious client abort.
			cause = model.AbortNone
		}
		body = &ErrorBody{Cause: cause, Reason: err.Error()}
	}
	reply := &Envelope{
		From: p.ep.ID(), To: to, Kind: kind,
		Corr: corr, Reply: true, Trace: tid, Body: body,
	}
	// Replies are best-effort; the caller times out on loss.
	p.ep.Send(context.Background(), reply) //nolint:errcheck
}
