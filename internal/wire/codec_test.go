package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/wire"
)

// filledBodies returns one representatively filled instance of every wire
// body type: every field set, every slice/map non-empty, so a dropped field
// in a hand-rolled encoder fails the round trip. The zero values ride along
// separately in TestBodyRoundTrip.
func filledBodies() []wire.Body {
	tx := model.TxID{Site: "S1", Seq: 42}
	ts := model.Timestamp{Time: 7_000_000, Site: "S2"}
	ballot := model.Ballot{N: 9, Site: "S3"}
	return []wire.Body{
		&wire.ErrorBody{Cause: model.AbortCC, Reason: "lock timeout on x"},
		&wire.OKBody{},
		&wire.RegisterSiteReq{Site: "S9", Addr: "127.0.0.1:7777"},
		&wire.GetCatalogReq{},
		&wire.PingReq{},
		&wire.ReadCopyReq{Tx: tx, TS: ts, Item: "item-x"},
		&wire.ReadCopyResp{Value: -12, Version: 3, Clock: 99, Incarnation: 4},
		&wire.PreWriteReq{Tx: tx, TS: ts, Item: "item-y", Value: 1 << 40, Add: true},
		&wire.PreWriteResp{Version: 8, Clock: 100, Incarnation: 5},
		&wire.ReleaseTxReq{Tx: tx},
		&wire.PrepareReq{
			Tx: tx, TS: ts, Coordinator: "S1",
			Writes: []model.WriteRecord{
				{Item: "a", Value: 1, Version: 2},
				{Item: "b", Value: -3, Version: 4, Delta: true},
			},
			Participants:  []model.SiteID{"S1", "S2", "S3"},
			ThreePhase:    true,
			NoReadOnlyOpt: true,
			Epoch:         6,
			Voters:        []model.SiteID{"S1", "S3"},
			Incarnation:   2,
		},
		&wire.VoteResp{Yes: true, ReadOnly: true, Reason: "read-only participant"},
		&wire.PreCommitReq{Tx: tx},
		&wire.DecisionMsg{Tx: tx, Commit: true},
		&wire.AckMsg{Tx: tx},
		&wire.EndTxMsg{Tx: tx},
		&wire.GetEpochReq{},
		&wire.EpochResp{Epoch: 11},
		&wire.DecisionReq{Tx: tx, ThreePhase: true},
		&wire.DecisionResp{Known: true, Commit: true},
		&wire.TermStateReq{Tx: tx},
		&wire.TermStateResp{State: 3},
		&wire.TermQueryReq{Tx: tx, Ballot: ballot},
		&wire.TermQueryResp{Accepted: true, EA: ballot, State: 2, EB: model.Ballot{N: 8, Site: "S1"}, Decided: true, Commit: true},
		&wire.TermPreDecideReq{Tx: tx, Ballot: ballot, Commit: true},
		&wire.TermPreDecideResp{Accepted: true, Decided: true, Commit: true},
		&wire.SubmitTxReq{Ops: []model.Op{
			{Kind: model.OpRead, Item: "r"},
			{Kind: model.OpWrite, Item: "w", Value: -77},
			{Kind: model.OpAdd, Item: "a", Value: 13},
		}},
		&wire.SubmitTxResp{Outcome: model.Outcome{
			Tx: tx, Committed: true, Cause: model.AbortNone, LatencyNS: 123456,
			Reads:    map[model.ItemID]int64{"r1": 5, "r2": -6},
			HomeSite: "S1",
		}},
		&wire.HelloBody{Codec: wire.CodecBinary},
	}
}

// TestBodyRoundTrip round-trips every body — filled and zero — through the
// binary codec (must reproduce the value exactly) and cross-checks binary
// against gob: both codecs decoding the same source value must agree, the
// semantic-equality contract mixed-codec clusters rely on.
func TestBodyRoundTrip(t *testing.T) {
	bodies := filledBodies()
	for _, src := range filledBodies() {
		// Zero-value variant of the same concrete type.
		zero := reflect.New(reflect.TypeOf(src).Elem()).Interface().(wire.Body)
		bodies = append(bodies, zero)
	}
	for _, src := range bodies {
		typ := reflect.TypeOf(src).Elem().Name()

		enc := src.AppendTo(nil)
		if len(enc) == 0 {
			t.Fatalf("%s: empty binary encoding", typ)
		}
		viaBinary := reflect.New(reflect.TypeOf(src).Elem()).Interface().(wire.Body)
		if err := viaBinary.DecodeFrom(enc); err != nil {
			t.Fatalf("%s: binary decode: %v", typ, err)
		}
		if !reflect.DeepEqual(src, viaBinary) {
			t.Errorf("%s: binary round trip mismatch:\n src: %+v\n got: %+v", typ, src, viaBinary)
		}

		gobBytes, err := wire.Marshal(src)
		if err != nil {
			t.Fatalf("%s: gob encode: %v", typ, err)
		}
		viaGob := reflect.New(reflect.TypeOf(src).Elem()).Interface().(wire.Body)
		if err := (wire.Payload{Codec: wire.CodecGob, Bytes: gobBytes}).Decode(viaGob); err != nil {
			t.Fatalf("%s: gob decode: %v", typ, err)
		}
		if !reflect.DeepEqual(viaBinary, viaGob) {
			t.Errorf("%s: binary and gob decode disagree:\n bin: %+v\n gob: %+v", typ, viaBinary, viaGob)
		}
	}
}

// TestBodyEncodingsAreCanonical re-encodes a decoded body and requires
// byte-identical output: decoders and encoders agree on one canonical form
// (sorted map keys, minimal uvarints), which the fuzzer leans on.
func TestBodyEncodingsAreCanonical(t *testing.T) {
	for _, src := range filledBodies() {
		typ := reflect.TypeOf(src).Elem().Name()
		enc := src.AppendTo(nil)
		dec := reflect.New(reflect.TypeOf(src).Elem()).Interface().(wire.Body)
		if err := dec.DecodeFrom(enc); err != nil {
			t.Fatalf("%s: decode: %v", typ, err)
		}
		if re := dec.AppendTo(nil); !bytes.Equal(enc, re) {
			t.Errorf("%s: re-encoding differs from original encoding", typ)
		}
	}
}

// TestDecodeTruncationsNeverPanic feeds every strict prefix of every valid
// encoding to the decoder: each must error or succeed, never panic, and
// never read past its input.
func TestDecodeTruncationsNeverPanic(t *testing.T) {
	for _, src := range filledBodies() {
		enc := src.AppendTo(nil)
		for cut := 0; cut < len(enc); cut++ {
			dec := reflect.New(reflect.TypeOf(src).Elem()).Interface().(wire.Body)
			_ = dec.DecodeFrom(enc[:cut]) //nolint:errcheck // must not panic; error expected
		}
	}
}

// TestNewBodyCoversEveryKind asserts the registry resolves a constructor
// for each (kind, reply) pair the round-trip table exercises.
func TestNewBodyCoversEveryKind(t *testing.T) {
	kinds := wire.RegisteredBodyKinds()
	if len(kinds) == 0 {
		t.Fatal("no registered body kinds")
	}
	for _, k := range kinds {
		body, ok := wire.NewBody(k.Kind, k.Reply)
		if !ok || body == nil {
			t.Errorf("NewBody(%v, %v) failed", k.Kind, k.Reply)
		}
	}
	if _, ok := wire.NewBody(wire.MsgKind(200), false); ok {
		t.Error("NewBody invented a constructor for an unknown kind")
	}
}

// FuzzBodyDecode drives arbitrary bytes through every registered body
// decoder. Invariants: never panic; on success, re-encoding the decoded
// value yields a canonical form that survives its own round trip.
func FuzzBodyDecode(f *testing.F) {
	kinds := wire.RegisteredBodyKinds()
	for i, src := range filledBodies() {
		f.Add(uint8(i), true, src.AppendTo(nil))
	}
	f.Add(uint8(0), false, []byte{})
	f.Add(uint8(3), false, []byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, sel uint8, reply bool, payload []byte) {
		k := kinds[int(sel)%len(kinds)]
		body, ok := wire.NewBody(k.Kind, k.Reply)
		if !ok {
			t.Fatalf("registered kind %v/%v has no constructor", k.Kind, k.Reply)
		}
		if err := body.DecodeFrom(payload); err != nil {
			return
		}
		canonical := body.AppendTo(nil)
		again, _ := wire.NewBody(k.Kind, k.Reply)
		if err := again.DecodeFrom(canonical); err != nil {
			t.Fatalf("%T: canonical form failed to decode: %v", body, err)
		}
		if re := again.AppendTo(nil); !bytes.Equal(canonical, re) {
			t.Fatalf("%T: canonical form is not a fixed point", body)
		}
		_ = reply
	})
}
