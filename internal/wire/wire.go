// Package wire defines Rainbow's wire protocol: typed message envelopes,
// the body codecs (a compact hand-rolled binary codec and the legacy gob
// fallback — see codec.go), the transport abstraction implemented by both
// the simulated network (internal/simnet) and real TCP (internal/tcpnet),
// and a request/response RPC peer with correlation IDs.
//
// Every message body — even on the in-process simulated network — is
// encoded into Envelope.Payload before delivery. This gives three
// properties the paper depends on: (1) message sizes are real, so the
// "total number of messages generated per time unit" and byte-traffic
// statistics are meaningful; (2) no accidental pointer sharing between
// sites; (3) the simulated and TCP transports carry byte-identical
// traffic. Senders attach the typed Body and let the transport encode it
// at flush time with the codec the connection negotiated (binary between
// current peers, gob toward old ones).
package wire

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"repro/internal/model"
)

// MsgKind identifies the body type carried by an envelope. The receiver
// decodes the payload according to the kind.
type MsgKind uint16

// Message kinds, grouped by subsystem.
const (
	// Generic.
	KindError MsgKind = iota + 1
	KindOK

	// Name server (NSlet traffic).
	KindRegisterSite
	KindGetCatalog
	KindSetCatalog
	KindPing

	// Data access through RCP/CCP (Section 2.1: copies are read or
	// pre-written through the CCP).
	KindReadCopy
	KindPreWrite
	KindReleaseTx

	// Atomic commit protocols.
	KindPrepare
	KindVote
	KindDecision
	KindAck
	KindDecisionReq
	KindPreCommit // 3PC phase 2
	KindTermState // cooperative termination: participant state query

	// Progress monitor (PMlet traffic).
	KindGetStats
	KindResetStats
	KindGetHistory

	// Workload generator (WLGlet traffic).
	KindSubmitTx

	// Atomic commit protocols, continued. Appended after the original
	// block so existing kinds keep their wire numbers (mixed-version
	// clusters would otherwise misdispatch every kind after the insert).
	KindEndTx // cohort fully acknowledged: retire the decision entry

	// Online catalog reconfiguration (appended for the same wire-number
	// stability reason).
	KindGetEpoch    // lightweight catalog-version probe (site poll)
	KindCatalogPush // name server -> site: a new catalog version exists

	// Quorum-based (E3PC) 3PC termination (appended for wire-number
	// stability).
	KindTermQuery     // election: promise a ballot, report state + eb
	KindTermPreDecide // elected initiator's pre-decision broadcast

	// Codec negotiation (appended for wire-number stability): the first
	// envelope of a batched connection direction announces the body codec
	// the sender accepts (see HelloBody). Old peers drop the unknown kind.
	KindCodecHello
)

var kindNames = map[MsgKind]string{
	KindError:         "Error",
	KindOK:            "OK",
	KindRegisterSite:  "RegisterSite",
	KindGetCatalog:    "GetCatalog",
	KindSetCatalog:    "SetCatalog",
	KindPing:          "Ping",
	KindReadCopy:      "ReadCopy",
	KindPreWrite:      "PreWrite",
	KindReleaseTx:     "ReleaseTx",
	KindPrepare:       "Prepare",
	KindVote:          "Vote",
	KindDecision:      "Decision",
	KindAck:           "Ack",
	KindDecisionReq:   "DecisionReq",
	KindPreCommit:     "PreCommit",
	KindTermState:     "TermState",
	KindEndTx:         "EndTx",
	KindGetEpoch:      "GetEpoch",
	KindCatalogPush:   "CatalogPush",
	KindTermQuery:     "TermQuery",
	KindTermPreDecide: "TermPreDecide",
	KindGetStats:      "GetStats",
	KindResetStats:    "ResetStats",
	KindGetHistory:    "GetHistory",
	KindSubmitTx:      "SubmitTx",
	KindCodecHello:    "CodecHello",
}

// String names the kind for logs and traces.
func (k MsgKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("MsgKind(%d)", uint16(k))
}

// Envelope is the unit of transfer between Rainbow nodes.
type Envelope struct {
	From, To model.SiteID
	Kind     MsgKind
	// Corr correlates a reply with its request. Zero for one-way casts.
	Corr uint64
	// Reply marks response envelopes.
	Reply bool
	// Trace is the sampled-transaction trace ID riding this request
	// (trace.ID; zero — the overwhelmingly common case — means untraced
	// and costs nothing on the wire: gob omits zero fields and the batched
	// framing spends one flag bit). Receivers record their fragment of the
	// distributed trace under this ID.
	Trace uint64
	// Payload is the encoded body (Codec says which encoding); its type is
	// determined by Kind. Local senders leave it nil and attach Body
	// instead — the transport encodes at flush time with the codec the
	// connection negotiated.
	Payload []byte
	// Body is the typed body before encoding. It never crosses the wire:
	// transports flatten it into Payload (Flatten) and must nil it first on
	// paths that gob-encode whole envelopes, so legacy streams stay
	// byte-identical to pre-codec senders (gob omits nil/zero fields).
	Body Body
	// Codec identifies Payload's encoding. Zero (CodecGob) matches every
	// envelope from pre-codec peers; the batched framing carries it in a
	// flag bit, and legacy gob connections only ever see gob payloads.
	Codec CodecID
}

// Size returns the approximate on-wire size of the envelope in bytes,
// counting addressing and header overhead plus the payload. Used by the
// traffic statistics.
func (e *Envelope) Size() int {
	return len(e.From) + len(e.To) + 2 /*kind*/ + 8 /*corr*/ + 1 /*reply*/ + len(e.Payload)
}

// Flatten encodes Body into Payload with the given codec and nils Body, so
// the envelope is safe to gob-encode whole (legacy framing) or deliver
// across site boundaries (no pointer sharing). Envelopes without a Body —
// pre-encoded or raw-payload ones — are left untouched.
func (e *Envelope) Flatten(codec CodecID) error {
	if e.Body == nil {
		return nil
	}
	if codec == CodecBinary {
		e.Payload = e.Body.AppendTo(nil)
	} else {
		p, err := Marshal(e.Body)
		if err != nil {
			return err
		}
		e.Payload = p
	}
	e.Codec = codec
	e.Body = nil
	return nil
}

// Reencode transcodes an already-flattened Payload to the given codec via
// the body registry — the path for a binary-encoded envelope that must
// leave on a gob-only connection. Envelopes already in the target codec
// (or with nothing to transcode) are left untouched.
func (e *Envelope) Reencode(codec CodecID) error {
	if e.Codec == codec || len(e.Payload) == 0 {
		return nil
	}
	body, ok := NewBody(e.Kind, e.Reply)
	if !ok {
		return fmt.Errorf("wire: no registered body for %v reply=%v", e.Kind, e.Reply)
	}
	if err := (Payload{Codec: e.Codec, Bytes: e.Payload}).Decode(body); err != nil {
		return err
	}
	e.Body = body
	return e.Flatten(codec)
}

// Marshal gob-encodes a message body into payload bytes — the negotiation
// fallback codec. The encode buffer is pooled; the per-message encoder
// (and its type-info resend) is inherent to gob and is exactly what the
// binary codec retires from the hot path.
func Marshal(body any) ([]byte, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(body); err != nil {
		gobBufPool.Put(buf)
		return nil, fmt.Errorf("wire: marshal %T: %w", body, err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	gobBufPool.Put(buf)
	return out, nil
}

// Unmarshal gob-decodes payload bytes into the body pointed to by out.
func Unmarshal(payload []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("wire: unmarshal %T: %w", out, err)
	}
	return nil
}

// Handler consumes inbound envelopes. Transports invoke it on their own
// goroutines; handlers must be safe for concurrent use.
type Handler func(env *Envelope)

// BatchHandler consumes the envelopes of one decoded wire frame as a
// slice, letting the receiver amortize per-delivery work (e.g. reply
// correlation) over the batch. Like Handler it runs on transport
// goroutines and must be safe for concurrent use.
type BatchHandler func(envs []*Envelope)

// BatchNetwork is implemented by transports whose receive side can deliver
// decoded envelopes in slices — one slice per multi-envelope wire frame.
// Peers attach through it when available; connections (or transports) that
// only carry single envelopes keep using the plain Handler.
type BatchNetwork interface {
	Network
	AttachBatch(id model.SiteID, h Handler, bh BatchHandler) (Endpoint, error)
}

// Endpoint is one node's attachment to a network.
type Endpoint interface {
	// ID returns the node's address on the network.
	ID() model.SiteID
	// Send delivers env to env.To. Delivery is asynchronous and unreliable
	// in the same sense as the underlying network: an error indicates only
	// local failures (node detached, unknown destination); silent loss is
	// possible on lossy networks.
	Send(ctx context.Context, env *Envelope) error
	// Close detaches the node. Subsequent Sends fail.
	Close() error
}

// Network attaches nodes. Implemented by simnet.Net and tcpnet.Net.
type Network interface {
	// Attach registers a node and its inbound handler, returning its
	// endpoint. Attaching an already-attached id is an error.
	Attach(id model.SiteID, h Handler) (Endpoint, error)
}

// ---- Message bodies ----
//
// One struct per message kind. All fields exported for gob.

// ErrorBody reports a remote failure, preserving the abort cause across the
// wire so coordinators can classify aborts per protocol.
type ErrorBody struct {
	Cause  model.AbortCause
	Reason string
}

// Err converts the body back into an error: an *model.AbortError when a
// protocol abort crossed the wire, a generic error otherwise.
func (b *ErrorBody) Err() error {
	if b.Cause == model.AbortNone {
		return fmt.Errorf("remote error: %s", b.Reason)
	}
	return &model.AbortError{Cause: b.Cause, Reason: b.Reason}
}

// OKBody is the empty success response.
type OKBody struct{}

// RegisterSiteReq registers a site with the name server.
type RegisterSiteReq struct {
	Site model.SiteID
	Addr string // transport-specific endpoint specification
}

// GetCatalogReq asks the name server for the current catalog.
type GetCatalogReq struct{}

// PingReq checks liveness; the monitor uses it for load-balance probing.
type PingReq struct{}

// ReadCopyReq asks a site to read its local copy of Item on behalf of Tx,
// passing through the site's CCP. The response is ReadCopyResp.
type ReadCopyReq struct {
	Tx   model.TxID
	TS   model.Timestamp
	Item model.ItemID
}

// ReadCopyResp returns the local copy's current value and version. Clock
// carries the serving site's Lamport time so the coordinator can witness it
// (clock gossip keeps lagging sites from issuing stale timestamps that
// timestamp-ordering CCPs would reject).
type ReadCopyResp struct {
	Value   int64
	Version model.Version
	Clock   uint64
	// Incarnation is the serving site's incarnation number (bumped on every
	// stack rebuild). The home site records it in the transaction's session
	// and echoes it in the prepare, so a site that crashed and recovered
	// between this operation and the prepare rejects the prepare exactly —
	// its CC protection for the operation died with the old incarnation.
	Incarnation uint64
}

// PreWriteReq asks a site to pre-write its local copy of Item: pass through
// the CCP, buffer the intent, and return the copy's current version number
// (Section 2.1: copies are "pre-written (returning their current version
// number) through CCP").
type PreWriteReq struct {
	Tx    model.TxID
	TS    model.Timestamp
	Item  model.ItemID
	Value int64
	// Add marks a commutative blind-add pre-write: Value is a delta merged
	// into the copy at commit, and the CCP may admit it without mutual
	// exclusion (hot-item split execution).
	Add bool
}

// PreWriteResp returns the current (pre-write) version of the copy, plus
// the serving site's Lamport time (see ReadCopyResp.Clock).
type PreWriteResp struct {
	Version model.Version
	Clock   uint64
	// Incarnation is the serving site's incarnation number — see
	// ReadCopyResp.Incarnation.
	Incarnation uint64
}

// ReleaseTxReq tells a participant to discard all CC state for an aborted
// transaction that never reached the commit protocol.
type ReleaseTxReq struct {
	Tx model.TxID
}

// PrepareReq is 2PC/3PC phase 1: the coordinator ships each participant its
// final write records (with install versions) and asks for a vote.
type PrepareReq struct {
	Tx          model.TxID
	TS          model.Timestamp
	Coordinator model.SiteID
	// Writes are the records this participant must install on commit.
	Writes []model.WriteRecord
	// Participants lists all cohort members, enabling cooperative
	// termination when the coordinator fails.
	Participants []model.SiteID
	// ThreePhase selects the 3PC state machine on the participant.
	ThreePhase bool
	// NoReadOnlyOpt disables the read-only participant optimization for
	// this transaction (ablation knob).
	NoReadOnlyOpt bool
	// Epoch is the catalog epoch the transaction began under. A
	// participant whose stack was rebuilt live at a newer epoch votes no:
	// the rebuild discarded CC state exactly like a crash, so a pre-bump
	// transaction's locks may be gone and preparing it could serialize two
	// conflicting writers onto one version (the epoch fence).
	Epoch uint64
	// Voters is the 3PC termination electorate: the cohort members that
	// hold writes (all participants when the read-only optimization is
	// off). Quorum termination counts majorities over this fixed set;
	// read-only participants release at vote time and hold no termination
	// state, so counting them would let a quorum form that cannot
	// intersect the pre-commit quorum. Empty for 2PC.
	Voters []model.SiteID
	// Incarnation is the target site's incarnation number observed when
	// this transaction operated there (first copy operation wins). The
	// site rejects the prepare when its current incarnation differs: a
	// crash recovery in between discarded the CC protection this prepare
	// relies on. Zero means unknown (no copy op recorded one) and skips
	// the check — the intent validation below still applies.
	Incarnation uint64
}

// VoteResp is the participant's vote. ReadOnly is the presumed-abort
// read-only optimization: a participant holding no writes for the
// transaction votes "read", releases its CC state immediately, and is
// excluded from phase 2.
type VoteResp struct {
	Yes      bool
	ReadOnly bool
	Reason   string
}

// PreCommitReq is 3PC phase 2 (the "prepared to commit" broadcast).
type PreCommitReq struct {
	Tx model.TxID
}

// DecisionMsg carries the final commit/abort decision.
type DecisionMsg struct {
	Tx     model.TxID
	Commit bool
}

// AckMsg acknowledges a decision or pre-commit.
type AckMsg struct {
	Tx model.TxID
}

// EndTxMsg tells a participant the whole cohort acknowledged the decision
// (the coordinator logged its end record): no one will ever ask for the
// outcome again, so the participant may retire its decision-table entry.
// Delivery is best-effort — a lost message only delays retirement until the
// participant's next restart cannot even observe it (the entry merely
// lingers, costing snapshot bytes, never correctness).
type EndTxMsg struct {
	Tx model.TxID
}

// GetEpochReq asks the name server for the current catalog epoch only — the
// cheap staleness probe behind each site's catalog-poll loop (the full
// catalog is fetched only when the epoch moved).
type GetEpochReq struct{}

// EpochResp answers a GetEpochReq.
type EpochResp struct {
	Epoch uint64
}

// DecisionReq asks the coordinator (or a peer, during cooperative
// termination) for the outcome of an in-doubt transaction. ThreePhase
// marks a query about a 3PC transaction: the answerer must then never
// apply presumed abort — a 3PC cohort can commit by quorum termination
// without its coordinator, so an answerer with no record (a recovered
// coordinator that never logged, a stray peer) answers "unknown" instead
// of "abort". 2PC queries keep presumed abort.
type DecisionReq struct {
	Tx         model.TxID
	ThreePhase bool
}

// DecisionResp answers a DecisionReq. Known=false means the answerer does
// not know the outcome either.
type DecisionResp struct {
	Known  bool
	Commit bool
}

// TermStateReq asks a cohort member for its 3PC state during termination.
type TermStateReq struct {
	Tx model.TxID
}

// TermStateResp reports the member's commit-protocol state.
type TermStateResp struct {
	State uint8 // acp.TermState values
}

// TermQueryReq is quorum termination's election message: the initiator
// asks a cohort member to promise Ballot and report its termination state.
// A member with live state promises only ballots above its current "ea"
// (and forces the promise before answering).
type TermQueryReq struct {
	Tx     model.TxID
	Ballot model.Ballot
}

// TermQueryResp answers a TermQueryReq.
type TermQueryResp struct {
	// Accepted reports whether the member promised the ballot. EA returns
	// the member's current promise either way, so a rejected initiator can
	// retry with a higher attempt number.
	Accepted bool
	EA       model.Ballot
	// State is the member's commit-protocol state (acp.TermState values).
	// A member with NO trace of the transaction never answers Accepted:
	// it unilaterally decides abort — durably — and replies Decided (its
	// yes vote was never cast, so no commit can exist anywhere, and the
	// logged abort fences a late prepare from casting it retroactively).
	// EB is the ballot of the attempt the member last accepted a
	// pre-decision under.
	State uint8
	EB    model.Ballot
	// Decided/Commit short-circuit the election: the member already knows
	// the outcome.
	Decided bool
	Commit  bool
}

// TermPreDecideReq is the elected initiator's pre-decision broadcast:
// members that still honor Ballot force the pre-decision (their new "eb")
// and acknowledge; once a quorum has accepted, the initiator may decide.
type TermPreDecideReq struct {
	Tx     model.TxID
	Ballot model.Ballot
	Commit bool
}

// TermPreDecideResp answers a TermPreDecideReq.
type TermPreDecideResp struct {
	Accepted bool
	// Decided/Commit report an already-known outcome (the pre-decision is
	// then moot and the initiator adopts the decision instead).
	Decided bool
	Commit  bool
}

// SubmitTxReq submits a transaction for execution at a home site. The site
// assigns the TxID.
type SubmitTxReq struct {
	Ops []model.Op
}

// SubmitTxResp returns the outcome of a synchronously executed transaction.
type SubmitTxResp struct {
	Outcome model.Outcome
}

func init() {
	// Register bodies so gob handles them through any-typed surfaces too.
	gob.Register(ErrorBody{})
	gob.Register(OKBody{})
	gob.Register(RegisterSiteReq{})
	gob.Register(GetCatalogReq{})
	gob.Register(PingReq{})
	gob.Register(ReadCopyReq{})
	gob.Register(ReadCopyResp{})
	gob.Register(PreWriteReq{})
	gob.Register(PreWriteResp{})
	gob.Register(ReleaseTxReq{})
	gob.Register(PrepareReq{})
	gob.Register(VoteResp{})
	gob.Register(PreCommitReq{})
	gob.Register(DecisionMsg{})
	gob.Register(AckMsg{})
	gob.Register(EndTxMsg{})
	gob.Register(GetEpochReq{})
	gob.Register(EpochResp{})
	gob.Register(DecisionReq{})
	gob.Register(DecisionResp{})
	gob.Register(TermStateReq{})
	gob.Register(TermStateResp{})
	gob.Register(TermQueryReq{})
	gob.Register(TermQueryResp{})
	gob.Register(TermPreDecideReq{})
	gob.Register(TermPreDecideResp{})
	gob.Register(SubmitTxReq{})
	gob.Register(SubmitTxResp{})
}
