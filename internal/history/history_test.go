package history

import (
	"testing"

	"repro/internal/model"
)

func tid(seq uint64) model.TxID { return model.TxID{Site: "S", Seq: seq} }

func TestRecorderOrdersEvents(t *testing.T) {
	r := NewRecorder("S1")
	r.Record(tid(1), model.OpRead, "x", 10, 0)
	r.Record(tid(2), model.OpWrite, "x", 20, 1)
	ev := r.Events()
	if len(ev) != 2 || ev[0].Seq >= ev[1].Seq {
		t.Errorf("events = %+v", ev)
	}
	if ev[0].Site != "S1" || ev[0].Item != "x" || ev[0].Value != 10 || ev[1].Version != 1 {
		t.Errorf("event = %+v", ev[0])
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset failed")
	}
}

func committed(ids ...model.TxID) map[model.TxID]bool {
	m := make(map[model.TxID]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestSerialHistoryAcyclic(t *testing.T) {
	r := NewRecorder("S1")
	// t1 fully before t2: each writes version n, reads what it should.
	r.Record(tid(1), model.OpRead, "x", 0, 0)
	r.Record(tid(1), model.OpWrite, "x", 1, 1)
	r.Record(tid(2), model.OpRead, "x", 1, 1)
	r.Record(tid(2), model.OpWrite, "x", 2, 2)
	if err := CheckSerializable(r.Events(), committed(tid(1), tid(2))); err != nil {
		t.Error(err)
	}
}

func TestLostUpdateCycleDetected(t *testing.T) {
	r := NewRecorder("S1")
	// Both read version 0, both install later versions: t1 → t2 via ww,
	// t2's read of v0 → rw → t1, giving a cycle.
	r.Record(tid(1), model.OpRead, "x", 0, 0)
	r.Record(tid(2), model.OpRead, "x", 0, 0)
	r.Record(tid(1), model.OpWrite, "x", 1, 1)
	r.Record(tid(2), model.OpWrite, "x", 2, 2)
	if err := CheckSerializable(r.Events(), committed(tid(1), tid(2))); err == nil {
		t.Error("lost-update cycle not detected")
	}
}

func TestAbortedTxIgnored(t *testing.T) {
	r := NewRecorder("S1")
	r.Record(tid(1), model.OpRead, "x", 0, 0)
	r.Record(tid(2), model.OpRead, "x", 0, 0)
	r.Record(tid(1), model.OpWrite, "x", 1, 1)
	r.Record(tid(2), model.OpWrite, "x", 2, 2)
	// Only t1 committed: the cycle involves an aborted tx and is irrelevant.
	if err := CheckSerializable(r.Events(), committed(tid(1))); err != nil {
		t.Error(err)
	}
}

func TestReadsDoNotConflict(t *testing.T) {
	r := NewRecorder("S1")
	r.Record(tid(1), model.OpRead, "x", 0, 0)
	r.Record(tid(2), model.OpRead, "x", 0, 0)
	g := BuildGraph(r.Events(), committed(tid(1), tid(2)))
	if len(g.Conflicts) != 0 {
		t.Errorf("read-read conflicts recorded: %v", g.Conflicts)
	}
}

func TestOldVersionReadIsSerializable(t *testing.T) {
	// The MVTSO pattern the wall-order checker would wrongly reject:
	// t1 installs version 1; t2 then reads version 0 (an old version) —
	// legitimate under multiversion TO, equivalent to serial t2, t1.
	r := NewRecorder("S1")
	r.Record(tid(1), model.OpWrite, "x", 10, 1)
	r.Record(tid(2), model.OpRead, "x", 0, 0) // after the write in wall time
	if err := CheckSerializable(r.Events(), committed(tid(1), tid(2))); err != nil {
		t.Errorf("old-version read rejected: %v", err)
	}
	// The rw anti-dependency edge t2 → t1 must exist.
	g := BuildGraph(r.Events(), committed(tid(1), tid(2)))
	if !g.Edges[tid(2)][tid(1)] {
		t.Error("rw edge reader→overwriter missing")
	}
}

func TestOldReadPlusReverseDependencyIsCycle(t *testing.T) {
	// t2 reads the version t1 overwrote (t2 → t1), but t2 also READS t1's
	// write on another item (t1 → t2): no serial order exists.
	r := NewRecorder("S1")
	r.Record(tid(1), model.OpWrite, "x", 10, 1)
	r.Record(tid(1), model.OpWrite, "y", 10, 1)
	r.Record(tid(2), model.OpRead, "x", 0, 0)  // before t1 on x
	r.Record(tid(2), model.OpRead, "y", 10, 1) // after t1 on y
	if err := CheckSerializable(r.Events(), committed(tid(1), tid(2))); err == nil {
		t.Error("mixed-version read cycle not detected")
	}
}

func TestDifferentCopiesIndependent(t *testing.T) {
	// Same item on different sites = different copies (replica consistency
	// across copies is the RCP's job, not the conflict graph's).
	r1 := NewRecorder("S1")
	r2 := NewRecorder("S2")
	r1.Record(tid(1), model.OpWrite, "x", 1, 1)
	r2.Record(tid(2), model.OpWrite, "x", 2, 1)
	g := BuildGraph(Merge(r1, r2), committed(tid(1), tid(2)))
	if len(g.Conflicts) != 0 {
		t.Errorf("cross-copy conflicts recorded: %v", g.Conflicts)
	}
}

func TestCrossSiteCycleDetected(t *testing.T) {
	// t1 before t2 on S1's copy of x, t2 before t1 on S2's copy of y.
	r1 := NewRecorder("S1")
	r2 := NewRecorder("S2")
	r1.Record(tid(1), model.OpWrite, "x", 1, 1)
	r1.Record(tid(2), model.OpWrite, "x", 2, 2)
	r2.Record(tid(2), model.OpWrite, "y", 2, 1)
	r2.Record(tid(1), model.OpWrite, "y", 1, 2)
	if err := CheckSerializable(Merge(r1, r2), committed(tid(1), tid(2))); err == nil {
		t.Error("cross-site cycle not detected")
	}
}

func TestThreeTxCycle(t *testing.T) {
	r := NewRecorder("S1")
	// t1→t2 on x, t2→t3 on y, t3→t1 on z (all ww).
	r.Record(tid(1), model.OpWrite, "x", 1, 1)
	r.Record(tid(2), model.OpWrite, "x", 2, 2)
	r.Record(tid(2), model.OpWrite, "y", 2, 1)
	r.Record(tid(3), model.OpWrite, "y", 3, 2)
	r.Record(tid(3), model.OpWrite, "z", 3, 1)
	r.Record(tid(1), model.OpWrite, "z", 1, 2)
	g := BuildGraph(r.Events(), committed(tid(1), tid(2), tid(3)))
	cycle := g.Cycle()
	if len(cycle) != 3 {
		t.Errorf("cycle = %v, want length 3", cycle)
	}
}

func TestWriteReadEdge(t *testing.T) {
	r := NewRecorder("S1")
	r.Record(tid(1), model.OpWrite, "x", 1, 1)
	r.Record(tid(2), model.OpRead, "x", 1, 1)
	g := BuildGraph(r.Events(), committed(tid(1), tid(2)))
	if !g.Edges[tid(1)][tid(2)] {
		t.Error("wr edge missing")
	}
	if g.Edges[tid(2)] != nil && g.Edges[tid(2)][tid(1)] {
		t.Error("reverse edge should not exist")
	}
}

func TestDuplicateVersionIsViolation(t *testing.T) {
	// Two committed transactions installing the same version on one copy is
	// the lost-write bug the serialized pre-write rule prevents; the checker
	// must flag it even without a cycle.
	r := NewRecorder("S1")
	r.Record(tid(1), model.OpWrite, "x", 1, 1)
	r.Record(tid(2), model.OpWrite, "x", 2, 1)
	if err := CheckSerializable(r.Events(), committed(tid(1), tid(2))); err == nil {
		t.Error("duplicate version not flagged")
	}
}

func TestReadOfUnknownWriterTolerated(t *testing.T) {
	// A read of a version whose writer is outside the observation window
	// (e.g. installed before stats reset) contributes no wr edge but still
	// anchors rw edges.
	r := NewRecorder("S1")
	r.Record(tid(2), model.OpRead, "x", 5, 7) // writer of v7 unknown
	r.Record(tid(3), model.OpWrite, "x", 6, 9)
	if err := CheckSerializable(r.Events(), committed(tid(2), tid(3))); err != nil {
		t.Error(err)
	}
	g := BuildGraph(r.Events(), committed(tid(2), tid(3)))
	if !g.Edges[tid(2)][tid(3)] {
		t.Error("rw edge to later writer missing")
	}
}

func TestEmptyHistorySerializable(t *testing.T) {
	if err := CheckSerializable(nil, nil); err != nil {
		t.Error(err)
	}
}
