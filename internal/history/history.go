// Package history implements Rainbow's execution-history capture and the
// serializability checker used by the property tests and the monitor's
// "observe local as well as global executions" facility (paper §1).
//
// Every successful copy operation is recorded as an event at its site:
// reads carry the version they observed, writes the version they installed.
// The checker builds the multiversion serialization graph (MVSG) over
// committed transactions, per copy:
//
//   - ww: writes ordered by installed version;
//   - wr: the writer of version v precedes every reader of version v;
//   - rw: a reader of version v precedes the writer of the next version
//     after v (the anti-dependency).
//
// Version-based edges — rather than wall-clock arrival order — are what
// make the checker correct for the multi-version CCP, where a transaction
// may legitimately read an old version after a newer one was installed and
// still serialize before its writer. The history is serializable iff the
// MVSG is acyclic.
package history

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Event is one copy operation in a site's local execution.
type Event struct {
	// Seq orders events within one recorder (assigned on Record).
	Seq  uint64
	Site model.SiteID
	Tx   model.TxID
	Kind model.OpKind
	Item model.ItemID
	// Value is the value read or written.
	Value int64
	// Version is the copy version observed (reads) or installed (writes).
	Version model.Version
}

// copyKey identifies one physical copy.
type copyKey struct {
	site model.SiteID
	item model.ItemID
}

// Recorder captures one site's local execution history.
type Recorder struct {
	site model.SiteID
	seq  atomic.Uint64

	mu     sync.Mutex
	events []Event
}

// NewRecorder builds a recorder for site.
func NewRecorder(site model.SiteID) *Recorder {
	return &Recorder{site: site}
}

// Record appends one event.
func (r *Recorder) Record(tx model.TxID, kind model.OpKind, item model.ItemID, value int64, version model.Version) {
	e := Event{
		Seq:     r.seq.Add(1),
		Site:    r.site,
		Tx:      tx,
		Kind:    kind,
		Item:    item,
		Value:   value,
		Version: version,
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events snapshots the recorded history.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset clears the history.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// Conflict is one MVSG edge with its witnessing copy.
type Conflict struct {
	From, To model.TxID
	Site     model.SiteID
	Item     model.ItemID
	Kind     string // "ww", "wr" or "rw"
}

// Graph is the multiversion serialization graph of a (filtered) history.
type Graph struct {
	// Edges maps each transaction to its successors.
	Edges map[model.TxID]map[model.TxID]bool
	// Conflicts lists one witness per edge.
	Conflicts []Conflict
	// Violations lists structural problems found while building the graph
	// (e.g. two committed writes installing the same version on one copy),
	// which are serializability violations in themselves.
	Violations []string
}

// BuildGraph constructs the MVSG over the given events, considering only
// transactions in the committed set (aborted transactions' effects were
// discarded and do not constrain serializability).
func BuildGraph(events []Event, committed map[model.TxID]bool) *Graph {
	byCopy := make(map[copyKey][]Event)
	for _, e := range events {
		if !committed[e.Tx] {
			continue
		}
		k := copyKey{e.Site, e.Item}
		byCopy[k] = append(byCopy[k], e)
	}
	g := &Graph{Edges: make(map[model.TxID]map[model.TxID]bool)}

	// Deterministic copy order for stable output.
	keys := make([]copyKey, 0, len(byCopy))
	for k := range byCopy {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].site != keys[j].site {
			return keys[i].site < keys[j].site
		}
		return keys[i].item < keys[j].item
	})

	for _, k := range keys {
		evs := byCopy[k]
		// Collect writes by version, reads by version.
		writerOf := make(map[model.Version]model.TxID)
		var writeVersions []model.Version
		for _, e := range evs {
			if e.Kind != model.OpWrite {
				continue
			}
			if prev, dup := writerOf[e.Version]; dup && prev != e.Tx {
				g.Violations = append(g.Violations, fmt.Sprintf(
					"copy %s@%s: committed transactions %s and %s both installed version %d",
					k.item, k.site, prev, e.Tx, e.Version))
				continue
			}
			if _, dup := writerOf[e.Version]; !dup {
				writerOf[e.Version] = e.Tx
				writeVersions = append(writeVersions, e.Version)
			}
		}
		sort.Slice(writeVersions, func(i, j int) bool { return writeVersions[i] < writeVersions[j] })

		// ww edges along the version chain.
		for i := 1; i < len(writeVersions); i++ {
			from := writerOf[writeVersions[i-1]]
			to := writerOf[writeVersions[i]]
			if from != to && g.addEdge(from, to) {
				g.Conflicts = append(g.Conflicts, Conflict{From: from, To: to, Site: k.site, Item: k.item, Kind: "ww"})
			}
		}

		// nextWriteAfter returns the writer of the smallest version > v.
		nextWriteAfter := func(v model.Version) (model.TxID, bool) {
			i := sort.Search(len(writeVersions), func(i int) bool { return writeVersions[i] > v })
			if i == len(writeVersions) {
				return model.TxID{}, false
			}
			return writerOf[writeVersions[i]], true
		}

		for _, e := range evs {
			if e.Kind != model.OpRead {
				continue
			}
			// wr: writer of the observed version precedes the reader.
			if w, ok := writerOf[e.Version]; ok && w != e.Tx {
				if g.addEdge(w, e.Tx) {
					g.Conflicts = append(g.Conflicts, Conflict{From: w, To: e.Tx, Site: k.site, Item: k.item, Kind: "wr"})
				}
			}
			// rw: the reader precedes the writer of the next version.
			if w, ok := nextWriteAfter(e.Version); ok && w != e.Tx {
				if g.addEdge(e.Tx, w) {
					g.Conflicts = append(g.Conflicts, Conflict{From: e.Tx, To: w, Site: k.site, Item: k.item, Kind: "rw"})
				}
			}
		}
	}
	return g
}

func (g *Graph) addEdge(from, to model.TxID) bool {
	m := g.Edges[from]
	if m == nil {
		m = make(map[model.TxID]bool)
		g.Edges[from] = m
	}
	if m[to] {
		return false
	}
	m[to] = true
	return true
}

// Cycle returns a cycle in the graph, or nil if the graph is acyclic.
func (g *Graph) Cycle() []model.TxID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[model.TxID]int)
	parent := make(map[model.TxID]model.TxID)

	var nodes []model.TxID
	for n := range g.Edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })

	var cycleStart, cycleEnd model.TxID
	var found bool
	var dfs func(model.TxID) bool
	dfs = func(u model.TxID) bool {
		color[u] = gray
		var succ []model.TxID
		for v := range g.Edges[u] {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i].String() < succ[j].String() })
		for _, v := range succ {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycleStart, cycleEnd, found = v, u, true
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			break
		}
	}
	if !found {
		return nil
	}
	cycle := []model.TxID{cycleStart}
	for v := cycleEnd; v != cycleStart; v = parent[v] {
		cycle = append(cycle, v)
	}
	for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return cycle
}

// CheckSerializable merges per-site histories and verifies multiversion
// serializability of the committed transactions. It returns nil when the
// history is serializable and an error naming a conflict cycle or a
// structural violation otherwise.
func CheckSerializable(events []Event, committed map[model.TxID]bool) error {
	g := BuildGraph(events, committed)
	if len(g.Violations) > 0 {
		return fmt.Errorf("history: %s", g.Violations[0])
	}
	if cycle := g.Cycle(); cycle != nil {
		return fmt.Errorf("history: conflict cycle %v", cycle)
	}
	return nil
}

// Merge concatenates several recorders' histories.
func Merge(recorders ...*Recorder) []Event {
	var out []Event
	for _, r := range recorders {
		out = append(out, r.Events()...)
	}
	return out
}
