package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

func start(t *testing.T, ts *httptest.Server) {
	t.Helper()
	// Start with a fast default config: empty body = Default(), but shrink
	// the workload and latency for tests.
	body := `{
		"name": "test",
		"sites": ["S1","S2","S3"],
		"items": {"x": 10, "y": 20},
		"protocols": {"RCP":"qc","CCP":"2pl","ACP":"2pc"},
		"network": {"base_latency_us": 0},
		"timeouts_ms": {"op":1000,"vote":1000,"ack":500,"lock":300,"orphan_resolve":50},
		"workload": {"transactions": 20, "mpl": 2, "ops_per_tx": 3, "read_fraction": 0.5, "retries": 3}
	}`
	resp, out := post(t, ts.URL+"/NSRunnerlet", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NSRunnerlet: %d %v", resp.StatusCode, out)
	}
}

func TestEndpointsRequireInstance(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/NSlet", "/SiteRunnerlet", "/PMlet", "/PMlet/render"} {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("GET %s before configure = %d, want 409", path, resp.StatusCode)
		}
	}
}

func TestNSRunnerletStartsInstance(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, body := get(t, ts.URL+"/NSlet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NSlet: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"x"`)) {
		t.Errorf("catalog missing items: %s", body)
	}
}

func TestNSRunnerletDefaultConfig(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := post(t, ts.URL+"/NSRunnerlet", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-body NSRunnerlet = %d %v", resp.StatusCode, out)
	}
	sites, ok := out["sites"].([]any)
	if !ok || len(sites) != 3 {
		t.Errorf("sites = %v", out["sites"])
	}
}

func TestNSRunnerletRejectsBadConfig(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/NSRunnerlet", `{"sites": [], "items": {}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad config = %d, want 400", resp.StatusCode)
	}
}

func TestSiteRunnerletListsSites(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, body := get(t, ts.URL+"/SiteRunnerlet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SiteRunnerlet: %d", resp.StatusCode)
	}
	var sites []map[string]any
	if err := json.Unmarshal(body, &sites); err != nil || len(sites) != 3 {
		t.Errorf("sites = %s", body)
	}
}

func TestSiteletStats(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, body := get(t, ts.URL+"/Sitelet?site=S1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Sitelet: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"stats"`)) || !bytes.Contains(body, []byte(`"store"`)) {
		t.Errorf("sitelet body = %s", body)
	}
	resp, _ = get(t, ts.URL+"/Sitelet?site=ZZ")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown site = %d, want 404", resp.StatusCode)
	}
}

func TestWLGletRunAndPMlet(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, out := post(t, ts.URL+"/WLGlet/run", `{"transactions": 15, "mpl": 3, "ops_per_tx": 2, "read_fraction": 0.5, "retries": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("WLGlet/run: %d %v", resp.StatusCode, out)
	}
	if out["submitted"].(float64) != 15 {
		t.Errorf("submitted = %v", out["submitted"])
	}
	if out["committed"].(float64) == 0 {
		t.Error("nothing committed")
	}

	resp, body := get(t, ts.URL+"/PMlet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PMlet: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"totals"`)) {
		t.Errorf("PMlet body = %s", body)
	}

	resp, text := get(t, ts.URL+"/PMlet/render")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(text, []byte("commit rate:")) {
		t.Errorf("render = %d %s", resp.StatusCode, text)
	}
}

func TestWLGletManual(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, out := post(t, ts.URL+"/WLGlet/manual",
		`{"home": "S1", "ops": [{"Kind":"w","Item":"x","Value":99},{"Kind":"r","Item":"x"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manual: %d %v", resp.StatusCode, out)
	}
	if out["Committed"] != true {
		t.Errorf("outcome = %v", out)
	}
	resp, _ = post(t, ts.URL+"/WLGlet/manual", `{"home": "S1", "ops": [{"Kind":"zap"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid manual op = %d, want 400", resp.StatusCode)
	}
}

func TestFaultletCrashRecover(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, _ := post(t, ts.URL+"/Faultlet", `{"kind":"crash","site":"S2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crash: %d", resp.StatusCode)
	}
	// SiteRunnerlet reflects the crash.
	_, body := get(t, ts.URL+"/SiteRunnerlet")
	if !bytes.Contains(body, []byte(`"crashed":true`)) {
		t.Errorf("crash not visible: %s", body)
	}
	resp, _ = post(t, ts.URL+"/Faultlet", `{"kind":"recover","site":"S2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/Faultlet", `{"kind":"nuke"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown fault = %d, want 400", resp.StatusCode)
	}
}

func TestResetlet(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	post(t, ts.URL+"/WLGlet/run", `{"transactions": 5, "mpl": 1, "ops_per_tx": 2, "read_fraction": 1, "retries": 0}`)
	resp, _ := post(t, ts.URL+"/Resetlet", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reset: %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/PMlet")
	var pm map[string]any
	json.Unmarshal(body, &pm)
	if pm["totals"].(map[string]any)["Began"].(float64) != 0 {
		t.Errorf("stats not reset: %s", body)
	}
}

func TestReconfigureReplacesInstance(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	post(t, ts.URL+"/WLGlet/run", `{"transactions": 5, "mpl": 1, "ops_per_tx": 2, "read_fraction": 1, "retries": 0}`)
	start(t, ts) // reconfigure
	_, body := get(t, ts.URL+"/PMlet")
	var pm map[string]any
	json.Unmarshal(body, &pm)
	if pm["totals"].(map[string]any)["Began"].(float64) != 0 {
		t.Error("reconfiguration kept old statistics")
	}
}

// TestCheckpointTriggerAndDurability: POST /site/{id}/checkpoint takes a
// manual checkpoint, and the durability counters surface both there and on
// the Sitelet stats endpoint.
func TestCheckpointTriggerAndDurability(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	// Generate some durable work so the checkpoint has records to cover.
	if resp, out := post(t, ts.URL+"/WLGlet/run", `{"transactions": 10, "mpl": 2, "ops_per_tx": 2, "read_fraction": 0.2, "retries": 3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("WLGlet/run: %d %v", resp.StatusCode, out)
	}

	resp, out := post(t, ts.URL+"/site/S1/checkpoint", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, out)
	}
	dur, ok := out["durability"].(map[string]any)
	if !ok {
		t.Fatalf("no durability section: %v", out)
	}
	if n, _ := dur["checkpoints"].(float64); n < 1 {
		t.Errorf("checkpoints = %v, want >= 1", dur["checkpoints"])
	}
	if h, _ := dur["last_horizon"].(float64); h <= 0 {
		t.Errorf("last_horizon = %v, want > 0", dur["last_horizon"])
	}

	// The Sitelet stats endpoint carries the same counters.
	gresp, body := get(t, ts.URL+"/Sitelet?site=S1")
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("Sitelet: %d", gresp.StatusCode)
	}
	var sitelet map[string]any
	if err := json.Unmarshal(body, &sitelet); err != nil {
		t.Fatal(err)
	}
	sdur, ok := sitelet["durability"].(map[string]any)
	if !ok {
		t.Fatalf("Sitelet has no durability section: %s", body)
	}
	for _, key := range []string{"checkpoints", "last_horizon", "dirty_shards", "decisions", "wal_bytes"} {
		if _, ok := sdur[key]; !ok {
			t.Errorf("durability section missing %q: %v", key, sdur)
		}
	}

	// Unknown site → 404; crashed site → 409.
	if resp, _ := post(t, ts.URL+"/site/ZZ/checkpoint", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown site checkpoint = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/Faultlet", `{"kind":"crash","site":"S1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("crash injection failed: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/site/S1/checkpoint", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("crashed site checkpoint = %d, want 409", resp.StatusCode)
	}
}

// catalogBody is a valid POST /catalog payload matching start()'s site set,
// parameterized by shard count and CAS epoch.
func catalogBody(shards int, epoch uint64) string {
	return fmt.Sprintf(`{
		"name": "resharded",
		"sites": ["S1","S2","S3"],
		"items": {"x": 10, "y": 20},
		"protocols": {"RCP":"qc","CCP":"2pl","ACP":"2pc"},
		"timeouts_ms": {"op":1000,"vote":1000,"ack":500,"lock":300,"orphan_resolve":50},
		"shards": %d,
		"epoch": %d
	}`, shards, epoch)
}

// TestCatalogUpdateReshardsLive: POST /catalog live-reconfigures the
// instance, the new epoch lands in the response and on the Sitelet
// durability section, and data written before the bump stays readable.
func TestCatalogUpdateReshardsLive(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	if resp, out := post(t, ts.URL+"/WLGlet/manual", `{"home":"S1","ops":[{"kind":"write","item":"x","value":77}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("manual write: %d %v", resp.StatusCode, out)
	}

	resp, out := post(t, ts.URL+"/catalog", catalogBody(8, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /catalog: %d %v", resp.StatusCode, out)
	}
	epoch, _ := out["epoch"].(float64)
	if epoch < 1 {
		t.Fatalf("stamped epoch = %v, want >= 1", out["epoch"])
	}

	_, body := get(t, ts.URL+"/Sitelet?site=S2")
	var sitelet map[string]any
	if err := json.Unmarshal(body, &sitelet); err != nil {
		t.Fatal(err)
	}
	dur := sitelet["durability"].(map[string]any)
	if got, _ := dur["epoch"].(float64); got != epoch {
		t.Errorf("Sitelet durability epoch = %v, want %v", dur["epoch"], epoch)
	}
	if got, _ := dur["reconfigures"].(float64); got < 1 {
		t.Errorf("Sitelet reconfigures = %v, want >= 1", dur["reconfigures"])
	}
	stats := sitelet["stats"].(map[string]any)
	if got, _ := stats["Shards"].(float64); got != 8 {
		t.Errorf("Sitelet stats shards = %v, want 8", stats["Shards"])
	}
	// Committed data survived the reshard.
	if resp, out := post(t, ts.URL+"/WLGlet/manual", `{"home":"S3","ops":[{"kind":"read","item":"x"}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reshard read: %d %v", resp.StatusCode, out)
	} else if reads, _ := out["Reads"].(map[string]any); reads["x"] != 77.0 {
		t.Errorf("post-reshard x = %v, want 77 (%v)", reads["x"], out)
	}
}

// TestCatalogUpdateStaleEpochRejected: a CAS epoch that no longer matches
// the name server's current one returns 409 without reconfiguring anything.
func TestCatalogUpdateStaleEpochRejected(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	// Two unconditional updates move the epoch to at least 2.
	for _, shards := range []int{2, 4} {
		if resp, out := post(t, ts.URL+"/catalog", catalogBody(shards, 0)); resp.StatusCode != http.StatusOK {
			t.Fatalf("update: %d %v", resp.StatusCode, out)
		}
	}
	resp, out := post(t, ts.URL+"/catalog", catalogBody(16, 1)) // stale token
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale CAS = %d %v, want 409", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "stale") {
		t.Errorf("error body = %v, want a stale-epoch message", out)
	}
	// Nothing was resharded.
	_, body := get(t, ts.URL+"/Sitelet?site=S1")
	var sitelet map[string]any
	json.Unmarshal(body, &sitelet)
	if got := sitelet["stats"].(map[string]any)["Shards"].(float64); got != 4 {
		t.Errorf("shards after rejected update = %v, want 4", got)
	}
}

// TestCatalogUpdateErrorPaths: no instance → 409; malformed JSON → 400;
// invalid config → 400; site-set change → 409.
func TestCatalogUpdateErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, _ := post(t, ts.URL+"/catalog", catalogBody(2, 0)); resp.StatusCode != http.StatusConflict {
		t.Errorf("no instance = %d, want 409", resp.StatusCode)
	}
	start(t, ts)
	if resp, _ := post(t, ts.URL+"/catalog", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/catalog", `{"sites":[],"items":{}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid config = %d, want 400", resp.StatusCode)
	}
	siteChange := `{
		"name": "grown",
		"sites": ["S1","S2","S3","S4"],
		"items": {"x": 10},
		"timeouts_ms": {"op":1000,"vote":1000,"ack":500,"lock":300,"orphan_resolve":50}
	}`
	if resp, out := post(t, ts.URL+"/catalog", siteChange); resp.StatusCode != http.StatusConflict {
		t.Errorf("site-set change = %d %v, want 409", resp.StatusCode, out)
	}
}
