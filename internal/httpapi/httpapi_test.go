package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.Bytes()
}

func start(t *testing.T, ts *httptest.Server) {
	t.Helper()
	// Start with a fast default config: empty body = Default(), but shrink
	// the workload and latency for tests.
	body := `{
		"name": "test",
		"sites": ["S1","S2","S3"],
		"items": {"x": 10, "y": 20},
		"protocols": {"RCP":"qc","CCP":"2pl","ACP":"2pc"},
		"network": {"base_latency_us": 0},
		"timeouts_ms": {"op":1000,"vote":1000,"ack":500,"lock":300,"orphan_resolve":50},
		"workload": {"transactions": 20, "mpl": 2, "ops_per_tx": 3, "read_fraction": 0.5, "retries": 3}
	}`
	resp, out := post(t, ts.URL+"/NSRunnerlet", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NSRunnerlet: %d %v", resp.StatusCode, out)
	}
}

func TestEndpointsRequireInstance(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/NSlet", "/SiteRunnerlet", "/PMlet", "/PMlet/render"} {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("GET %s before configure = %d, want 409", path, resp.StatusCode)
		}
	}
}

func TestNSRunnerletStartsInstance(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, body := get(t, ts.URL+"/NSlet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NSlet: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"x"`)) {
		t.Errorf("catalog missing items: %s", body)
	}
}

func TestNSRunnerletDefaultConfig(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := post(t, ts.URL+"/NSRunnerlet", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-body NSRunnerlet = %d %v", resp.StatusCode, out)
	}
	sites, ok := out["sites"].([]any)
	if !ok || len(sites) != 3 {
		t.Errorf("sites = %v", out["sites"])
	}
}

func TestNSRunnerletRejectsBadConfig(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/NSRunnerlet", `{"sites": [], "items": {}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad config = %d, want 400", resp.StatusCode)
	}
}

func TestSiteRunnerletListsSites(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, body := get(t, ts.URL+"/SiteRunnerlet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SiteRunnerlet: %d", resp.StatusCode)
	}
	var sites []map[string]any
	if err := json.Unmarshal(body, &sites); err != nil || len(sites) != 3 {
		t.Errorf("sites = %s", body)
	}
}

func TestSiteletStats(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, body := get(t, ts.URL+"/Sitelet?site=S1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Sitelet: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"stats"`)) || !bytes.Contains(body, []byte(`"store"`)) {
		t.Errorf("sitelet body = %s", body)
	}
	resp, _ = get(t, ts.URL+"/Sitelet?site=ZZ")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown site = %d, want 404", resp.StatusCode)
	}
}

func TestWLGletRunAndPMlet(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, out := post(t, ts.URL+"/WLGlet/run", `{"transactions": 15, "mpl": 3, "ops_per_tx": 2, "read_fraction": 0.5, "retries": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("WLGlet/run: %d %v", resp.StatusCode, out)
	}
	if out["submitted"].(float64) != 15 {
		t.Errorf("submitted = %v", out["submitted"])
	}
	if out["committed"].(float64) == 0 {
		t.Error("nothing committed")
	}

	resp, body := get(t, ts.URL+"/PMlet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PMlet: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"totals"`)) {
		t.Errorf("PMlet body = %s", body)
	}

	resp, text := get(t, ts.URL+"/PMlet/render")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(text, []byte("commit rate:")) {
		t.Errorf("render = %d %s", resp.StatusCode, text)
	}
}

func TestWLGletManual(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, out := post(t, ts.URL+"/WLGlet/manual",
		`{"home": "S1", "ops": [{"Kind":"w","Item":"x","Value":99},{"Kind":"r","Item":"x"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manual: %d %v", resp.StatusCode, out)
	}
	if out["Committed"] != true {
		t.Errorf("outcome = %v", out)
	}
	resp, _ = post(t, ts.URL+"/WLGlet/manual", `{"home": "S1", "ops": [{"Kind":"zap"}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid manual op = %d, want 400", resp.StatusCode)
	}
}

func TestFaultletCrashRecover(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	resp, _ := post(t, ts.URL+"/Faultlet", `{"kind":"crash","site":"S2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crash: %d", resp.StatusCode)
	}
	// SiteRunnerlet reflects the crash.
	_, body := get(t, ts.URL+"/SiteRunnerlet")
	if !bytes.Contains(body, []byte(`"crashed":true`)) {
		t.Errorf("crash not visible: %s", body)
	}
	resp, _ = post(t, ts.URL+"/Faultlet", `{"kind":"recover","site":"S2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/Faultlet", `{"kind":"nuke"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown fault = %d, want 400", resp.StatusCode)
	}
}

func TestResetlet(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	post(t, ts.URL+"/WLGlet/run", `{"transactions": 5, "mpl": 1, "ops_per_tx": 2, "read_fraction": 1, "retries": 0}`)
	resp, _ := post(t, ts.URL+"/Resetlet", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reset: %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/PMlet")
	var pm map[string]any
	json.Unmarshal(body, &pm)
	if pm["totals"].(map[string]any)["Began"].(float64) != 0 {
		t.Errorf("stats not reset: %s", body)
	}
}

func TestReconfigureReplacesInstance(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	post(t, ts.URL+"/WLGlet/run", `{"transactions": 5, "mpl": 1, "ops_per_tx": 2, "read_fraction": 1, "retries": 0}`)
	start(t, ts) // reconfigure
	_, body := get(t, ts.URL+"/PMlet")
	var pm map[string]any
	json.Unmarshal(body, &pm)
	if pm["totals"].(map[string]any)["Began"].(float64) != 0 {
		t.Error("reconfiguration kept old statistics")
	}
}

// TestCheckpointTriggerAndDurability: POST /site/{id}/checkpoint takes a
// manual checkpoint, and the durability counters surface both there and on
// the Sitelet stats endpoint.
func TestCheckpointTriggerAndDurability(t *testing.T) {
	_, ts := newTestServer(t)
	start(t, ts)
	// Generate some durable work so the checkpoint has records to cover.
	if resp, out := post(t, ts.URL+"/WLGlet/run", `{"transactions": 10, "mpl": 2, "ops_per_tx": 2, "read_fraction": 0.2, "retries": 3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("WLGlet/run: %d %v", resp.StatusCode, out)
	}

	resp, out := post(t, ts.URL+"/site/S1/checkpoint", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, out)
	}
	dur, ok := out["durability"].(map[string]any)
	if !ok {
		t.Fatalf("no durability section: %v", out)
	}
	if n, _ := dur["checkpoints"].(float64); n < 1 {
		t.Errorf("checkpoints = %v, want >= 1", dur["checkpoints"])
	}
	if h, _ := dur["last_horizon"].(float64); h <= 0 {
		t.Errorf("last_horizon = %v, want > 0", dur["last_horizon"])
	}

	// The Sitelet stats endpoint carries the same counters.
	gresp, body := get(t, ts.URL+"/Sitelet?site=S1")
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("Sitelet: %d", gresp.StatusCode)
	}
	var sitelet map[string]any
	if err := json.Unmarshal(body, &sitelet); err != nil {
		t.Fatal(err)
	}
	sdur, ok := sitelet["durability"].(map[string]any)
	if !ok {
		t.Fatalf("Sitelet has no durability section: %s", body)
	}
	for _, key := range []string{"checkpoints", "last_horizon", "dirty_shards", "decisions", "wal_bytes"} {
		if _, ok := sdur[key]; !ok {
			t.Errorf("durability section missing %q: %v", key, sdur)
		}
	}

	// Unknown site → 404; crashed site → 409.
	if resp, _ := post(t, ts.URL+"/site/ZZ/checkpoint", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown site checkpoint = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/Faultlet", `{"kind":"crash","site":"S1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("crash injection failed: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/site/S1/checkpoint", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("crashed site checkpoint = %d, want 409", resp.StatusCode)
	}
}
